#!/usr/bin/env bash
# Build the test suites under ThreadSanitizer and run the concurrency-
# sensitive ones: net (worker pools, ParallelCall), rep (suite fan-out
# over the threaded transport), and integration (threaded clients, 2PC).
#
# Uses the dedicated build-tsan/ tree so the regular build/ stays intact.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-tsan"
jobs="${JOBS:-$(nproc)}"

cmake -B "$build" -S "$root" \
  -DREPDIR_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

targets=(
  common/common_metrics_test common/common_logging_test
  storage/storage_wal_test
  net/net_rpc_test net/net_duplication_test net/net_tcp_transport_test
  net/net_parallel_call_test net/net_retry_backoff_test
  net/net_scoreboard_test
  rep/rep_op_batch_test
  rep/rep_adaptive_policy_test rep/rep_hedged_read_test
  rep/rep_quorum_test rep/rep_dir_rep_node_test rep/rep_suite_api_test
  rep/rep_suite_txn_test rep/rep_paper_figures_test rep/rep_weak_rep_test
  rep/rep_readonly_2pc_test rep/rep_failure_test rep/rep_batching_test
  rep/rep_parallel_fanout_test
  rep/rep_version_cache_test
  rep/rep_shard_map_test rep/rep_sharded_dir_test rep/rep_shard_split_test
  rep/rep_reconcile_test rep/rep_reconcile_shard_test
  chaos/chaos_invariants_test
  chaos/chaos_campaign_test
  integration/integration_threaded_test
  integration/integration_cache_coherence_test
  integration/integration_serializability_test
  integration/integration_chaos_test
  integration/integration_crash_recovery_test
  integration/integration_scale_test
)
cmake --build "$build" -j"$jobs" --target "${targets[@]##*/}"

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
failed=()
for t in "${targets[@]}"; do
  echo "=== $t ==="
  "$build/tests/$t" --gtest_brief=1 || failed+=("$t")
done

if ((${#failed[@]})); then
  echo "TSan FAILURES: ${failed[*]}" >&2
  exit 1
fi
echo "All suites TSan-clean."
