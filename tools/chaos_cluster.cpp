// chaos_cluster: multi-process crash driver.
//
// Spawns real chaos_node processes (one directory representative each,
// file-backed WALs) on loopback TCP, drives a randomized workload through
// the full client stack, and kills nodes with SIGKILL - both cold (between
// operations) and mid-two-phase-commit, by arming WAL crash points through
// the REPDIR_CRASH_POINT environment variable so a victim dies at a precise
// protocol instant (just after flushing its PREPARE, or just after flushing
// its COMMIT but before replying). Dead nodes are respawned from their
// surviving WAL files, their in-doubt transactions resolved with the
// driver's committed/aborted record, and the final cluster state is checked
// against the committed-ops model with the shared invariant library.
//
// Batched phases drive whole op groups through SuiteTxn::ExecuteBatch - one
// 2PC and one group-committed WAL flush per group - with victims armed to
// die mid-group-flush (wal.before_flush) and mid-batch-2PC
// (wal.after_prepare_flush): group commit must never widen the durability
// window of a committed batch.
//
//   chaos_cluster [--seed S] [--ops N] [--workdir DIR] [--node-bin PATH]
//
// Exit status 0 iff the cluster converged to exactly the committed model.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "chaos/cluster_messages.h"
#include "chaos/invariants.h"
#include "common/rng.h"
#include "net/tcp_transport.h"
#include "rep/dir_suite.h"

using namespace repdir;

namespace {

struct NodeProc {
  NodeId id = 0;
  pid_t pid = -1;
  std::uint16_t port = 0;                ///< Fixed after the first spawn.
  std::vector<TxnId> in_doubt;           ///< Reported at last startup.
  std::string wal_path;
};

struct Driver {
  std::string node_bin;
  std::string workdir;
  net::TcpTransport transport;
  std::vector<NodeProc> nodes;
  chaos::Model model;
  std::map<TxnId, bool> decisions;

  std::uint64_t ops_attempted = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t batches_committed = 0;
  std::uint64_t kills = 0;
  std::uint64_t respawns = 0;
  std::uint64_t mid_2pc_kills = 0;
  std::string failure;

  bool ok() const { return failure.empty(); }
  void Fail(const std::string& why) {
    if (failure.empty()) failure = why;
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
  }

  NodeProc& Proc(NodeId id) {
    for (auto& n : nodes) {
      if (n.id == id) return n;
    }
    std::abort();
  }

  /// Spawns (or respawns) node `id`; `crash_point` non-empty arms
  /// REPDIR_CRASH_POINT in the child. Blocks until the child prints READY.
  bool Spawn(NodeId id, const std::string& crash_point) {
    NodeProc& proc = Proc(id);
    int fds[2];
    if (pipe(fds) != 0) {
      Fail("pipe failed");
      return false;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      Fail("fork failed");
      return false;
    }
    if (pid == 0) {
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      if (!crash_point.empty()) {
        setenv("REPDIR_CRASH_POINT", crash_point.c_str(), 1);
      } else {
        unsetenv("REPDIR_CRASH_POINT");
      }
      const std::string node_arg = std::to_string(id);
      const std::string port_arg = std::to_string(proc.port);
      execl(node_bin.c_str(), node_bin.c_str(), "--node", node_arg.c_str(),
            "--port", port_arg.c_str(), "--wal", proc.wal_path.c_str(),
            static_cast<char*>(nullptr));
      std::perror("execl chaos_node");
      _exit(127);
    }
    close(fds[1]);
    proc.pid = pid;
    proc.in_doubt.clear();
    ++respawns;

    // Startup protocol: PORT <p> / INDOUBT <txn>... / READY.
    std::FILE* out = fdopen(fds[0], "r");
    char* line = nullptr;
    std::size_t cap = 0;
    bool ready = false;
    while (getline(&line, &cap, out) >= 0) {
      unsigned port_read = 0;
      if (std::sscanf(line, "PORT %u", &port_read) == 1) {
        proc.port = static_cast<std::uint16_t>(port_read);
      } else if (std::strncmp(line, "INDOUBT", 7) == 0) {
        const char* cursor = line + 7;
        char* end = nullptr;
        for (unsigned long long t = std::strtoull(cursor, &end, 10);
             end != cursor; t = std::strtoull(cursor, &end, 10)) {
          proc.in_doubt.push_back(static_cast<TxnId>(t));
          cursor = end;
        }
      } else if (std::strncmp(line, "READY", 5) == 0) {
        ready = true;
        break;
      }
    }
    free(line);
    std::fclose(out);  // child keeps running; we only close our pipe end
    if (!ready || proc.port == 0) {
      Fail("node " + std::to_string(id) + " did not come up");
      return false;
    }
    transport.AddRoute(id, "127.0.0.1", proc.port);
    return true;
  }

  void Kill(NodeId id) {
    NodeProc& proc = Proc(id);
    if (proc.pid <= 0) return;
    kill(proc.pid, SIGKILL);
    int status = 0;
    waitpid(proc.pid, &status, 0);
    proc.pid = -1;
    ++kills;
  }

  /// True once the child has exited (reaping it); used to detect an armed
  /// crash point firing mid-workload.
  bool Reap(NodeId id) {
    NodeProc& proc = Proc(id);
    if (proc.pid <= 0) return true;
    int status = 0;
    const pid_t done = waitpid(proc.pid, &status, WNOHANG);
    if (done != proc.pid) return false;
    proc.pid = -1;
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      Fail("node " + std::to_string(id) + " died but not by SIGKILL");
    }
    return true;
  }

  /// A control call with a few retries: the transport's connection pool
  /// may hold stale sockets to a node that died and respawned, and each
  /// failed call discards exactly one of them.
  template <typename Resp, typename Req>
  Result<Resp> CtlCall(net::RpcClient& ctl, NodeId id, net::MethodId method,
                       const Req& req) {
    Result<Resp> resp = Status::Unavailable("not attempted");
    for (int attempt = 0; attempt < 8; ++attempt) {
      resp = ctl.Call<Resp>(id, method, req);
      if (resp.ok()) return resp;
    }
    return resp;
  }

  /// Resolves every in-doubt transaction a freshly respawned node reported,
  /// feeding it the coordinator's actual decision (presumed abort when the
  /// driver never saw the transaction commit).
  void ResolveInDoubt(net::RpcClient& ctl, NodeId id) {
    NodeProc& proc = Proc(id);
    for (const TxnId txn : proc.in_doubt) {
      const bool commit =
          decisions.contains(txn) ? decisions.at(txn) : false;
      chaos::ResolveRequest req;
      req.txn = txn;
      req.commit = commit;
      const auto resp = CtlCall<net::Empty>(ctl, id, chaos::kResolve, req);
      if (!resp.ok()) {
        Fail("resolve txn " + std::to_string(txn) + " on node " +
             std::to_string(id) + ": " + resp.status().ToString());
      }
      std::printf("   resolved txn %llu on node %u -> %s\n",
                  static_cast<unsigned long long>(txn), id,
                  commit ? "COMMIT" : "ABORT");
    }
    proc.in_doubt.clear();
  }
};

/// One randomized directory operation as its own transaction, mirroring the
/// in-process campaign executor: the model only advances when Commit()
/// reports the decision was commit, and definite rejections must agree with
/// the model exactly.
void RunOp(Driver& driver, rep::DirectorySuite& suite, Rng& rng) {
  ++driver.ops_attempted;
  const std::string key = "k" + std::to_string(rng.Below(16));
  const double roll = rng.NextDouble();

  if (roll < 0.2) {  // read
    const auto r = suite.Lookup(key);
    if (r.ok()) {
      if (r->found != driver.model.contains(key) ||
          (r->found && r->value != driver.model.at(key))) {
        driver.Fail("lookup(" + key + ") disagrees with committed model");
      }
    } else if (r.status().code() != StatusCode::kUnavailable &&
               r.status().code() != StatusCode::kAborted) {
      driver.Fail("lookup(" + key + "): " + r.status().ToString());
    }
    return;
  }

  rep::SuiteTxn txn = suite.Begin();
  const std::string value = "v" + std::to_string(driver.ops_attempted);
  Status st = Status::Ok();
  enum class Op { kInsert, kUpdate, kDelete } op;
  if (roll < 0.55) {
    op = Op::kInsert;
    st = txn.Insert(key, value);
  } else if (roll < 0.8) {
    op = Op::kUpdate;
    st = txn.Update(key, value);
  } else {
    op = Op::kDelete;
    st = txn.Delete(key);
  }

  if (st.ok()) {
    const TxnId id = txn.id();
    const Status commit = txn.Commit();
    driver.decisions[id] = commit.ok();
    if (commit.ok()) {
      ++driver.ops_committed;
      switch (op) {
        case Op::kInsert:
          if (driver.model.contains(key)) {
            driver.Fail("insert(" + key + ") committed over a live entry");
          }
          driver.model[key] = value;
          break;
        case Op::kUpdate:
          if (!driver.model.contains(key)) {
            driver.Fail("update(" + key + ") committed on a missing entry");
          }
          driver.model[key] = value;
          break;
        case Op::kDelete:
          if (!driver.model.contains(key)) {
            driver.Fail("delete(" + key + ") committed on a missing entry");
          }
          driver.model.erase(key);
          break;
      }
    } else if (commit.code() != StatusCode::kAborted &&
               commit.code() != StatusCode::kUnavailable) {
      driver.Fail("commit: " + commit.ToString());
    }
    return;
  }

  driver.decisions[txn.id()] = false;
  txn.Abort();
  switch (st.code()) {
    case StatusCode::kAlreadyExists:
      if (op != Op::kInsert || !driver.model.contains(key)) {
        driver.Fail("spurious kAlreadyExists for " + key);
      }
      break;
    case StatusCode::kNotFound:
      if (op == Op::kInsert || driver.model.contains(key)) {
        driver.Fail("spurious kNotFound for " + key);
      }
      break;
    case StatusCode::kUnavailable:
    case StatusCode::kAborted:
      break;  // fault shadow: fine
    default:
      driver.Fail("op on " + key + ": " + st.ToString());
  }
}

/// One whole op group as ONE transaction through SuiteTxn::ExecuteBatch:
/// one read wave, one write wave, one 2PC, one group-committed flush. The
/// model only advances - all K ops at once - when the commit decision was
/// commit; lookups inside the batch are checked against the evolving
/// scratch model (batch semantics: later ops observe earlier effects).
void RunBatch(Driver& driver, rep::DirectorySuite& suite, Rng& rng) {
  using BatchOp = rep::DirectorySuite::BatchOp;
  const std::size_t size = 3 + rng.Below(6);  // 3..8 ops per group
  std::vector<BatchOp> ops;
  ops.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    BatchOp op;
    op.key = "k" + std::to_string(rng.Below(16));
    const double roll = rng.NextDouble();
    if (roll < 0.4) {
      op.kind = BatchOp::Kind::kInsert;
      op.value = "b" + std::to_string(driver.ops_attempted + i);
    } else if (roll < 0.7) {
      op.kind = BatchOp::Kind::kUpdate;
      op.value = "b" + std::to_string(driver.ops_attempted + i);
    } else {
      op.kind = BatchOp::Kind::kLookup;
    }
    ops.push_back(std::move(op));
  }
  driver.ops_attempted += size;

  rep::SuiteTxn txn = suite.Begin();
  const auto results = txn.ExecuteBatch(ops);
  if (!results.ok()) {
    driver.decisions[txn.id()] = false;
    txn.Abort();
    if (results.status().code() != StatusCode::kUnavailable &&
        results.status().code() != StatusCode::kAborted) {
      driver.Fail("batch: " + results.status().ToString());
    }
    return;
  }
  const TxnId id = txn.id();
  const Status commit = txn.Commit();
  driver.decisions[id] = commit.ok();
  if (!commit.ok()) {
    if (commit.code() != StatusCode::kAborted &&
        commit.code() != StatusCode::kUnavailable) {
      driver.Fail("batch commit: " + commit.ToString());
    }
    return;
  }
  ++driver.batches_committed;

  chaos::Model scratch = driver.model;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const BatchOp& op = ops[i];
    const auto& r = (*results)[i];
    switch (op.kind) {
      case BatchOp::Kind::kInsert:
        if (r.status.ok()) {
          if (scratch.contains(op.key)) {
            driver.Fail("batched insert(" + op.key +
                        ") committed over a live entry");
            return;
          }
          scratch[op.key] = op.value;
          ++driver.ops_committed;
        } else if (r.status.code() == StatusCode::kAlreadyExists) {
          if (!scratch.contains(op.key)) {
            driver.Fail("spurious batched kAlreadyExists for " + op.key);
            return;
          }
        } else {
          driver.Fail("batched insert(" + op.key +
                      "): " + r.status.ToString());
          return;
        }
        break;
      case BatchOp::Kind::kUpdate:
        if (r.status.ok()) {
          if (!scratch.contains(op.key)) {
            driver.Fail("batched update(" + op.key +
                        ") committed on a missing entry");
            return;
          }
          scratch[op.key] = op.value;
          ++driver.ops_committed;
        } else if (r.status.code() == StatusCode::kNotFound) {
          if (scratch.contains(op.key)) {
            driver.Fail("spurious batched kNotFound for " + op.key);
            return;
          }
        } else {
          driver.Fail("batched update(" + op.key +
                      "): " + r.status.ToString());
          return;
        }
        break;
      default:  // kLookup
        if (!r.status.ok()) {
          driver.Fail("batched lookup(" + op.key +
                      "): " + r.status.ToString());
          return;
        }
        if (r.lookup.found != scratch.contains(op.key) ||
            (r.lookup.found && r.lookup.value != scratch.at(op.key))) {
          driver.Fail("batched lookup(" + op.key +
                      ") disagrees with committed model");
          return;
        }
        ++driver.ops_committed;
        break;
    }
  }
  driver.model = std::move(scratch);
}

/// Drives ops until `victim`'s armed crash point fires (or an op budget
/// runs out). Returns true when the victim died.
bool DriveUntilDeath(Driver& driver, rep::DirectorySuite& suite, Rng& rng,
                     NodeId victim, int budget, bool batched = false) {
  for (int i = 0; i < budget; ++i) {
    if (batched) {
      RunBatch(driver, suite, rng);
    } else {
      RunOp(driver, suite, rng);
    }
    if (driver.Reap(victim)) {
      ++driver.kills;
      ++driver.mid_2pc_kills;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  int ops = 50;
  std::string workdir;
  std::string node_bin;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--ops") {
      ops = std::atoi(next());
    } else if (arg == "--workdir") {
      workdir = next();
    } else if (arg == "--node-bin") {
      node_bin = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  Driver driver;
  if (node_bin.empty()) {
    // Default: chaos_node next to this binary.
    std::string self = argv[0];
    const auto slash = self.find_last_of('/');
    node_bin = (slash == std::string::npos ? std::string(".")
                                           : self.substr(0, slash)) +
               "/chaos_node";
  }
  driver.node_bin = node_bin;
  if (workdir.empty()) {
    char tmpl[] = "/tmp/chaos_cluster_XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 2;
    }
    workdir = tmpl;
  }
  driver.workdir = workdir;
  std::printf("== chaos_cluster: WALs under %s, node binary %s\n",
              workdir.c_str(), node_bin.c_str());

  const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
  for (NodeId id = 1; id <= 3; ++id) {
    NodeProc proc;
    proc.id = id;
    proc.wal_path = workdir + "/node" + std::to_string(id) + ".wal";
    driver.nodes.push_back(proc);
  }
  for (NodeId id = 1; id <= 3; ++id) {
    if (!driver.Spawn(id, "")) return 1;
    std::printf("   node %u up on port %u\n", id, driver.Proc(id).port);
  }

  rep::SuiteOptions options;
  options.config = config;
  options.policy_seed = seed;
  rep::DirectorySuite suite(driver.transport, 100, std::move(options));
  net::RpcClient ctl(driver.transport, 101);
  Rng rng(seed * 1000003 + 7);

  std::printf("== phase 1: %d warmup ops over live cluster\n", ops);
  for (int i = 0; i < ops; ++i) RunOp(driver, suite, rng);

  std::printf("== phase 2: cold kill -9 of node 1 between operations\n");
  driver.Kill(1);
  for (int i = 0; i < ops / 3; ++i) RunOp(driver, suite, rng);
  if (!driver.Spawn(1, "")) return 1;
  driver.ResolveInDoubt(ctl, 1);
  for (int i = 0; i < ops / 3; ++i) RunOp(driver, suite, rng);

  std::printf(
      "== phase 3: node 2 armed to die after flushing a PREPARE "
      "(in-doubt on recovery)\n");
  driver.Kill(2);
  if (!driver.Spawn(2, "wal.after_prepare_flush:3")) return 1;
  driver.ResolveInDoubt(ctl, 2);
  if (!DriveUntilDeath(driver, suite, rng, 2, 8 * ops)) {
    driver.Fail("node 2 never hit wal.after_prepare_flush");
  }
  std::printf("   node 2 died mid-2PC; driving degraded ops\n");
  for (int i = 0; i < ops / 3; ++i) RunOp(driver, suite, rng);
  if (!driver.Spawn(2, "")) return 1;
  std::printf("   node 2 respawned with %zu in-doubt txn(s)\n",
              driver.Proc(2).in_doubt.size());
  driver.ResolveInDoubt(ctl, 2);
  for (int i = 0; i < ops / 3; ++i) RunOp(driver, suite, rng);

  std::printf(
      "== phase 4: node 3 armed to die after flushing a COMMIT "
      "(decided in its log)\n");
  driver.Kill(3);
  if (!driver.Spawn(3, "wal.after_commit_flush:3")) return 1;
  driver.ResolveInDoubt(ctl, 3);
  if (!DriveUntilDeath(driver, suite, rng, 3, 8 * ops)) {
    driver.Fail("node 3 never hit wal.after_commit_flush");
  }
  std::printf("   node 3 died mid-2PC; driving degraded ops\n");
  for (int i = 0; i < ops / 3; ++i) RunOp(driver, suite, rng);
  if (!driver.Spawn(3, "")) return 1;
  driver.ResolveInDoubt(ctl, 3);
  for (int i = 0; i < ops / 3; ++i) RunOp(driver, suite, rng);

  std::printf(
      "== phase 5: batched groups; node 1 armed to die mid group flush "
      "(before the device flush lands)\n");
  driver.Kill(1);
  if (!driver.Spawn(1, "wal.before_flush:5")) return 1;
  driver.ResolveInDoubt(ctl, 1);
  if (!DriveUntilDeath(driver, suite, rng, 1, 8 * ops, /*batched=*/true)) {
    driver.Fail("node 1 never hit wal.before_flush");
  }
  std::printf("   node 1 died mid group flush; driving degraded batches\n");
  for (int i = 0; i < std::max(1, ops / 8); ++i) RunBatch(driver, suite, rng);
  if (!driver.Spawn(1, "")) return 1;
  std::printf("   node 1 respawned with %zu in-doubt txn(s)\n",
              driver.Proc(1).in_doubt.size());
  driver.ResolveInDoubt(ctl, 1);
  for (int i = 0; i < std::max(1, ops / 8); ++i) RunBatch(driver, suite, rng);

  std::printf(
      "== phase 6: batched groups; node 2 armed to die mid batch 2PC "
      "(after flushing its PREPARE)\n");
  driver.Kill(2);
  if (!driver.Spawn(2, "wal.after_prepare_flush:2")) return 1;
  driver.ResolveInDoubt(ctl, 2);
  if (!DriveUntilDeath(driver, suite, rng, 2, 8 * ops, /*batched=*/true)) {
    driver.Fail("node 2 never hit wal.after_prepare_flush (batched)");
  }
  std::printf("   node 2 died mid batch 2PC; driving degraded batches\n");
  for (int i = 0; i < std::max(1, ops / 8); ++i) RunBatch(driver, suite, rng);
  if (!driver.Spawn(2, "")) return 1;
  std::printf("   node 2 respawned with %zu in-doubt txn(s)\n",
              driver.Proc(2).in_doubt.size());
  driver.ResolveInDoubt(ctl, 2);
  for (int i = 0; i < std::max(1, ops / 8); ++i) RunBatch(driver, suite, rng);

  std::printf("== final: invariant check against the committed-ops model "
              "(%zu keys)\n",
              driver.model.size());
  chaos::ScanMap scans;
  for (NodeId id = 1; id <= 3; ++id) {
    const auto dump = driver.CtlCall<chaos::DumpStateReply>(
        ctl, id, chaos::kDumpState, net::Empty{});
    if (!dump.ok()) {
      driver.Fail("dump node " + std::to_string(id) + ": " +
                  dump.status().ToString());
      break;
    }
    scans[id] = dump->scan;
  }
  if (driver.ok()) {
    const Status verdict = chaos::CheckAll(config, scans, driver.model);
    if (!verdict.ok()) driver.Fail(verdict.ToString());
  }

  for (NodeId id = 1; id <= 3; ++id) driver.Kill(id);

  std::printf(
      "{\"seed\":%llu,\"ops_attempted\":%llu,\"ops_committed\":%llu,"
      "\"batches_committed\":%llu,"
      "\"kills\":%llu,\"mid_2pc_kills\":%llu,\"respawns\":%llu,"
      "\"model_keys\":%zu,\"verdict\":\"%s\"}\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(driver.ops_attempted),
      static_cast<unsigned long long>(driver.ops_committed),
      static_cast<unsigned long long>(driver.batches_committed),
      static_cast<unsigned long long>(driver.kills),
      static_cast<unsigned long long>(driver.mid_2pc_kills),
      static_cast<unsigned long long>(driver.respawns),
      driver.model.size(), driver.ok() ? "OK" : driver.failure.c_str());
  return driver.ok() ? 0 : 1;
}
