#!/usr/bin/env bash
# Build the test suites under AddressSanitizer and run the suites that
# exercise the observability layer (metrics registry, trace ring buffer,
# logging) plus the allocation-heavy net and integration paths.
#
# Uses the dedicated build-asan/ tree so the regular build/ stays intact.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-asan"
jobs="${JOBS:-$(nproc)}"

cmake -B "$build" -S "$root" \
  -DREPDIR_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

targets=(
  common/common_metrics_test common/common_logging_test
  common/common_stats_test
  storage/storage_wal_test
  net/net_rpc_test net/net_parallel_call_test
  net/net_retry_backoff_test net/net_failure_injector_test
  net/net_tcp_transport_test net/net_scoreboard_test
  rep/rep_version_cache_test rep/rep_op_batch_test
  rep/rep_adaptive_policy_test rep/rep_hedged_read_test
  rep/rep_shard_map_test rep/rep_sharded_dir_test rep/rep_shard_split_test
  rep/rep_reconcile_test rep/rep_reconcile_shard_test
  chaos/chaos_invariants_test
  chaos/chaos_campaign_test
  integration/integration_observability_test
  integration/integration_chaos_test
  integration/integration_cache_coherence_test
)
cmake --build "$build" -j"$jobs" --target "${targets[@]##*/}"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1 halt_on_error=1}"
failed=()
for t in "${targets[@]}"; do
  echo "=== $t ==="
  "$build/tests/$t" --gtest_brief=1 || failed+=("$t")
done

if ((${#failed[@]})); then
  echo "ASan FAILURES: ${failed[*]}" >&2
  exit 1
fi
echo "All suites ASan-clean."
