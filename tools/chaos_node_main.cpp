// chaos_node: one directory representative in its own process, for the
// multi-process chaos cluster (tools/chaos_cluster.cpp).
//
//   chaos_node --node ID --wal PATH [--port P]
//
// The node backs its WAL with PATH, recovers whatever the file holds on
// startup (so a respawn after `kill -9` resumes from the durable log),
// serves the directory RPCs over TCP, and additionally registers the
// cluster-control methods (chaos/cluster_messages.h) the driver uses to
// list in-doubt transactions, feed in coordinator decisions, and dump the
// storage scan for invariant checking.
//
// When the REPDIR_CRASH_POINT environment variable is set ("name:count"),
// the named WAL/recovery crash point is armed with the default handler -
// raise(SIGKILL) - so the process dies at a precise protocol instant, as if
// the machine lost power there.
//
// Startup protocol on stdout (line-oriented, flushed):
//   PORT <port>
//   INDOUBT <txn>...          (may be absent when nothing is in doubt)
//   READY
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/cluster_messages.h"
#include "net/tcp_transport.h"
#include "rep/dir_rep_node.h"
#include "storage/crash_point.h"

using namespace repdir;

int main(int argc, char** argv) {
  NodeId id = 0;
  std::uint16_t port = 0;
  std::string wal_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--node") {
      id = static_cast<NodeId>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--wal") {
      wal_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (id == 0 || wal_path.empty()) {
    std::fprintf(stderr, "usage: chaos_node --node ID --wal PATH [--port P]\n");
    return 2;
  }

  rep::DirRepNodeOptions options;
  options.enable_wal = true;
  options.wal_path = wal_path;
  // Abort-on-conflict: an in-doubt transaction's locks must never wedge the
  // process (there is no cross-process deadlock detector).
  options.participant.blocking_locks = false;
  rep::DirRepNode node(id, options);

  // Resume from whatever survived the last death of this process.
  const auto recovery = node.Recover();
  if (!recovery.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovery.status().ToString().c_str());
    return 1;
  }
  std::vector<TxnId> in_doubt(recovery->in_doubt.begin(),
                              recovery->in_doubt.end());

  // Cluster-control service for the driver.
  node.server().RegisterTyped<net::Empty, chaos::DumpStateReply>(
      chaos::kDumpState,
      [&node](const net::RpcRequest&, const net::Empty&,
              chaos::DumpStateReply& out) {
        out.scan = node.storage().Scan();
        return Status::Ok();
      });
  node.server().RegisterTyped<net::Empty, chaos::InDoubtReply>(
      chaos::kListInDoubt,
      [&in_doubt](const net::RpcRequest&, const net::Empty&,
                  chaos::InDoubtReply& out) {
        out.txns = in_doubt;
        return Status::Ok();
      });
  node.server().RegisterTyped<chaos::ResolveRequest, net::Empty>(
      chaos::kResolve,
      [&node, &in_doubt](const net::RpcRequest&,
                         const chaos::ResolveRequest& req, net::Empty&) {
        REPDIR_RETURN_IF_ERROR(node.ResolveInDoubt(req.txn, req.commit));
        std::erase(in_doubt, req.txn);
        return Status::Ok();
      });

  net::TcpServer server(node.server());
  const auto bound = server.Start(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "cannot listen: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }

  std::printf("PORT %u\n", *bound);
  if (!in_doubt.empty()) {
    std::printf("INDOUBT");
    for (const TxnId t : in_doubt) {
      std::printf(" %llu", static_cast<unsigned long long>(t));
    }
    std::printf("\n");
  }
  std::printf("READY\n");
  std::fflush(stdout);

  // Arm only after READY: startup recovery must not trip the crash point
  // meant for the upcoming workload.
  storage::CrashPoints::Instance().ArmFromEnv();

  // Serve until killed (the driver stops nodes with SIGKILL only).
  for (;;) pause();
}
