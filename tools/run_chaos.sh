#!/usr/bin/env bash
# Chaos harness driver.
#
#   tools/run_chaos.sh smoke    fixed-seed mini-sweep + one multi-process
#                               kill -9 drill (what ctest runs as tier-1)
#   tools/run_chaos.sh full     the acceptance sweep: every builtin
#                               scenario x 40 seeds (240 runs, including
#                               the 9-replica weighted and 31-replica
#                               topologies) plus three seeded cluster
#                               drills; writes build/chaos_report.json
#
# A failing seed prints a ddmin-shrunken schedule replayable with
#   chaos_campaign --scenario NAME --replay-seed SEED --replay-file FILE
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build"
jobs="${JOBS:-$(nproc)}"
mode="${1:-smoke}"

cmake -B "$build" -S "$root" >/dev/null
cmake --build "$build" -j"$jobs" --target chaos_campaign chaos_node \
  chaos_cluster >/dev/null

case "$mode" in
  smoke)
    "$build/tools/chaos_campaign" --smoke
    "$build/tools/chaos_cluster" --ops 40
    ;;
  full)
    "$build/tools/chaos_campaign" --seeds 40 \
      --json "$build/chaos_report.json"
    for seed in 1 2 3; do
      "$build/tools/chaos_cluster" --seed "$seed" --ops 60
    done
    ;;
  *)
    echo "usage: $0 [smoke|full]" >&2
    exit 2
    ;;
esac
echo "chaos($mode): all green"
