// chaos_campaign: sweep seeded fault schedules against in-process
// deployments and verdict every run with the shared invariant checks.
//
//   chaos_campaign                          full sweep (all builtin
//                                           scenarios x --seeds seeds)
//   chaos_campaign --smoke                  quick fixed-seed smoke sweep
//   chaos_campaign --list                   print the builtin scenarios
//   chaos_campaign --scenario NAME          restrict to one scenario
//                                           (repeatable)
//   chaos_campaign --seeds N --seed-base B  sweep seeds B .. B+N-1
//   chaos_campaign --no-shrink              skip ddmin on failures
//   chaos_campaign --json PATH              write the JSON report to PATH
//   chaos_campaign --replay-seed S --scenario NAME
//                                           regenerate + replay one seed
//   chaos_campaign --replay-file PATH --scenario NAME [--replay-seed S]
//                                           replay a schedule from a file
//                                           (e.g. a printed shrunken repro)
//
// A failing seed prints its minimal (ddmin-shrunken) schedule in the
// replayable text form `--replay-file` accepts. Exit status: 0 iff every
// run passed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "chaos/schedule.h"

using namespace repdir;
using namespace repdir::chaos;

namespace {

void PrintOutcome(const RunOutcome& outcome) {
  std::printf(
      "  ops: %llu attempted, %llu committed, %llu rejected, "
      "%llu unavailable, %llu aborted\n",
      static_cast<unsigned long long>(outcome.ops_attempted),
      static_cast<unsigned long long>(outcome.ops_committed),
      static_cast<unsigned long long>(outcome.ops_rejected),
      static_cast<unsigned long long>(outcome.ops_unavailable),
      static_cast<unsigned long long>(outcome.ops_aborted));
  std::printf("  faults: %llu crashes, %llu recoveries, %llu checkpoints\n",
              static_cast<unsigned long long>(outcome.crashes),
              static_cast<unsigned long long>(outcome.recoveries),
              static_cast<unsigned long long>(outcome.checkpoints));
}

int Replay(const ScenarioSpec& spec, const Schedule& schedule,
           std::uint64_t seed, bool shrink) {
  std::printf("== replaying %zu events against %s (seed %llu)\n",
              schedule.size(), spec.name.c_str(),
              static_cast<unsigned long long>(seed));
  const RunOutcome outcome = RunSchedule(spec, schedule, seed);
  PrintOutcome(outcome);
  if (outcome.ok()) {
    std::printf("  verdict: OK\n");
    return 0;
  }
  std::printf("  verdict: VIOLATION: %s\n", outcome.verdict.ToString().c_str());
  if (shrink) {
    const Schedule minimal = ShrinkSchedule(schedule, [&](const Schedule& s) {
      return !RunSchedule(spec, s, seed).ok();
    });
    std::printf(
        "\n-- minimal failing schedule (%zu events); save and rerun with\n"
        "--   chaos_campaign --scenario %s --replay-seed %llu "
        "--replay-file FILE\n%s",
        minimal.size(), spec.name.c_str(),
        static_cast<unsigned long long>(seed),
        ScheduleToString(minimal).c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> scenario_names;
  std::uint32_t seeds = 40;
  std::uint64_t seed_base = 1;
  bool shrink = true;
  bool smoke = false;
  std::string json_path;
  std::string replay_file;
  std::uint64_t replay_seed = 0;
  bool have_replay_seed = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      for (const auto& s : BuiltinScenarios()) {
        std::printf("%-18s %s%s\n", s.name.c_str(),
                    s.topology.Config().ToString().c_str(),
                    s.enable_cache ? "  [version cache]" : "");
      }
      return 0;
    } else if (arg == "--scenario") {
      scenario_names.emplace_back(next());
    } else if (arg == "--seeds") {
      seeds = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--seed-base") {
      seed_base = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--replay-seed") {
      replay_seed = std::strtoull(next(), nullptr, 10);
      have_replay_seed = true;
    } else if (arg == "--replay-file") {
      replay_file = next();
    } else {
      std::fprintf(stderr, "unknown flag %s (see header comment)\n",
                   arg.c_str());
      return 2;
    }
  }

  // Replay modes need exactly one scenario to fix the topology.
  if (!replay_file.empty() || have_replay_seed) {
    if (scenario_names.size() != 1) {
      std::fprintf(stderr, "replay needs exactly one --scenario\n");
      return 2;
    }
    const auto spec = FindScenario(scenario_names[0]);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    if (!replay_file.empty()) {
      std::ifstream in(replay_file);
      if (!in) {
        std::fprintf(stderr, "cannot read %s\n", replay_file.c_str());
        return 2;
      }
      std::stringstream buffer;
      buffer << in.rdbuf();
      const auto schedule = ParseSchedule(buffer.str());
      if (!schedule.ok()) {
        std::fprintf(stderr, "bad schedule: %s\n",
                     schedule.status().ToString().c_str());
        return 2;
      }
      return Replay(*spec, *schedule, replay_seed, shrink);
    }
    return Replay(*spec, GenerateSchedule(*spec, replay_seed), replay_seed,
                  shrink);
  }

  // Sweep mode.
  std::vector<ScenarioSpec> scenarios;
  if (scenario_names.empty()) {
    scenarios = BuiltinScenarios();
  } else {
    for (const auto& name : scenario_names) {
      const auto spec = FindScenario(name);
      if (!spec.ok()) {
        std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
        return 2;
      }
      scenarios.push_back(*spec);
    }
  }
  if (smoke) {
    seeds = 5;
    for (auto& s : scenarios) s.steps = std::min<std::uint32_t>(s.steps, 150);
  }

  CampaignOptions options;
  options.seed_base = seed_base;
  options.seeds_per_scenario = seeds;
  options.shrink_failures = shrink;
  options.progress = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
  };

  const CampaignReport report = RunCampaign(scenarios, options);

  std::uint64_t total_seeds = 0;
  std::uint64_t total_failed = 0;
  std::uint64_t total_committed = 0;
  for (const auto& s : report.scenarios) {
    total_seeds += s.seeds_run;
    total_failed += s.seeds_failed;
    total_committed += s.ops_committed;
    std::printf("%-18s %-28s seeds %u/%u ok  committed %llu  crashes %llu\n",
                s.scenario.c_str(), s.topology.c_str(),
                s.seeds_run - s.seeds_failed, s.seeds_run,
                static_cast<unsigned long long>(s.ops_committed),
                static_cast<unsigned long long>(s.crashes));
    for (const auto& f : s.failures) {
      std::printf("  FAIL seed %llu: %s\n",
                  static_cast<unsigned long long>(f.seed), f.verdict.c_str());
      if (!f.shrunk.empty()) {
        std::printf(
            "  minimal repro (%zu events); replay with\n"
            "    chaos_campaign --scenario %s --replay-seed %llu "
            "--replay-file FILE\n%s",
            f.shrunk.size(), s.scenario.c_str(),
            static_cast<unsigned long long>(f.seed),
            ScheduleToString(f.shrunk).c_str());
      }
    }
  }
  std::printf("== %llu seeds across %zu scenarios: %llu failed, "
              "%llu ops committed\n",
              static_cast<unsigned long long>(total_seeds),
              report.scenarios.size(),
              static_cast<unsigned long long>(total_failed),
              static_cast<unsigned long long>(total_committed));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << report.ToJson() << "\n";
    std::printf("report written to %s\n", json_path.c_str());
  }
  return report.AllPassed() ? 0 : 1;
}
