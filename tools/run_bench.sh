#!/usr/bin/env bash
# Build the benchmarks in Release and regenerate every BENCH_*.json at the
# repo root. Currently three benches emit JSON:
#   bench_concurrency   -> BENCH_observability.json, BENCH_parallel_fanout.json
#   bench_version_cache -> BENCH_version_cache.json
#   bench_throughput    -> BENCH_throughput.json (also asserts the >=5x
#                          batched-vs-unbatched saturation speedup)
#   bench_sharding      -> BENCH_sharding.json (also asserts the >=3x
#                          4-shard aggregate speedup on both transports)
#   bench_reconcile     -> BENCH_reconcile.json (digest repair vs full-state
#                          bytes, ghost-debt drain, stale-read savings; the
#                          audits are protocol invariants)
#   bench_quorum_policy -> BENCH_quorum_policy.json (adaptive planning vs
#                          random/stable orders; asserts the >=2x hedged p99
#                          cut under a 10x straggler at <=10% extra messages)
#
# Uses the dedicated build-release/ tree so the regular build/ stays intact.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="$root/build-release"
jobs="${JOBS:-$(nproc)}"

cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=Release

benches=(bench_concurrency bench_version_cache bench_throughput bench_sharding bench_reconcile bench_quorum_policy)
cmake --build "$build" -j"$jobs" --target "${benches[@]}"

# Benches write their JSON into the working directory; run from the repo
# root so the committed BENCH_*.json files are the ones refreshed.
cd "$root"
for b in "${benches[@]}"; do
  echo "=== $b ==="
  "$build/bench/$b"
done

echo
echo "Regenerated:"
ls -l "$root"/BENCH_*.json
