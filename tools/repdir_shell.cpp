// repdir_shell: interactive shell over an in-process replicated-directory
// deployment. Useful for demos and for poking at the algorithm's failure
// behaviour by hand.
//
//   $ ./repdir_shell [replicas] [R] [W] [cache]     (default 3 2 2, no cache)
//
// A trailing "cache" argument enables the client-side version cache
// (guarded single-round writes + validated reads; see rep/version_cache.h).
//
// Commands:
//   insert <key> <value>     update <key> <value>
//   lookup <key>             delete <key>
//   scan                     dump
//   down <node>              up <node>
//   crash <node>             recover <node>
//   begin | commit | abort   (multi-op transaction)
//   stats                    metrics [json]
//   trace on|off|dump|clear  help | quit
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "sim/network_model.h"

using namespace repdir;

namespace {

struct Shell {
  Shell(rep::QuorumConfig config, bool enable_cache)
      : config_(std::move(config)), transport_(nullptr, &network_) {
    rep::DirRepNodeOptions node_options;
    node_options.enable_wal = true;
    for (const auto& replica : config_.replicas()) {
      nodes_.push_back(
          std::make_unique<rep::DirRepNode>(replica.node, node_options));
      transport_.RegisterNode(replica.node, nodes_.back()->server());
    }
    rep::SuiteOptions options;
    options.config = config_;
    options.enable_version_cache = enable_cache;
    suite_ = std::make_unique<rep::DirectorySuite>(transport_, 100,
                                                   std::move(options));
  }

  rep::DirRepNode* Node(NodeId id) {
    for (auto& n : nodes_) {
      if (n->id() == id) return n.get();
    }
    return nullptr;
  }

  void Print(const Status& st) {
    std::printf("%s\n", st.ToString().c_str());
  }

  void Run() {
    std::printf("repdir shell - %s suite. 'help' for commands.\n",
                config_.ToString().c_str());
    std::string line;
    while (std::printf("repdir> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) return true;

    auto need_key = [&](std::string& key) { return bool(in >> key); };

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "insert/update <key> <value> | lookup/delete <key> | scan | dump\n"
          "down/up/crash/recover <node> | begin/commit/abort | stats\n"
          "metrics [json] | trace on|off|dump|clear | quit\n");
    } else if (cmd == "insert" || cmd == "update") {
      std::string key;
      std::string value;
      if (!need_key(key) || !(in >> value)) {
        std::printf("usage: %s <key> <value>\n", cmd.c_str());
        return true;
      }
      const Status st = Apply(cmd == "insert", key, value);
      Print(st);
    } else if (cmd == "lookup") {
      std::string key;
      if (!need_key(key)) return Usage("lookup <key>");
      const auto r = txn_ ? txn_->Lookup(key) : suite_->Lookup(key);
      if (!r.ok()) {
        Print(r.status());
      } else if (r->found) {
        std::printf("%s = %s\n", key.c_str(), r->value.c_str());
      } else {
        std::printf("(not found)\n");
      }
    } else if (cmd == "delete") {
      std::string key;
      if (!need_key(key)) return Usage("delete <key>");
      Print(txn_ ? txn_->Delete(key) : suite_->Delete(key));
    } else if (cmd == "scan") {
      auto next = suite_->FirstKey();
      std::size_t count = 0;
      while (next.ok() && next->found) {
        std::printf("  %s = %s\n", next->key.c_str(), next->value.c_str());
        ++count;
        next = suite_->NextKey(next->key);
      }
      if (!next.ok()) Print(next.status());
      std::printf("(%zu entries)\n", count);
    } else if (cmd == "dump") {
      for (auto& node : nodes_) {
        std::printf("  node %u%s: %s\n", node->id(),
                    network_.IsNodeUp(node->id()) ? "" : " (down)",
                    storage::DumpRep(node->storage()).c_str());
      }
    } else if (cmd == "down" || cmd == "up") {
      NodeId id = 0;
      if (!(in >> id) || Node(id) == nullptr) return Usage("down|up <node>");
      network_.SetNodeUp(id, cmd == "up");
      std::printf("node %u %s\n", id, cmd.c_str());
    } else if (cmd == "crash") {
      NodeId id = 0;
      if (!(in >> id) || Node(id) == nullptr) return Usage("crash <node>");
      network_.SetNodeUp(id, false);
      Node(id)->Crash();
      std::printf("node %u crashed (volatile state lost)\n", id);
    } else if (cmd == "recover") {
      NodeId id = 0;
      if (!(in >> id) || Node(id) == nullptr) return Usage("recover <node>");
      const auto outcome = Node(id)->Recover();
      if (!outcome.ok()) {
        Print(outcome.status());
        return true;
      }
      for (const TxnId t : outcome->in_doubt) {
        (void)Node(id)->ResolveInDoubt(t, false);
      }
      network_.SetNodeUp(id, true);
      std::printf("node %u recovered: %zu ops replayed, %zu in-doubt\n", id,
                  outcome->ops_replayed, outcome->in_doubt.size());
    } else if (cmd == "begin") {
      if (txn_) {
        std::printf("transaction already open\n");
      } else {
        txn_.emplace(suite_->Begin());
        std::printf("transaction %llu open\n",
                    static_cast<unsigned long long>(txn_->id()));
      }
    } else if (cmd == "commit") {
      if (!txn_) {
        std::printf("no open transaction\n");
      } else {
        Print(txn_->Commit());
        txn_.reset();
      }
    } else if (cmd == "abort") {
      if (!txn_) {
        std::printf("no open transaction\n");
      } else {
        txn_->Abort();
        txn_.reset();
        std::printf("aborted\n");
      }
    } else if (cmd == "stats") {
      const auto& s = suite_->stats();
      const auto& c = s.counters();
      std::printf(
          "ops: %llu lookups, %llu inserts, %llu updates, %llu deletes; "
          "%llu aborted, %llu unavailable\n",
          (unsigned long long)c.lookups, (unsigned long long)c.inserts,
          (unsigned long long)c.updates, (unsigned long long)c.deletes,
          (unsigned long long)c.aborted, (unsigned long long)c.unavailable);
      std::printf("delete overheads: entries %s | ghosts %s | insertions %s\n",
                  s.entries_in_ranges_coalesced().ToString().c_str(),
                  s.deletions_while_coalescing().ToString().c_str(),
                  s.insertions_while_coalescing().ToString().c_str());
      std::printf(
          "cache: %llu hits, %llu misses, %llu invalidations; "
          "%llu fast-path writes, %llu validated reads, %llu fallbacks\n",
          (unsigned long long)c.cache_hits, (unsigned long long)c.cache_misses,
          (unsigned long long)c.cache_invalidations,
          (unsigned long long)c.fast_path_writes,
          (unsigned long long)c.validated_reads,
          (unsigned long long)c.cache_fallbacks);
      std::printf("('metrics' has the per-layer breakdown)\n");
    } else if (cmd == "metrics") {
      std::string mode;
      in >> mode;
      auto& registry = MetricsRegistry::Default();
      if (mode == "json") {
        std::printf("%s\n", registry.RenderJson().c_str());
      } else if (mode.empty()) {
        std::printf("%s", registry.RenderText().c_str());
      } else {
        return Usage("metrics [json]");
      }
    } else if (cmd == "trace") {
      std::string sub;
      auto& sink = TraceSink::Default();
      if (!(in >> sub)) return Usage("trace on|off|dump|clear");
      if (sub == "on") {
        sink.set_enabled(true);
        std::printf("tracing on\n");
      } else if (sub == "off") {
        sink.set_enabled(false);
        std::printf("tracing off\n");
      } else if (sub == "dump") {
        std::printf("%s\n", sink.DumpJson().c_str());
      } else if (sub == "clear") {
        sink.Clear();
        std::printf("trace buffer cleared\n");
      } else {
        return Usage("trace on|off|dump|clear");
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

  Status Apply(bool is_insert, const std::string& key,
               const std::string& value) {
    if (txn_) {
      return is_insert ? txn_->Insert(key, value) : txn_->Update(key, value);
    }
    return is_insert ? suite_->Insert(key, value)
                     : suite_->Update(key, value);
  }

  bool Usage(const char* text) {
    std::printf("usage: %s\n", text);
    return true;
  }

  rep::QuorumConfig config_;
  sim::NetworkModel network_;
  net::InProcTransport transport_;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes_;
  std::unique_ptr<rep::DirectorySuite> suite_;
  std::optional<rep::SuiteTxn> txn_;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t replicas = 3;
  Votes r = 2;
  Votes w = 2;
  bool enable_cache = false;
  if (argc > 1 && std::string(argv[argc - 1]) == "cache") {
    enable_cache = true;
    --argc;
  }
  if (argc == 4) {
    replicas = static_cast<std::uint32_t>(std::atoi(argv[1]));
    r = static_cast<Votes>(std::atoi(argv[2]));
    w = static_cast<Votes>(std::atoi(argv[3]));
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: %s [replicas R W] [cache]\n", argv[0]);
    return 2;
  }
  const auto config = rep::QuorumConfig::Uniform(replicas, r, w);
  if (const Status st = config.Validate(); !st.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n", st.ToString().c_str());
    return 2;
  }
  Shell shell(config, enable_cache);
  shell.Run();
  return 0;
}
