// repdir_shell: interactive shell over an in-process replicated-directory
// deployment. Useful for demos and for poking at the algorithm's failure
// behaviour by hand.
//
//   $ ./repdir_shell [replicas R W] [shards N] [cache]   (default 3 2 2,
//                                                         1 shard, no cache)
//
// A trailing "cache" argument enables the client-side version cache
// (guarded single-round writes + validated reads; see rep/version_cache.h).
//
// "shards N" (N > 1) range-partitions the keyspace over N suites, each
// with its own replica set of the given topology, fronted by the
// ShardedDirectory router (see rep/sharded_dir.h). Fences split the
// alphabet evenly by first letter; shard s uses nodes s*10+1..s*10+R.
// Multi-op transactions (begin/commit/abort) are single-suite only.
//
// Commands:
//   insert <key> <value>     update <key> <value>
//   lookup <key>             delete <key>
//   scan                     dump
//   down <node>              up <node>
//   crash <node>             recover <node>
//   begin | commit | abort   (multi-op transaction)
//   reconcile [node]         (anti-entropy pass; with a node: repair just it)
//   stats                    metrics [json]
//   map                      (sharded mode: the routing table)
//   trace on|off|dump|clear  help | quit
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "rep/reconciler.h"
#include "rep/shard_manager.h"
#include "rep/sharded_dir.h"
#include "sim/network_model.h"

using namespace repdir;

namespace {

struct Shell {
  Shell(rep::QuorumConfig config, std::uint32_t shards, bool enable_cache)
      : transport_(nullptr, &network_) {
    rep::DirRepNodeOptions node_options;
    node_options.enable_wal = true;
    // Shard s (0-based) gets the same topology on node ids s*10+1.. -
    // replica vote weights carry over, node ids shift by shard.
    for (std::uint32_t s = 0; s < shards; ++s) {
      std::vector<rep::Replica> replicas;
      for (std::size_t i = 0; i < config.replicas().size(); ++i) {
        replicas.push_back({static_cast<NodeId>(s * 10 + i + 1),
                            config.replicas()[i].votes});
      }
      configs_.emplace_back(std::move(replicas), config.read_quorum(),
                            config.write_quorum());
      for (const auto& replica : configs_.back().replicas()) {
        nodes_.push_back(
            std::make_unique<rep::DirRepNode>(replica.node, node_options));
        transport_.RegisterNode(replica.node, nodes_.back()->server());
      }
    }

    if (shards > 1) {
      // Fences split the alphabet evenly by first letter: shard i owns
      // [low_i, low_{i+1}), the last unbounded above.
      rep::ShardMap map;
      map.version = 1;
      for (std::uint32_t s = 0; s < shards; ++s) {
        rep::ShardEntry entry;
        entry.shard = s + 1;
        if (s > 0) entry.low = std::string(1, static_cast<char>(
                                                  'a' + s * 26 / shards));
        entry.config = configs_[s];
        map.entries.push_back(std::move(entry));
      }
      (void)authority_.Install(std::move(map));
      rep::ShardManager boot(transport_, /*manager_node=*/90, authority_);
      (void)boot.ReconfigureAll();
      rep::ShardedDirectory::Options options;
      options.enable_version_cache = enable_cache;
      router_ = std::make_unique<rep::ShardedDirectory>(transport_, 100,
                                                        authority_, options);
    } else {
      rep::SuiteOptions options;
      options.config = configs_[0];
      options.enable_version_cache = enable_cache;
      suite_ = std::make_unique<rep::DirectorySuite>(transport_, 100,
                                                     std::move(options));
    }
  }

  rep::DirRepNode* Node(NodeId id) {
    for (auto& n : nodes_) {
      if (n->id() == id) return n.get();
    }
    return nullptr;
  }

  void Print(const Status& st) {
    std::printf("%s\n", st.ToString().c_str());
  }

  void Run() {
    if (router_ != nullptr) {
      std::printf("repdir shell - %zu shards, each %s. 'help' for commands.\n",
                  configs_.size(), configs_[0].ToString().c_str());
      std::printf("  %s\n", authority_.Get()->ToString().c_str());
    } else {
      std::printf("repdir shell - %s suite. 'help' for commands.\n",
                  configs_[0].ToString().c_str());
    }
    std::string line;
    while (std::printf("repdir> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
    }
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) return true;

    auto need_key = [&](std::string& key) { return bool(in >> key); };

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "insert/update <key> <value> | lookup/delete <key> | scan | dump\n"
          "down/up/crash/recover <node> | begin/commit/abort | stats\n"
          "reconcile [node] | metrics [json] | map | "
          "trace on|off|dump|clear | quit\n");
    } else if (cmd == "insert" || cmd == "update") {
      std::string key;
      std::string value;
      if (!need_key(key) || !(in >> value)) {
        std::printf("usage: %s <key> <value>\n", cmd.c_str());
        return true;
      }
      const Status st = Apply(cmd == "insert", key, value);
      Print(st);
    } else if (cmd == "lookup") {
      std::string key;
      if (!need_key(key)) return Usage("lookup <key>");
      const auto r = txn_    ? txn_->Lookup(key)
                     : router_ ? router_->Lookup(key)
                               : suite_->Lookup(key);
      if (!r.ok()) {
        Print(r.status());
      } else if (r->found) {
        std::printf("%s = %s\n", key.c_str(), r->value.c_str());
      } else {
        std::printf("(not found)\n");
      }
    } else if (cmd == "delete") {
      std::string key;
      if (!need_key(key)) return Usage("delete <key>");
      Print(txn_    ? txn_->Delete(key)
            : router_ ? router_->Delete(key)
                      : suite_->Delete(key));
    } else if (cmd == "scan") {
      std::size_t count = 0;
      if (router_ != nullptr) {
        const auto entries = router_->Scan();
        if (!entries.ok()) {
          Print(entries.status());
        } else {
          for (const auto& e : *entries) {
            std::printf("  %s = %s\n", e.key.c_str(), e.value.c_str());
            ++count;
          }
        }
      } else {
        auto next = suite_->FirstKey();
        while (next.ok() && next->found) {
          std::printf("  %s = %s\n", next->key.c_str(), next->value.c_str());
          ++count;
          next = suite_->NextKey(next->key);
        }
        if (!next.ok()) Print(next.status());
      }
      std::printf("(%zu entries)\n", count);
    } else if (cmd == "dump") {
      for (auto& node : nodes_) {
        std::printf("  node %u%s: %s\n", node->id(),
                    network_.IsNodeUp(node->id()) ? "" : " (down)",
                    storage::DumpRep(node->storage()).c_str());
      }
    } else if (cmd == "down" || cmd == "up") {
      NodeId id = 0;
      if (!(in >> id) || Node(id) == nullptr) return Usage("down|up <node>");
      network_.SetNodeUp(id, cmd == "up");
      std::printf("node %u %s\n", id, cmd.c_str());
    } else if (cmd == "crash") {
      NodeId id = 0;
      if (!(in >> id) || Node(id) == nullptr) return Usage("crash <node>");
      network_.SetNodeUp(id, false);
      Node(id)->Crash();
      std::printf("node %u crashed (volatile state lost)\n", id);
    } else if (cmd == "recover") {
      NodeId id = 0;
      if (!(in >> id) || Node(id) == nullptr) return Usage("recover <node>");
      const auto outcome = Node(id)->Recover();
      if (!outcome.ok()) {
        Print(outcome.status());
        return true;
      }
      for (const TxnId t : outcome->in_doubt) {
        (void)Node(id)->ResolveInDoubt(t, false);
      }
      network_.SetNodeUp(id, true);
      std::printf("node %u recovered: %zu ops replayed, %zu in-doubt\n", id,
                  outcome->ops_replayed, outcome->in_doubt.size());
    } else if (cmd == "begin") {
      if (router_ != nullptr) {
        std::printf("multi-op transactions are single-suite only; each "
                    "sharded op runs in its own transaction\n");
      } else if (txn_) {
        std::printf("transaction already open\n");
      } else {
        txn_.emplace(suite_->Begin());
        std::printf("transaction %llu open\n",
                    static_cast<unsigned long long>(txn_->id()));
      }
    } else if (cmd == "commit") {
      if (!txn_) {
        std::printf("no open transaction\n");
      } else {
        Print(txn_->Commit());
        txn_.reset();
      }
    } else if (cmd == "abort") {
      if (!txn_) {
        std::printf("no open transaction\n");
      } else {
        txn_->Abort();
        txn_.reset();
        std::printf("aborted\n");
      }
    } else if (cmd == "reconcile") {
      NodeId id = 0;
      const bool targeted = bool(in >> id);
      if (targeted && Node(id) == nullptr) return Usage("reconcile [node]");
      Reconcile(targeted, id);
    } else if (cmd == "stats") {
      if (router_ != nullptr) {
        PrintShardedStats();
      } else {
        PrintStats("total", suite_->stats());
        std::printf("('metrics' has the per-layer breakdown)\n");
      }
    } else if (cmd == "map") {
      if (router_ != nullptr) {
        std::printf("%s\n", authority_.Get()->ToString().c_str());
      } else {
        std::printf("single suite - no shard map\n");
      }
    } else if (cmd == "metrics") {
      std::string mode;
      in >> mode;
      auto& registry = MetricsRegistry::Default();
      if (mode == "json") {
        std::printf("%s\n", registry.RenderJson().c_str());
      } else if (mode.empty()) {
        std::printf("%s", registry.RenderText().c_str());
      } else {
        return Usage("metrics [json]");
      }
    } else if (cmd == "trace") {
      std::string sub;
      auto& sink = TraceSink::Default();
      if (!(in >> sub)) return Usage("trace on|off|dump|clear");
      if (sub == "on") {
        sink.set_enabled(true);
        std::printf("tracing on\n");
      } else if (sub == "off") {
        sink.set_enabled(false);
        std::printf("tracing off\n");
      } else if (sub == "dump") {
        std::printf("%s\n", sink.DumpJson().c_str());
      } else if (sub == "clear") {
        sink.Clear();
        std::printf("trace buffer cleared\n");
      } else {
        return Usage("trace on|off|dump|clear");
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

  /// One counters line, labelled: the aggregate or a single shard.
  void PrintStats(const std::string& label, const rep::SuiteStats& s) {
    const auto& c = s.counters();
    std::printf(
        "%-8s ops: %llu lookups, %llu inserts, %llu updates, %llu deletes; "
        "%llu aborted, %llu unavailable\n",
        label.c_str(), (unsigned long long)c.lookups,
        (unsigned long long)c.inserts, (unsigned long long)c.updates,
        (unsigned long long)c.deletes, (unsigned long long)c.aborted,
        (unsigned long long)c.unavailable);
    std::printf(
        "%-8s delete overheads: entries %s | ghosts %s | insertions %s\n",
        label.c_str(), s.entries_in_ranges_coalesced().ToString().c_str(),
        s.deletions_while_coalescing().ToString().c_str(),
        s.insertions_while_coalescing().ToString().c_str());
    std::printf(
        "%-8s cache: %llu hits, %llu misses, %llu invalidations; "
        "%llu fast-path writes, %llu validated reads, %llu fallbacks\n",
        label.c_str(), (unsigned long long)c.cache_hits,
        (unsigned long long)c.cache_misses,
        (unsigned long long)c.cache_invalidations,
        (unsigned long long)c.fast_path_writes,
        (unsigned long long)c.validated_reads,
        (unsigned long long)c.cache_fallbacks);
  }

  /// Aggregate counters over every shard's suite, then the per-shard
  /// breakdown. Distribution stats don't merge, so the aggregate is
  /// counters-only and the per-shard lines carry the distributions.
  void PrintShardedStats() {
    rep::OpCounters total;
    const auto ids = router_->shard_ids();
    for (const rep::ShardId id : ids) {
      const auto& c = router_->shard_suite(id)->stats().counters();
      total.lookups += c.lookups;
      total.inserts += c.inserts;
      total.updates += c.updates;
      total.deletes += c.deletes;
      total.aborted += c.aborted;
      total.unavailable += c.unavailable;
      total.cache_hits += c.cache_hits;
      total.cache_misses += c.cache_misses;
      total.cache_invalidations += c.cache_invalidations;
      total.fast_path_writes += c.fast_path_writes;
      total.validated_reads += c.validated_reads;
      total.cache_fallbacks += c.cache_fallbacks;
    }
    std::printf(
        "total    ops: %llu lookups, %llu inserts, %llu updates, "
        "%llu deletes; %llu aborted, %llu unavailable (%zu shards)\n",
        (unsigned long long)total.lookups, (unsigned long long)total.inserts,
        (unsigned long long)total.updates, (unsigned long long)total.deletes,
        (unsigned long long)total.aborted,
        (unsigned long long)total.unavailable, ids.size());
    for (const rep::ShardId id : ids) {
      PrintStats("shard" + std::to_string(id),
                 router_->shard_suite(id)->stats());
    }
    std::printf(
        "('metrics' has the per-layer breakdown; suite.shard<N>.* names "
        "are per shard, router.* is the routing layer)\n");
  }

  /// Anti-entropy by hand: a full RunOnce over every shard's replica set,
  /// or - with a node - one SyncReplica folding a read quorum into it.
  /// Prints the per-pass deltas so the repair work is visible.
  void Reconcile(bool targeted, NodeId target) {
    if (reconcilers_.empty()) {
      // Lazily built, one per shard, on client ids no suite uses.
      for (std::size_t s = 0; s < configs_.size(); ++s) {
        reconcilers_.push_back(std::make_unique<rep::Reconciler>(
            transport_, static_cast<NodeId>(120 + s), configs_[s]));
      }
    }
    for (std::size_t s = 0; s < reconcilers_.size(); ++s) {
      auto& rec = *reconcilers_[s];
      const auto members = rec.config().Nodes();
      if (targeted &&
          std::find(members.begin(), members.end(), target) == members.end()) {
        continue;
      }
      const rep::ReconcileStats before = rec.stats();
      const Status st = targeted ? rec.SyncReplica(target) : rec.RunOnce();
      const rep::ReconcileStats& a = rec.stats();
      const char* label = configs_.size() > 1 ? "shard" : "suite";
      std::printf(
          "%s%s: %s; %llu/%llu ranges mismatched, %llu entries installed, "
          "%llu ghosts collected, %llu gap bumps, %llu skipped newer\n",
          label,
          configs_.size() > 1 ? std::to_string(s + 1).c_str() : "",
          st.ToString().c_str(),
          (unsigned long long)(a.ranges_mismatched - before.ranges_mismatched),
          (unsigned long long)(a.ranges_checked - before.ranges_checked),
          (unsigned long long)(a.entries_installed - before.entries_installed),
          (unsigned long long)(a.ghosts_collected - before.ghosts_collected),
          (unsigned long long)(a.gap_bumps - before.gap_bumps),
          (unsigned long long)(a.skipped_newer - before.skipped_newer));
      std::printf(
          "%s%s: %llu repair txns (%llu aborted), %llu digest B, "
          "%llu repair B\n",
          label,
          configs_.size() > 1 ? std::to_string(s + 1).c_str() : "",
          (unsigned long long)(a.repair_txns - before.repair_txns),
          (unsigned long long)(a.repair_aborts - before.repair_aborts),
          (unsigned long long)(a.digest_bytes - before.digest_bytes),
          (unsigned long long)(a.repair_bytes - before.repair_bytes));
    }
  }

  Status Apply(bool is_insert, const std::string& key,
               const std::string& value) {
    if (txn_) {
      return is_insert ? txn_->Insert(key, value) : txn_->Update(key, value);
    }
    if (router_ != nullptr) {
      return is_insert ? router_->Insert(key, value)
                       : router_->Update(key, value);
    }
    return is_insert ? suite_->Insert(key, value)
                     : suite_->Update(key, value);
  }

  bool Usage(const char* text) {
    std::printf("usage: %s\n", text);
    return true;
  }

  std::vector<rep::QuorumConfig> configs_;  ///< One per shard.
  sim::NetworkModel network_;
  net::InProcTransport transport_;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes_;
  rep::ShardMapAuthority authority_;
  std::unique_ptr<rep::DirectorySuite> suite_;        ///< 1-shard mode.
  std::unique_ptr<rep::ShardedDirectory> router_;     ///< sharded mode.
  std::optional<rep::SuiteTxn> txn_;
  std::vector<std::unique_ptr<rep::Reconciler>> reconcilers_;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t replicas = 3;
  Votes r = 2;
  Votes w = 2;
  std::uint32_t shards = 1;
  bool enable_cache = false;
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args.back() == "cache") {
    enable_cache = true;
    args.pop_back();
  }
  if (args.size() >= 2 && args[args.size() - 2] == "shards") {
    shards = static_cast<std::uint32_t>(std::atoi(args.back().c_str()));
    args.pop_back();
    args.pop_back();
  }
  if (args.size() == 3) {
    replicas = static_cast<std::uint32_t>(std::atoi(args[0].c_str()));
    r = static_cast<Votes>(std::atoi(args[1].c_str()));
    w = static_cast<Votes>(std::atoi(args[2].c_str()));
  } else if (!args.empty()) {
    std::fprintf(stderr, "usage: %s [replicas R W] [shards N] [cache]\n",
                 argv[0]);
    return 2;
  }
  if (shards == 0 || shards > 26) {
    std::fprintf(stderr, "shards must be in [1, 26]\n");
    return 2;
  }
  const auto config = rep::QuorumConfig::Uniform(replicas, r, w);
  if (const Status st = config.Validate(); !st.ok()) {
    std::fprintf(stderr, "bad configuration: %s\n", st.ToString().c_str());
    return 2;
  }
  Shell shell(config, shards, enable_cache);
  shell.Run();
  return 0;
}
