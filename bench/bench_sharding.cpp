// Sharding payoff: does range-partitioning the keyspace move the aggregate
// saturation point near-linearly, and does it stay correct while doing so?
//
// Three experiments, every shard a 3-2-2 replica set with the WAL enabled:
//
//  1. Closed-loop saturation sweep: T client threads, each driving its own
//     ShardedDirectory router over its own key slice, against 1/2/4/8
//     shards x transport {threaded (200us simulated one-way links), tcp
//     (real loopback sockets, multiplexed)}. Same client count, same op
//     count, same per-shard topology - only the partition count changes,
//     so the ops/s ratio IS the sharding payoff.
//  2. Mid-bench online split: workers hammer a single shard while the
//     ShardManager splits it under them (dual-writes, chunked copy, flip,
//     retire). We report latency percentiles before/during/after the
//     split and every op must still commit (retries on transient aborts
//     are counted, never dropped).
//  3. Scan-equality audit: one deterministic op script - including a
//     delete whose coalesce range spans the (future) shard boundary and
//     an online split halfway through - applied to a sharded deployment
//     and to a plain single suite must produce byte-identical full scans.
//
// Emits BENCH_sharding.json. `--smoke` runs a seconds-scale subset with
// the audit but no perf assertion (CI timing is noise); the full run
// asserts >=3x aggregate throughput at 4 shards vs 1 on BOTH transports.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lock/deadlock.h"
#include "net/tcp_transport.h"
#include "net/threaded_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/shard_manager.h"
#include "rep/sharded_dir.h"

namespace {

using namespace repdir;
using Clock = std::chrono::steady_clock;

constexpr DurationMicros kLinkLatency = 200;  // one-way, threaded transport
// Per-message simulated service time for the sweep's single-threaded
// representatives. Deliberately large: per-shard capacity must be set by
// this simulated cost, not by real CPU, so the sweep measures protocol
// scaling rather than how many cores the host happens to have.
constexpr DurationMicros kServiceTime = 1000;
constexpr int kKeysPerClient = 16;
constexpr NodeId kManagerNode = 90;
constexpr NodeId kSeederNode = 99;

enum class Wire { kThreaded, kTcp };

const char* WireName(Wire w) { return w == Wire::kThreaded ? "threaded" : "tcp"; }

/// Global key i, zero-padded so lexicographic order == numeric order.
UserKey KeyAt(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "g%05d", i);
  return buf;
}

/// Shard s+1 replicated 3-2-2 on nodes s*10+1 .. s*10+3.
rep::QuorumConfig ShardConfig(int s) {
  return rep::QuorumConfig::Uniform(3, 2, 2, static_cast<NodeId>(s * 10 + 1));
}

/// A sharded deployment on either transport: `owning` shards partition the
/// keyspace at `lows` (lows[0] must be ""), `spare` shards are registered
/// and reachable but own nothing yet (split targets). Owns everything; the
/// routers the caller makes must die before it does.
struct ShardedDeployment {
  lock::DeadlockDetector detector;
  rep::ShardMapAuthority authority;
  std::unique_ptr<sim::NetworkModel> network;
  std::unique_ptr<net::ThreadedTransport> threaded;
  std::unique_ptr<net::TcpTransport> tcp;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  std::vector<std::unique_ptr<net::TcpServer>> servers;

  /// `service_time_us` > 0 models single-threaded representatives (the
  /// saturation sweep needs nodes with real capacity); the split and audit
  /// experiments leave it 0 - their copy loop and client writers hold
  /// conflicting record locks, which a serial dispatch queue would turn
  /// into a deadlock.
  ShardedDeployment(Wire wire, const std::vector<rep::QuorumConfig>& owning,
                    const std::vector<UserKey>& lows,
                    const std::vector<rep::QuorumConfig>& spare = {},
                    DurationMicros service_time_us = 0) {
    rep::DirRepNodeOptions node_options;
    node_options.detector = &detector;
    node_options.participant.blocking_locks = true;
    node_options.enable_wal = true;
    node_options.group_commit.window_us = 100;

    if (wire == Wire::kThreaded) {
      network = std::make_unique<sim::NetworkModel>(1);
      network->SetDefaultLink(sim::LinkSpec{kLinkLatency, 0, 0.0});
      // Enough async workers that the transport never caps the fan-out
      // concurrency - the representatives must be the bottleneck here.
      threaded =
          std::make_unique<net::ThreadedTransport>(network.get(), 192);
    } else {
      tcp = std::make_unique<net::TcpTransport>();
    }
    auto add_nodes = [&](const rep::QuorumConfig& config) {
      for (const auto& replica : config.replicas()) {
        nodes.push_back(
            std::make_unique<rep::DirRepNode>(replica.node, node_options));
        if (service_time_us > 0) {
          nodes.back()->server().ModelSingleThreaded(service_time_us);
        }
        if (wire == Wire::kThreaded) {
          threaded->RegisterNode(replica.node, nodes.back()->server());
        } else {
          servers.push_back(
              std::make_unique<net::TcpServer>(nodes.back()->server()));
          const auto port = servers.back()->Start();
          if (!port.ok()) {
            std::fprintf(stderr, "tcp listen failed: %s\n",
                         port.status().ToString().c_str());
            std::exit(1);
          }
          tcp->AddRoute(replica.node, "127.0.0.1", *port);
        }
      }
    };
    for (const auto& config : owning) add_nodes(config);
    for (const auto& config : spare) add_nodes(config);

    rep::ShardMap map;
    map.version = 1;
    for (std::size_t s = 0; s < owning.size(); ++s) {
      rep::ShardEntry entry;
      entry.shard = static_cast<rep::ShardId>(s + 1);
      entry.low = lows[s];
      entry.config = owning[s];
      map.entries.push_back(std::move(entry));
    }
    if (!authority.Install(std::move(map)).ok()) std::exit(1);
    rep::ShardManager boot(transport(), kManagerNode, authority);
    if (const Status st = boot.ReconfigureAll(); !st.ok()) {
      std::fprintf(stderr, "shard bootstrap failed: %s\n",
                   st.ToString().c_str());
      std::exit(1);
    }
  }

  net::Transport& transport() {
    return threaded ? static_cast<net::Transport&>(*threaded) : *tcp;
  }

  std::unique_ptr<rep::ShardedDirectory> NewRouter(NodeId client,
                                                   std::uint64_t seed) {
    rep::ShardedDirectory::Options options;
    options.policy_seed = seed;
    return std::make_unique<rep::ShardedDirectory>(transport(), client,
                                                   authority, options);
  }
};

// --- Experiment 1: closed-loop saturation sweep over shard counts ---

struct SweepSample {
  Wire wire = Wire::kThreaded;
  int shards = 0;
  int clients = 0;
  int total_ops = 0;
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

SweepSample RunShardSweep(Wire wire, int shards, int clients,
                          int ops_per_client) {
  const int total_keys = clients * kKeysPerClient;
  std::vector<rep::QuorumConfig> owning;
  std::vector<UserKey> lows;
  for (int s = 0; s < shards; ++s) {
    owning.push_back(ShardConfig(s));
    lows.push_back(s == 0 ? UserKey() : KeyAt(s * total_keys / shards));
  }
  ShardedDeployment deployment(wire, owning, lows, {}, kServiceTime);
  {
    auto seeder = deployment.NewRouter(kSeederNode, 42);
    for (int i = 0; i < total_keys; ++i) {
      if (!seeder->Insert(KeyAt(i), "0").ok()) std::exit(1);
    }
  }

  std::mutex lat_mu;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(clients * ops_per_client));

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    workers.emplace_back([&, t] {
      // Client t owns keys [t*16, (t+1)*16): contiguous, so its traffic
      // stays in one shard when clients >= shards - the locality a real
      // range-partitioned workload is sharded FOR.
      auto router = deployment.NewRouter(static_cast<NodeId>(100 + t),
                                         1000 + static_cast<std::uint64_t>(t));
      std::vector<double> mine;
      mine.reserve(static_cast<std::size_t>(ops_per_client));
      for (int i = 0; i < ops_per_client; ++i) {
        const UserKey key = KeyAt(t * kKeysPerClient + i % kKeysPerClient);
        const auto t0 = Clock::now();
        if (!router->Update(key, std::to_string(i)).ok()) std::exit(1);
        mine.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
      }
      std::lock_guard<std::mutex> lk(lat_mu);
      latencies_us.insert(latencies_us.end(), mine.begin(), mine.end());
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    return latencies_us[static_cast<std::size_t>(
        q * static_cast<double>(latencies_us.size() - 1))];
  };

  SweepSample sample;
  sample.wire = wire;
  sample.shards = shards;
  sample.clients = clients;
  sample.total_ops = clients * ops_per_client;
  sample.ops_per_sec = sample.total_ops / secs;
  sample.p50_us = pct(0.50);
  sample.p99_us = pct(0.99);
  return sample;
}

// --- Experiment 2: latency through an online split ---

struct SplitSample {
  double baseline_p50_us = 0, baseline_p99_us = 0;
  double during_p50_us = 0, during_p99_us = 0;
  double after_p50_us = 0, after_p99_us = 0;
  double split_ms = 0;
  std::uint64_t ops = 0;
  std::uint64_t retries = 0;
  bool served_throughout = false;
};

SplitSample RunSplitExperiment(int clients, int phase_ms) {
  const int total_keys = 128;
  ShardedDeployment deployment(Wire::kThreaded, {ShardConfig(0)}, {UserKey()},
                               {ShardConfig(1)});
  {
    auto seeder = deployment.NewRouter(kSeederNode, 42);
    for (int i = 0; i < total_keys; ++i) {
      if (!seeder->Insert(KeyAt(i), "0").ok()) std::exit(1);
    }
  }

  struct TimedOp {
    Clock::time_point at;
    double us;
  };
  std::mutex mu;
  std::vector<TimedOp> samples;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<bool> op_failed{false};

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    workers.emplace_back([&, t] {
      auto router = deployment.NewRouter(static_cast<NodeId>(100 + t),
                                         1000 + static_cast<std::uint64_t>(t));
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const UserKey key =
            KeyAt((t * 31 + i * 7) % total_keys);  // all over the keyspace
        ++i;
        const auto t0 = Clock::now();
        // The copy loop's chunk transactions hold read locks on the moving
        // range; a racing writer can abort. That is a latency event, not a
        // correctness one - retry and count it.
        Status st = Status::Ok();
        for (int attempt = 0; attempt < 16; ++attempt) {
          st = router->Update(key, std::to_string(i));
          if (st.ok()) break;
          retries.fetch_add(1, std::memory_order_relaxed);
        }
        if (!st.ok()) {
          op_failed.store(true);
          return;
        }
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count();
        std::lock_guard<std::mutex> lk(mu);
        samples.push_back({t0, us});
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(phase_ms));
  const auto split_start = Clock::now();
  rep::ShardManager manager(deployment.transport(), kManagerNode,
                            deployment.authority);
  const Status split =
      manager.Split(1, KeyAt(total_keys / 2), 2, ShardConfig(1));
  const auto split_end = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(phase_ms));
  stop.store(true);
  for (auto& w : workers) w.join();
  if (!split.ok()) {
    std::fprintf(stderr, "split failed: %s\n", split.ToString().c_str());
    std::exit(1);
  }

  auto pct = [](std::vector<double>& v, double q) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[static_cast<std::size_t>(q * static_cast<double>(v.size() - 1))];
  };
  std::vector<double> before, during, after;
  for (const auto& s : samples) {
    (s.at < split_start ? before : s.at < split_end ? during : after)
        .push_back(s.us);
  }

  SplitSample out;
  out.baseline_p50_us = pct(before, 0.50);
  out.baseline_p99_us = pct(before, 0.99);
  out.during_p50_us = pct(during, 0.50);
  out.during_p99_us = pct(during, 0.99);
  out.after_p50_us = pct(after, 0.50);
  out.after_p99_us = pct(after, 0.99);
  out.split_ms =
      std::chrono::duration<double, std::milli>(split_end - split_start)
          .count();
  out.ops = samples.size();
  out.retries = retries.load();
  out.served_throughout = !op_failed.load() && !during.empty();
  return out;
}

// --- Experiment 3: scan-equality audit vs a single suite ---

struct ScriptOp {
  enum class Kind { kInsert, kUpdate, kDelete } kind;
  int key;
  std::string value;
};

/// Phase A runs on ONE shard, then the deployment splits at kFence, then
/// phase B runs routed across the new boundary. The single-suite control
/// executes A then B back to back on an unsharded 3-2-2.
constexpr int kAuditKeys = 40;
constexpr int kFenceKey = 20;

std::vector<ScriptOp> AuditPhaseA() {
  std::vector<ScriptOp> script;
  for (int i = 0; i < kAuditKeys; ++i) {
    script.push_back({ScriptOp::Kind::kInsert, i, "a" + std::to_string(i)});
  }
  // A contiguous delete run straddling the future fence: its coalesce
  // range spans what will become the shard boundary.
  for (int i = kFenceKey - 2; i <= kFenceKey + 2; ++i) {
    script.push_back({ScriptOp::Kind::kDelete, i, ""});
  }
  for (int i = 1; i < kAuditKeys; i += 5) {
    if (i >= kFenceKey - 2 && i <= kFenceKey + 2) continue;  // just deleted
    script.push_back({ScriptOp::Kind::kUpdate, i, "a2-" + std::to_string(i)});
  }
  return script;
}

std::vector<ScriptOp> AuditPhaseB() {
  std::vector<ScriptOp> script;
  // Re-populate the emptied boundary region, now split across two shards:
  // the inserts land on both sides of the fence.
  for (int i = kFenceKey - 2; i <= kFenceKey + 2; ++i) {
    script.push_back({ScriptOp::Kind::kInsert, i, "b" + std::to_string(i)});
  }
  // And delete across the live boundary: each shard coalesces only its
  // side, the fence acting as a virtual neighbor.
  script.push_back({ScriptOp::Kind::kDelete, kFenceKey - 1, ""});
  script.push_back({ScriptOp::Kind::kDelete, kFenceKey, ""});
  script.push_back({ScriptOp::Kind::kDelete, kFenceKey + 1, ""});
  for (int i = 2; i < kAuditKeys; i += 7) {
    script.push_back({ScriptOp::Kind::kUpdate, i, "b2-" + std::to_string(i)});
  }
  script.push_back({ScriptOp::Kind::kDelete, kAuditKeys - 1, ""});
  script.push_back({ScriptOp::Kind::kDelete, 0, ""});
  return script;
}

template <typename Dir>
bool ApplyScript(Dir& dir, const std::vector<ScriptOp>& script) {
  for (const ScriptOp& op : script) {
    Status st = Status::Ok();
    switch (op.kind) {
      case ScriptOp::Kind::kInsert: st = dir.Insert(KeyAt(op.key), op.value); break;
      case ScriptOp::Kind::kUpdate: st = dir.Update(KeyAt(op.key), op.value); break;
      case ScriptOp::Kind::kDelete: st = dir.Delete(KeyAt(op.key)); break;
    }
    if (!st.ok()) {
      std::fprintf(stderr, "audit op on %s failed: %s\n",
                   KeyAt(op.key).c_str(), st.ToString().c_str());
      return false;
    }
  }
  return true;
}

bool ScansMatchSingleSuite() {
  // Sharded side: one shard + a spare, split between the phases.
  ShardedDeployment sharded(Wire::kThreaded, {ShardConfig(0)}, {UserKey()},
                            {ShardConfig(1)});
  auto router = sharded.NewRouter(kSeederNode, 7);
  if (!ApplyScript(*router, AuditPhaseA())) return false;
  rep::ShardManager manager(sharded.transport(), kManagerNode,
                            sharded.authority);
  if (const Status st = manager.Split(1, KeyAt(kFenceKey), 2, ShardConfig(1));
      !st.ok()) {
    std::fprintf(stderr, "audit split failed: %s\n", st.ToString().c_str());
    return false;
  }
  if (!ApplyScript(*router, AuditPhaseB())) return false;

  // Control: the same ops on a plain single suite.
  ShardedDeployment plain(Wire::kThreaded, {ShardConfig(0)}, {UserKey()});
  auto single = plain.NewRouter(kSeederNode, 7);
  if (!ApplyScript(*single, AuditPhaseA())) return false;
  if (!ApplyScript(*single, AuditPhaseB())) return false;

  const auto sharded_scan = router->Scan();
  const auto single_scan = single->Scan();
  if (!sharded_scan.ok() || !single_scan.ok()) return false;
  if (sharded_scan->size() != single_scan->size()) return false;
  for (std::size_t i = 0; i < sharded_scan->size(); ++i) {
    if ((*sharded_scan)[i].key != (*single_scan)[i].key ||
        (*sharded_scan)[i].value != (*single_scan)[i].value) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const int clients = smoke ? 4 : 24;
  const int ops_per_client = smoke ? 24 : 96;

  std::printf(
      "Sharding saturation: every shard 3-2-2 with WAL, %d closed-loop\n"
      "clients, single-threaded representatives (%lluus per message),\n"
      "%lluus one-way links on the threaded transport, real loopback\n"
      "sockets on tcp.\n\n",
      clients, static_cast<unsigned long long>(kServiceTime),
      static_cast<unsigned long long>(kLinkLatency));
  std::printf("%10s %8s %8s %10s %14s %10s %10s\n", "transport", "shards",
              "clients", "ops", "ops/s", "p50 us", "p99 us");

  std::vector<SweepSample> sweep;
  double at_shards[2][9] = {{0}, {0}};  // [wire][shard count]
  for (const Wire wire : {Wire::kThreaded, Wire::kTcp}) {
    for (const int shards : shard_counts) {
      const auto s = RunShardSweep(wire, shards, clients, ops_per_client);
      sweep.push_back(s);
      at_shards[wire == Wire::kTcp ? 1 : 0][shards] = s.ops_per_sec;
      std::printf("%10s %8d %8d %10d %14.0f %10.0f %10.0f\n",
                  WireName(s.wire), s.shards, s.clients, s.total_ops,
                  s.ops_per_sec, s.p50_us, s.p99_us);
    }
  }
  const double threaded_4x =
      at_shards[0][1] > 0 ? at_shards[0][4] / at_shards[0][1] : 0;
  const double tcp_4x = at_shards[1][1] > 0 ? at_shards[1][4] / at_shards[1][1] : 0;
  if (!smoke) {
    std::printf(
        "\nAggregate scaling at 4 shards: threaded %.2fx, tcp %.2fx "
        "(8 shards: %.2fx / %.2fx)\n",
        threaded_4x, tcp_4x,
        at_shards[0][1] > 0 ? at_shards[0][8] / at_shards[0][1] : 0,
        at_shards[1][1] > 0 ? at_shards[1][8] / at_shards[1][1] : 0);
  }

  std::printf("\nOnline split under load (threaded, 1 -> 2 shards):\n");
  const auto split = RunSplitExperiment(smoke ? 2 : 4, smoke ? 150 : 400);
  std::printf(
      "  baseline p50/p99 %0.0f/%0.0f us, during split %0.0f/%0.0f us, "
      "after %0.0f/%0.0f us\n  split took %0.1f ms over %llu ops, "
      "%llu transient retries, served throughout: %s\n",
      split.baseline_p50_us, split.baseline_p99_us, split.during_p50_us,
      split.during_p99_us, split.after_p50_us, split.after_p99_us,
      split.split_ms, static_cast<unsigned long long>(split.ops),
      static_cast<unsigned long long>(split.retries),
      split.served_throughout ? "yes" : "NO");
  if (!split.served_throughout) return 1;

  const bool scans_ok = ScansMatchSingleSuite();
  std::printf(
      "Scan-equality audit (sharded + online split vs single suite): %s\n",
      scans_ok ? "identical" : "DIVERGED");
  if (!scans_ok) return 1;

  if (!smoke) {
    if (std::FILE* json = std::fopen("BENCH_sharding.json", "w")) {
      std::fprintf(json,
                   "{\n  \"per_shard_config\": \"3-2-2\",\n"
                   "  \"clients\": %d,\n"
                   "  \"one_way_latency_us\": %llu,\n"
                   "  \"service_time_us\": %llu,\n"
                   "  \"wal\": \"enabled, group commit window 100us\",\n",
                   clients, static_cast<unsigned long long>(kLinkLatency),
                   static_cast<unsigned long long>(kServiceTime));
      std::fprintf(json, "  \"closed_loop\": [\n");
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto& s = sweep[i];
        std::fprintf(json,
                     "    {\"transport\": \"%s\", \"shards\": %d, "
                     "\"clients\": %d, \"ops\": %d, \"ops_per_sec\": %.1f, "
                     "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                     WireName(s.wire), s.shards, s.clients, s.total_ops,
                     s.ops_per_sec, s.p50_us, s.p99_us,
                     i + 1 < sweep.size() ? "," : "");
      }
      std::fprintf(json, "  ],\n  \"scaling\": {\n");
      std::fprintf(json,
                   "    \"threaded_1_shard_ops_per_sec\": %.1f,\n"
                   "    \"threaded_4_shard_ops_per_sec\": %.1f,\n"
                   "    \"threaded_8_shard_ops_per_sec\": %.1f,\n"
                   "    \"threaded_4_shard_speedup\": %.2f,\n"
                   "    \"tcp_1_shard_ops_per_sec\": %.1f,\n"
                   "    \"tcp_4_shard_ops_per_sec\": %.1f,\n"
                   "    \"tcp_8_shard_ops_per_sec\": %.1f,\n"
                   "    \"tcp_4_shard_speedup\": %.2f\n  },\n",
                   at_shards[0][1], at_shards[0][4], at_shards[0][8],
                   threaded_4x, at_shards[1][1], at_shards[1][4],
                   at_shards[1][8], tcp_4x);
      std::fprintf(json,
                   "  \"online_split\": {\n"
                   "    \"baseline_p50_us\": %.1f, \"baseline_p99_us\": %.1f,\n"
                   "    \"during_p50_us\": %.1f, \"during_p99_us\": %.1f,\n"
                   "    \"after_p50_us\": %.1f, \"after_p99_us\": %.1f,\n"
                   "    \"split_ms\": %.1f, \"ops\": %llu, "
                   "\"transient_retries\": %llu,\n"
                   "    \"served_throughout\": %s\n  },\n",
                   split.baseline_p50_us, split.baseline_p99_us,
                   split.during_p50_us, split.during_p99_us,
                   split.after_p50_us, split.after_p99_us, split.split_ms,
                   static_cast<unsigned long long>(split.ops),
                   static_cast<unsigned long long>(split.retries),
                   split.served_throughout ? "true" : "false");
      std::fprintf(json, "  \"scan_equality\": %s\n}\n",
                   scans_ok ? "true" : "false");
      std::fclose(json);
      std::printf("\nWrote BENCH_sharding.json\n");
    }
    if (threaded_4x < 3.0 || tcp_4x < 3.0) {
      std::fprintf(stderr,
                   "FAIL: 4-shard aggregate speedup %.2fx threaded / %.2fx "
                   "tcp below the 3x bar\n",
                   threaded_4x, tcp_4x);
      return 1;
    }
    std::printf("PASS: 4-shard aggregate speedup %.2fx threaded / %.2fx tcp "
                ">= 3x\n",
                threaded_4x, tcp_4x);
  }
  return 0;
}
