// Reproduces the Figure 16 locality example (paper §5):
//
//   "consider a 4-2-3 directory suite with key values in the range of 1 to
//    100, and locality such that transactions of Type A operate on entries
//    having keys 1 to 50, and transactions of Type B operate on entries
//    having keys 51 to 100. ... Type A transactions read from
//    representatives A1 and A2 and direct their updates to A1, A2, and
//    either B1 or B2. ... all inquiries can be done locally and the
//    non-local write that is required for modification operations is evenly
//    distributed among the remote representatives."
//
// We run both client types with the LocalityQuorumPolicy and report, per
// client type, how many data RPCs went to each representative - reads must
// be 100% local and the single remote write per modification must split
// ~50/50 between the two remote representatives.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "wl/key_gen.h"

namespace {

using namespace repdir;

constexpr NodeId kA1 = 1, kA2 = 2, kB1 = 3, kB2 = 4;

const char* NodeName(NodeId n) {
  switch (n) {
    case kA1: return "A1";
    case kA2: return "A2";
    case kB1: return "B1";
    case kB2: return "B2";
  }
  return "?";
}

void Report(const char* type, const rep::DirectorySuite& suite,
            const std::vector<NodeId>& local) {
  std::uint64_t local_reads = 0, remote_reads = 0;
  std::uint64_t local_writes = 0, remote_writes = 0;
  std::printf("Type %s data RPCs by representative:\n", type);
  std::printf("  %-4s %10s %10s\n", "rep", "reads", "writes");
  for (const NodeId node : {kA1, kA2, kB1, kB2}) {
    const auto rit = suite.read_rpcs_by_node().find(node);
    const auto wit = suite.write_rpcs_by_node().find(node);
    const std::uint64_t reads =
        rit == suite.read_rpcs_by_node().end() ? 0 : rit->second;
    const std::uint64_t writes =
        wit == suite.write_rpcs_by_node().end() ? 0 : wit->second;
    const bool is_local =
        std::find(local.begin(), local.end(), node) != local.end();
    std::printf("  %-4s %10llu %10llu%s\n", NodeName(node),
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                is_local ? "  (local)" : "  (remote)");
    (is_local ? local_reads : remote_reads) += reads;
    (is_local ? local_writes : remote_writes) += writes;
  }
  const double read_local_pct =
      100.0 * static_cast<double>(local_reads) /
      static_cast<double>(local_reads + remote_reads);
  const double write_remote_share =
      static_cast<double>(remote_writes) /
      static_cast<double>(local_writes + remote_writes);
  std::printf(
      "  => %.1f%% of reads local (paper: all inquiries local);\n"
      "     remote share of writes %.2f (paper: exactly one of three "
      "write-quorum members remote => 0.33)\n\n",
      read_local_pct, write_remote_share);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t ops_per_type = 3000;
  if (argc > 1) ops_per_type = std::strtoull(argv[1], nullptr, 10);

  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;

  const rep::QuorumConfig config(
      {{kA1, 1}, {kA2, 1}, {kB1, 1}, {kB2, 1}}, /*read=*/2, /*write=*/3);
  net::InProcTransport transport;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  auto make_suite = [&](NodeId client, std::vector<NodeId> local,
                        std::vector<NodeId> remote) {
    rep::DirectorySuite::Options options;
    options.config = config;
    options.policy = std::make_unique<rep::LocalityQuorumPolicy>(
        std::move(local), std::move(remote));
    return std::make_unique<rep::DirectorySuite>(transport, client,
                                                 std::move(options));
  };

  auto suite_a = make_suite(100, {kA1, kA2}, {kB1, kB2});
  auto suite_b = make_suite(101, {kB1, kB2}, {kA1, kA2});

  // Seed the directory: keys 1..50 for type A, 51..100 for type B.
  for (int k = 1; k <= 50; ++k) {
    if (!suite_a->Insert(wl::NumericKey(k), "a").ok()) return 1;
  }
  for (int k = 51; k <= 100; ++k) {
    if (!suite_b->Insert(wl::NumericKey(k), "b").ok()) return 1;
  }

  std::printf(
      "Figure 16: locality quorum assignment on a 4-2-3 suite, %llu ops per "
      "transaction type\n\n",
      static_cast<unsigned long long>(ops_per_type));

  // Steady mixed workload: 50%% lookups, 50%% updates within each type's
  // half of the key space (the §5 example's inquiry/update mix).
  Rng rng(42);
  for (std::uint64_t i = 0; i < ops_per_type; ++i) {
    const UserKey ka = wl::NumericKey(rng.Range(1, 50));
    const UserKey kb = wl::NumericKey(rng.Range(51, 100));
    if (i % 2 == 0) {
      if (!suite_a->Lookup(ka).ok() || !suite_b->Lookup(kb).ok()) return 1;
    } else {
      if (!suite_a->Update(ka, "a2").ok() || !suite_b->Update(kb, "b2").ok())
        return 1;
    }
  }

  Report("A", *suite_a, {kA1, kA2});
  Report("B", *suite_b, {kB1, kB2});
  return 0;
}
