// Ablation for the §5 discussion: "if the memberships of write quorums
// change infrequently, coalescing during deletions will not be costly.
// Thus, the statistics presented in the previous section are worse than
// could be achieved, because quorum members were selected randomly."
//
// Same Figure 15 protocol (3-2-2, ~100 entries), three quorum policies:
//   random  - fresh uniform quorum per operation (the paper's §4 setting),
//   sticky  - fixed preference order (quorums change only on failure),
//   sticky+failures - fixed order but each representative is down 5% of
//                     the time, forcing occasional quorum changes.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "sim/network_model.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace {

using namespace repdir;

struct Row {
  const char* policy;
  RunningStat entries;
  RunningStat deletions;
  RunningStat insertions;
  std::uint64_t unavailable;
};

Row Run(const char* name, bool random_policy, double down_probability,
        std::uint64_t operations) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;

  const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
  sim::NetworkModel network(11);
  net::InProcTransport transport(nullptr, &network);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options options;
  options.config = config;
  if (random_policy) {
    options.policy = std::make_unique<rep::RandomQuorumPolicy>(config, 77);
  } else {
    options.policy = std::make_unique<rep::StableQuorumPolicy>(config);
  }
  rep::DirectorySuite suite(transport, 100, std::move(options));
  wl::SuiteClient client(suite);

  wl::WorkloadOptions wl_options;
  wl_options.target_size = 100;
  wl_options.operations = operations;
  wl_options.seed = 5;
  wl::SteadyStateWorkload workload(client, wl_options);
  if (!workload.Fill().ok()) std::exit(1);
  suite.stats().Reset();

  Rng fault_rng(13);
  if (down_probability == 0) {
    if (!workload.Run().ok()) std::exit(1);
  } else {
    // Flip availability every 200 operations; always keep a quorum alive.
    const std::uint64_t chunk = 200;
    for (std::uint64_t done = 0; done < operations; done += chunk) {
      for (const auto& replica : config.replicas()) {
        network.SetNodeUp(replica.node, !fault_rng.Chance(down_probability));
      }
      network.SetNodeUp(1, true);
      if (!network.IsNodeUp(2) && !network.IsNodeUp(3)) {
        network.SetNodeUp(2, true);
      }
      if (!workload.RunOps(chunk).ok()) std::exit(1);
    }
    for (const auto& replica : config.replicas()) {
      network.SetNodeUp(replica.node, true);
    }
  }

  Row row;
  row.policy = name;
  row.entries = suite.stats().entries_in_ranges_coalesced();
  row.deletions = suite.stats().deletions_while_coalescing();
  row.insertions = suite.stats().insertions_while_coalescing();
  row.unavailable = suite.stats().counters().unavailable;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t operations = 20'000;
  if (argc > 1) operations = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "Stable-quorum ablation (3-2-2, ~100 entries, %llu ops per row)\n\n",
      static_cast<unsigned long long>(operations));
  std::printf("%-18s | %-28s | %-28s | %-28s\n", "policy",
              "entries in ranges coalesced", "deletions while coalescing",
              "insertions while coalescing");

  const Row rows[] = {
      Run("random", true, 0.0, operations),
      Run("sticky", false, 0.0, operations),
      Run("sticky+5% down", false, 0.05, operations),
  };
  for (const Row& row : rows) {
    std::printf("%-18s | %-28s | %-28s | %-28s\n", row.policy,
                row.entries.ToString().c_str(),
                row.deletions.ToString().c_str(),
                row.insertions.ToString().c_str());
  }
  std::printf(
      "\nShape (paper §5): with sticky quorums every representative in the\n"
      "write quorum already holds exactly the current entries - no ghosts to\n"
      "delete, no neighbors to materialize; random selection is the "
      "worst case.\n");
  return 0;
}
