// Reproduces Figure 15: "Detailed Simulation Results for three 3-2-2
// Directory Suites".
//
// Protocol (paper §4): 3-2-2 directory suites holding approximately 100 /
// 1 000 / 10 000 entries; 100 000 operations each; quorum members and the
// keys to insert, update, or delete drawn uniformly at random. Reported per
// suite: average / maximum / standard deviation of
//   - entries in ranges coalesced (per write-quorum representative),
//   - deletions while coalescing (ghost entries removed, per delete),
//   - insertions while coalescing (pred/succ materializations, per delete).
#include <cstdio>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace {

using namespace repdir;

struct Row {
  std::size_t size;
  RunningStat entries;
  RunningStat deletions;
  RunningStat insertions;
  std::uint64_t deletes = 0;
};

Row RunOne(std::size_t directory_size, std::uint64_t operations,
           std::uint64_t seed) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;  // single-threaded sim

  const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
  net::InProcTransport transport;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options suite_options;
  suite_options.config = config;
  suite_options.policy_seed = seed * 1000003 + 17;
  rep::DirectorySuite suite(transport, /*client_node=*/100,
                            std::move(suite_options));
  wl::SuiteClient client(suite);

  wl::WorkloadOptions options;
  options.target_size = directory_size;
  options.operations = operations;
  options.seed = seed;
  options.key_space = 1'000'000'000ull;

  wl::SteadyStateWorkload workload(client, options);
  if (const Status st = workload.Fill(); !st.ok()) {
    std::fprintf(stderr, "fill failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  suite.stats().Reset();  // measure steady state, not the fill

  if (const Status st = workload.Run(); !st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }

  Row row;
  row.size = directory_size;
  row.entries = suite.stats().entries_in_ranges_coalesced();
  row.deletions = suite.stats().deletions_while_coalescing();
  row.insertions = suite.stats().insertions_while_coalescing();
  row.deletes = workload.report().deletes;
  return row;
}

void PrintStat(const char* label, const RunningStat& s, double paper_avg,
               double paper_max, double paper_sd) {
  std::printf("  %-28s  %6.2f %5.0f %7.2f   | paper: %5.2f %4.0f %6.2f\n",
              label, s.mean(), s.max(), s.stddev(), paper_avg, paper_max,
              paper_sd);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t operations = 100'000;
  if (argc > 1) operations = std::strtoull(argv[1], nullptr, 10);

  std::printf("Figure 15: detailed simulation results, 3-2-2 suites, %llu ops\n",
              static_cast<unsigned long long>(operations));
  std::printf("(columns: avg max sd; paper values from CMU-CS-83-123)\n\n");

  struct PaperRef {
    std::size_t size;
    double e_avg, e_max, e_sd;
    double d_avg, d_max, d_sd;
    double i_avg, i_max, i_sd;
  };
  const PaperRef refs[] = {
      {100, 1.33, 9, 0.87, 0.88, 8, 1.05, 0.44, 2, 0.59},
      {1000, 1.32, 12, 0.86, 0.87, 11, 1.04, 0.45, 2, 0.59},
      {10000, 1.20, 9, 0.76, 0.67, 9, 0.90, 0.53, 2, 0.64},
  };

  for (const PaperRef& ref : refs) {
    const Row row = RunOne(ref.size, operations, /*seed=*/ref.size);
    std::printf("%zu entries (%llu deletes sampled)\n", row.size,
                static_cast<unsigned long long>(row.deletes));
    PrintStat("Entries in ranges coalesced", row.entries, ref.e_avg, ref.e_max,
              ref.e_sd);
    PrintStat("Deletions while coalescing", row.deletions, ref.d_avg,
              ref.d_max, ref.d_sd);
    PrintStat("Insertions while coalescing", row.insertions, ref.i_avg,
              ref.i_max, ref.i_sd);
    std::printf("\n");
  }
  return 0;
}
