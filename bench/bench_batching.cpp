// §4 batching claim: "if each member of a read quorum sends the results of
// three successive DirRepPredecessor and DirRepSuccessor operations in a
// single message, the real predecessor and real successor will often be
// located using one remote procedure call to each member of the quorum."
//
// Measures, per DirSuiteDelete, the number of neighbor-search RPC rounds
// (batch fetches per quorum member) for batch sizes 1..4, on the standard
// 3-2-2 / ~100-entry / random-quorum workload.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace {

using namespace repdir;

struct Row {
  std::uint32_t batch;
  double neighbor_rpcs_per_delete;
};

Row Run(std::uint32_t batch, std::uint64_t operations) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;

  const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
  net::InProcTransport transport;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options options;
  options.config = config;
  options.policy_seed = 1234;
  options.neighbor_batch = batch;
  rep::DirectorySuite suite(transport, 100, std::move(options));
  wl::SuiteClient client(suite);

  wl::WorkloadOptions wl_options;
  wl_options.target_size = 100;
  wl_options.operations = operations;
  wl_options.seed = 5;
  wl::SteadyStateWorkload workload(client, wl_options);
  if (!workload.Fill().ok()) std::exit(1);

  // Count only the steady-state phase. neighbor_fetches counts the actual
  // DirRepPredecessor/Successor(Batch) RPCs issued by real-neighbor
  // searches - exactly the traffic §4's batching suggestion targets.
  suite.stats().Reset();
  if (!workload.Run().ok()) std::exit(1);

  const double deletes =
      static_cast<double>(suite.stats().deletions_while_coalescing().count());
  Row row;
  row.batch = batch;
  row.neighbor_rpcs_per_delete =
      static_cast<double>(suite.stats().counters().neighbor_fetches) /
      deletes;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t operations = 20'000;
  if (argc > 1) operations = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "Neighbor batching (3-2-2, ~100 entries, %llu ops):\n"
      "DirRepPredecessor/Successor RPCs per delete vs. batch size\n"
      "(a delete needs >= 2 per quorum member: one predecessor fetch and\n"
      "one successor fetch; extra fetches come from ghost walks)\n\n",
      static_cast<unsigned long long>(operations));
  std::printf("%8s %28s\n", "batch", "neighbor RPCs per delete");

  double base = 0;
  for (const std::uint32_t batch : {1u, 2u, 3u, 4u}) {
    const Row row = Run(batch, operations);
    if (batch == 1) base = row.neighbor_rpcs_per_delete;
    std::printf("%8u %28.2f   (%.1f%% of batch=1)\n", row.batch,
                row.neighbor_rpcs_per_delete,
                100.0 * row.neighbor_rpcs_per_delete / base);
  }
  std::printf(
      "\nPaper §4: with ~1.33 entries per coalesced range, a batch of 3\n"
      "usually finds the real predecessor and successor in ONE RPC per\n"
      "member - the batch=3 row's saving over batch=1 confirms it, and\n"
      "batch=4 adds almost nothing.\n");
  return 0;
}
