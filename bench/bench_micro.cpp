// Micro-benchmarks (google-benchmark) for the §4 claim that per-key version
// numbers cost nothing except on Delete:
//   * representative operations on both storage backends,
//   * end-to-end suite operations over the in-process transport,
//   * serialization, CRC, and lock-manager primitives.
#include <benchmark/benchmark.h>

#include <memory>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "storage/btree_storage.h"
#include "storage/dir_rep_core.h"
#include "storage/map_storage.h"
#include "storage/wal.h"
#include "wl/key_gen.h"

namespace {

using namespace repdir;

std::unique_ptr<storage::RepStorage> MakeBackend(bool btree) {
  if (btree) return std::make_unique<storage::BTreeStorage>(16);
  return std::make_unique<storage::MapStorage>();
}

void FillBackend(storage::RepStorage& stg, int n) {
  storage::DirRepCore core(stg);
  for (int i = 0; i < n; ++i) {
    (void)core.Insert(storage::RepKey::User(wl::NumericKey(i * 2)), 1, "v");
  }
}

void BM_RepLookup(benchmark::State& state) {
  auto stg = MakeBackend(state.range(0) != 0);
  FillBackend(*stg, static_cast<int>(state.range(1)));
  storage::DirRepCore core(*stg);
  Rng rng(1);
  for (auto _ : state) {
    // Alternate hits (even keys) and gap misses (odd keys).
    const auto k = storage::RepKey::User(
        wl::NumericKey(rng.Below(2 * state.range(1))));
    benchmark::DoNotOptimize(core.Lookup(k));
  }
}
BENCHMARK(BM_RepLookup)
    ->ArgsProduct({{0, 1}, {100, 10000}})
    ->ArgNames({"btree", "entries"});

void BM_RepInsertErase(benchmark::State& state) {
  auto stg = MakeBackend(state.range(0) != 0);
  FillBackend(*stg, 1000);
  storage::DirRepCore core(*stg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto k = storage::RepKey::User(wl::NumericKey(1'000'000 + (i++ % 512)));
    benchmark::DoNotOptimize(core.Insert(k, 2, "v"));
    stg->Erase(k);
  }
}
BENCHMARK(BM_RepInsertErase)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"btree"});

void BM_RepCoalesce(benchmark::State& state) {
  // Coalesce a 1-entry range between two bounds, then undo, repeatedly -
  // the steady-state delete's representative-side cost.
  auto stg = MakeBackend(state.range(0) != 0);
  storage::DirRepCore core(*stg);
  (void)core.Insert(storage::RepKey::User("a"), 1, "v");
  (void)core.Insert(storage::RepKey::User("b"), 1, "v");
  (void)core.Insert(storage::RepKey::User("c"), 1, "v");
  for (auto _ : state) {
    auto effect =
        core.Coalesce(storage::RepKey::User("a"), storage::RepKey::User("c"), 2);
    core.UndoCoalesce(storage::RepKey::User("a"), *effect);
  }
}
BENCHMARK(BM_RepCoalesce)->Arg(0)->Arg(1)->ArgNames({"btree"});

struct SuiteFixture {
  SuiteFixture() {
    rep::DirRepNodeOptions node_options;
    node_options.participant.blocking_locks = false;
    const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
    for (const auto& replica : config.replicas()) {
      nodes.push_back(
          std::make_unique<rep::DirRepNode>(replica.node, node_options));
      transport.RegisterNode(replica.node, nodes.back()->server());
    }
    rep::DirectorySuite::Options options;
    options.config = config;
    suite = std::make_unique<rep::DirectorySuite>(transport, 100,
                                                  std::move(options));
    for (int i = 0; i < 200; ++i) {
      (void)suite->Insert(wl::NumericKey(i), "v");
    }
  }

  net::InProcTransport transport;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  std::unique_ptr<rep::DirectorySuite> suite;
};

void BM_SuiteLookup(benchmark::State& state) {
  SuiteFixture fx;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.suite->Lookup(wl::NumericKey(rng.Below(200))));
  }
}
BENCHMARK(BM_SuiteLookup);

void BM_SuiteUpdate(benchmark::State& state) {
  SuiteFixture fx;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.suite->Update(wl::NumericKey(rng.Below(200)), "w"));
  }
}
BENCHMARK(BM_SuiteUpdate);

void BM_SuiteInsertDeleteCycle(benchmark::State& state) {
  SuiteFixture fx;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const UserKey key = wl::NumericKey(10'000 + (i++ % 64));
    benchmark::DoNotOptimize(fx.suite->Insert(key, "v"));
    benchmark::DoNotOptimize(fx.suite->Delete(key));
  }
}
BENCHMARK(BM_SuiteInsertDeleteCycle);

void BM_SerdeEntryRoundTrip(benchmark::State& state) {
  const storage::StoredEntry entry{storage::RepKey::User("some-moderate-key"),
                                   123456, std::string(64, 'x'), 789};
  for (auto _ : state) {
    const std::string bytes = EncodeToString(entry);
    storage::StoredEntry decoded;
    benchmark::DoNotOptimize(DecodeFromString(bytes, decoded));
  }
}
BENCHMARK(BM_SerdeEntryRoundTrip);

void BM_Crc32c(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_LockAcquireRelease(benchmark::State& state) {
  lock::RangeLockManager mgr;
  const auto range =
      lock::KeyRange::Point(storage::RepKey::User("k"));
  TxnId txn = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.TryAcquire(txn, lock::LockMode::kModify, range));
    mgr.ReleaseAll(txn);
    ++txn;
  }
}
BENCHMARK(BM_LockAcquireRelease);

void BM_WalAppendFlush(benchmark::State& state) {
  storage::MemLogDevice device;
  storage::WalWriter writer(device);
  const auto op = storage::WalOp::Insert(storage::RepKey::User("key"), 1,
                                         std::string(32, 'v'));
  TxnId txn = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.AppendOp(txn, op));
    benchmark::DoNotOptimize(
        writer.AppendDecision(storage::WalRecordType::kCommit, txn));
    ++txn;
  }
}
BENCHMARK(BM_WalAppendFlush);

}  // namespace

BENCHMARK_MAIN();
