// Anti-entropy economics: what does digest-driven repair cost against the
// naive alternative, how fast does ghost debt drain, and what do weak
// stale reads save once reconciliation makes them trustworthy?
//
// Three experiments over the deterministic InProcTransport (every number
// below is a protocol count - rounds, wire bytes, entries - never wall
// time, so the results are stable under CI load):
//
//  1. Digest economy sweep: a 3-2-2 suite writes N 64-byte-value keys
//     through a stable {1,3,2} preference order (nodes 1 and 3 current),
//     then updates a fraction f of them through {1,2,3} (node 3 misses
//     exactly those). SyncPair(1, 3) repairs node 3; we report the digest
//     walk bytes, the repair bytes, and both against the bytes one
//     enveloped full-state transfer of node 1 would cost. The repaired
//     replica must end byte-identical to the source.
//  2. Ghost debt drain: a 3-2-2 core plus one zero-vote hint node. Each
//     round inserts fresh keys and deletes half of the round's keys -
//     deletes never touch the weak node, so its ghost debt climbs - then
//     one SyncReplica pass must collect the debt to exactly zero.
//  3. Stale-read economy: with the weak node freshly reconciled, compare
//     LookupStale (one RPC to one replica) against the quorum Lookup
//     (R-wide scatter-gather) in rounds and bytes per op. Every stale
//     answer is checked against the model.
//
// Emits BENCH_reconcile.json. `--smoke` shrinks the sizes for tier-1 CI;
// the audits (byte-identical repair, exact ghost census, correct stale
// reads, digest < full state) run in both modes - they are protocol
// invariants, not perf numbers.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "net/inproc_transport.h"
#include "net/wire.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "rep/messages.h"
#include "rep/reconciler.h"

namespace {

using namespace repdir;

constexpr std::size_t kValueBytes = 64;
constexpr NodeId kWeak = 9;
constexpr NodeId kReconcilerNode = 120;

std::string KeyAt(int i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "k%05d", i);
  return buf;
}

std::string ValueFor(int i, char tag) {
  std::string value = tag + std::to_string(i) + "-";
  value.resize(kValueBytes, 'x');
  return value;
}

/// One deployment: the replica set of `config` on an InProcTransport.
struct Deployment {
  net::InProcTransport transport{nullptr};
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;

  explicit Deployment(const rep::QuorumConfig& config) {
    for (const auto& replica : config.replicas()) {
      nodes.push_back(std::make_unique<rep::DirRepNode>(replica.node));
      transport.RegisterNode(replica.node, nodes.back()->server());
    }
  }

  storage::RepStorage& storage(NodeId id) {
    for (auto& node : nodes) {
      if (node->id() == id) return node->storage();
    }
    std::fprintf(stderr, "no node %u in deployment\n", id);
    std::exit(1);
  }
};

/// Suite with a pinned preference order (StableQuorumPolicy) - the way to
/// make a specific replica current (in every quorum) or stale (never in
/// one) under W < V.
std::unique_ptr<rep::DirectorySuite> PinnedSuite(Deployment& d,
                                                 NodeId client,
                                                 rep::QuorumConfig config,
                                                 std::vector<NodeId> order,
                                                 MetricsRegistry* metrics) {
  rep::SuiteOptions options;
  options.config = std::move(config);
  options.policy = std::make_unique<rep::StableQuorumPolicy>(std::move(order));
  options.metrics = metrics;
  return std::make_unique<rep::DirectorySuite>(d.transport, client,
                                               std::move(options));
}

/// Bytes one enveloped message shipping `node`'s full user state would
/// occupy - the naive transfer the digest walk competes against.
std::uint64_t FullStateBytes(Deployment& d, NodeId node) {
  rep::FetchRangeReply all;
  for (const storage::StoredEntry& e : d.storage(node).Scan()) {
    if (e.key.is_user()) all.entries.push_back(e);
  }
  return net::EncodedWireSize(all);
}

/// User entries on `node` whose key the model does not contain.
std::uint64_t GhostCount(Deployment& d, NodeId node,
                         const std::map<UserKey, Value>& model) {
  std::uint64_t n = 0;
  for (const storage::StoredEntry& e : d.storage(node).Scan()) {
    if (e.key.is_user() && model.find(e.key.user()) == model.end()) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Experiment 1: digest economy.

struct DigestCell {
  int stale_pct = 0;
  std::uint64_t keys = 0;
  std::uint64_t full_state_bytes = 0;
  std::uint64_t digest_bytes = 0;
  std::uint64_t repair_bytes = 0;
  std::uint64_t ranges_checked = 0;
  std::uint64_t ranges_mismatched = 0;
  std::uint64_t entries_installed = 0;
  bool identical_after = false;
};

DigestCell RunDigestCell(int keys, int stale_pct) {
  const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
  Deployment d(config);

  // Writer A: {1,3} quorums - nodes 1 and 3 see every insert.
  auto writer_all = PinnedSuite(d, 100, config, {1, 3, 2}, nullptr);
  for (int i = 0; i < keys; ++i) {
    if (!writer_all->Insert(KeyAt(i), ValueFor(i, 'v')).ok()) std::exit(1);
  }
  // Writer B: {1,2} quorums - node 3 misses exactly these updates. Spread
  // the stale keys across the keyspace so the digest walk cannot prune one
  // lucky contiguous run.
  auto writer_excl = PinnedSuite(d, 101, config, {1, 2, 3}, nullptr);
  const int stale = keys * stale_pct / 100;
  const int stride = stale > 0 ? keys / stale : keys;
  for (int i = 0; i < stale; ++i) {
    if (!writer_excl->Update(KeyAt(i * stride), ValueFor(i, 'u')).ok()) {
      std::exit(1);
    }
  }

  DigestCell cell;
  cell.stale_pct = stale_pct;
  cell.keys = static_cast<std::uint64_t>(keys);
  cell.full_state_bytes = FullStateBytes(d, 1);

  // Finer leaves than the default: repair fetches whole leaf ranges, and
  // with the stale keys spread uniformly a wide leaf ships ~leaf_entries
  // current entries to fix one stale one.
  rep::Reconciler::Options options;
  options.leaf_entries = 8;
  rep::Reconciler rec(d.transport, kReconcilerNode, config,
                      std::move(options));
  if (!rec.SyncPair(1, 3).ok()) std::exit(1);
  const rep::ReconcileStats& s = rec.stats();
  cell.digest_bytes = s.digest_bytes;
  cell.repair_bytes = s.repair_bytes;
  cell.ranges_checked = s.ranges_checked;
  cell.ranges_mismatched = s.ranges_mismatched;
  cell.entries_installed = s.entries_installed;
  cell.identical_after = d.storage(1).Scan() == d.storage(3).Scan();
  return cell;
}

// ---------------------------------------------------------------------------
// Experiment 2: ghost debt drain on the weak replica.

struct GhostRound {
  std::uint64_t debt_before = 0;
  std::uint64_t collected = 0;
  std::uint64_t debt_after = 0;
};

// ---------------------------------------------------------------------------
// Experiment 3: stale-read economy.

struct ReadCost {
  double rounds_per_op = 0;
  double bytes_per_op = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int digest_keys = smoke ? 300 : 2000;
  const int ghost_rounds_n = smoke ? 3 : 6;
  const int ghost_keys_per_round = smoke ? 40 : 200;
  const int read_ops = smoke ? 100 : 1000;

  std::printf(
      "Anti-entropy economics (%s): digest repair vs full state, ghost\n"
      "debt drain, and stale-read savings. All numbers are protocol\n"
      "counts over the deterministic in-process transport.\n\n",
      smoke ? "smoke" : "full");

  // -- Experiment 1 --------------------------------------------------------
  std::printf("[1] digest economy, %d keys x %zu-byte values\n", digest_keys,
              kValueBytes);
  std::printf("%7s %12s %12s %12s %8s %10s %9s\n", "stale%", "full B",
              "digest B", "repair B", "vs full", "ranges", "installed");
  std::vector<DigestCell> digest_cells;
  bool audits_ok = true;
  for (const int pct : {1, 5, 25}) {
    DigestCell cell = RunDigestCell(digest_keys, pct);
    if (!cell.identical_after) {
      audits_ok = false;
      std::fprintf(stderr,
                   "FAIL: repair left node 3 differing from node 1 at "
                   "stale%%=%d\n",
                   pct);
    }
    // The economics have a crossover: repair works leaf-at-a-time, so at
    // high spread-out staleness a full transfer wins. The audit pins the
    // low-staleness regime - the one anti-entropy actually runs in - and
    // the table reports the crossover honestly.
    if (pct <= 1 &&
        cell.digest_bytes + cell.repair_bytes >= cell.full_state_bytes) {
      audits_ok = false;
      std::fprintf(stderr,
                   "FAIL: reconciliation (%llu B) did not undercut the "
                   "full-state transfer (%llu B) at stale%%=%d\n",
                   static_cast<unsigned long long>(cell.digest_bytes +
                                                   cell.repair_bytes),
                   static_cast<unsigned long long>(cell.full_state_bytes),
                   pct);
    }
    if (pct <= 5 && cell.digest_bytes >= cell.full_state_bytes / 2) {
      audits_ok = false;
      std::fprintf(stderr,
                   "FAIL: digest walk alone (%llu B) is not a small "
                   "fraction of the full state (%llu B) at stale%%=%d\n",
                   static_cast<unsigned long long>(cell.digest_bytes),
                   static_cast<unsigned long long>(cell.full_state_bytes),
                   pct);
    }
    std::printf("%7d %12llu %12llu %12llu %7.2f%% %5llu/%-4llu %9llu\n",
                cell.stale_pct,
                static_cast<unsigned long long>(cell.full_state_bytes),
                static_cast<unsigned long long>(cell.digest_bytes),
                static_cast<unsigned long long>(cell.repair_bytes),
                100.0 *
                    static_cast<double>(cell.digest_bytes + cell.repair_bytes) /
                    static_cast<double>(cell.full_state_bytes),
                static_cast<unsigned long long>(cell.ranges_mismatched),
                static_cast<unsigned long long>(cell.ranges_checked),
                static_cast<unsigned long long>(cell.entries_installed));
    digest_cells.push_back(cell);
  }

  // -- Experiments 2 + 3 share one weak-replica deployment -----------------
  const rep::QuorumConfig weak_config({{1, 1}, {2, 1}, {3, 1}, {kWeak, 0}}, 2,
                                      2);
  Deployment weak_d(weak_config);
  MetricsRegistry registry;
  rep::SuiteOptions weak_options;
  weak_options.config = weak_config;
  weak_options.metrics = &registry;
  weak_options.enable_stale_reads = true;  // defaults to the weak node
  rep::DirectorySuite weak_suite(weak_d.transport, 100,
                                 std::move(weak_options));
  rep::Reconciler weak_rec(weak_d.transport, kReconcilerNode, weak_config);

  std::printf("\n[2] ghost debt drain, 3-2-2 + weak hint node, %d keys and "
              "%d deletes per round\n",
              ghost_keys_per_round, ghost_keys_per_round / 2);
  std::printf("%6s %12s %10s %11s\n", "round", "debt before", "collected",
              "debt after");
  std::map<UserKey, Value> model;
  std::vector<GhostRound> ghost_rounds;
  int next_key = 0;
  for (int round = 0; round < ghost_rounds_n; ++round) {
    const int base = next_key;
    for (int i = 0; i < ghost_keys_per_round; ++i, ++next_key) {
      const std::string key = "g" + KeyAt(next_key);
      if (!weak_suite.Insert(key, ValueFor(next_key, 'v')).ok()) std::exit(1);
      model[key] = ValueFor(next_key, 'v');
    }
    for (int i = 0; i < ghost_keys_per_round / 2; ++i) {
      const std::string key = "g" + KeyAt(base + i * 2);
      if (!weak_suite.Delete(key).ok()) std::exit(1);
      model.erase(key);
    }
    GhostRound gr;
    gr.debt_before = GhostCount(weak_d, kWeak, model);
    const std::uint64_t collected0 = weak_rec.stats().ghosts_collected;
    if (!weak_rec.SyncReplica(kWeak).ok()) std::exit(1);
    gr.collected = weak_rec.stats().ghosts_collected - collected0;
    gr.debt_after = GhostCount(weak_d, kWeak, model);
    if (gr.debt_after != 0 || gr.collected < gr.debt_before) {
      audits_ok = false;
      std::fprintf(stderr,
                   "FAIL: round %d ghost census: before=%llu collected=%llu "
                   "after=%llu\n",
                   round, static_cast<unsigned long long>(gr.debt_before),
                   static_cast<unsigned long long>(gr.collected),
                   static_cast<unsigned long long>(gr.debt_after));
    }
    std::printf("%6d %12llu %10llu %11llu\n", round,
                static_cast<unsigned long long>(gr.debt_before),
                static_cast<unsigned long long>(gr.collected),
                static_cast<unsigned long long>(gr.debt_after));
    ghost_rounds.push_back(gr);
  }

  // -- Experiment 3 --------------------------------------------------------
  std::printf("\n[3] stale-read economy, %d lookups of live keys\n", read_ops);
  std::vector<UserKey> live;
  for (const auto& [key, value] : model) live.push_back(key);
  auto& waves = registry.distribution("rpc.wave_width");
  auto& sent = registry.counter("rpc.bytes_sent");
  auto& received = registry.counter("rpc.bytes_received");

  const auto measure = [&](bool stale) {
    const std::uint64_t waves0 = waves.count();
    const std::uint64_t bytes0 = sent.value() + received.value();
    for (int i = 0; i < read_ops; ++i) {
      const UserKey& key = live[static_cast<std::size_t>(i) % live.size()];
      const auto r = stale ? weak_suite.LookupStale(key)
                           : weak_suite.Lookup(key);
      if (!r.ok() || !r->found || r->value != model[key]) {
        audits_ok = false;
        std::fprintf(stderr, "FAIL: %s read of %s wrong\n",
                     stale ? "stale" : "quorum", key.c_str());
        break;
      }
    }
    ReadCost cost;
    cost.rounds_per_op = static_cast<double>(waves.count() - waves0) /
                         static_cast<double>(read_ops);
    cost.bytes_per_op =
        static_cast<double>(sent.value() + received.value() - bytes0) /
        static_cast<double>(read_ops);
    return cost;
  };
  const ReadCost quorum_cost = measure(/*stale=*/false);
  const ReadCost stale_cost = measure(/*stale=*/true);
  if (stale_cost.bytes_per_op >= quorum_cost.bytes_per_op) {
    audits_ok = false;
    std::fprintf(stderr,
                 "FAIL: stale reads (%.1f B/op) did not undercut quorum "
                 "reads (%.1f B/op)\n",
                 stale_cost.bytes_per_op, quorum_cost.bytes_per_op);
  }
  std::printf("%8s %12s %12s\n", "read", "rounds/op", "bytes/op");
  std::printf("%8s %12.2f %12.1f\n", "quorum", quorum_cost.rounds_per_op,
              quorum_cost.bytes_per_op);
  std::printf("%8s %12.2f %12.1f\n", "stale", stale_cost.rounds_per_op,
              stale_cost.bytes_per_op);

  if (std::FILE* json = std::fopen("BENCH_reconcile.json", "w")) {
    std::fprintf(json,
                 "{\n  \"mode\": \"%s\",\n  \"digest_economy\": {\n"
                 "    \"keys\": %d,\n    \"value_bytes\": %zu,\n"
                 "    \"cells\": [\n",
                 smoke ? "smoke" : "full", digest_keys, kValueBytes);
    for (std::size_t i = 0; i < digest_cells.size(); ++i) {
      const DigestCell& c = digest_cells[i];
      std::fprintf(
          json,
          "      {\"stale_pct\": %d, \"full_state_bytes\": %llu,\n"
          "       \"digest_bytes\": %llu, \"repair_bytes\": %llu,\n"
          "       \"ranges_checked\": %llu, \"ranges_mismatched\": %llu,\n"
          "       \"entries_installed\": %llu, \"identical_after\": %s}%s\n",
          c.stale_pct, static_cast<unsigned long long>(c.full_state_bytes),
          static_cast<unsigned long long>(c.digest_bytes),
          static_cast<unsigned long long>(c.repair_bytes),
          static_cast<unsigned long long>(c.ranges_checked),
          static_cast<unsigned long long>(c.ranges_mismatched),
          static_cast<unsigned long long>(c.entries_installed),
          c.identical_after ? "true" : "false",
          i + 1 < digest_cells.size() ? "," : "");
    }
    std::fprintf(json,
                 "    ]\n  },\n  \"ghost_drain\": {\n"
                 "    \"keys_per_round\": %d,\n    \"rounds\": [\n",
                 ghost_keys_per_round);
    for (std::size_t i = 0; i < ghost_rounds.size(); ++i) {
      const GhostRound& r = ghost_rounds[i];
      std::fprintf(json,
                   "      {\"debt_before\": %llu, \"collected\": %llu, "
                   "\"debt_after\": %llu}%s\n",
                   static_cast<unsigned long long>(r.debt_before),
                   static_cast<unsigned long long>(r.collected),
                   static_cast<unsigned long long>(r.debt_after),
                   i + 1 < ghost_rounds.size() ? "," : "");
    }
    std::fprintf(json,
                 "    ]\n  },\n  \"stale_reads\": {\n"
                 "    \"ops\": %d,\n"
                 "    \"quorum_rounds_per_op\": %.3f, "
                 "\"quorum_bytes_per_op\": %.1f,\n"
                 "    \"stale_rounds_per_op\": %.3f, "
                 "\"stale_bytes_per_op\": %.1f\n"
                 "  },\n  \"audits_ok\": %s\n}\n",
                 read_ops, quorum_cost.rounds_per_op, quorum_cost.bytes_per_op,
                 stale_cost.rounds_per_op, stale_cost.bytes_per_op,
                 audits_ok ? "true" : "false");
    std::fclose(json);
    std::printf("\nWrote BENCH_reconcile.json\n");
  }

  if (!audits_ok) {
    std::fprintf(stderr, "\nFAILED: anti-entropy audits violated.\n");
    return 1;
  }
  std::printf("\nAll anti-entropy audits passed.\n");
  return 0;
}
