// Hot-path throughput: how far op batching + WAL group commit + transport
// multiplexing move the saturation point.
//
// Three experiments, all on a 3-2-2 deployment with the WAL enabled:
//
//  1. Closed-loop saturation sweep: T client threads x batch size {1,16} x
//     transport {threaded (200us simulated one-way links), tcp (real
//     loopback sockets, multiplexed)}. Each thread drives its own
//     DirectorySuite over its own keys; batch=1 is the single-shot API,
//     batch=16 groups the same updates through BatchBuilder - one read
//     wave, one write wave, one 2PC per 16 ops instead of per op.
//  2. Equivalence audit: one deterministic op script applied batched
//     (chunks) and single-shot to two fresh deployments must leave
//     identical full directory scans. A throughput number from a transport
//     that corrupts the directory is worse than no number.
//  3. Open-loop latency vs offered load through the AutoBatcher: submitter
//     threads fire ops on a fixed schedule (arrival rate independent of
//     completion - the honest way to find the knee) and we report latency
//     percentiles plus the coalescing the batcher achieved.
//
// Emits BENCH_throughput.json. `--smoke` runs a seconds-scale subset with
// the correctness audit but no perf assertion (timing in CI is noise);
// the full run asserts the >=5x batched-vs-unbatched saturation speedup.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lock/deadlock.h"
#include "net/tcp_transport.h"
#include "net/threaded_transport.h"
#include "rep/batcher.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

namespace {

using namespace repdir;
using Clock = std::chrono::steady_clock;

constexpr DurationMicros kLinkLatency = 200;  // one-way, threaded transport
constexpr int kKeysPerClient = 16;

enum class Wire { kThreaded, kTcp };

const char* WireName(Wire w) { return w == Wire::kThreaded ? "threaded" : "tcp"; }

/// One 3-node deployment plus whichever transport the experiment wants.
/// Owns everything; the suites the caller makes must die before it does.
struct Deployment {
  lock::DeadlockDetector detector;
  rep::QuorumConfig config = rep::QuorumConfig::Uniform(3, 2, 2);
  std::unique_ptr<sim::NetworkModel> network;
  std::unique_ptr<net::ThreadedTransport> threaded;
  std::unique_ptr<net::TcpTransport> tcp;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  std::vector<std::unique_ptr<net::TcpServer>> servers;

  explicit Deployment(Wire wire, DurationMicros group_commit_window_us = 100) {
    rep::DirRepNodeOptions node_options;
    node_options.detector = &detector;
    node_options.participant.blocking_locks = true;
    node_options.enable_wal = true;
    node_options.group_commit.window_us = group_commit_window_us;

    if (wire == Wire::kThreaded) {
      network = std::make_unique<sim::NetworkModel>(1);
      network->SetDefaultLink(sim::LinkSpec{kLinkLatency, 0, 0.0});
      threaded = std::make_unique<net::ThreadedTransport>(network.get());
    } else {
      tcp = std::make_unique<net::TcpTransport>();
    }
    for (const auto& replica : config.replicas()) {
      nodes.push_back(
          std::make_unique<rep::DirRepNode>(replica.node, node_options));
      if (wire == Wire::kThreaded) {
        threaded->RegisterNode(replica.node, nodes.back()->server());
      } else {
        servers.push_back(
            std::make_unique<net::TcpServer>(nodes.back()->server()));
        const auto port = servers.back()->Start();
        if (!port.ok()) {
          std::fprintf(stderr, "tcp listen failed: %s\n",
                       port.status().ToString().c_str());
          std::exit(1);
        }
        tcp->AddRoute(replica.node, "127.0.0.1", *port);
      }
    }
  }

  net::Transport& transport() {
    return threaded ? static_cast<net::Transport&>(*threaded) : *tcp;
  }

  std::unique_ptr<rep::DirectorySuite> NewSuite(NodeId client,
                                                std::uint64_t seed) {
    rep::DirectorySuite::Options options;
    options.config = config;
    options.policy_seed = seed;
    return std::make_unique<rep::DirectorySuite>(transport(), client,
                                                 std::move(options));
  }
};

// --- Experiment 1: closed-loop saturation sweep ---

struct ClosedLoopSample {
  Wire wire = Wire::kThreaded;
  int clients = 0;
  int batch = 0;
  int total_ops = 0;
  double ops_per_sec = 0;
};

ClosedLoopSample RunClosedLoop(Wire wire, int clients, int batch,
                               int ops_per_client) {
  Deployment deployment(wire);
  {
    auto seeder = deployment.NewSuite(99, 42);
    for (int t = 0; t < clients; ++t) {
      for (int k = 0; k < kKeysPerClient; ++k) {
        const std::string key =
            "c" + std::to_string(t) + "-k" + std::to_string(k);
        if (!seeder->Insert(key, "0").ok()) std::exit(1);
      }
    }
  }

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    workers.emplace_back([&, t] {
      auto suite = deployment.NewSuite(static_cast<NodeId>(100 + t),
                                       1000 + static_cast<std::uint64_t>(t));
      const std::string prefix = "c" + std::to_string(t) + "-k";
      if (batch <= 1) {
        for (int i = 0; i < ops_per_client; ++i) {
          const std::string key = prefix + std::to_string(i % kKeysPerClient);
          if (!suite->Update(key, std::to_string(i)).ok()) std::exit(1);
        }
      } else {
        for (int i = 0; i < ops_per_client; i += batch) {
          rep::BatchBuilder b = suite->Batch();
          for (int j = 0; j < batch; ++j) {
            const std::string key =
                prefix + std::to_string((i + j) % kKeysPerClient);
            b.Update(key, std::to_string(i + j));
          }
          const auto r = b.Execute();
          if (!r.status.ok()) std::exit(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  ClosedLoopSample sample;
  sample.wire = wire;
  sample.clients = clients;
  sample.batch = batch;
  sample.total_ops = clients * ops_per_client;
  sample.ops_per_sec = sample.total_ops / secs;
  return sample;
}

// --- Experiment 2: batched vs single-shot equivalence audit ---

bool ScansAgree(int script_ops, int chunk) {
  Deployment batched_dep(Wire::kThreaded, /*group_commit_window_us=*/0);
  Deployment single_dep(Wire::kThreaded, /*group_commit_window_us=*/0);
  auto batched = batched_dep.NewSuite(100, 7);
  auto single = single_dep.NewSuite(100, 7);

  using BatchOp = rep::DirectorySuite::BatchOp;
  std::vector<BatchOp> script;
  for (int i = 0; i < script_ops; ++i) {
    BatchOp op;
    op.key = "k" + std::to_string((i * 7) % 17);
    if (i % 3 == 0) {
      op.kind = BatchOp::Kind::kInsert;
      op.value = "ins" + std::to_string(i);
    } else if (i % 3 == 1) {
      op.kind = BatchOp::Kind::kUpdate;
      op.value = "upd" + std::to_string(i);
    } else {
      op.kind = BatchOp::Kind::kLookup;
    }
    script.push_back(std::move(op));
  }

  for (std::size_t base = 0; base < script.size();
       base += static_cast<std::size_t>(chunk)) {
    const std::size_t end =
        std::min(base + static_cast<std::size_t>(chunk), script.size());
    std::vector<BatchOp> slice(script.begin() + static_cast<long>(base),
                               script.begin() + static_cast<long>(end));
    if (!batched->ExecuteBatch(slice).status.ok()) return false;
  }
  for (const BatchOp& op : script) {
    switch (op.kind) {
      case BatchOp::Kind::kInsert:
        (void)single->Insert(op.key, op.value);
        break;
      case BatchOp::Kind::kUpdate:
        (void)single->Update(op.key, op.value);
        break;
      case BatchOp::Kind::kLookup:
        (void)single->Lookup(op.key);
        break;
    }
  }

  auto scan = [](rep::DirectorySuite& s) {
    std::vector<std::pair<UserKey, Value>> entries;
    auto cur = s.FirstKey();
    while (cur.ok() && cur->found) {
      entries.emplace_back(cur->key, cur->value);
      cur = s.NextKey(cur->key);
    }
    return entries;
  };
  return scan(*batched) == scan(*single);
}

// --- Experiment 3: open-loop offered load through the AutoBatcher ---

struct OpenLoopSample {
  double offered_ops_per_sec = 0;
  double achieved_ops_per_sec = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  std::uint64_t batches = 0;
  double mean_batch = 0;
};

OpenLoopSample RunOpenLoop(double offered_rate, int total_ops, int submitters) {
  Deployment deployment(Wire::kThreaded);
  auto suite = deployment.NewSuite(100, 5);
  for (int s = 0; s < submitters; ++s) {
    for (int k = 0; k < 4; ++k) {
      const std::string key = "s" + std::to_string(s) + "-" + std::to_string(k);
      if (!suite->Insert(key, "0").ok()) std::exit(1);
    }
  }

  rep::AutoBatcher::Options opts;
  opts.max_batch = 32;
  opts.max_wait_us = 200;
  rep::AutoBatcher batcher(*suite, opts);

  std::mutex lat_mu;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(total_ops));
  std::atomic<int> failures{0};

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(submitters);
  for (int s = 0; s < submitters; ++s) {
    threads.emplace_back([&, s] {
      // Thread s owns ops s, s+S, s+2S, ... of the global arrival schedule:
      // op i is due at i/offered_rate seconds, regardless of how long the
      // previous one took. That is what "open loop" means.
      for (int i = s; i < total_ops; i += submitters) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(i / offered_rate));
        std::this_thread::sleep_until(due);
        const std::string key =
            "s" + std::to_string(s) + "-" + std::to_string(i % 4);
        const auto t0 = Clock::now();
        if (!batcher.Update(key, std::to_string(i)).ok()) {
          failures.fetch_add(1);
          continue;
        }
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count();
        std::lock_guard<std::mutex> lk(lat_mu);
        latencies_us.push_back(us);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (failures.load() != 0) {
    std::fprintf(stderr, "open-loop: %d ops failed\n", failures.load());
    std::exit(1);
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  auto pct = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[idx];
  };

  OpenLoopSample sample;
  sample.offered_ops_per_sec = offered_rate;
  sample.achieved_ops_per_sec = latencies_us.size() / secs;
  sample.p50_us = pct(0.50);
  sample.p95_us = pct(0.95);
  sample.p99_us = pct(0.99);
  sample.batches = batcher.batches_dispatched();
  sample.mean_batch =
      sample.batches == 0
          ? 0.0
          : static_cast<double>(batcher.ops_submitted()) /
                static_cast<double>(sample.batches);
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<int> client_counts = smoke ? std::vector<int>{2}
                                               : std::vector<int>{1, 2, 4, 8};
  const int ops_per_client = smoke ? 32 : 96;
  const std::vector<int> batch_sizes = {1, 16};

  std::printf(
      "Hot-path saturation: 3-2-2, WAL + group commit, %lluus one-way links\n"
      "on the threaded transport, real loopback sockets on tcp.\n\n",
      static_cast<unsigned long long>(kLinkLatency));
  std::printf("%10s %8s %6s %10s %14s\n", "transport", "clients", "batch",
              "ops", "ops/s");

  std::vector<ClosedLoopSample> sweep;
  double best[2][2] = {{0, 0}, {0, 0}};  // [wire][batched]
  for (const Wire wire : {Wire::kThreaded, Wire::kTcp}) {
    for (const int batch : batch_sizes) {
      for (const int clients : client_counts) {
        const auto s = RunClosedLoop(wire, clients, batch, ops_per_client);
        sweep.push_back(s);
        auto& slot = best[wire == Wire::kTcp ? 1 : 0][batch > 1 ? 1 : 0];
        slot = std::max(slot, s.ops_per_sec);
        std::printf("%10s %8d %6d %10d %14.0f\n", WireName(s.wire), s.clients,
                    s.batch, s.total_ops, s.ops_per_sec);
      }
    }
  }
  const double threaded_speedup = best[0][1] / best[0][0];
  const double tcp_speedup = best[1][1] / best[1][0];
  std::printf(
      "\nSaturation: threaded %0.0f -> %0.0f ops/s (%.1fx batched), "
      "tcp %0.0f -> %0.0f ops/s (%.1fx batched)\n",
      best[0][0], best[0][1], threaded_speedup, best[1][0], best[1][1],
      tcp_speedup);

  const bool scans_ok = ScansAgree(smoke ? 60 : 120, 13);
  std::printf("Equivalence audit (batched vs single-shot scans): %s\n",
              scans_ok ? "identical" : "DIVERGED");
  if (!scans_ok) return 1;

  std::printf("\nOpen loop through AutoBatcher (offered load fixed):\n");
  std::printf("%12s %12s %10s %10s %10s %9s %11s\n", "offered/s", "achieved/s",
              "p50 us", "p95 us", "p99 us", "batches", "mean batch");
  const std::vector<double> loads =
      smoke ? std::vector<double>{400} : std::vector<double>{500, 2000, 8000};
  std::vector<OpenLoopSample> open;
  for (const double rate : loads) {
    const int ops = smoke ? 120 : static_cast<int>(std::min(rate, 4000.0));
    const auto s = RunOpenLoop(rate, ops, /*submitters=*/8);
    open.push_back(s);
    std::printf("%12.0f %12.0f %10.0f %10.0f %10.0f %9llu %11.1f\n",
                s.offered_ops_per_sec, s.achieved_ops_per_sec, s.p50_us,
                s.p95_us, s.p99_us, static_cast<unsigned long long>(s.batches),
                s.mean_batch);
  }

  if (!smoke) {
    if (std::FILE* json = std::fopen("BENCH_throughput.json", "w")) {
      std::fprintf(json,
                   "{\n  \"config\": \"3-2-2\",\n"
                   "  \"one_way_latency_us\": %llu,\n"
                   "  \"wal\": \"enabled, group commit window 100us\",\n",
                   static_cast<unsigned long long>(kLinkLatency));
      std::fprintf(json, "  \"closed_loop\": [\n");
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto& s = sweep[i];
        std::fprintf(json,
                     "    {\"transport\": \"%s\", \"clients\": %d, "
                     "\"batch\": %d, \"ops\": %d, \"ops_per_sec\": %.1f}%s\n",
                     WireName(s.wire), s.clients, s.batch, s.total_ops,
                     s.ops_per_sec, i + 1 < sweep.size() ? "," : "");
      }
      std::fprintf(json, "  ],\n  \"saturation\": {\n");
      std::fprintf(json,
                   "    \"threaded_unbatched_ops_per_sec\": %.1f,\n"
                   "    \"threaded_batched_ops_per_sec\": %.1f,\n"
                   "    \"threaded_batched_speedup\": %.2f,\n"
                   "    \"tcp_unbatched_ops_per_sec\": %.1f,\n"
                   "    \"tcp_batched_ops_per_sec\": %.1f,\n"
                   "    \"tcp_batched_speedup\": %.2f\n  },\n",
                   best[0][0], best[0][1], threaded_speedup, best[1][0],
                   best[1][1], tcp_speedup);
      std::fprintf(json, "  \"scan_equality\": %s,\n",
                   scans_ok ? "true" : "false");
      std::fprintf(json, "  \"open_loop\": [\n");
      for (std::size_t i = 0; i < open.size(); ++i) {
        const auto& s = open[i];
        std::fprintf(
            json,
            "    {\"offered_ops_per_sec\": %.0f, "
            "\"achieved_ops_per_sec\": %.1f, \"p50_us\": %.1f, "
            "\"p95_us\": %.1f, \"p99_us\": %.1f, \"batches\": %llu, "
            "\"mean_batch\": %.2f}%s\n",
            s.offered_ops_per_sec, s.achieved_ops_per_sec, s.p50_us, s.p95_us,
            s.p99_us, static_cast<unsigned long long>(s.batches),
            s.mean_batch, i + 1 < open.size() ? "," : "");
      }
      std::fprintf(json, "  ]\n}\n");
      std::fclose(json);
      std::printf("\nWrote BENCH_throughput.json\n");
    }
    if (threaded_speedup < 5.0) {
      std::fprintf(stderr,
                   "FAIL: batched saturation speedup %.2fx < 5x on the "
                   "threaded transport\n",
                   threaded_speedup);
      return 1;
    }
    std::printf("PASS: batched saturation speedup %.2fx >= 5x\n",
                threaded_speedup);

    // Client-scaling tripwire: hardcoded 16-thread server pools once
    // oversubscribed small containers badly enough that 8 tcp clients ran
    // ~21% SLOWER than 4 (34.1k vs 43.0k ops/s on one core). Pools now
    // size to the hardware; going wide again must never collapse the
    // curve. 0.85 leaves room for scheduler noise, not for the bug.
    double tcp4 = 0, tcp8 = 0;
    for (const auto& s : sweep) {
      if (s.wire == Wire::kTcp && s.batch > 1) {
        if (s.clients == 4) tcp4 = s.ops_per_sec;
        if (s.clients == 8) tcp8 = s.ops_per_sec;
      }
    }
    if (tcp4 > 0 && tcp8 < 0.85 * tcp4) {
      std::fprintf(stderr,
                   "FAIL: tcp batched throughput fell from %.0f ops/s at 4 "
                   "clients to %.0f at 8 - thread oversubscription is back\n",
                   tcp4, tcp8);
      return 1;
    }
    std::printf("PASS: tcp batched 8-client throughput %.0f >= 0.85 * "
                "4-client %.0f\n",
                tcp8, tcp4);
  }
  return 0;
}
