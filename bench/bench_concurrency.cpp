// Concurrency comparison (paper §2 motivation): a directory stored as a
// replicated FILE serializes every modification on the file's single
// version number, while the replicated DIRECTORY's per-range versions and
// range locks let transactions on different entries proceed in parallel.
//
// Setup: 3-2-2 deployment over the threaded transport with a simulated
// 200us one-way RPC latency (so holding locks across RPCs is what costs,
// exactly as in a distributed system). T client threads each update their
// own disjoint key. We report throughput and lock-wait counts for:
//   * DirectorySuite  (per-entry RepModify locks -> parallel),
//   * FileDirectory   (whole-file lock held across the RMW -> serialized).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/file_directory.h"
#include "common/metrics.h"
#include "lock/deadlock.h"
#include "net/failure_injector.h"
#include "net/threaded_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

namespace {

using namespace repdir;
using Clock = std::chrono::steady_clock;

constexpr DurationMicros kLinkLatency = 200;

double RunSuite(int threads, int ops_per_thread, std::uint64_t& waits) {
  lock::DeadlockDetector detector;
  rep::DirRepNodeOptions node_options;
  node_options.detector = &detector;
  node_options.participant.blocking_locks = true;

  const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
  sim::NetworkModel network(1);
  network.SetDefaultLink(sim::LinkSpec{kLinkLatency, 0, 0.0});
  net::ThreadedTransport transport(&network);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  // Seed one key per thread.
  {
    rep::DirectorySuite::Options options;
    options.config = config;
    rep::DirectorySuite seeder(transport, 99, std::move(options));
    for (int t = 0; t < threads; ++t) {
      if (!seeder.Insert("key-" + std::to_string(t), "0").ok()) std::exit(1);
    }
  }

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      rep::DirectorySuite::Options options;
      options.config = config;
      options.policy_seed = 1000 + t;
      rep::DirectorySuite suite(transport, static_cast<NodeId>(100 + t),
                                std::move(options));
      const std::string key = "key-" + std::to_string(t);
      for (int i = 0; i < ops_per_thread; ++i) {
        if (!suite.Update(key, std::to_string(i)).ok()) std::exit(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  waits = 0;
  for (auto& node : nodes) {
    waits += node->participant().lock_manager().stats().waits;
  }
  return threads * ops_per_thread / secs;
}

/// Latency of single-client quorum operations with the suite's scatter-
/// gather fan-out vs. the same deployment forced sequential through
/// net::SequentialAdapter. Same policy seed, same workload: the two runs
/// issue identical RPCs, so any latency gap is pure wave overlap.
struct FanOutSample {
  double ms_per_op = 0;
  std::uint64_t attempts = 0;
};

FanOutSample MeasureFanOut(bool parallel, bool updates, int ops) {
  lock::DeadlockDetector detector;
  rep::DirRepNodeOptions node_options;
  node_options.detector = &detector;

  const auto config = rep::QuorumConfig::Uniform(5, 3, 3);
  sim::NetworkModel network(3);
  network.SetDefaultLink(sim::LinkSpec{kLinkLatency, 0, 0.0});
  net::ThreadedTransport threaded(&network);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    threaded.RegisterNode(replica.node, nodes.back()->server());
  }
  net::SequentialAdapter sequential(threaded);
  net::Transport& through =
      parallel ? static_cast<net::Transport&>(threaded) : sequential;

  rep::DirectorySuite::Options options;
  options.config = config;
  options.policy_seed = 7;
  rep::DirectorySuite suite(through, 100, std::move(options));
  constexpr int kKeys = 16;
  for (int i = 0; i < kKeys; ++i) {
    if (!suite.Insert("key-" + std::to_string(i), "0").ok()) std::exit(1);
  }

  const std::uint64_t attempts_before = threaded.TotalAttempts();
  const auto start = Clock::now();
  for (int i = 0; i < ops; ++i) {
    const std::string key = "key-" + std::to_string(i % kKeys);
    const Status st = updates ? suite.Update(key, std::to_string(i))
                              : suite.Lookup(key).status();
    if (!st.ok()) std::exit(1);
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();

  FanOutSample sample;
  sample.ms_per_op = secs * 1000.0 / ops;
  sample.attempts = threaded.TotalAttempts() - attempts_before;
  return sample;
}

/// Observability snapshot: a contended, flaky 3-2-2 threaded run reported
/// into a private MetricsRegistry, dumped to BENCH_observability.json.
/// Contention (all threads update the same few keys) exercises lock waits;
/// the FailureInjector plus per-slot retries exercises the retry/backoff
/// metrics; every operation commits or aborts through 2PC.
void RunObservability(int threads, int ops_per_thread) {
  MetricsRegistry registry;
  lock::DeadlockDetector detector;
  rep::DirRepNodeOptions node_options;
  node_options.detector = &detector;
  node_options.participant.blocking_locks = true;
  node_options.participant.metrics = &registry;
  // A COMMIT delivery that loses all its injected-failure retries leaves
  // the participant holding locks; a short timeout turns that rare event
  // into an abort sample instead of a stalled run.
  node_options.participant.lock_timeout_micros = 500'000;
  node_options.enable_wal = true;

  const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
  sim::NetworkModel network(11);
  network.SetDefaultLink(sim::LinkSpec{kLinkLatency, 0, 0.0});
  net::ThreadedTransport threaded(&network);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    threaded.RegisterNode(replica.node, nodes.back()->server());
  }
  net::FailureInjector flaky(threaded, /*seed=*/17);

  constexpr int kKeys = 2;  // Far fewer keys than threads: real contention.
  {
    rep::DirectorySuite::Options options;
    options.config = config;
    options.metrics = &registry;
    rep::DirectorySuite seeder(flaky, 99, std::move(options));
    for (int k = 0; k < kKeys; ++k) {
      if (!seeder.Insert("hot-" + std::to_string(k), "0").ok()) std::exit(1);
    }
  }
  flaky.SetFailureProbability(0.05);

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      rep::DirectorySuite::Options options;
      options.config = config;
      options.policy_seed = 2000 + t;
      options.metrics = &registry;
      options.rpc_retry.max_attempts = 4;
      options.rpc_retry.backoff_base_micros = 50;
      options.rpc_retry.backoff_cap_micros = 800;
      rep::DirectorySuite suite(flaky, static_cast<NodeId>(200 + t),
                                std::move(options));
      const std::string key = "hot-" + std::to_string(t % kKeys);
      for (int i = 0; i < ops_per_thread; ++i) {
        // Aborts (lock conflicts, injected failures) are part of the data
        // being collected - keep going either way.
        (void)suite.Update(key, std::to_string(i));
        (void)suite.Lookup(key);
      }
    });
  }
  for (auto& w : workers) w.join();

  const std::string json = registry.RenderJson();
  if (std::FILE* out = std::fopen("BENCH_observability.json", "w")) {
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
    std::printf("\nWrote BENCH_observability.json\n");
  }
  std::printf(
      "\nObservability snapshot (contended keys, 5%% injected loss, "
      "retries):\n%s",
      registry.RenderText().c_str());
}

double RunFileBaseline(int threads, int ops_per_thread, std::uint64_t seed) {
  lock::DeadlockDetector detector;
  sim::NetworkModel network(2);
  network.SetDefaultLink(sim::LinkSpec{kLinkLatency, 0, 0.0});
  net::ThreadedTransport transport(&network);
  std::vector<std::unique_ptr<baseline::FileRepNode>> nodes;
  for (NodeId id : {1u, 2u, 3u}) {
    nodes.push_back(std::make_unique<baseline::FileRepNode>(
        id, &detector, /*blocking_locks=*/true));
    transport.RegisterNode(id, nodes.back()->server());
  }

  {
    baseline::VotingFile::Options options;
    options.config = rep::QuorumConfig::Uniform(3, 2, 2);
    baseline::FileDirectory seeder(transport, 99, std::move(options));
    for (int t = 0; t < threads; ++t) {
      if (!seeder.Insert("key-" + std::to_string(t), "0").ok()) std::exit(1);
    }
  }

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      baseline::VotingFile::Options options;
      options.config = rep::QuorumConfig::Uniform(3, 2, 2);
      options.policy_seed = seed + t;
      baseline::FileDirectory dir(transport, static_cast<NodeId>(100 + t),
                                  std::move(options));
      const std::string key = "key-" + std::to_string(t);
      for (int i = 0; i < ops_per_thread; ++i) {
        // Whole-file RMW transactions conflict even on different keys; they
        // abort (deadlock victim) or wait - retry until committed.
        while (true) {
          const Status st = dir.Update(key, std::to_string(i));
          if (st.ok()) break;
          if (st.code() != StatusCode::kAborted) std::exit(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  return threads * ops_per_thread / secs;
}

}  // namespace

int main(int argc, char** argv) {
  int ops_per_thread = 150;
  if (argc > 1) ops_per_thread = std::atoi(argv[1]);

  std::printf(
      "Concurrency: disjoint-key update throughput (ops/s), 3-2-2 suite,\n"
      "simulated %lluus one-way RPC latency, vs. directory-as-voting-file\n\n",
      static_cast<unsigned long long>(kLinkLatency));
  std::printf("%8s %16s %18s %12s %12s\n", "threads", "suite ops/s",
              "file-dir ops/s", "speedup", "suite waits");

  double suite_base = 0;
  for (const int threads : {1, 2, 4, 8}) {
    std::uint64_t waits = 0;
    const double suite = RunSuite(threads, ops_per_thread, waits);
    const double file = RunFileBaseline(threads, ops_per_thread, 500);
    if (threads == 1) suite_base = suite;
    std::printf("%8d %16.0f %18.0f %11.2fx %12llu\n", threads, suite, file,
                suite / file, static_cast<unsigned long long>(waits));
  }
  std::printf(
      "\nShape: the suite scales with threads (disjoint entries never "
      "conflict;\nwaits stay ~0) while the file baseline stays flat near its "
      "single-threaded\nrate (%0.0f ops/s here) because every modification "
      "serializes on the file.\n",
      suite_base);

  std::printf(
      "\nParallel fan-out: single-client latency, 5-3-3 suite, %lluus "
      "one-way\nlatency, sequential walk (SequentialAdapter) vs. "
      "scatter-gather waves:\n\n",
      static_cast<unsigned long long>(kLinkLatency));
  std::printf("%8s %14s %14s %9s %12s %12s\n", "op", "seq ms/op", "par ms/op",
              "speedup", "seq msgs", "par msgs");

  const int fanout_ops = ops_per_thread;
  struct Row {
    const char* name;
    bool updates;
    FanOutSample seq, par;
  };
  Row rows[] = {{"lookup", false, {}, {}}, {"update", true, {}, {}}};
  for (Row& row : rows) {
    row.seq = MeasureFanOut(/*parallel=*/false, row.updates, fanout_ops);
    row.par = MeasureFanOut(/*parallel=*/true, row.updates, fanout_ops);
    std::printf("%8s %14.3f %14.3f %8.2fx %12llu %12llu\n", row.name,
                row.seq.ms_per_op, row.par.ms_per_op,
                row.seq.ms_per_op / row.par.ms_per_op,
                static_cast<unsigned long long>(row.seq.attempts),
                static_cast<unsigned long long>(row.par.attempts));
  }

  if (std::FILE* json = std::fopen("BENCH_parallel_fanout.json", "w")) {
    std::fprintf(json,
                 "{\n  \"config\": \"5-3-3\",\n"
                 "  \"one_way_latency_us\": %llu,\n  \"ops\": %d,\n",
                 static_cast<unsigned long long>(kLinkLatency), fanout_ops);
    for (std::size_t i = 0; i < 2; ++i) {
      const Row& row = rows[i];
      std::fprintf(
          json,
          "  \"%s\": {\"sequential_ms_per_op\": %.4f, "
          "\"parallel_ms_per_op\": %.4f, \"speedup\": %.3f, "
          "\"sequential_messages\": %llu, \"parallel_messages\": %llu}%s\n",
          row.name, row.seq.ms_per_op, row.par.ms_per_op,
          row.seq.ms_per_op / row.par.ms_per_op,
          static_cast<unsigned long long>(row.seq.attempts),
          static_cast<unsigned long long>(row.par.attempts),
          i + 1 < 2 ? "," : "");
    }
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nWrote BENCH_parallel_fanout.json\n");
  }
  std::printf(
      "\nShape: every quorum step (probe, inquiry, write, 2PC round) is one\n"
      "overlapped wave instead of a member-by-member walk, so latency drops\n"
      "to the round count while the message columns stay identical.\n");

  RunObservability(/*threads=*/4, std::max(20, ops_per_thread / 4));
  return 0;
}
