// Availability analysis (paper §1/§2 motivation): quorum sizing trades read
// availability against write availability; unanimous update is the
// degenerate worst case for updates.
//
// Two parts:
//   1. Exact availability (with Monte-Carlo cross-check) for representative
//      configurations across per-replica up-probabilities.
//   2. A live experiment: run actual suite operations against a deployment
//      whose nodes are up/down per Bernoulli(p) before each operation, and
//      compare the measured success rate with the exact prediction.
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/unanimous.h"
#include "net/inproc_transport.h"
#include "rep/availability.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "sim/network_model.h"
#include "wl/key_gen.h"

namespace {

using namespace repdir;

void AnalysisTable() {
  struct Named {
    const char* name;
    rep::QuorumConfig config;
  };
  const Named configs[] = {
      {"3-2-2 (balanced)", rep::QuorumConfig::Uniform(3, 2, 2)},
      {"3-1-3 (unanimous W)", baseline::UnanimousConfig(3)},
      {"3-3-1 (read-all)", baseline::ReadAllWriteOneConfig(3)},
      {"5-3-3 (balanced)", rep::QuorumConfig::Uniform(5, 3, 3)},
      {"5-1-5 (unanimous W)", baseline::UnanimousConfig(5)},
      {"5-2-4 (write-heavy)", rep::QuorumConfig::Uniform(5, 2, 4)},
      {"weighted 2+1+1, R2 W3",
       rep::QuorumConfig({{1, 2}, {2, 1}, {3, 1}}, 2, 3)},
  };

  std::printf("Exact availability (read / write / modify):\n");
  std::printf("%-24s", "config \\ p(up)");
  const double ps[] = {0.50, 0.80, 0.90, 0.95, 0.99};
  for (const double p : ps) std::printf("        p=%.2f       ", p);
  std::printf("\n");

  Rng rng(1234);
  for (const Named& named : configs) {
    std::printf("%-24s", named.name);
    for (const double p : ps) {
      const auto a = rep::ExactAvailability(named.config, p);
      std::printf("  %.3f/%.3f/%.3f", a.read, a.write, a.modify);
    }
    std::printf("\n");

    // Monte-Carlo cross-check at p = 0.9 (fails loudly on drift).
    const auto exact = rep::ExactAvailability(named.config, 0.9);
    const auto mc =
        rep::SimulatedAvailability(named.config, 0.9, 100'000, rng);
    if (std::abs(mc.modify - exact.modify) > 0.01) {
      std::fprintf(stderr, "Monte-Carlo drift for %s: %.4f vs %.4f\n",
                   named.name, mc.modify, exact.modify);
      std::exit(1);
    }
  }
  std::printf(
      "\nShape: write availability collapses for unanimous update as p "
      "drops;\nbalanced quorums keep both sides high - the paper's case "
      "for weighted voting.\n\n");
}

void LiveExperiment(double p_up, std::uint64_t trials) {
  const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;

  sim::NetworkModel network(7);
  net::InProcTransport transport(nullptr, &network);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options options;
  options.config = config;
  options.policy_seed = 99;
  rep::DirectorySuite suite(transport, 100, std::move(options));

  // Seed entries (everyone up during the fill).
  for (int i = 0; i < 50; ++i) {
    if (!suite.Insert(wl::NumericKey(i), "v").ok()) std::exit(1);
  }

  Rng rng(31337);
  std::uint64_t read_ok = 0;
  std::uint64_t modify_ok = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    for (const auto& replica : config.replicas()) {
      network.SetNodeUp(replica.node, rng.Chance(p_up));
    }
    const UserKey key = wl::NumericKey(rng.Range(0, 49));
    if (suite.Lookup(key).ok()) ++read_ok;
    if (suite.Update(key, "w").ok()) ++modify_ok;
  }
  for (const auto& replica : config.replicas()) {
    network.SetNodeUp(replica.node, true);
  }

  const auto exact = rep::ExactAvailability(config, p_up);
  std::printf(
      "Live 3-2-2 experiment at p(up)=%.2f over %llu trials:\n"
      "  reads    succeeded %.3f   (exact prediction %.3f)\n"
      "  modifies succeeded %.3f   (exact prediction %.3f)\n\n",
      p_up, static_cast<unsigned long long>(trials),
      static_cast<double>(read_ok) / static_cast<double>(trials), exact.read,
      static_cast<double>(modify_ok) / static_cast<double>(trials),
      exact.modify);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t trials = 2000;
  if (argc > 1) trials = std::strtoull(argv[1], nullptr, 10);

  AnalysisTable();
  LiveExperiment(0.90, trials);
  LiveExperiment(0.70, trials);
  return 0;
}
