// Latency-aware quorum planning + hedged reads: does the adaptive policy
// actually buy what it promises?
//
// Three legs, mirroring the three transports the suite runs on:
//
//  1. Sim (deterministic): a 5-node R=W=3 deployment on the in-process
//     transport with a virtual clock and heterogeneous one-way link
//     latencies. Per-op cost is virtual microseconds advanced by the
//     modeled links - exact, zero noise. Adaptive must beat both the
//     random policy (the paper's §4 uniform selection) and a stable
//     order that does not know the latencies.
//  2. Threaded (real sleeps): a 3-2-2 deployment where node 3 is a 10x
//     straggler. Random planning eats the straggler in most read quorums;
//     the adaptive planner steers around it and the hedge wave covers the
//     residual tail. The full run asserts the hedged+adaptive p99 is at
//     least 2x below the random baseline AND that hedging costs <= 10%
//     extra messages over the same policy unhedged.
//  3. TCP (real loopback sockets): homogeneous links - the honest
//     negative control. Adaptive+hedged should ride within noise of the
//     default policy with (near) zero hedges fired: the machinery must
//     not cost anything when there is nothing to win.
//
// Emits BENCH_quorum_policy.json. `--smoke` runs a seconds-scale subset:
// the deterministic sim leg keeps its ordering audit (virtual time is
// exact even in smoke), the wall-clock legs drop their perf assertions
// (CI timing is noise).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "chaos/deployment.h"
#include "common/metrics.h"
#include "lock/deadlock.h"
#include "net/tcp_transport.h"
#include "net/threaded_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "rep/quorum_policy.h"

namespace {

using namespace repdir;
using WallClock = std::chrono::steady_clock;

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

// --- Leg 1: deterministic sim, heterogeneous links, virtual cost ---

// One-way latencies by replica index: two fast replicas (150us), a medium
// pair, and one far node. R = 3 of 5: the best read set sums 700us one-way,
// a stable order oblivious to latency pays for the 3000us node on every op.
constexpr DurationMicros kSimOneWayUs[5] = {400, 3000, 150, 900, 150};

struct SimSample {
  std::string policy;
  double p50_us = 0, p90_us = 0, mean_us = 0;
};

enum class PolicyKind { kRandom, kStable, kAdaptive };

SimSample RunSim(PolicyKind kind, int lookups) {
  chaos::Deployment deployment(rep::QuorumConfig::Uniform(5, 3, 3));
  const auto nodes = deployment.config().Nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const sim::LinkSpec link{kSimOneWayUs[i], 0, 0.0};
    deployment.network().SetLink(chaos::Deployment::kClientNode, nodes[i],
                                 link);
    deployment.network().SetLink(nodes[i], chaos::Deployment::kClientNode,
                                 link);
  }

  // The adaptive suite measures on the deployment's virtual clock, so the
  // scoreboard sees exactly the modeled latencies - deterministic.
  MetricsRegistry metrics(&deployment.clock());
  std::unique_ptr<rep::DirectorySuite> suite;
  SimSample sample;
  switch (kind) {
    case PolicyKind::kRandom:
      sample.policy = "random";
      suite = deployment.NewSuite(chaos::Deployment::kClientNode, nullptr, 7);
      break;
    case PolicyKind::kStable:
      sample.policy = "stable";
      suite = deployment.NewSuite(
          chaos::Deployment::kClientNode,
          std::make_unique<rep::StableQuorumPolicy>(deployment.config()));
      break;
    case PolicyKind::kAdaptive: {
      sample.policy = "adaptive";
      rep::SuiteOptions options;
      options.policy_seed = 7;
      options.enable_adaptive_policy = true;
      options.metrics = &metrics;
      suite = deployment.NewSuiteWithOptions(chaos::Deployment::kClientNode,
                                             std::move(options));
      break;
    }
  }

  // Seeding doubles as the adaptive warm-up: every write wave completes
  // against real links, so the EWMAs converge before we measure.
  for (int k = 0; k < 32; ++k) {
    if (!suite->Insert("k" + std::to_string(k), "0").ok()) std::exit(1);
  }

  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(lookups));
  for (int i = 0; i < lookups; ++i) {
    const TimeMicros t0 = deployment.clock().Now();
    const auto r = suite->Lookup("k" + std::to_string(i % 32));
    if (!r.ok() || !r->found) std::exit(1);
    costs.push_back(static_cast<double>(deployment.clock().Now() - t0));
  }
  std::sort(costs.begin(), costs.end());
  sample.p50_us = Percentile(costs, 0.50);
  sample.p90_us = Percentile(costs, 0.90);
  double sum = 0;
  for (const double c : costs) sum += c;
  sample.mean_us = sum / static_cast<double>(costs.size());
  return sample;
}

// --- Legs 2 and 3: wall-clock deployments (threaded / tcp) ---

enum class Wire { kThreaded, kTcp };

/// Same shape as bench_throughput's deployment: N representatives behind
/// either the threaded transport (NetworkModel latencies, real sleeps) or
/// real loopback TCP.
struct Deployment {
  lock::DeadlockDetector detector;
  rep::QuorumConfig config = rep::QuorumConfig::Uniform(3, 2, 2);
  std::unique_ptr<sim::NetworkModel> network;
  std::unique_ptr<net::ThreadedTransport> threaded;
  std::unique_ptr<net::TcpTransport> tcp;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  std::vector<std::unique_ptr<net::TcpServer>> servers;

  explicit Deployment(Wire wire) {
    rep::DirRepNodeOptions node_options;
    node_options.detector = &detector;
    node_options.participant.blocking_locks = true;

    if (wire == Wire::kThreaded) {
      network = std::make_unique<sim::NetworkModel>(1);
      threaded = std::make_unique<net::ThreadedTransport>(network.get());
    } else {
      tcp = std::make_unique<net::TcpTransport>();
    }
    for (const auto& replica : config.replicas()) {
      nodes.push_back(
          std::make_unique<rep::DirRepNode>(replica.node, node_options));
      if (wire == Wire::kThreaded) {
        threaded->RegisterNode(replica.node, nodes.back()->server());
      } else {
        servers.push_back(
            std::make_unique<net::TcpServer>(nodes.back()->server()));
        const auto port = servers.back()->Start();
        if (!port.ok()) {
          std::fprintf(stderr, "tcp listen failed: %s\n",
                       port.status().ToString().c_str());
          std::exit(1);
        }
        tcp->AddRoute(replica.node, "127.0.0.1", *port);
      }
    }
  }

  net::Transport& transport() {
    return threaded ? static_cast<net::Transport&>(*threaded) : *tcp;
  }
};

constexpr NodeId kClient = 100;
constexpr DurationMicros kFastOneWayUs = 200;
constexpr DurationMicros kStragglerOneWayUs = 2000;  // the 10x straggler
constexpr DurationMicros kJitterUs = 50;
constexpr NodeId kStragglerNode = 3;

enum class SuiteMode { kRandom, kAdaptive, kAdaptiveHedged };

const char* ModeName(SuiteMode m) {
  switch (m) {
    case SuiteMode::kRandom: return "random";
    case SuiteMode::kAdaptive: return "adaptive";
    case SuiteMode::kAdaptiveHedged: return "adaptive+hedged";
  }
  return "?";
}

struct WallSample {
  std::string mode;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  std::uint64_t attempts = 0;  ///< Transport messages in the measured loop.
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
};

WallSample RunWall(Wire wire, SuiteMode mode, int lookups, int warmup) {
  Deployment deployment(wire);
  if (wire == Wire::kThreaded) {
    deployment.network->SetDefaultLink(
        sim::LinkSpec{kFastOneWayUs, kJitterUs, 0.0});
    const sim::LinkSpec slow{kStragglerOneWayUs, kJitterUs, 0.0};
    deployment.network->SetLink(kClient, kStragglerNode, slow);
    deployment.network->SetLink(kStragglerNode, kClient, slow);
  }

  MetricsRegistry metrics;  // wall clock backs the scoreboard + hedge delay
  rep::SuiteOptions options;
  options.config = deployment.config;
  options.policy_seed = 7;
  options.metrics = &metrics;
  options.enable_adaptive_policy = mode != SuiteMode::kRandom;
  options.enable_hedged_reads = mode == SuiteMode::kAdaptiveHedged;
  rep::DirectorySuite suite(deployment.transport(), kClient,
                            std::move(options));

  // Seed + warm-up: converge the EWMAs and fill the per-method latency
  // distribution the p95 hedge delay derives from. Not measured.
  for (int k = 0; k < 16; ++k) {
    if (!suite.Insert("k" + std::to_string(k), "0").ok()) std::exit(1);
  }
  for (int i = 0; i < warmup; ++i) {
    if (!suite.Lookup("k" + std::to_string(i % 16)).ok()) std::exit(1);
  }

  const std::uint64_t attempts_before = deployment.transport().TotalAttempts();
  std::vector<double> lat;
  lat.reserve(static_cast<std::size_t>(lookups));
  for (int i = 0; i < lookups; ++i) {
    const auto t0 = WallClock::now();
    const auto r = suite.Lookup("k" + std::to_string(i % 16));
    if (!r.ok() || !r->found) std::exit(1);
    lat.push_back(
        std::chrono::duration<double, std::micro>(WallClock::now() - t0)
            .count());
  }

  WallSample sample;
  sample.mode = ModeName(mode);
  sample.attempts = deployment.transport().TotalAttempts() - attempts_before;
  sample.hedges = metrics.counter("rpc.hedges").value();
  sample.hedge_wins = metrics.counter("rpc.hedge_wins").value();
  std::sort(lat.begin(), lat.end());
  sample.p50_us = Percentile(lat, 0.50);
  sample.p95_us = Percentile(lat, 0.95);
  sample.p99_us = Percentile(lat, 0.99);
  return sample;
}

void PrintWall(const WallSample& s) {
  std::printf("%16s %10.0f %10.0f %10.0f %10llu %7llu %7llu\n",
              s.mode.c_str(), s.p50_us, s.p95_us, s.p99_us,
              static_cast<unsigned long long>(s.attempts),
              static_cast<unsigned long long>(s.hedges),
              static_cast<unsigned long long>(s.hedge_wins));
}

void JsonWall(std::FILE* json, const WallSample& s, const char* trailer) {
  std::fprintf(json,
               "    {\"mode\": \"%s\", \"p50_us\": %.1f, \"p95_us\": %.1f, "
               "\"p99_us\": %.1f, \"attempts\": %llu, \"hedges\": %llu, "
               "\"hedge_wins\": %llu}%s\n",
               s.mode.c_str(), s.p50_us, s.p95_us, s.p99_us,
               static_cast<unsigned long long>(s.attempts),
               static_cast<unsigned long long>(s.hedges),
               static_cast<unsigned long long>(s.hedge_wins), trailer);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // Leg 1: deterministic sim. Virtual time is exact, so the ordering audit
  // runs in smoke mode too - it is an invariant, not a timing guess.
  std::printf(
      "Sim leg: 5-3-3 inproc + virtual clock, one-way us = "
      "{400, 3000, 150, 900, 150}; cost = virtual us per lookup\n");
  std::printf("%10s %10s %10s %10s\n", "policy", "p50 us", "p90 us", "mean");
  const int sim_lookups = smoke ? 60 : 400;
  std::vector<SimSample> sim;
  for (const PolicyKind kind :
       {PolicyKind::kRandom, PolicyKind::kStable, PolicyKind::kAdaptive}) {
    sim.push_back(RunSim(kind, sim_lookups));
    const auto& s = sim.back();
    std::printf("%10s %10.0f %10.0f %10.0f\n", s.policy.c_str(), s.p50_us,
                s.p90_us, s.mean_us);
  }
  const bool sim_ok =
      sim[2].p50_us < sim[0].p50_us && sim[2].p50_us < sim[1].p50_us;
  std::printf("Ordering audit (adaptive p50 beats random AND stable): %s\n\n",
              sim_ok ? "PASS" : "FAIL");
  if (!sim_ok) return 1;

  // Leg 2: threaded transport, 10x straggler on node 3.
  std::printf(
      "Threaded leg: 3-2-2, one-way %llu/%lluus (+%lluus jitter), node %u "
      "is the straggler\n",
      static_cast<unsigned long long>(kFastOneWayUs),
      static_cast<unsigned long long>(kStragglerOneWayUs),
      static_cast<unsigned long long>(kJitterUs),
      static_cast<unsigned>(kStragglerNode));
  std::printf("%16s %10s %10s %10s %10s %7s %7s\n", "mode", "p50 us", "p95 us",
              "p99 us", "attempts", "hedges", "wins");
  const int wall_lookups = smoke ? 80 : 500;
  const int wall_warmup = smoke ? 24 : 80;
  std::vector<WallSample> threaded;
  for (const SuiteMode mode : {SuiteMode::kRandom, SuiteMode::kAdaptive,
                               SuiteMode::kAdaptiveHedged}) {
    threaded.push_back(RunWall(Wire::kThreaded, mode, wall_lookups,
                               wall_warmup));
    PrintWall(threaded.back());
  }
  const double p99_cut = threaded[0].p99_us / threaded[2].p99_us;
  const double msg_overhead =
      static_cast<double>(threaded[2].attempts) /
      static_cast<double>(threaded[1].attempts);
  std::printf(
      "p99: random %.0fus -> adaptive+hedged %.0fus (%.1fx); messages "
      "vs unhedged adaptive: %.3fx\n\n",
      threaded[0].p99_us, threaded[2].p99_us, p99_cut, msg_overhead);

  // Leg 3: real TCP loopback, homogeneous - the negative control.
  std::printf("TCP leg: 3-2-2 loopback sockets, homogeneous links\n");
  std::printf("%16s %10s %10s %10s %10s %7s %7s\n", "mode", "p50 us", "p95 us",
              "p99 us", "attempts", "hedges", "wins");
  const int tcp_lookups = smoke ? 60 : 300;
  std::vector<WallSample> tcp;
  for (const SuiteMode mode : {SuiteMode::kRandom, SuiteMode::kAdaptiveHedged}) {
    tcp.push_back(RunWall(Wire::kTcp, mode, tcp_lookups, wall_warmup));
    PrintWall(tcp.back());
  }
  std::printf("\n");

  if (!smoke) {
    if (std::FILE* json = std::fopen("BENCH_quorum_policy.json", "w")) {
      std::fprintf(json,
                   "{\n  \"sim\": {\n"
                   "    \"config\": \"5-3-3 inproc, virtual clock\",\n"
                   "    \"one_way_us\": [400, 3000, 150, 900, 150],\n"
                   "    \"samples\": [\n");
      for (std::size_t i = 0; i < sim.size(); ++i) {
        std::fprintf(json,
                     "      {\"policy\": \"%s\", \"p50_us\": %.0f, "
                     "\"p90_us\": %.0f, \"mean_us\": %.0f}%s\n",
                     sim[i].policy.c_str(), sim[i].p50_us, sim[i].p90_us,
                     sim[i].mean_us, i + 1 < sim.size() ? "," : "");
      }
      std::fprintf(json, "    ]\n  },\n  \"threaded\": {\n");
      std::fprintf(json,
                   "    \"config\": \"3-2-2, one-way %llu/%lluus, straggler "
                   "node %u\",\n    \"samples\": [\n",
                   static_cast<unsigned long long>(kFastOneWayUs),
                   static_cast<unsigned long long>(kStragglerOneWayUs),
                   static_cast<unsigned>(kStragglerNode));
      for (std::size_t i = 0; i < threaded.size(); ++i) {
        JsonWall(json, threaded[i], i + 1 < threaded.size() ? "," : "");
      }
      std::fprintf(json,
                   "    ],\n    \"p99_cut_vs_random\": %.2f,\n"
                   "    \"message_overhead_vs_unhedged\": %.3f\n  },\n",
                   p99_cut, msg_overhead);
      std::fprintf(json, "  \"tcp\": {\n    \"config\": \"3-2-2 loopback, "
                         "homogeneous\",\n    \"samples\": [\n");
      for (std::size_t i = 0; i < tcp.size(); ++i) {
        JsonWall(json, tcp[i], i + 1 < tcp.size() ? "," : "");
      }
      std::fprintf(json, "    ]\n  }\n}\n");
      std::fclose(json);
      std::printf("Wrote BENCH_quorum_policy.json\n");
    }

    if (p99_cut < 2.0) {
      std::fprintf(stderr,
                   "FAIL: adaptive+hedged p99 cut %.2fx < 2x vs the random "
                   "baseline under a 10x straggler\n",
                   p99_cut);
      return 1;
    }
    if (msg_overhead > 1.10) {
      std::fprintf(stderr,
                   "FAIL: hedging cost %.3fx > 1.10x messages vs the "
                   "unhedged adaptive run\n",
                   msg_overhead);
      return 1;
    }
    std::printf("PASS: p99 cut %.2fx >= 2x, hedge message overhead %.3fx "
                "<= 1.10x\n",
                p99_cut, msg_overhead);
  }
  return 0;
}
