// Version-cache benchmark: RPC rounds and bytes per operation with the
// client-side version cache (guarded single-round writes + validated
// reads) against the read-then-write baseline, across cache hit rates.
//
// Setup: 5-3-3 deployment (2W > V, so guarded fast-path writes are legal)
// over the deterministic InProcTransport. Rounds are counted exactly - one
// "rpc.wave_width" sample per scatter-gather wave - so the numbers are the
// protocol's, not the host's. Workload per cell: `ops` operations of one
// kind (lookup or update) where a fixed fraction target a small hot set
// the cache has seen and the rest target fresh keys it cannot know.
//
// Expected shape (waves per op): a baseline update is 6 (read ping, lookup,
// write ping, write, prepare, commit); a fast-path update is 3 (guarded
// write, prepare, commit) - so a 90% hit rate lands near 6/3.3 = 1.8x. A
// baseline lookup is 3, a validated cached lookup 2, with reply values
// elided on top.
//
// Emits BENCH_version_cache.json, and fails (exit 1) if the cached and
// baseline deployments end up with different directory contents.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

namespace {

using namespace repdir;

constexpr int kHotKeys = 8;
constexpr std::size_t kValueBytes = 64;

std::string KeyName(bool hot, int index) {
  return (hot ? "hot-" : "cold-") + std::to_string(index);
}

std::string ValueFor(int i) {
  std::string value = "v" + std::to_string(i) + "-";
  value.resize(kValueBytes, 'x');
  return value;
}

struct CellResult {
  double rounds_per_op = 0;
  double bytes_per_op = 0;
  std::uint64_t fast_path_writes = 0;
  std::uint64_t validated_reads = 0;
  std::uint64_t fallbacks = 0;
  std::vector<std::pair<UserKey, Value>> final_scan;
};

/// One (cached?, updates?, hit%) cell on a fresh deployment. Every cell
/// sees the same deterministic key/value sequence, so the cached and
/// baseline deployments must converge to identical directories.
CellResult RunCell(bool cached, bool updates, int hit_pct, int ops) {
  MetricsRegistry registry;
  const auto config = rep::QuorumConfig::Uniform(5, 3, 3);
  net::InProcTransport transport(nullptr);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(std::make_unique<rep::DirRepNode>(replica.node));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  // Seed every key through a separate client so the measured suite's cache
  // knows nothing it didn't learn itself.
  {
    rep::SuiteOptions options;
    options.config = config;
    rep::DirectorySuite seeder(transport, 99, std::move(options));
    for (int k = 0; k < kHotKeys; ++k) {
      if (!seeder.Insert(KeyName(true, k), ValueFor(0)).ok()) std::exit(1);
    }
    for (int i = 0; i < ops; ++i) {
      if (!seeder.Insert(KeyName(false, i), ValueFor(0)).ok()) std::exit(1);
    }
  }

  rep::SuiteOptions options;
  options.config = config;
  options.policy_seed = 7;
  options.metrics = &registry;
  options.enable_version_cache = cached;
  rep::DirectorySuite suite(transport, 100, std::move(options));

  // Prime the hot set (both runs, so the workloads stay identical).
  for (int k = 0; k < kHotKeys; ++k) {
    if (!suite.Lookup(KeyName(true, k)).ok()) std::exit(1);
  }

  auto& waves = registry.distribution("rpc.wave_width");
  auto& sent = registry.counter("rpc.bytes_sent");
  auto& received = registry.counter("rpc.bytes_received");
  const std::uint64_t waves0 = waves.count();
  const std::uint64_t bytes0 = sent.value() + received.value();

  for (int i = 0; i < ops; ++i) {
    // hit_pct in {0, 50, 90}: hits spread evenly through each decade.
    const bool hit = (i % 10) < hit_pct / 10;
    const std::string key =
        hit ? KeyName(true, i % kHotKeys) : KeyName(false, i);
    const Status st = updates ? suite.Update(key, ValueFor(i + 1))
                              : suite.Lookup(key).status();
    if (!st.ok()) {
      std::fprintf(stderr, "op %d failed: %s\n", i, st.ToString().c_str());
      std::exit(1);
    }
  }

  CellResult cell;
  cell.rounds_per_op =
      static_cast<double>(waves.count() - waves0) / static_cast<double>(ops);
  cell.bytes_per_op =
      static_cast<double>(sent.value() + received.value() - bytes0) /
      static_cast<double>(ops);
  cell.fast_path_writes = suite.stats().counters().fast_path_writes;
  cell.validated_reads = suite.stats().counters().validated_reads;
  cell.fallbacks = suite.stats().counters().cache_fallbacks;

  auto next = suite.FirstKey();
  while (next.ok() && next->found) {
    cell.final_scan.emplace_back(next->key, next->value);
    next = suite.NextKey(next->key);
  }
  if (!next.ok()) std::exit(1);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  int ops = 200;
  if (argc > 1) ops = std::atoi(argv[1]);

  std::printf(
      "Version cache: rounds and bytes per op, 5-3-3 suite over the\n"
      "deterministic in-process transport, %d ops per cell, %d-key hot "
      "set.\n\n",
      ops, kHotKeys);
  std::printf("%8s %6s %14s %14s %9s %14s %14s %9s\n", "op", "hit%",
              "base rnd/op", "cache rnd/op", "speedup", "base B/op",
              "cache B/op", "byte x");

  struct Cell {
    const char* op;
    bool updates;
    int hit_pct;
    CellResult base, cache;
  };
  std::vector<Cell> cells;
  for (const bool updates : {false, true}) {
    for (const int hit : {0, 50, 90}) {
      cells.push_back({updates ? "update" : "lookup", updates, hit, {}, {}});
    }
  }

  bool scans_match = true;
  for (Cell& cell : cells) {
    cell.base = RunCell(/*cached=*/false, cell.updates, cell.hit_pct, ops);
    cell.cache = RunCell(/*cached=*/true, cell.updates, cell.hit_pct, ops);
    if (cell.base.final_scan != cell.cache.final_scan) {
      scans_match = false;
      std::fprintf(stderr,
                   "FAIL: %s hit%d%%: cached and baseline directories "
                   "diverged (%zu vs %zu entries)\n",
                   cell.op, cell.hit_pct, cell.cache.final_scan.size(),
                   cell.base.final_scan.size());
    }
    std::printf("%8s %6d %14.2f %14.2f %8.2fx %14.0f %14.0f %8.2fx\n",
                cell.op, cell.hit_pct, cell.base.rounds_per_op,
                cell.cache.rounds_per_op,
                cell.base.rounds_per_op / cell.cache.rounds_per_op,
                cell.base.bytes_per_op, cell.cache.bytes_per_op,
                cell.base.bytes_per_op / cell.cache.bytes_per_op);
  }

  if (std::FILE* json = std::fopen("BENCH_version_cache.json", "w")) {
    std::fprintf(json,
                 "{\n  \"config\": \"5-3-3\",\n  \"ops_per_cell\": %d,\n"
                 "  \"hot_keys\": %d,\n  \"value_bytes\": %zu,\n"
                 "  \"cells\": [\n",
                 ops, kHotKeys, kValueBytes);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      std::fprintf(
          json,
          "    {\"op\": \"%s\", \"hit_pct\": %d,\n"
          "     \"baseline_rounds_per_op\": %.3f, "
          "\"cached_rounds_per_op\": %.3f, \"round_ratio\": %.3f,\n"
          "     \"baseline_bytes_per_op\": %.1f, "
          "\"cached_bytes_per_op\": %.1f, \"byte_ratio\": %.3f,\n"
          "     \"fast_path_writes\": %llu, \"validated_reads\": %llu, "
          "\"fallbacks\": %llu}%s\n",
          cell.op, cell.hit_pct, cell.base.rounds_per_op,
          cell.cache.rounds_per_op,
          cell.base.rounds_per_op / cell.cache.rounds_per_op,
          cell.base.bytes_per_op, cell.cache.bytes_per_op,
          cell.base.bytes_per_op / cell.cache.bytes_per_op,
          static_cast<unsigned long long>(cell.cache.fast_path_writes),
          static_cast<unsigned long long>(cell.cache.validated_reads),
          static_cast<unsigned long long>(cell.cache.fallbacks),
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"final_scan_identical\": %s\n}\n",
                 scans_match ? "true" : "false");
    std::fclose(json);
    std::printf("\nWrote BENCH_version_cache.json\n");
  }

  std::printf(
      "\nShape: at high hit rates an update collapses from 6 waves\n"
      "(read ping, lookup, write ping, write, prepare, commit) to 3\n"
      "(guarded write, prepare, commit), and a cached lookup from 3 to 2\n"
      "with reply values elided by \"unchanged\" confirmations.\n");

  return scans_match ? 0 : 1;
}
