// Reproduces Figure 14: "average results of simulations using directory
// sizes of approximately one hundred entries with varying numbers of
// directory representatives and varying sizes of read and write quorums"
// (10 000 operations per configuration, uniform random quorums and keys).
//
// For every x-y-z configuration with 2..5 one-vote representatives and
// R + W = V + 1 (minimal legal quorums, the interesting diagonal) plus a
// few over-sized-W variants, prints the three delete-overhead statistics.
#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace {

using namespace repdir;

struct SweepResult {
  std::string config;
  RunningStat entries;
  RunningStat deletions;
  RunningStat insertions;
};

SweepResult RunConfig(std::uint32_t reps, Votes r, Votes w,
                      std::uint64_t operations, std::uint64_t seed) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;

  const auto config = rep::QuorumConfig::Uniform(reps, r, w);
  net::InProcTransport transport;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options suite_options;
  suite_options.config = config;
  suite_options.policy_seed = seed ^ 0x5bd1e995;
  rep::DirectorySuite suite(transport, 100, std::move(suite_options));
  wl::SuiteClient client(suite);

  wl::WorkloadOptions options;
  options.target_size = 100;
  options.operations = operations;
  options.seed = seed;
  wl::SteadyStateWorkload workload(client, options);
  if (!workload.Fill().ok() || !(suite.stats().Reset(), workload.Run().ok())) {
    std::fprintf(stderr, "workload failed for %s\n",
                 config.ToString().c_str());
    std::exit(1);
  }

  SweepResult out;
  out.config = config.ToString();
  out.entries = suite.stats().entries_in_ranges_coalesced();
  out.deletions = suite.stats().deletions_while_coalescing();
  out.insertions = suite.stats().insertions_while_coalescing();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t operations = 10'000;
  if (argc > 1) operations = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "Figure 14: delete-overhead statistics, ~100-entry directories, "
      "%llu ops per configuration\n",
      static_cast<unsigned long long>(operations));
  std::printf(
      "%-8s | %-28s | %-28s | %-28s\n", "config",
      "entries in ranges coalesced", "deletions while coalescing",
      "insertions while coalescing");
  std::printf("%.8s-+-%.28s-+-%.28s-+-%.28s\n",
              "--------------------------------",
              "--------------------------------",
              "--------------------------------",
              "--------------------------------");

  // All configurations the paper's notation covers for 2..5 replicas with
  // minimal quorums (R + W = V + 1), plus write-heavier variants.
  std::vector<std::array<std::uint32_t, 3>> configs;
  for (std::uint32_t v = 2; v <= 5; ++v) {
    for (std::uint32_t w = 1; w <= v; ++w) {
      const std::uint32_t r = v + 1 - w;
      configs.push_back({v, r, w});
    }
  }
  configs.push_back({4, 2, 4});  // R + W > V + 1: extra overlap
  configs.push_back({5, 3, 4});

  for (const auto& [v, r, w] : configs) {
    const SweepResult res = RunConfig(v, r, w, operations, /*seed=*/v * 100 + w);
    std::printf("%-8s | %s | %s | %s\n", res.config.c_str(),
                res.entries.ToString().c_str(),
                res.deletions.ToString().c_str(),
                res.insertions.ToString().c_str());
  }

  std::printf(
      "\nReference (paper, 3-2-2 at 100 entries): entries avg=1.33 "
      "deletions avg=0.88 insertions avg=0.44\n"
      "Shape checks: W=V rows (unanimous writes) show ~0 ghosts; smaller\n"
      "W/V raises ghost counts; insertions grow with quorum churn.\n");
  return 0;
}
