// Message-cost accounting per directory operation (the Gifford-style cost
// analysis behind the paper's quorum-tuning discussion).
//
// For each configuration, runs a fixed op mix and reports the average
// number of RPC messages per Lookup / Insert / Update / Delete, split into
// probe (ping), data-read, data-write, and 2PC-control messages.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "net/threaded_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "wl/key_gen.h"

namespace {

using namespace repdir;

struct OpCost {
  double lookup;
  double insert;
  double update;
  double del;
};

OpCost Measure(const rep::QuorumConfig& config, std::uint32_t batch) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;

  net::InProcTransport transport;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options options;
  options.config = config;
  options.policy_seed = 7;
  options.neighbor_batch = batch;
  rep::DirectorySuite suite(transport, 100, std::move(options));

  // Seed 200 entries.
  for (int i = 0; i < 200; ++i) {
    if (!suite.Insert(wl::NumericKey(i * 3), "v").ok()) std::exit(1);
  }

  Rng rng(9);
  auto measure_phase = [&](auto&& op, int n) {
    const std::uint64_t before = transport.TotalAttempts();
    for (int i = 0; i < n; ++i) op(i);
    return static_cast<double>(transport.TotalAttempts() - before) / n;
  };

  OpCost cost;
  cost.lookup = measure_phase(
      [&](int) {
        if (!suite.Lookup(wl::NumericKey(rng.Below(200) * 3)).ok())
          std::exit(1);
      },
      300);
  cost.update = measure_phase(
      [&](int) {
        if (!suite.Update(wl::NumericKey(rng.Below(200) * 3), "w").ok())
          std::exit(1);
      },
      300);
  cost.insert = measure_phase(
      [&](int i) {
        if (!suite.Insert(wl::NumericKey(100000 + i), "v").ok()) std::exit(1);
      },
      300);
  cost.del = measure_phase(
      [&](int i) {
        if (!suite.Delete(wl::NumericKey(100000 + i)).ok()) std::exit(1);
      },
      300);
  return cost;
}

/// Total RPC attempts for one fixed workload over ThreadedTransport, with
/// the suite's parallel fan-out or forced sequential via SequentialAdapter.
/// The fan-out must not change WHAT is sent, only WHEN - so the two totals
/// must be identical.
std::uint64_t MeasureAttempts(bool parallel) {
  rep::DirRepNodeOptions node_options;
  const auto config = rep::QuorumConfig::Uniform(5, 3, 3);
  net::ThreadedTransport threaded;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    threaded.RegisterNode(replica.node, nodes.back()->server());
  }
  net::SequentialAdapter sequential(threaded);

  rep::DirectorySuite::Options options;
  options.config = config;
  options.policy_seed = 7;
  rep::DirectorySuite suite(
      parallel ? static_cast<net::Transport&>(threaded) : sequential, 100,
      std::move(options));
  for (int i = 0; i < 60; ++i) {
    if (!suite.Insert(wl::NumericKey(i * 3), "v").ok()) std::exit(1);
  }
  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    if (!suite.Lookup(wl::NumericKey(rng.Below(60) * 3)).ok()) std::exit(1);
    if (!suite.Update(wl::NumericKey(rng.Below(60) * 3), "w").ok())
      std::exit(1);
  }
  for (int i = 0; i < 60; i += 2) {
    if (!suite.Delete(wl::NumericKey(i * 3)).ok()) std::exit(1);
  }
  return threaded.TotalAttempts();
}

}  // namespace

int main() {
  std::printf(
      "Messages per operation (RPC attempts incl. quorum probes and 2PC),\n"
      "~200-entry directory, random quorums:\n\n");
  std::printf("%-8s %6s | %8s %8s %8s %8s\n", "config", "batch", "lookup",
              "insert", "update", "delete");

  struct Case {
    std::uint32_t v, r, w, batch;
  };
  const Case cases[] = {
      {3, 2, 2, 1}, {3, 2, 2, 3}, {3, 1, 3, 1}, {3, 3, 1, 1},
      {5, 3, 3, 1}, {5, 3, 3, 3}, {5, 1, 5, 1},
  };
  for (const Case& c : cases) {
    const auto config = rep::QuorumConfig::Uniform(c.v, c.r, c.w);
    const OpCost cost = Measure(config, c.batch);
    std::printf("%-8s %6u | %8.1f %8.1f %8.1f %8.1f\n",
                config.ToString().c_str(), c.batch, cost.lookup, cost.insert,
                cost.update, cost.del);
  }

  const std::uint64_t seq_attempts = MeasureAttempts(/*parallel=*/false);
  const std::uint64_t par_attempts = MeasureAttempts(/*parallel=*/true);
  std::printf(
      "\nMessage parity, 5-3-3 over ThreadedTransport, fixed workload:\n"
      "  sequential walk: %llu RPCs    parallel fan-out: %llu RPCs  (%s)\n",
      static_cast<unsigned long long>(seq_attempts),
      static_cast<unsigned long long>(par_attempts),
      seq_attempts == par_attempts ? "identical" : "MISMATCH");

  std::printf(
      "\nShape: lookup ~ R data + R probes + R control (read-only commits\n"
      "skip 2PC phase 1); insert/update add\n"
      "W writes + W probes; delete adds the real-neighbor searches and the\n"
      "coalesce round - cheaper with neighbor batching. Read-one configs\n"
      "(R=1) make lookups cheap and deletes expensive; write-one (W=1) the\n"
      "reverse - the tunable cost trade the paper inherits from Gifford.\n");
  return 0;
}
