// Analytic model vs. simulation (paper §5's "analytic treatment").
//
// For each configuration and update:delete ratio, runs the §4 simulation
// protocol and prints the measured delete-overhead statistics next to the
// closed-form predictions of rep/analytic_model.h.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "rep/analytic_model.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace {

using namespace repdir;

struct Measured {
  double entries;
  double deletions;
  double insertions;
};

Measured Simulate(const rep::QuorumConfig& config, double update_fraction,
                  std::uint64_t operations, std::uint64_t seed) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;

  net::InProcTransport transport;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options suite_options;
  suite_options.config = config;
  suite_options.policy_seed = seed * 31 + 7;
  rep::DirectorySuite suite(transport, 100, std::move(suite_options));
  wl::SuiteClient client(suite);

  // Churn fraction is fixed at 1 - update - lookup; keep lookups at 10%
  // and let updates vary, so updates_per_delete = update / (churn / 2).
  wl::WorkloadOptions options;
  options.target_size = 100;
  options.operations = operations;
  options.update_fraction = update_fraction;
  options.lookup_fraction = 0.10;
  options.seed = seed;
  wl::SteadyStateWorkload workload(client, options);
  if (!workload.Fill().ok()) std::exit(1);
  suite.stats().Reset();
  if (!workload.Run().ok()) std::exit(1);

  return Measured{suite.stats().entries_in_ranges_coalesced().mean(),
                  suite.stats().deletions_while_coalescing().mean(),
                  suite.stats().insertions_while_coalescing().mean()};
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t operations = 30'000;
  if (argc > 1) operations = std::strtoull(argv[1], nullptr, 10);

  std::printf(
      "Analytic model vs. simulation (~100 entries, %llu ops per row)\n"
      "columns: entries-in-range/rep, ghost deletions/del, "
      "insertions/del\n\n",
      static_cast<unsigned long long>(operations));
  std::printf("%-8s %5s | %21s | %21s | %27s\n", "config", "u",
              "entries  sim / model", "deletions sim / model",
              "insertions sim / model(bound)");

  struct Case {
    std::uint32_t v, r, w;
    double update_fraction;  // of all ops; churn = 0.9 - update_fraction
  };
  const Case cases[] = {
      {3, 2, 2, 0.0},  {3, 2, 2, 0.30}, {3, 2, 2, 0.60},
      {4, 2, 3, 0.30}, {4, 3, 2, 0.30}, {5, 3, 3, 0.30},
      {5, 2, 4, 0.30}, {2, 1, 2, 0.30},
  };

  for (const Case& c : cases) {
    const auto config = rep::QuorumConfig::Uniform(c.v, c.r, c.w);
    // churn splits evenly into inserts and deletes at steady state.
    const double delete_fraction = (0.9 - c.update_fraction) / 2.0;
    const double u = c.update_fraction / delete_fraction;

    const Measured sim = Simulate(config, c.update_fraction, operations,
                                  /*seed=*/c.v * 1000 + c.w * 10 +
                                      static_cast<std::uint64_t>(
                                          c.update_fraction * 100));
    const auto model = rep::PredictDeleteOverheads(
        config, rep::AnalyticInputs{u});
    if (!model.ok()) std::exit(1);

    std::printf("%-8s %5.2f |      %5.2f / %-5.2f    |      %5.2f / %-5.2f    |        %5.2f / %-5.2f\n",
                config.ToString().c_str(), u, sim.entries,
                model->entries_in_ranges_coalesced, sim.deletions,
                model->deletions_while_coalescing, sim.insertions,
                model->insertions_while_coalescing);
  }

  std::printf(
      "\nThe first two statistics track the closed form within ~10%%; the\n"
      "insertion model is a first-order upper bound (materializations raise\n"
      "neighbor presence, which the model ignores) - consistent with the\n"
      "paper's claim that simple analytic models reproduce the simulation.\n");
  return 0;
}
