// Durability drill: write-ahead logging, crash, recovery, checkpointing,
// and resolving an in-doubt two-phase-commit participant.
//
//   $ ./chaos_drill
#include <cstdio>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "net/rpc_client.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "sim/network_model.h"

using namespace repdir;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  const rep::QuorumConfig config = rep::QuorumConfig::Uniform(3, 2, 2);

  rep::DirRepNodeOptions node_options;
  node_options.enable_wal = true;  // durability on

  sim::NetworkModel network;
  net::InProcTransport transport(nullptr, &network);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }
  auto& node1 = *nodes[0];

  rep::DirectorySuite::Options options;
  options.config = config;
  rep::DirectorySuite dir(transport, 100, std::move(options));

  std::printf("== Committed work reaches the log\n");
  for (int i = 0; i < 10; ++i) {
    Check(dir.Insert("user-" + std::to_string(i), "data"), "insert");
  }
  Check(dir.Delete("user-3"), "delete");
  Check(dir.Update("user-4", "data-v2"), "update");
  std::printf("   node 1 log: %zu durable bytes, %zu entries in memory\n\n",
              node1.log_device()->durable_size(),
              node1.storage().UserEntryCount());

  std::printf("== Node 1 crashes (memory wiped, unflushed log lost)\n");
  network.SetNodeUp(1, false);
  node1.Crash();
  std::printf("   node 1 entries after crash: %zu\n",
              node1.storage().UserEntryCount());

  std::printf("   ...suite keeps serving on nodes 2+3: lookup(user-4) = %s\n\n",
              dir.Lookup("user-4")->value.c_str());

  std::printf("== Node 1 recovers from its write-ahead log\n");
  auto outcome = node1.Recover();
  Check(outcome.status(), "recovery");
  std::printf("   replayed %zu committed ops, %zu in doubt, entries now %zu\n",
              outcome->ops_replayed, outcome->in_doubt.size(),
              node1.storage().UserEntryCount());
  network.SetNodeUp(1, true);
  std::printf("   lookup(user-4) through recovered quorums = %s\n\n",
              dir.Lookup("user-4")->value.c_str());

  std::printf("== Checkpoint compacts the log\n");
  const std::size_t before = node1.log_device()->durable_size();
  Check(node1.participant().WriteCheckpoint(), "checkpoint");
  std::printf("   log size: %zu -> %zu bytes\n\n", before,
              node1.log_device()->durable_size());

  std::printf("== An in-doubt participant (crash between PREPARE and COMMIT)\n");
  // Run phase 1 of a transaction manually at node 1, then crash it.
  net::RpcClient client(transport, 101);
  const TxnId txn = txn::MakeTxnId(101, 1);
  Check(client
            .Call<net::Empty>(1, rep::kInsert,
                              rep::InsertRequest{storage::RepKey::User("zz"),
                                                 1, "prepared-not-committed"},
                              txn)
            .status(),
        "insert at node 1");
  Check(client.Call<net::Empty>(1, rep::kPrepare, net::Empty{}, txn).status(),
        "prepare at node 1");
  node1.Crash();

  outcome = node1.Recover();
  Check(outcome.status(), "recovery");
  std::printf("   recovery reports %zu in-doubt txn(s)\n",
              outcome->in_doubt.size());
  std::printf("   entry zz visible before resolution? %s\n",
              node1.storage().Get(storage::RepKey::User("zz")).has_value()
                  ? "yes (BUG)"
                  : "no (presumed abort)");

  std::printf("   coordinator says COMMIT -> resolving...\n");
  Check(node1.ResolveInDoubt(txn, /*commit=*/true), "resolve");
  std::printf("   entry zz after resolution: %s\n",
              node1.storage().Get(storage::RepKey::User("zz")).has_value()
                  ? "present"
                  : "missing (BUG)");
  return 0;
}
