// A replicated name service riding out failures.
//
// The motivating workload for replicated directories: a host/user name
// database that must stay available while storage nodes crash and rejoin.
// Five representatives, read quorum 3, write quorum 3: any two nodes may be
// down and the service still answers reads AND writes.
//
//   $ ./name_service
#include <cstdio>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "sim/network_model.h"
#include "wl/key_gen.h"

using namespace repdir;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  const rep::QuorumConfig config = rep::QuorumConfig::Uniform(5, 3, 3);

  sim::NetworkModel network;
  net::InProcTransport transport(nullptr, &network);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(std::make_unique<rep::DirRepNode>(replica.node));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options options;
  options.config = config;
  rep::DirectorySuite names(transport, 100, std::move(options));

  std::printf("== Populating the name service (5-3-3 suite)\n");
  const char* entries[][2] = {
      {"mail", "10.0.0.25"},   {"web", "10.0.0.80"},  {"db", "10.0.0.54"},
      {"cache", "10.0.0.11"},  {"auth", "10.0.0.443"}, {"build", "10.0.0.77"},
  };
  for (const auto& [name, addr] : entries) {
    Check(names.Insert(name, addr), "insert");
  }
  std::printf("   %zu names registered\n\n", std::size(entries));

  std::printf("== Two nodes crash (nodes 4 and 5)\n");
  network.SetNodeUp(4, false);
  network.SetNodeUp(5, false);

  std::printf("   lookup(web)    -> %s\n", names.Lookup("web")->value.c_str());
  Check(names.Update("db", "10.0.1.54"), "update with 2 nodes down");
  std::printf("   update(db)     -> %s\n", names.Lookup("db")->value.c_str());
  Check(names.Delete("build"), "delete with 2 nodes down");
  std::printf("   delete(build)  -> ok\n");
  Check(names.Insert("metrics", "10.0.0.90"), "insert with 2 nodes down");
  std::printf("   insert(metrics)-> ok\n\n");

  std::printf("== A third node fails: quorum lost\n");
  network.SetNodeUp(3, false);
  const Status st = names.Update("web", "10.0.2.80");
  std::printf("   update(web)    -> %s (expected: UNAVAILABLE)\n\n",
              st.ToString().c_str());

  std::printf("== Nodes return; stale copies are harmless\n");
  network.SetNodeUp(3, true);
  network.SetNodeUp(4, true);
  network.SetNodeUp(5, true);
  // Nodes 4/5 still hold the ghost of "build" and the old "db" address, but
  // version numbers ensure every read quorum answers correctly.
  std::printf("   lookup(db)     -> %s (current address)\n",
              names.Lookup("db")->value.c_str());
  std::printf("   lookup(build)  -> %s\n",
              names.Lookup("build")->found ? "FOUND (BUG!)" : "gone, as deleted");
  std::printf("   lookup(metrics)-> %s\n\n",
              names.Lookup("metrics")->value.c_str());

  std::printf("== Delete overhead bookkeeping (this session)\n");
  const auto& stats = names.stats();
  std::printf("   entries in ranges coalesced: %s\n",
              stats.entries_in_ranges_coalesced().ToString().c_str());
  std::printf("   ghost deletions per delete:  %s\n",
              stats.deletions_while_coalescing().ToString().c_str());
  std::printf("   materializing insertions:    %s\n",
              stats.insertions_while_coalescing().ToString().c_str());
  return 0;
}
