// Atomic rename: the classic directory operation that needs §3.1's
// "arbitrarily complex atomic transactions".
//
// rename(old, new) = { read old; insert new; delete old } - all or
// nothing: no observer may ever see both names or neither name.
//
//   $ ./atomic_rename
#include <cstdio>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

using namespace repdir;

namespace {

Status Rename(rep::DirectorySuite& dir, const UserKey& from,
              const UserKey& to) {
  rep::SuiteTxn txn = dir.Begin();
  const auto old_entry = txn.Lookup(from);
  REPDIR_RETURN_IF_ERROR(old_entry.status());
  if (!old_entry->found) {
    return Status::NotFound("rename source missing: " + from);
  }
  REPDIR_RETURN_IF_ERROR(txn.Insert(to, old_entry->value));
  REPDIR_RETURN_IF_ERROR(txn.Delete(from));
  return txn.Commit();
}

}  // namespace

int main() {
  const rep::QuorumConfig config = rep::QuorumConfig::Uniform(3, 2, 2);
  net::InProcTransport transport;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(std::make_unique<rep::DirRepNode>(replica.node));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }
  rep::DirectorySuite::Options options;
  options.config = config;
  rep::DirectorySuite dir(transport, 100, std::move(options));

  if (!dir.Insert("draft.txt", "the manuscript").ok()) return 1;

  std::printf("before: draft.txt=%s  final.txt=%s\n",
              dir.Lookup("draft.txt")->found ? "present" : "absent",
              dir.Lookup("final.txt")->found ? "present" : "absent");

  if (const Status st = Rename(dir, "draft.txt", "final.txt"); !st.ok()) {
    std::fprintf(stderr, "rename failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("after:  draft.txt=%s  final.txt=%s (value: %s)\n",
              dir.Lookup("draft.txt")->found ? "present" : "absent",
              dir.Lookup("final.txt")->found ? "present" : "absent",
              dir.Lookup("final.txt")->value.c_str());

  // Renaming to an existing name fails atomically: the source survives.
  if (!dir.Insert("backup.txt", "old backup").ok()) return 1;
  const Status clash = Rename(dir, "final.txt", "backup.txt");
  std::printf("rename onto existing name -> %s\n", clash.ToString().c_str());
  std::printf("final.txt still %s; backup.txt still '%s'\n",
              dir.Lookup("final.txt")->found ? "present" : "absent (BUG)",
              dir.Lookup("backup.txt")->value.c_str());

  // A chain of renames, then an ordered scan of the directory.
  (void)Rename(dir, "final.txt", "v1.txt");
  (void)Rename(dir, "v1.txt", "v2.txt");
  std::printf("\ndirectory scan:\n");
  auto next = dir.FirstKey();
  while (next.ok() && next->found) {
    std::printf("  %-12s -> %s\n", next->key.c_str(), next->value.c_str());
    next = dir.NextKey(next->key);
  }
  return 0;
}
