// Quickstart: assemble a 3-2-2 replicated directory suite in-process and
// run the four directory operations.
//
//   $ ./quickstart
//
// Pieces, bottom-up:
//   DirRepNode        - one directory representative (storage + range locks
//                       + transaction participant + RPC service),
//   InProcTransport   - delivers RPCs between the client and the nodes,
//   DirectorySuite    - the replicated-directory client: every operation
//                       runs as a distributed transaction over quorums.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "storage/dir_rep_core.h"

using namespace repdir;

int main() {
  // Three representatives with one vote each; read quorum 2, write quorum 2
  // ("3-2-2" in the paper's notation).
  const rep::QuorumConfig config = rep::QuorumConfig::Uniform(3, 2, 2);

  net::InProcTransport transport;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(std::make_unique<rep::DirRepNode>(replica.node));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options options;
  options.config = config;
  rep::DirectorySuite directory(transport, /*client_node=*/100,
                                std::move(options));

  // Insert / Lookup / Update / Delete - the paper's §1 interface.
  if (!directory.Insert("alice", "amethyst.cs.cmu.edu").ok()) return 1;
  if (!directory.Insert("bob", "boron.cs.cmu.edu").ok()) return 1;

  auto hit = directory.Lookup("alice");
  std::printf("lookup(alice)  -> %s\n",
              hit.ok() && hit->found ? hit->value.c_str() : "(not found)");

  if (!directory.Update("alice", "agate.cs.cmu.edu").ok()) return 1;
  std::printf("update(alice)  -> %s\n", directory.Lookup("alice")->value.c_str());

  auto miss = directory.Lookup("carol");
  std::printf("lookup(carol)  -> %s\n",
              miss.ok() && miss->found ? miss->value.c_str() : "(not found)");

  if (!directory.Delete("bob").ok()) return 1;
  std::printf("delete(bob)    -> %s\n",
              directory.Lookup("bob")->found ? "still there?!" : "gone");

  // Duplicate insert and missing-key update fail the way a single-site
  // directory would.
  std::printf("insert(alice) again -> %s\n",
              directory.Insert("alice", "x").ToString().c_str());
  std::printf("update(bob)         -> %s\n",
              directory.Update("bob", "x").ToString().c_str());

  // Peek inside each representative: entries carry versions, gaps carry
  // versions too (that is the paper's contribution).
  std::printf("\nRepresentative contents (entry versions and |gap versions|):\n");
  for (const auto& node : nodes) {
    std::printf("  node %u: %s\n", node->id(),
                storage::DumpRep(node->storage()).c_str());
  }
  return 0;
}
