// A replicated directory served over real TCP sockets.
//
// Starts three representative servers on loopback ports, drives the suite
// through the TCP transport, then hard-stops one server mid-workload to
// show quorum operation continuing over the survivors.
//
//   $ ./tcp_cluster
#include <cstdio>
#include <memory>
#include <vector>

#include "net/tcp_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

using namespace repdir;

int main() {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = true;

  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  std::vector<std::unique_ptr<net::TcpServer>> servers;
  net::TcpTransport transport;

  std::printf("== Starting representative servers on 127.0.0.1\n");
  for (NodeId id : {1u, 2u, 3u}) {
    nodes.push_back(std::make_unique<rep::DirRepNode>(id, node_options));
    servers.push_back(
        std::make_unique<net::TcpServer>(nodes.back()->server()));
    const auto port = servers.back()->Start();
    if (!port.ok()) {
      std::fprintf(stderr, "start failed: %s\n",
                   port.status().ToString().c_str());
      return 1;
    }
    transport.AddRoute(id, "127.0.0.1", *port);
    std::printf("   node %u listening on port %u\n", id, *port);
  }

  rep::DirectorySuite::Options options;
  options.config = rep::QuorumConfig::Uniform(3, 2, 2);
  rep::DirectorySuite dir(transport, 100, std::move(options));

  std::printf("\n== Writing 100 entries over TCP\n");
  for (int i = 0; i < 100; ++i) {
    if (!dir.Insert("user-" + std::to_string(i), "profile-" +
                    std::to_string(i)).ok()) {
      return 1;
    }
  }
  std::printf("   lookup(user-42) -> %s\n",
              dir.Lookup("user-42")->value.c_str());
  std::printf("   total RPC attempts so far: %llu\n",
              static_cast<unsigned long long>(transport.TotalAttempts()));

  std::printf("\n== Hard-stopping node 3's server\n");
  servers[2]->Stop();
  if (!dir.Update("user-42", "profile-42-v2").ok()) return 1;
  if (!dir.Delete("user-17").ok()) return 1;
  std::printf("   update and delete succeeded on the surviving quorum\n");
  std::printf("   lookup(user-42) -> %s\n",
              dir.Lookup("user-42")->value.c_str());
  std::printf("   lookup(user-17) -> %s\n",
              dir.Lookup("user-17")->found ? "present (BUG)" : "gone");

  std::printf("\n== Shutting down\n");
  for (auto& s : servers) s->Stop();
  return 0;
}
