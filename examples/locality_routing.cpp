// Two-datacenter deployment with locality-aware quorums (paper §5, Fig 16).
//
// A 4-2-3 suite split across two sites. Each site's clients read entirely
// from their local pair of representatives; each modification writes the
// two local representatives plus ONE remote one, alternating between the
// remote pair so the cross-site write load is balanced.
//
//   $ ./locality_routing
#include <cstdio>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "sim/network_model.h"

using namespace repdir;

int main() {
  // Representatives 1,2 live in datacenter EAST; 3,4 in WEST. Cross-site
  // links are 40x slower.
  constexpr NodeId kEast1 = 1, kEast2 = 2, kWest1 = 3, kWest2 = 4;
  const rep::QuorumConfig config(
      {{kEast1, 1}, {kEast2, 1}, {kWest1, 1}, {kWest2, 1}}, /*read=*/2,
      /*write=*/3);

  sim::NetworkModel network;
  network.SetDefaultLink(sim::LinkSpec{2000, 0, 0.0});  // cross-site: 2ms
  // Same-site links: 50us. Client 100 sits in EAST, client 200 in WEST.
  for (NodeId a : {100u, kEast1, kEast2}) {
    for (NodeId b : {100u, kEast1, kEast2}) {
      network.SetLink(a, b, sim::LinkSpec{50, 0, 0.0});
    }
  }
  for (NodeId a : {200u, kWest1, kWest2}) {
    for (NodeId b : {200u, kWest1, kWest2}) {
      network.SetLink(a, b, sim::LinkSpec{50, 0, 0.0});
    }
  }

  VirtualClock clock;
  net::InProcTransport transport(&clock, &network);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(std::make_unique<rep::DirRepNode>(replica.node));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  auto make_suite = [&](NodeId client, std::vector<NodeId> local,
                        std::vector<NodeId> remote) {
    rep::DirectorySuite::Options options;
    options.config = config;
    options.policy = std::make_unique<rep::LocalityQuorumPolicy>(
        std::move(local), std::move(remote));
    return std::make_unique<rep::DirectorySuite>(transport, client,
                                                 std::move(options));
  };
  auto east = make_suite(100, {kEast1, kEast2}, {kWest1, kWest2});
  auto west = make_suite(200, {kWest1, kWest2}, {kEast1, kEast2});

  std::printf("== Mixed workload from both sites\n");
  for (int i = 0; i < 100; ++i) {
    if (!east->Insert("east-user-" + std::to_string(i), "e").ok()) return 1;
    if (!west->Insert("west-user-" + std::to_string(i), "w").ok()) return 1;
  }

  // Reads are all-local: measure virtual time per lookup.
  const TimeMicros before_reads = clock.Now();
  for (int i = 0; i < 100; ++i) {
    if (!east->Lookup("east-user-" + std::to_string(i))->found) return 1;
  }
  const TimeMicros read_time = clock.Now() - before_reads;

  const TimeMicros before_updates = clock.Now();
  for (int i = 0; i < 100; ++i) {
    if (!east->Update("east-user-" + std::to_string(i), "e2").ok()) return 1;
  }
  const TimeMicros update_time = clock.Now() - before_updates;

  std::printf("   east lookup avg latency: %6.2f ms (all-local quorum)\n",
              read_time / 100 / 1000.0);
  std::printf("   east update avg latency: %6.2f ms (one cross-site write)\n\n",
              update_time / 100 / 1000.0);

  std::printf("== Cross-site write balancing (east client's writes)\n");
  for (const NodeId node : {kEast1, kEast2, kWest1, kWest2}) {
    const auto it = east->write_rpcs_by_node().find(node);
    std::printf("   node %u (%s): %llu writes\n", node,
                node <= 2 ? "east" : "west",
                static_cast<unsigned long long>(
                    it == east->write_rpcs_by_node().end() ? 0 : it->second));
  }
  std::printf(
      "\nEvery read stayed in-region; each modification paid exactly one\n"
      "cross-site representative, alternating west-1/west-2 (Figure 16).\n");
  return 0;
}
