// WAL framing, log devices, torn-tail handling, checkpoints.
#include <gtest/gtest.h>

#include <cstdio>

#include "storage/wal.h"

namespace repdir::storage {
namespace {

WalRecord OpRecord(TxnId txn, const std::string& key, Version v) {
  WalRecord rec;
  rec.type = WalRecordType::kOp;
  rec.txn = txn;
  ByteWriter w;
  WalOp::Insert(RepKey::User(key), v, "val").Encode(w);
  rec.body = w.TakeString();
  return rec;
}

TEST(WalOpCodec, RoundTripInsert) {
  const WalOp op = WalOp::Insert(RepKey::User("k"), 42, "value");
  WalOp decoded;
  ASSERT_TRUE(DecodeFromString(EncodeToString(op), decoded).ok());
  EXPECT_EQ(decoded, op);
}

TEST(WalOpCodec, RoundTripCoalesce) {
  const WalOp op = WalOp::Coalesce(RepKey::Low(), RepKey::User("z"), 7);
  WalOp decoded;
  ASSERT_TRUE(DecodeFromString(EncodeToString(op), decoded).ok());
  EXPECT_EQ(decoded, op);
  EXPECT_EQ(decoded.kind, WalOp::Kind::kCoalesce);
}

TEST(Wal, AppendReadRoundTrip) {
  MemLogDevice device;
  WalWriter writer(device);
  ASSERT_TRUE(writer.Append(OpRecord(1, "a", 1)).ok());
  ASSERT_TRUE(writer.AppendDecision(WalRecordType::kPrepare, 1).ok());
  ASSERT_TRUE(writer.AppendDecision(WalRecordType::kCommit, 1).ok());

  const auto log = ReadLog(device);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 3u);
  EXPECT_EQ((*log)[0].type, WalRecordType::kOp);
  EXPECT_EQ((*log)[1].type, WalRecordType::kPrepare);
  EXPECT_EQ((*log)[2].type, WalRecordType::kCommit);
  EXPECT_EQ((*log)[2].txn, 1u);
}

TEST(Wal, UnflushedRecordsDoNotSurviveCrash) {
  MemLogDevice device;
  WalWriter writer(device);
  ASSERT_TRUE(writer.Append(OpRecord(1, "a", 1)).ok());
  ASSERT_TRUE(writer.Flush().ok());
  ASSERT_TRUE(writer.Append(OpRecord(1, "b", 2)).ok());  // not flushed

  device.Crash();
  const auto log = ReadLog(device);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 1u);
}

TEST(Wal, TornTailIsIgnoredAtEveryCutPoint) {
  // Build a log of 3 flushed records, then a 4th that tears at every
  // possible byte boundary; the reader must always recover exactly the
  // first 3.
  MemLogDevice reference;
  WalWriter ref_writer(reference);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ref_writer.Append(OpRecord(7, "k" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(ref_writer.Flush().ok());
  const std::size_t base_size = reference.durable_size();

  // Length of the 4th record's frame.
  MemLogDevice probe;
  WalWriter probe_writer(probe);
  ASSERT_TRUE(probe_writer.Append(OpRecord(7, "tail", 9)).ok());
  const std::size_t tail_size = probe.pending_size();

  for (std::size_t cut = 0; cut < tail_size; ++cut) {
    MemLogDevice device;
    WalWriter writer(device);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(writer.Append(OpRecord(7, "k" + std::to_string(i), i)).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());
    ASSERT_EQ(device.durable_size(), base_size);
    ASSERT_TRUE(writer.Append(OpRecord(7, "tail", 9)).ok());
    device.CrashTorn(cut);

    const auto log = ReadLog(device);
    ASSERT_TRUE(log.ok()) << "cut=" << cut;
    EXPECT_EQ(log->size(), 3u) << "cut=" << cut;
  }
}

TEST(Wal, ParseLogReportsValidPrefixLength) {
  MemLogDevice device;
  WalWriter writer(device);
  ASSERT_TRUE(writer.Append(OpRecord(1, "a", 1)).ok());
  ASSERT_TRUE(writer.AppendDecision(WalRecordType::kCommit, 1).ok());
  const auto clean = device.ReadDurable();
  ASSERT_TRUE(clean.ok());

  // A clean log is valid end to end.
  std::size_t valid = 0;
  auto log = ParseLog(*clean, &valid);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 2u);
  EXPECT_EQ(valid, clean->size());

  // A torn tail is excluded from the valid prefix: recovery truncates the
  // device to `valid` so later appends are not hidden behind the garbage.
  ASSERT_TRUE(writer.Append(OpRecord(2, "b", 2)).ok());
  device.CrashTorn(5);
  const auto torn = device.ReadDurable();
  ASSERT_TRUE(torn.ok());
  ASSERT_GT(torn->size(), clean->size());
  log = ParseLog(*torn, &valid);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 2u);
  EXPECT_EQ(valid, clean->size());
}

TEST(Wal, CorruptedPayloadByteEndsLog) {
  MemLogDevice device;
  WalWriter writer(device);
  ASSERT_TRUE(writer.Append(OpRecord(1, "a", 1)).ok());
  ASSERT_TRUE(writer.Flush().ok());

  // Flip a byte in the durable image by re-creating it through CrashTorn.
  auto contents = device.ReadDurable();
  ASSERT_TRUE(contents.ok());
  std::string bytes = *contents;
  bytes[bytes.size() / 2] ^= 0xff;
  MemLogDevice corrupted;
  ASSERT_TRUE(corrupted.Append(bytes).ok());
  ASSERT_TRUE(corrupted.Flush().ok());

  const auto log = ReadLog(corrupted);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->empty());  // checksum rejects the frame
}

TEST(Wal, CheckpointTruncatesHistory) {
  MemLogDevice device;
  WalWriter writer(device);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.Append(OpRecord(1, "k" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(writer.Flush().ok());

  const std::vector<StoredEntry> snapshot = {
      StoredEntry{RepKey::Low(), 0, "", 3},
      StoredEntry{RepKey::User("x"), 5, "vx", 1},
      StoredEntry{RepKey::High(), 0, "", 0},
  };
  ASSERT_TRUE(writer.WriteCheckpoint(snapshot).ok());

  const auto log = ReadLog(device);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 1u);
  EXPECT_EQ((*log)[0].type, WalRecordType::kCheckpoint);

  const auto decoded = DecodeSnapshot((*log)[0].body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, snapshot);
}

TEST(Wal, SnapshotCodecRejectsTrailingGarbage) {
  std::string body = EncodeSnapshot({});
  body += "junk";
  EXPECT_FALSE(DecodeSnapshot(body).ok());
}

TEST(FileLogDevice, AppendFlushReadTruncate) {
  const std::string path = ::testing::TempDir() + "/repdir_wal_test.log";
  std::remove(path.c_str());
  {
    FileLogDevice device(path);
    WalWriter writer(device);
    ASSERT_TRUE(writer.Append(OpRecord(3, "persist", 1)).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  {
    FileLogDevice device(path);
    const auto log = ReadLog(device);
    ASSERT_TRUE(log.ok());
    ASSERT_EQ(log->size(), 1u);
    EXPECT_EQ((*log)[0].txn, 3u);
    ASSERT_TRUE(device.Truncate().ok());
    const auto empty = ReadLog(device);
    ASSERT_TRUE(empty.ok());
    EXPECT_TRUE(empty->empty());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace repdir::storage
