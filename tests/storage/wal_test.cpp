// WAL framing, log devices, torn-tail handling, checkpoints.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "storage/wal.h"

namespace repdir::storage {
namespace {

WalRecord OpRecord(TxnId txn, const std::string& key, Version v) {
  WalRecord rec;
  rec.type = WalRecordType::kOp;
  rec.txn = txn;
  ByteWriter w;
  WalOp::Insert(RepKey::User(key), v, "val").Encode(w);
  rec.body = w.TakeString();
  return rec;
}

TEST(WalOpCodec, RoundTripInsert) {
  const WalOp op = WalOp::Insert(RepKey::User("k"), 42, "value");
  WalOp decoded;
  ASSERT_TRUE(DecodeFromString(EncodeToString(op), decoded).ok());
  EXPECT_EQ(decoded, op);
}

TEST(WalOpCodec, RoundTripCoalesce) {
  const WalOp op = WalOp::Coalesce(RepKey::Low(), RepKey::User("z"), 7);
  WalOp decoded;
  ASSERT_TRUE(DecodeFromString(EncodeToString(op), decoded).ok());
  EXPECT_EQ(decoded, op);
  EXPECT_EQ(decoded.kind, WalOp::Kind::kCoalesce);
}

TEST(Wal, AppendReadRoundTrip) {
  MemLogDevice device;
  WalWriter writer(device);
  ASSERT_TRUE(writer.Append(OpRecord(1, "a", 1)).ok());
  ASSERT_TRUE(writer.AppendDecision(WalRecordType::kPrepare, 1).ok());
  ASSERT_TRUE(writer.AppendDecision(WalRecordType::kCommit, 1).ok());

  const auto log = ReadLog(device);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 3u);
  EXPECT_EQ((*log)[0].type, WalRecordType::kOp);
  EXPECT_EQ((*log)[1].type, WalRecordType::kPrepare);
  EXPECT_EQ((*log)[2].type, WalRecordType::kCommit);
  EXPECT_EQ((*log)[2].txn, 1u);
}

TEST(Wal, UnflushedRecordsDoNotSurviveCrash) {
  MemLogDevice device;
  WalWriter writer(device);
  ASSERT_TRUE(writer.Append(OpRecord(1, "a", 1)).ok());
  ASSERT_TRUE(writer.Flush().ok());
  ASSERT_TRUE(writer.Append(OpRecord(1, "b", 2)).ok());  // not flushed

  device.Crash();
  const auto log = ReadLog(device);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 1u);
}

TEST(Wal, TornTailIsIgnoredAtEveryCutPoint) {
  // Build a log of 3 flushed records, then a 4th that tears at every
  // possible byte boundary; the reader must always recover exactly the
  // first 3.
  MemLogDevice reference;
  WalWriter ref_writer(reference);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ref_writer.Append(OpRecord(7, "k" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(ref_writer.Flush().ok());
  const std::size_t base_size = reference.durable_size();

  // Length of the 4th record's frame.
  MemLogDevice probe;
  WalWriter probe_writer(probe);
  ASSERT_TRUE(probe_writer.Append(OpRecord(7, "tail", 9)).ok());
  const std::size_t tail_size = probe.pending_size();

  for (std::size_t cut = 0; cut < tail_size; ++cut) {
    MemLogDevice device;
    WalWriter writer(device);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(writer.Append(OpRecord(7, "k" + std::to_string(i), i)).ok());
    }
    ASSERT_TRUE(writer.Flush().ok());
    ASSERT_EQ(device.durable_size(), base_size);
    ASSERT_TRUE(writer.Append(OpRecord(7, "tail", 9)).ok());
    device.CrashTorn(cut);

    const auto log = ReadLog(device);
    ASSERT_TRUE(log.ok()) << "cut=" << cut;
    EXPECT_EQ(log->size(), 3u) << "cut=" << cut;
  }
}

TEST(Wal, ParseLogReportsValidPrefixLength) {
  MemLogDevice device;
  WalWriter writer(device);
  ASSERT_TRUE(writer.Append(OpRecord(1, "a", 1)).ok());
  ASSERT_TRUE(writer.AppendDecision(WalRecordType::kCommit, 1).ok());
  const auto clean = device.ReadDurable();
  ASSERT_TRUE(clean.ok());

  // A clean log is valid end to end.
  std::size_t valid = 0;
  auto log = ParseLog(*clean, &valid);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 2u);
  EXPECT_EQ(valid, clean->size());

  // A torn tail is excluded from the valid prefix: recovery truncates the
  // device to `valid` so later appends are not hidden behind the garbage.
  ASSERT_TRUE(writer.Append(OpRecord(2, "b", 2)).ok());
  device.CrashTorn(5);
  const auto torn = device.ReadDurable();
  ASSERT_TRUE(torn.ok());
  ASSERT_GT(torn->size(), clean->size());
  log = ParseLog(*torn, &valid);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 2u);
  EXPECT_EQ(valid, clean->size());
}

TEST(Wal, CorruptedPayloadByteEndsLog) {
  MemLogDevice device;
  WalWriter writer(device);
  ASSERT_TRUE(writer.Append(OpRecord(1, "a", 1)).ok());
  ASSERT_TRUE(writer.Flush().ok());

  // Flip a byte in the durable image by re-creating it through CrashTorn.
  auto contents = device.ReadDurable();
  ASSERT_TRUE(contents.ok());
  std::string bytes = *contents;
  bytes[bytes.size() / 2] ^= 0xff;
  MemLogDevice corrupted;
  ASSERT_TRUE(corrupted.Append(bytes).ok());
  ASSERT_TRUE(corrupted.Flush().ok());

  const auto log = ReadLog(corrupted);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->empty());  // checksum rejects the frame
}

TEST(Wal, CheckpointTruncatesHistory) {
  MemLogDevice device;
  WalWriter writer(device);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.Append(OpRecord(1, "k" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(writer.Flush().ok());

  const std::vector<StoredEntry> snapshot = {
      StoredEntry{RepKey::Low(), 0, "", 3},
      StoredEntry{RepKey::User("x"), 5, "vx", 1},
      StoredEntry{RepKey::High(), 0, "", 0},
  };
  ASSERT_TRUE(writer.WriteCheckpoint(snapshot).ok());

  const auto log = ReadLog(device);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 1u);
  EXPECT_EQ((*log)[0].type, WalRecordType::kCheckpoint);

  const auto decoded = DecodeSnapshot((*log)[0].body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, snapshot);
}

TEST(Wal, SnapshotCodecRejectsTrailingGarbage) {
  std::string body = EncodeSnapshot({});
  body += "junk";
  EXPECT_FALSE(DecodeSnapshot(body).ok());
}

TEST(FileLogDevice, AppendFlushReadTruncate) {
  const std::string path = ::testing::TempDir() + "/repdir_wal_test.log";
  std::remove(path.c_str());
  {
    FileLogDevice device(path);
    WalWriter writer(device);
    ASSERT_TRUE(writer.Append(OpRecord(3, "persist", 1)).ok());
    ASSERT_TRUE(writer.Flush().ok());
  }
  {
    FileLogDevice device(path);
    const auto log = ReadLog(device);
    ASSERT_TRUE(log.ok());
    ASSERT_EQ(log->size(), 1u);
    EXPECT_EQ((*log)[0].txn, 3u);
    ASSERT_TRUE(device.Truncate().ok());
    const auto empty = ReadLog(device);
    ASSERT_TRUE(empty.ok());
    EXPECT_TRUE(empty->empty());
  }
  std::remove(path.c_str());
}


// --- Group commit ---

TEST(WalGroupCommit, ConcurrentCommittersShareOneFlush) {
  // N threads each append a decision record and sync it. The group-commit
  // window hook holds the leader's flush open until every thread has
  // appended, so exactly ONE device flush covers all N decisions.
  constexpr int kThreads = 8;
  MemLogDevice device;
  MetricsRegistry metrics;
  std::atomic<int> appended{0};
  GroupCommitConfig gc;
  gc.window_us = 1;  // any non-zero arms the window; the hook replaces it
  gc.window_hook = [&] {
    while (appended.load() < kThreads) std::this_thread::yield();
  };
  WalWriter writer(device, &metrics, gc);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto seq = writer.AppendDecisionRecord(
          WalRecordType::kCommit, static_cast<TxnId>(t + 1));
      ASSERT_TRUE(seq.ok());
      appended.fetch_add(1);
      ASSERT_TRUE(writer.SyncTo(*seq).ok());
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(device.flush_count(), 1u);
  EXPECT_EQ(metrics.counter("wal.group_commit.batches").value(), 1u);
  EXPECT_GE(metrics.distribution("wal.group_commit.ops_per_flush").count(),
            1u);
  const auto log = ReadLog(device);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(writer.flushed_seq(), writer.appended_seq());
}

TEST(WalGroupCommit, SyncToSkipsFlushesAlreadyCovered) {
  MemLogDevice device;
  WalWriter writer(device);
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  {
    const auto s1 = writer.AppendDecisionRecord(WalRecordType::kPrepare, 1);
    ASSERT_TRUE(s1.ok());
    first = *s1;
    const auto s2 = writer.AppendDecisionRecord(WalRecordType::kCommit, 1);
    ASSERT_TRUE(s2.ok());
    second = *s2;
  }
  // Syncing the LATER record covers the earlier one too.
  ASSERT_TRUE(writer.SyncTo(second).ok());
  EXPECT_EQ(device.flush_count(), 1u);
  ASSERT_TRUE(writer.SyncTo(first).ok());   // already durable: no flush
  ASSERT_TRUE(writer.SyncTo(second).ok());  // idem
  EXPECT_EQ(device.flush_count(), 1u);
}

TEST(WalGroupCommit, BoundedWindowTimesOutWithNoCompany) {
  // A lone committer with a real (timed) window must not wait forever: the
  // wait_for deadline fires and the flush proceeds.
  MemLogDevice device;
  MetricsRegistry metrics;
  GroupCommitConfig gc;
  gc.window_us = 200;  // real timed window, no hook
  WalWriter writer(device, &metrics, gc);
  const auto seq = writer.AppendDecisionRecord(WalRecordType::kCommit, 9);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(writer.SyncTo(*seq).ok());
  EXPECT_EQ(device.flush_count(), 1u);
  const auto log = ReadLog(device);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 1u);
}

TEST(WalGroupCommit, TornGroupFlushRecoversLongestValidPrefix) {
  // A group flush pushes several records in one device write; power fails
  // partway. Whatever prefix reached the medium must parse cleanly at
  // every possible tear point - recovery never sees garbage and never
  // loses the records flushed before the group.
  MemLogDevice reference;
  WalWriter ref(reference);
  ASSERT_TRUE(ref.Append(OpRecord(1, "base0", 1)).ok());
  ASSERT_TRUE(ref.Append(OpRecord(1, "base1", 2)).ok());
  ASSERT_TRUE(ref.Flush().ok());
  const std::size_t base = reference.durable_size();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ref.Append(OpRecord(2, "grp" + std::to_string(i), i)).ok());
  }
  const std::size_t group = reference.pending_size();

  for (std::size_t cut = 0; cut <= group; ++cut) {
    MemLogDevice device;
    WalWriter writer(device);
    ASSERT_TRUE(writer.Append(OpRecord(1, "base0", 1)).ok());
    ASSERT_TRUE(writer.Append(OpRecord(1, "base1", 2)).ok());
    ASSERT_TRUE(writer.Flush().ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          writer.Append(OpRecord(2, "grp" + std::to_string(i), i)).ok());
    }
    device.CrashTorn(cut);
    ASSERT_EQ(device.durable_size(), base + cut);
    std::size_t valid = 0;
    const auto durable = device.ReadDurable();
    ASSERT_TRUE(durable.ok());
    const auto log = ParseLog(*durable, &valid);
    ASSERT_TRUE(log.ok()) << "cut=" << cut;
    ASSERT_GE(log->size(), 2u) << "cut=" << cut;  // flushed base survives
    ASSERT_LE(log->size(), 5u);
    // The valid prefix is record-aligned: re-parsing it loses nothing.
    const auto again = ParseLog(durable->substr(0, valid));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->size(), log->size());
  }
}

}  // namespace
}  // namespace repdir::storage
