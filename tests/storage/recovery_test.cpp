// Recovery: checkpoint + committed-redo reconstruction, presumed abort for
// undecided transactions, in-doubt resolution, and a crash-point sweep
// property test (crash after every flush boundary must yield a state equal
// to replaying the committed prefix).
#include <gtest/gtest.h>

#include <cstdlib>

#include "storage/crash_point.h"
#include "storage/map_storage.h"
#include "storage/recovery.h"

namespace repdir::storage {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : writer_(device_) {}

  Status LogInsert(TxnId txn, const std::string& k, Version v) {
    return writer_.AppendOp(txn, WalOp::Insert(RepKey::User(k), v, "v" + k));
  }
  Status LogCoalesce(TxnId txn, const RepKey& l, const RepKey& h, Version v) {
    return writer_.AppendOp(txn, WalOp::Coalesce(l, h, v));
  }
  Result<RecoveryOutcome> Recover(RepStorage& stg) {
    const auto log = ReadLog(device_);
    if (!log.ok()) return log.status();
    return RecoverRepresentative(stg, *log);
  }

  MemLogDevice device_;
  WalWriter writer_;
};

TEST_F(RecoveryTest, CommittedTransactionsAreReplayed) {
  ASSERT_TRUE(LogInsert(1, "a", 1).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kPrepare, 1).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 1).ok());

  MapStorage stg;
  const auto outcome = Recover(stg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->ops_replayed, 1u);
  EXPECT_TRUE(outcome->in_doubt.empty());
  ASSERT_TRUE(stg.Get(RepKey::User("a")).has_value());
  EXPECT_EQ(stg.Get(RepKey::User("a"))->version, 1u);
}

TEST_F(RecoveryTest, UncommittedOpsAreNotReplayed) {
  ASSERT_TRUE(LogInsert(1, "a", 1).ok());
  ASSERT_TRUE(LogInsert(2, "b", 1).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 2).ok());
  // Txn 1 never prepared or decided: its effects vanish (presumed abort).

  MapStorage stg;
  const auto outcome = Recover(stg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(stg.Get(RepKey::User("a")).has_value());
  EXPECT_TRUE(stg.Get(RepKey::User("b")).has_value());
  EXPECT_TRUE(outcome->in_doubt.empty());
}

TEST_F(RecoveryTest, PreparedUndecidedIsInDoubt) {
  ASSERT_TRUE(LogInsert(5, "x", 2).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kPrepare, 5).ok());

  MapStorage stg;
  const auto outcome = Recover(stg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(stg.Get(RepKey::User("x")).has_value());  // not applied yet
  ASSERT_EQ(outcome->in_doubt.size(), 1u);
  EXPECT_TRUE(outcome->in_doubt.contains(5));
}

TEST_F(RecoveryTest, ResolveInDoubtCommitAppliesOps) {
  ASSERT_TRUE(LogInsert(5, "x", 2).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kPrepare, 5).ok());

  MapStorage stg;
  ASSERT_TRUE(Recover(stg).ok());

  const auto log = ReadLog(device_);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(ResolveInDoubt(stg, *log, 5, /*commit=*/true, writer_).ok());
  EXPECT_TRUE(stg.Get(RepKey::User("x")).has_value());

  // A later recovery sees the appended commit record: no longer in doubt.
  MapStorage stg2;
  const auto outcome2 = Recover(stg2);
  ASSERT_TRUE(outcome2.ok());
  EXPECT_TRUE(outcome2->in_doubt.empty());
  EXPECT_TRUE(stg2.Get(RepKey::User("x")).has_value());
}

TEST_F(RecoveryTest, ResolveInDoubtAbortDropsOps) {
  ASSERT_TRUE(LogInsert(5, "x", 2).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kPrepare, 5).ok());

  MapStorage stg;
  ASSERT_TRUE(Recover(stg).ok());
  const auto log = ReadLog(device_);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(ResolveInDoubt(stg, *log, 5, /*commit=*/false, writer_).ok());
  EXPECT_FALSE(stg.Get(RepKey::User("x")).has_value());

  MapStorage stg2;
  const auto outcome2 = Recover(stg2);
  ASSERT_TRUE(outcome2.ok());
  EXPECT_TRUE(outcome2->in_doubt.empty());
}

TEST_F(RecoveryTest, CheckpointPlusTailReplay) {
  // Committed history before the checkpoint...
  ASSERT_TRUE(LogInsert(1, "a", 1).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 1).ok());
  MapStorage live;
  {
    DirRepCore core(live);
    ASSERT_TRUE(core.Insert(RepKey::User("a"), 1, "va").ok());
  }
  ASSERT_TRUE(writer_.WriteCheckpoint(live.Scan()).ok());

  // ...and committed history after it.
  ASSERT_TRUE(LogInsert(2, "b", 2).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 2).ok());

  MapStorage recovered;
  const auto outcome = Recover(recovered);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->restored_checkpoint);
  EXPECT_EQ(outcome->ops_replayed, 1u);  // only the post-checkpoint op
  EXPECT_TRUE(recovered.Get(RepKey::User("a")).has_value());
  EXPECT_TRUE(recovered.Get(RepKey::User("b")).has_value());
}

TEST_F(RecoveryTest, CoalesceRedoReproducesGapState) {
  // History: t1 inserts a,b,c (committed); t2 coalesces (a,c) -> gap 5.
  ASSERT_TRUE(LogInsert(1, "a", 1).ok());
  ASSERT_TRUE(LogInsert(1, "b", 1).ok());
  ASSERT_TRUE(LogInsert(1, "c", 1).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 1).ok());
  ASSERT_TRUE(
      LogCoalesce(2, RepKey::User("a"), RepKey::User("c"), 5).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 2).ok());

  MapStorage stg;
  ASSERT_TRUE(Recover(stg).ok());
  EXPECT_FALSE(stg.Get(RepKey::User("b")).has_value());
  EXPECT_EQ(stg.Get(RepKey::User("a"))->gap_after, 5u);
}

// Property: crash at every flush boundary. We build a scripted history of N
// committed transactions (flushing after each commit), then for each prefix
// of flushes simulate a crash and verify recovery equals the prefix state.
TEST_F(RecoveryTest, CrashAtEveryCommitBoundaryRecoversPrefix) {
  constexpr int kTxns = 12;

  // Expected states: replay prefix by prefix on a reference.
  std::vector<std::vector<StoredEntry>> expected;
  {
    MapStorage ref;
    DirRepCore core(ref);
    expected.push_back(ref.Scan());
    for (int t = 1; t <= kTxns; ++t) {
      const std::string k = "key" + std::to_string(t % 5);
      if (t % 3 == 0 && ref.Get(RepKey::User(k)).has_value()) {
        const StoredEntry pred = ref.StrictPredecessor(RepKey::User(k));
        const StoredEntry succ = ref.StrictSuccessor(RepKey::User(k));
        ASSERT_TRUE(
            core.Coalesce(pred.key, succ.key, static_cast<Version>(t)).ok());
      } else {
        ASSERT_TRUE(
            core.Insert(RepKey::User(k), static_cast<Version>(t), "v").ok());
      }
      expected.push_back(ref.Scan());
    }
  }

  // The same history through the WAL, crash-testing each boundary.
  for (int crash_after = 0; crash_after <= kTxns; ++crash_after) {
    MemLogDevice device;
    WalWriter writer(device);
    MapStorage live;
    DirRepCore core(live);
    for (int t = 1; t <= crash_after; ++t) {
      const TxnId txn = static_cast<TxnId>(t);
      const std::string k = "key" + std::to_string(t % 5);
      if (t % 3 == 0 && live.Get(RepKey::User(k)).has_value()) {
        const StoredEntry pred = live.StrictPredecessor(RepKey::User(k));
        const StoredEntry succ = live.StrictSuccessor(RepKey::User(k));
        ASSERT_TRUE(writer
                        .AppendOp(txn, WalOp::Coalesce(pred.key, succ.key,
                                                       static_cast<Version>(t)))
                        .ok());
        ASSERT_TRUE(
            core.Coalesce(pred.key, succ.key, static_cast<Version>(t)).ok());
      } else {
        ASSERT_TRUE(
            writer
                .AppendOp(txn, WalOp::Insert(RepKey::User(k),
                                             static_cast<Version>(t), "v"))
                .ok());
        ASSERT_TRUE(
            core.Insert(RepKey::User(k), static_cast<Version>(t), "v").ok());
      }
      ASSERT_TRUE(writer.AppendDecision(WalRecordType::kCommit, txn).ok());
    }
    // One more transaction that never commits (in flight at the crash).
    ASSERT_TRUE(
        writer.AppendOp(999, WalOp::Insert(RepKey::User("zz"), 99, "v")).ok());
    device.Crash();

    MapStorage recovered;
    const auto log = ReadLog(device);
    ASSERT_TRUE(log.ok());
    const auto outcome = RecoverRepresentative(recovered, *log);
    ASSERT_TRUE(outcome.ok()) << "crash_after=" << crash_after;
    EXPECT_EQ(recovered.Scan(), expected[crash_after])
        << "crash_after=" << crash_after;
  }
}

// Crash-point tests: die at a precise instant inside the WAL protocol and
// verify what recovery makes of the resulting durable state. The in-process
// handler substitutes for SIGKILL (which the multi-process chaos cluster
// uses) by capturing or mutating the device at the armed instant.
class CrashPointTest : public RecoveryTest {
 protected:
  ~CrashPointTest() override { CrashPoints::Instance().Reset(); }
};

TEST_F(CrashPointTest, TornAppendTailIsIgnoredOnRecovery) {
  ASSERT_TRUE(LogInsert(1, "a", 1).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 1).ok());

  // Die mid-append: only the first half of txn 2's op frame reaches the
  // medium (a torn write).
  auto& points = CrashPoints::Instance();
  std::size_t torn_at = 0;
  points.SetHandler(
      [&](const std::string&) { torn_at = device_.pending_size(); });
  points.Arm("wal.mid_append");
  ASSERT_TRUE(LogInsert(2, "b", 2).ok());
  ASSERT_GT(torn_at, 0u);
  ASSERT_LT(torn_at, device_.pending_size());
  device_.CrashTorn(torn_at);

  MapStorage stg;
  const auto outcome = Recover(stg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(stg.Get(RepKey::User("a")).has_value());
  EXPECT_FALSE(stg.Get(RepKey::User("b")).has_value());
  EXPECT_TRUE(outcome->in_doubt.empty());
  EXPECT_EQ(points.HitCount("wal.mid_append"), 1u);
}

TEST_F(CrashPointTest, DeathBeforeFlushLosesWholeTail) {
  ASSERT_TRUE(LogInsert(1, "a", 1).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 1).ok());

  // Die just before the flush that would make txn 2 durable: its op and
  // commit records sit in the unflushed tail and vanish together.
  auto& points = CrashPoints::Instance();
  points.SetHandler([&](const std::string&) { device_.Crash(); });
  points.Arm("wal.before_flush");
  ASSERT_TRUE(LogInsert(2, "b", 2).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 2).ok());

  MapStorage stg;
  const auto outcome = Recover(stg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(stg.Get(RepKey::User("a")).has_value());
  EXPECT_FALSE(stg.Get(RepKey::User("b")).has_value());
  EXPECT_TRUE(outcome->in_doubt.empty());
}

TEST_F(CrashPointTest, DeathAfterPrepareFlushLeavesTxnInDoubt) {
  auto& points = CrashPoints::Instance();
  bool died = false;
  points.SetHandler([&](const std::string&) {
    died = true;
    device_.Crash();
  });
  points.Arm("wal.after_prepare_flush");
  ASSERT_TRUE(LogInsert(7, "x", 1).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kPrepare, 7).ok());
  ASSERT_TRUE(died);

  // The promise is durable, the decision is not: in-doubt on recovery.
  MapStorage stg;
  const auto outcome = Recover(stg);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(stg.Get(RepKey::User("x")).has_value());
  ASSERT_EQ(outcome->in_doubt.size(), 1u);
  EXPECT_TRUE(outcome->in_doubt.contains(7));
}

TEST_F(CrashPointTest, MidCheckpointCrashKeepsOldLogIntact) {
  ASSERT_TRUE(LogInsert(1, "a", 1).ok());
  ASSERT_TRUE(writer_.AppendDecision(WalRecordType::kCommit, 1).ok());
  const auto old_log = device_.ReadDurable();
  ASSERT_TRUE(old_log.ok());

  // Capture the durable contents at the instant the checkpoint swap would
  // die. The atomic Rewrite guarantees it is the entire old log - a
  // truncate-then-append scheme would show an empty log here.
  auto& points = CrashPoints::Instance();
  std::string at_crash = "sentinel";
  points.SetHandler(
      [&](const std::string&) { at_crash = *device_.ReadDurable(); });
  points.Arm("wal.mid_checkpoint");

  MapStorage live;
  DirRepCore core(live);
  ASSERT_TRUE(core.Insert(RepKey::User("a"), 1, "va").ok());
  ASSERT_TRUE(writer_.WriteCheckpoint(live.Scan()).ok());
  EXPECT_EQ(at_crash, *old_log);

  // Recovering the captured pre-swap state replays the old log...
  MemLogDevice replayed;
  ASSERT_TRUE(replayed.Rewrite(at_crash).ok());
  const auto log = ReadLog(replayed);
  ASSERT_TRUE(log.ok());
  MapStorage stg;
  const auto outcome = RecoverRepresentative(stg, *log);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->restored_checkpoint);
  EXPECT_TRUE(stg.Get(RepKey::User("a")).has_value());

  // ...while the completed checkpoint leaves exactly one record behind.
  const auto log2 = ReadLog(device_);
  ASSERT_TRUE(log2.ok());
  ASSERT_EQ(log2->size(), 1u);
  MapStorage after;
  const auto outcome2 = RecoverRepresentative(after, *log2);
  ASSERT_TRUE(outcome2.ok());
  EXPECT_TRUE(outcome2->restored_checkpoint);
  EXPECT_TRUE(after.Get(RepKey::User("a")).has_value());
}

TEST_F(CrashPointTest, ArmFromEnvCountsDownHits) {
  // The multi-process cluster arms points through REPDIR_CRASH_POINT
  // ("name:count"); the count selects the n-th protocol instant.
  ASSERT_EQ(setenv("REPDIR_CRASH_POINT", "wal.after_flush:2", 1), 0);
  auto& points = CrashPoints::Instance();
  int fired = 0;
  points.SetHandler([&](const std::string& point) {
    ++fired;
    EXPECT_EQ(point, "wal.after_flush");
  });
  points.ArmFromEnv();
  ASSERT_EQ(unsetenv("REPDIR_CRASH_POINT"), 0);

  ASSERT_TRUE(writer_.Flush().ok());
  EXPECT_EQ(fired, 0);  // first hit only counts down
  ASSERT_TRUE(writer_.Flush().ok());
  EXPECT_EQ(fired, 1);  // second hit fires
  ASSERT_TRUE(writer_.Flush().ok());
  EXPECT_EQ(fired, 1);  // disarmed after firing
}

}  // namespace
}  // namespace repdir::storage
