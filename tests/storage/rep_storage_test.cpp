// RepStorage backend contract tests, parameterized over MapStorage and
// BTreeStorage (several fanouts): both must implement identical ordered-map
// semantics with sentinel entries.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/rng.h"
#include "storage/btree_storage.h"
#include "storage/map_storage.h"

namespace repdir::storage {
namespace {

using Factory = std::function<std::unique_ptr<RepStorage>()>;

struct BackendParam {
  std::string name;
  Factory make;
};

class RepStorageContract : public ::testing::TestWithParam<BackendParam> {
 protected:
  void SetUp() override { stg_ = GetParam().make(); }

  static StoredEntry U(const std::string& k, Version v, Version gap = 0) {
    return StoredEntry{RepKey::User(k), v, "val-" + k, gap};
  }

  std::unique_ptr<RepStorage> stg_;
};

TEST_P(RepStorageContract, FreshStorageHasOnlySentinels) {
  const auto scan = stg_->Scan();
  ASSERT_EQ(scan.size(), 2u);
  EXPECT_TRUE(scan[0].key.is_low());
  EXPECT_TRUE(scan[1].key.is_high());
  EXPECT_EQ(scan[0].gap_after, 0u);
  EXPECT_EQ(stg_->UserEntryCount(), 0u);
}

TEST_P(RepStorageContract, GetFindsExactKeyOnly) {
  stg_->Put(U("b", 3));
  EXPECT_TRUE(stg_->Get(RepKey::User("b")).has_value());
  EXPECT_FALSE(stg_->Get(RepKey::User("a")).has_value());
  EXPECT_FALSE(stg_->Get(RepKey::User("bb")).has_value());
  EXPECT_EQ(stg_->Get(RepKey::User("b"))->version, 3u);
  EXPECT_EQ(stg_->Get(RepKey::User("b"))->value, "val-b");
}

TEST_P(RepStorageContract, GetFindsSentinels) {
  EXPECT_TRUE(stg_->Get(RepKey::Low()).has_value());
  EXPECT_TRUE(stg_->Get(RepKey::High()).has_value());
}

TEST_P(RepStorageContract, PutOverwritesInPlace) {
  stg_->Put(U("k", 1));
  stg_->Put(StoredEntry{RepKey::User("k"), 5, "new", 7});
  const auto e = stg_->Get(RepKey::User("k"));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->version, 5u);
  EXPECT_EQ(e->value, "new");
  EXPECT_EQ(e->gap_after, 7u);
  EXPECT_EQ(stg_->UserEntryCount(), 1u);
}

TEST_P(RepStorageContract, FloorSemantics) {
  stg_->Put(U("b", 1));
  stg_->Put(U("d", 1));
  EXPECT_EQ(stg_->Floor(RepKey::User("b")).key, RepKey::User("b"));
  EXPECT_EQ(stg_->Floor(RepKey::User("c")).key, RepKey::User("b"));
  EXPECT_EQ(stg_->Floor(RepKey::User("a")).key, RepKey::Low());
  EXPECT_EQ(stg_->Floor(RepKey::User("z")).key, RepKey::User("d"));
  EXPECT_EQ(stg_->Floor(RepKey::High()).key, RepKey::High());
}

TEST_P(RepStorageContract, StrictNeighborSemantics) {
  stg_->Put(U("b", 1));
  stg_->Put(U("d", 1));
  EXPECT_EQ(stg_->StrictPredecessor(RepKey::User("b")).key, RepKey::Low());
  EXPECT_EQ(stg_->StrictPredecessor(RepKey::User("c")).key, RepKey::User("b"));
  EXPECT_EQ(stg_->StrictPredecessor(RepKey::User("d")).key, RepKey::User("b"));
  EXPECT_EQ(stg_->StrictPredecessor(RepKey::High()).key, RepKey::User("d"));
  EXPECT_EQ(stg_->StrictSuccessor(RepKey::User("b")).key, RepKey::User("d"));
  EXPECT_EQ(stg_->StrictSuccessor(RepKey::User("a")).key, RepKey::User("b"));
  EXPECT_EQ(stg_->StrictSuccessor(RepKey::User("d")).key, RepKey::High());
  EXPECT_EQ(stg_->StrictSuccessor(RepKey::Low()).key, RepKey::User("b"));
}

TEST_P(RepStorageContract, EraseRemovesOnlyTarget) {
  stg_->Put(U("a", 1));
  stg_->Put(U("b", 1));
  stg_->Put(U("c", 1));
  stg_->Erase(RepKey::User("b"));
  EXPECT_FALSE(stg_->Get(RepKey::User("b")).has_value());
  EXPECT_TRUE(stg_->Get(RepKey::User("a")).has_value());
  EXPECT_TRUE(stg_->Get(RepKey::User("c")).has_value());
  EXPECT_EQ(stg_->UserEntryCount(), 2u);
  EXPECT_EQ(stg_->StrictSuccessor(RepKey::User("a")).key, RepKey::User("c"));
}

TEST_P(RepStorageContract, SetGapAfterUpdatesOnlyGap) {
  stg_->Put(U("a", 4));
  stg_->SetGapAfter(RepKey::User("a"), 9);
  const auto e = stg_->Get(RepKey::User("a"));
  EXPECT_EQ(e->version, 4u);
  EXPECT_EQ(e->gap_after, 9u);
  stg_->SetGapAfter(RepKey::Low(), 3);
  EXPECT_EQ(stg_->Get(RepKey::Low())->gap_after, 3u);
}

TEST_P(RepStorageContract, ScanIsOrdered) {
  for (const char* k : {"m", "c", "x", "a", "t"}) stg_->Put(U(k, 1));
  const auto scan = stg_->Scan();
  ASSERT_EQ(scan.size(), 7u);
  for (std::size_t i = 1; i < scan.size(); ++i) {
    EXPECT_LT(scan[i - 1].key, scan[i].key);
  }
}

TEST_P(RepStorageContract, ClearResetsToEmpty) {
  for (int i = 0; i < 50; ++i) stg_->Put(U("k" + std::to_string(i), 1));
  stg_->Clear();
  EXPECT_EQ(stg_->UserEntryCount(), 0u);
  EXPECT_EQ(stg_->Scan().size(), 2u);
}

TEST_P(RepStorageContract, ManyEntriesKeepOrderAndCount) {
  Rng rng(7);
  std::set<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    std::string k = "key" + std::to_string(rng.Below(100000));
    keys.insert(k);
    stg_->Put(U(k, 1));
  }
  EXPECT_EQ(stg_->UserEntryCount(), keys.size());
  const auto scan = stg_->Scan();
  ASSERT_EQ(scan.size(), keys.size() + 2);
  auto it = keys.begin();
  for (std::size_t i = 1; i + 1 < scan.size(); ++i, ++it) {
    EXPECT_EQ(scan[i].key.user(), *it);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, RepStorageContract,
    ::testing::Values(
        BackendParam{"map", [] { return std::make_unique<MapStorage>(); }},
        BackendParam{"btree3",
                     [] { return std::make_unique<BTreeStorage>(3); }},
        BackendParam{"btree4",
                     [] { return std::make_unique<BTreeStorage>(4); }},
        BackendParam{"btree16",
                     [] { return std::make_unique<BTreeStorage>(16); }}),
    [](const ::testing::TestParamInfo<BackendParam>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace repdir::storage
