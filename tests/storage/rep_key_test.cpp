// RepKey: ordering, sentinels, serialization.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/serde.h"
#include "storage/rep_key.h"

namespace repdir::storage {
namespace {

TEST(RepKey, SentinelOrdering) {
  const RepKey low = RepKey::Low();
  const RepKey high = RepKey::High();
  const RepKey a = RepKey::User("a");
  const RepKey empty = RepKey::User("");  // even the empty user key

  EXPECT_LT(low, empty);
  EXPECT_LT(low, a);
  EXPECT_LT(empty, a);
  EXPECT_LT(a, high);
  EXPECT_LT(empty, high);
  EXPECT_LT(low, high);
}

TEST(RepKey, UserKeysOrderLexicographically) {
  const std::vector<std::string> raw = {"", "a", "aa", "ab", "b", "ba", "z"};
  for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
    EXPECT_LT(RepKey::User(raw[i]), RepKey::User(raw[i + 1]))
        << raw[i] << " vs " << raw[i + 1];
  }
}

TEST(RepKey, EqualityDistinguishesKinds) {
  EXPECT_EQ(RepKey::Low(), RepKey::Low());
  EXPECT_EQ(RepKey::High(), RepKey::High());
  EXPECT_EQ(RepKey::User("x"), RepKey::User("x"));
  EXPECT_NE(RepKey::Low(), RepKey::High());
  EXPECT_NE(RepKey::User("x"), RepKey::User("y"));
  EXPECT_NE(RepKey::Low(), RepKey::User(""));
}

TEST(RepKey, DefaultConstructedIsLow) {
  const RepKey k;
  EXPECT_TRUE(k.is_low());
  EXPECT_EQ(k, RepKey::Low());
}

TEST(RepKey, SerializationRoundTrip) {
  for (const RepKey& k :
       {RepKey::Low(), RepKey::High(), RepKey::User("hello"),
        RepKey::User(""), RepKey::User(std::string(1000, 'x'))}) {
    const std::string bytes = EncodeToString(k);
    RepKey decoded = RepKey::User("garbage");
    ASSERT_TRUE(DecodeFromString(bytes, decoded).ok());
    EXPECT_EQ(decoded, k);
  }
}

TEST(RepKey, DecodeRejectsBadKind) {
  ByteWriter w;
  w.PutU8(7);  // invalid kind
  w.PutString("");
  RepKey k;
  EXPECT_EQ(DecodeFromString(w.TakeString(), k).code(),
            StatusCode::kCorruption);
}

TEST(RepKey, DecodeRejectsSentinelWithPayload) {
  ByteWriter w;
  w.PutU8(0);  // LOW
  w.PutString("junk");
  RepKey k;
  EXPECT_EQ(DecodeFromString(w.TakeString(), k).code(),
            StatusCode::kCorruption);
}

TEST(RepKey, ToStringIsReadable) {
  EXPECT_EQ(RepKey::Low().ToString(), "LOW");
  EXPECT_EQ(RepKey::High().ToString(), "HIGH");
  EXPECT_EQ(RepKey::User("k1").ToString(), "\"k1\"");
}

TEST(RepKey, SortingPlacesSentinelsAtEnds) {
  std::vector<RepKey> keys = {RepKey::User("m"), RepKey::High(),
                              RepKey::User("a"), RepKey::Low(),
                              RepKey::User("z")};
  std::sort(keys.begin(), keys.end());
  EXPECT_TRUE(keys.front().is_low());
  EXPECT_TRUE(keys.back().is_high());
  EXPECT_EQ(keys[1], RepKey::User("a"));
  EXPECT_EQ(keys[3], RepKey::User("z"));
}

}  // namespace
}  // namespace repdir::storage
