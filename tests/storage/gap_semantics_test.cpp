// Gap-version bookkeeping property test: DirRepCore against a naive
// reference that stores (entry-version map + explicit list of gap segments
// with versions). After every random operation the two agree on the
// version of EVERY probe key - present or absent - on both backends.
#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "common/rng.h"
#include "storage/btree_storage.h"
#include "storage/dir_rep_core.h"
#include "storage/map_storage.h"
#include "wl/key_gen.h"

namespace repdir::storage {
namespace {

/// Naive reference: entries keyed by numeric id, gap versions stored as a
/// map from "gap lower bound" (numeric id or -1 for LOW) to version.
class NaiveRep {
 public:
  NaiveRep() { gap_after_[-1] = 0; }

  bool Has(std::int64_t k) const { return entries_.contains(k); }

  void Insert(std::int64_t k, Version v) {
    if (entries_.contains(k)) {
      entries_[k] = v;
      return;
    }
    entries_[k] = v;
    // Split the gap below k: the new entry's upper half keeps the version.
    gap_after_[k] = GapVersionAt(k);
  }

  void Coalesce(std::int64_t l, std::int64_t h, Version v) {
    // l may be -1 (LOW); h may be INT64_MAX (HIGH).
    for (auto it = entries_.upper_bound(l); it != entries_.end() &&
                                            it->first < h;) {
      gap_after_.erase(it->first);
      it = entries_.erase(it);
    }
    gap_after_[l] = v;
  }

  /// Entry version if present; otherwise the version of the containing gap.
  std::pair<bool, Version> Lookup(std::int64_t k) const {
    const auto e = entries_.find(k);
    if (e != entries_.end()) return {true, e->second};
    return {false, GapVersionAt(k)};
  }

  std::int64_t Predecessor(std::int64_t k) const {
    auto it = entries_.lower_bound(k);
    if (it == entries_.begin()) return -1;
    return std::prev(it)->first;
  }
  std::int64_t Successor(std::int64_t k) const {
    const auto it = entries_.upper_bound(k);
    return it == entries_.end() ? std::numeric_limits<std::int64_t>::max()
                                : it->first;
  }

 private:
  Version GapVersionAt(std::int64_t k) const {
    // Gap version = gap_after of the greatest boundary (entry or LOW) < k.
    auto it = entries_.lower_bound(k);
    const std::int64_t below =
        it == entries_.begin() ? -1 : std::prev(it)->first;
    return gap_after_.at(below);
  }

  std::map<std::int64_t, Version> entries_;
  std::map<std::int64_t, Version> gap_after_;  // -1 = LOW
};

RepKey ToKey(std::int64_t k) {
  if (k < 0) return RepKey::Low();
  if (k == std::numeric_limits<std::int64_t>::max()) return RepKey::High();
  return RepKey::User(wl::NumericKey(static_cast<std::uint64_t>(k)));
}

class GapSemanticsFuzz
    : public ::testing::TestWithParam<std::pair<bool, std::uint64_t>> {};

TEST_P(GapSemanticsFuzz, CoreMatchesNaiveReference) {
  const auto [use_btree, seed] = GetParam();
  std::unique_ptr<RepStorage> stg;
  if (use_btree) {
    stg = std::make_unique<BTreeStorage>(3);
  } else {
    stg = std::make_unique<MapStorage>();
  }
  DirRepCore core(*stg);
  NaiveRep ref;
  Rng rng(seed);
  Version next_version = 1;

  constexpr std::int64_t kSpace = 60;

  for (int step = 0; step < 2000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.5) {
      // Insert/overwrite a random key with a fresh version.
      const std::int64_t k = static_cast<std::int64_t>(rng.Below(kSpace));
      const Version v = next_version++;
      ASSERT_TRUE(core.Insert(ToKey(k), v, "v").ok());
      ref.Insert(k, v);
    } else if (roll < 0.75) {
      // Coalesce the range spanning a random key (as a delete would).
      const std::int64_t k = static_cast<std::int64_t>(rng.Below(kSpace));
      const std::int64_t l = ref.Predecessor(k);
      const std::int64_t h = ref.Successor(k);
      if (l < k && k < h) {
        const Version v = next_version++;
        ASSERT_TRUE(core.Coalesce(ToKey(l), ToKey(h), v).ok())
            << "step " << step;
        ref.Coalesce(l, h, v);
      }
    } else {
      // Probe several random keys: present bit and version must agree.
      for (int probe = 0; probe < 5; ++probe) {
        const std::int64_t k = static_cast<std::int64_t>(rng.Below(kSpace));
        const auto [present, version] = ref.Lookup(k);
        const LookupReply reply = core.Lookup(ToKey(k));
        ASSERT_EQ(reply.present, present) << "step " << step << " key " << k;
        ASSERT_EQ(reply.version, version) << "step " << step << " key " << k;
      }
    }
  }

  // Exhaustive final sweep.
  for (std::int64_t k = 0; k < kSpace; ++k) {
    const auto [present, version] = ref.Lookup(k);
    const LookupReply reply = core.Lookup(ToKey(k));
    EXPECT_EQ(reply.present, present) << "key " << k;
    EXPECT_EQ(reply.version, version) << "key " << k;
  }
  EXPECT_TRUE(CheckRepInvariants(*stg).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GapSemanticsFuzz,
    ::testing::Values(std::make_pair(false, 1ull), std::make_pair(false, 2ull),
                      std::make_pair(true, 1ull), std::make_pair(true, 2ull),
                      std::make_pair(true, 3ull)),
    [](const ::testing::TestParamInfo<std::pair<bool, std::uint64_t>>& param_info) {
      return std::string(param_info.param.first ? "btree" : "map") + "_seed" +
             std::to_string(param_info.param.second);
    });

}  // namespace
}  // namespace repdir::storage
