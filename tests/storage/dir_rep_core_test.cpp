// DirRepCore: the Figure 6 representative operations - gap semantics,
// coalesce preconditions, undo correctness. Parameterized over backends.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "storage/btree_storage.h"
#include "storage/dir_rep_core.h"
#include "storage/map_storage.h"

namespace repdir::storage {
namespace {

using Factory = std::function<std::unique_ptr<RepStorage>()>;

struct Param {
  std::string name;
  Factory make;
};

class DirRepCoreTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    stg_ = GetParam().make();
    core_ = std::make_unique<DirRepCore>(*stg_);
  }

  Status Insert(const std::string& k, Version v) {
    return core_->Insert(RepKey::User(k), v, "val-" + k).status();
  }

  std::unique_ptr<RepStorage> stg_;
  std::unique_ptr<DirRepCore> core_;
};

TEST_P(DirRepCoreTest, LookupMissReportsGapVersion) {
  ASSERT_TRUE(Insert("b", 1).ok());
  stg_->SetGapAfter(RepKey::User("b"), 7);  // gap (b, HIGH) = 7

  const LookupReply before = core_->Lookup(RepKey::User("a"));
  EXPECT_FALSE(before.present);
  EXPECT_EQ(before.version, 0u);  // gap (LOW, b)

  const LookupReply after = core_->Lookup(RepKey::User("c"));
  EXPECT_FALSE(after.present);
  EXPECT_EQ(after.version, 7u);  // gap (b, HIGH)
}

TEST_P(DirRepCoreTest, LookupHitReportsEntryVersionAndValue) {
  ASSERT_TRUE(Insert("b", 5).ok());
  const LookupReply reply = core_->Lookup(RepKey::User("b"));
  EXPECT_TRUE(reply.present);
  EXPECT_EQ(reply.version, 5u);
  EXPECT_EQ(reply.value, "val-b");
}

TEST_P(DirRepCoreTest, SentinelsAreAlwaysPresent) {
  EXPECT_TRUE(core_->Lookup(RepKey::Low()).present);
  EXPECT_TRUE(core_->Lookup(RepKey::High()).present);
  EXPECT_EQ(core_->Lookup(RepKey::Low()).version, 0u);
}

TEST_P(DirRepCoreTest, InsertSplitsGapBothHalvesKeepVersion) {
  ASSERT_TRUE(Insert("a", 1).ok());
  ASSERT_TRUE(Insert("e", 1).ok());
  stg_->SetGapAfter(RepKey::User("a"), 4);  // gap (a, e) = 4

  ASSERT_TRUE(Insert("c", 5).ok());
  // Gap (a, c) and gap (c, e) both report version 4.
  EXPECT_EQ(core_->Lookup(RepKey::User("b")).version, 4u);
  EXPECT_EQ(core_->Lookup(RepKey::User("d")).version, 4u);
  EXPECT_EQ(stg_->Get(RepKey::User("c"))->gap_after, 4u);
}

TEST_P(DirRepCoreTest, InsertRejectsSentinels) {
  EXPECT_EQ(core_->Insert(RepKey::Low(), 1, "x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(core_->Insert(RepKey::High(), 1, "x").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(DirRepCoreTest, PredecessorReturnsEntryAndGap) {
  ASSERT_TRUE(Insert("b", 3).ok());
  stg_->SetGapAfter(RepKey::User("b"), 9);

  const auto r = core_->Predecessor(RepKey::User("x"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->key, RepKey::User("b"));
  EXPECT_EQ(r->entry_version, 3u);
  EXPECT_EQ(r->gap_version, 9u);

  const auto low = core_->Predecessor(RepKey::User("a"));
  ASSERT_TRUE(low.ok());
  EXPECT_TRUE(low->key.is_low());

  EXPECT_EQ(core_->Predecessor(RepKey::Low()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(DirRepCoreTest, SuccessorGapIsBetweenQueryAndSuccessor) {
  ASSERT_TRUE(Insert("b", 1).ok());
  ASSERT_TRUE(Insert("f", 2).ok());
  stg_->SetGapAfter(RepKey::User("b"), 6);  // gap (b, f)

  // Query key inside the gap: gap version comes from floor(b).
  const auto mid = core_->Successor(RepKey::User("d"));
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->key, RepKey::User("f"));
  EXPECT_EQ(mid->entry_version, 2u);
  EXPECT_EQ(mid->gap_version, 6u);

  // Query key that has an entry: gap after that entry.
  const auto at = core_->Successor(RepKey::User("b"));
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(at->key, RepKey::User("f"));
  EXPECT_EQ(at->gap_version, 6u);

  EXPECT_EQ(core_->Successor(RepKey::High()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(DirRepCoreTest, CoalesceErasesInteriorAndSetsGap) {
  for (const char* k : {"a", "b", "c", "d", "e"}) {
    ASSERT_TRUE(Insert(k, 1).ok());
  }
  const auto effect =
      core_->Coalesce(RepKey::User("a"), RepKey::User("e"), 9);
  ASSERT_TRUE(effect.ok());
  ASSERT_EQ(effect->erased.size(), 3u);
  EXPECT_EQ(effect->erased[0].key, RepKey::User("b"));
  EXPECT_EQ(effect->erased[2].key, RepKey::User("d"));

  EXPECT_EQ(stg_->UserEntryCount(), 2u);
  EXPECT_EQ(core_->Lookup(RepKey::User("c")).version, 9u);
  EXPECT_FALSE(core_->Lookup(RepKey::User("c")).present);
  // Bounds survive.
  EXPECT_TRUE(core_->Lookup(RepKey::User("a")).present);
  EXPECT_TRUE(core_->Lookup(RepKey::User("e")).present);
}

TEST_P(DirRepCoreTest, CoalesceWithSentinelBounds) {
  ASSERT_TRUE(Insert("m", 1).ok());
  const auto effect = core_->Coalesce(RepKey::Low(), RepKey::High(), 5);
  ASSERT_TRUE(effect.ok());
  EXPECT_EQ(effect->erased.size(), 1u);
  EXPECT_EQ(stg_->UserEntryCount(), 0u);
  EXPECT_EQ(core_->Lookup(RepKey::User("anything")).version, 5u);
}

TEST_P(DirRepCoreTest, CoalesceRequiresBothBounds) {
  ASSERT_TRUE(Insert("a", 1).ok());
  EXPECT_EQ(core_->Coalesce(RepKey::User("a"), RepKey::User("z"), 2)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(core_->Coalesce(RepKey::User("q"), RepKey::User("a"), 2)
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // q > a: l < h violated
  EXPECT_EQ(core_->Coalesce(RepKey::User("a"), RepKey::User("a"), 2)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_P(DirRepCoreTest, CoalesceEmptyRangeStillBumpsGap) {
  ASSERT_TRUE(Insert("a", 1).ok());
  ASSERT_TRUE(Insert("b", 1).ok());
  const auto effect = core_->Coalesce(RepKey::User("a"), RepKey::User("b"), 8);
  ASSERT_TRUE(effect.ok());
  EXPECT_TRUE(effect->erased.empty());
  EXPECT_EQ(stg_->Get(RepKey::User("a"))->gap_after, 8u);
}

TEST_P(DirRepCoreTest, UndoInsertRestoresExactState) {
  ASSERT_TRUE(Insert("a", 1).ok());
  const auto before = stg_->Scan();

  // Fresh insert, then undo.
  const auto fresh = core_->Insert(RepKey::User("b"), 2, "vb");
  ASSERT_TRUE(fresh.ok());
  core_->UndoInsert(RepKey::User("b"), *fresh);
  EXPECT_EQ(stg_->Scan(), before);

  // Overwriting insert, then undo.
  const auto overwrite = core_->Insert(RepKey::User("a"), 9, "new");
  ASSERT_TRUE(overwrite.ok());
  ASSERT_TRUE(overwrite->replaced.has_value());
  core_->UndoInsert(RepKey::User("a"), *overwrite);
  EXPECT_EQ(stg_->Scan(), before);
}

TEST_P(DirRepCoreTest, UndoCoalesceRestoresExactState) {
  for (const char* k : {"a", "b", "c", "d"}) ASSERT_TRUE(Insert(k, 1).ok());
  stg_->SetGapAfter(RepKey::User("b"), 3);
  const auto before = stg_->Scan();

  const auto effect = core_->Coalesce(RepKey::User("a"), RepKey::User("d"), 7);
  ASSERT_TRUE(effect.ok());
  core_->UndoCoalesce(RepKey::User("a"), *effect);
  EXPECT_EQ(stg_->Scan(), before);
}

TEST_P(DirRepCoreTest, GuardedInsertAppliesWhenLocalVersionNotNewer) {
  // Guard rule: refuse iff the replica-local version (entry if present,
  // else containing gap) EXCEEDS the expectation; equal or lower local
  // versions are stale or current data a higher-versioned write may
  // overwrite.
  // Absent key at gap version 0, expectation 0: applies.
  const auto fresh =
      core_->GuardedInsert(RepKey::User("b"), 1, "vb", /*expected_version=*/0);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(core_->Lookup(RepKey::User("b")).version, 1u);

  // Present entry at version 1, expectation 1 (an update): applies.
  const auto update =
      core_->GuardedInsert(RepKey::User("b"), 2, "vb2", /*expected_version=*/1);
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(core_->Lookup(RepKey::User("b")).value, "vb2");
}

TEST_P(DirRepCoreTest, GuardedInsertRefusesNewerLocalVersion) {
  ASSERT_TRUE(Insert("b", 5).ok());
  const auto before = stg_->Scan();

  // Entry version 5 > expected 4: a conflicting write committed since the
  // caller's cache was filled. Refuse, change nothing.
  const auto stale =
      core_->GuardedInsert(RepKey::User("b"), 5, "clobber",
                           /*expected_version=*/4);
  EXPECT_EQ(stale.status().code(), StatusCode::kVersionMismatch);
  EXPECT_EQ(stg_->Scan(), before);

  // Same for a stale gap expectation: gap (b, HIGH) raised to 7 by a
  // coalesce the caller never saw.
  stg_->SetGapAfter(RepKey::User("b"), 7);
  const auto stale_gap =
      core_->GuardedInsert(RepKey::User("c"), 3, "vc", /*expected_version=*/2);
  EXPECT_EQ(stale_gap.status().code(), StatusCode::kVersionMismatch);
  EXPECT_FALSE(core_->Lookup(RepKey::User("c")).present);
}

TEST_P(DirRepCoreTest, GuardedInsertOverwritesGhostWithLowerVersion) {
  // A ghost (stale present copy) has a LOWER version than the current gap
  // the caller read from its quorum - the guard must let the new entry
  // through, exactly like the read-then-write path would.
  ASSERT_TRUE(Insert("g", 2).ok());  // will play the ghost, version 2
  const auto win =
      core_->GuardedInsert(RepKey::User("g"), 6, "new", /*expected_version=*/5);
  ASSERT_TRUE(win.ok());
  const LookupReply reply = core_->Lookup(RepKey::User("g"));
  EXPECT_TRUE(reply.present);
  EXPECT_EQ(reply.version, 6u);
  EXPECT_EQ(reply.value, "new");
}

TEST_P(DirRepCoreTest, GuardedInsertRejectsSentinels) {
  EXPECT_EQ(core_->GuardedInsert(RepKey::Low(), 1, "x", 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(core_->GuardedInsert(RepKey::High(), 1, "x", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(DirRepCoreTest, InvariantCheckerAcceptsValidState) {
  ASSERT_TRUE(Insert("a", 1).ok());
  ASSERT_TRUE(Insert("b", 2).ok());
  EXPECT_TRUE(CheckRepInvariants(*stg_).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, DirRepCoreTest,
    ::testing::Values(
        Param{"map", [] { return std::make_unique<MapStorage>(); }},
        Param{"btree", [] { return std::make_unique<BTreeStorage>(4); }}),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return param_info.param.name;
    });

TEST(RepInvariants, DetectsMissingSentinel) {
  MapStorage stg;
  // Build a corrupt scan by hand through a second storage whose LOW was
  // never set: simplest corruption is erasing everything via Clear + direct
  // manipulation is impossible through the interface, so check the
  // only reachable corruption: empty Scan from a broken implementation is
  // covered by the checker's size guard.
  EXPECT_TRUE(CheckRepInvariants(stg).ok());
}

TEST(DumpRep, RendersEntriesAndGaps) {
  MapStorage stg;
  DirRepCore core(stg);
  ASSERT_TRUE(core.Insert(RepKey::User("a"), 1, "x").ok());
  const std::string dump = DumpRep(stg);
  EXPECT_NE(dump.find("LOW"), std::string::npos);
  EXPECT_NE(dump.find("\"a\"v1"), std::string::npos);
  EXPECT_NE(dump.find("HIGH"), std::string::npos);
}

}  // namespace
}  // namespace repdir::storage
