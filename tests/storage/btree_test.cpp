// BTreeStorage structural tests: splits, merges, borrows, leaf chaining,
// and a long randomized fuzz against the MapStorage reference.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/btree_storage.h"
#include "storage/map_storage.h"
#include "wl/key_gen.h"

namespace repdir::storage {
namespace {

StoredEntry U(const std::string& k, Version v = 1, Version gap = 0) {
  return StoredEntry{RepKey::User(k), v, "v" + k, gap};
}

TEST(BTree, GrowsInHeightUnderInsertions) {
  BTreeStorage t(3);
  EXPECT_EQ(t.Height(), 1);
  for (int i = 0; i < 200; ++i) {
    t.Put(U(wl::NumericKey(i)));
    ASSERT_TRUE(t.CheckStructure()) << "after insert " << i;
  }
  EXPECT_GE(t.Height(), 3);
  EXPECT_EQ(t.UserEntryCount(), 200u);
}

TEST(BTree, ShrinksBackUnderDeletions) {
  BTreeStorage t(3);
  for (int i = 0; i < 200; ++i) t.Put(U(wl::NumericKey(i)));
  const int grown = t.Height();
  for (int i = 0; i < 200; ++i) {
    t.Erase(RepKey::User(wl::NumericKey(i)));
    ASSERT_TRUE(t.CheckStructure()) << "after erase " << i;
  }
  EXPECT_EQ(t.UserEntryCount(), 0u);
  EXPECT_LT(t.Height(), grown);
  // Sentinels survive everything.
  EXPECT_TRUE(t.Get(RepKey::Low()).has_value());
  EXPECT_TRUE(t.Get(RepKey::High()).has_value());
}

TEST(BTree, ReverseOrderDeletionsRebalance) {
  BTreeStorage t(4);
  for (int i = 0; i < 300; ++i) t.Put(U(wl::NumericKey(i)));
  for (int i = 299; i >= 0; --i) {
    t.Erase(RepKey::User(wl::NumericKey(i)));
    ASSERT_TRUE(t.CheckStructure()) << "after erase " << i;
  }
  EXPECT_EQ(t.UserEntryCount(), 0u);
}

TEST(BTree, AlternatingEndsDeletion) {
  BTreeStorage t(3);
  for (int i = 0; i < 128; ++i) t.Put(U(wl::NumericKey(i)));
  int lo = 0;
  int hi = 127;
  while (lo <= hi) {
    t.Erase(RepKey::User(wl::NumericKey(lo++)));
    ASSERT_TRUE(t.CheckStructure());
    if (lo > hi) break;
    t.Erase(RepKey::User(wl::NumericKey(hi--)));
    ASSERT_TRUE(t.CheckStructure());
  }
  EXPECT_EQ(t.UserEntryCount(), 0u);
}

// Fuzz: random interleaving of every RepStorage operation, mirrored onto
// MapStorage; states must match exactly after every step (checked via Scan)
// and the tree structure must stay valid.
class BTreeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BTreeFuzz, MatchesMapReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  BTreeStorage tree(3 + static_cast<int>(seed % 5));  // fanouts 3..7
  MapStorage ref;

  std::vector<std::string> present;
  auto pick_present = [&]() -> std::string {
    return present[rng.Index(present.size())];
  };

  for (int step = 0; step < 3000; ++step) {
    const double roll = rng.NextDouble();
    if (roll < 0.45 || present.empty()) {
      // Insert or overwrite.
      const std::string k = "k" + std::to_string(rng.Below(400));
      const StoredEntry e{RepKey::User(k), rng.Below(100), "x", rng.Below(50)};
      const bool existed = ref.Get(e.key).has_value();
      tree.Put(e);
      ref.Put(e);
      if (!existed) present.push_back(k);
    } else if (roll < 0.75) {
      const std::string k = pick_present();
      tree.Erase(RepKey::User(k));
      ref.Erase(RepKey::User(k));
      present.erase(std::find(present.begin(), present.end(), k));
    } else if (roll < 0.85) {
      const std::string k = pick_present();
      const Version v = rng.Below(1000);
      tree.SetGapAfter(RepKey::User(k), v);
      ref.SetGapAfter(RepKey::User(k), v);
    } else {
      // Read-only probes must agree, including around absent keys.
      const std::string k = "k" + std::to_string(rng.Below(400));
      const RepKey key = RepKey::User(k);
      ASSERT_EQ(tree.Get(key), ref.Get(key));
      ASSERT_EQ(tree.Floor(key), ref.Floor(key));
      ASSERT_EQ(tree.StrictPredecessor(key), ref.StrictPredecessor(key));
      ASSERT_EQ(tree.StrictSuccessor(key), ref.StrictSuccessor(key));
    }

    if (step % 100 == 0) {
      ASSERT_TRUE(tree.CheckStructure()) << "step " << step;
      ASSERT_EQ(tree.Scan(), ref.Scan()) << "step " << step;
    }
  }
  ASSERT_TRUE(tree.CheckStructure());
  ASSERT_EQ(tree.Scan(), ref.Scan());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace repdir::storage
