// DeadlockDetector: cycle detection across lock managers (distributed
// deadlocks), victim selection, and end-to-end deadlock resolution with
// blocked threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lock/range_lock_manager.h"

namespace repdir::lock {
namespace {

KeyRange Point(const std::string& k) {
  return KeyRange::Point(RepKey::User(k));
}

TEST(DeadlockDetector, DirectCycleIsRefused) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddWait(1, {2}).ok());
  EXPECT_EQ(det.AddWait(2, {1}).code(), StatusCode::kAborted);
  EXPECT_EQ(det.deadlocks_detected(), 1u);
}

TEST(DeadlockDetector, TransitiveCycleIsRefused) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddWait(1, {2}).ok());
  EXPECT_TRUE(det.AddWait(2, {3}).ok());
  EXPECT_TRUE(det.AddWait(3, {4}).ok());
  EXPECT_EQ(det.AddWait(4, {1}).code(), StatusCode::kAborted);
}

TEST(DeadlockDetector, SelfWaitIsRefused) {
  DeadlockDetector det;
  EXPECT_EQ(det.AddWait(1, {1}).code(), StatusCode::kAborted);
}

TEST(DeadlockDetector, ClearWaitBreaksChains) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddWait(1, {2}).ok());
  det.ClearWait(1);
  EXPECT_TRUE(det.AddWait(2, {1}).ok());  // no cycle anymore
}

TEST(DeadlockDetector, ReplacementSemantics) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddWait(1, {2}).ok());
  // Txn 1 now waits for 3 instead (holder set changed on wake).
  EXPECT_TRUE(det.AddWait(1, {3}).ok());
  // 2 -> 1 would only cycle through the stale edge 1 -> 2; must be OK.
  EXPECT_TRUE(det.AddWait(2, {1}).ok());
  // But 3 -> 1 closes the live cycle.
  EXPECT_EQ(det.AddWait(3, {1}).code(), StatusCode::kAborted);
}

TEST(DeadlockDetector, DiamondWaitsWithoutCycleAreFine) {
  DeadlockDetector det;
  EXPECT_TRUE(det.AddWait(1, {2, 3}).ok());
  EXPECT_TRUE(det.AddWait(2, {4}).ok());
  EXPECT_TRUE(det.AddWait(3, {4}).ok());
  EXPECT_EQ(det.deadlocks_detected(), 0u);
}

// Cross-manager deadlock: txn 1 holds a lock at manager A and blocks at B;
// txn 2 holds at B and tries A. The shared detector must abort one of them
// and both threads must finish.
TEST(DeadlockDetector, CrossManagerDeadlockResolves) {
  DeadlockDetector det;
  RangeLockManager a(&det);
  RangeLockManager b(&det);

  ASSERT_TRUE(a.Acquire(1, LockMode::kModify, Point("x")).ok());
  ASSERT_TRUE(b.Acquire(2, LockMode::kModify, Point("y")).ok());

  std::atomic<int> aborted{0};
  std::thread t1([&] {
    const Status st = b.Acquire(1, LockMode::kModify, Point("y"),
                                /*timeout_micros=*/5'000'000);
    if (!st.ok()) {
      ++aborted;
      a.ReleaseAll(1);
      b.ReleaseAll(1);
    } else {
      // Got it (the other txn was the victim); clean up.
      a.ReleaseAll(1);
      b.ReleaseAll(1);
    }
  });
  std::thread t2([&] {
    // Give t1 a moment to block so the cycle actually forms.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const Status st = a.Acquire(2, LockMode::kModify, Point("x"),
                                /*timeout_micros=*/5'000'000);
    if (!st.ok()) {
      ++aborted;
      a.ReleaseAll(2);
      b.ReleaseAll(2);
    } else {
      a.ReleaseAll(2);
      b.ReleaseAll(2);
    }
  });
  t1.join();
  t2.join();
  EXPECT_GE(aborted.load(), 1);
  EXPECT_GE(det.deadlocks_detected(), 1u);
  EXPECT_EQ(a.TotalHeld(), 0u);
  EXPECT_EQ(b.TotalHeld(), 0u);
}

}  // namespace
}  // namespace repdir::lock
