// KeyRange semantics and the Figure 7 compatibility relation, checked
// exhaustively over mode pairs and range relationships.
#include <gtest/gtest.h>

#include "lock/range_lock.h"

namespace repdir::lock {
namespace {

KeyRange R(const std::string& lo, const std::string& hi) {
  return KeyRange{RepKey::User(lo), RepKey::User(hi)};
}

TEST(KeyRange, ContainsIsInclusive) {
  const KeyRange r = R("b", "d");
  EXPECT_TRUE(r.Contains(RepKey::User("b")));
  EXPECT_TRUE(r.Contains(RepKey::User("c")));
  EXPECT_TRUE(r.Contains(RepKey::User("d")));
  EXPECT_FALSE(r.Contains(RepKey::User("a")));
  EXPECT_FALSE(r.Contains(RepKey::User("e")));
}

TEST(KeyRange, PointRange) {
  const KeyRange p = KeyRange::Point(RepKey::User("x"));
  EXPECT_TRUE(p.Valid());
  EXPECT_TRUE(p.Contains(RepKey::User("x")));
  EXPECT_FALSE(p.Contains(RepKey::User("y")));
}

TEST(KeyRange, SentinelSpanningRange) {
  const KeyRange all{RepKey::Low(), RepKey::High()};
  EXPECT_TRUE(all.Valid());
  EXPECT_TRUE(all.Contains(RepKey::User("anything")));
  EXPECT_TRUE(all.Intersects(R("a", "b")));
}

TEST(KeyRange, IntersectionCases) {
  EXPECT_TRUE(R("a", "c").Intersects(R("b", "d")));   // overlap
  EXPECT_TRUE(R("a", "c").Intersects(R("c", "d")));   // touch at endpoint
  EXPECT_TRUE(R("a", "d").Intersects(R("b", "c")));   // containment
  EXPECT_TRUE(R("b", "c").Intersects(R("a", "d")));   // contained
  EXPECT_FALSE(R("a", "b").Intersects(R("c", "d")));  // disjoint
  EXPECT_FALSE(R("c", "d").Intersects(R("a", "b")));  // disjoint, reversed
}

TEST(KeyRange, InvalidWhenReversed) {
  const KeyRange reversed{RepKey::User("b"), RepKey::User("a")};
  const KeyRange sentinels_reversed{RepKey::High(), RepKey::Low()};
  EXPECT_FALSE(reversed.Valid());
  EXPECT_FALSE(sentinels_reversed.Valid());
}

// Figure 7, exhaustively: for each (held mode, requested mode) pair and
// each range relationship (intersecting / disjoint), compatibility holds
// exactly when the ranges are disjoint or both locks are RepLookup.
TEST(Figure7, CompatibilityMatrix) {
  const KeyRange held = R("b", "d");
  const KeyRange intersecting = R("c", "e");
  const KeyRange disjoint = R("x", "z");

  struct Case {
    LockMode held_mode;
    LockMode req_mode;
    bool intersecting_ranges;
    bool expect_compatible;
  };
  const Case cases[] = {
      {LockMode::kLookup, LockMode::kLookup, true, true},
      {LockMode::kLookup, LockMode::kLookup, false, true},
      {LockMode::kLookup, LockMode::kModify, true, false},
      {LockMode::kLookup, LockMode::kModify, false, true},
      {LockMode::kModify, LockMode::kLookup, true, false},
      {LockMode::kModify, LockMode::kLookup, false, true},
      {LockMode::kModify, LockMode::kModify, true, false},
      {LockMode::kModify, LockMode::kModify, false, true},
  };
  for (const Case& c : cases) {
    const KeyRange& req = c.intersecting_ranges ? intersecting : disjoint;
    EXPECT_EQ(Compatible(c.held_mode, c.req_mode, held, req),
              c.expect_compatible)
        << LockModeName(c.held_mode) << " then " << LockModeName(c.req_mode)
        << (c.intersecting_ranges ? " intersecting" : " disjoint");
  }
}

}  // namespace
}  // namespace repdir::lock
