// RangeLockManager: grant/deny behaviour, re-entrancy, strict 2PL release,
// blocking acquisition across threads, timeout safety net.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lock/range_lock_manager.h"

namespace repdir::lock {
namespace {

KeyRange R(const std::string& lo, const std::string& hi) {
  return KeyRange{RepKey::User(lo), RepKey::User(hi)};
}

TEST(LockManager, SharedLookupsCoexist) {
  RangeLockManager mgr;
  EXPECT_TRUE(mgr.TryAcquire(1, LockMode::kLookup, R("a", "m")).ok());
  EXPECT_TRUE(mgr.TryAcquire(2, LockMode::kLookup, R("b", "z")).ok());
  EXPECT_TRUE(mgr.TryAcquire(3, LockMode::kLookup, R("a", "z")).ok());
  EXPECT_EQ(mgr.TotalHeld(), 3u);
}

TEST(LockManager, ModifyConflictsWithIntersectingAnything) {
  RangeLockManager mgr;
  ASSERT_TRUE(mgr.TryAcquire(1, LockMode::kModify, R("c", "f")).ok());
  EXPECT_EQ(mgr.TryAcquire(2, LockMode::kModify, R("e", "g")).code(),
            StatusCode::kAborted);
  EXPECT_EQ(mgr.TryAcquire(2, LockMode::kLookup, R("a", "c")).code(),
            StatusCode::kAborted);
  // Disjoint ranges are fine - this is the concurrency the paper buys.
  EXPECT_TRUE(mgr.TryAcquire(2, LockMode::kModify, R("x", "z")).ok());
  EXPECT_TRUE(mgr.TryAcquire(3, LockMode::kLookup, R("g", "h")).ok());
}

TEST(LockManager, ReentrantForSameTransaction) {
  RangeLockManager mgr;
  ASSERT_TRUE(mgr.TryAcquire(1, LockMode::kModify, R("a", "z")).ok());
  EXPECT_TRUE(mgr.TryAcquire(1, LockMode::kModify, R("b", "c")).ok());
  EXPECT_TRUE(mgr.TryAcquire(1, LockMode::kLookup, R("a", "a")).ok());
  EXPECT_EQ(mgr.HeldCount(1), 3u);
}

TEST(LockManager, ReleaseAllFreesOnlyThatTransaction) {
  RangeLockManager mgr;
  ASSERT_TRUE(mgr.TryAcquire(1, LockMode::kModify, R("a", "c")).ok());
  ASSERT_TRUE(mgr.TryAcquire(2, LockMode::kModify, R("x", "z")).ok());
  mgr.ReleaseAll(1);
  EXPECT_EQ(mgr.HeldCount(1), 0u);
  EXPECT_EQ(mgr.HeldCount(2), 1u);
  EXPECT_TRUE(mgr.TryAcquire(3, LockMode::kModify, R("a", "c")).ok());
  EXPECT_EQ(mgr.TryAcquire(3, LockMode::kModify, R("x", "z")).code(),
            StatusCode::kAborted);
}

TEST(LockManager, BlockingAcquireWaitsForRelease) {
  RangeLockManager mgr;
  ASSERT_TRUE(mgr.TryAcquire(1, LockMode::kModify, R("a", "z")).ok());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    const Status st = mgr.Acquire(2, LockMode::kModify, R("m", "n"),
                                  /*timeout_micros=*/5'000'000);
    ASSERT_TRUE(st.ok()) << st;
    acquired.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  mgr.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(mgr.HeldCount(2), 1u);
}

TEST(LockManager, TimeoutAborts) {
  RangeLockManager mgr;
  ASSERT_TRUE(mgr.TryAcquire(1, LockMode::kModify, R("a", "z")).ok());
  const Status st = mgr.Acquire(2, LockMode::kModify, R("m", "n"),
                                /*timeout_micros=*/50'000);
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_EQ(mgr.HeldCount(2), 0u);
}

TEST(LockManager, StatsCountAcquisitionsWaitsAborts) {
  RangeLockManager mgr;
  ASSERT_TRUE(mgr.TryAcquire(1, LockMode::kLookup, R("a", "b")).ok());
  ASSERT_EQ(mgr.TryAcquire(2, LockMode::kModify, R("a", "b")).code(),
            StatusCode::kAborted);
  const LockStats stats = mgr.stats();
  EXPECT_EQ(stats.acquisitions, 1u);
  EXPECT_EQ(stats.aborts, 1u);
}

TEST(LockManager, ManyConcurrentDisjointWriters) {
  RangeLockManager mgr;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const TxnId txn = static_cast<TxnId>(t * 10000 + i + 1);
        const std::string key = "k" + std::to_string(t);  // disjoint per thread
        if (!mgr.Acquire(txn, LockMode::kModify, R(key, key)).ok()) {
          failures.fetch_add(1);
        }
        mgr.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr.TotalHeld(), 0u);
  EXPECT_EQ(mgr.stats().acquisitions, kThreads * kIters);
}

}  // namespace
}  // namespace repdir::lock
