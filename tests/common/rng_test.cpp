// Rng: determinism, ranges, sampling, distribution sanity.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace repdir {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Range(5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.contains(5));
  EXPECT_TRUE(seen.contains(8));
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  Rng rng2(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.Chance(0.0));
    EXPECT_TRUE(rng2.Chance(1.0));
  }
}

TEST(Rng, SampleIsDistinctAndComplete) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.Sample(10, 4);
    EXPECT_EQ(sample.size(), 4u);
    const std::set<std::size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 4u);
    for (const std::size_t s : sample) EXPECT_LT(s, 10u);
  }
  const auto all = rng.Sample(5, 5);
  EXPECT_EQ(std::set<std::size_t>(all.begin(), all.end()).size(), 5u);
  EXPECT_TRUE(rng.Sample(5, 0).empty());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  auto reshuffled = v;
  std::sort(reshuffled.begin(), reshuffled.end());
  EXPECT_EQ(reshuffled, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(14);
  std::vector<int> v(52);
  for (int i = 0; i < 52; ++i) v[i] = i;
  const auto original = v;
  int unchanged_runs = 0;
  for (int t = 0; t < 10; ++t) {
    rng.Shuffle(v);
    if (v == original) ++unchanged_runs;
  }
  EXPECT_EQ(unchanged_runs, 0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(15);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, 4.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(16);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace repdir
