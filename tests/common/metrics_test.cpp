// MetricsRegistry / DistributionStat / ScopedLatency and the TraceSink
// ring buffer.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace repdir {
namespace {

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, NamesAreStableAndShared) {
  MetricsRegistry registry;
  Counter& a = registry.counter("rpc.attempts");
  Counter& b = registry.counter("rpc.attempts");
  EXPECT_EQ(&a, &b);  // same name, same object
  a.Increment();
  EXPECT_EQ(b.value(), 1u);

  DistributionStat& d1 = registry.distribution("lock.wait_us");
  DistributionStat& d2 = registry.distribution("lock.wait_us");
  EXPECT_EQ(&d1, &d2);
  EXPECT_NE(static_cast<void*>(&a), static_cast<void*>(&d1));
}

TEST(MetricsRegistry, ResetZeroesButKeepsPointersValid) {
  MetricsRegistry registry;
  Counter& c = registry.counter("x");
  DistributionStat& d = registry.distribution("y");
  c.Increment(7);
  d.Record(3.0);
  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(d.count(), 0u);
  c.Increment();  // cached pointer still usable
  EXPECT_EQ(registry.counter("x").value(), 1u);
}

TEST(DistributionStat, MomentsAndQuantiles) {
  DistributionStat d;
  for (int i = 0; i < 90; ++i) d.Record(3.0);    // bucket [2,4)
  for (int i = 0; i < 10; ++i) d.Record(100.0);  // bucket [64,128)
  EXPECT_EQ(d.count(), 100u);
  EXPECT_NEAR(d.Moments().mean(), 12.7, 1e-9);
  EXPECT_DOUBLE_EQ(d.Moments().max(), 100.0);
  // Quantiles are log2-bucket upper bounds.
  EXPECT_EQ(d.ApproxQuantile(0.5), 3u);
  EXPECT_EQ(d.ApproxQuantile(0.99), 127u);
}

TEST(DistributionStat, ZeroSamplesLandInBucketZero) {
  DistributionStat d;
  d.Record(0.0);
  EXPECT_EQ(d.ApproxQuantile(1.0), 0u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& c = registry.counter("concurrent");
  DistributionStat& d = registry.distribution("concurrent_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        d.Record(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(d.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, RenderTextListsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("b.count").Increment(3);
  registry.distribution("a.latency_us").Record(5.0);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("b.count 3"), std::string::npos);
  EXPECT_NE(text.find("a.latency_us count=1"), std::string::npos);
}

TEST(MetricsRegistry, RenderJsonShape) {
  MetricsRegistry registry;
  registry.counter("rpc.attempts").Increment(2);
  registry.distribution("rpc.wave_width").Record(3.0);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"rpc.attempts\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"distributions\""), std::string::npos);
  EXPECT_NE(json.find("\"rpc.wave_width\": {\"count\": 1"), std::string::npos);

  // An empty registry still renders valid (empty) objects.
  MetricsRegistry empty;
  const std::string none = empty.RenderJson();
  EXPECT_NE(none.find("\"counters\": {}"), std::string::npos);
}

TEST(ScopedLatency, MeasuresThroughInjectedClock) {
  VirtualClock clock;
  MetricsRegistry registry(&clock);
  DistributionStat& d = registry.distribution("op_us");
  {
    ScopedLatency latency(registry, d);
    clock.AdvanceBy(250);
  }
  EXPECT_EQ(d.count(), 1u);
  EXPECT_DOUBLE_EQ(d.Moments().mean(), 250.0);
}

TEST(TraceSink, DisabledSinkRecordsNothing) {
  TraceSink sink(4);
  { TraceSpan span(sink, "suite.lookup", 7); }
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.Snapshot().empty());
}

TEST(TraceSink, SpansCarryTxnAndVirtualTime) {
  VirtualClock clock;
  TraceSink sink(8, &clock);
  sink.set_enabled(true);
  clock.AdvanceTo(100);
  {
    TraceSpan span(sink, "suite.insert", 42);
    clock.AdvanceBy(50);
    span.Annotate("ok");
  }
  const auto events = sink.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "suite.insert");
  EXPECT_EQ(events[0].txn, 42u);
  EXPECT_EQ(events[0].start_us, 100u);
  EXPECT_EQ(events[0].end_us, 150u);
  EXPECT_EQ(events[0].note, "ok");
}

TEST(TraceSink, RingEvictsOldestAndCountsDrops) {
  TraceSink sink(2);
  sink.set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(sink, "span" + std::to_string(i));
  }
  EXPECT_EQ(sink.recorded(), 5u);
  EXPECT_EQ(sink.dropped(), 3u);
  const auto events = sink.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "span3");
  EXPECT_EQ(events[1].name, "span4");
}

TEST(TraceSink, DumpJsonEscapesNotes) {
  TraceSink sink(4);
  sink.set_enabled(true);
  {
    TraceSpan span(sink, "op", 1);
    span.Annotate("ABORTED: \"lock\"\n");
  }
  const std::string json = sink.DumpJson();
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(json.find("\\\"lock\\\"\\n"), std::string::npos);

  sink.Clear();
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_NE(sink.DumpJson().find("\"spans\": []"), std::string::npos);
}

TEST(TraceSink, ConcurrentSpansAllArrive) {
  TraceSink sink(100'000);
  sink.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(sink, "w", static_cast<TxnId>(t));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(sink.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink.dropped(), 0u);
}

}  // namespace
}  // namespace repdir
