// Clocks, logging, serde helpers.
#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "common/logging.h"
#include "common/serde.h"

namespace repdir {
namespace {

TEST(VirtualClockTest, AdvancesManually) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.AdvanceBy(100);
  EXPECT_EQ(clock.Now(), 100u);
  clock.AdvanceTo(5000);
  EXPECT_EQ(clock.Now(), 5000u);
  const Clock& as_interface = clock;
  EXPECT_EQ(as_interface.Now(), 5000u);
}

TEST(RealClockTest, MonotonicAndMoving) {
  RealClock& clock = RealClock::Instance();
  const TimeMicros a = clock.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const TimeMicros b = clock.Now();
  EXPECT_GT(b, a);
}

TEST(LoggingTest, LevelsGateOutput) {
  Logger& logger = Logger::Instance();
  const LogLevel old_level = logger.level();

  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.Enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.Enabled(LogLevel::kError));

  // The macro must not evaluate its stream when disabled.
  int evaluations = 0;
  auto probe = [&evaluations] {
    ++evaluations;
    return 42;
  };
  REPDIR_DEBUG() << "never " << probe();
  EXPECT_EQ(evaluations, 0);
  REPDIR_WARN() << "logged once " << probe();
  EXPECT_EQ(evaluations, 1);

  logger.set_level(old_level);
}

struct Pair {
  std::uint32_t a = 0;
  std::string b;
  void Encode(ByteWriter& w) const {
    w.PutU32(a);
    w.PutString(b);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetU32(a));
    return r.GetString(b);
  }
};

TEST(SerdeTest, RoundTripAndTrailingGarbage) {
  static_assert(WireMessage<Pair>);
  static_assert(WireMessage<EmptyMessage>);

  const Pair p{7, "seven"};
  const std::string bytes = EncodeToString(p);
  Pair out;
  ASSERT_TRUE(DecodeFromString(bytes, out).ok());
  EXPECT_EQ(out.a, 7u);
  EXPECT_EQ(out.b, "seven");

  Pair bad;
  EXPECT_EQ(DecodeFromString(bytes + "x", bad).code(),
            StatusCode::kCorruption);

  EmptyMessage empty;
  EXPECT_TRUE(DecodeFromString(EncodeToString(empty), empty).ok());
}

}  // namespace
}  // namespace repdir
