// Logger: atomic level and single-write line emission (no interleaving
// between concurrent writers).
#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace repdir {
namespace {

/// Captures std::cerr for the test's duration.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { Logger::Instance().set_level(LogLevel::kOff); }
};

TEST_F(LoggingTest, LevelGatesOutput) {
  CerrCapture capture;
  Logger::Instance().set_level(LogLevel::kWarn);
  REPDIR_INFO() << "filtered";
  REPDIR_WARN() << "emitted";
  const std::string out = capture.str();
  EXPECT_EQ(out.find("filtered"), std::string::npos);
  EXPECT_NE(out.find("emitted"), std::string::npos);
  EXPECT_NE(out.find("[WARN "), std::string::npos);
}

TEST_F(LoggingTest, ConcurrentWritersNeverShearLines) {
  CerrCapture capture;
  Logger::Instance().set_level(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        REPDIR_INFO() << "thread=" << t << " seq=" << i << " end";
      }
    });
  }
  for (auto& w : workers) w.join();
  Logger::Instance().set_level(LogLevel::kOff);

  // Every line must be one complete "[INFO file:line] thread=T seq=I end"
  // record: piecewise cerr writes would interleave fragments mid-line.
  std::istringstream lines(capture.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("[INFO ", 0), 0u) << "sheared line: " << line;
    EXPECT_NE(line.find("thread="), std::string::npos) << line;
    EXPECT_EQ(line.substr(line.size() - 4), " end") << line;
    ++count;
  }
  EXPECT_EQ(count, kThreads * kPerThread);
}

}  // namespace
}  // namespace repdir
