// Status / Result and the propagation macros.
#include <gtest/gtest.h>

#include "common/status.h"

namespace repdir {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::NotFound("no such key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such key");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such key");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, ErrorAccess) {
  Result<int> r(Status::Unavailable("down"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  REPDIR_RETURN_IF_ERROR(FailsWhenNegative(x));
  return 2 * x;
}

Result<int> Chain(int x) {
  REPDIR_ASSIGN_OR_RETURN(const int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(Macros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(DoubleIfPositive(-1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Macros, AssignOrReturnBindsAndPropagates) {
  const auto ok = Chain(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  EXPECT_EQ(Chain(-2).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace repdir
