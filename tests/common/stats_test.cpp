// RunningStat and CountHistogram.
#include <gtest/gtest.h>

#include "common/stats.h"

namespace repdir {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-sd example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5.0;
    all.Add(x);
    (i < 40 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.stddev(), all.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(RunningStat, NumericalStabilityOnLargeOffsets) {
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));  // values 1e9, 1e9+1
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.stddev(), 0.5, 1e-6);
}

TEST(CountHistogram, BucketsAndOverflow) {
  CountHistogram h(4);
  for (const int v : {0, 1, 1, 2, 9, 100}) h.Add(v);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 2u);  // overflow bucket: 9 and 100
}

TEST(CountHistogram, Quantile) {
  CountHistogram h(16);
  for (int i = 0; i < 90; ++i) h.Add(1);
  for (int i = 0; i < 10; ++i) h.Add(8);
  EXPECT_EQ(h.Quantile(0.5), 1u);
  EXPECT_EQ(h.Quantile(0.99), 8u);
}

TEST(RunningStat, MinOfEmptyIsZero) {
  const RunningStat s;
  EXPECT_DOUBLE_EQ(s.min(), 0.0);  // not +infinity
}

TEST(RunningStat, VarianceNeverNegativeOrNaN) {
  // Near-identical large values drive Welford's m2 accumulator into the
  // catastrophic-cancellation regime where it can go slightly negative;
  // variance() must clamp instead of handing sqrt a negative number.
  RunningStat s;
  for (int i = 0; i < 10000; ++i) s.Add(1e15 + 0.1 * (i % 2));
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_FALSE(std::isnan(s.stddev()));
}

TEST(CountHistogram, QuantileOfEmptyIsZero) {
  const CountHistogram h(8);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
}

TEST(CountHistogram, QuantileClampsOutOfRangeQ) {
  CountHistogram h(8);
  h.Add(3);
  h.Add(5);
  // q <= 0 selects the minimum observation, q >= 1 the maximum.
  EXPECT_EQ(h.Quantile(-1.0), 3u);
  EXPECT_EQ(h.Quantile(0.0), 3u);
  EXPECT_EQ(h.Quantile(1.0), 5u);
  EXPECT_EQ(h.Quantile(2.5), 5u);
}

TEST(CountHistogram, TinyQNeverSelectsEmptyBucketZero) {
  // Regression: the old floor-based threshold mapped tiny q to 0 covered
  // observations, reporting bucket 0 even though nothing was ever <= 0.
  CountHistogram h(8);
  for (int i = 0; i < 100; ++i) h.Add(4);
  EXPECT_EQ(h.Quantile(0.001), 4u);
}

TEST(CountHistogram, ToStringSkipsEmptyBuckets) {
  CountHistogram h(8);
  h.Add(2);
  h.Add(2);
  h.Add(5);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("2:2"), std::string::npos);
  EXPECT_NE(s.find("5:1"), std::string::npos);
  EXPECT_EQ(s.find("3:"), std::string::npos);
}

}  // namespace
}  // namespace repdir
