// ByteWriter / ByteReader / CRC32C: round trips, bounds checking, varints.
#include <gtest/gtest.h>

#include "common/bytes.h"

namespace repdir {
namespace {

TEST(Bytes, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutBool(true);
  w.PutBool(false);

  ByteReader r(w.data());
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  bool b1 = false;
  bool b2 = true;
  ASSERT_TRUE(r.GetU8(u8).ok());
  ASSERT_TRUE(r.GetU32(u32).ok());
  ASSERT_TRUE(r.GetU64(u64).ok());
  ASSERT_TRUE(r.GetBool(b1).ok());
  ASSERT_TRUE(r.GetBool(b2).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(Bytes, VarintBoundaries) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xffffffffULL,
                                  0xffffffffffffffffULL};
  for (const std::uint64_t v : values) {
    ByteWriter w;
    w.PutVarint(v);
    ByteReader r(w.data());
    std::uint64_t out = 0;
    ASSERT_TRUE(r.GetVarint(out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(Bytes, VarintSizeIsMinimal) {
  ByteWriter w;
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 1u);
  w.PutVarint(128);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(Bytes, StringsWithEmbeddedNulAndUnicode) {
  const std::string tricky("a\0b\xc3\xa9", 5);
  ByteWriter w;
  w.PutString(tricky);
  w.PutString("");
  ByteReader r(w.data());
  std::string s1;
  std::string s2 = "junk";
  ASSERT_TRUE(r.GetString(s1).ok());
  ASSERT_TRUE(r.GetString(s2).ok());
  EXPECT_EQ(s1, tricky);
  EXPECT_EQ(s2, "");
}

TEST(Bytes, ReaderRejectsTruncation) {
  ByteWriter w;
  w.PutU64(1);
  ByteReader r(w.data().data(), 3);  // truncated
  std::uint64_t v = 0;
  EXPECT_EQ(r.GetU64(v).code(), StatusCode::kCorruption);
}

TEST(Bytes, ReaderRejectsStringLengthBeyondBuffer) {
  ByteWriter w;
  w.PutVarint(1000);  // claims 1000 bytes follow
  w.PutRaw("abc", 3);
  ByteReader r(w.data());
  std::string s;
  EXPECT_EQ(r.GetString(s).code(), StatusCode::kCorruption);
}

TEST(Bytes, ReaderRejectsOverlongVarint) {
  std::vector<std::uint8_t> bad(11, 0x80);  // never terminates
  ByteReader r(bad);
  std::uint64_t v = 0;
  EXPECT_EQ(r.GetVarint(v).code(), StatusCode::kCorruption);
}

TEST(Bytes, ExpectEndCatchesTrailingGarbage) {
  ByteWriter w;
  w.PutU8(1);
  w.PutU8(2);
  ByteReader r(w.data());
  std::uint8_t v = 0;
  ASSERT_TRUE(r.GetU8(v).ok());
  EXPECT_EQ(r.ExpectEnd().code(), StatusCode::kCorruption);
}

TEST(Bytes, BoolRejectsNonBinary) {
  ByteWriter w;
  w.PutU8(2);
  ByteReader r(w.data());
  bool b = false;
  EXPECT_EQ(r.GetBool(b).code(), StatusCode::kCorruption);
}

TEST(Crc32c, KnownVectorsAndSensitivity) {
  // Standard CRC-32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Any single-bit flip changes the checksum.
  const std::string data = "the quick brown fox";
  const std::uint32_t base = Crc32c(data.data(), data.size());
  std::string flipped = data;
  flipped[5] ^= 0x01;
  EXPECT_NE(Crc32c(flipped.data(), flipped.size()), base);
}

TEST(Bytes, TakeResetsWriter) {
  ByteWriter w;
  w.PutU8(1);
  const auto bytes = w.Take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(w.size(), 0u);
  w.PutU8(2);
  EXPECT_EQ(w.size(), 1u);
}

}  // namespace
}  // namespace repdir
