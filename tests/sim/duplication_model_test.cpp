// NetworkModel duplication knob.
#include <gtest/gtest.h>

#include "sim/network_model.h"

namespace repdir::sim {
namespace {

TEST(NetworkModelDuplication, OffByDefault) {
  NetworkModel net;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(net.ShouldDuplicate(1, 2));
  }
}

TEST(NetworkModelDuplication, MatchesConfiguredProbability) {
  NetworkModel net(42);
  LinkSpec spec;
  spec.duplicate_probability = 0.4;
  net.SetDefaultLink(spec);
  int duplicated = 0;
  for (int i = 0; i < 5000; ++i) {
    duplicated += net.ShouldDuplicate(1, 2);
  }
  EXPECT_NEAR(duplicated / 5000.0, 0.4, 0.03);
}

TEST(NetworkModelDuplication, PerLinkOverride) {
  NetworkModel net(7);
  LinkSpec dup;
  dup.duplicate_probability = 1.0;
  net.SetLink(1, 2, dup);
  EXPECT_TRUE(net.ShouldDuplicate(1, 2));
  EXPECT_FALSE(net.ShouldDuplicate(2, 1));
  EXPECT_FALSE(net.ShouldDuplicate(1, 3));
}

}  // namespace
}  // namespace repdir::sim
