// Discrete-event simulation: event ordering, virtual time, and the network
// fault/latency model.
#include <gtest/gtest.h>

#include "sim/network_model.h"
#include "sim/simulation.h"

namespace repdir::sim {
namespace {

TEST(EventQueue, RunsInTimeOrderWithFifoTies) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(20, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(10, [&] { order.push_back(2); });  // same time: FIFO
  q.ScheduleAt(30, [&] { order.push_back(4); });
  while (!q.empty()) q.RunOne();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] {
    order.push_back(1);
    q.ScheduleAt(15, [&] { order.push_back(2); });
  });
  q.ScheduleAt(20, [&] { order.push_back(3); });
  while (!q.empty()) q.RunOne();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, ClockAdvancesToEventTimes) {
  Simulation sim;
  std::vector<TimeMicros> seen;
  sim.After(100, [&] { seen.push_back(sim.Now()); });
  sim.After(50, [&] {
    seen.push_back(sim.Now());
    sim.After(25, [&] { seen.push_back(sim.Now()); });
  });
  sim.RunUntil();
  EXPECT_EQ(seen, (std::vector<TimeMicros>{50, 75, 100}));
  EXPECT_TRUE(sim.Idle());
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int ran = 0;
  sim.After(10, [&] { ++ran; });
  sim.After(100, [&] { ++ran; });
  EXPECT_EQ(sim.RunUntil(50), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), 50u);
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunUntil();
  EXPECT_EQ(ran, 2);
}

TEST(Simulation, StepExecutesOne) {
  Simulation sim;
  int ran = 0;
  sim.After(5, [&] { ++ran; });
  sim.After(6, [&] { ++ran; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(NetworkModel, PerfectByDefault) {
  NetworkModel net;
  const auto d = net.DeliveryDelay(1, 2);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 0u);
}

TEST(NetworkModel, DownNodeRejectsTraffic) {
  NetworkModel net;
  net.SetNodeUp(2, false);
  EXPECT_FALSE(net.DeliveryDelay(1, 2).ok());
  EXPECT_FALSE(net.DeliveryDelay(2, 1).ok());
  EXPECT_TRUE(net.DeliveryDelay(1, 3).ok());
  net.SetNodeUp(2, true);
  EXPECT_TRUE(net.DeliveryDelay(1, 2).ok());
}

TEST(NetworkModel, PartitionIsSymmetricAndHealable) {
  NetworkModel net;
  net.Partition(1, 2);
  EXPECT_FALSE(net.DeliveryDelay(1, 2).ok());
  EXPECT_FALSE(net.DeliveryDelay(2, 1).ok());
  EXPECT_TRUE(net.DeliveryDelay(1, 3).ok());
  net.Heal(1, 2);
  EXPECT_TRUE(net.DeliveryDelay(1, 2).ok());
  net.Partition(1, 2);
  net.Partition(1, 3);
  net.HealAll();
  EXPECT_TRUE(net.DeliveryDelay(1, 2).ok());
  EXPECT_TRUE(net.DeliveryDelay(1, 3).ok());
}

TEST(NetworkModel, OneWayPartitionIsAsymmetric) {
  NetworkModel net;
  net.PartitionOneWay(1, 2);
  // The half-open link: 1 -> 2 drops while 2 -> 1 still delivers.
  EXPECT_FALSE(net.DeliveryDelay(1, 2).ok());
  EXPECT_TRUE(net.DeliveryDelay(2, 1).ok());
  EXPECT_TRUE(net.IsCut(1, 2));
  EXPECT_FALSE(net.IsCut(2, 1));

  net.HealOneWay(1, 2);
  EXPECT_TRUE(net.DeliveryDelay(1, 2).ok());
}

TEST(NetworkModel, HealClearsBothDirections) {
  NetworkModel net;
  net.PartitionOneWay(2, 1);
  net.Heal(1, 2);  // symmetric heal removes one-way cuts either way round
  EXPECT_TRUE(net.DeliveryDelay(2, 1).ok());

  net.PartitionOneWay(1, 2);
  net.PartitionOneWay(2, 1);  // both one-way cuts == a full partition
  EXPECT_FALSE(net.DeliveryDelay(1, 2).ok());
  EXPECT_FALSE(net.DeliveryDelay(2, 1).ok());
  net.HealAll();
  EXPECT_TRUE(net.DeliveryDelay(1, 2).ok());
  EXPECT_TRUE(net.DeliveryDelay(2, 1).ok());
}

TEST(NetworkModel, LatencyBaseAndJitter) {
  NetworkModel net(5);
  net.SetDefaultLink(LinkSpec{100, 50, 0.0});
  for (int i = 0; i < 200; ++i) {
    const auto d = net.DeliveryDelay(1, 2);
    ASSERT_TRUE(d.ok());
    EXPECT_GE(*d, 100u);
    EXPECT_LE(*d, 150u);
  }
}

TEST(NetworkModel, PerLinkOverride) {
  NetworkModel net;
  net.SetDefaultLink(LinkSpec{10, 0, 0.0});
  net.SetLink(1, 2, LinkSpec{500, 0, 0.0});
  EXPECT_EQ(*net.DeliveryDelay(1, 2), 500u);
  EXPECT_EQ(*net.DeliveryDelay(2, 1), 10u);  // direction-specific
  EXPECT_EQ(*net.DeliveryDelay(1, 3), 10u);
}

TEST(NetworkModel, DropProbability) {
  NetworkModel net(77);
  net.SetDefaultLink(LinkSpec{0, 0, 0.25});
  int dropped = 0;
  for (int i = 0; i < 4000; ++i) {
    if (!net.DeliveryDelay(1, 2).ok()) ++dropped;
  }
  EXPECT_NEAR(dropped / 4000.0, 0.25, 0.03);
}

}  // namespace
}  // namespace repdir::sim
