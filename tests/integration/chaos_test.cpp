// Chaos property test: a seeded storm of operations interleaved with node
// crashes (losing unflushed log tails), recoveries, and partitions. After
// the storm heals, the deployment must be exactly consistent with the model
// of committed operations on every read quorum, and every representative
// structurally sound.
#include <gtest/gtest.h>

#include "invariants.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, RandomFaultsNeverBreakConsistency) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  DirRepNodeOptions node_options = SuiteHarness::DefaultNodeOptions();
  node_options.enable_wal = true;
  SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2), node_options);
  auto suite = harness.NewSuite(100, nullptr, seed * 13 + 5);

  std::map<UserKey, Value> model;
  std::array<bool, 4> up = {true, true, true, true};  // 1-indexed

  std::uint64_t committed = 0;
  for (int step = 0; step < 600; ++step) {
    const double roll = rng.NextDouble();

    if (roll < 0.04) {
      // Crash a node (only if the other two are up, so progress remains
      // possible and crashed state always recovers from a durable log).
      const NodeId victim = static_cast<NodeId>(1 + rng.Below(3));
      int up_count = 0;
      for (int n = 1; n <= 3; ++n) up_count += up[static_cast<std::size_t>(n)];
      if (up[victim] && up_count == 3) {
        harness.network().SetNodeUp(victim, false);
        harness.node(victim).Crash();
        up[victim] = false;
      }
    } else if (roll < 0.10) {
      // Recover any down node.
      for (NodeId n = 1; n <= 3; ++n) {
        if (!up[n]) {
          const auto outcome = harness.node(n).Recover();
          ASSERT_TRUE(outcome.ok()) << outcome.status();
          // Single-shot suite ops never leave prepared-undecided state
          // behind on a crash *between* ops, but resolve defensively.
          for (const TxnId txn : outcome->in_doubt) {
            ASSERT_TRUE(harness.node(n).ResolveInDoubt(txn, false).ok());
          }
          harness.network().SetNodeUp(n, true);
          up[n] = true;
          break;
        }
      }
    } else {
      // A directory operation; applied to the model only when committed.
      const std::string key = "k" + std::to_string(rng.Below(30));
      const double op = rng.NextDouble();
      if (op < 0.35) {
        const Status st = suite->Insert(key, "v" + std::to_string(step));
        if (st.ok()) {
          model[key] = "v" + std::to_string(step);
          ++committed;
        } else {
          ASSERT_TRUE(st.code() == StatusCode::kAlreadyExists ||
                      st.code() == StatusCode::kUnavailable)
              << st;
        }
      } else if (op < 0.6) {
        const Status st = suite->Update(key, "u" + std::to_string(step));
        if (st.ok()) {
          ASSERT_TRUE(model.contains(key));
          model[key] = "u" + std::to_string(step);
          ++committed;
        } else {
          ASSERT_TRUE(st.code() == StatusCode::kNotFound ||
                      st.code() == StatusCode::kUnavailable)
              << st;
        }
      } else if (op < 0.8) {
        const Status st = suite->Delete(key);
        if (st.ok()) {
          ASSERT_TRUE(model.contains(key));
          model.erase(key);
          ++committed;
        } else {
          ASSERT_TRUE(st.code() == StatusCode::kNotFound ||
                      st.code() == StatusCode::kUnavailable)
              << st;
        }
      } else {
        const auto r = suite->Lookup(key);
        if (r.ok()) {
          EXPECT_EQ(r->found, model.contains(key)) << "step " << step;
          if (r->found) {
            EXPECT_EQ(r->value, model[key]);
          }
        } else {
          ASSERT_EQ(r.status().code(), StatusCode::kUnavailable);
        }
      }
    }
  }

  // Heal everything and check global agreement.
  for (NodeId n = 1; n <= 3; ++n) {
    if (!up[n]) {
      const auto outcome = harness.node(n).Recover();
      ASSERT_TRUE(outcome.ok());
      for (const TxnId txn : outcome->in_doubt) {
        ASSERT_TRUE(harness.node(n).ResolveInDoubt(txn, false).ok());
      }
      harness.network().SetNodeUp(n, true);
    }
  }
  EXPECT_GT(committed, 100u);
  EXPECT_TRUE(AllRepsWellFormed(harness));
  EXPECT_TRUE(AllQuorumsAgree(harness, model));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace repdir::test
