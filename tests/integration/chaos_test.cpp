// Chaos property test, driven by the shared campaign harness (src/chaos):
// a seeded storm of operations interleaved with node crashes (losing
// unflushed or torn log tails), asymmetric partitions, lossy/duplicating
// links, and checkpoints. After the storm heals, every read quorum must
// agree exactly with the model of committed operations and every
// representative must be structurally sound — across uniform and weighted
// vote assignments, with and without the version cache.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "chaos/campaign.h"

namespace repdir::test {
namespace {

using chaos::FindScenario;
using chaos::GenerateSchedule;
using chaos::RunOutcome;
using chaos::RunSchedule;
using chaos::ScenarioSpec;
using chaos::Schedule;

class ChaosTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(ChaosTest, RandomFaultsNeverBreakConsistency) {
  const auto& [scenario_name, seed] = GetParam();
  const auto spec = FindScenario(scenario_name);
  ASSERT_TRUE(spec.ok()) << spec.status();

  const Schedule schedule = GenerateSchedule(*spec, seed);
  const RunOutcome outcome = RunSchedule(*spec, schedule, seed);
  EXPECT_TRUE(outcome.ok()) << outcome.verdict.ToString()
                            << "\nreplay with: chaos_campaign --scenario "
                            << scenario_name << " --replay-seed " << seed;
  // The storm must actually exercise the system, not just fail everything.
  EXPECT_GT(outcome.ops_committed, 20u);
  EXPECT_GT(outcome.crashes, 0u);
}

// Five topologies from the builtin library: the classic 3-node uniform
// config, a 5-node weighted config (votes 2-1-1-1-2, R=W=4), a 5-node
// config with a weak replica running with the version cache enabled, and
// two latency-aware runs - a persistent straggler the adaptive planner
// steers (and hedges) around, and a flapping membership cycling through
// quarantine and probation.
INSTANTIATE_TEST_SUITE_P(
    Seeds, ChaosTest,
    ::testing::Combine(::testing::Values("uniform-3-2-2", "weighted-5-4-4",
                                         "cached-weak-5-2-3",
                                         "slow-node-3-2-2",
                                         "flapping-node-3-2-2"),
                       ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u)),
    [](const auto& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace repdir::test
