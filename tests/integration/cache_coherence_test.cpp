// Version-cache coherence across clients: a suite's cached versions can go
// stale the moment another client commits, and the guarded-write protocol
// must turn every stale bet into a clean fallback - never a stale read or a
// lost update. The deterministic InProcTransport harness drives two suites
// (one cached, one plain) against the same representatives.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rep/dir_suite.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

/// 3 replicas, R=2, W=2: 2W > V, so guarded fast-path writes are armed.
QuorumConfig SmallConfig() { return QuorumConfig::Uniform(3, 2, 2); }

TEST(CacheCoherence, FastPathWritesEngageOnRepeatedUpdates) {
  SuiteHarness harness(SmallConfig());
  auto suite = harness.NewSuite(100, nullptr, 42, /*enable_cache=*/true);

  ASSERT_TRUE(suite->Insert("k", "v0").ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(suite->Update("k", "v" + std::to_string(i)).ok());
  }
  const auto& c = suite->stats().counters();
  EXPECT_EQ(c.fast_path_writes, 5u);  // every update after the insert
  EXPECT_EQ(c.cache_fallbacks, 0u);

  // A plain client agrees on the final value.
  auto reader = harness.NewSuite(101);
  const auto read = reader->Lookup("k");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->found);
  EXPECT_EQ(read->value, "v5");
}

TEST(CacheCoherence, ConcurrentDeleteForcesMismatchFallbackNotStaleWrite) {
  // The issue's core scenario: A caches k's entry version, B deletes k,
  // A updates k. The guarded write must lose (kVersionMismatch at a write
  // intersection member), fall back to read-then-write, and surface
  // kNotFound - never resurrect k or write behind the coalesced gap.
  SuiteHarness harness(SmallConfig());
  auto a = harness.NewSuite(100, nullptr, 42, /*enable_cache=*/true);
  auto b = harness.NewSuite(101, nullptr, 43);

  ASSERT_TRUE(a->Insert("k", "va").ok());
  ASSERT_TRUE(b->Delete("k").ok());

  EXPECT_EQ(a->Update("k", "stale").code(), StatusCode::kNotFound);
  const auto& c = a->stats().counters();
  EXPECT_GE(c.cache_fallbacks, 1u);
  EXPECT_GE(c.cache_invalidations, 1u);
  EXPECT_EQ(c.fast_path_writes, 0u);

  // Nothing resurrected, on either client's view.
  for (auto* suite : {a.get(), b.get()}) {
    const auto read = suite->Lookup("k");
    ASSERT_TRUE(read.ok());
    EXPECT_FALSE(read->found);
  }
}

TEST(CacheCoherence, ConcurrentInsertForcesFallbackToAlreadyExists) {
  // Mirror image: A caches k as absent (a gap version), B inserts k, A
  // inserts k. The stale-gap guard must refuse and the fallback must
  // report kAlreadyExists - a stale gap version must never clobber B's
  // entry with an equal-or-lower-versioned one.
  SuiteHarness harness(SmallConfig());
  auto a = harness.NewSuite(100, nullptr, 42, /*enable_cache=*/true);
  auto b = harness.NewSuite(101, nullptr, 43);

  const auto miss = a->Lookup("k");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->found);  // a now caches the gap's version

  ASSERT_TRUE(b->Insert("k", "vb").ok());
  EXPECT_EQ(a->Insert("k", "va").code(), StatusCode::kAlreadyExists);
  EXPECT_GE(a->stats().counters().cache_fallbacks, 1u);

  const auto read = a->Lookup("k");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->found);
  EXPECT_EQ(read->value, "vb");  // B's value survived
}

TEST(CacheCoherence, ValidatedReadsSeeOtherClientsWrites) {
  SuiteHarness harness(SmallConfig());
  auto a = harness.NewSuite(100, nullptr, 42, /*enable_cache=*/true);
  auto b = harness.NewSuite(101, nullptr, 43);

  ASSERT_TRUE(a->Insert("k", "v1").ok());
  const auto warm = a->Lookup("k");  // cached hit, "unchanged" quorum
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->value, "v1");
  EXPECT_GE(a->stats().counters().validated_reads, 1u);

  ASSERT_TRUE(b->Update("k", "v2").ok());
  const auto fresh = a->Lookup("k");  // hint is stale: replies carry v2
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->found);
  EXPECT_EQ(fresh->value, "v2");

  // And the refreshed cache serves the new version on the next hit.
  const auto again = a->Lookup("k");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->value, "v2");
}

TEST(CacheCoherence, GhostHeavyDeleteNeverReadsAsPresent) {
  // Ghost scenario, scripted quorums: k is inserted through {1,2} and
  // deleted through quorums touching {2,3} - node 1 keeps a stale present
  // copy (a ghost). A cached client that knew k's entry version must not
  // let the ghost + stale cache resurrect the entry: lookups say absent,
  // an update says kNotFound, and a re-insert wins with a higher version.
  SuiteHarness harness(SmallConfig());
  auto [a, a_policy] =
      harness.NewScriptedSuite(100, /*enable_cache=*/true);
  auto [b, b_policy] = harness.NewScriptedSuite(101);

  a_policy->SetDefault({1, 2, 3});
  ASSERT_TRUE(a->Insert("k", "va").ok());   // write quorum {1, 2}
  const auto warm = a->Lookup("k");         // cache k's entry version
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->found);

  b_policy->SetDefault({3, 2, 1});
  ASSERT_TRUE(b->Delete("k").ok());  // quorums {3, 2}: node 1 keeps a ghost

  // Node 1 still holds k as present - by construction a ghost.
  EXPECT_NE(harness.Dump(1).find("k"), std::string::npos);

  // Stale cache + ghost member in the quorum: still absent.
  a_policy->SetDefault({1, 2, 3});
  const auto read = a->Lookup("k");
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->found);

  // Guarded update through the ghost-favoring order must fall back to
  // kNotFound (node 2 saw the delete and its gap version wins the guard).
  auto [a2, a2_policy] =
      harness.NewScriptedSuite(102, /*enable_cache=*/true);
  a2_policy->SetDefault({1, 2, 3});
  ASSERT_TRUE(a2->Insert("j", "x").ok());  // unrelated: prove a2 works
  EXPECT_EQ(a2->Update("k", "stale").code(), StatusCode::kNotFound);

  // Re-insert through the cached client; every reader then sees the new
  // value - the ghost's old version lost permanently.
  ASSERT_TRUE(a->Insert("k", "vnew").ok());
  for (auto* suite : {a.get(), b.get()}) {
    const auto fresh = suite->Lookup("k");
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(fresh->found);
    EXPECT_EQ(fresh->value, "vnew");
  }
}

TEST(CacheCoherence, OwnDeleteInvalidatesCachedRangeAndRecachesGap) {
  // Client-side range invalidation: after this client's own delete
  // coalesces [pred, succ], its cached entries inside the range are gone
  // and the deleted key is re-cached as absent at the gap version - so an
  // immediate re-insert takes the fast path and still versions above the
  // coalesced gap.
  SuiteHarness harness(SmallConfig());
  auto suite = harness.NewSuite(100, nullptr, 42, /*enable_cache=*/true);

  ASSERT_TRUE(suite->Insert("a", "1").ok());
  ASSERT_TRUE(suite->Insert("m", "2").ok());
  ASSERT_TRUE(suite->Insert("z", "3").ok());

  const auto before = suite->stats().counters().cache_invalidations;
  ASSERT_TRUE(suite->Delete("m").ok());  // coalesces [a, z]
  EXPECT_GT(suite->stats().counters().cache_invalidations, before);

  // Fast-path re-insert from the re-cached gap version.
  const auto fast_before = suite->stats().counters().fast_path_writes;
  ASSERT_TRUE(suite->Insert("m", "again").ok());
  EXPECT_GT(suite->stats().counters().fast_path_writes, fast_before);

  auto reader = harness.NewSuite(101);
  const auto read = reader->Lookup("m");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->found);
  EXPECT_EQ(read->value, "again");
}

TEST(CacheCoherence, NonIntersectingWriteQuorumsDisableFastPathOnly) {
  // 4 replicas, R=3, W=2: legal for read-then-write (R+W > V) but write
  // quorums need not intersect, so guarded fast-path writes must stay off
  // while validated reads keep working.
  SuiteHarness harness(QuorumConfig::Uniform(4, 3, 2));
  auto suite = harness.NewSuite(100, nullptr, 42, /*enable_cache=*/true);

  ASSERT_TRUE(suite->Insert("k", "v1").ok());
  ASSERT_TRUE(suite->Update("k", "v2").ok());
  ASSERT_TRUE(suite->Update("k", "v3").ok());
  const auto read = suite->Lookup("k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "v3");

  const auto& c = suite->stats().counters();
  EXPECT_EQ(c.fast_path_writes, 0u);
  EXPECT_GE(c.validated_reads, 1u);
}

TEST(CacheCoherence, CachedSuiteSurvivesMemberOutage) {
  // Optimistic quorums skip the ping wave, so a down preferred member
  // surfaces mid-wave; the fallback must re-run with pings and succeed on
  // the surviving majority.
  SuiteHarness harness(SmallConfig());
  auto suite = harness.NewSuite(100, nullptr, 42, /*enable_cache=*/true);

  ASSERT_TRUE(suite->Insert("k", "v0").ok());
  ASSERT_TRUE(suite->Update("k", "v1").ok());  // fast path, all up

  harness.network().SetNodeUp(1, false);
  for (int i = 2; i <= 4; ++i) {
    ASSERT_TRUE(suite->Update("k", "v" + std::to_string(i)).ok());
  }
  harness.network().SetNodeUp(1, true);

  auto reader = harness.NewSuite(101);
  const auto read = reader->Lookup("k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "v4");
}

}  // namespace
}  // namespace repdir::test
