// Scale smoke tests: bigger structures and wider suites than the unit
// tests touch, still fast enough for CI.
#include <gtest/gtest.h>

#include "invariants.h"
#include "storage/btree_storage.h"
#include "suite_harness.h"
#include "wl/adapters.h"
#include "wl/key_gen.h"
#include "wl/workload.h"

namespace repdir::test {
namespace {

TEST(Scale, BTreeTenThousandEntriesStaysSound) {
  storage::BTreeStorage tree(16);
  Rng rng(1);
  // Random insertion order of 10k keys.
  std::vector<std::uint64_t> keys(10'000);
  for (std::uint64_t i = 0; i < keys.size(); ++i) keys[i] = i;
  rng.Shuffle(keys);
  for (const std::uint64_t k : keys) {
    tree.Put(storage::StoredEntry{storage::RepKey::User(wl::NumericKey(k)),
                                  1, "v", 0});
  }
  EXPECT_EQ(tree.UserEntryCount(), 10'000u);
  EXPECT_TRUE(tree.CheckStructure());
  EXPECT_GE(tree.Height(), 3);

  // Delete a random half, verify structure and the survivors.
  rng.Shuffle(keys);
  for (std::size_t i = 0; i < keys.size() / 2; ++i) {
    tree.Erase(storage::RepKey::User(wl::NumericKey(keys[i])));
  }
  EXPECT_TRUE(tree.CheckStructure());
  EXPECT_EQ(tree.UserEntryCount(), 5'000u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const bool deleted = i < keys.size() / 2;
    EXPECT_EQ(
        tree.Get(storage::RepKey::User(wl::NumericKey(keys[i]))).has_value(),
        !deleted);
  }
}

TEST(Scale, SevenReplicaSuiteWithModelCheck) {
  SuiteHarness harness(QuorumConfig::Uniform(7, 4, 4));
  auto suite = harness.NewSuite(100, nullptr, 31);
  wl::SuiteClient client(*suite);

  wl::WorkloadOptions options;
  options.target_size = 60;
  options.operations = 1'200;
  options.verify_against_model = true;
  options.key_space = 3'000;
  wl::SteadyStateWorkload workload(client, options);
  ASSERT_TRUE(workload.Fill().ok());
  ASSERT_TRUE(workload.Run().ok());
  EXPECT_EQ(workload.report().mismatches, 0u);
  EXPECT_TRUE(AllRepsWellFormed(harness));
  // 2^7 quorum subsets x all keys: still fast, very thorough.
  EXPECT_TRUE(AllQuorumsAgree(harness, workload.model()));
}

TEST(Scale, ZipfianHotKeyChurnStaysConsistent) {
  // Heavy-skew single-client churn: the same few keys are inserted,
  // updated, and deleted over and over through ever-changing quorums -
  // worst case for ghost accumulation on one spot of the key space.
  SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2));
  auto suite = harness.NewSuite(100, nullptr, 17);
  Rng rng(23);
  wl::ZipfianKeys hot(20, 0.99);

  std::map<UserKey, Value> model;
  for (int step = 0; step < 3'000; ++step) {
    const UserKey key = hot.Next(rng);
    if (model.contains(key)) {
      if (rng.Chance(0.5)) {
        ASSERT_TRUE(suite->Update(key, std::to_string(step)).ok());
        model[key] = std::to_string(step);
      } else {
        ASSERT_TRUE(suite->Delete(key).ok());
        model.erase(key);
      }
    } else {
      ASSERT_TRUE(suite->Insert(key, std::to_string(step)).ok());
      model[key] = std::to_string(step);
    }
  }
  EXPECT_TRUE(AllRepsWellFormed(harness));
  EXPECT_TRUE(AllQuorumsAgree(harness, model));
  // Churned keys have high versions; they must not have overflowed into
  // pathological structures (a few ghosts at most per representative).
  for (const auto& replica : harness.config().replicas()) {
    EXPECT_LE(harness.node(replica.node).storage().UserEntryCount(),
              model.size() + 20)
        << harness.Dump(replica.node);
  }
}

}  // namespace
}  // namespace repdir::test
