// Observability integration: the metrics a deployment reports must
// reconcile exactly with the transport's own accounting and the suite's
// SuiteStats, and reading metrics must not perturb a deterministic run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "sim/network_model.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

rep::DirectorySuite::Options SuiteOptions(const SuiteHarness& harness,
                                          MetricsRegistry* metrics,
                                          TraceSink* trace) {
  rep::DirectorySuite::Options options;
  options.config = harness.config();
  options.policy_seed = 7;
  options.metrics = metrics;
  options.trace = trace;
  return options;
}

/// A fixed workload with a known op mix; returns per-op success counts.
void RunWorkload(rep::DirectorySuite& suite) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(suite.Insert("k" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(suite.Update("k" + std::to_string(i), "u").ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(suite.Delete("k" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(suite.Lookup("k" + std::to_string(i)).ok());
  }
  // One clean check failure: the body aborts (no partial state), the op is
  // not counted as a committed insert.
  EXPECT_EQ(suite.Insert("k5", "dup").code(), StatusCode::kAlreadyExists);
}

TEST(Observability, MetricsReconcileWithTransportAndSuiteStats) {
  MetricsRegistry registry;
  DirRepNodeOptions node_options = SuiteHarness::DefaultNodeOptions();
  node_options.enable_wal = true;
  node_options.participant.metrics = &registry;
  SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2), node_options);

  rep::DirectorySuite suite(harness.transport(), 100,
                            SuiteOptions(harness, &registry, nullptr));
  RunWorkload(suite);

  // The suite is this transport's only client, and both sides count every
  // attempt (the transport at Call entry, the client around each issue), so
  // the totals must match exactly.
  EXPECT_EQ(registry.counter("rpc.attempts").value(),
            harness.transport().TotalAttempts());
  EXPECT_GT(registry.counter("rpc.attempts").value(), 0u);
  EXPECT_EQ(registry.counter("rpc.retries").value(), 0u);  // clean network

  // Suite op counters mirror SuiteStats one-for-one.
  const auto& counters = suite.stats().counters();
  EXPECT_EQ(registry.counter("suite.ops.inserts").value(), counters.inserts);
  EXPECT_EQ(registry.counter("suite.ops.updates").value(), counters.updates);
  EXPECT_EQ(registry.counter("suite.ops.deletes").value(), counters.deletes);
  EXPECT_EQ(registry.counter("suite.ops.lookups").value(), counters.lookups);
  EXPECT_EQ(counters.inserts, 10u);
  EXPECT_EQ(counters.updates, 5u);
  EXPECT_EQ(counters.deletes, 3u);
  EXPECT_EQ(counters.lookups, 7u);

  // 2PC outcomes: every successful mutation commits through full 2PC, every
  // successful lookup through the read-only fast path, and the duplicate
  // insert aborts.
  EXPECT_EQ(registry.counter("txn.2pc.committed").value(), 18u);
  EXPECT_EQ(registry.counter("txn.2pc.readonly_committed").value(), 7u);
  EXPECT_EQ(registry.counter("txn.2pc.aborted").value(), 1u);

  // Per-op latency distributions saw every operation.
  EXPECT_EQ(registry.distribution("suite.op.insert_us").count(), 11u);
  EXPECT_EQ(registry.distribution("suite.op.update_us").count(), 5u);
  EXPECT_EQ(registry.distribution("suite.op.delete_us").count(), 3u);
  EXPECT_EQ(registry.distribution("suite.op.lookup_us").count(), 7u);

  // Quorum-size distributions record one sample per collection, sized
  // within [quorum, replicas].
  const auto reads = registry.distribution("suite.quorum.read_size").Moments();
  ASSERT_GT(reads.count(), 0u);
  EXPECT_GE(reads.min(), 2.0);
  EXPECT_LE(reads.max(), 3.0);

  // The deployment-side metrics flowed into the same registry.
  EXPECT_GT(registry.counter("lock.acquisitions").value(), 0u);
  EXPECT_GT(registry.counter("wal.appends").value(), 0u);
  EXPECT_GT(registry.counter("wal.flushes").value(), 0u);

  // Ghost/coalesce mirrors agree with the Fig. 15 accumulators (each delete
  // adds one sample whose value is the work done for that delete).
  const auto& ghosts = suite.stats().deletions_while_coalescing();
  EXPECT_EQ(registry.counter("suite.delete.ghosts").value(),
            static_cast<std::uint64_t>(ghosts.mean() * ghosts.count() + 0.5));
  const auto& fills = suite.stats().insertions_while_coalescing();
  EXPECT_EQ(registry.counter("suite.delete.materializations").value(),
            static_cast<std::uint64_t>(fills.mean() * fills.count() + 0.5));
}

TEST(Observability, FlakyRunStillReconcilesAttemptCounts) {
  MetricsRegistry registry;
  SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2));
  harness.network().SetDefaultLink(sim::LinkSpec{0, 0, 0.2});

  auto options = SuiteOptions(harness, &registry, nullptr);
  options.rpc_retry.max_attempts = 5;
  options.rpc_retry.sleep = [](DurationMicros) {};  // instant, deterministic
  rep::DirectorySuite suite(harness.transport(), 100, std::move(options));

  int ok = 0;
  for (int i = 0; i < 30; ++i) {
    if (suite.Insert("k" + std::to_string(i), "v").ok()) ++ok;
  }
  EXPECT_GT(ok, 0);
  // Retries and failures happened and were counted on both sides equally.
  EXPECT_GT(registry.counter("rpc.retries").value(), 0u);
  EXPECT_GT(registry.counter("rpc.failures").value(), 0u);
  EXPECT_EQ(registry.counter("rpc.attempts").value(),
            harness.transport().TotalAttempts());
}

TEST(Observability, ReadingMetricsDoesNotPerturbDeterministicRuns) {
  // Run A: private registry + tracing on, metrics rendered mid-run.
  // Run B: defaults, nothing read. Same seeds everywhere - the replicated
  // state must be byte-identical: observability is strictly passive.
  auto run = [](bool observed) {
    DirRepNodeOptions node_options = SuiteHarness::DefaultNodeOptions();
    node_options.enable_wal = true;
    auto harness = std::make_unique<SuiteHarness>(
        QuorumConfig::Uniform(3, 2, 2), node_options);
    harness->network().SetDefaultLink(sim::LinkSpec{0, 0, 0.1});

    MetricsRegistry registry;
    TraceSink sink(128);
    rep::DirectorySuite::Options options;
    options.config = harness->config();
    options.policy_seed = 21;
    options.rpc_retry.max_attempts = 3;
    options.rpc_retry.sleep = [](DurationMicros) {};
    if (observed) {
      sink.set_enabled(true);
      options.metrics = &registry;
      options.trace = &sink;
    }
    rep::DirectorySuite suite(harness->transport(), 100, std::move(options));

    std::vector<std::string> outcomes;
    for (int i = 0; i < 25; ++i) {
      const std::string key = "k" + std::to_string(i % 8);
      outcomes.push_back(suite.Insert(key, "v" + std::to_string(i)).ToString());
      outcomes.push_back(suite.Lookup(key).status().ToString());
      if (observed && i % 5 == 0) {
        (void)registry.RenderJson();  // reading must not perturb anything
        (void)sink.DumpJson();
      }
    }
    std::string state;
    for (NodeId n = 1; n <= 3; ++n) state += harness->Dump(n) + "\n";
    for (const std::string& o : outcomes) state += o + "\n";
    return state;
  };

  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace repdir::test
