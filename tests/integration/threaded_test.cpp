// Threaded integration: many client threads drive one deployment over the
// thread-safe transport with blocking locks and a shared deadlock detector.
//
// Checks: disjoint-key workloads proceed without aborts (the per-entry
// concurrency the paper claims); contended workloads stay consistent
// (every quorum gives the same answer afterwards); deadlocks are broken,
// never hung.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lock/deadlock.h"
#include "net/threaded_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

namespace repdir::test {
namespace {

using rep::DirectorySuite;
using rep::DirRepNode;
using rep::DirRepNodeOptions;
using rep::QuorumConfig;
using storage::RepKey;

class ThreadedDeployment {
 public:
  explicit ThreadedDeployment(QuorumConfig config) : config_(config) {
    DirRepNodeOptions options;
    options.detector = &detector_;
    options.participant.blocking_locks = true;
    options.participant.lock_timeout_micros = 5'000'000;
    for (const auto& replica : config_.replicas()) {
      nodes_.push_back(
          std::make_unique<DirRepNode>(replica.node, options));
      transport_.RegisterNode(replica.node, nodes_.back()->server());
    }
  }

  std::unique_ptr<DirectorySuite> NewSuite(NodeId client,
                                           std::uint64_t seed) {
    DirectorySuite::Options options;
    options.config = config_;
    options.policy_seed = seed;
    return std::make_unique<DirectorySuite>(transport_, client,
                                            std::move(options));
  }

  /// Post-run consistency: every read quorum must give one unambiguous
  /// answer for every key found anywhere.
  bool QuorumsConsistent() {
    std::set<UserKey> keys;
    for (auto& node : nodes_) {
      for (const auto& e : node->storage().Scan()) {
        if (e.key.is_user()) keys.insert(e.key.user());
      }
    }
    const std::uint32_t n = static_cast<std::uint32_t>(nodes_.size());
    for (const auto& key : keys) {
      bool have_answer = false;
      bool answer = false;
      for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
        Votes votes = 0;
        Version best_version = 0;
        bool best_present = false;
        bool first = true;
        bool tie = false;
        for (std::uint32_t i = 0; i < n; ++i) {
          if (!(mask & (1u << i))) continue;
          votes += config_.replicas()[i].votes;
          const storage::DirRepCore core(nodes_[i]->storage());
          const auto reply = core.Lookup(RepKey::User(key));
          if (first || reply.version > best_version) {
            best_version = reply.version;
            best_present = reply.present;
            first = false;
            tie = false;
          } else if (reply.version == best_version &&
                     reply.present != best_present) {
            tie = true;
          }
        }
        if (votes < config_.read_quorum()) continue;
        if (tie) return false;
        if (!have_answer) {
          have_answer = true;
          answer = best_present;
        } else if (answer != best_present) {
          return false;
        }
      }
    }
    return true;
  }

  lock::DeadlockDetector& detector() { return detector_; }
  DirRepNode& node(std::size_t i) { return *nodes_[i]; }

 private:
  QuorumConfig config_;
  lock::DeadlockDetector detector_;
  net::ThreadedTransport transport_;
  std::vector<std::unique_ptr<DirRepNode>> nodes_;
};

TEST(Threaded, DisjointKeyWorkloadsAllComplete) {
  // Each thread owns its own key prefix. Point operations on different
  // prefixes never conflict - but a Delete locks the range out to its REAL
  // NEIGHBORS (Fig. 13), which at a prefix boundary reaches into the next
  // thread's territory, so occasional deadlock aborts at the edges are
  // correct behaviour (the paper's locking, working as specified). Retried
  // operations must always eventually commit; anything else is a bug.
  ThreadedDeployment deploy(QuorumConfig::Uniform(3, 2, 2));
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 60;
  std::atomic<int> unexpected{0};
  std::atomic<int> retried{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto suite = deploy.NewSuite(static_cast<NodeId>(100 + t), 1000 + t);
      const std::string prefix = "t" + std::to_string(t) + "-";
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = prefix + std::to_string(i % 10);
        // Rounds of 10 keys: insert all, update all, delete all, lookup
        // all - every operation's precondition holds, so the only
        // acceptable transient failure is a deadlock-victim abort.
        for (int attempt = 0; attempt < 50; ++attempt) {
          Status st;
          switch ((i / 10) % 4) {
            case 0: st = suite->Insert(key, "v"); break;
            case 1: st = suite->Update(key, "w"); break;
            case 2: st = suite->Delete(key); break;
            default: st = suite->Lookup(key).status(); break;
          }
          if (st.ok()) break;
          if (st.code() != StatusCode::kAborted || attempt == 49) {
            unexpected.fetch_add(1);
            break;
          }
          retried.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(unexpected.load(), 0);
  // Boundary-delete conflicts are rare: the vast majority of operations
  // commit first try.
  EXPECT_LT(retried.load(), kThreads * kOpsPerThread / 4);
  EXPECT_TRUE(deploy.QuorumsConsistent());
}

TEST(Threaded, ContendedKeysStayConsistent) {
  ThreadedDeployment deploy(QuorumConfig::Uniform(3, 2, 2));
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50;
  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};
  std::atomic<int> unexpected{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto suite = deploy.NewSuite(static_cast<NodeId>(200 + t), 2000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Everyone fights over 5 keys.
        const std::string key = "hot" + std::to_string((t + i) % 5);
        Status st;
        if (i % 2 == 0) {
          st = suite->Insert(key, "from-" + std::to_string(t));
        } else {
          st = suite->Delete(key);
        }
        if (st.ok()) {
          committed.fetch_add(1);
        } else if (st.code() == StatusCode::kAborted ||
                   st.code() == StatusCode::kAlreadyExists ||
                   st.code() == StatusCode::kNotFound) {
          aborted.fetch_add(1);  // expected outcomes under contention
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(committed.load(), 0);
  EXPECT_TRUE(deploy.QuorumsConsistent());
}

TEST(Threaded, DeadlocksAreBrokenNotHung) {
  ThreadedDeployment deploy(QuorumConfig::Uniform(3, 3, 3));
  // R=W=3: every op touches every replica, maximizing cross-replica lock
  // interleavings - prime deadlock territory with opposite key orders.
  std::atomic<bool> done1{false};
  std::atomic<bool> done2{false};

  std::thread t1([&] {
    auto suite = deploy.NewSuite(100, 1);
    for (int i = 0; i < 30; ++i) {
      (void)suite->Insert("a", "1");
      (void)suite->Delete("b");
      (void)suite->Insert("b", "1");
      (void)suite->Delete("a");
    }
    done1.store(true);
  });
  std::thread t2([&] {
    auto suite = deploy.NewSuite(101, 2);
    for (int i = 0; i < 30; ++i) {
      (void)suite->Insert("b", "2");
      (void)suite->Delete("a");
      (void)suite->Insert("a", "2");
      (void)suite->Delete("b");
    }
    done2.store(true);
  });

  t1.join();
  t2.join();
  EXPECT_TRUE(done1.load());
  EXPECT_TRUE(done2.load());
  EXPECT_TRUE(deploy.QuorumsConsistent());
}

}  // namespace
}  // namespace repdir::test
