// Crash/recovery integration: a representative crashes (volatile state and
// unflushed log lost), the suite keeps serving on the survivors, and the
// crashed node recovers its durable state from the WAL and rejoins.
#include <gtest/gtest.h>

#include "invariants.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

DirRepNodeOptions WalNodeOptions() {
  DirRepNodeOptions options = SuiteHarness::DefaultNodeOptions();
  options.enable_wal = true;
  return options;
}

class CrashRecovery : public ::testing::Test {
 protected:
  CrashRecovery()
      : harness_(QuorumConfig::Uniform(3, 2, 2), WalNodeOptions()),
        suite_(harness_.NewSuite(100)) {}

  /// Commits every executed transaction's effects durably: the suite's 2PC
  /// appends commit records; a checkpoint also compacts the log.
  void CheckpointAll() {
    for (const auto& replica : harness_.config().replicas()) {
      ASSERT_TRUE(
          harness_.node(replica.node).participant().WriteCheckpoint().ok());
    }
  }

  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
};

TEST_F(CrashRecovery, CrashedNodeRecoversCommittedState) {
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  ASSERT_TRUE(suite_->Insert("b", "2").ok());
  ASSERT_TRUE(suite_->Update("a", "1b").ok());
  ASSERT_TRUE(suite_->Delete("b").ok());

  const auto before = harness_.node(1).storage().Scan();

  harness_.network().SetNodeUp(1, false);
  harness_.node(1).Crash();
  EXPECT_EQ(harness_.node(1).storage().UserEntryCount(), 0u);

  const auto outcome = harness_.node(1).Recover();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->in_doubt.empty());
  EXPECT_EQ(harness_.node(1).storage().Scan(), before);

  harness_.network().SetNodeUp(1, true);
  std::map<UserKey, Value> model{{"a", "1b"}};
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

TEST_F(CrashRecovery, SuiteServesThroughCrashAndNodeRejoins) {
  ASSERT_TRUE(suite_->Insert("k1", "v1").ok());

  // Node 3 dies; the suite keeps going on {1, 2}.
  harness_.network().SetNodeUp(3, false);
  harness_.node(3).Crash();
  ASSERT_TRUE(suite_->Insert("k2", "v2").ok());
  ASSERT_TRUE(suite_->Update("k1", "v1b").ok());
  ASSERT_TRUE(suite_->Delete("k2").ok());

  // Node 3 recovers its pre-crash durable state and rejoins. Its state is
  // stale, but version numbers make that harmless.
  ASSERT_TRUE(harness_.node(3).Recover().ok());
  harness_.network().SetNodeUp(3, true);

  std::map<UserKey, Value> model{{"k1", "v1b"}};
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
  EXPECT_TRUE(AllRepsWellFormed(harness_));

  // And it participates in new writes.
  auto [suite2, policy] = harness_.NewScriptedSuite(101);
  policy->SetDefault({3, 1, 2});
  ASSERT_TRUE(suite2->Insert("k3", "v3").ok());
  EXPECT_TRUE(
      harness_.node(3).storage().Get(RepKey::User("k3")).has_value());
}

TEST_F(CrashRecovery, CheckpointCompactsAndRecovers) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(suite_->Insert("key" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 20; i += 2) {
    ASSERT_TRUE(suite_->Delete("key" + std::to_string(i)).ok());
  }
  CheckpointAll();
  const std::size_t log_after_ckpt = harness_.node(2).log_device()->durable_size();

  // More committed work after the checkpoint.
  ASSERT_TRUE(suite_->Insert("post", "v").ok());

  harness_.network().SetNodeUp(2, false);
  const auto before = harness_.node(2).storage().Scan();
  harness_.node(2).Crash();
  const auto outcome = harness_.node(2).Recover();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->restored_checkpoint);
  EXPECT_EQ(harness_.node(2).storage().Scan(), before);
  EXPECT_GT(log_after_ckpt, 0u);
  harness_.network().SetNodeUp(2, true);
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

TEST_F(CrashRecovery, TornTailIsTruncatedSoLaterCommitsSurviveNextCrash) {
  // Found by the chaos campaign (uniform-3-2-2 seed 36): a torn crash
  // leaves a garbage partial frame at the end of the durable log. Recovery
  // parses up to the tear, but if the tear is not cut off, every record
  // appended afterwards hides behind it and silently vanishes at the NEXT
  // recovery - committed transactions included.
  ASSERT_TRUE(suite_->Insert("a", "1").ok());

  // Node 1 dies mid-append: part of an unflushed frame reaches the medium.
  ASSERT_TRUE(harness_.node(1).log_device()->Append("partial-frame").ok());
  harness_.network().SetNodeUp(1, false);
  harness_.node(1).CrashTorn(9);
  const std::size_t torn_size = harness_.node(1).log_device()->durable_size();
  ASSERT_TRUE(harness_.node(1).Recover().ok());
  EXPECT_EQ(harness_.node(1).log_device()->durable_size(), torn_size - 9);
  harness_.network().SetNodeUp(1, true);

  // Committed work after the torn recovery, written through node 1...
  auto [suite2, policy] = harness_.NewScriptedSuite(101);
  policy->SetDefault({1, 2, 3});
  ASSERT_TRUE(suite2->Insert("b", "2").ok());
  ASSERT_TRUE(
      harness_.node(1).storage().Get(RepKey::User("b")).has_value());

  // ...must survive a second, clean crash of the same node.
  harness_.network().SetNodeUp(1, false);
  harness_.node(1).Crash();
  ASSERT_TRUE(harness_.node(1).Recover().ok());
  harness_.network().SetNodeUp(1, true);
  EXPECT_TRUE(
      harness_.node(1).storage().Get(RepKey::User("b")).has_value());
  std::map<UserKey, Value> model{{"a", "1"}, {"b", "2"}};
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

TEST_F(CrashRecovery, RepeatedCrashRecoverCyclesAreStable) {
  std::map<UserKey, Value> model;
  for (int round = 0; round < 5; ++round) {
    const std::string key = "round" + std::to_string(round);
    ASSERT_TRUE(suite_->Insert(key, "v").ok());
    model[key] = "v";

    const NodeId victim = static_cast<NodeId>(1 + (round % 3));
    harness_.network().SetNodeUp(victim, false);
    harness_.node(victim).Crash();
    ASSERT_TRUE(harness_.node(victim).Recover().ok());
    harness_.network().SetNodeUp(victim, true);

    ASSERT_TRUE(AllQuorumsAgree(harness_, model)) << "round " << round;
  }
}

TEST_F(CrashRecovery, WorkloadSurvivesMidRunCrash) {
  // A longer run where a node crashes (losing whatever was unflushed) and
  // recovers mid-workload; the suite must stay correct throughout.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(suite_->Insert("k" + std::to_string(i), "v").ok());
  }
  std::map<UserKey, Value> model;
  for (int i = 0; i < 30; ++i) model["k" + std::to_string(i)] = "v";

  harness_.network().SetNodeUp(2, false);
  harness_.node(2).Crash();

  for (int i = 0; i < 30; i += 3) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(suite_->Delete(key).ok());
    model.erase(key);
  }

  ASSERT_TRUE(harness_.node(2).Recover().ok());
  harness_.network().SetNodeUp(2, true);
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));

  for (int i = 1; i < 30; i += 3) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(suite_->Update(key, "v2").ok());
    model[key] = "v2";
  }
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

}  // namespace
}  // namespace repdir::test
