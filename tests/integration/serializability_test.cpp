// Serializability under concurrency: the classic bank-transfer invariant.
//
// N accounts live in the replicated directory; worker threads move money
// between random account pairs inside SuiteTxn transactions (read both,
// write both). Under strict 2PL + 2PC, every committed transfer preserves
// the total balance; aborted transfers (deadlock victims, conflicts) must
// leave no trace. At the end the sum of balances must be exactly the
// initial total on every read quorum.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lock/deadlock.h"
#include "net/threaded_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

namespace repdir::test {
namespace {

using rep::DirectorySuite;
using rep::DirRepNode;
using rep::DirRepNodeOptions;
using rep::QuorumConfig;
using rep::SuiteTxn;

constexpr int kAccounts = 8;
constexpr int kInitialBalance = 100;

std::string AccountKey(int i) { return "acct-" + std::to_string(i); }

class TransferDeployment {
 public:
  TransferDeployment() : config_(QuorumConfig::Uniform(3, 2, 2)) {
    DirRepNodeOptions options;
    options.detector = &detector_;
    options.participant.blocking_locks = true;
    options.participant.lock_timeout_micros = 5'000'000;
    for (const auto& replica : config_.replicas()) {
      nodes_.push_back(std::make_unique<DirRepNode>(replica.node, options));
      transport_.RegisterNode(replica.node, nodes_.back()->server());
    }
  }

  std::unique_ptr<DirectorySuite> NewSuite(NodeId client, std::uint64_t seed) {
    DirectorySuite::Options options;
    options.config = config_;
    options.policy_seed = seed;
    return std::make_unique<DirectorySuite>(transport_, client,
                                            std::move(options));
  }

 private:
  QuorumConfig config_;
  lock::DeadlockDetector detector_;
  net::ThreadedTransport transport_;
  std::vector<std::unique_ptr<DirRepNode>> nodes_;
};

TEST(Serializability, ConcurrentTransfersPreserveTotalBalance) {
  TransferDeployment deploy;
  {
    auto seeder = deploy.NewSuite(99, 1);
    for (int i = 0; i < kAccounts; ++i) {
      ASSERT_TRUE(
          seeder->Insert(AccountKey(i), std::to_string(kInitialBalance)).ok());
    }
  }

  constexpr int kThreads = 4;
  constexpr int kTransfersPerThread = 40;
  std::atomic<int> committed{0};
  std::atomic<int> aborted{0};
  std::atomic<int> unexpected{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto suite = deploy.NewSuite(static_cast<NodeId>(100 + t), 100 + t);
      Rng rng(7000 + t);
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const int from = static_cast<int>(rng.Below(kAccounts));
        int to = static_cast<int>(rng.Below(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const int amount = 1 + static_cast<int>(rng.Below(20));

        SuiteTxn txn = suite->Begin();
        const auto from_balance = txn.Lookup(AccountKey(from));
        const auto to_balance = txn.Lookup(AccountKey(to));
        if (!from_balance.ok() || !to_balance.ok()) {
          ++aborted;  // lock conflict / deadlock victim
          continue;   // txn already aborted by the poison rule
        }
        const int from_val = std::stoi(from_balance->value);
        const int to_val = std::stoi(to_balance->value);
        if (!txn.Update(AccountKey(from), std::to_string(from_val - amount))
                 .ok() ||
            !txn.Update(AccountKey(to), std::to_string(to_val + amount))
                 .ok()) {
          ++aborted;
          continue;
        }
        const Status st = txn.Commit();
        if (st.ok()) {
          ++committed;
        } else if (st.code() == StatusCode::kAborted) {
          ++aborted;
        } else {
          ++unexpected;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(committed.load(), 0);

  // Audit from several different (randomly quorumed) readers: the books
  // must balance everywhere.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto auditor = deploy.NewSuite(static_cast<NodeId>(900 + seed), seed);
    int total = 0;
    for (int i = 0; i < kAccounts; ++i) {
      const auto r = auditor->Lookup(AccountKey(i));
      ASSERT_TRUE(r.ok());
      ASSERT_TRUE(r->found);
      total += std::stoi(r->value);
    }
    EXPECT_EQ(total, kAccounts * kInitialBalance) << "auditor seed " << seed;
  }
}

TEST(Serializability, ReadOnlyAuditDuringTransfersSeesConsistentTotal) {
  TransferDeployment deploy;
  {
    auto seeder = deploy.NewSuite(99, 1);
    for (int i = 0; i < kAccounts; ++i) {
      ASSERT_TRUE(
          seeder->Insert(AccountKey(i), std::to_string(kInitialBalance)).ok());
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<int> audits_ok{0};
  std::atomic<int> audits_inconsistent{0};

  // Auditor thread: reads ALL accounts inside one transaction; strict 2PL
  // means the snapshot it sees must sum to the invariant.
  std::thread auditor([&] {
    auto suite = deploy.NewSuite(900, 55);
    while (!stop.load()) {
      SuiteTxn txn = suite->Begin();
      int total = 0;
      bool complete = true;
      for (int i = 0; i < kAccounts; ++i) {
        const auto r = txn.Lookup(AccountKey(i));
        if (!r.ok() || !r->found) {
          complete = false;
          break;
        }
        total += std::stoi(r->value);
      }
      if (complete) {
        (void)txn.Commit();
        if (total == kAccounts * kInitialBalance) {
          ++audits_ok;
        } else {
          ++audits_inconsistent;
        }
      }
    }
  });

  std::thread mover([&] {
    auto suite = deploy.NewSuite(100, 77);
    Rng rng(4);
    for (int i = 0; i < 60; ++i) {
      const int a = static_cast<int>(rng.Below(kAccounts));
      const int b = (a + 1 + static_cast<int>(rng.Below(kAccounts - 1))) %
                    kAccounts;
      SuiteTxn txn = suite->Begin();
      const auto ra = txn.Lookup(AccountKey(a));
      const auto rb = txn.Lookup(AccountKey(b));
      if (!ra.ok() || !rb.ok()) continue;
      if (!txn.Update(AccountKey(a),
                      std::to_string(std::stoi(ra->value) - 5))
               .ok()) {
        continue;
      }
      if (!txn.Update(AccountKey(b),
                      std::to_string(std::stoi(rb->value) + 5))
               .ok()) {
        continue;
      }
      (void)txn.Commit();
    }
    stop.store(true);
  });

  mover.join();
  auditor.join();
  EXPECT_EQ(audits_inconsistent.load(), 0);
  EXPECT_GT(audits_ok.load(), 0);
}

}  // namespace
}  // namespace repdir::test
