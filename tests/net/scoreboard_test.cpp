// NodeScoreboard semantics: EWMA latency prediction with per-method and
// overall fallbacks, queue-depth scaling, and the failure-streak ->
// quarantine -> probation -> recovery lifecycle on an injectable clock.
#include "net/scoreboard.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/metrics.h"

namespace repdir::net {
namespace {

constexpr MethodId kMethodA = 2;
constexpr MethodId kMethodB = 5;

class ScoreboardTest : public ::testing::Test {
 protected:
  ScoreboardTest() : metrics_(&clock_), board_(&metrics_) {}

  VirtualClock clock_;
  MetricsRegistry metrics_;
  NodeScoreboard board_;
};

TEST_F(ScoreboardTest, UnmeasuredNodesUseDefaultLatency) {
  EXPECT_DOUBLE_EQ(board_.PredictedLatency(1, kMethodA),
                   board_.options().default_latency_us);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kHealthy);
  EXPECT_EQ(board_.Outstanding(1), 0u);
}

TEST_F(ScoreboardTest, EwmaTracksPerMethodLatency) {
  board_.OnComplete(1, kMethodA, 1000.0, true);
  EXPECT_DOUBLE_EQ(board_.PredictedLatency(1, kMethodA), 1000.0);
  // new = alpha * sample + (1 - alpha) * old.
  board_.OnComplete(1, kMethodA, 2000.0, true);
  const double alpha = board_.options().alpha;
  EXPECT_DOUBLE_EQ(board_.PredictedLatency(1, kMethodA),
                   alpha * 2000.0 + (1.0 - alpha) * 1000.0);
}

TEST_F(ScoreboardTest, UnseenMethodFallsBackToOverallEwma) {
  board_.OnComplete(1, kMethodA, 700.0, true);
  // kMethodB was never measured on node 1: the node's overall EWMA (one
  // sample, 700) stands in, not the global default.
  EXPECT_DOUBLE_EQ(board_.PredictedLatency(1, kMethodB), 700.0);
}

TEST_F(ScoreboardTest, OutstandingRequestsScaleTheScore) {
  board_.OnComplete(1, kMethodA, 100.0, true);
  const double idle = board_.Score(1, kMethodA);
  board_.OnIssue(1);
  board_.OnIssue(1);
  EXPECT_DOUBLE_EQ(board_.Score(1, kMethodA), idle * 3.0);
  board_.OnComplete(1, kMethodA, 100.0, true);
  EXPECT_EQ(board_.Outstanding(1), 1u);
}

TEST_F(ScoreboardTest, ApplicationErrorsCountAsReachable) {
  // Only transport-level unavailability is a failure; kNotFound et al.
  // prove the node alive (callers pass ok=true for those).
  for (int i = 0; i < 10; ++i) board_.OnComplete(1, kMethodA, 50.0, true);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kHealthy);
}

TEST_F(ScoreboardTest, FailureStreakQuarantines) {
  const auto streak = board_.options().quarantine_after;
  for (std::uint32_t i = 0; i + 1 < streak; ++i) {
    board_.OnComplete(1, kMethodA, 0.0, false);
    EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kHealthy);
  }
  board_.OnComplete(1, kMethodA, 0.0, false);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kQuarantined);
  EXPECT_EQ(metrics_.counter("scoreboard.quarantines").value(), 1u);
}

TEST_F(ScoreboardTest, QuarantineExpiresIntoProbationAndProbeRecovers) {
  for (std::uint32_t i = 0; i < board_.options().quarantine_after; ++i) {
    board_.OnComplete(1, kMethodA, 0.0, false);
  }
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kQuarantined);

  // The quarantine interval elapses on the injected clock: the node is on
  // probation (the planner will rank it first so one op probes it).
  clock_.AdvanceBy(board_.options().quarantine_base_us);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kProbation);
  EXPECT_GE(metrics_.counter("scoreboard.probations").value(), 1u);

  // A successful probe clears the streak AND the backoff: the node has
  // fully re-earned traffic and is never permanently starved.
  board_.OnComplete(1, kMethodA, 400.0, true);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kHealthy);
  EXPECT_EQ(metrics_.counter("scoreboard.recoveries").value(), 1u);
}

TEST_F(ScoreboardTest, RequarantineDoublesBackoffUpToCap) {
  const auto& opt = board_.options();
  for (std::uint32_t i = 0; i < opt.quarantine_after; ++i) {
    board_.OnComplete(1, kMethodA, 0.0, false);
  }
  // First interval: base. A failed probe after expiry doubles it.
  clock_.AdvanceBy(opt.quarantine_base_us);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kProbation);
  board_.OnComplete(1, kMethodA, 0.0, false);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kQuarantined);
  clock_.AdvanceBy(opt.quarantine_base_us);  // base elapsed, but backoff 2x
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kQuarantined);
  clock_.AdvanceBy(opt.quarantine_base_us);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kProbation);
  EXPECT_EQ(metrics_.counter("scoreboard.quarantines").value(), 2u);

  // Recovery resets the backoff: the next quarantine starts at base again.
  board_.OnComplete(1, kMethodA, 100.0, true);
  for (std::uint32_t i = 0; i < opt.quarantine_after; ++i) {
    board_.OnComplete(1, kMethodA, 0.0, false);
  }
  clock_.AdvanceBy(opt.quarantine_base_us);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kProbation);
}

TEST_F(ScoreboardTest, NodesAreIndependent) {
  for (std::uint32_t i = 0; i < board_.options().quarantine_after; ++i) {
    board_.OnComplete(1, kMethodA, 0.0, false);
  }
  board_.OnComplete(2, kMethodA, 300.0, true);
  EXPECT_EQ(board_.HealthOf(1), NodeScoreboard::Health::kQuarantined);
  EXPECT_EQ(board_.HealthOf(2), NodeScoreboard::Health::kHealthy);
  EXPECT_DOUBLE_EQ(board_.PredictedLatency(2, kMethodA), 300.0);
}

}  // namespace
}  // namespace repdir::net
