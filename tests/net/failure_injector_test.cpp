// FailureInjector::Roll ordering: the fail-next budget is consumed before
// the probability roll, so FailNext(n) means exactly "the next n calls".
#include <gtest/gtest.h>

#include "net/failure_injector.h"
#include "net/inproc_transport.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"

namespace repdir::net {
namespace {

constexpr MethodId kEcho = 1;

class FailureInjectorRollTest : public ::testing::Test {
 protected:
  FailureInjectorRollTest() : server_(1), injector_(inner_) {
    server_.RegisterTyped<Empty, Empty>(
        kEcho, [](const RpcRequest&, const Empty&, Empty&) {
          return Status::Ok();
        });
    inner_.RegisterNode(1, server_);
  }

  Status Call() {
    RpcClient client(injector_, 50);
    return client.Call<Empty>(1, kEcho, Empty{}).status();
  }

  RpcServer server_;
  InProcTransport inner_;
  FailureInjector injector_;
};

TEST_F(FailureInjectorRollTest, FailNextConsumedBeforeProbabilityRoll) {
  // Regression: the probability roll used to run first, so with p=1.0 the
  // random failure absorbed the call and the fail-next token survived,
  // leaking onto an unpredictable later call.
  injector_.SetFailureProbability(1.0);
  injector_.FailNext(1);

  const Status first = Call();
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_NE(first.message().find("fail-next"), std::string::npos) << first;

  // The token is spent: with the probability cleared, the next call goes
  // through (the old ordering would fail it with the leaked token).
  injector_.SetFailureProbability(0.0);
  EXPECT_TRUE(Call().ok());
}

TEST_F(FailureInjectorRollTest, FailNextCoversExactlyNCalls) {
  injector_.SetFailureProbability(1.0);
  injector_.FailNext(2);
  for (int i = 0; i < 2; ++i) {
    const Status st = Call();
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    EXPECT_NE(st.message().find("fail-next"), std::string::npos)
        << "call " << i << ": " << st;
  }
  injector_.SetFailureProbability(0.0);
  EXPECT_TRUE(Call().ok());
}

TEST_F(FailureInjectorRollTest, FailNextBeatsBlockedNode) {
  // Deterministic precedence: fail-next, then blocked, then probability.
  injector_.BlockNode(1);
  injector_.FailNext(1);
  const Status st = Call();
  EXPECT_NE(st.message().find("fail-next"), std::string::npos) << st;
  const Status blocked = Call();
  EXPECT_NE(blocked.message().find("blocked"), std::string::npos) << blocked;
  injector_.UnblockNode(1);
  EXPECT_TRUE(Call().ok());
}

}  // namespace
}  // namespace repdir::net
