// ParallelCall scatter-gather: slot-order issuance, stop predicate, per-slot
// retry, the no-abandonment guarantee, and real overlap on the threaded
// transport.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>

#include "net/failure_injector.h"
#include "net/inproc_transport.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "net/threaded_transport.h"

namespace repdir::net {
namespace {

struct TagRequest {
  std::string tag;
  void Encode(ByteWriter& w) const { w.PutString(tag); }
  Status Decode(ByteReader& r) { return r.GetString(tag); }
};

struct TagReply {
  std::string tag;
  NodeId node = 0;
  void Encode(ByteWriter& w) const {
    w.PutString(tag);
    w.PutU32(node);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetString(tag));
    return r.GetU32(node);
  }
};

constexpr MethodId kTag = 1;

/// N servers, each echoing the request tag plus its own node id.
template <typename Transport>
class Cluster {
 public:
  template <typename... Args>
  explicit Cluster(int n, Args&&... args)
      : transport(std::forward<Args>(args)...) {
    for (int i = 0; i < n; ++i) {
      servers.push_back(std::make_unique<RpcServer>(i + 1));
      const NodeId node = static_cast<NodeId>(i + 1);
      servers.back()->template RegisterTyped<TagRequest, TagReply>(
          kTag, [node](const RpcRequest&, const TagRequest& req, TagReply& out) {
            out.tag = req.tag;
            out.node = node;
            return Status::Ok();
          });
      transport.RegisterNode(node, *servers.back());
      nodes.push_back(node);
    }
  }

  std::vector<std::unique_ptr<RpcServer>> servers;
  Transport transport;
  std::vector<NodeId> nodes;
};

TEST(ParallelCall, GathersOneReplyPerNode) {
  Cluster<InProcTransport> cluster(3);
  RpcClient client(cluster.transport, 50);

  const auto fan =
      client.ParallelCall<TagReply>(cluster.nodes, kTag, TagRequest{"all"});
  ASSERT_EQ(fan.issued, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(fan.replies[i].has_value());
    ASSERT_TRUE(fan.replies[i]->ok());
    EXPECT_EQ((*fan.replies[i])->tag, "all");
    EXPECT_EQ((*fan.replies[i])->node, cluster.nodes[i]);
  }
  EXPECT_EQ(cluster.transport.TotalAttempts(), 3u);
}

TEST(ParallelCall, SlotVariantCarriesPerSlotRequests) {
  Cluster<InProcTransport> cluster(3);
  RpcClient client(cluster.transport, 50);

  std::vector<CallSlot<TagRequest>> slots;
  for (std::size_t i = 0; i < cluster.nodes.size(); ++i) {
    slots.push_back({cluster.nodes[i], TagRequest{"s" + std::to_string(i)}});
  }
  const auto fan = client.ParallelCall<TagReply>(slots, kTag);
  ASSERT_EQ(fan.issued, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*fan.replies[i])->tag, "s" + std::to_string(i));
  }
}

TEST(ParallelCall, StopPredicateEndsIssuanceInSlotOrderInline) {
  // On an inline transport each slot completes before the next is issued,
  // so a predicate satisfied at slot 1 must leave slot 2 un-issued - the
  // exact behaviour of a sequential early-return loop.
  Cluster<InProcTransport> cluster(4);
  RpcClient client(cluster.transport, 50);

  std::size_t completions = 0;
  const auto fan = client.ParallelCall<TagReply>(
      cluster.nodes, kTag, TagRequest{"quorum"}, kInvalidTxn, {},
      [&](std::size_t, const Result<TagReply>&) { return ++completions >= 2; });
  EXPECT_EQ(fan.issued, 2u);
  ASSERT_TRUE(fan.replies[0].has_value());
  ASSERT_TRUE(fan.replies[1].has_value());
  EXPECT_FALSE(fan.replies[2].has_value());
  EXPECT_FALSE(fan.replies[3].has_value());
  EXPECT_EQ(cluster.transport.TotalAttempts(), 2u);
}

TEST(ParallelCall, RetriesTransportFailuresPerSlot) {
  Cluster<InProcTransport> cluster(3);
  FailureInjector injector(cluster.transport);
  RpcClient client(injector, 50);

  injector.FailNext(1);  // exactly one slot sees one transient failure
  FanOutOptions options;
  options.retry = RetryPolicy{2};
  const auto fan = client.ParallelCall<TagReply>(cluster.nodes, kTag,
                                                 TagRequest{"retry"},
                                                 kInvalidTxn, options);
  ASSERT_EQ(fan.issued, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(fan.replies[i].has_value());
    EXPECT_TRUE(fan.replies[i]->ok()) << fan.replies[i]->status().ToString();
  }
  // The injected failure dies at the injector; the retry is the only extra
  // traffic and it lands where the original would have.
  EXPECT_EQ(cluster.transport.TotalAttempts(), 3u);
}

TEST(ParallelCall, ExhaustedRetriesSurfaceTheFailure) {
  Cluster<InProcTransport> cluster(2);
  FailureInjector injector(cluster.transport);
  RpcClient client(injector, 50);

  injector.BlockNode(cluster.nodes[1]);
  FanOutOptions options;
  options.retry = RetryPolicy{3};
  const auto fan = client.ParallelCall<TagReply>(cluster.nodes, kTag,
                                                 TagRequest{"hard"},
                                                 kInvalidTxn, options);
  ASSERT_EQ(fan.issued, 2u);
  EXPECT_TRUE(fan.replies[0]->ok());
  EXPECT_EQ(fan.replies[1]->status().code(), StatusCode::kUnavailable);
}

TEST(ParallelCall, OverlapsLatencyOnThreadedTransport) {
  // 4 servers, 10 ms one-way latency: a sequential walk pays 4 round trips
  // (~80 ms); the fan-out pays about one. The bound leaves slack for slow
  // CI machines while still ruling out serialized calls.
  sim::NetworkModel network;
  network.SetDefaultLink(sim::LinkSpec{10'000, 0, 0.0});
  Cluster<ThreadedTransport> cluster(4, &network);
  RpcClient client(cluster.transport, 50);

  const auto start = std::chrono::steady_clock::now();
  const auto fan =
      client.ParallelCall<TagReply>(cluster.nodes, kTag, TagRequest{"t"});
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  ASSERT_EQ(fan.issued, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(fan.replies[i].has_value());
    EXPECT_TRUE(fan.replies[i]->ok());
  }
  EXPECT_LT(elapsed.count(), 70);  // sequential would be >= 80 ms
}

TEST(ParallelCall, EveryIssuedSlotIsAwaitedUnderEarlyStop) {
  // The stop predicate ends ISSUANCE, never abandons calls in flight: by
  // the time ParallelCall returns, every issued slot has a reply, even on
  // a concurrent transport. (Abandoned transactional RPCs could race their
  // own transaction's 2PC decision.)
  sim::NetworkModel network;
  network.SetDefaultLink(sim::LinkSpec{2'000, 0, 0.0});
  Cluster<ThreadedTransport> cluster(6, &network);
  RpcClient client(cluster.transport, 50);

  for (int round = 0; round < 20; ++round) {
    std::atomic<int> done{0};
    const auto fan = client.ParallelCall<TagReply>(
        cluster.nodes, kTag, TagRequest{"w"}, kInvalidTxn, {},
        [&](std::size_t, const Result<TagReply>&) {
          return done.fetch_add(1) + 1 >= 2;
        });
    ASSERT_GE(fan.issued, 2u);
    for (std::size_t i = 0; i < fan.issued; ++i) {
      ASSERT_TRUE(fan.replies[i].has_value())
          << "issued slot " << i << " returned without a reply";
      EXPECT_TRUE(fan.replies[i]->ok());
    }
    for (std::size_t i = fan.issued; i < fan.replies.size(); ++i) {
      EXPECT_FALSE(fan.replies[i].has_value());
    }
  }
}

TEST(SequentialAdapterTest, ForcesInlineAsyncOnAnyTransport) {
  // Wrapping a concurrent transport in SequentialAdapter restores the
  // sequential walk: slots issue one at a time, so an early stop prevents
  // later calls entirely - the baseline side of the fan-out benchmarks.
  Cluster<ThreadedTransport> cluster(4);
  SequentialAdapter sequential(cluster.transport);
  RpcClient client(sequential, 50);

  std::size_t completions = 0;
  const auto fan = client.ParallelCall<TagReply>(
      cluster.nodes, kTag, TagRequest{"seq"}, kInvalidTxn, {},
      [&](std::size_t, const Result<TagReply>&) { return ++completions >= 3; });
  EXPECT_EQ(fan.issued, 3u);
  EXPECT_EQ(cluster.transport.TotalAttempts(), 3u);
  EXPECT_EQ(sequential.TotalAttempts(), 3u);
}

}  // namespace
}  // namespace repdir::net
