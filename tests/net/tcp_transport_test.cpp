// TCP transport: real sockets on 127.0.0.1 - framing, pooling, concurrent
// clients, server shutdown, and a full directory suite running over TCP.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <random>
#include <thread>

#include "net/wire.h"

#include "net/rpc_client.h"
#include "net/tcp_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

namespace repdir::net {
namespace {

struct EchoRequest {
  std::string text;
  void Encode(ByteWriter& w) const { w.PutString(text); }
  Status Decode(ByteReader& r) { return r.GetString(text); }
};

constexpr MethodId kEcho = 1;

void RegisterEcho(RpcServer& server) {
  server.RegisterTyped<EchoRequest, EchoRequest>(
      kEcho,
      [](const RpcRequest&, const EchoRequest& req, EchoRequest& out) {
        out.text = req.text;
        return Status::Ok();
      });
}

TEST(TcpTransport, EchoRoundTrip) {
  RpcServer service(1);
  RegisterEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status();

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);
  RpcClient client(transport, 100);

  for (int i = 0; i < 20; ++i) {
    const auto reply =
        client.Call<EchoRequest>(1, kEcho, EchoRequest{"ping-" +
                                                       std::to_string(i)});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->text, "ping-" + std::to_string(i));
  }
  // Sequential calls reuse one pooled connection.
  EXPECT_EQ(server.connections_served(), 1u);
  EXPECT_EQ(transport.DeliveredCount(100, 1), 20u);
}

TEST(TcpTransport, LargePayload) {
  RpcServer service(1);
  RegisterEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok());

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);
  RpcClient client(transport, 100);

  const std::string big(1 << 20, 'x');  // 1 MiB
  const auto reply = client.Call<EchoRequest>(1, kEcho, EchoRequest{big});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->text, big);
}

TEST(TcpTransport, NoRouteAndDeadServer) {
  TcpTransport transport;
  RpcClient client(transport, 100);
  EXPECT_EQ(client.Call<EchoRequest>(9, kEcho, EchoRequest{"x"})
                .status()
                .code(),
            StatusCode::kUnavailable);

  transport.AddRoute(1, "127.0.0.1", 1);  // nothing listens on port 1
  EXPECT_EQ(client.Call<EchoRequest>(1, kEcho, EchoRequest{"x"})
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST(TcpTransport, ServerStopSurfacesAsUnavailable) {
  RpcServer service(1);
  RegisterEcho(service);
  auto server = std::make_unique<TcpServer>(service);
  const auto port = server->Start();
  ASSERT_TRUE(port.ok());

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);
  RpcClient client(transport, 100);
  ASSERT_TRUE(client.Call<EchoRequest>(1, kEcho, EchoRequest{"x"}).ok());

  server->Stop();
  EXPECT_EQ(client.Call<EchoRequest>(1, kEcho, EchoRequest{"x"})
                .status()
                .code(),
            StatusCode::kUnavailable);
}

// A peer that dies and comes back on the SAME address must be reachable
// again through the same transport: the pooled connection is detected dead,
// dropped, and the next call re-dials. Without that, one restart would pin
// the route to kUnavailable forever.
TEST(TcpTransport, PeerRestartReconnectsOnSamePort) {
  RpcServer service(1);
  RegisterEcho(service);
  auto server = std::make_unique<TcpServer>(service);
  const auto port = server->Start();
  ASSERT_TRUE(port.ok());
  const std::uint16_t fixed = *port;

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", fixed);
  RpcClient client(transport, 100);
  ASSERT_TRUE(client.Call<EchoRequest>(1, kEcho, EchoRequest{"before"}).ok());

  server->Stop();
  EXPECT_EQ(client.Call<EchoRequest>(1, kEcho, EchoRequest{"down"})
                .status()
                .code(),
            StatusCode::kUnavailable);

  // Restart the listener on the same port (SO_REUSEADDR; still retry a few
  // times in case the OS briefly holds the address).
  auto restarted = std::make_unique<TcpServer>(service);
  auto again = restarted->Start(fixed);
  for (int i = 0; i < 100 && !again.ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    again = restarted->Start(fixed);
  }
  ASSERT_TRUE(again.ok()) << again.status();

  // The transport may burn a call or two discovering the dead connection,
  // then must recover - and stay recovered.
  bool recovered = false;
  for (int i = 0; i < 100 && !recovered; ++i) {
    recovered =
        client.Call<EchoRequest>(1, kEcho, EchoRequest{"probe"}).ok();
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(recovered) << "transport never reconnected to restarted peer";
  for (int i = 0; i < 10; ++i) {
    const auto reply =
        client.Call<EchoRequest>(1, kEcho,
                                 EchoRequest{"after-" + std::to_string(i)});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->text, "after-" + std::to_string(i));
  }
}

TEST(TcpTransport, ConcurrentClientsMultiplex) {
  RpcServer service(1);
  RegisterEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok());

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);

  constexpr int kThreads = 6;
  constexpr int kCalls = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RpcClient client(transport, static_cast<NodeId>(100 + t));
      for (int i = 0; i < kCalls; ++i) {
        const std::string text = std::to_string(t) + ":" + std::to_string(i);
        const auto reply = client.Call<EchoRequest>(1, kEcho,
                                                    EchoRequest{text});
        if (!reply.ok() || reply->text != text) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// The real thing: a 3-2-2 directory suite where every representative is
// served over an actual TCP socket.
TEST(TcpTransport, DirectorySuiteOverRealSockets) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = true;

  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  std::vector<std::unique_ptr<TcpServer>> servers;
  TcpTransport transport;
  for (NodeId id : {1u, 2u, 3u}) {
    nodes.push_back(std::make_unique<rep::DirRepNode>(id, node_options));
    servers.push_back(std::make_unique<TcpServer>(nodes.back()->server()));
    const auto port = servers.back()->Start();
    ASSERT_TRUE(port.ok());
    transport.AddRoute(id, "127.0.0.1", *port);
  }

  rep::DirectorySuite::Options options;
  options.config = rep::QuorumConfig::Uniform(3, 2, 2);
  rep::DirectorySuite suite(transport, 100, std::move(options));

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(suite.Insert("key" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 30; i += 2) {
    ASSERT_TRUE(suite.Delete("key" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 30; ++i) {
    const auto r = suite.Lookup("key" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->found, i % 2 == 1) << i;
  }

  // Kill one server: the suite keeps working on the other two.
  servers[2]->Stop();
  ASSERT_TRUE(suite.Insert("after-failure", "v").ok());
  EXPECT_TRUE(suite.Lookup("after-failure")->found);
}


// --- Multiplexing, pipelining, and framing robustness ---

struct DelayEchoRequest {
  std::uint32_t delay_ms = 0;
  std::string text;
  void Encode(ByteWriter& w) const {
    w.PutU32(delay_ms);
    w.PutString(text);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetU32(delay_ms));
    return r.GetString(text);
  }
};

constexpr MethodId kDelayEcho = 2;

void RegisterDelayEcho(RpcServer& server) {
  server.RegisterTyped<DelayEchoRequest, EchoRequest>(
      kDelayEcho,
      [](const RpcRequest&, const DelayEchoRequest& req, EchoRequest& out) {
        std::this_thread::sleep_for(std::chrono::milliseconds(req.delay_ms));
        out.text = req.text;
        return Status::Ok();
      });
}

TEST(TcpTransport, ConcurrentCallersShareOneConnection) {
  RpcServer service(1);
  RegisterEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok());

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);

  constexpr int kThreads = 8;
  constexpr int kCalls = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RpcClient client(transport, static_cast<NodeId>(100 + t));
      for (int i = 0; i < kCalls; ++i) {
        const std::string text = std::to_string(t) + "/" + std::to_string(i);
        const auto reply =
            client.Call<EchoRequest>(1, kEcho, EchoRequest{text});
        if (!reply.ok() || reply->text != text) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Every caller pipelined over the SAME persistent connection.
  EXPECT_EQ(transport.connections_opened(), 1u);
  EXPECT_EQ(server.connections_served(), 1u);
  EXPECT_EQ(server.requests_served(),
            static_cast<std::uint64_t>(kThreads * kCalls));
}

TEST(TcpTransport, DeepPipelineCompletesOutOfOrder) {
  // One slow call followed by several fast ones, all pipelined onto one
  // connection via CallAsync: the fast responses overtake the slow one
  // (out-of-order completion over a single socket, routed by correlation
  // id), and total wall time tracks the slowest call, not the sum.
  RpcServer service(1);
  RegisterDelayEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok());

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);

  constexpr int kCalls = 8;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> completion_order;
  std::vector<std::string> replies(kCalls);
  int done = 0;

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalls; ++i) {
    DelayEchoRequest body;
    body.delay_ms = i == 0 ? 250 : 10;  // the first call is the straggler
    body.text = "call-" + std::to_string(i);
    RpcRequest req;
    req.from = 100;
    req.method = kDelayEcho;
    req.payload = EncodeToString(body);
    transport.CallAsync(1, req, [&, i](Status st, RpcResponse resp) {
      EchoRequest echoed;
      std::lock_guard<std::mutex> lk(mu);
      if (st.ok() && resp.code == StatusCode::kOk &&
          DecodeFromString(resp.payload, echoed).ok()) {
        replies[i] = echoed.text;
      }
      completion_order.push_back(i);
      ++done;
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(10),
                            [&] { return done == kCalls; }));
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  for (int i = 0; i < kCalls; ++i) {
    EXPECT_EQ(replies[i], "call-" + std::to_string(i)) << i;
  }
  // The straggler was issued first and finished last.
  EXPECT_EQ(completion_order.back(), 0);
  // Pipelined execution: far less than the serial sum (250 + 7*10 plus
  // seven round trips each gated on the previous response).
  EXPECT_LT(elapsed.count(), 600);
  EXPECT_EQ(server.connections_served(), 1u);
  EXPECT_EQ(transport.connections_opened(), 1u);
}

TEST(TcpTransport, ReRoutingANodeDropsItsConnection) {
  RpcServer service_a(1);
  RegisterEcho(service_a);
  TcpServer server_a(service_a);
  const auto port_a = server_a.Start();
  ASSERT_TRUE(port_a.ok());

  RpcServer service_b(1);
  RegisterEcho(service_b);
  TcpServer server_b(service_b);
  const auto port_b = server_b.Start();
  ASSERT_TRUE(port_b.ok());

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port_a);
  RpcClient client(transport, 100);
  ASSERT_TRUE(client.Call<EchoRequest>(1, kEcho, EchoRequest{"a"}).ok());
  EXPECT_EQ(server_a.connections_served(), 1u);

  // The node "respawns" elsewhere: the stale connection is retired and the
  // next call dials the new endpoint.
  transport.AddRoute(1, "127.0.0.1", *port_b);
  ASSERT_TRUE(client.Call<EchoRequest>(1, kEcho, EchoRequest{"b"}).ok());
  EXPECT_EQ(server_b.connections_served(), 1u);
  EXPECT_EQ(transport.connections_opened(), 2u);
}

TEST(TcpTransport, SeededFramingFuzzPartialWritesAndShortReads) {
  // A raw-socket client dribbles valid request frames at the server in
  // randomly-sized partial writes (seeded, reproducible) and drains the
  // responses in randomly-sized short reads. Every response must come back
  // intact and matched to its correlation id, no matter where the TCP
  // stream fragments.
  RpcServer service(1);
  RegisterEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(*port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::mt19937 rng(20260808);
  constexpr int kRequests = 40;
  std::string outbound;
  for (int i = 0; i < kRequests; ++i) {
    EchoRequest body;
    body.text = "fuzz-" + std::to_string(i) +
                std::string(rng() % 300, static_cast<char>('a' + i % 26));
    RpcRequest req;
    req.from = 100;
    req.method = kEcho;
    req.payload = EncodeToString(body);
    AppendTcpFrame(outbound, static_cast<std::uint64_t>(i + 1),
                   EncodeToString(req));
  }

  // Writer thread: partial writes of 1..97 bytes with occasional pauses.
  std::thread writer([&] {
    std::mt19937 wrng(7);
    std::size_t off = 0;
    while (off < outbound.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + wrng() % 97, outbound.size() - off);
      ASSERT_EQ(::send(fd, outbound.data() + off, n, 0),
                static_cast<ssize_t>(n));
      off += n;
      if (wrng() % 8 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  });

  // Reader: short reads of 1..63 bytes until every response arrived.
  std::string in;
  std::map<std::uint64_t, std::string> responses;
  char buf[63];
  while (responses.size() < kRequests) {
    const std::size_t want = 1 + rng() % sizeof(buf);
    const ssize_t got = ::recv(fd, buf, want, 0);
    ASSERT_GT(got, 0);
    in.append(buf, static_cast<std::size_t>(got));
    std::size_t off = 0;
    while (in.size() - off >= kTcpFrameHeaderBytes) {
      std::uint32_t len = 0;
      std::uint64_t corr = 0;
      DecodeTcpFrameHeader(in.data() + off, len, corr);
      ASSERT_LE(len, kMaxTcpFrame);
      if (in.size() - off < kTcpFrameHeaderBytes + len) break;
      RpcResponse resp;
      ASSERT_TRUE(DecodeFromString(
                      in.substr(off + kTcpFrameHeaderBytes, len), resp)
                      .ok());
      ASSERT_EQ(resp.code, StatusCode::kOk);
      EchoRequest echoed;
      ASSERT_TRUE(DecodeFromString(resp.payload, echoed).ok());
      responses[corr] = echoed.text;
      off += kTcpFrameHeaderBytes + len;
    }
    in.erase(0, off);
  }
  writer.join();
  ::close(fd);

  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const auto it = responses.find(static_cast<std::uint64_t>(i + 1));
    ASSERT_NE(it, responses.end()) << i;
    EXPECT_TRUE(it->second.rfind("fuzz-" + std::to_string(i), 0) == 0) << i;
  }
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kRequests));
}

TEST(TcpTransport, OversizedFrameDropsConnectionNotServer) {
  RpcServer service(1);
  RegisterEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Poison connection: a header advertising an impossible frame length.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(*port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string poison;
  char header[kTcpFrameHeaderBytes] = {};
  const std::uint32_t bad_len = kMaxTcpFrame + 1;
  std::memcpy(header, &bad_len, sizeof(bad_len));
  ASSERT_EQ(::send(fd, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  // The server shuts the poisoned connection down...
  char buf[16];
  EXPECT_LE(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);

  // ...and keeps serving everyone else.
  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);
  RpcClient client(transport, 100);
  const auto reply = client.Call<EchoRequest>(1, kEcho, EchoRequest{"alive"});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->text, "alive");
}

}  // namespace
}  // namespace repdir::net
