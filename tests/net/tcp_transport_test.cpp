// TCP transport: real sockets on 127.0.0.1 - framing, pooling, concurrent
// clients, server shutdown, and a full directory suite running over TCP.
#include <gtest/gtest.h>

#include <thread>

#include "net/rpc_client.h"
#include "net/tcp_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

namespace repdir::net {
namespace {

struct EchoRequest {
  std::string text;
  void Encode(ByteWriter& w) const { w.PutString(text); }
  Status Decode(ByteReader& r) { return r.GetString(text); }
};

constexpr MethodId kEcho = 1;

void RegisterEcho(RpcServer& server) {
  server.RegisterTyped<EchoRequest, EchoRequest>(
      kEcho,
      [](const RpcRequest&, const EchoRequest& req, EchoRequest& out) {
        out.text = req.text;
        return Status::Ok();
      });
}

TEST(TcpTransport, EchoRoundTrip) {
  RpcServer service(1);
  RegisterEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status();

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);
  RpcClient client(transport, 100);

  for (int i = 0; i < 20; ++i) {
    const auto reply =
        client.Call<EchoRequest>(1, kEcho, EchoRequest{"ping-" +
                                                       std::to_string(i)});
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->text, "ping-" + std::to_string(i));
  }
  // Sequential calls reuse one pooled connection.
  EXPECT_EQ(server.connections_served(), 1u);
  EXPECT_EQ(transport.DeliveredCount(100, 1), 20u);
}

TEST(TcpTransport, LargePayload) {
  RpcServer service(1);
  RegisterEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok());

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);
  RpcClient client(transport, 100);

  const std::string big(1 << 20, 'x');  // 1 MiB
  const auto reply = client.Call<EchoRequest>(1, kEcho, EchoRequest{big});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->text, big);
}

TEST(TcpTransport, NoRouteAndDeadServer) {
  TcpTransport transport;
  RpcClient client(transport, 100);
  EXPECT_EQ(client.Call<EchoRequest>(9, kEcho, EchoRequest{"x"})
                .status()
                .code(),
            StatusCode::kUnavailable);

  transport.AddRoute(1, "127.0.0.1", 1);  // nothing listens on port 1
  EXPECT_EQ(client.Call<EchoRequest>(1, kEcho, EchoRequest{"x"})
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST(TcpTransport, ServerStopSurfacesAsUnavailable) {
  RpcServer service(1);
  RegisterEcho(service);
  auto server = std::make_unique<TcpServer>(service);
  const auto port = server->Start();
  ASSERT_TRUE(port.ok());

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);
  RpcClient client(transport, 100);
  ASSERT_TRUE(client.Call<EchoRequest>(1, kEcho, EchoRequest{"x"}).ok());

  server->Stop();
  EXPECT_EQ(client.Call<EchoRequest>(1, kEcho, EchoRequest{"x"})
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST(TcpTransport, ConcurrentClientsMultiplex) {
  RpcServer service(1);
  RegisterEcho(service);
  TcpServer server(service);
  const auto port = server.Start();
  ASSERT_TRUE(port.ok());

  TcpTransport transport;
  transport.AddRoute(1, "127.0.0.1", *port);

  constexpr int kThreads = 6;
  constexpr int kCalls = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RpcClient client(transport, static_cast<NodeId>(100 + t));
      for (int i = 0; i < kCalls; ++i) {
        const std::string text = std::to_string(t) + ":" + std::to_string(i);
        const auto reply = client.Call<EchoRequest>(1, kEcho,
                                                    EchoRequest{text});
        if (!reply.ok() || reply->text != text) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// The real thing: a 3-2-2 directory suite where every representative is
// served over an actual TCP socket.
TEST(TcpTransport, DirectorySuiteOverRealSockets) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = true;

  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  std::vector<std::unique_ptr<TcpServer>> servers;
  TcpTransport transport;
  for (NodeId id : {1u, 2u, 3u}) {
    nodes.push_back(std::make_unique<rep::DirRepNode>(id, node_options));
    servers.push_back(std::make_unique<TcpServer>(nodes.back()->server()));
    const auto port = servers.back()->Start();
    ASSERT_TRUE(port.ok());
    transport.AddRoute(id, "127.0.0.1", *port);
  }

  rep::DirectorySuite::Options options;
  options.config = rep::QuorumConfig::Uniform(3, 2, 2);
  rep::DirectorySuite suite(transport, 100, std::move(options));

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(suite.Insert("key" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 30; i += 2) {
    ASSERT_TRUE(suite.Delete("key" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 30; ++i) {
    const auto r = suite.Lookup("key" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->found, i % 2 == 1) << i;
  }

  // Kill one server: the suite keeps working on the other two.
  servers[2]->Stop();
  ASSERT_TRUE(suite.Insert("after-failure", "v").ok());
  EXPECT_TRUE(suite.Lookup("after-failure")->found);
}

}  // namespace
}  // namespace repdir::net
