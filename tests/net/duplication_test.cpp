// Message duplication: the network may deliver a request twice (back to
// back, while the transaction's locks are held). Every representative
// handler must be idempotent, so a duplicated workload stays exactly
// consistent with the model.
#include <gtest/gtest.h>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "sim/network_model.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace repdir::net {
namespace {

TEST(Duplication, HandlersAreIdempotentUnderDuplicateDelivery) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;

  sim::NetworkModel network(5);
  sim::LinkSpec spec;
  spec.duplicate_probability = 0.3;  // 30% of requests delivered twice
  network.SetDefaultLink(spec);

  InProcTransport transport(nullptr, &network);
  const auto config = rep::QuorumConfig::Uniform(3, 2, 2);
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes;
  for (const auto& replica : config.replicas()) {
    nodes.push_back(
        std::make_unique<rep::DirRepNode>(replica.node, node_options));
    transport.RegisterNode(replica.node, nodes.back()->server());
  }

  rep::DirectorySuite::Options options;
  options.config = config;
  rep::DirectorySuite suite(transport, 100, std::move(options));
  wl::SuiteClient client(suite);

  wl::WorkloadOptions wl_options;
  wl_options.target_size = 40;
  wl_options.operations = 2000;
  wl_options.verify_against_model = true;
  wl_options.key_space = 2000;
  wl::SteadyStateWorkload workload(client, wl_options);
  ASSERT_TRUE(workload.Fill().ok());
  const Status st = workload.Run();
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(workload.report().mismatches, 0u);
  EXPECT_EQ(workload.report().failures, 0u);

  // Final sweep: model and directory agree on every live key.
  for (const auto& [key, value] : workload.model()) {
    const auto r = suite.Lookup(key);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->found) << key;
    EXPECT_EQ(r->value, value);
  }
}

TEST(Duplication, DuplicatedCommitAndAbortAreIdempotent) {
  rep::DirRepNodeOptions node_options;
  node_options.participant.blocking_locks = false;
  rep::DirRepNode node(1, node_options);
  InProcTransport transport;
  transport.RegisterNode(1, node.server());
  RpcClient client(transport, 100);

  // Insert under txn 5, then deliver commit twice by calling it twice.
  ASSERT_TRUE(client
                  .Call<Empty>(1, rep::kInsert,
                               rep::InsertRequest{storage::RepKey::User("k"),
                                                  1, "v"},
                               5)
                  .ok());
  ASSERT_TRUE(client.Call<Empty>(1, rep::kCommit, Empty{}, 5).ok());
  ASSERT_TRUE(client.Call<Empty>(1, rep::kCommit, Empty{}, 5).ok());
  EXPECT_TRUE(node.storage().Get(storage::RepKey::User("k")).has_value());

  ASSERT_TRUE(client.Call<Empty>(1, rep::kAbortTxn, Empty{}, 6).ok());
  ASSERT_TRUE(client.Call<Empty>(1, rep::kAbortTxn, Empty{}, 6).ok());
}

}  // namespace
}  // namespace repdir::net
