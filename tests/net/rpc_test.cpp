// RPC layer: envelope codecs, dispatch, typed client calls, transports,
// failure injection, retry policy.
#include <gtest/gtest.h>

#include <thread>

#include "net/failure_injector.h"
#include "net/inproc_transport.h"
#include "net/retry.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "net/threaded_transport.h"

namespace repdir::net {
namespace {

struct EchoRequest {
  std::string text;
  void Encode(ByteWriter& w) const { w.PutString(text); }
  Status Decode(ByteReader& r) { return r.GetString(text); }
};

struct EchoReply {
  std::string text;
  NodeId caller = 0;
  TxnId txn = 0;
  void Encode(ByteWriter& w) const {
    w.PutString(text);
    w.PutU32(caller);
    w.PutU64(txn);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetString(text));
    REPDIR_RETURN_IF_ERROR(r.GetU32(caller));
    return r.GetU64(txn);
  }
};

constexpr MethodId kEcho = 1;
constexpr MethodId kFail = 2;

void RegisterEchoService(RpcServer& server) {
  server.RegisterTyped<EchoRequest, EchoReply>(
      kEcho, [](const RpcRequest& env, const EchoRequest& req, EchoReply& out) {
        out.text = req.text;
        out.caller = env.from;
        out.txn = env.txn;
        return Status::Ok();
      });
  server.RegisterTyped<Empty, Empty>(
      kFail, [](const RpcRequest&, const Empty&, Empty&) {
        return Status::NotFound("handler says no");
      });
}

TEST(Envelope, RequestResponseRoundTrip) {
  RpcRequest req;
  req.from = 7;
  req.method = 300;
  req.txn = 0xdeadbeefcafef00dULL;
  req.payload = std::string("\x00\x01payload", 9);
  RpcRequest decoded;
  ASSERT_TRUE(DecodeFromString(EncodeToString(req), decoded).ok());
  EXPECT_EQ(decoded.from, req.from);
  EXPECT_EQ(decoded.method, req.method);
  EXPECT_EQ(decoded.txn, req.txn);
  EXPECT_EQ(decoded.payload, req.payload);

  RpcResponse resp;
  resp.code = StatusCode::kAborted;
  resp.error_message = "nope";
  RpcResponse decoded_resp;
  ASSERT_TRUE(DecodeFromString(EncodeToString(resp), decoded_resp).ok());
  EXPECT_EQ(decoded_resp.ToStatus().code(), StatusCode::kAborted);
  EXPECT_EQ(decoded_resp.ToStatus().message(), "nope");
}

TEST(RpcServer, DispatchesAndReportsUnknownMethod) {
  RpcServer server(1);
  RegisterEchoService(server);

  RpcRequest req;
  req.from = 9;
  req.method = kEcho;
  req.payload = EncodeToString(EchoRequest{"hi"});
  const RpcResponse resp = server.Dispatch(req);
  EXPECT_EQ(resp.code, StatusCode::kOk);

  req.method = 999;
  EXPECT_EQ(server.Dispatch(req).code, StatusCode::kInvalidArgument);
}

TEST(RpcServer, HandlerErrorBecomesResponseCode) {
  RpcServer server(1);
  RegisterEchoService(server);
  RpcRequest req;
  req.method = kFail;
  EXPECT_EQ(server.Dispatch(req).code, StatusCode::kNotFound);
}

TEST(RpcServer, MalformedPayloadIsCorruption) {
  RpcServer server(1);
  RegisterEchoService(server);
  RpcRequest req;
  req.method = kEcho;
  req.payload = "\xff";  // bad varint length prefix
  EXPECT_EQ(server.Dispatch(req).code, StatusCode::kCorruption);
}

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() : server_(1) {
    RegisterEchoService(server_);
    transport_.RegisterNode(1, server_);
  }
  RpcServer server_;
  InProcTransport transport_;
};

TEST_F(TransportTest, TypedCallRoundTrip) {
  RpcClient client(transport_, 50);
  const auto reply =
      client.Call<EchoReply>(1, kEcho, EchoRequest{"hello"}, /*txn=*/77);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->text, "hello");
  EXPECT_EQ(reply->caller, 50u);
  EXPECT_EQ(reply->txn, 77u);
}

TEST_F(TransportTest, ApplicationErrorSurfacesAsStatus) {
  RpcClient client(transport_, 50);
  const auto reply = client.Call<Empty>(1, kFail, Empty{});
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
}

TEST_F(TransportTest, UnknownNodeIsUnavailable) {
  RpcClient client(transport_, 50);
  EXPECT_EQ(client.Call<Empty>(99, kEcho, EchoRequest{"x"}).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(TransportTest, CountsDeliveries) {
  RpcClient client(transport_, 50);
  ASSERT_TRUE(client.Call<EchoReply>(1, kEcho, EchoRequest{"a"}).ok());
  ASSERT_TRUE(client.Call<EchoReply>(1, kEcho, EchoRequest{"b"}).ok());
  EXPECT_EQ(transport_.DeliveredCount(50, 1), 2u);
  EXPECT_EQ(transport_.DeliveredCount(1, 50), 0u);
  EXPECT_EQ(transport_.TotalAttempts(), 2u);
}

TEST(InProcWithNetwork, HonoursModelAndAdvancesClock) {
  VirtualClock clock;
  sim::NetworkModel network;
  network.SetDefaultLink(sim::LinkSpec{100, 0, 0.0});
  InProcTransport transport(&clock, &network);
  RpcServer server(1);
  RegisterEchoService(server);
  transport.RegisterNode(1, server);

  RpcClient client(transport, 50);
  ASSERT_TRUE(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).ok());
  EXPECT_EQ(clock.Now(), 200u);  // round trip

  network.SetNodeUp(1, false);
  EXPECT_EQ(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).status().code(),
            StatusCode::kUnavailable);
}

TEST(InProcWithNetwork, OneWayCutRequestLegDropsBeforeExecution) {
  sim::NetworkModel network;
  InProcTransport transport(nullptr, &network);
  RpcServer server(1);
  int executed = 0;
  server.RegisterTyped<EchoRequest, EchoReply>(
      kEcho,
      [&executed](const RpcRequest&, const EchoRequest& req, EchoReply& out) {
        ++executed;
        out.text = req.text;
        return Status::Ok();
      });
  transport.RegisterNode(1, server);
  RpcClient client(transport, 50);

  // Cutting the request leg (client -> server): the handler never runs.
  network.PartitionOneWay(50, 1);
  EXPECT_EQ(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(executed, 0);

  network.HealOneWay(50, 1);
  ASSERT_TRUE(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).ok());
  EXPECT_EQ(executed, 1);
}

TEST(InProcWithNetwork, OneWayCutResponseLegExecutesButLosesReply) {
  sim::NetworkModel network;
  InProcTransport transport(nullptr, &network);
  RpcServer server(1);
  int executed = 0;
  server.RegisterTyped<EchoRequest, EchoReply>(
      kEcho,
      [&executed](const RpcRequest&, const EchoRequest& req, EchoReply& out) {
        ++executed;
        out.text = req.text;
        return Status::Ok();
      });
  transport.RegisterNode(1, server);
  RpcClient client(transport, 50);

  // Cutting only the response leg (server -> client): the server EXECUTES
  // the request, then the reply dies on the way back - the classic
  // half-open link a 2PC coordinator must treat as "outcome unknown".
  network.PartitionOneWay(1, 50);
  EXPECT_EQ(client.Call<EchoReply>(1, kEcho, EchoRequest{"y"}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(executed, 1);

  network.HealOneWay(1, 50);
  ASSERT_TRUE(client.Call<EchoReply>(1, kEcho, EchoRequest{"y"}).ok());
  EXPECT_EQ(executed, 2);
}

TEST(ThreadedTransportTest, ConcurrentCallersAllSucceed) {
  RpcServer server(1);
  RegisterEchoService(server);
  ThreadedTransport transport;
  transport.RegisterNode(1, server);

  constexpr int kThreads = 8;
  constexpr int kCalls = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RpcClient client(transport, static_cast<NodeId>(100 + t));
      for (int i = 0; i < kCalls; ++i) {
        const auto r =
            client.Call<EchoReply>(1, kEcho, EchoRequest{std::to_string(i)});
        if (!r.ok() || r->text != std::to_string(i)) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(transport.TotalAttempts(), kThreads * kCalls);
}

TEST(FailureInjectorTest, BlockFailNextAndProbability) {
  RpcServer server(1);
  RegisterEchoService(server);
  InProcTransport inner;
  inner.RegisterNode(1, server);
  FailureInjector injector(inner);
  RpcClient client(injector, 50);

  injector.BlockNode(1);
  EXPECT_FALSE(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).ok());
  injector.UnblockNode(1);
  EXPECT_TRUE(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).ok());

  injector.FailNext(2);
  EXPECT_FALSE(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).ok());
  EXPECT_FALSE(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).ok());
  EXPECT_TRUE(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).ok());

  injector.SetFailureProbability(1.0);
  EXPECT_FALSE(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).ok());
  injector.SetFailureProbability(0.0);
  EXPECT_TRUE(client.Call<EchoReply>(1, kEcho, EchoRequest{"x"}).ok());
}

TEST(RetryTest, RetriesTransientOnly) {
  int calls = 0;
  const Status st = WithRetry(RetryPolicy{3}, [&] {
    ++calls;
    return Status::Unavailable("flaky");
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);

  calls = 0;
  const Status hard = WithRetry(RetryPolicy{3}, [&] {
    ++calls;
    return Status::NotFound("permanent");
  });
  EXPECT_EQ(hard.code(), StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);

  calls = 0;
  const Status ok = WithRetry(RetryPolicy{3}, [&] {
    ++calls;
    return calls < 2 ? Status::Unavailable("once") : Status::Ok();
  });
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(calls, 2);
}


// --- Byte accounting (rpc.bytes_sent / rpc.bytes_received) ---

struct ListRequest {
  std::vector<std::string> items;
  void Encode(ByteWriter& w) const {
    w.PutVarint(items.size());
    for (const auto& item : items) w.PutString(item);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    items.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string item;
      REPDIR_RETURN_IF_ERROR(r.GetString(item));
      items.push_back(std::move(item));
    }
    return Status::Ok();
  }
};

constexpr MethodId kCount = 7;

TEST(RpcBytes, CallCountsExactlyOneEnvelope) {
  RpcServer server(1);
  server.RegisterTyped<ListRequest, Empty>(
      kCount, [](const RpcRequest&, const ListRequest&, Empty&) {
        return Status::Ok();
      });
  InProcTransport transport;
  transport.RegisterNode(1, server);
  MetricsRegistry metrics;
  RpcClient client(transport, 50, &metrics);

  ListRequest req;
  req.items = {"alpha", "beta"};
  const std::size_t payload_bytes = EncodeToString(req).size();
  ASSERT_TRUE(client.Call<Empty>(1, kCount, req).ok());
  EXPECT_EQ(client.metrics().counter("rpc.bytes_sent").value(),
            payload_bytes + kEnvelopeOverheadBytes);
  EXPECT_EQ(client.metrics().counter("rpc.bytes_received").value(),
            EncodeToString(Empty{}).size() + kEnvelopeOverheadBytes);
}

TEST(RpcBytes, BatchedEnvelopeIsCountedOnceNotPerInnerOp) {
  // Regression: one batched call carrying N inner items must charge ONE
  // envelope's overhead, not N - i.e. strictly fewer bytes than the same
  // items shipped as N single-item calls.
  RpcServer server(1);
  server.RegisterTyped<ListRequest, Empty>(
      kCount, [](const RpcRequest&, const ListRequest&, Empty&) {
        return Status::Ok();
      });
  InProcTransport transport;
  transport.RegisterNode(1, server);

  constexpr int kItems = 16;
  std::vector<std::string> items;
  for (int i = 0; i < kItems; ++i) items.push_back("item-" + std::to_string(i));

  MetricsRegistry batched_metrics;
  RpcClient batched(transport, 50, &batched_metrics);
  ListRequest all;
  all.items = items;
  ASSERT_TRUE(batched.Call<Empty>(1, kCount, all).ok());
  const std::uint64_t batched_bytes =
      batched.metrics().counter("rpc.bytes_sent").value();
  EXPECT_EQ(batched_bytes,
            EncodeToString(all).size() + kEnvelopeOverheadBytes);

  MetricsRegistry singles_metrics;
  RpcClient singles(transport, 51, &singles_metrics);
  std::size_t single_payloads = 0;
  for (const auto& item : items) {
    ListRequest one;
    one.items = {item};
    single_payloads += EncodeToString(one).size();
    ASSERT_TRUE(singles.Call<Empty>(1, kCount, one).ok());
  }
  const std::uint64_t single_bytes =
      singles.metrics().counter("rpc.bytes_sent").value();
  EXPECT_EQ(single_bytes,
            single_payloads + kItems * kEnvelopeOverheadBytes);

  // N-1 envelopes saved (and the shared varint framing).
  EXPECT_LT(batched_bytes,
            single_bytes - (kItems - 1) * kEnvelopeOverheadBytes + 1);

  // The receive side is symmetric: one reply envelope vs N.
  EXPECT_EQ(batched.metrics().counter("rpc.bytes_received").value() +
                (kItems - 1) * (EncodeToString(Empty{}).size() +
                                kEnvelopeOverheadBytes),
            singles.metrics().counter("rpc.bytes_received").value());
}

}  // namespace
}  // namespace repdir::net
