// RetryPolicy exponential backoff: deterministic delay schedule, injectable
// sleep hook, metrics recording, and the ParallelCall per-slot retry path.
#include <gtest/gtest.h>

#include <vector>

#include "common/metrics.h"
#include "net/failure_injector.h"
#include "net/inproc_transport.h"
#include "net/retry.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"

namespace repdir::net {
namespace {

constexpr MethodId kEcho = 1;

void RegisterEcho(RpcServer& server) {
  server.RegisterTyped<Empty, Empty>(
      kEcho, [](const RpcRequest&, const Empty&, Empty&) {
        return Status::Ok();
      });
}

TEST(RetryBackoff, DelayDoublesFromBaseAndCaps) {
  RetryPolicy policy;
  policy.backoff_base_micros = 100;
  policy.backoff_cap_micros = 1'000;
  const std::vector<DurationMicros> expected{100, 200, 400, 800, 1000, 1000};
  for (std::uint32_t k = 1; k <= expected.size(); ++k) {
    EXPECT_EQ(policy.BackoffDelay(k), expected[k - 1]) << "retry " << k;
  }
  EXPECT_EQ(policy.BackoffDelay(0), 0u);
}

TEST(RetryBackoff, ZeroBaseDisablesBackoff) {
  RetryPolicy policy;
  policy.backoff_base_micros = 0;
  bool slept = false;
  policy.sleep = [&](DurationMicros) { slept = true; };
  EXPECT_EQ(policy.BackoffDelay(3), 0u);
  policy.Backoff(3);
  EXPECT_FALSE(slept);
}

TEST(RetryBackoff, WithRetrySleepsTheScheduleThroughTheHook) {
  RetryPolicy policy{3};
  policy.backoff_base_micros = 100;
  policy.backoff_cap_micros = 1'000;
  std::vector<DurationMicros> slept;
  policy.sleep = [&](DurationMicros d) { slept.push_back(d); };

  int calls = 0;
  const Status st = WithRetry(policy, [&] {
    ++calls;
    return Status::Unavailable("flaky");
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  // Two retries: backoff after attempt 1 and attempt 2, not after the last.
  EXPECT_EQ(slept, (std::vector<DurationMicros>{100, 200}));
}

TEST(RetryBackoff, NoBackoffAfterSuccessOrPermanentError) {
  RetryPolicy policy{5};
  policy.backoff_base_micros = 100;
  std::vector<DurationMicros> slept;
  policy.sleep = [&](DurationMicros d) { slept.push_back(d); };

  ASSERT_TRUE(WithRetry(policy, [] { return Status::Ok(); }).ok());
  EXPECT_TRUE(slept.empty());

  const Status hard =
      WithRetry(policy, [] { return Status::NotFound("permanent"); });
  EXPECT_EQ(hard.code(), StatusCode::kNotFound);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryBackoff, WithRetryRecordsMetrics) {
  MetricsRegistry registry;
  RetryPolicy policy{3};
  policy.backoff_base_micros = 100;
  policy.sleep = [](DurationMicros) {};
  const Status st = WithRetry(
      policy, [] { return Status::Unavailable("flaky"); }, &registry);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(registry.counter("rpc.retries").value(), 2u);
  EXPECT_EQ(registry.distribution("rpc.backoff_us").count(), 2u);
  EXPECT_DOUBLE_EQ(registry.distribution("rpc.backoff_us").Moments().max(),
                   200.0);
}

TEST(RetryBackoff, ParallelCallBacksOffBetweenSlotRetries) {
  RpcServer server(1);
  RegisterEcho(server);
  InProcTransport inner;
  inner.RegisterNode(1, server);
  FailureInjector injector(inner);
  MetricsRegistry registry;
  RpcClient client(injector, 50, &registry);

  FanOutOptions options;
  options.retry = RetryPolicy{3};
  options.retry.backoff_base_micros = 100;
  options.retry.backoff_cap_micros = 1'000;
  std::vector<DurationMicros> slept;
  options.retry.sleep = [&](DurationMicros d) { slept.push_back(d); };

  injector.FailNext(2);  // First slot attempt fails twice, then succeeds.
  const auto fan = client.ParallelCall<Empty>(std::vector<NodeId>{1}, kEcho,
                                              Empty{}, kInvalidTxn, options);
  ASSERT_EQ(fan.issued, 1u);
  EXPECT_TRUE(fan.replies[0]->ok());
  EXPECT_EQ(slept, (std::vector<DurationMicros>{100, 200}));
  EXPECT_EQ(registry.counter("rpc.retries").value(), 2u);
  EXPECT_EQ(registry.counter("rpc.attempts").value(), 3u);
  EXPECT_EQ(registry.counter("rpc.failures").value(), 2u);
  EXPECT_EQ(registry.distribution("rpc.backoff_us").count(), 2u);
}

}  // namespace
}  // namespace repdir::net
