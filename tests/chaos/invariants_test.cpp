// Unit tests for the scan-based invariant checkers, including the exact
// quorum-agreement criterion cross-validated against brute-force quorum
// enumeration on randomized deployments.
#include "chaos/invariants.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "rep/quorum.h"

namespace repdir::chaos {
namespace {

using rep::QuorumConfig;
using rep::Replica;
using storage::RepKey;
using storage::StoredEntry;

struct Row {
  UserKey key;
  Version version;
  Value value;
  Version gap_after;
};

/// A well-formed scan: LOW (with the leading gap version), rows in key
/// order, HIGH.
Scan MakeScan(Version low_gap, const std::vector<Row>& rows) {
  Scan scan;
  scan.push_back({RepKey::Low(), 0, "", low_gap});
  for (const auto& r : rows) {
    scan.push_back({RepKey::User(r.key), r.version, r.value, r.gap_after});
  }
  scan.push_back({RepKey::High(), 0, "", 0});
  return scan;
}

QuorumConfig Uniform3() {
  return QuorumConfig({{1, 1}, {2, 1}, {3, 1}}, 2, 2);
}

TEST(EffectiveState, EntryWinsGapCovers) {
  const Scan scan = MakeScan(1, {{"b", 5, "vb", 7}, {"d", 3, "vd", 2}});

  const EffectiveState at_b = EffectiveStateOf(scan, "b");
  EXPECT_TRUE(at_b.present);
  EXPECT_EQ(at_b.version, 5u);
  EXPECT_EQ(at_b.value, "vb");

  // "c" falls in the gap after "b".
  const EffectiveState at_c = EffectiveStateOf(scan, "c");
  EXPECT_FALSE(at_c.present);
  EXPECT_EQ(at_c.version, 7u);

  // "a" falls in LOW's leading gap.
  const EffectiveState at_a = EffectiveStateOf(scan, "a");
  EXPECT_FALSE(at_a.present);
  EXPECT_EQ(at_a.version, 1u);

  // "z" falls in the gap after the last entry.
  const EffectiveState at_z = EffectiveStateOf(scan, "z");
  EXPECT_FALSE(at_z.present);
  EXPECT_EQ(at_z.version, 2u);
}

TEST(WellFormed, AcceptsGoodRejectsBad) {
  EXPECT_TRUE(CheckScanWellFormed(MakeScan(0, {{"a", 1, "x", 0}})).ok());
  EXPECT_TRUE(CheckScanWellFormed(MakeScan(0, {})).ok());

  Scan missing_low = MakeScan(0, {{"a", 1, "x", 0}});
  missing_low.erase(missing_low.begin());
  EXPECT_FALSE(CheckScanWellFormed(missing_low).ok());

  Scan unsorted = MakeScan(0, {{"b", 1, "x", 0}, {"a", 1, "y", 0}});
  EXPECT_FALSE(CheckScanWellFormed(unsorted).ok());

  Scan dup = MakeScan(0, {{"a", 1, "x", 0}, {"a", 2, "y", 0}});
  EXPECT_FALSE(CheckScanWellFormed(dup).ok());
}

TEST(VersionCoherence, FlagsSameVersionDisagreement) {
  ScanMap agree;
  agree[1] = MakeScan(0, {{"a", 2, "x", 0}});
  agree[2] = MakeScan(0, {{"a", 2, "x", 0}});
  agree[3] = MakeScan(0, {});  // stale: absent at gap version 0
  EXPECT_TRUE(CheckVersionCoherence(agree).ok());

  ScanMap value_clash = agree;
  value_clash[2] = MakeScan(0, {{"a", 2, "y", 0}});
  EXPECT_FALSE(CheckVersionCoherence(value_clash).ok());

  // Entry at version 2 on one replica, covering gap version 2 on another:
  // per-key version spaces forbid a present/absent tie.
  ScanMap presence_clash = agree;
  presence_clash[3] = MakeScan(2, {});
  EXPECT_FALSE(CheckVersionCoherence(presence_clash).ok());
}

TEST(QuorumAgreement, FreshMajorityMasksOneStaleReplica) {
  // Replicas 1 and 2 carry the current entry; 3 is stale (missed the
  // write). Any R=2 quorum includes a fresh replica, whose higher version
  // wins: no violation.
  ScanMap scans;
  scans[1] = MakeScan(0, {{"a", 2, "new", 0}});
  scans[2] = MakeScan(0, {{"a", 2, "new", 0}});
  scans[3] = MakeScan(0, {{"a", 1, "old", 0}});
  const Model model = {{"a", "new"}};
  EXPECT_TRUE(CheckQuorumAgreement(Uniform3(), scans, model).ok());
  EXPECT_TRUE(CheckQuorumAgreementExhaustive(Uniform3(), scans, model).ok());
}

TEST(QuorumAgreement, TwoStaleReplicasFormABadQuorum) {
  ScanMap scans;
  scans[1] = MakeScan(0, {{"a", 2, "new", 0}});
  scans[2] = MakeScan(0, {{"a", 1, "old", 0}});
  scans[3] = MakeScan(0, {{"a", 1, "old", 0}});
  const Model model = {{"a", "new"}};
  // Quorum {2, 3} musters R=2 votes and answers "old".
  EXPECT_FALSE(CheckQuorumAgreement(Uniform3(), scans, model).ok());
  EXPECT_FALSE(CheckQuorumAgreementExhaustive(Uniform3(), scans, model).ok());
}

TEST(QuorumAgreement, GhostEntryReachableByQuorumIsViolation) {
  // The model deleted "a" but two replicas still carry it at the highest
  // version they ever saw - a ghost that can win a read quorum.
  ScanMap scans;
  scans[1] = MakeScan(0, {});
  scans[1][0].gap_after = 3;  // delete committed here: gap version 3
  scans[2] = MakeScan(0, {{"a", 2, "ghost", 0}});
  scans[3] = MakeScan(0, {{"a", 2, "ghost", 0}});
  const Model model = {};
  EXPECT_FALSE(CheckQuorumAgreement(Uniform3(), scans, model).ok());
  EXPECT_FALSE(CheckQuorumAgreementExhaustive(Uniform3(), scans, model).ok());
}

TEST(QuorumAgreement, WeightedVotesDecideReachability) {
  // Votes 2-1-1, R=2: the stale one-vote pair {2, 3} reaches R, so a stale
  // answer is reachable. With R=3 it no longer is.
  ScanMap scans;
  scans[1] = MakeScan(0, {{"a", 2, "new", 0}});
  scans[2] = MakeScan(0, {{"a", 1, "old", 0}});
  scans[3] = MakeScan(0, {{"a", 1, "old", 0}});
  const Model model = {{"a", "new"}};

  const QuorumConfig loose({{1, 2}, {2, 1}, {3, 1}}, 2, 3);
  EXPECT_FALSE(CheckQuorumAgreement(loose, scans, model).ok());
  EXPECT_FALSE(CheckQuorumAgreementExhaustive(loose, scans, model).ok());

  const QuorumConfig tight({{1, 2}, {2, 1}, {3, 1}}, 3, 2);
  EXPECT_TRUE(CheckQuorumAgreement(tight, scans, model).ok());
  EXPECT_TRUE(CheckQuorumAgreementExhaustive(tight, scans, model).ok());
}

TEST(QuorumAgreement, WeakReplicaNeverMakesAQuorumBad) {
  // A zero-vote weak replica may sit in any quorum but adds no votes: its
  // stale state alone cannot reach R.
  const QuorumConfig config({{1, 1}, {2, 1}, {3, 0}}, 2, 2);
  ScanMap scans;
  scans[1] = MakeScan(0, {{"a", 2, "new", 0}});
  scans[2] = MakeScan(0, {{"a", 2, "new", 0}});
  scans[3] = MakeScan(0, {{"a", 1, "old", 0}});
  const Model model = {{"a", "new"}};
  EXPECT_TRUE(CheckQuorumAgreement(config, scans, model).ok());
  EXPECT_TRUE(CheckQuorumAgreementExhaustive(config, scans, model).ok());
}

TEST(QuorumAgreement, AmbiguousTieInsideQuorumIsViolation) {
  // Same version, different values: whichever member answers first, a
  // quorum containing both has no well-defined winner.
  ScanMap scans;
  scans[1] = MakeScan(0, {{"a", 2, "x", 0}});
  scans[2] = MakeScan(0, {{"a", 2, "y", 0}});
  scans[3] = MakeScan(0, {{"a", 2, "x", 0}});
  const Model model = {{"a", "x"}};
  EXPECT_FALSE(CheckQuorumAgreement(Uniform3(), scans, model).ok());
  EXPECT_FALSE(CheckQuorumAgreementExhaustive(Uniform3(), scans, model).ok());
}

TEST(QuorumAgreement, ExactMatchesExhaustiveOnRandomDeployments) {
  // Differential test: the exact O(n)-per-key criterion must agree with
  // brute-force enumeration of every vote-sufficient subset, across random
  // topologies, scans, and models.
  Rng rng(2024);
  const std::vector<UserKey> keys = {"a", "b", "c"};
  const std::vector<Value> values = {"x", "y"};
  int violations = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n = 2 + rng.Below(4);  // 2..5 replicas
    std::vector<Replica> replicas;
    Votes total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Votes v = static_cast<Votes>(rng.Below(3));  // 0..2 (weak ok)
      replicas.push_back({static_cast<NodeId>(i + 1), v});
      total += v;
    }
    if (total == 0) continue;
    const Votes r = static_cast<Votes>(1 + rng.Below(total));
    const QuorumConfig config(replicas, r, total);

    ScanMap scans;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<Row> rows;
      for (const auto& key : keys) {
        if (rng.Chance(0.6)) {
          rows.push_back({key, 1 + rng.Below(3), values[rng.Below(2)],
                          rng.Below(3)});
        }
      }
      scans[static_cast<NodeId>(i + 1)] =
          MakeScan(rng.Below(3), rows);
    }
    Model model;
    for (const auto& key : keys) {
      if (rng.Chance(0.5)) model[key] = values[rng.Below(2)];
    }

    const bool exact = CheckQuorumAgreement(config, scans, model).ok();
    const bool brute =
        CheckQuorumAgreementExhaustive(config, scans, model).ok();
    EXPECT_EQ(exact, brute)
        << "trial " << trial << " config " << config.ToString();
    if (!exact) ++violations;
  }
  // The random deployments must exercise both verdicts for the test to
  // mean anything.
  EXPECT_GT(violations, 10);
  EXPECT_LT(violations, 395);
}

}  // namespace
}  // namespace repdir::chaos
