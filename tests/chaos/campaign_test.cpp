// Campaign library: schedule generation determinism, text round-trips,
// green runs across the builtin scenarios, run determinism, and the ddmin
// shrinker.
#include "chaos/campaign.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "chaos/schedule.h"

namespace repdir::chaos {
namespace {

ScenarioSpec Small() {
  ScenarioSpec spec;
  spec.name = "test-3-2-2";
  spec.topology = {{1, 1, 1}, 2, 2};
  spec.steps = 120;
  spec.key_space = 8;
  return spec;
}

TEST(Generate, DeterministicPerSeed) {
  const ScenarioSpec spec = Small();
  const Schedule a = GenerateSchedule(spec, 7);
  const Schedule b = GenerateSchedule(spec, 7);
  const Schedule c = GenerateSchedule(spec, 8);
  EXPECT_EQ(ScheduleToString(a), ScheduleToString(b));
  EXPECT_NE(ScheduleToString(a), ScheduleToString(c));
  EXPECT_EQ(a.size(), spec.steps);
}

TEST(Generate, MixesFaultsAndOps) {
  const ScenarioSpec spec = Small();
  std::set<ChaosEvent::Kind> kinds;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const auto& e : GenerateSchedule(spec, seed)) kinds.insert(e.kind);
  }
  EXPECT_TRUE(kinds.contains(ChaosEvent::Kind::kOp));
  EXPECT_TRUE(kinds.contains(ChaosEvent::Kind::kCrash));
  EXPECT_TRUE(kinds.contains(ChaosEvent::Kind::kRecover));
  EXPECT_TRUE(kinds.contains(ChaosEvent::Kind::kPartition));
  EXPECT_TRUE(kinds.contains(ChaosEvent::Kind::kPartitionOneWay));
  EXPECT_TRUE(kinds.contains(ChaosEvent::Kind::kHeal));
  EXPECT_TRUE(kinds.contains(ChaosEvent::Kind::kSetLink));
  EXPECT_TRUE(kinds.contains(ChaosEvent::Kind::kCheckpoint));
}

TEST(ScheduleText, RoundTrips) {
  const Schedule schedule = GenerateSchedule(Small(), 3);
  const std::string text = ScheduleToString(schedule);
  const auto parsed = ParseSchedule(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(ScheduleToString(*parsed), text);
  EXPECT_EQ(parsed->size(), schedule.size());
}

TEST(ScheduleText, ParsesCommentsAndRejectsGarbage) {
  const auto ok = ParseSchedule(
      "# a comment\n\nop insert 3 17\ncrash 2 torn 9\nrecover 2\nhealall\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 4u);
  EXPECT_TRUE((*ok)[1].torn);
  EXPECT_EQ((*ok)[1].torn_keep, 9u);

  EXPECT_FALSE(ParseSchedule("frobnicate 1 2\n").ok());
  EXPECT_FALSE(ParseSchedule("op insert\n").ok());
}

TEST(Run, GreenAcrossBuiltinScenarios) {
  for (const ScenarioSpec& spec : BuiltinScenarios()) {
    // Trim the heavyweight sweep for unit-test latency; the full sizes run
    // in tools/chaos_campaign.
    ScenarioSpec trimmed = spec;
    trimmed.steps = std::min<std::uint32_t>(trimmed.steps, 150);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Schedule schedule = GenerateSchedule(trimmed, seed);
      const RunOutcome outcome = RunSchedule(trimmed, schedule, seed);
      EXPECT_TRUE(outcome.ok())
          << spec.name << " seed " << seed << ": "
          << outcome.verdict.ToString();
      EXPECT_GT(outcome.ops_attempted, 0u);
    }
  }
}

TEST(Run, BatchedExecutorIsGreenAndDeterministic) {
  // Same schedules as the single-shot executor, grouped 8 ops per
  // transaction: the model still advances op by op, so any batch that
  // commits without its ops' effects (or vice versa) is a verdict.
  ScenarioSpec spec = Small();
  spec.name = "test-batched-3-2-2";
  spec.batch_size = 8;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Schedule schedule = GenerateSchedule(spec, seed);
    const RunOutcome a = RunSchedule(spec, schedule, seed);
    const RunOutcome b = RunSchedule(spec, schedule, seed);
    EXPECT_TRUE(a.ok()) << "seed " << seed << ": " << a.verdict.ToString();
    EXPECT_GT(a.ops_attempted, 0u);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.ops_committed, b.ops_committed);
    EXPECT_EQ(a.ops_rejected, b.ops_rejected);
  }
}

TEST(Run, BatchedAndSingleShotAgreeOnAFaultFreeSchedule) {
  // With no faults every transaction commits, so grouping must be purely
  // an optimization: identical committed model either way.
  ScenarioSpec spec = Small();
  spec.p_crash = spec.p_recover = spec.p_partition = 0;
  spec.p_one_way = spec.p_heal = spec.p_heal_all = 0;
  spec.p_set_link = spec.p_checkpoint = 0;
  const Schedule schedule = GenerateSchedule(spec, 21);
  const RunOutcome single = RunSchedule(spec, schedule, 21);
  ScenarioSpec batched = spec;
  batched.batch_size = 8;
  const RunOutcome grouped = RunSchedule(batched, schedule, 21);
  ASSERT_TRUE(single.ok()) << single.verdict.ToString();
  ASSERT_TRUE(grouped.ok()) << grouped.verdict.ToString();
  EXPECT_EQ(single.committed, grouped.committed);
  EXPECT_EQ(single.ops_attempted, grouped.ops_attempted);
}

TEST(Run, DeterministicReplay) {
  const ScenarioSpec spec = Small();
  const Schedule schedule = GenerateSchedule(spec, 11);
  const RunOutcome a = RunSchedule(spec, schedule, 11);
  const RunOutcome b = RunSchedule(spec, schedule, 11);
  ASSERT_TRUE(a.ok()) << a.verdict.ToString();
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.ops_attempted, b.ops_attempted);
  EXPECT_EQ(a.ops_committed, b.ops_committed);
  EXPECT_EQ(a.ops_unavailable, b.ops_unavailable);
  EXPECT_EQ(a.ops_aborted, b.ops_aborted);
  EXPECT_EQ(a.crashes, b.crashes);
}

TEST(Run, ShardedExecutorIsGreenAndDeterministic) {
  // Two shards x three replicas behind one router, batches straddling the
  // fence: the committed-ops model spans the stitched keyspace and the
  // final checks verdict each shard's replica set against its slice.
  ScenarioSpec spec = Small();
  spec.name = "test-sharded-2x3-2-2";
  spec.shards = 2;
  spec.batch_size = 4;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Schedule schedule = GenerateSchedule(spec, seed);
    const RunOutcome a = RunSchedule(spec, schedule, seed);
    const RunOutcome b = RunSchedule(spec, schedule, seed);
    EXPECT_TRUE(a.ok()) << "seed " << seed << ": " << a.verdict.ToString();
    EXPECT_GT(a.ops_attempted, 0u);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.ops_committed, b.ops_committed);
    EXPECT_EQ(a.ops_rejected, b.ops_rejected);
  }
}

TEST(Run, ShardedAndSingleSuiteAgreeOnAFaultFreeSchedule) {
  // With no faults every op commits on both deployments, so partitioning
  // the keyspace must be purely an optimization: identical committed model
  // whether one suite or two shards served the schedule.
  ScenarioSpec spec = Small();
  spec.p_crash = spec.p_recover = spec.p_partition = 0;
  spec.p_one_way = spec.p_heal = spec.p_heal_all = 0;
  spec.p_set_link = spec.p_checkpoint = 0;
  const Schedule schedule = GenerateSchedule(spec, 33);
  const RunOutcome single = RunSchedule(spec, schedule, 33);
  ScenarioSpec sharded = spec;
  sharded.shards = 2;
  const RunOutcome routed = RunSchedule(sharded, schedule, 33);
  ASSERT_TRUE(single.ok()) << single.verdict.ToString();
  ASSERT_TRUE(routed.ok()) << routed.verdict.ToString();
  EXPECT_EQ(single.committed, routed.committed);
  EXPECT_EQ(single.ops_attempted, routed.ops_attempted);
  EXPECT_EQ(single.ops_committed, routed.ops_committed);
}

TEST(Run, ReconcilerPassesStayGreenAndDeterministic) {
  // Anti-entropy sweeps interleaved with the schedule: repairs ride
  // ordinary transactions, so the committed-ops model and the final
  // invariants must hold, and the run must replay bit-identically.
  ScenarioSpec spec = Small();
  spec.name = "test-reconcile-3-2-2";
  spec.reconcile_every = 25;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Schedule schedule = GenerateSchedule(spec, seed);
    const RunOutcome a = RunSchedule(spec, schedule, seed);
    const RunOutcome b = RunSchedule(spec, schedule, seed);
    EXPECT_TRUE(a.ok()) << "seed " << seed << ": " << a.verdict.ToString();
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.ops_committed, b.ops_committed);
  }
}

TEST(Run, ReconcilerShedsWeakReplicaGhostsUnderFire) {
  ScenarioSpec spec = Small();
  spec.name = "test-reconcile-weak-4-2-2";
  spec.topology = {{1, 1, 1, 0}, 2, 2};
  spec.reconcile_every = 20;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Schedule schedule = GenerateSchedule(spec, seed);
    const RunOutcome outcome = RunSchedule(spec, schedule, seed);
    EXPECT_TRUE(outcome.ok())
        << "seed " << seed << ": " << outcome.verdict.ToString();
  }
}

TEST(Run, MidScheduleSplitWithPartitionAndReconcilerConverges) {
  // The satellite regression as a campaign: split paused after the copy,
  // partition through the source replica set, reconcile, resume - every
  // shard must still match its model slice and the stitched scan the
  // whole model.
  ScenarioSpec spec = Small();
  spec.name = "test-split-reconcile";
  spec.shards = 2;
  spec.reconcile_every = 30;
  spec.split_during_run = true;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Schedule schedule = GenerateSchedule(spec, seed);
    const RunOutcome a = RunSchedule(spec, schedule, seed);
    const RunOutcome b = RunSchedule(spec, schedule, seed);
    EXPECT_TRUE(a.ok()) << "seed " << seed << ": " << a.verdict.ToString();
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.ops_committed, b.ops_committed);
  }
}

TEST(Run, SurvivesFaultHeavySchedules) {
  // Crank every fault probability: the run must still verdict OK (ops may
  // all fail, but invariants hold).
  ScenarioSpec spec = Small();
  spec.name = "fault-heavy";
  spec.p_crash = 0.15;
  spec.p_recover = 0.2;
  spec.p_partition = 0.1;
  spec.p_one_way = 0.1;
  spec.p_heal = 0.1;
  spec.p_set_link = 0.1;
  spec.torn_fraction = 0.6;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Schedule schedule = GenerateSchedule(spec, seed);
    const RunOutcome outcome = RunSchedule(spec, schedule, seed);
    EXPECT_TRUE(outcome.ok())
        << "seed " << seed << ": " << outcome.verdict.ToString();
  }
}

TEST(Shrink, FindsMinimalFailingSubset) {
  // Synthetic predicate: "fails" iff the schedule still contains at least
  // one crash AND at least one heal-all. ddmin must cut 120 events to 2.
  const auto pred = [](const Schedule& s) {
    bool crash = false;
    bool heal_all = false;
    for (const auto& e : s) {
      crash |= e.kind == ChaosEvent::Kind::kCrash;
      heal_all |= e.kind == ChaosEvent::Kind::kHealAll;
    }
    return crash && heal_all;
  };
  Schedule schedule;
  for (std::uint64_t seed = 1; seed <= 64 && !pred(schedule); ++seed) {
    schedule = GenerateSchedule(Small(), seed);
  }
  ASSERT_TRUE(pred(schedule)) << "no seed in 1..64 produced crash+healall";
  const Schedule shrunk = ShrinkSchedule(schedule, pred);
  EXPECT_EQ(shrunk.size(), 2u) << ScheduleToString(shrunk);
  EXPECT_TRUE(pred(shrunk));
}

TEST(Shrink, ShrunkScheduleStillFailsWhenReplayed) {
  // End-to-end on a real (synthetic) failure: declare any committed insert
  // a "failure" and let ddmin minimize; the survivor must be a single op
  // event that still commits when replayed.
  const ScenarioSpec spec = Small();
  const Schedule schedule = GenerateSchedule(spec, 2);
  const auto pred = [&spec](const Schedule& s) {
    return RunSchedule(spec, s, 2).ops_committed > 0;
  };
  ASSERT_TRUE(pred(schedule));
  const Schedule shrunk = ShrinkSchedule(schedule, pred);
  EXPECT_EQ(shrunk.size(), 1u) << ScheduleToString(shrunk);
  EXPECT_EQ(shrunk[0].kind, ChaosEvent::Kind::kOp);
  EXPECT_TRUE(pred(shrunk));
}

TEST(Campaign, SmokeSweepPassesAndReports) {
  std::vector<ScenarioSpec> scenarios;
  ScenarioSpec a = Small();
  a.steps = 80;
  scenarios.push_back(a);
  ScenarioSpec b = Small();
  b.name = "test-cached";
  b.enable_cache = true;
  b.steps = 80;
  scenarios.push_back(b);

  CampaignOptions options;
  options.seeds_per_scenario = 4;
  options.shrink_failures = false;
  const CampaignReport report = RunCampaign(scenarios, options);
  ASSERT_EQ(report.scenarios.size(), 2u);
  EXPECT_TRUE(report.AllPassed());
  for (const auto& s : report.scenarios) {
    EXPECT_EQ(s.seeds_run, 4u);
    EXPECT_EQ(s.seeds_failed, 0u);
    EXPECT_GT(s.ops_committed, 0u);
  }
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"all_passed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"test-cached\""), std::string::npos);
}

TEST(Scenarios, BuiltinsAreValidAndFindable) {
  const auto scenarios = BuiltinScenarios();
  ASSERT_GE(scenarios.size(), 5u);
  bool has_big_weighted = false;
  for (const auto& s : scenarios) {
    const auto config = s.topology.Config();
    EXPECT_TRUE(config.Validate().ok()) << s.name;
    const auto found = FindScenario(s.name);
    ASSERT_TRUE(found.ok()) << s.name;
    EXPECT_EQ(found->name, s.name);
    if (config.size() >= 9 &&
        config.TotalVotes() > static_cast<Votes>(config.size())) {
      has_big_weighted = true;
    }
  }
  // The acceptance sweep needs a >= 9-replica weighted topology.
  EXPECT_TRUE(has_big_weighted);
  EXPECT_FALSE(FindScenario("no-such-scenario").ok());
}

}  // namespace
}  // namespace repdir::chaos
