// VotingFile under real concurrency: whole-file RMW transactions from many
// threads must serialize - the final content reflects every committed
// increment exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baseline/voting_file.h"
#include "lock/deadlock.h"
#include "net/threaded_transport.h"

namespace repdir::baseline {
namespace {

TEST(VotingFileThreaded, ConcurrentIncrementsAllLand) {
  lock::DeadlockDetector detector;
  net::ThreadedTransport transport;
  std::vector<std::unique_ptr<FileRepNode>> nodes;
  for (NodeId id : {1u, 2u, 3u}) {
    nodes.push_back(std::make_unique<FileRepNode>(id, &detector,
                                                  /*blocking_locks=*/true));
    transport.RegisterNode(id, nodes.back()->server());
  }

  {
    VotingFile::Options options;
    options.config = rep::QuorumConfig::Uniform(3, 2, 2);
    VotingFile seeder(transport, 99, std::move(options));
    ASSERT_TRUE(seeder.Write("0").ok());
  }

  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 25;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      VotingFile::Options options;
      options.config = rep::QuorumConfig::Uniform(3, 2, 2);
      options.policy_seed = 1000 + t;
      VotingFile file(transport, static_cast<NodeId>(100 + t),
                      std::move(options));
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        // Retry on conflict aborts until the increment commits.
        for (;;) {
          const Status st = file.Modify([](std::string& content) {
            content = std::to_string(std::stoi(content) + 1);
            return Status::Ok();
          });
          if (st.ok()) {
            committed.fetch_add(1);
            break;
          }
          ASSERT_EQ(st.code(), StatusCode::kAborted) << st;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(committed.load(), kThreads * kIncrementsPerThread);
  VotingFile::Options options;
  options.config = rep::QuorumConfig::Uniform(3, 2, 2);
  VotingFile reader(transport, 200, std::move(options));
  const auto final_content = reader.Read();
  ASSERT_TRUE(final_content.ok());
  EXPECT_EQ(*final_content, std::to_string(kThreads * kIncrementsPerThread));

  // Version advanced once per committed write (seed + increments), on a
  // write quorum of representatives.
  Version max_version = 0;
  for (const auto& node : nodes) {
    max_version = std::max(max_version, node->version());
  }
  EXPECT_EQ(max_version,
            static_cast<Version>(kThreads * kIncrementsPerThread + 1));
}

}  // namespace
}  // namespace repdir::baseline
