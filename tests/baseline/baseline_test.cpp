// Baselines: Gifford voting file, directory-on-a-file, primary copy,
// unanimous configs.
#include <gtest/gtest.h>

#include "baseline/file_directory.h"
#include "baseline/primary_copy.h"
#include "baseline/unanimous.h"
#include "baseline/voting_file.h"
#include "net/inproc_transport.h"
#include "sim/network_model.h"

namespace repdir::baseline {
namespace {

class VotingFileTest : public ::testing::Test {
 protected:
  VotingFileTest() : transport_(nullptr, &network_) {
    for (NodeId id : {1u, 2u, 3u}) {
      nodes_.push_back(std::make_unique<FileRepNode>(
          id, /*detector=*/nullptr, /*blocking_locks=*/false));
      transport_.RegisterNode(id, nodes_.back()->server());
    }
  }

  VotingFile MakeFile(NodeId client, std::uint64_t seed = 42) {
    VotingFile::Options options;
    options.config = rep::QuorumConfig::Uniform(3, 2, 2);
    options.policy_seed = seed;
    return VotingFile(transport_, client, std::move(options));
  }

  sim::NetworkModel network_;
  net::InProcTransport transport_;
  std::vector<std::unique_ptr<FileRepNode>> nodes_;
};

TEST_F(VotingFileTest, ReadAfterWriteRoundTrips) {
  VotingFile file = MakeFile(100);
  ASSERT_TRUE(file.Write("hello").ok());
  const auto r = file.Read();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
}

TEST_F(VotingFileTest, VersionsAdvancePerWrite) {
  VotingFile file = MakeFile(100);
  ASSERT_TRUE(file.Write("a").ok());
  ASSERT_TRUE(file.Write("b").ok());
  ASSERT_TRUE(file.Write("c").ok());
  Version max_version = 0;
  int holders = 0;
  for (const auto& node : nodes_) {
    max_version = std::max(max_version, node->version());
    if (node->version() == 3) ++holders;
  }
  EXPECT_EQ(max_version, 3u);
  EXPECT_GE(holders, 2);  // a write quorum holds version 3
  EXPECT_EQ(*file.Read(), "c");
}

TEST_F(VotingFileTest, SurvivesStaleMinority) {
  VotingFile file = MakeFile(100);
  ASSERT_TRUE(file.Write("v1").ok());
  network_.SetNodeUp(3, false);
  ASSERT_TRUE(file.Write("v2").ok());
  network_.SetNodeUp(3, true);
  // Any read quorum includes a current copy (R=2 of 3).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    VotingFile reader = MakeFile(101, seed);
    EXPECT_EQ(*reader.Read(), "v2");
  }
}

TEST_F(VotingFileTest, UnavailableWithoutQuorum) {
  VotingFile file = MakeFile(100);
  ASSERT_TRUE(file.Write("v").ok());
  network_.SetNodeUp(1, false);
  network_.SetNodeUp(2, false);
  EXPECT_EQ(file.Read().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(file.Write("w").code(), StatusCode::kUnavailable);
}

TEST_F(VotingFileTest, ModifyIsAtomicReadModifyWrite) {
  VotingFile file = MakeFile(100);
  ASSERT_TRUE(file.Write("10").ok());
  ASSERT_TRUE(file.Modify([](std::string& content) {
    content = std::to_string(std::stoi(content) + 5);
    return Status::Ok();
  }).ok());
  EXPECT_EQ(*file.Read(), "15");

  // A failing modification leaves the file untouched.
  ASSERT_FALSE(file.Modify([](std::string&) {
    return Status::InvalidArgument("no");
  }).ok());
  EXPECT_EQ(*file.Read(), "15");
}

class FileDirectoryTest : public VotingFileTest {
 protected:
  FileDirectory MakeDirectory(NodeId client) {
    VotingFile::Options options;
    options.config = rep::QuorumConfig::Uniform(3, 2, 2);
    return FileDirectory(transport_, client, std::move(options));
  }
};

TEST_F(FileDirectoryTest, DirectorySemanticsMatchSuite) {
  FileDirectory dir = MakeDirectory(100);
  EXPECT_FALSE(dir.Lookup("k")->found);
  ASSERT_TRUE(dir.Insert("k", "v1").ok());
  EXPECT_EQ(dir.Insert("k", "v2").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(dir.Lookup("k")->value, "v1");
  ASSERT_TRUE(dir.Update("k", "v2").ok());
  EXPECT_EQ(dir.Lookup("k")->value, "v2");
  EXPECT_EQ(dir.Update("x", "v").code(), StatusCode::kNotFound);
  ASSERT_TRUE(dir.Delete("k").ok());
  EXPECT_EQ(dir.Delete("k").code(), StatusCode::kNotFound);
  EXPECT_FALSE(dir.Lookup("k")->found);
}

TEST_F(FileDirectoryTest, ManyEntriesSurviveRoundTrips) {
  FileDirectory dir = MakeDirectory(100);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(dir.Insert("k" + std::to_string(i), std::to_string(i)).ok());
  }
  for (int i = 0; i < 50; i += 3) {
    ASSERT_TRUE(dir.Delete("k" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 50; ++i) {
    const auto r = dir.Lookup("k" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->found, i % 3 != 0) << i;
  }
}

TEST(FileDirectoryImage, CodecRejectsCorruption) {
  const auto image = FileDirectory::EncodeImage({{"a", "1"}, {"b", "2"}});
  const auto decoded = FileDirectory::DecodeImage(image);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 2u);
  EXPECT_FALSE(FileDirectory::DecodeImage(image + "junk").ok());
  EXPECT_TRUE(FileDirectory::DecodeImage("")->empty());
}

TEST(PrimaryCopy, SecondariesLagUntilRelay) {
  PrimaryCopyDirectory dir(3);
  ASSERT_TRUE(dir.Insert("k", "v1").ok());

  // Primary is fresh; secondaries are stale until the relay flushes.
  EXPECT_TRUE(dir.Lookup(0, "k")->found);
  EXPECT_FALSE(dir.Lookup(0, "k")->stale);
  const auto stale = dir.Lookup(1, "k");
  EXPECT_FALSE(stale->found);
  EXPECT_TRUE(stale->stale);
  EXPECT_EQ(dir.pending_relays(), 1u);

  dir.FlushRelays();
  EXPECT_TRUE(dir.Lookup(1, "k")->found);
  EXPECT_FALSE(dir.Lookup(1, "k")->stale);
  EXPECT_EQ(dir.stale_reads(), 1u);
}

TEST(PrimaryCopy, PartialFlushAppliesInOrder) {
  PrimaryCopyDirectory dir(2);
  ASSERT_TRUE(dir.Insert("k", "v1").ok());
  ASSERT_TRUE(dir.Update("k", "v2").ok());
  ASSERT_TRUE(dir.Delete("k").ok());
  EXPECT_EQ(dir.pending_relays(), 3u);

  dir.FlushRelays(1);
  EXPECT_EQ(dir.Lookup(1, "k")->value, "v1");
  dir.FlushRelays(1);
  EXPECT_EQ(dir.Lookup(1, "k")->value, "v2");
  dir.FlushRelays();
  EXPECT_FALSE(dir.Lookup(1, "k")->found);
  EXPECT_FALSE(dir.Lookup(1, "k")->stale);
}

TEST(PrimaryCopy, SemanticsAtPrimary) {
  PrimaryCopyDirectory dir(2);
  EXPECT_EQ(dir.Update("k", "v").code(), StatusCode::kNotFound);
  ASSERT_TRUE(dir.Insert("k", "v").ok());
  EXPECT_EQ(dir.Insert("k", "w").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(dir.Delete("k").ok());
  EXPECT_EQ(dir.Delete("k").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace repdir::baseline
