// Workload generators and the steady-state driver.
#include <gtest/gtest.h>

#include <map>

#include "wl/key_gen.h"
#include "wl/workload.h"

namespace repdir::wl {
namespace {

/// In-memory DirectoryClient used to test the driver itself.
class LocalDirectory final : public DirectoryClient {
 public:
  Result<std::optional<Value>> Lookup(const UserKey& key) override {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::optional<Value>{};
    return std::optional<Value>{it->second};
  }
  Status Insert(const UserKey& key, const Value& value) override {
    if (map_.contains(key)) return Status::AlreadyExists(key);
    map_[key] = value;
    return Status::Ok();
  }
  Status Update(const UserKey& key, const Value& value) override {
    if (!map_.contains(key)) return Status::NotFound(key);
    map_[key] = value;
    return Status::Ok();
  }
  Status Delete(const UserKey& key) override {
    return map_.erase(key) ? Status::Ok() : Status::NotFound(key);
  }

  const std::map<UserKey, Value>& contents() const { return map_; }

 private:
  std::map<UserKey, Value> map_;
};

TEST(NumericKeyTest, FixedWidthPreservesNumericOrder) {
  EXPECT_EQ(NumericKey(42), "k000000000042");
  EXPECT_LT(NumericKey(9), NumericKey(10));
  EXPECT_LT(NumericKey(999), NumericKey(1000));
}

TEST(UniformKeysTest, StaysInRange) {
  Rng rng(3);
  UniformKeys gen(100, 200);
  for (int i = 0; i < 1000; ++i) {
    const UserKey k = gen.Next(rng);
    EXPECT_GE(k, NumericKey(100));
    EXPECT_LT(k, NumericKey(200));
  }
}

TEST(ZipfianKeysTest, SkewsTowardHotKeys) {
  Rng rng(4);
  ZipfianKeys gen(1000, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.NextRank(rng)];
  // Rank 0 dominates and the top 10 ranks take a large share.
  int top10 = 0;
  for (std::uint64_t r = 0; r < 10; ++r) top10 += counts[r];
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(top10, 20000 / 4);
  for (const auto& [rank, n] : counts) EXPECT_LT(rank, 1000u);
}

TEST(SteadyStateWorkloadTest, FillReachesTarget) {
  LocalDirectory dir;
  WorkloadOptions options;
  options.target_size = 57;
  options.verify_against_model = true;
  SteadyStateWorkload workload(dir, options);
  ASSERT_TRUE(workload.Fill().ok());
  EXPECT_EQ(dir.contents().size(), 57u);
  EXPECT_EQ(workload.live_size(), 57u);
}

TEST(SteadyStateWorkloadTest, SizeStaysNearTarget) {
  LocalDirectory dir;
  WorkloadOptions options;
  options.target_size = 50;
  options.operations = 5000;
  options.verify_against_model = true;
  SteadyStateWorkload workload(dir, options);
  ASSERT_TRUE(workload.Fill().ok());
  ASSERT_TRUE(workload.Run().ok());
  EXPECT_NEAR(static_cast<double>(dir.contents().size()), 50.0, 2.0);
  EXPECT_EQ(workload.report().mismatches, 0u);
  EXPECT_EQ(workload.report().failures, 0u);
}

TEST(SteadyStateWorkloadTest, MixMatchesFractions) {
  LocalDirectory dir;
  WorkloadOptions options;
  options.target_size = 50;
  options.operations = 20000;
  options.update_fraction = 0.25;
  options.lookup_fraction = 0.25;
  SteadyStateWorkload workload(dir, options);
  ASSERT_TRUE(workload.Fill().ok());
  ASSERT_TRUE(workload.Run().ok());
  const WorkloadReport& r = workload.report();
  const double total = static_cast<double>(options.operations);
  EXPECT_NEAR(r.lookups / total, 0.25, 0.02);
  EXPECT_NEAR(r.updates / total, 0.25, 0.02);
  // Churn half splits roughly evenly between inserts and deletes.
  EXPECT_NEAR(r.inserts / total, 0.25, 0.03);
  EXPECT_NEAR(r.deletes / total, 0.25, 0.03);
}

TEST(SteadyStateWorkloadTest, ModelTracksDirectoryExactly) {
  LocalDirectory dir;
  WorkloadOptions options;
  options.target_size = 30;
  options.operations = 3000;
  options.key_space = 200;  // dense: lots of delete/reinsert collisions
  options.verify_against_model = true;
  SteadyStateWorkload workload(dir, options);
  ASSERT_TRUE(workload.Fill().ok());
  ASSERT_TRUE(workload.Run().ok());
  EXPECT_EQ(workload.model(), dir.contents());
}

TEST(SteadyStateWorkloadTest, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    LocalDirectory dir;
    WorkloadOptions options;
    options.target_size = 20;
    options.operations = 500;
    options.seed = seed;
    SteadyStateWorkload workload(dir, options);
    EXPECT_TRUE(workload.Fill().ok());
    EXPECT_TRUE(workload.Run().ok());
    return dir.contents();
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

}  // namespace
}  // namespace repdir::wl
