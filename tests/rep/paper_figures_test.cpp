// Replays of the paper's worked examples:
//   Figures 1-3: the ambiguity that motivates gap versions,
//   Figures 4-5: insert/delete of "b" on a 3-2-2 suite with gap versions,
//   Figures 10-11: ghost skipping and real-successor materialization.
#include <gtest/gtest.h>

#include "storage/dir_rep_core.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

using storage::StoredEntry;

constexpr NodeId kA = 1;
constexpr NodeId kB = 2;
constexpr NodeId kC = 3;

StoredEntry Entry(const std::string& key, Version v, Version gap_after,
                  const std::string& value = "") {
  return StoredEntry{RepKey::User(key), v, value.empty() ? "val-" + key : value,
                     gap_after};
}

/// Figure 1: every representative holds "a" and "c" at version 1.
void LoadFigure1(SuiteHarness& h) {
  for (const NodeId node : {kA, kB, kC}) {
    auto& stg = h.node(node).storage();
    stg.Put(Entry("a", 1, 0));
    stg.Put(Entry("c", 1, 0));
  }
}

class PaperFigures : public ::testing::Test {
 protected:
  PaperFigures() : harness_(QuorumConfig::Uniform(3, 2, 2)) {}
  SuiteHarness harness_;
};

// Figures 1-3 with gap versions: after inserting "b" on {A,B} and deleting
// it via {B,C}, a read quorum {A,C} that sees only the ghost still answers
// "not present" - the ambiguity of the version-per-entry-only scheme is
// resolved.
TEST_F(PaperFigures, DeletionAmbiguityIsResolvedByGapVersions) {
  LoadFigure1(harness_);
  auto [suite, policy] = harness_.NewScriptedSuite(100);

  // Insert "b" using read+write quorums on {A,B}.
  policy->SetDefault({kA, kB, kC});
  ASSERT_TRUE(suite->Insert("b", "val-b").ok());

  // Delete "b" through {B,C}: A keeps the ghost of "b" at version 1.
  policy->SetDefault({kB, kC, kA});
  ASSERT_TRUE(suite->Delete("b").ok());

  const auto ghost = harness_.node(kA).storage().Get(RepKey::User("b"));
  ASSERT_TRUE(ghost.has_value()) << "A should still hold the ghost of b";
  EXPECT_EQ(ghost->version, 1u);

  // The problematic quorum {A,C}: A answers "present v1", C answers
  // "not present v2" - the gap version wins and the suite says absent.
  policy->SetDefault({kA, kC, kB});
  const auto lookup = suite->Lookup("b");
  ASSERT_TRUE(lookup.ok());
  EXPECT_FALSE(lookup->found);
}

// Figure 4: inserting "b" into A and B gives it version 1 (one greater than
// the gap between "a" and "c"), and a {A,C} quorum finds it by version.
TEST_F(PaperFigures, Figure4InsertSplitsGapWithVersionOne) {
  LoadFigure1(harness_);
  auto [suite, policy] = harness_.NewScriptedSuite(100);

  policy->SetDefault({kA, kB, kC});
  ASSERT_TRUE(suite->Insert("b", "val-b").ok());

  for (const NodeId node : {kA, kB}) {
    const auto b = harness_.node(node).storage().Get(RepKey::User("b"));
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->version, 1u) << "node " << node;
    // Both halves of the split gap keep the old gap version 0.
    EXPECT_EQ(b->gap_after, 0u);
    EXPECT_EQ(harness_.node(node).storage().Get(RepKey::User("a"))->gap_after,
              0u);
  }
  EXPECT_FALSE(
      harness_.node(kC).storage().Get(RepKey::User("b")).has_value());

  // Lookup across {A,C}: "present v1" beats "not present v0".
  policy->SetDefault({kA, kC, kB});
  const auto lookup = suite->Lookup("b");
  ASSERT_TRUE(lookup.ok());
  EXPECT_TRUE(lookup->found);
  EXPECT_EQ(lookup->value, "val-b");
}

// Figure 5: deleting "b" via {B,C} coalesces (a, c) to version 2 on both.
TEST_F(PaperFigures, Figure5DeleteCoalescesGapToVersionTwo) {
  LoadFigure1(harness_);
  auto [suite, policy] = harness_.NewScriptedSuite(100);

  policy->SetDefault({kA, kB, kC});
  ASSERT_TRUE(suite->Insert("b", "val-b").ok());

  policy->SetDefault({kB, kC, kA});
  ASSERT_TRUE(suite->Delete("b").ok());

  for (const NodeId node : {kB, kC}) {
    auto& stg = harness_.node(node).storage();
    EXPECT_FALSE(stg.Get(RepKey::User("b")).has_value()) << "node " << node;
    EXPECT_EQ(stg.Get(RepKey::User("a"))->gap_after, 2u) << "node " << node;
  }
  // A was not in the write quorum: ghost remains, gap version unchanged.
  EXPECT_EQ(harness_.node(kA).storage().Get(RepKey::User("a"))->gap_after, 0u);

  // Delete statistics: B erased {b} (1 entry), C erased nothing.
  const auto& stats = suite->stats();
  EXPECT_EQ(stats.entries_in_ranges_coalesced().count(), 2u);
  EXPECT_DOUBLE_EQ(stats.entries_in_ranges_coalesced().max(), 1.0);
  EXPECT_DOUBLE_EQ(stats.deletions_while_coalescing().mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.insertions_while_coalescing().mean(), 0.0);
}

// Figures 10-11: deleting "a" when a ghost ("b") lies between it and its
// real successor ("bb"), and the real successor is missing from a
// write-quorum member (C). The delete must copy "bb" to C and the coalesce
// must eliminate A's ghost of "b".
TEST_F(PaperFigures, Figure10And11GhostSkippingAndMaterialization) {
  // State construction (consistent with some legal history: "b" was
  // deleted through {B,C} with gap version 2; "bb" was then inserted
  // through {A,B} with version 3):
  //   A: LOW |0| a(1) |0| b(1) |0| bb(3) |0| HIGH      (ghost b)
  //   B: LOW |0| a(1) |2| bb(3) |2| HIGH
  //   C: LOW |0| a(1) |2| HIGH                          (no bb)
  {
    auto& a = harness_.node(kA).storage();
    a.Put(Entry("a", 1, 0));
    a.Put(Entry("b", 1, 0));
    a.Put(Entry("bb", 3, 0));
    auto& b = harness_.node(kB).storage();
    b.Put(Entry("a", 1, 2));
    b.Put(Entry("bb", 3, 2));
    auto& c = harness_.node(kC).storage();
    c.Put(Entry("a", 1, 2));
  }

  auto [suite, policy] = harness_.NewScriptedSuite(100);
  // Write quorum {A,C}; all reads via {A,B}.
  policy->Push({kA, kC, kB});
  policy->SetDefault({kA, kB, kC});

  ASSERT_TRUE(suite->Delete("a").ok());

  // Figure 11: A lost "a" and the ghost "b"; LOW..bb coalesced.
  auto& a_stg = harness_.node(kA).storage();
  EXPECT_FALSE(a_stg.Get(RepKey::User("a")).has_value());
  EXPECT_FALSE(a_stg.Get(RepKey::User("b")).has_value());
  ASSERT_TRUE(a_stg.Get(RepKey::User("bb")).has_value());
  // New gap version = max(gap 2, a's version 1) + 1 = 3.
  EXPECT_EQ(a_stg.Get(RepKey::Low())->gap_after, 3u);

  // C received "bb" (version 3) and lost "a".
  auto& c_stg = harness_.node(kC).storage();
  const auto bb_at_c = c_stg.Get(RepKey::User("bb"));
  ASSERT_TRUE(bb_at_c.has_value());
  EXPECT_EQ(bb_at_c->version, 3u);
  EXPECT_FALSE(c_stg.Get(RepKey::User("a")).has_value());

  // B untouched (not in the write quorum): still has "a".
  EXPECT_TRUE(harness_.node(kB).storage().Get(RepKey::User("a")).has_value());

  // Statistics: A coalesced {a, b} (2 entries, 1 ghost); C coalesced {a}.
  const auto& stats = suite->stats();
  EXPECT_EQ(stats.entries_in_ranges_coalesced().count(), 2u);
  EXPECT_DOUBLE_EQ(stats.entries_in_ranges_coalesced().max(), 2.0);
  EXPECT_DOUBLE_EQ(stats.deletions_while_coalescing().mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.insertions_while_coalescing().mean(), 1.0);

  // And the suite still answers correctly everywhere.
  const auto bb = suite->Lookup("bb");
  ASSERT_TRUE(bb.ok());
  EXPECT_TRUE(bb->found);
  const auto a = suite->Lookup("a");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->found);
  const auto b = suite->Lookup("b");
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->found);
}

}  // namespace
}  // namespace repdir::test
