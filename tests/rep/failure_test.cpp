// Failure handling at the suite level: progress with a minority down, clean
// unavailability when quorums are lost, ghost cleanup after rejoin,
// transactions rolled back on mid-operation failures.
#include <gtest/gtest.h>

#include "invariants.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

class SuiteFailures : public ::testing::Test {
 protected:
  SuiteFailures()
      : harness_(QuorumConfig::Uniform(3, 2, 2)),
        suite_(harness_.NewSuite(100)) {}

  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
};

TEST_F(SuiteFailures, OperatesWithOneReplicaDown) {
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  harness_.network().SetNodeUp(3, false);

  // All four operations still work with 2 of 3 up.
  ASSERT_TRUE(suite_->Insert("b", "2").ok());
  ASSERT_TRUE(suite_->Update("a", "1b").ok());
  EXPECT_TRUE(suite_->Lookup("a")->found);
  ASSERT_TRUE(suite_->Delete("b").ok());
  EXPECT_FALSE(suite_->Lookup("b")->found);
  EXPECT_EQ(suite_->stats().counters().unavailable, 0u);
}

TEST_F(SuiteFailures, UnavailableWhenQuorumLost) {
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  harness_.network().SetNodeUp(2, false);
  harness_.network().SetNodeUp(3, false);

  EXPECT_EQ(suite_->Lookup("a").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(suite_->Insert("b", "2").code(), StatusCode::kUnavailable);
  EXPECT_EQ(suite_->Update("a", "x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(suite_->Delete("a").code(), StatusCode::kUnavailable);
  EXPECT_EQ(suite_->stats().counters().unavailable, 4u);

  // Service resumes when a quorum returns.
  harness_.network().SetNodeUp(2, true);
  EXPECT_TRUE(suite_->Lookup("a")->found);
}

TEST_F(SuiteFailures, ReadSideQuorumTuning) {
  // 3-1-3: reads need one replica, writes need all three.
  SuiteHarness h(QuorumConfig::Uniform(3, 1, 3));
  auto suite = h.NewSuite(100);
  ASSERT_TRUE(suite->Insert("a", "1").ok());

  h.network().SetNodeUp(2, false);
  h.network().SetNodeUp(3, false);
  EXPECT_TRUE(suite->Lookup("a")->found);  // read-one still fine
  EXPECT_EQ(suite->Insert("b", "2").code(), StatusCode::kUnavailable);
}

TEST_F(SuiteFailures, RejoinedReplicaCatchesUpThroughUse) {
  ASSERT_TRUE(suite_->Insert("a", "old").ok());
  harness_.network().SetNodeUp(3, false);
  ASSERT_TRUE(suite_->Update("a", "new").ok());
  harness_.network().SetNodeUp(3, true);

  // Node 3 may hold the stale version, but every read quorum includes a
  // current copy, so reads are correct - and a later update through node 3
  // overwrites the stale data.
  std::map<UserKey, Value> model{{"a", "new"}};
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
  ASSERT_TRUE(suite_->Update("a", "newest").ok());
  model["a"] = "newest";
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

TEST_F(SuiteFailures, GhostsFromMissedDeletesAreHarmlessAndCleaned) {
  ASSERT_TRUE(suite_->Insert("g", "v").ok());
  // Node 3 misses the delete.
  harness_.network().SetNodeUp(3, false);
  ASSERT_TRUE(suite_->Delete("g").ok());
  harness_.network().SetNodeUp(3, true);

  EXPECT_TRUE(AllQuorumsAgree(harness_, {}));

  // Surround the ghost and delete the neighborhood through a quorum that
  // includes node 3: the coalesce wipes the ghost physically.
  ASSERT_TRUE(suite_->Insert("f", "v").ok());
  ASSERT_TRUE(suite_->Insert("h", "v").ok());
  // Make node 3 preferred so it lands in quorums.
  auto [suite2, policy] = harness_.NewScriptedSuite(101);
  policy->SetDefault({3, 1, 2});
  ASSERT_TRUE(suite2->Delete("f").ok());
  ASSERT_TRUE(suite2->Delete("h").ok());

  EXPECT_FALSE(harness_.node(3).storage().Get(RepKey::User("g")).has_value())
      << harness_.Dump(3);
  EXPECT_TRUE(AllQuorumsAgree(harness_, {}));
}

TEST_F(SuiteFailures, MidTransactionFailureRollsBackCleanly) {
  ASSERT_TRUE(suite_->Insert("a", "1").ok());

  // Write quorum collection succeeds (ping), then the node dies before the
  // insert RPCs arrive: the operation must fail and leave no partial state.
  auto [suite2, policy] = harness_.NewScriptedSuite(101);
  policy->SetDefault({1, 2, 3});

  // Fail node 2 after quorum collection by dropping it mid-operation: we
  // emulate this by a policy pointing at a node that goes down between two
  // suite calls - simplest deterministic variant: take node 2 down, then
  // issue the op; collection skips it, so instead take it down AFTER a
  // successful op to confirm rollback on 2PC: here we verify the abort path
  // via lock conflict instead.
  // Lock-conflict abort: suite2 holds nothing yet; create a conflicting
  // transaction manually through a participant to occupy the key.
  auto& participant = harness_.node(1).participant();
  ASSERT_TRUE(participant.Insert(/*txn=*/0xdead, RepKey::User("b"), 9, "x").ok());

  const Status st = suite2->Insert("b", "2");
  EXPECT_EQ(st.code(), StatusCode::kAborted);

  // The blocker aborts; afterwards the suite can insert normally.
  ASSERT_TRUE(participant.Abort(0xdead).ok());
  ASSERT_TRUE(suite2->Insert("b", "2").ok());
  std::map<UserKey, Value> model{{"a", "1"}, {"b", "2"}};
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

TEST_F(SuiteFailures, FlakyNetworkWithRetriesStillMakesProgress) {
  // 20% message loss, suite retries each call up to 5 times.
  harness_.network().SetDefaultLink(sim::LinkSpec{0, 0, 0.2});
  rep::DirectorySuite::Options options;
  options.config = harness_.config();
  options.policy_seed = 5;
  options.rpc_retry.max_attempts = 5;
  // Instant sleep hook: the retries here probe the deterministic transport
  // again immediately - real exponential backoff would only slow the test.
  options.rpc_retry.sleep = [](DurationMicros) {};
  rep::DirectorySuite flaky(harness_.transport(), 102, std::move(options));

  int success = 0;
  for (int i = 0; i < 40; ++i) {
    if (flaky.Insert("k" + std::to_string(i), "v").ok()) ++success;
  }
  // With retries, the vast majority of operations should succeed.
  EXPECT_GE(success, 30);
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

}  // namespace
}  // namespace repdir::test
