// The §3.3 correctness invariant, checked directly: "the current data for
// each key has a version number greater than that of any non-current data
// for that key."
//
// A shadow tracker records, after every committed operation, what the
// current (key -> version) truth is. The invariant test then sweeps every
// representative: for every key, every stale copy (entry version differing
// from the current version, or any entry where the key is deleted) must be
// strictly older than the current version; and where the key is absent,
// the containing gap's version at SOME read-quorum-reachable set must
// dominate. We check the strongest local form: for each key,
//   max over reps of (its answer's version) == the canonical version, and
//   every rep answer with a different payload has a strictly lower version.
#include <gtest/gtest.h>

#include "invariants.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

struct Canonical {
  bool present = false;
  Version version = 0;  ///< Entry version if present; gap version if not.
  Value value;
};

/// Recomputes canonical truth for `key` as the suite's Fig. 8 rule over ALL
/// representatives (a superset of any read quorum - legal because every
/// committed write reached a write quorum, so the global max equals every
/// quorum max).
Canonical CanonicalOf(SuiteHarness& h, const UserKey& key) {
  Canonical best;
  bool first = true;
  for (const auto& replica : h.config().replicas()) {
    const storage::DirRepCore core(h.node(replica.node).storage());
    const auto reply = core.Lookup(RepKey::User(key));
    if (first || reply.version > best.version) {
      best.present = reply.present;
      best.version = reply.version;
      best.value = reply.value;
      first = false;
    }
  }
  return best;
}

class VersionInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VersionInvariant, CurrentDataStrictlyDominatesStaleData) {
  SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2));
  auto suite = harness.NewSuite(100, nullptr, GetParam());
  Rng rng(GetParam() * 97 + 3);

  std::map<UserKey, Value> model;
  for (int step = 0; step < 500; ++step) {
    // Periodically fail/heal a node so stale copies accumulate.
    if (step % 50 == 10) {
      harness.network().SetNodeUp(1 + (step / 50) % 3, false);
    }
    if (step % 50 == 35) {
      harness.network().SetNodeUp(1 + (step / 50) % 3, true);
    }

    const std::string key = "k" + std::to_string(rng.Below(15));
    switch (rng.Below(3)) {
      case 0:
        if (suite->Insert(key, "v" + std::to_string(step)).ok()) {
          model[key] = "v" + std::to_string(step);
        }
        break;
      case 1:
        if (suite->Update(key, "u" + std::to_string(step)).ok()) {
          model[key] = "u" + std::to_string(step);
        }
        break;
      default:
        if (suite->Delete(key).ok()) model.erase(key);
        break;
    }

    if (step % 25 != 0) continue;

    // Sweep every key seen anywhere.
    std::set<UserKey> keys;
    for (const auto& replica : harness.config().replicas()) {
      for (const auto& e : harness.node(replica.node).storage().Scan()) {
        if (e.key.is_user()) keys.insert(e.key.user());
      }
    }
    for (const auto& k : keys) {
      const Canonical canon = CanonicalOf(harness, k);
      // Canonical truth must match the committed model.
      const auto it = model.find(k);
      ASSERT_EQ(canon.present, it != model.end())
          << "step " << step << " key " << k;
      if (canon.present) {
        ASSERT_EQ(canon.value, it->second) << "step " << step << " key " << k;
      }
      // Strict dominance: every representative whose answer differs from
      // the canonical one must report a strictly smaller version.
      for (const auto& replica : harness.config().replicas()) {
        const storage::DirRepCore core(harness.node(replica.node).storage());
        const auto reply = core.Lookup(RepKey::User(k));
        const bool same_payload = reply.present == canon.present &&
                                  (!reply.present ||
                                   reply.value == canon.value);
        if (!same_payload) {
          ASSERT_LT(reply.version, canon.version)
              << "node " << replica.node << " key " << k << " step " << step
              << ": stale data not dominated\n  "
              << harness.Dump(replica.node);
        }
      }
    }
  }
  EXPECT_TRUE(AllRepsWellFormed(harness));
  EXPECT_TRUE(AllQuorumsAgree(harness, model));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionInvariant,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace repdir::test
