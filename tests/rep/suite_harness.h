// Test harness: a complete in-process directory-suite deployment on the
// deterministic transport (now provided by chaos::Deployment, shared with
// the chaos campaign executor), plus a scripted quorum policy for scenario
// tests that need exact control over quorum membership (the paper's worked
// examples).
#pragma once

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "chaos/deployment.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

namespace repdir::test {

using rep::DirectorySuite;
using rep::DirRepNode;
using rep::DirRepNodeOptions;
using rep::OpClass;
using rep::QuorumConfig;
using storage::RepKey;

/// Returns scripted preference orders in FIFO order; falls back to the
/// config order when the script runs dry. Push one order per expected
/// CollectQuorum call (reads and writes share one queue: the suite's quorum
/// collection order is deterministic, see DirectorySuite internals).
class ScriptedPolicy final : public rep::QuorumPolicy {
 public:
  explicit ScriptedPolicy(std::vector<NodeId> fallback)
      : fallback_(std::move(fallback)) {}

  void Push(std::vector<NodeId> order) { script_.push_back(std::move(order)); }

  /// Every subsequent call uses this order until changed.
  void SetDefault(std::vector<NodeId> order) { fallback_ = std::move(order); }

  std::vector<NodeId> PreferenceOrder(OpClass) override {
    if (script_.empty()) return fallback_;
    auto order = std::move(script_.front());
    script_.pop_front();
    return order;
  }

 private:
  std::deque<std::vector<NodeId>> script_;
  std::vector<NodeId> fallback_;
};

/// One deployment: N representatives + deterministic transport + network
/// model for failure injection (see chaos::Deployment for the substrate).
class SuiteHarness : public chaos::Deployment {
 public:
  using chaos::Deployment::Deployment;

  /// A suite driven by a ScriptedPolicy; the policy stays owned by the
  /// suite but is also returned for scripting.
  std::pair<std::unique_ptr<DirectorySuite>, ScriptedPolicy*> NewScriptedSuite(
      NodeId client_node, bool enable_cache = false) {
    auto policy = std::make_unique<ScriptedPolicy>(config().Nodes());
    ScriptedPolicy* raw = policy.get();
    return {NewSuite(client_node, std::move(policy), 42, enable_cache), raw};
  }
};

}  // namespace repdir::test
