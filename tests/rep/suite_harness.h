// Test harness: a complete in-process directory-suite deployment on the
// deterministic transport, plus a scripted quorum policy for scenario tests
// that need exact control over quorum membership (the paper's worked
// examples).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "sim/network_model.h"

namespace repdir::test {

using rep::DirectorySuite;
using rep::DirRepNode;
using rep::DirRepNodeOptions;
using rep::OpClass;
using rep::QuorumConfig;
using storage::RepKey;

/// Returns scripted preference orders in FIFO order; falls back to the
/// config order when the script runs dry. Push one order per expected
/// CollectQuorum call (reads and writes share one queue: the suite's quorum
/// collection order is deterministic, see DirectorySuite internals).
class ScriptedPolicy final : public rep::QuorumPolicy {
 public:
  explicit ScriptedPolicy(std::vector<NodeId> fallback)
      : fallback_(std::move(fallback)) {}

  void Push(std::vector<NodeId> order) { script_.push_back(std::move(order)); }

  /// Every subsequent call uses this order until changed.
  void SetDefault(std::vector<NodeId> order) { fallback_ = std::move(order); }

  std::vector<NodeId> PreferenceOrder(OpClass) override {
    if (script_.empty()) return fallback_;
    auto order = std::move(script_.front());
    script_.pop_front();
    return order;
  }

 private:
  std::deque<std::vector<NodeId>> script_;
  std::vector<NodeId> fallback_;
};

/// One deployment: N representatives + deterministic transport + network
/// model for failure injection.
class SuiteHarness {
 public:
  explicit SuiteHarness(QuorumConfig config, DirRepNodeOptions node_options =
                                                 DefaultNodeOptions())
      : config_(std::move(config)),
        network_(/*seed=*/99),
        transport_(nullptr, &network_) {
    for (const auto& replica : config_.replicas()) {
      nodes_.push_back(
          std::make_unique<DirRepNode>(replica.node, node_options));
      transport_.RegisterNode(replica.node, nodes_.back()->server());
    }
  }

  /// Representatives in the deterministic simulator run one transaction at
  /// a time, so conflicts indicate bugs: use non-blocking locks to fail
  /// fast instead of deadlocking the single thread.
  static DirRepNodeOptions DefaultNodeOptions() {
    DirRepNodeOptions options;
    options.participant.blocking_locks = false;
    return options;
  }

  /// A suite client with an explicit policy (pass nullptr for the default
  /// seeded random policy). The version cache defaults OFF so deterministic
  /// scenario tests keep their exact message flows; cache-specific tests
  /// opt in via `enable_cache`.
  std::unique_ptr<DirectorySuite> NewSuite(
      NodeId client_node, std::unique_ptr<rep::QuorumPolicy> policy = nullptr,
      std::uint64_t seed = 42, bool enable_cache = false) {
    DirectorySuite::Options options;
    options.config = config_;
    options.policy = std::move(policy);
    options.policy_seed = seed;
    options.enable_version_cache = enable_cache;
    return std::make_unique<DirectorySuite>(transport_, client_node,
                                            std::move(options));
  }

  /// A suite driven by a ScriptedPolicy; the policy stays owned by the
  /// suite but is also returned for scripting.
  std::pair<std::unique_ptr<DirectorySuite>, ScriptedPolicy*> NewScriptedSuite(
      NodeId client_node, bool enable_cache = false) {
    auto policy = std::make_unique<ScriptedPolicy>(config_.Nodes());
    ScriptedPolicy* raw = policy.get();
    return {NewSuite(client_node, std::move(policy), 42, enable_cache), raw};
  }

  DirRepNode& node(NodeId id) {
    for (auto& n : nodes_) {
      if (n->id() == id) return *n;
    }
    std::abort();
  }

  const QuorumConfig& config() const { return config_; }
  sim::NetworkModel& network() { return network_; }
  net::InProcTransport& transport() { return transport_; }

  /// All user entries of a representative as (key, version) pairs, plus a
  /// dump string, for scenario assertions.
  std::string Dump(NodeId id) { return storage::DumpRep(node(id).storage()); }

 private:
  QuorumConfig config_;
  sim::NetworkModel network_;
  net::InProcTransport transport_;
  std::vector<std::unique_ptr<DirRepNode>> nodes_;
};

}  // namespace repdir::test
