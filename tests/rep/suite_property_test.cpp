// Property test: long random operation histories against a model, across
// quorum configurations, storage backends, and seeds. After every chunk of
// operations the whole deployment must satisfy:
//   * structural invariants on every representative,
//   * EVERY vote-sufficient read quorum agrees with the model on every key
//     that exists anywhere (including ghosts) - the paper's core claim.
#include <gtest/gtest.h>

#include "invariants.h"
#include "suite_harness.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace repdir::test {
namespace {

struct PropertyParam {
  std::string name;
  std::uint32_t reps;
  Votes read_quorum;
  Votes write_quorum;
  DirRepNodeOptions::Backend backend;
  std::uint64_t seed;
  std::uint32_t weak_nodes = 0;      ///< Extra zero-vote representatives.
  std::uint32_t neighbor_batch = 1;  ///< §4 batching.
};

std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name =
      info.param.name +
      (info.param.backend == DirRepNodeOptions::Backend::kMap ? "_map"
                                                              : "_btree") +
      "_seed" + std::to_string(info.param.seed);
  if (info.param.weak_nodes > 0) {
    name += "_weak" + std::to_string(info.param.weak_nodes);
  }
  if (info.param.neighbor_batch > 1) {
    name += "_batch" + std::to_string(info.param.neighbor_batch);
  }
  return name;
}

class SuitePropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(SuitePropertyTest, RandomHistoryMatchesModelOnEveryQuorum) {
  const PropertyParam& p = GetParam();

  DirRepNodeOptions node_options = SuiteHarness::DefaultNodeOptions();
  node_options.backend = p.backend;
  node_options.btree_fanout = 4;  // deep trees: exercise splits/merges

  std::vector<rep::Replica> replicas;
  for (std::uint32_t i = 0; i < p.reps; ++i) {
    replicas.push_back(rep::Replica{i + 1, 1});
  }
  for (std::uint32_t i = 0; i < p.weak_nodes; ++i) {
    replicas.push_back(rep::Replica{100 + i, 0});
  }
  SuiteHarness harness(
      QuorumConfig(std::move(replicas), p.read_quorum, p.write_quorum),
      node_options);

  rep::DirectorySuite::Options suite_options;
  suite_options.config = harness.config();
  suite_options.policy_seed = p.seed * 7919 + 13;
  suite_options.neighbor_batch = p.neighbor_batch;
  auto suite = std::make_unique<DirectorySuite>(harness.transport(), 200,
                                                std::move(suite_options));
  wl::SuiteClient client(*suite);

  wl::WorkloadOptions options;
  options.target_size = 40;
  options.operations = 250;
  options.seed = p.seed;
  options.verify_against_model = true;
  options.key_space = 4000;  // dense space: deletes frequently have ghosts

  wl::SteadyStateWorkload workload(client, options);
  ASSERT_TRUE(workload.Fill().ok());

  for (int chunk = 0; chunk < 8; ++chunk) {
    const Status st = workload.Run();
    ASSERT_TRUE(st.ok()) << "chunk " << chunk << ": " << st.ToString();
    ASSERT_TRUE(AllRepsWellFormed(harness)) << "chunk " << chunk;
    ASSERT_TRUE(AllQuorumsAgree(harness, workload.model()))
        << "chunk " << chunk;
    ASSERT_EQ(workload.report().mismatches, 0u);
  }

  // The workload must have actually exercised deletions with coalescing.
  EXPECT_GT(workload.report().deletes, 100u);
  EXPECT_GT(suite->stats().entries_in_ranges_coalesced().count(), 0u);
}

constexpr auto kMap = DirRepNodeOptions::Backend::kMap;
constexpr auto kBTree = DirRepNodeOptions::Backend::kBTree;

INSTANTIATE_TEST_SUITE_P(
    Configs, SuitePropertyTest,
    ::testing::Values(
        PropertyParam{"1_1_1", 1, 1, 1, kMap, 1},
        PropertyParam{"2_1_2", 2, 1, 2, kMap, 1},
        PropertyParam{"2_2_1", 2, 2, 1, kMap, 1},
        PropertyParam{"3_2_2", 3, 2, 2, kMap, 1},
        PropertyParam{"3_2_2", 3, 2, 2, kMap, 2},
        PropertyParam{"3_2_2", 3, 2, 2, kBTree, 1},
        PropertyParam{"3_2_2", 3, 2, 2, kBTree, 2},
        PropertyParam{"3_1_3", 3, 1, 3, kMap, 1},
        PropertyParam{"3_3_1", 3, 3, 1, kMap, 1},
        PropertyParam{"4_2_3", 4, 2, 3, kMap, 1},
        PropertyParam{"4_2_3", 4, 2, 3, kBTree, 3},
        PropertyParam{"4_3_2", 4, 3, 2, kMap, 1},
        PropertyParam{"5_3_3", 5, 3, 3, kMap, 1},
        PropertyParam{"5_3_3", 5, 3, 3, kBTree, 4},
        PropertyParam{"5_4_2", 5, 4, 2, kMap, 2},
        PropertyParam{"5_2_4", 5, 2, 4, kMap, 2},
        // Extensions in the same harness: weak hint nodes and §4 batching.
        PropertyParam{"3_2_2", 3, 2, 2, kMap, 5, /*weak=*/1},
        PropertyParam{"3_2_2", 3, 2, 2, kBTree, 6, /*weak=*/2},
        PropertyParam{"3_2_2", 3, 2, 2, kMap, 7, /*weak=*/0, /*batch=*/3},
        PropertyParam{"5_3_3", 5, 3, 3, kMap, 8, /*weak=*/1, /*batch=*/3}),
    ParamName);

// Weighted-vote configuration: one heavy replica (2 votes) + three light.
TEST(SuiteWeightedVotes, HeavyReplicaParticipatesCorrectly) {
  QuorumConfig config({{1, 2}, {2, 1}, {3, 1}, {4, 1}}, /*read=*/3,
                      /*write=*/3);
  ASSERT_TRUE(config.Validate().ok());

  SuiteHarness harness(config);
  auto suite = harness.NewSuite(100);
  wl::SuiteClient client(*suite);

  wl::WorkloadOptions options;
  options.target_size = 30;
  options.operations = 600;
  options.verify_against_model = true;
  options.key_space = 2000;

  wl::SteadyStateWorkload workload(client, options);
  ASSERT_TRUE(workload.Fill().ok());
  ASSERT_TRUE(workload.Run().ok());
  EXPECT_TRUE(AllRepsWellFormed(harness));
  EXPECT_TRUE(AllQuorumsAgree(harness, workload.model()));
}

}  // namespace
}  // namespace repdir::test
