// Anti-entropy reconciliation (rep/reconciler.h): a replica driven stale
// converges to quorum state through digest-driven repair alone - no suite
// traffic - with digest bytes well under a full-state transfer; ghost debt
// is collected exactly; repairs never regress a newer replica; and a
// reconciled weak replica serves trustworthy single-replica stale reads.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "invariants.h"
#include "net/wire.h"
#include "rep/reconciler.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

using rep::ReconcileStats;
using rep::Reconciler;
using storage::StoredEntry;

constexpr NodeId kReconcilerNode = 101;  // distinct from suites (100)

QuorumConfig Config322() { return QuorumConfig::Uniform(3, 2, 2); }

/// User entries of `node` whose key is NOT in the committed model - the
/// replica's ghost debt plus any stale leftovers.
std::uint64_t GhostCount(SuiteHarness& h, NodeId node,
                         const std::map<UserKey, Value>& model) {
  std::uint64_t n = 0;
  for (const StoredEntry& e : h.node(node).storage().Scan()) {
    if (e.key.is_user() && model.find(e.key.user()) == model.end()) ++n;
  }
  return n;
}

/// Bytes one enveloped message shipping `node`'s full state would occupy -
/// the baseline reconciliation's digest pruning competes against.
std::uint64_t FullStateBytes(SuiteHarness& h, NodeId node) {
  rep::FetchRangeReply all;
  for (const StoredEntry& e : h.node(node).storage().Scan()) {
    if (e.key.is_user()) all.entries.push_back(e);
  }
  return net::EncodedWireSize(all);
}

class ReconcileTest : public ::testing::Test {
 protected:
  // W = 2 of V = 3: a random policy spreads writes over ever-changing
  // pairs, so EVERY replica is stale somewhere. Pin the preference order
  // to {1, 3, 2} instead - node 1 sees every write and acts as the known
  // current source, node 3 goes stale exactly when we partition it.
  ReconcileTest() : harness_(Config322()) {
    auto scripted = harness_.NewScriptedSuite(100);
    suite_ = std::move(scripted.first);
    scripted.second->SetDefault({1, 3, 2});
  }

  Reconciler MakeReconciler(Reconciler::Options options = {}) {
    return Reconciler(harness_.transport(), kReconcilerNode,
                      harness_.config(), std::move(options));
  }

  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
  std::map<UserKey, Value> model_;

  /// Insert-if-absent, else delete or update by step: keeps a churn of all
  /// three mutation kinds flowing against keys that actually exist.
  void Apply(int step, const std::string& key) {
    if (model_.find(key) == model_.end()) {
      if (suite_->Insert(key, "v" + std::to_string(step)).ok()) {
        model_[key] = "v" + std::to_string(step);
      }
    } else if (step % 3 == 2) {
      if (suite_->Delete(key).ok()) model_.erase(key);
    } else {
      if (suite_->Update(key, "u" + std::to_string(step)).ok()) {
        model_[key] = "u" + std::to_string(step);
      }
    }
  }
};

TEST_F(ReconcileTest, StaleReplicaConvergesWithoutSuiteTraffic) {
  for (int i = 0; i < 40; ++i) Apply(i, "k" + std::to_string(i % 12));

  // Node 3 misses everything from here on.
  harness_.network().SetNodeUp(3, false);
  for (int i = 40; i < 120; ++i) Apply(i, "k" + std::to_string(i % 12));
  harness_.network().SetNodeUp(3, true);

  ASSERT_NE(harness_.Dump(1), harness_.Dump(3)) << "node 3 should be stale";

  Reconciler rec = MakeReconciler();
  ASSERT_TRUE(rec.SyncPair(1, 3).ok());

  // Repair alone made the replicas bit-identical: same entries, same
  // versions, same gap versions.
  EXPECT_EQ(harness_.node(1).storage().Scan(),
            harness_.node(3).storage().Scan())
      << "1: " << harness_.Dump(1) << "\n3: " << harness_.Dump(3);
  EXPECT_GT(rec.stats().entries_installed + rec.stats().ghosts_collected +
                rec.stats().gap_bumps,
            0u);
  EXPECT_EQ(rec.stats().repair_aborts, 0u);
  EXPECT_TRUE(AllRepsWellFormed(harness_));
  EXPECT_TRUE(AllQuorumsAgree(harness_, model_));
}

TEST_F(ReconcileTest, DigestWalkShipsFarLessThanFullState) {
  const std::string pad(64, 'x');  // realistic value size dominates digests
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(suite_->Insert("key" + std::to_string(1000 + i),
                               "value-" + std::to_string(i) + pad)
                    .ok());
  }
  // Node 3 misses a handful of writes only.
  harness_.network().SetNodeUp(3, false);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(suite_->Update("key" + std::to_string(1000 + 77 * i),
                               "fresh-" + std::to_string(i))
                    .ok());
  }
  harness_.network().SetNodeUp(3, true);

  Reconciler::Options options;
  options.leaf_entries = 8;
  Reconciler rec = MakeReconciler(std::move(options));
  ASSERT_TRUE(rec.SyncPair(1, 3).ok());
  EXPECT_EQ(harness_.node(1).storage().Scan(),
            harness_.node(3).storage().Scan());

  const std::uint64_t full = FullStateBytes(harness_, 1);
  const ReconcileStats& s = rec.stats();
  EXPECT_LT(s.digest_bytes, full / 4)
      << "digest walk should be a small fraction of the state ("
      << s.digest_bytes << " vs " << full << " bytes)";
  EXPECT_LT(s.digest_bytes + s.repair_bytes, full)
      << "whole reconciliation should undercut a full-state transfer";
  EXPECT_GT(s.ranges_checked, s.ranges_mismatched)
      << "matching digests should have pruned subtrees";
}

TEST_F(ReconcileTest, RunOnceCollectsAllGhostsExactly) {
  // Drive every replica out of sync a little: flap voting members while
  // inserting and deleting, piling up ghosts on whoever missed a delete.
  for (int i = 0; i < 30; ++i) Apply(0, "g" + std::to_string(i));  // inserts
  for (int i = 0; i < 30; ++i) {
    if (i % 7 == 0) {
      harness_.network().SetNodeUp(1 + (i / 7) % 3, false);
      Apply(2, "g" + std::to_string(i));  // delete under a degraded quorum
      harness_.network().SetNodeUp(1 + (i / 7) % 3, true);
    } else {
      Apply(2, "g" + std::to_string(i));
    }
  }

  std::uint64_t before = 0;
  for (const NodeId n : harness_.config().Nodes()) {
    before += GhostCount(harness_, n, model_);
  }
  ASSERT_GT(before, 0u) << "scenario should have produced ghost debt";

  Reconciler rec = MakeReconciler();
  ASSERT_TRUE(rec.RunOnce().ok());
  EXPECT_EQ(rec.stats().replicas_failed, 0u);

  std::uint64_t after = 0;
  for (const NodeId n : harness_.config().Nodes()) {
    after += GhostCount(harness_, n, model_);
  }
  EXPECT_EQ(after, 0u) << "a full pass folds a read quorum into every "
                          "replica, which covers every committed delete";
  // Exact-effect accounting: the counter moves by precisely the ghosts
  // that disappeared (satellite: ghost GC outside the delete path must
  // keep the census honest).
  EXPECT_EQ(rec.stats().ghosts_collected, before - after);
  EXPECT_TRUE(AllQuorumsAgree(harness_, model_));
}

TEST_F(ReconcileTest, SecondPassIsAllPruneNoRepair) {
  for (int i = 0; i < 60; ++i) Apply(i, "k" + std::to_string(i % 10));
  harness_.network().SetNodeUp(2, false);
  for (int i = 60; i < 90; ++i) Apply(i, "k" + std::to_string(i % 10));
  harness_.network().SetNodeUp(2, true);

  Reconciler rec = MakeReconciler();
  ASSERT_TRUE(rec.RunOnce().ok());
  const std::uint64_t txns_after_first = rec.stats().repair_txns;

  const auto scans = harness_.Scans();
  ASSERT_TRUE(rec.RunOnce().ok());
  EXPECT_EQ(rec.stats().repair_txns, txns_after_first)
      << "converged replicas must digest clean: no repair transactions";
  EXPECT_EQ(harness_.Scans(), scans) << "idempotence: states unchanged";
}

TEST_F(ReconcileTest, StaleSourceNeverRegressesNewerTarget) {
  for (int i = 0; i < 40; ++i) Apply(i, "k" + std::to_string(i % 8));
  harness_.network().SetNodeUp(3, false);
  for (int i = 40; i < 80; ++i) Apply(i, "k" + std::to_string(i % 8));
  harness_.network().SetNodeUp(3, true);

  const auto current = harness_.node(1).storage().Scan();
  Reconciler rec = MakeReconciler();
  // Sync FROM the stale replica INTO the current one: every install and
  // every coalesce must lose to the newer local state.
  ASSERT_TRUE(rec.SyncPair(3, 1).ok());
  EXPECT_EQ(harness_.node(1).storage().Scan(), current)
      << "repairs moved a replica backward";
  EXPECT_EQ(rec.stats().entries_installed, 0u);
  EXPECT_EQ(rec.stats().ghosts_collected, 0u);
  EXPECT_EQ(rec.stats().gap_bumps, 0u);
  EXPECT_TRUE(AllQuorumsAgree(harness_, model_));
}

TEST_F(ReconcileTest, ReconciliationRacingLiveTrafficStaysSafe) {
  // Interleave reconcile passes with live mutations; the repairs ride the
  // ordinary locking protocol, so every interleaving must keep quorum
  // agreement with the committed model.
  Reconciler rec = MakeReconciler();
  for (int round = 0; round < 6; ++round) {
    const NodeId victim = 1 + round % 3;
    harness_.network().SetNodeUp(victim, false);
    for (int i = 0; i < 15; ++i) {
      Apply(round * 15 + i, "r" + std::to_string((round * 15 + i) % 9));
    }
    harness_.network().SetNodeUp(victim, true);
    ASSERT_TRUE(rec.RunOnce().ok());
    for (int i = 0; i < 5; ++i) {
      Apply(round * 5 + i + 1, "r" + std::to_string((round * 5 + i) % 9));
    }
  }
  EXPECT_TRUE(AllRepsWellFormed(harness_));
  EXPECT_TRUE(AllQuorumsAgree(harness_, model_));
}

// --- Weak replicas: ghost GC and trustworthy stale reads ---

constexpr NodeId kWeak = 9;

QuorumConfig WeakConfig() {
  return QuorumConfig({{1, 1}, {2, 1}, {3, 1}, {kWeak, 0}}, 2, 2);
}

class WeakReconcileTest : public ::testing::Test {
 protected:
  WeakReconcileTest() : harness_(WeakConfig()) {
    rep::SuiteOptions options;
    options.enable_stale_reads = true;
    options.metrics = &metrics_;
    suite_ = harness_.NewSuiteWithOptions(100, std::move(options));
  }

  Reconciler MakeReconciler() {
    Reconciler::Options options;
    options.metrics = &metrics_;
    return Reconciler(harness_.transport(), kReconcilerNode,
                      harness_.config(), std::move(options));
  }

  MetricsRegistry metrics_;
  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
};

TEST_F(WeakReconcileTest, WeakReplicaShedsGhostsAndServesCurrentReads) {
  // Deletes never reach weak representatives: ghosts accumulate there
  // until something else collects them - that something is the reconciler.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(suite_->Insert("w" + std::to_string(i), "x").ok());
  }
  for (int i = 0; i < 20; i += 2) {
    ASSERT_TRUE(suite_->Delete("w" + std::to_string(i)).ok());
  }
  std::map<UserKey, Value> model;
  for (int i = 1; i < 20; i += 2) model["w" + std::to_string(i)] = "x";
  ASSERT_GT(GhostCount(harness_, kWeak, model), 0u);

  Reconciler rec = MakeReconciler();
  ASSERT_TRUE(rec.SyncReplica(kWeak).ok());
  EXPECT_EQ(GhostCount(harness_, kWeak, model), 0u);

  // The weak replica now answers single-replica reads correctly: deleted
  // keys absent, surviving keys present - no quorum round involved.
  const std::uint64_t quorum_lookups_before =
      suite_->stats().counters().lookups;
  for (int i = 0; i < 20; ++i) {
    const auto r = suite_->LookupStale("w" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->found, i % 2 == 1) << "key w" << i;
  }
  EXPECT_EQ(suite_->stats().counters().lookups, quorum_lookups_before)
      << "stale reads must not fall back to quorum lookups here";
  EXPECT_EQ(metrics_.counter("suite.read.stale").value(), 20u);
}

TEST_F(WeakReconcileTest, StaleReadsAreBoundedByReconciliation) {
  ASSERT_TRUE(suite_->Insert("k", "old").ok());
  harness_.network().SetNodeUp(kWeak, false);
  ASSERT_TRUE(suite_->Update("k", "new").ok());
  harness_.network().SetNodeUp(kWeak, true);

  // Within the staleness window the weak replica still says "old".
  EXPECT_EQ(suite_->LookupStale("k")->value, "old");

  Reconciler rec = MakeReconciler();
  ASSERT_TRUE(rec.SyncReplica(kWeak).ok());
  EXPECT_EQ(suite_->LookupStale("k")->value, "new");
}

TEST_F(WeakReconcileTest, StaleReadFallsBackWhenReplicaIsDown) {
  ASSERT_TRUE(suite_->Insert("k", "v").ok());
  harness_.network().SetNodeUp(kWeak, false);
  const auto r = suite_->LookupStale("k");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
  EXPECT_EQ(r->value, "v");
  EXPECT_EQ(metrics_.counter("suite.read.stale_fallbacks").value(), 1u);
  EXPECT_EQ(metrics_.counter("suite.read.stale").value(), 0u);
}

TEST_F(WeakReconcileTest, StaleReadsRequireOptIn) {
  SuiteHarness h(WeakConfig());
  auto plain = h.NewSuite(100);
  EXPECT_EQ(plain->LookupStale("k").status().code(),
            StatusCode::kFailedPrecondition);
}

// --- Digest checkpoints: cached subtree digests on the participant ---

/// Process-wide deltas of the participant digest-cache counters (test
/// nodes run with default ParticipantOptions, so they share the default
/// registry).
struct DigestCacheDelta {
  std::uint64_t hits0, misses0;
  DigestCacheDelta()
      : hits0(MetricsRegistry::Default()
                  .counter("participant.digest_cache.hits")
                  .value()),
        misses0(MetricsRegistry::Default()
                    .counter("participant.digest_cache.misses")
                    .value()) {}
  std::uint64_t hits() const {
    return MetricsRegistry::Default()
               .counter("participant.digest_cache.hits")
               .value() -
           hits0;
  }
  std::uint64_t misses() const {
    return MetricsRegistry::Default()
               .counter("participant.digest_cache.misses")
               .value() -
           misses0;
  }
};

TEST_F(ReconcileTest, SecondIdempotentPassReusesCachedDigests) {
  const std::string pad(48, 'd');
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        suite_->Insert("dk" + std::to_string(1000 + i), "v" + pad).ok());
  }

  Reconciler::Options options;
  options.leaf_entries = 8;
  Reconciler rec = MakeReconciler(std::move(options));

  // First pass walks (and fills) the digest caches on both replicas.
  DigestCacheDelta first;
  ASSERT_TRUE(rec.SyncPair(1, 3).ok());
  ASSERT_GT(first.misses(), 0u) << "cold caches must compute digests";

  // Second, idempotent pass: NOTHING changed, so every digest the walk
  // requests is served from cache - zero re-hashing, O(changed) = O(0).
  DigestCacheDelta second;
  ASSERT_TRUE(rec.SyncPair(1, 3).ok());
  EXPECT_EQ(second.misses(), 0u)
      << "an idempotent pass must not re-hash any subtree";
  EXPECT_GT(second.hits(), 0u);

  // One point-write invalidates only the segments overlapping the key:
  // the next pass recomputes a bounded sliver (the spine above the key),
  // not the whole keyspace worth of cached segments.
  ASSERT_TRUE(suite_->Update("dk1042", "w" + pad).ok());
  DigestCacheDelta third;
  ASSERT_TRUE(rec.SyncPair(1, 3).ok());
  EXPECT_GT(third.misses(), 0u) << "the dirtied spine must recompute";
  EXPECT_LE(third.misses(), first.misses() / 4)
      << "a single write must not flush the whole digest cache ("
      << third.misses() << " vs cold " << first.misses() << ")";
  EXPECT_EQ(harness_.node(1).storage().Scan(),
            harness_.node(3).storage().Scan());
}

// --- Adaptive reconciliation cadence (ReconcileIntervalPolicy) ---

using rep::ReconcileIntervalPolicy;

ReconcileIntervalPolicy::Options TinyPolicyOptions() {
  ReconcileIntervalPolicy::Options o;
  o.min_interval_us = 100;
  o.initial_interval_us = 800;
  o.max_interval_us = 6400;
  return o;
}

TEST(ReconcileIntervalPolicyTest, TightensOnWorkAndClampsAtMin) {
  ReconcileIntervalPolicy policy(TinyPolicyOptions());
  EXPECT_EQ(policy.current(), 800);
  EXPECT_EQ(policy.OnPass(true), 400);
  EXPECT_EQ(policy.OnPass(true), 200);
  EXPECT_EQ(policy.OnPass(true), 100);
  EXPECT_EQ(policy.OnPass(true), 100) << "clamped at min_interval_us";
}

TEST(ReconcileIntervalPolicyTest, BacksOffOnQuietPassesAndClampsAtMax) {
  ReconcileIntervalPolicy policy(TinyPolicyOptions());
  EXPECT_EQ(policy.OnPass(false), 1600);
  EXPECT_EQ(policy.OnPass(false), 3200);
  EXPECT_EQ(policy.OnPass(false), 6400);
  EXPECT_EQ(policy.OnPass(false), 6400) << "clamped at max_interval_us";
  // Fresh drift snaps the cadence back down immediately.
  EXPECT_EQ(policy.OnPass(true), 3200);
}

TEST(ReconcileIntervalPolicyTest, FoundWorkComparesDriftCounters) {
  ReconcileStats a;
  ReconcileStats b = a;
  EXPECT_FALSE(ReconcileIntervalPolicy::FoundWork(a, b));
  b.ranges_checked += 50;  // pure digest traffic is NOT drift
  EXPECT_FALSE(ReconcileIntervalPolicy::FoundWork(a, b));
  b.entries_installed += 1;
  EXPECT_TRUE(ReconcileIntervalPolicy::FoundWork(a, b));
  ReconcileStats c = b;
  c.replicas_failed += 1;  // an unreachable replica keeps the cadence hot
  EXPECT_TRUE(ReconcileIntervalPolicy::FoundWork(b, c));
  ReconcileStats d = c;
  d.ghosts_collected += 2;
  EXPECT_TRUE(ReconcileIntervalPolicy::FoundWork(c, d));
}

TEST_F(ReconcileTest, BackgroundReconcilerAdaptsItsInterval) {
  for (int i = 0; i < 30; ++i) Apply(i, "b" + std::to_string(i % 6));
  harness_.network().SetNodeUp(3, false);
  for (int i = 30; i < 60; ++i) Apply(i, "b" + std::to_string(i % 6));
  harness_.network().SetNodeUp(3, true);

  Reconciler rec = MakeReconciler();
  ReconcileIntervalPolicy::Options o;
  o.min_interval_us = 200;
  o.initial_interval_us = 500;
  o.max_interval_us = 16'000;
  {
    rep::BackgroundReconciler bg(rec, ReconcileIntervalPolicy(o));
    // The first pass repairs node 3 (tighten); every later pass is a
    // no-op, so the cadence must back off toward max_interval_us.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (bg.current_interval_micros() < o.max_interval_us &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(bg.current_interval_micros(), o.max_interval_us)
        << "quiet passes should have walked the interval up to the cap";
  }
  EXPECT_GT(rec.stats().runs, 1u);
  EXPECT_GT(rec.stats().entries_installed, 0u) << "first pass found drift";
  EXPECT_EQ(harness_.node(1).storage().Scan(),
            harness_.node(3).storage().Scan());
  EXPECT_TRUE(AllQuorumsAgree(harness_, model_));
}

}  // namespace
}  // namespace repdir::test
