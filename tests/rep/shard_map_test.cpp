// ShardMap unit tests: ownership lookup over range boundaries, structural
// validation, and the authority's monotone-version rule.
#include <gtest/gtest.h>

#include "rep/shard_map.h"

namespace repdir::rep {
namespace {

ShardMap ThreeWay() {
  ShardMap map;
  map.version = 1;
  ShardEntry a;
  a.shard = 1;
  a.low = "";
  a.config = QuorumConfig::Uniform(3, 2, 2, 1);
  ShardEntry b;
  b.shard = 2;
  b.low = "g";
  b.config = QuorumConfig::Uniform(3, 2, 2, 11);
  ShardEntry c;
  c.shard = 3;
  c.low = "p";
  c.config = QuorumConfig::Uniform(3, 2, 2, 21);
  map.entries = {a, b, c};
  return map;
}

TEST(ShardMap, OwnerIndexRespectsRangeBoundaries) {
  const ShardMap map = ThreeWay();
  EXPECT_EQ(map.OwnerIndex(""), 0u);
  EXPECT_EQ(map.OwnerIndex("apple"), 0u);
  EXPECT_EQ(map.OwnerIndex("fzzzz"), 0u);
  EXPECT_EQ(map.OwnerIndex("g"), 1u);  // Inclusive low bound.
  EXPECT_EQ(map.OwnerIndex("mango"), 1u);
  EXPECT_EQ(map.OwnerIndex("p"), 2u);
  EXPECT_EQ(map.OwnerIndex("zzz"), 2u);
  EXPECT_EQ(map.OwnerOf("mango").shard, 2u);
}

TEST(ShardMap, HighBoundIsNextLowAndLastIsUnbounded) {
  const ShardMap map = ThreeWay();
  UserKey high;
  ASSERT_TRUE(map.HighBound(0, &high));
  EXPECT_EQ(high, "g");
  ASSERT_TRUE(map.HighBound(1, &high));
  EXPECT_EQ(high, "p");
  EXPECT_FALSE(map.HighBound(2, &high));
}

TEST(ShardMap, FindLocatesEntriesAndStaging) {
  ShardMap map = ThreeWay();
  StagingShard st;
  st.shard = 9;
  st.config = QuorumConfig::Uniform(3, 2, 2, 31);
  map.staging.push_back(st);
  ASSERT_NE(map.Find(2), nullptr);
  EXPECT_EQ(map.Find(2)->low, "g");
  EXPECT_EQ(map.Find(9), nullptr);  // Staging shards own no range.
  ASSERT_NE(map.FindStaging(9), nullptr);
  EXPECT_EQ(map.FindStaging(1), nullptr);
}

TEST(ShardMap, ValidateAcceptsSoundMaps) {
  EXPECT_TRUE(ThreeWay().Validate().ok());
  EXPECT_TRUE(
      SingleShardMap(1, QuorumConfig::Uniform(3, 2, 2)).Validate().ok());
}

TEST(ShardMap, ValidateRejectsStructuralDefects) {
  ShardMap empty;
  empty.version = 1;
  EXPECT_FALSE(empty.Validate().ok());

  ShardMap bad_first = ThreeWay();
  bad_first.entries[0].low = "a";  // First low must be "".
  EXPECT_FALSE(bad_first.Validate().ok());

  ShardMap unsorted = ThreeWay();
  unsorted.entries[2].low = "g";  // Equal lows: not strictly increasing.
  EXPECT_FALSE(unsorted.Validate().ok());

  ShardMap dup = ThreeWay();
  dup.entries[2].shard = 1;  // Duplicate shard id.
  EXPECT_FALSE(dup.Validate().ok());

  ShardMap dup_staging = ThreeWay();
  StagingShard st;
  st.shard = 2;  // Clashes with an owning entry.
  st.config = QuorumConfig::Uniform(3, 2, 2, 31);
  dup_staging.staging.push_back(st);
  EXPECT_FALSE(dup_staging.Validate().ok());

  ShardMap dangling = ThreeWay();
  dangling.entries[1].migrating = true;
  dangling.entries[1].migrate_to = 42;  // No such shard anywhere.
  EXPECT_FALSE(dangling.Validate().ok());
}

TEST(ShardMap, MigrationTargetMayBeStagingOrOwning) {
  ShardMap map = ThreeWay();
  map.entries[1].migrating = true;
  map.entries[1].migrate_low = "m";
  map.entries[1].migrate_to = 9;
  StagingShard st;
  st.shard = 9;
  st.config = QuorumConfig::Uniform(3, 2, 2, 31);
  map.staging.push_back(st);
  EXPECT_TRUE(map.Validate().ok());

  map.entries[1].migrate_to = 1;  // Merge case: target owns a range.
  map.staging.clear();
  EXPECT_TRUE(map.Validate().ok());
}

TEST(ShardMapAuthority, InstallEnforcesMonotoneVersions) {
  ShardMapAuthority authority;
  EXPECT_EQ(authority.Get(), nullptr);
  EXPECT_EQ(authority.version(), 0u);

  ShardMap v2 = ThreeWay();
  v2.version = 2;
  ASSERT_TRUE(authority.Install(v2).ok());
  EXPECT_EQ(authority.version(), 2u);

  ShardMap stale = ThreeWay();
  stale.version = 2;  // Same version: refused.
  EXPECT_EQ(authority.Install(stale).code(), StatusCode::kVersionMismatch);

  ShardMap v3 = ThreeWay();
  v3.version = 3;
  EXPECT_TRUE(authority.Install(v3).ok());
  EXPECT_EQ(authority.Get()->version, 3u);
}

TEST(ShardMapAuthority, InstallValidatesAndSnapshotsAreImmutable) {
  ShardMapAuthority authority;
  ShardMap bad = ThreeWay();
  bad.entries[0].low = "x";
  EXPECT_FALSE(authority.Install(bad).ok());
  EXPECT_EQ(authority.version(), 0u);

  ASSERT_TRUE(authority.Install(ThreeWay()).ok());
  auto snap = authority.Get();
  ShardMap v5 = ThreeWay();
  v5.version = 5;
  ASSERT_TRUE(authority.Install(v5).ok());
  EXPECT_EQ(snap->version, 1u);  // Old snapshot unaffected by installs.
}

}  // namespace
}  // namespace repdir::rep
