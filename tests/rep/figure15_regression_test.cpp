// Regression guard for the quantitative reproduction: the §4 simulation at
// reduced scale must land inside bands around the paper's Figure 15 values
// (full-scale numbers are in EXPERIMENTS.md; bands here are wide enough for
// the reduced op count's noise but tight enough to catch an algorithmic
// regression - e.g. wrong quorum math, broken ghost accounting, or a
// materialization bug would all blow past them).
#include <gtest/gtest.h>

#include "suite_harness.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace repdir::test {
namespace {

struct Band {
  double lo;
  double hi;
};

TEST(Figure15Regression, Stats322At100Entries) {
  SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2));
  auto suite = harness.NewSuite(100, nullptr, /*seed=*/100003);
  wl::SuiteClient client(*suite);

  wl::WorkloadOptions options;
  options.target_size = 100;
  options.operations = 10'000;
  options.seed = 123;
  wl::SteadyStateWorkload workload(client, options);
  ASSERT_TRUE(workload.Fill().ok());
  suite->stats().Reset();
  ASSERT_TRUE(workload.Run().ok());

  const auto& stats = suite->stats();
  ASSERT_GT(stats.deletions_while_coalescing().count(), 1500u);

  // Paper: 1.33 / 0.88 / 0.44 (100 entries, 100k ops).
  const Band entries{1.20, 1.45};
  const Band deletions{0.72, 1.02};
  const Band insertions{0.36, 0.56};

  EXPECT_GE(stats.entries_in_ranges_coalesced().mean(), entries.lo);
  EXPECT_LE(stats.entries_in_ranges_coalesced().mean(), entries.hi);
  EXPECT_GE(stats.deletions_while_coalescing().mean(), deletions.lo);
  EXPECT_LE(stats.deletions_while_coalescing().mean(), deletions.hi);
  EXPECT_GE(stats.insertions_while_coalescing().mean(), insertions.lo);
  EXPECT_LE(stats.insertions_while_coalescing().mean(), insertions.hi);

  // Standard deviations in the paper's neighborhood too (0.87/1.05/0.59).
  EXPECT_NEAR(stats.entries_in_ranges_coalesced().stddev(), 0.87, 0.15);
  EXPECT_NEAR(stats.deletions_while_coalescing().stddev(), 1.05, 0.20);
  EXPECT_NEAR(stats.insertions_while_coalescing().stddev(), 0.59, 0.10);
}

TEST(Figure15Regression, UnanimousWritesHaveZeroDeleteOverhead) {
  // The W = V sanity anchor: every representative is always current, so no
  // ghosts and no materializations, ever.
  SuiteHarness harness(QuorumConfig::Uniform(3, 1, 3));
  auto suite = harness.NewSuite(100, nullptr, /*seed=*/5);
  wl::SuiteClient client(*suite);

  wl::WorkloadOptions options;
  options.target_size = 60;
  options.operations = 2'000;
  wl::SteadyStateWorkload workload(client, options);
  ASSERT_TRUE(workload.Fill().ok());
  suite->stats().Reset();
  ASSERT_TRUE(workload.Run().ok());

  const auto& stats = suite->stats();
  ASSERT_GT(stats.deletions_while_coalescing().count(), 200u);
  EXPECT_DOUBLE_EQ(stats.deletions_while_coalescing().mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.insertions_while_coalescing().mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.entries_in_ranges_coalesced().mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.entries_in_ranges_coalesced().max(), 1.0);
}

}  // namespace
}  // namespace repdir::test
