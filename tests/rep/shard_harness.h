// Multi-shard test harness: several independent replica sets on one
// deterministic in-process transport, a ShardMapAuthority, and factories
// for routers (ShardedDirectory) and managers (ShardManager). The sharded
// analogue of SuiteHarness.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/shard_manager.h"
#include "rep/shard_map.h"
#include "rep/sharded_dir.h"
#include "sim/network_model.h"

namespace repdir::test {

using rep::QuorumConfig;
using rep::ShardedDirectory;
using rep::ShardId;
using rep::ShardManager;
using rep::ShardMap;
using rep::ShardMapAuthority;

class ShardHarness {
 public:
  /// Router clients identify as 100+, the manager as 90; representative
  /// node ids start at 1 per shard config (caller-chosen, must not clash).
  static constexpr NodeId kRouterNode = 100;
  static constexpr NodeId kManagerNode = 90;

  explicit ShardHarness(std::uint64_t network_seed = 99)
      : network_(network_seed), transport_(nullptr, &network_) {}

  /// Spins up representatives for every replica of `config` (skipping node
  /// ids already running - shards may share nothing, but a test may call
  /// this twice while reconfiguring).
  void AddReplicas(const QuorumConfig& config) {
    for (const auto& replica : config.replicas()) {
      if (nodes_.count(replica.node) != 0) continue;
      rep::DirRepNodeOptions options;
      options.participant.blocking_locks = false;
      auto node = std::make_unique<rep::DirRepNode>(replica.node, options);
      transport_.RegisterNode(replica.node, node->server());
      nodes_.emplace(replica.node, std::move(node));
    }
  }

  /// Installs `map`, boots replicas for every shard in it, and pushes each
  /// shard's range/epoch to its replicas (the manager's ReconfigureAll).
  Status Bootstrap(ShardMap map) {
    for (const auto& entry : map.entries) AddReplicas(entry.config);
    for (const auto& st : map.staging) AddReplicas(st.config);
    Status st = authority_.Install(std::move(map));
    if (!st.ok()) return st;
    ShardManager boot(transport_, kManagerNode, authority_);
    return boot.ReconfigureAll();
  }

  std::unique_ptr<ShardedDirectory> NewRouter(
      NodeId client_node = kRouterNode,
      ShardedDirectory::Options options = ShardedDirectory::Options()) {
    return std::make_unique<ShardedDirectory>(transport_, client_node,
                                              authority_, std::move(options));
  }

  std::unique_ptr<ShardManager> NewManager(
      ShardManager::Options options = ShardManager::Options(),
      NodeId client_node = kManagerNode) {
    return std::make_unique<ShardManager>(transport_, client_node, authority_,
                                          std::move(options));
  }

  rep::DirRepNode& node(NodeId id) { return *nodes_.at(id); }
  ShardMapAuthority& authority() { return authority_; }
  net::InProcTransport& transport() { return transport_; }
  sim::NetworkModel& network() { return network_; }

 private:
  sim::NetworkModel network_;
  net::InProcTransport transport_;
  ShardMapAuthority authority_;
  std::map<NodeId, std::unique_ptr<rep::DirRepNode>> nodes_;
};

/// A two-shard map splitting the keyspace at `fence`: shard 1 on nodes
/// 1..3, shard 2 on nodes 11..13, both 3-2-2.
inline ShardMap TwoShardMap(const std::string& fence,
                            std::uint64_t version = 1) {
  ShardMap map;
  map.version = version;
  rep::ShardEntry left;
  left.shard = 1;
  left.low = "";
  left.config = QuorumConfig::Uniform(3, 2, 2, 1);
  rep::ShardEntry right;
  right.shard = 2;
  right.low = fence;
  right.config = QuorumConfig::Uniform(3, 2, 2, 11);
  map.entries = {left, right};
  return map;
}

}  // namespace repdir::test
