// ShardedDirectory tests: per-key routing, stale-map recovery, stitched
// ordered iteration, cross-shard atomic batches, and the boundary-delete
// equivalence with an unsharded suite.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "rep/sharded_dir.h"
#include "shard_harness.h"
#include "suite_harness.h"

namespace repdir::rep {
namespace {

using test::ShardHarness;
using test::TwoShardMap;
using BatchOp = DirectorySuite::BatchOp;

class ShardedDirTest : public ::testing::Test {
 protected:
  ShardedDirTest() {
    EXPECT_TRUE(harness_.Bootstrap(test::TwoShardMap("m")).ok());
    ShardedDirectory::Options options;
    options.metrics = &metrics_;
    router_ = harness_.NewRouter(ShardHarness::kRouterNode, options);
  }

  std::uint64_t Metric(const std::string& name) {
    return metrics_.counter(name).value();
  }

  ShardHarness harness_;
  MetricsRegistry metrics_;
  std::unique_ptr<ShardedDirectory> router_;
};

TEST_F(ShardedDirTest, RoutesKeysToOwningShard) {
  ASSERT_TRUE(router_->Insert("apple", "1").ok());
  ASSERT_TRUE(router_->Insert("zebra", "2").ok());

  // Each key landed only on its owner's replicas.
  auto* left = router_->shard_suite(1);
  auto* right = router_->shard_suite(2);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  auto la = left->Lookup("apple");
  ASSERT_TRUE(la.ok());
  EXPECT_TRUE(la.value().found);
  auto rz = right->Lookup("zebra");
  ASSERT_TRUE(rz.ok());
  EXPECT_TRUE(rz.value().found);
  auto lz = left->Lookup("zebra");
  ASSERT_TRUE(lz.ok());
  EXPECT_FALSE(lz.value().found);

  auto got = router_->Lookup("apple");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().value, "1");
  ASSERT_TRUE(router_->Update("zebra", "2b").ok());
  ASSERT_TRUE(router_->Delete("apple").ok());
  EXPECT_EQ(router_->Lookup("apple").value().found, false);
  EXPECT_EQ(router_->Lookup("zebra").value().value, "2b");
}

TEST_F(ShardedDirTest, FenceKeyBelongsToRightShard) {
  ASSERT_TRUE(router_->Insert("m", "fence").ok());
  auto rm = router_->shard_suite(2)->Lookup("m");
  ASSERT_TRUE(rm.ok());
  EXPECT_TRUE(rm.value().found);
}

TEST_F(ShardedDirTest, StaleRouterReroutesOnWrongShard) {
  ASSERT_TRUE(router_->Insert("apple", "1").ok());
  EXPECT_EQ(router_->map_version(), 1u);

  // Advance the deployment: install map v2 and re-fence every replica at
  // epoch 2 while router_ still routes (and stamps) v1.
  ShardMap v2 = TwoShardMap("m", 2);
  ASSERT_TRUE(harness_.authority().Install(v2).ok());
  ASSERT_TRUE(harness_.NewManager()->ReconfigureAll().ok());

  // The stale router's next operation bounces with kWrongShard, refreshes,
  // and succeeds transparently.
  ASSERT_TRUE(router_->Insert("ant", "2").ok());
  EXPECT_EQ(router_->map_version(), 2u);
  EXPECT_GE(Metric("router.reroutes"), 1u);
  EXPECT_GE(Metric("router.map_refreshes"), 1u);
}

TEST_F(ShardedDirTest, RerouteGivesUpAfterMaxAttempts) {
  // Fence the replicas at an epoch the authority never learns about: the
  // router refreshes max_reroutes times, then surfaces kWrongShard.
  ASSERT_TRUE(router_->Insert("apple", "1").ok());
  for (NodeId n : {1, 2, 3}) {
    auto bounds = harness_.node(n).shard_bounds();
    bounds.epoch = 7;
    harness_.node(n).SetShardBounds(bounds);
  }
  Status st = router_->Insert("ant", "2");
  EXPECT_EQ(st.code(), StatusCode::kWrongShard);
}

TEST_F(ShardedDirTest, StitchedIterationCrossesTheBoundary) {
  for (const auto& k : {"d", "f", "q", "t"}) {
    ASSERT_TRUE(router_->Insert(k, std::string("v-") + k).ok());
  }
  auto first = router_->FirstKey();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().key, "d");

  // The stitch: NextKey("f") lives on shard 1, its successor on shard 2.
  auto step = router_->NextKey("f");
  ASSERT_TRUE(step.ok());
  ASSERT_TRUE(step.value().found);
  EXPECT_EQ(step.value().key, "q");
  EXPECT_EQ(step.value().value, "v-q");

  auto end = router_->NextKey("t");
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end.value().found);

  auto scan = router_->Scan();
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().size(), 4u);
  EXPECT_EQ(scan.value()[0].key, "d");
  EXPECT_EQ(scan.value()[3].key, "t");
}

TEST_F(ShardedDirTest, FirstKeySkipsEmptyLeadingShard) {
  ASSERT_TRUE(router_->Insert("zebra", "1").ok());
  auto first = router_->FirstKey();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value().found);
  EXPECT_EQ(first.value().key, "zebra");
}

TEST_F(ShardedDirTest, CrossShardBatchCommitsAtomically) {
  std::vector<BatchOp> ops;
  ops.push_back({BatchOp::Kind::kInsert, "apple", "1"});
  ops.push_back({BatchOp::Kind::kInsert, "zebra", "2"});
  ops.push_back({BatchOp::Kind::kLookup, "apple", ""});
  auto result = router_->ExecuteBatch(ops);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.ops.size(), 3u);
  EXPECT_TRUE(result.ops[0].status.ok());
  EXPECT_TRUE(result.ops[1].status.ok());
  // The read sees the same transaction's own insert.
  EXPECT_TRUE(result.ops[2].status.ok());
  EXPECT_TRUE(result.ops[2].lookup.found);
  EXPECT_EQ(result.ops[2].lookup.value, "1");
  EXPECT_GE(Metric("router.txn.cross_shard"), 1u);

  // Per-op clean failures surface without poisoning the batch.
  std::vector<BatchOp> again;
  again.push_back({BatchOp::Kind::kInsert, "apple", "dup"});
  again.push_back({BatchOp::Kind::kUpdate, "zebra", "2b"});
  auto r2 = router_->ExecuteBatch(again);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.ops[0].status.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(r2.ops[1].status.ok());
  EXPECT_EQ(router_->Lookup("apple").value().value, "1");
  EXPECT_EQ(router_->Lookup("zebra").value().value, "2b");
}

TEST_F(ShardedDirTest, CrossShardBatchAbortsAtomically) {
  // Shard 2's replicas all unreachable: its sub-batch cannot prepare, so
  // the shard-1 inserts must not survive either.
  for (NodeId n : {11, 12, 13}) harness_.network().SetNodeUp(n, false);
  std::vector<BatchOp> ops;
  ops.push_back({BatchOp::Kind::kInsert, "apple", "1"});
  ops.push_back({BatchOp::Kind::kInsert, "zebra", "2"});
  auto result = router_->ExecuteBatch(ops);
  EXPECT_FALSE(result.status.ok());

  for (NodeId n : {11, 12, 13}) harness_.network().SetNodeUp(n, true);
  auto apple = router_->Lookup("apple");
  ASSERT_TRUE(apple.ok());
  EXPECT_FALSE(apple.value().found);
}

TEST_F(ShardedDirTest, SingleShardBatchTakesSuiteFastPath) {
  std::vector<BatchOp> ops;
  ops.push_back({BatchOp::Kind::kInsert, "a1", "x"});
  ops.push_back({BatchOp::Kind::kInsert, "a2", "y"});
  auto result = router_->ExecuteBatch(ops);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(Metric("router.txn.cross_shard"), 0u);
}

// The paper's delete coalesces the predecessor's gap over the deleted key
// (Fig. 13). With per-shard LOW/HIGH sentinels the coalesce clips at the
// shard boundary, and the result must be indistinguishable - through the
// directory API - from an unsharded suite running the same history,
// including deletes of the keys flanking the fence.
TEST_F(ShardedDirTest, BoundaryDeleteMatchesUnshardedSuite) {
  test::SuiteHarness single(QuorumConfig::Uniform(3, 2, 2, 31));
  auto suite = single.NewSuite(ShardHarness::kRouterNode + 1);

  const std::vector<std::string> keys = {"j", "k", "lz", "m", "ma", "n", "q"};
  for (const auto& k : keys) {
    ASSERT_TRUE(router_->Insert(k, "v-" + k).ok());
    ASSERT_TRUE(suite->Insert(k, "v-" + k).ok());
  }
  // Delete the keys hugging the fence "m" from both sides, then the fence
  // itself: every coalesce in the sharded run touches a sentinel.
  for (const auto& k : {"lz", "ma", "m"}) {
    ASSERT_TRUE(router_->Delete(k).ok());
    ASSERT_TRUE(suite->Delete(k).ok());
  }
  // And a fresh insert straddling the gap the deletes opened.
  ASSERT_TRUE(router_->Insert("ls", "back").ok());
  ASSERT_TRUE(suite->Insert("ls", "back").ok());

  auto sharded = router_->Scan();
  ASSERT_TRUE(sharded.ok());
  std::vector<std::pair<UserKey, Value>> flat_single;
  auto step = suite->FirstKey();
  ASSERT_TRUE(step.ok());
  while (step.value().found) {
    flat_single.emplace_back(step.value().key, step.value().value);
    step = suite->NextKey(step.value().key);
    ASSERT_TRUE(step.ok());
  }
  ASSERT_EQ(sharded.value().size(), flat_single.size());
  for (std::size_t i = 0; i < flat_single.size(); ++i) {
    EXPECT_EQ(sharded.value()[i].key, flat_single[i].first);
    EXPECT_EQ(sharded.value()[i].value, flat_single[i].second);
  }
}

TEST_F(ShardedDirTest, PerShardMetricScopesAreDistinct) {
  ASSERT_TRUE(router_->Insert("apple", "1").ok());
  ASSERT_TRUE(router_->Insert("zebra", "2").ok());
  EXPECT_GE(Metric("suite.shard1.ops.inserts"), 1u);
  EXPECT_GE(Metric("suite.shard2.ops.inserts"), 1u);
  EXPECT_EQ(Metric("suite.ops.inserts"), 0u);  // Nothing lands unscoped.
}

}  // namespace
}  // namespace repdir::rep
