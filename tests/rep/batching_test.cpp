// §4 batching: batched neighbor RPCs must be semantically identical to the
// Fig. 12 single-step sketch and must reduce read-RPC traffic.
#include <gtest/gtest.h>

#include "invariants.h"
#include "suite_harness.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace repdir::test {
namespace {

TEST(ParticipantBatch, SuccessiveNeighborsAndSentinelStop) {
  storage::MapStorage stg;
  txn::ParticipantOptions options;
  options.blocking_locks = false;
  txn::TxnParticipant p(stg, nullptr, nullptr, options);
  for (const char* k : {"b", "d", "f"}) {
    ASSERT_TRUE(p.Insert(1, RepKey::User(k), 1, "v").ok());
  }
  ASSERT_TRUE(p.Commit(1).ok());

  const auto preds = p.PredecessorBatch(2, RepKey::User("e"), 5);
  ASSERT_TRUE(preds.ok());
  ASSERT_EQ(preds->size(), 3u);  // d, b, LOW - stops at the sentinel
  EXPECT_EQ((*preds)[0].key, RepKey::User("d"));
  EXPECT_EQ((*preds)[1].key, RepKey::User("b"));
  EXPECT_TRUE((*preds)[2].key.is_low());

  const auto succs = p.SuccessorBatch(2, RepKey::User("a"), 2);
  ASSERT_TRUE(succs.ok());
  ASSERT_EQ(succs->size(), 2u);  // truncated by count
  EXPECT_EQ((*succs)[0].key, RepKey::User("b"));
  EXPECT_EQ((*succs)[1].key, RepKey::User("d"));

  EXPECT_FALSE(p.PredecessorBatch(2, RepKey::User("e"), 0).ok());
  EXPECT_FALSE(p.PredecessorBatch(2, RepKey::User("e"), 1000).ok());
}

std::unique_ptr<DirectorySuite> MakeSuite(SuiteHarness& h, NodeId client,
                                          std::uint32_t batch,
                                          std::uint64_t seed) {
  rep::DirectorySuite::Options options;
  options.config = h.config();
  options.policy_seed = seed;
  options.neighbor_batch = batch;
  return std::make_unique<DirectorySuite>(h.transport(), client,
                                          std::move(options));
}

TEST(Batching, SameResultsAsUnbatched) {
  // Two identical deployments driven by the identical seeded workload, one
  // with batch=1 (the paper's sketch) and one with batch=3; final states
  // and delete statistics must agree exactly.
  auto run = [](std::uint32_t batch) {
    SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2));
    auto suite = MakeSuite(harness, 100, batch, /*seed=*/321);
    wl::SuiteClient client(*suite);
    wl::WorkloadOptions options;
    options.target_size = 50;
    options.operations = 2000;
    options.seed = 5;
    options.verify_against_model = true;
    options.key_space = 5000;
    wl::SteadyStateWorkload workload(client, options);
    EXPECT_TRUE(workload.Fill().ok());
    EXPECT_TRUE(workload.Run().ok());
    EXPECT_TRUE(AllRepsWellFormed(harness));
    EXPECT_TRUE(AllQuorumsAgree(harness, workload.model()));
    return std::make_tuple(
        suite->stats().entries_in_ranges_coalesced().mean(),
        suite->stats().deletions_while_coalescing().mean(),
        suite->stats().insertions_while_coalescing().mean());
  };
  // Same seeds => same quorum choices => identical statistics.
  EXPECT_EQ(run(1), run(3));
}

TEST(Batching, ReducesNeighborRpcTraffic) {
  auto count_read_rpcs = [](std::uint32_t batch) {
    SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2));
    auto suite = MakeSuite(harness, 100, batch, /*seed=*/77);
    wl::SuiteClient client(*suite);
    wl::WorkloadOptions options;
    options.target_size = 60;
    options.operations = 1500;
    options.seed = 9;
    options.key_space = 600;  // dense: deletes regularly walk over ghosts
    wl::SteadyStateWorkload workload(client, options);
    EXPECT_TRUE(workload.Fill().ok());
    EXPECT_TRUE(workload.Run().ok());
    std::uint64_t reads = 0;
    for (const auto& [node, n] : suite->read_rpcs_by_node()) reads += n;
    return reads;
  };
  const std::uint64_t unbatched = count_read_rpcs(1);
  const std::uint64_t batched = count_read_rpcs(3);
  EXPECT_LT(batched, unbatched);
}

TEST(Batching, PaperScenariosStillExactUnderBatching) {
  // Figures 4-5 with neighbor_batch = 3.
  SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2));
  for (const NodeId node : {1u, 2u, 3u}) {
    auto& stg = harness.node(node).storage();
    stg.Put(storage::StoredEntry{RepKey::User("a"), 1, "va", 0});
    stg.Put(storage::StoredEntry{RepKey::User("c"), 1, "vc", 0});
  }
  rep::DirectorySuite::Options options;
  options.config = harness.config();
  auto policy = std::make_unique<ScriptedPolicy>(
      std::vector<NodeId>{1, 2, 3});
  ScriptedPolicy* script = policy.get();
  options.policy = std::move(policy);
  options.neighbor_batch = 3;
  DirectorySuite suite(harness.transport(), 100, std::move(options));

  script->SetDefault({1, 2, 3});
  ASSERT_TRUE(suite.Insert("b", "vb").ok());
  EXPECT_EQ(harness.node(1).storage().Get(RepKey::User("b"))->version, 1u);

  script->SetDefault({2, 3, 1});
  ASSERT_TRUE(suite.Delete("b").ok());
  EXPECT_EQ(harness.node(2).storage().Get(RepKey::User("a"))->gap_after, 2u);
  EXPECT_EQ(harness.node(3).storage().Get(RepKey::User("a"))->gap_after, 2u);
  EXPECT_TRUE(
      harness.node(1).storage().Get(RepKey::User("b")).has_value());
}

}  // namespace
}  // namespace repdir::test
