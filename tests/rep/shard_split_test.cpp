// ShardManager tests: online split and merge end-to-end, dual-writes while
// a migration is in flight, and journaled crash-resume from every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "rep/shard_manager.h"
#include "rep/sharded_dir.h"
#include "shard_harness.h"

namespace repdir::rep {
namespace {

using test::ShardHarness;

std::vector<std::string> Keys() {
  std::vector<std::string> keys;
  for (char c = 'a'; c <= 'z'; ++c) keys.emplace_back(1, c);
  return keys;
}

class ShardSplitTest : public ::testing::Test {
 protected:
  ShardSplitTest() {
    EXPECT_TRUE(
        harness_
            .Bootstrap(SingleShardMap(1, QuorumConfig::Uniform(3, 2, 2, 1)))
            .ok());
    // The split target's replicas must be running before the manager
    // configures them.
    harness_.AddReplicas(TargetConfig());
  }

  static QuorumConfig TargetConfig() {
    return QuorumConfig::Uniform(3, 2, 2, 11);
  }

  void Seed(ShardedDirectory& router) {
    for (const auto& k : Keys()) ASSERT_TRUE(router.Insert(k, "v-" + k).ok());
  }

  std::vector<std::string> ScanKeys(ShardedDirectory& router) {
    auto scan = router.Scan();
    EXPECT_TRUE(scan.ok());
    std::vector<std::string> keys;
    for (const auto& e : scan.value()) keys.push_back(e.key);
    return keys;
  }

  ShardHarness harness_;
  MemShardJournal journal_;
};

TEST_F(ShardSplitTest, SplitMovesTheRangeAndKeepsEveryKey) {
  auto router = harness_.NewRouter();
  Seed(*router);

  auto manager = harness_.NewManager();
  ASSERT_TRUE(manager->Split(1, "m", 2, TargetConfig()).ok());
  EXPECT_EQ(harness_.authority().version(), 3u);  // base 1 -> v+2.

  // A fresh router sees both shards and the full stitched keyspace.
  auto after = harness_.NewRouter(ShardHarness::kRouterNode + 1);
  EXPECT_EQ(after->shard_count(), 2u);
  EXPECT_EQ(ScanKeys(*after), Keys());
  EXPECT_EQ(after->Lookup("z").value().value, "v-z");
  EXPECT_EQ(after->Lookup("a").value().value, "v-a");

  // The moved range was retired from the source's replicas: shard 1 holds
  // only [ , m) now.
  auto* left = after->shard_suite(1);
  ASSERT_NE(left, nullptr);
  EXPECT_FALSE(left->Lookup("q").value().found);
  EXPECT_TRUE(left->Lookup("c").value().found);
  auto* right = after->shard_suite(2);
  ASSERT_NE(right, nullptr);
  EXPECT_TRUE(right->Lookup("q").value().found);

  // The STALE router fences over on its next write and keeps working.
  ASSERT_TRUE(router->Insert("ma", "late").ok());
  EXPECT_EQ(router->map_version(), 3u);
  EXPECT_TRUE(after->Lookup("ma").value().found);
}

TEST_F(ShardSplitTest, WritesDuringMigrationDualApplyAndSurvive) {
  auto router = harness_.NewRouter();
  Seed(*router);

  // Stop right after step 3: map v+1 installed (dual-write marker up),
  // source fenced, copy NOT yet run.
  ShardManager::Options opts;
  opts.journal = &journal_;
  opts.fail_after_step = 3;
  EXPECT_EQ(harness_.NewManager(opts)->Split(1, "m", 2, TargetConfig()).code(),
            StatusCode::kAborted);

  // Mid-migration traffic: a router picking up the v+1 map dual-writes
  // every mutation in [m, ..). Reads still come from the source.
  MetricsRegistry metrics;
  ShardedDirectory::Options ropts;
  ropts.metrics = &metrics;
  auto mid = harness_.NewRouter(ShardHarness::kRouterNode + 1, ropts);
  ASSERT_TRUE(mid->Update("q", "updated-mid-split").ok());
  ASSERT_TRUE(mid->Insert("mb", "born-mid-split").ok());
  ASSERT_TRUE(mid->Delete("y").ok());
  ASSERT_TRUE(mid->Insert("bb", "left-side").ok());  // Not migrating: direct.
  EXPECT_GE(metrics.counter("router.writes.mirrored").value(), 3u);
  EXPECT_EQ(mid->Lookup("q").value().value, "updated-mid-split");

  // A successor manager on the same journal finishes the operation. The
  // copy must NOT clobber the dual-written values (insert-if-absent).
  ShardManager::Options resume_opts;
  resume_opts.journal = &journal_;
  ASSERT_TRUE(harness_.NewManager(resume_opts)->Resume().ok());
  EXPECT_EQ(harness_.authority().version(), 3u);

  auto after = harness_.NewRouter(ShardHarness::kRouterNode + 2);
  EXPECT_EQ(after->Lookup("q").value().value, "updated-mid-split");
  EXPECT_EQ(after->Lookup("mb").value().value, "born-mid-split");
  EXPECT_FALSE(after->Lookup("y").value().found);
  EXPECT_EQ(after->Lookup("bb").value().value, "left-side");

  // Full-scan sanity: seeded keys minus the delete, plus the inserts.
  std::vector<std::string> want = Keys();
  want.erase(std::find(want.begin(), want.end(), "y"));
  want.insert(std::find(want.begin(), want.end(), "n"), "mb");
  want.insert(std::find(want.begin(), want.end(), "c"), "bb");
  EXPECT_EQ(ScanKeys(*after), want);
}

TEST_F(ShardSplitTest, SplitResumesFromEveryStep) {
  for (int step = 1; step <= 5; ++step) {
    SCOPED_TRACE("crash after step " + std::to_string(step));
    ShardHarness h;
    ASSERT_TRUE(
        h.Bootstrap(SingleShardMap(1, QuorumConfig::Uniform(3, 2, 2, 1)))
            .ok());
    h.AddReplicas(TargetConfig());
    auto router = h.NewRouter();
    for (const auto& k : Keys()) ASSERT_TRUE(router->Insert(k, "v-" + k).ok());

    MemShardJournal journal;
    ShardManager::Options crash;
    crash.journal = &journal;
    crash.fail_after_step = step;
    EXPECT_EQ(h.NewManager(crash)->Split(1, "m", 2, TargetConfig()).code(),
              StatusCode::kAborted);

    ShardManager::Options resume;
    resume.journal = &journal;
    auto successor = h.NewManager(resume);
    ASSERT_TRUE(successor->Resume().ok());
    ASSERT_TRUE(successor->Resume().ok());  // Idempotent: nothing pending.
    EXPECT_EQ(h.authority().version(), 3u);

    auto after = h.NewRouter(ShardHarness::kRouterNode + 1);
    EXPECT_EQ(after->shard_count(), 2u);
    auto scan = after->Scan();
    ASSERT_TRUE(scan.ok());
    ASSERT_EQ(scan.value().size(), Keys().size());
    for (std::size_t i = 0; i < Keys().size(); ++i) {
      EXPECT_EQ(scan.value()[i].key, Keys()[i]);
      EXPECT_EQ(scan.value()[i].value, "v-" + Keys()[i]);
    }
  }
}

TEST_F(ShardSplitTest, MergeFoldsTheShardBackIn) {
  auto router = harness_.NewRouter();
  Seed(*router);
  auto manager = harness_.NewManager();
  ASSERT_TRUE(manager->Split(1, "m", 2, TargetConfig()).ok());

  ASSERT_TRUE(manager->Merge(2).ok());
  EXPECT_EQ(harness_.authority().version(), 5u);

  auto after = harness_.NewRouter(ShardHarness::kRouterNode + 1);
  EXPECT_EQ(after->shard_count(), 1u);
  EXPECT_EQ(after->shard_ids(), std::vector<ShardId>{1});
  EXPECT_EQ(ScanKeys(*after), Keys());
  // Everything is back on shard 1's replicas; the victim's were retired.
  auto* only = after->shard_suite(1);
  ASSERT_NE(only, nullptr);
  EXPECT_TRUE(only->Lookup("z").value().found);
  for (NodeId n : {11, 12, 13}) {
    for (const auto& e : harness_.node(n).storage().Scan()) {
      EXPECT_FALSE(e.key.is_user()) << "victim replica " << n
                                    << " still holds " << e.key.user();
    }
  }
}

TEST_F(ShardSplitTest, MergeResumesAfterCrash) {
  auto router = harness_.NewRouter();
  Seed(*router);
  ASSERT_TRUE(harness_.NewManager()->Split(1, "m", 2, TargetConfig()).ok());

  for (int step : {2, 4, 5}) {
    SCOPED_TRACE("merge crash after step " + std::to_string(step));
    // Fresh victim each round: re-split what the previous round merged.
    if (harness_.authority().Get()->entries.size() == 1) {
      ASSERT_TRUE(harness_.NewManager()->Split(1, "m", 2, TargetConfig()).ok());
    }
    MemShardJournal journal;
    ShardManager::Options crash;
    crash.journal = &journal;
    crash.fail_after_step = step;
    EXPECT_EQ(harness_.NewManager(crash)->Merge(2).code(),
              StatusCode::kAborted);
    ShardManager::Options resume;
    resume.journal = &journal;
    ASSERT_TRUE(harness_.NewManager(resume)->Resume().ok());
    auto after = harness_.NewRouter(ShardHarness::kRouterNode + 1);
    EXPECT_EQ(after->shard_count(), 1u);
    EXPECT_EQ(ScanKeys(*after), Keys());
  }
}

TEST_F(ShardSplitTest, SplitValidatesItsArguments) {
  auto router = harness_.NewRouter();
  Seed(*router);
  auto manager = harness_.NewManager();
  // Unknown source.
  EXPECT_FALSE(manager->Split(9, "m", 2, TargetConfig()).ok());
  // Target id already owns a range.
  EXPECT_FALSE(manager->Split(1, "m", 1, TargetConfig()).ok());
  // Fence at the range's low bound: nothing would move.
  EXPECT_FALSE(manager->Split(1, "", 2, TargetConfig()).ok());
  // Merge of the first shard has no left neighbor.
  EXPECT_FALSE(manager->Merge(1).ok());
  // None of the failed validations touched the map.
  EXPECT_EQ(harness_.authority().version(), 1u);
}

TEST_F(ShardSplitTest, FileJournalRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "/shard_journal_roundtrip.log";
  std::remove(path.c_str());
  FileShardJournal journal(path);
  auto empty = journal.ReadAll();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  ASSERT_TRUE(journal.Append("SPLIT abcd").ok());
  ASSERT_TRUE(journal.Append("STEP 1").ok());
  FileShardJournal reopened(path);
  auto lines = journal.ReadAll();
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines.value().size(), 2u);
  EXPECT_EQ(lines.value()[0], "SPLIT abcd");
  EXPECT_EQ(lines.value()[1], "STEP 1");
  auto again = reopened.ReadAll();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace repdir::rep
