// VersionCache unit tests: LRU mechanics, point and range invalidation,
// and the gap-bounds overlap rule that keeps coalesces safe.
#include "rep/version_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace repdir::rep {
namespace {

RepKey K(const std::string& k) { return RepKey::User(k); }

VersionCache::Entry Present(Version v, const std::string& value) {
  VersionCache::Entry e;
  e.present = true;
  e.version = v;
  e.value = value;
  return e;
}

VersionCache::Entry Gap(Version v, const RepKey& low, const RepKey& high) {
  VersionCache::Entry e;
  e.present = false;
  e.version = v;
  e.has_gap_bounds = true;
  e.gap_low = low;
  e.gap_high = high;
  return e;
}

TEST(VersionCache, LookupReturnsWhatWasPut) {
  VersionCache cache(4);
  cache.Put(K("a"), Present(3, "va"));
  EXPECT_FALSE(cache.Lookup(K("b")).has_value());
  const auto hit = cache.Lookup(K("a"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->present);
  EXPECT_EQ(hit->version, 3u);
  EXPECT_EQ(hit->value, "va");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(VersionCache, PutReplacesExistingEntry) {
  VersionCache cache(4);
  cache.Put(K("a"), Present(1, "old"));
  cache.Put(K("a"), Present(2, "new"));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.Lookup(K("a"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->version, 2u);
  EXPECT_EQ(hit->value, "new");
}

TEST(VersionCache, EvictsLeastRecentlyUsedAtCapacity) {
  VersionCache cache(2);
  cache.Put(K("a"), Present(1, "va"));
  cache.Put(K("b"), Present(1, "vb"));
  cache.Put(K("c"), Present(1, "vc"));  // evicts a (oldest)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(K("a")).has_value());
  EXPECT_TRUE(cache.Lookup(K("b")).has_value());
  EXPECT_TRUE(cache.Lookup(K("c")).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(VersionCache, LookupRefreshesRecency) {
  VersionCache cache(2);
  cache.Put(K("a"), Present(1, "va"));
  cache.Put(K("b"), Present(1, "vb"));
  ASSERT_TRUE(cache.Lookup(K("a")).has_value());  // a becomes most recent
  cache.Put(K("c"), Present(1, "vc"));            // evicts b, not a
  EXPECT_TRUE(cache.Lookup(K("a")).has_value());
  EXPECT_FALSE(cache.Lookup(K("b")).has_value());
}

TEST(VersionCache, PutOfExistingKeyRefreshesRecency) {
  VersionCache cache(2);
  cache.Put(K("a"), Present(1, "va"));
  cache.Put(K("b"), Present(1, "vb"));
  cache.Put(K("a"), Present(2, "va2"));  // a becomes most recent
  cache.Put(K("c"), Present(1, "vc"));   // evicts b
  EXPECT_TRUE(cache.Lookup(K("a")).has_value());
  EXPECT_FALSE(cache.Lookup(K("b")).has_value());
}

TEST(VersionCache, InvalidateRemovesOneKey) {
  VersionCache cache(4);
  cache.Put(K("a"), Present(1, "va"));
  cache.Put(K("b"), Present(1, "vb"));
  EXPECT_TRUE(cache.Invalidate(K("a")));
  EXPECT_FALSE(cache.Invalidate(K("a")));  // already gone
  EXPECT_FALSE(cache.Lookup(K("a")).has_value());
  EXPECT_TRUE(cache.Lookup(K("b")).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(VersionCache, InvalidateRangeIsInclusiveOfBothBounds) {
  VersionCache cache(8);
  for (const char* k : {"a", "b", "c", "d", "e"}) {
    cache.Put(K(k), Present(1, k));
  }
  // A delete of c coalescing [b, d] stales b and d too: their adjacent gap
  // changed under them.
  EXPECT_EQ(cache.InvalidateRange(K("b"), K("d")), 3u);
  EXPECT_TRUE(cache.Lookup(K("a")).has_value());
  EXPECT_FALSE(cache.Lookup(K("b")).has_value());
  EXPECT_FALSE(cache.Lookup(K("c")).has_value());
  EXPECT_FALSE(cache.Lookup(K("d")).has_value());
  EXPECT_TRUE(cache.Lookup(K("e")).has_value());
}

TEST(VersionCache, InvalidateRangeCoversSentinelBounds) {
  VersionCache cache(8);
  cache.Put(K("m"), Present(1, "vm"));
  cache.Put(K("q"), Gap(2, RepKey::Low(), RepKey::High()));
  EXPECT_EQ(cache.InvalidateRange(RepKey::Low(), RepKey::High()), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VersionCache, InvalidateRangeRemovesGapsWithOverlappingBounds) {
  VersionCache cache(8);
  // A cached gap keyed OUTSIDE the coalesced range whose recorded bounds
  // overlap it must go: its gap version is stale after the coalesce.
  cache.Put(K("x"), Gap(5, K("a"), K("f")));  // bounds overlap (b, d)
  cache.Put(K("y"), Gap(5, K("g"), K("j")));  // disjoint: survives
  EXPECT_EQ(cache.InvalidateRange(K("b"), K("d")), 1u);
  EXPECT_FALSE(cache.Lookup(K("x")).has_value());
  EXPECT_TRUE(cache.Lookup(K("y")).has_value());
}

TEST(VersionCache, GapsWithUnknownBoundsAreOnlyRemovedByKeyContainment) {
  VersionCache cache(8);
  VersionCache::Entry unknown;  // absent, no recorded bounds
  unknown.present = false;
  unknown.version = 4;
  cache.Put(K("x"), unknown);
  EXPECT_EQ(cache.InvalidateRange(K("a"), K("c")), 0u);
  EXPECT_TRUE(cache.Lookup(K("x")).has_value());
  EXPECT_EQ(cache.InvalidateRange(K("w"), K("z")), 1u);
  EXPECT_FALSE(cache.Lookup(K("x")).has_value());
}

TEST(VersionCache, ClearEmptiesEverything) {
  VersionCache cache(4);
  cache.Put(K("a"), Present(1, "va"));
  cache.Put(K("b"), Present(1, "vb"));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(K("a")).has_value());
  cache.Put(K("c"), Present(1, "vc"));  // still usable after Clear
  EXPECT_TRUE(cache.Lookup(K("c")).has_value());
}

}  // namespace
}  // namespace repdir::rep
