// Multi-operation transactions (SuiteTxn), ordered scans (NextKey), and the
// ReplicatedSet abstraction.
#include <gtest/gtest.h>

#include "invariants.h"
#include "rep/replicated_set.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

using rep::ReplicatedSet;
using rep::SuiteTxn;

class SuiteTxnTest : public ::testing::Test {
 protected:
  SuiteTxnTest()
      : harness_(QuorumConfig::Uniform(3, 2, 2)),
        suite_(harness_.NewSuite(100)) {}

  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
};

TEST_F(SuiteTxnTest, MultiOpCommitIsAtomic) {
  {
    SuiteTxn txn = suite_->Begin();
    ASSERT_TRUE(txn.Insert("a", "1").ok());
    ASSERT_TRUE(txn.Insert("b", "2").ok());
    ASSERT_TRUE(txn.Update("a", "1b").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::map<UserKey, Value> model{{"a", "1b"}, {"b", "2"}};
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

TEST_F(SuiteTxnTest, AbortRollsBackEverything) {
  ASSERT_TRUE(suite_->Insert("keep", "1").ok());
  {
    SuiteTxn txn = suite_->Begin();
    ASSERT_TRUE(txn.Insert("x", "1").ok());
    ASSERT_TRUE(txn.Delete("keep").ok());
    ASSERT_TRUE(txn.Insert("y", "2").ok());
    txn.Abort();
  }
  std::map<UserKey, Value> model{{"keep", "1"}};
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

TEST_F(SuiteTxnTest, DestructionWithoutCommitAborts) {
  {
    SuiteTxn txn = suite_->Begin();
    ASSERT_TRUE(txn.Insert("ephemeral", "v").ok());
    // no Commit()
  }
  EXPECT_FALSE(suite_->Lookup("ephemeral")->found);
  EXPECT_TRUE(AllQuorumsAgree(harness_, {}));
}

TEST_F(SuiteTxnTest, ReadsSeeOwnWrites) {
  SuiteTxn txn = suite_->Begin();
  ASSERT_TRUE(txn.Insert("k", "v1").ok());
  auto r = txn.Lookup("k");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
  EXPECT_EQ(r->value, "v1");
  ASSERT_TRUE(txn.Update("k", "v2").ok());
  EXPECT_EQ(txn.Lookup("k")->value, "v2");
  ASSERT_TRUE(txn.Delete("k").ok());
  EXPECT_FALSE(txn.Lookup("k")->found);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(AllQuorumsAgree(harness_, {}));
}

TEST_F(SuiteTxnTest, CleanCheckFailuresDoNotPoison) {
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  SuiteTxn txn = suite_->Begin();
  EXPECT_EQ(txn.Insert("a", "dup").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(txn.open());
  EXPECT_EQ(txn.Update("missing", "v").code(), StatusCode::kNotFound);
  EXPECT_TRUE(txn.open());
  ASSERT_TRUE(txn.Insert("b", "2").ok());
  ASSERT_TRUE(txn.Commit().ok());
  std::map<UserKey, Value> model{{"a", "1"}, {"b", "2"}};
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

TEST_F(SuiteTxnTest, OperationsAfterFinishFail) {
  SuiteTxn txn = suite_->Begin();
  ASSERT_TRUE(txn.Insert("k", "v").ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(txn.Insert("k2", "v").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(txn.Commit().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SuiteTxnTest, ConflictingTransactionIsolation) {
  // Two clients; txn A holds a modify lock on "k"; client B's single-shot
  // operation on "k" aborts rather than seeing uncommitted data.
  auto suite_b = harness_.NewSuite(101);
  SuiteTxn txn = suite_->Begin();
  ASSERT_TRUE(txn.Insert("k", "uncommitted").ok());

  const auto read = suite_b->Lookup("k");
  EXPECT_EQ(read.status().code(), StatusCode::kAborted);  // try-lock mode

  ASSERT_TRUE(txn.Commit().ok());
  const auto after = suite_b->Lookup("k");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->value, "uncommitted");
}

TEST_F(SuiteTxnTest, TransactionalTransferPreservesBothKeys) {
  ASSERT_TRUE(suite_->Insert("acct-a", "100").ok());
  ASSERT_TRUE(suite_->Insert("acct-b", "50").ok());
  {
    SuiteTxn txn = suite_->Begin();
    const auto a = txn.Lookup("acct-a");
    const auto b = txn.Lookup("acct-b");
    ASSERT_TRUE(a.ok() && b.ok());
    const int a_val = std::stoi(a->value);
    const int b_val = std::stoi(b->value);
    ASSERT_TRUE(txn.Update("acct-a", std::to_string(a_val - 30)).ok());
    ASSERT_TRUE(txn.Update("acct-b", std::to_string(b_val + 30)).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_EQ(suite_->Lookup("acct-a")->value, "70");
  EXPECT_EQ(suite_->Lookup("acct-b")->value, "80");
}

class NextKeyTest : public SuiteTxnTest {};

TEST_F(NextKeyTest, OrderedScanVisitsAllCurrentKeys) {
  for (const char* k : {"d", "a", "c", "b", "e"}) {
    ASSERT_TRUE(suite_->Insert(k, std::string("v-") + k).ok());
  }
  ASSERT_TRUE(suite_->Delete("c").ok());  // leaves ghosts on some reps

  std::vector<UserKey> seen;
  auto next = suite_->FirstKey();
  ASSERT_TRUE(next.ok());
  while (next->found) {
    seen.push_back(next->key);
    next = suite_->NextKey(next->key);
    ASSERT_TRUE(next.ok());
  }
  EXPECT_EQ(seen, (std::vector<UserKey>{"a", "b", "d", "e"}));
}

TEST_F(NextKeyTest, EmptyDirectoryScan) {
  const auto first = suite_->FirstKey();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->found);
}

TEST_F(NextKeyTest, NextKeySkipsGhosts) {
  // Build a ghost between "a" and "z" on a minority replica.
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  ASSERT_TRUE(suite_->Insert("m", "2").ok());
  ASSERT_TRUE(suite_->Insert("z", "3").ok());
  harness_.network().SetNodeUp(3, false);
  ASSERT_TRUE(suite_->Delete("m").ok());
  harness_.network().SetNodeUp(3, true);

  // If node 3 is in the read quorum, its "m" copy is a ghost the scan must
  // skip by version comparison.
  auto [suite2, policy] = harness_.NewScriptedSuite(101);
  policy->SetDefault({3, 1, 2});
  const auto next = suite2->NextKey("a");
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->found);
  EXPECT_EQ(next->key, "z");
}

TEST_F(NextKeyTest, NextKeyReturnsValueToo) {
  ASSERT_TRUE(suite_->Insert("k1", "hello").ok());
  const auto next = suite_->NextKey("k0");
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->found);
  EXPECT_EQ(next->key, "k1");
  EXPECT_EQ(next->value, "hello");
}

class ReplicatedSetTest : public SuiteTxnTest {};

TEST_F(ReplicatedSetTest, AddContainsRemove) {
  ReplicatedSet set(*suite_);
  EXPECT_FALSE(*set.Contains("x"));
  EXPECT_TRUE(*set.Add("x"));
  EXPECT_FALSE(*set.Add("x"));  // idempotent
  EXPECT_TRUE(*set.Contains("x"));
  EXPECT_TRUE(*set.Remove("x"));
  EXPECT_FALSE(*set.Remove("x"));  // idempotent
  EXPECT_FALSE(*set.Contains("x"));
}

TEST_F(ReplicatedSetTest, ElementsAreOrdered) {
  ReplicatedSet set(*suite_);
  for (const char* e : {"pear", "apple", "mango", "fig"}) {
    ASSERT_TRUE(set.Add(e).ok());
  }
  ASSERT_TRUE(*set.Remove("mango"));
  const auto elements = set.Elements();
  ASSERT_TRUE(elements.ok());
  EXPECT_EQ(*elements, (std::vector<UserKey>{"apple", "fig", "pear"}));
}

TEST_F(ReplicatedSetTest, SurvivesMinorityFailure) {
  ReplicatedSet set(*suite_);
  ASSERT_TRUE(set.Add("durable").ok());
  harness_.network().SetNodeUp(2, false);
  EXPECT_TRUE(*set.Contains("durable"));
  EXPECT_TRUE(*set.Add("while-degraded"));
  harness_.network().SetNodeUp(2, true);
  const auto elements = set.Elements();
  ASSERT_TRUE(elements.ok());
  EXPECT_EQ(*elements, (std::vector<UserKey>{"durable", "while-degraded"}));
}

}  // namespace
}  // namespace repdir::test
