// Weak (zero-vote) representatives - paper §2: "representatives with zero
// votes may be used as hints". They never contribute to quorums; the suite
// propagates writes to them best-effort and folds their replies into reads
// (safe: the highest-version rule still selects current data).
#include <gtest/gtest.h>

#include "invariants.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

constexpr NodeId kWeak = 9;

/// 3-2-2 voting core plus one zero-vote hint node.
QuorumConfig WeakConfig() {
  return QuorumConfig({{1, 1}, {2, 1}, {3, 1}, {kWeak, 0}}, 2, 2);
}

class WeakRepTest : public ::testing::Test {
 protected:
  WeakRepTest() : harness_(WeakConfig()), suite_(harness_.NewSuite(100)) {}

  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
};

TEST(WeakConfigValidation, ZeroVoteReplicasAreLegal) {
  EXPECT_TRUE(WeakConfig().Validate().ok());
  EXPECT_EQ(WeakConfig().TotalVotes(), 3u);
  EXPECT_EQ(WeakConfig().WeakNodes(), (std::vector<NodeId>{kWeak}));
  EXPECT_EQ(WeakConfig().VotingNodes(), (std::vector<NodeId>{1, 2, 3}));
  // A weak node never makes a quorum.
  EXPECT_FALSE(WeakConfig().IsReadQuorum({kWeak}));
  EXPECT_FALSE(WeakConfig().IsReadQuorum({1, kWeak}));
  EXPECT_TRUE(WeakConfig().IsReadQuorum({1, 2}));
}

TEST_F(WeakRepTest, WritesPropagateToWeakRepresentative) {
  ASSERT_TRUE(suite_->Insert("k", "v1").ok());
  const auto copy = harness_.node(kWeak).storage().Get(RepKey::User("k"));
  ASSERT_TRUE(copy.has_value());
  EXPECT_EQ(copy->value, "v1");

  ASSERT_TRUE(suite_->Update("k", "v2").ok());
  EXPECT_EQ(harness_.node(kWeak).storage().Get(RepKey::User("k"))->value,
            "v2");
}

TEST_F(WeakRepTest, WeakNodeDownDoesNotAffectOperations) {
  harness_.network().SetNodeUp(kWeak, false);
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  ASSERT_TRUE(suite_->Update("a", "2").ok());
  EXPECT_EQ(suite_->Lookup("a")->value, "2");
  ASSERT_TRUE(suite_->Delete("a").ok());
  EXPECT_EQ(suite_->stats().counters().unavailable, 0u);
}

TEST_F(WeakRepTest, VotingMinorityDownStillWorksWeakCannotSubstitute) {
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  // One voting node down: fine (weak node present but irrelevant to votes).
  harness_.network().SetNodeUp(3, false);
  EXPECT_TRUE(suite_->Lookup("a")->found);
  ASSERT_TRUE(suite_->Update("a", "2").ok());
  // Two voting nodes down: unavailable even though the weak node has data.
  harness_.network().SetNodeUp(2, false);
  EXPECT_EQ(suite_->Lookup("a").status().code(), StatusCode::kUnavailable);
}

TEST_F(WeakRepTest, StaleWeakGhostNeverCorruptsReads) {
  ASSERT_TRUE(suite_->Insert("g", "v").ok());
  ASSERT_TRUE(harness_.node(kWeak).storage().Get(RepKey::User("g")).has_value());

  // Delete does not touch the weak node: its copy becomes a ghost.
  ASSERT_TRUE(suite_->Delete("g").ok());
  EXPECT_TRUE(harness_.node(kWeak).storage().Get(RepKey::User("g")).has_value())
      << "delete should leave the weak copy as a ghost";

  // Reads (which fold the weak reply) still answer absent, many times and
  // under every quorum order.
  for (int i = 0; i < 10; ++i) {
    const auto r = suite_->Lookup("g");
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->found);
  }
}

TEST_F(WeakRepTest, StaleWeakReplyRacingDeleteCoalesceNeverWins) {
  // Regression for the weak-reply fold-in audit: a weak copy that missed
  // BOTH a later update and the delete holds a ghost whose version is
  // lower than the committed gap. Every read quorum intersects the
  // delete's write quorum, so some folded member reports the higher gap
  // version and the ghost must lose the fold on version order - never on
  // a present-beats-absent tie-break.
  ASSERT_TRUE(suite_->Insert("k", "v1").ok());
  ASSERT_TRUE(suite_->Update("k", "v2").ok());
  harness_.network().SetNodeUp(kWeak, false);
  ASSERT_TRUE(suite_->Update("k", "v3").ok());
  ASSERT_TRUE(suite_->Delete("k").ok());
  harness_.network().SetNodeUp(kWeak, true);

  // The weak copy is a ghost at the update-2 version.
  ASSERT_TRUE(
      harness_.node(kWeak).storage().Get(RepKey::User("k")).has_value());
  for (int i = 0; i < 10; ++i) {
    const auto r = suite_->Lookup("k");
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->found) << "stale weak ghost folded over the delete";
  }

  // Re-creating the key mints a version above the delete's gap, so the
  // fold must now pick the NEW value over the still-ghosted old one.
  ASSERT_TRUE(suite_->Insert("k", "reborn").ok());
  for (int i = 0; i < 10; ++i) {
    const auto r = suite_->Lookup("k");
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->found);
    EXPECT_EQ(r->value, "reborn") << "fold resurrected a pre-delete value";
  }
}

TEST_F(WeakRepTest, WeakGhostNeverShadowsNeighborIteration) {
  // The neighbor search that backs NextKey consults only quorum members -
  // a ghost held by the weak node must not reappear in ordered iteration.
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  ASSERT_TRUE(suite_->Insert("b", "2").ok());
  ASSERT_TRUE(suite_->Insert("c", "3").ok());
  harness_.network().SetNodeUp(kWeak, false);
  ASSERT_TRUE(suite_->Delete("b").ok());
  harness_.network().SetNodeUp(kWeak, true);
  ASSERT_TRUE(
      harness_.node(kWeak).storage().Get(RepKey::User("b")).has_value())
      << "scenario requires the weak node to hold the ghost";

  const auto next = suite_->NextKey("a");
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->found);
  EXPECT_EQ(next->key, "c") << "ghost \"b\" leaked into iteration";
  EXPECT_FALSE(suite_->Lookup("b")->found);
}

TEST_F(WeakRepTest, AbortedWriteLeavesNoTraceOnTheWeakNode) {
  // Weak representatives are transaction participants: a mutation that
  // cannot reach its write quorum must roll back everywhere, including the
  // best-effort weak copy - otherwise the weak node would hold uncommitted
  // data and later folds could serve it.
  harness_.network().SetNodeUp(2, false);
  harness_.network().SetNodeUp(3, false);
  EXPECT_FALSE(suite_->Insert("orphan", "uncommitted").ok());
  harness_.network().SetNodeUp(2, true);
  harness_.network().SetNodeUp(3, true);
  EXPECT_FALSE(
      harness_.node(kWeak).storage().Get(RepKey::User("orphan")).has_value())
      << "aborted write left data on the weak representative";
  EXPECT_FALSE(suite_->Lookup("orphan")->found);
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

TEST_F(WeakRepTest, ModelAgreementWithWeakNodeInPlay) {
  // Random workload against the model, with the weak node flapping.
  std::map<UserKey, Value> model;
  Rng rng(77);
  for (int step = 0; step < 300; ++step) {
    if (step % 37 == 0) {
      harness_.network().SetNodeUp(kWeak, rng.Chance(0.5));
    }
    const std::string key = "k" + std::to_string(rng.Below(20));
    switch (rng.Below(3)) {
      case 0: {
        const Status st = suite_->Insert(key, std::to_string(step));
        if (st.ok()) model[key] = std::to_string(step);
        break;
      }
      case 1: {
        const Status st = suite_->Update(key, std::to_string(step));
        if (st.ok()) model[key] = std::to_string(step);
        break;
      }
      default: {
        const Status st = suite_->Delete(key);
        if (st.ok()) model.erase(key);
        break;
      }
    }
  }
  harness_.network().SetNodeUp(kWeak, true);
  EXPECT_TRUE(AllRepsWellFormed(harness_));
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

}  // namespace
}  // namespace repdir::test
