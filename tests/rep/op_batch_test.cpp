// Operation batching: many directory operations in one RPC envelope and one
// two-phase-commit transaction (DirectorySuite::ExecuteBatch / BatchBuilder),
// and the AutoBatcher that coalesces concurrent submitters transparently.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "invariants.h"
#include "rep/batcher.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

using rep::AutoBatcher;
using BatchOp = DirectorySuite::BatchOp;

std::uint64_t TotalRpcs(const std::map<NodeId, std::uint64_t>& by_node) {
  std::uint64_t total = 0;
  for (const auto& [node, n] : by_node) total += n;
  return total;
}

class OpBatch : public ::testing::Test {
 protected:
  OpBatch()
      : harness_(QuorumConfig::Uniform(3, 2, 2)),
        suite_(harness_.NewSuite(100)) {}

  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
};

TEST_F(OpBatch, MixedBatchCommitsAtomically) {
  ASSERT_TRUE(suite_->Insert("pre", "old").ok());

  auto r = suite_->Batch()
               .Insert("a", "1")
               .Insert("b", "2")
               .Update("pre", "new")
               .Lookup("a")
               .Lookup("missing")
               .Execute();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  ASSERT_EQ(r.ops.size(), 5u);
  EXPECT_TRUE(r.ops[0].status.ok());
  EXPECT_TRUE(r.ops[1].status.ok());
  EXPECT_TRUE(r.ops[2].status.ok());
  ASSERT_TRUE(r.ops[3].status.ok());
  EXPECT_TRUE(r.ops[3].lookup.found);
  EXPECT_EQ(r.ops[3].lookup.value, "1");  // sees the batch's own insert
  ASSERT_TRUE(r.ops[4].status.ok());
  EXPECT_FALSE(r.ops[4].lookup.found);

  EXPECT_EQ(suite_->Lookup("a")->value, "1");
  EXPECT_EQ(suite_->Lookup("b")->value, "2");
  EXPECT_EQ(suite_->Lookup("pre")->value, "new");
  EXPECT_TRUE(AllQuorumsAgree(
      harness_, {{"pre", "new"}, {"a", "1"}, {"b", "2"}}));
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

TEST_F(OpBatch, LaterOpsObserveEarlierEffects) {
  // Insert -> duplicate insert -> update -> lookup, all one key, one batch:
  // sequential semantics inside the batch.
  auto r = suite_->Batch()
               .Insert("k", "v1")
               .Insert("k", "v2")
               .Update("k", "v3")
               .Lookup("k")
               .Execute();
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.ops[0].status.ok());
  EXPECT_EQ(r.ops[1].status.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(r.ops[2].status.ok());
  EXPECT_EQ(r.ops[3].lookup.value, "v3");
  EXPECT_EQ(suite_->Lookup("k")->value, "v3");
  EXPECT_TRUE(AllQuorumsAgree(harness_, {{"k", "v3"}}));
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

TEST_F(OpBatch, CleanPerOpFailuresDoNotPoisonTheBatch) {
  ASSERT_TRUE(suite_->Insert("taken", "x").ok());
  auto r = suite_->Batch()
               .Insert("taken", "y")   // kAlreadyExists, clean
               .Update("absent", "z")  // kNotFound, clean
               .Insert("fresh", "ok")
               .Execute();
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.ops[0].status.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(r.ops[1].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(r.ops[2].status.ok());
  EXPECT_EQ(suite_->Lookup("taken")->value, "x");
  EXPECT_FALSE(suite_->Lookup("absent")->found);
  EXPECT_EQ(suite_->Lookup("fresh")->value, "ok");
}

TEST_F(OpBatch, QuorumLossFailsTheWholeBatchWithNothingCommitted) {
  harness_.network().SetNodeUp(1, false);
  harness_.network().SetNodeUp(2, false);
  auto r = suite_->Batch().Insert("a", "1").Insert("b", "2").Execute();
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  harness_.network().SetNodeUp(1, true);
  harness_.network().SetNodeUp(2, true);
  EXPECT_FALSE(suite_->Lookup("a")->found);
  EXPECT_FALSE(suite_->Lookup("b")->found);
  EXPECT_TRUE(AllQuorumsAgree(harness_, {}));
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

TEST_F(OpBatch, RoundCountIsIndependentOfBatchSize) {
  // 32 inserts, one batch: exactly one read RPC and one write RPC per
  // quorum member - the round collapse the hot path is built on.
  rep::BatchBuilder b = suite_->Batch();
  for (int i = 0; i < 32; ++i) {
    b.Insert("key" + std::to_string(i), "v");
  }
  const auto read_before = TotalRpcs(suite_->read_rpcs_by_node());
  const auto write_before = TotalRpcs(suite_->write_rpcs_by_node());
  auto r = b.Execute();
  ASSERT_TRUE(r.status.ok());
  const auto reads = TotalRpcs(suite_->read_rpcs_by_node()) - read_before;
  const auto writes = TotalRpcs(suite_->write_rpcs_by_node()) - write_before;
  EXPECT_EQ(reads, 2u);   // read quorum size
  EXPECT_EQ(writes, 2u);  // write quorum size
}

TEST_F(OpBatch, BatchedAndSequentialExecutionsConverge) {
  // The same deterministic op list applied batched (chunks of 7) and
  // single-shot must leave identical user-visible directories.
  SuiteHarness other(QuorumConfig::Uniform(3, 2, 2));
  auto single = other.NewSuite(100);

  std::vector<BatchOp> script;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(i % 11);
    BatchOp op;
    op.key = key;
    if (i % 3 == 0) {
      op.kind = BatchOp::Kind::kInsert;
      op.value = "ins" + std::to_string(i);
    } else if (i % 3 == 1) {
      op.kind = BatchOp::Kind::kUpdate;
      op.value = "upd" + std::to_string(i);
    } else {
      op.kind = BatchOp::Kind::kLookup;
    }
    script.push_back(std::move(op));
  }

  for (std::size_t base = 0; base < script.size(); base += 7) {
    std::vector<BatchOp> chunk(
        script.begin() + static_cast<long>(base),
        script.begin() +
            static_cast<long>(std::min(base + 7, script.size())));
    ASSERT_TRUE(suite_->ExecuteBatch(chunk).status.ok());
  }
  for (const BatchOp& op : script) {
    switch (op.kind) {
      case BatchOp::Kind::kInsert:
        (void)single->Insert(op.key, op.value);
        break;
      case BatchOp::Kind::kUpdate:
        (void)single->Update(op.key, op.value);
        break;
      case BatchOp::Kind::kLookup:
        (void)single->Lookup(op.key);
        break;
    }
  }

  // Full ordered scans of both deployments must agree.
  auto scan = [](DirectorySuite& s) {
    std::vector<std::pair<UserKey, Value>> entries;
    auto cur = s.FirstKey();
    while (cur.ok() && cur->found) {
      entries.emplace_back(cur->key, cur->value);
      cur = s.NextKey(cur->key);
    }
    return entries;
  };
  EXPECT_EQ(scan(*suite_), scan(*single));
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

TEST_F(OpBatch, AutoBatcherCoalescesConcurrentSubmitters) {
  AutoBatcher::Options options;
  options.max_batch = 64;
  options.max_wait_us = 100'000;  // generous door: coalescing must happen
  AutoBatcher batcher(*suite_, options);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        if (!batcher.Insert(key, "v").ok()) failures.fetch_add(1);
        const auto got = batcher.Lookup(key);
        if (!got.ok() || !got->found || got->value != "v") {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(batcher.ops_submitted(),
            static_cast<std::uint64_t>(kThreads * kOpsPerThread * 2));
  // Coalescing proof: strictly fewer dispatches than operations.
  EXPECT_LT(batcher.batches_dispatched(), batcher.ops_submitted());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::string key = "t" + std::to_string(t) + "_" + std::to_string(i);
      EXPECT_EQ(suite_->Lookup(key)->value, "v");
    }
  }
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

// Submit-then-immediately-destroy: the destructor must flush every accepted
// operation - a submitter either gets its real result or a clean refusal,
// never a hang and never a silently dropped write that reported OK.
TEST_F(OpBatch, DestructorFlushesAcceptedOps) {
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<Status> results(kThreads);
  {
    AutoBatcher::Options options;
    options.max_wait_us = 50'000;  // Door wide open: destruction must close it.
    AutoBatcher batcher(*suite_, options);
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&batcher, &results, t] {
        results[static_cast<std::size_t>(t)] =
            batcher.Insert("dtor" + std::to_string(t), "v");
      });
    }
    // Wait until every op is accepted (queued), then destroy immediately -
    // the submitters are still blocked awaiting their results.
    while (batcher.ops_submitted() <
           static_cast<std::uint64_t>(kThreads)) {
      std::this_thread::yield();
    }
  }
  for (auto& t : threads) t.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[static_cast<std::size_t>(t)].ok())
        << results[static_cast<std::size_t>(t)].ToString();
    const auto got = suite_->Lookup("dtor" + std::to_string(t));
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->found) << "accepted then dropped: dtor" << t;
  }
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

TEST_F(OpBatch, DrainIsABarrierForAcceptedOps) {
  AutoBatcher::Options options;
  options.max_batch = 4;
  options.max_wait_us = 0;
  AutoBatcher batcher(*suite_, options);
  batcher.Drain();  // Idle drain returns immediately.

  constexpr int kOps = 12;
  std::vector<std::thread> threads;
  threads.reserve(kOps);
  std::atomic<int> accepted{0};
  for (int i = 0; i < kOps; ++i) {
    threads.emplace_back([&batcher, &accepted, i] {
      if (batcher.Insert("drain" + std::to_string(i), "v").ok()) {
        accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  batcher.Drain();

  // Every accepted op is visible through an independent client now.
  auto other = harness_.NewSuite(101);
  int found = 0;
  for (int i = 0; i < kOps; ++i) {
    auto got = other->Lookup("drain" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    if (got->found) ++found;
  }
  EXPECT_EQ(found, accepted.load());
  EXPECT_EQ(found, kOps);
}

}  // namespace
}  // namespace repdir::test
