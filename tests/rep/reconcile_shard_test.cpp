// Reconciler vs in-flight shard migration: a repair pass racing an online
// split must never duplicate a copied-but-not-yet-retired entry onto the
// source shard's replicas, nor make one vanish before the retire step runs.
// Guarded installs carry the ordinary shard-ownership check, so a repair of
// a key the source shard no longer owns bounces with kWrongShard and the
// reconciler simply leaves it to the new owner.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rep/reconciler.h"
#include "rep/shard_manager.h"
#include "rep/sharded_dir.h"
#include "shard_harness.h"
#include "storage/dir_rep_core.h"

namespace repdir::rep {
namespace {

using test::ShardHarness;

constexpr NodeId kReconcilerNode = 101;

std::vector<std::string> Keys() {
  std::vector<std::string> keys;
  for (char c = 'a'; c <= 'z'; ++c) keys.emplace_back(1, c);
  return keys;
}

class ReconcileShardTest : public ::testing::Test {
 protected:
  ReconcileShardTest() {
    EXPECT_TRUE(
        harness_
            .Bootstrap(SingleShardMap(1, QuorumConfig::Uniform(3, 2, 2, 1)))
            .ok());
    harness_.AddReplicas(TargetConfig());
    router_ = harness_.NewRouter();
    for (const auto& k : Keys()) {
      EXPECT_TRUE(router_->Insert(k, "v-" + k).ok());
    }
  }

  static QuorumConfig TargetConfig() {
    return QuorumConfig::Uniform(3, 2, 2, 11);
  }

  static QuorumConfig SourceConfig() {
    return QuorumConfig::Uniform(3, 2, 2, 1);
  }

  /// Updates `key` while source replica 3 is partitioned away, leaving it
  /// stale there (the quorum {1, 2} carries the write).
  void StaleOnNode3(const std::string& key, const std::string& value) {
    harness_.network().SetNodeUp(3, false);
    ASSERT_TRUE(router_->Update(key, value).ok());
    harness_.network().SetNodeUp(3, true);
  }

  std::vector<std::string> ScanKeys(ShardedDirectory& router) {
    auto scan = router.Scan();
    EXPECT_TRUE(scan.ok());
    std::vector<std::string> keys;
    for (const auto& e : scan.value()) keys.push_back(e.key);
    return keys;
  }

  void ExpectAllWellFormed() {
    for (NodeId n : {1, 2, 3, 11, 12, 13}) {
      EXPECT_TRUE(storage::CheckRepInvariants(harness_.node(n).storage()).ok())
          << "replica " << n;
    }
  }

  ShardHarness harness_;
  std::unique_ptr<ShardedDirectory> router_;
  MemShardJournal journal_;
};

TEST_F(ReconcileShardTest, RepairAfterFlipNeverRespreadsTheRetiringRange) {
  // Replica 3 misses an update on each side of the fence "m".
  StaleOnNode3("c", "fresh-c");
  StaleOnNode3("q", "fresh-q");

  // Crash the split right after step 5: the copy ran, the map flipped -
  // shard 2 owns [m, ..) - but the source replicas still HOLD every copied
  // entry (retire is step 6, still pending).
  ShardManager::Options crash;
  crash.journal = &journal_;
  crash.fail_after_step = 5;
  ASSERT_EQ(harness_.NewManager(crash)->Split(1, "m", 2, TargetConfig()).code(),
            StatusCode::kAborted);

  // Anti-entropy pass over the source shard's replica set, mid-migration.
  // The owned side ("c") must repair; the copied-but-not-retired side
  // ("q") must bounce off the narrowed shard bounds and stay untouched.
  Reconciler rec(harness_.transport(), kReconcilerNode, SourceConfig());
  ASSERT_TRUE(rec.RunOnce().ok());
  EXPECT_GT(rec.stats().entries_installed, 0u) << "owned-side repair landed";

  const auto Find = [&](NodeId n, const std::string& key)
      -> std::optional<storage::StoredEntry> {
    for (const auto& e : harness_.node(n).storage().Scan()) {
      if (e.key.is_user() && e.key.user() == key) return e;
    }
    return std::nullopt;
  };
  ASSERT_TRUE(Find(3, "c").has_value());
  EXPECT_EQ(Find(3, "c")->value, "fresh-c") << "owned range must repair";
  ASSERT_TRUE(Find(3, "q").has_value());
  EXPECT_EQ(Find(3, "q")->value, "v-q")
      << "retiring range must NOT be re-spread by the reconciler";
  ExpectAllWellFormed();

  // A successor manager retires the moved range; afterwards every key
  // lives exactly once, in its new home, at its newest value.
  ShardManager::Options resume;
  resume.journal = &journal_;
  ASSERT_TRUE(harness_.NewManager(resume)->Resume().ok());

  auto after = harness_.NewRouter(ShardHarness::kRouterNode + 1);
  EXPECT_EQ(ScanKeys(*after), Keys()) << "no key duplicated or vanished";
  EXPECT_EQ(after->Lookup("q").value().value, "fresh-q");
  EXPECT_EQ(after->Lookup("c").value().value, "fresh-c");
  for (NodeId n : {1, 2, 3}) {
    for (const auto& e : harness_.node(n).storage().Scan()) {
      if (e.key.is_user()) {
        EXPECT_LT(e.key.user(), std::string("m"))
            << "replica " << n << " kept a retired entry";
      }
    }
  }
  ExpectAllWellFormed();
}

TEST_F(ReconcileShardTest, RepairDuringDualWritePhaseKeepsTheCopyHonest) {
  StaleOnNode3("c", "fresh-c");
  StaleOnNode3("q", "fresh-q");

  // Crash right after step 3: dual-writes armed, source fenced, copy NOT
  // yet run. The source shard still owns its full range, so repairing the
  // stale replica here is legitimate - and the later copy must pick up the
  // repaired (newest) values, not resurrect stale ones.
  ShardManager::Options crash;
  crash.journal = &journal_;
  crash.fail_after_step = 3;
  ASSERT_EQ(harness_.NewManager(crash)->Split(1, "m", 2, TargetConfig()).code(),
            StatusCode::kAborted);

  Reconciler rec(harness_.transport(), kReconcilerNode, SourceConfig());
  ASSERT_TRUE(rec.RunOnce().ok());
  EXPECT_EQ(rec.stats().repair_aborts, 0u);
  EXPECT_GT(rec.stats().entries_installed, 0u);

  ShardManager::Options resume;
  resume.journal = &journal_;
  ASSERT_TRUE(harness_.NewManager(resume)->Resume().ok());

  auto after = harness_.NewRouter(ShardHarness::kRouterNode + 1);
  EXPECT_EQ(ScanKeys(*after), Keys());
  EXPECT_EQ(after->Lookup("q").value().value, "fresh-q");
  EXPECT_EQ(after->Lookup("c").value().value, "fresh-c");
  ExpectAllWellFormed();
}

TEST_F(ReconcileShardTest, TargetShardReconcilesCleanlyAfterTheSplit) {
  ASSERT_TRUE(harness_.NewManager()->Split(1, "m", 2, TargetConfig()).ok());

  // Post-split traffic that leaves target replica 13 stale.
  auto router = harness_.NewRouter(ShardHarness::kRouterNode + 1);
  harness_.network().SetNodeUp(13, false);
  ASSERT_TRUE(router->Update("q", "post-split").ok());
  ASSERT_TRUE(router->Delete("r").ok());
  harness_.network().SetNodeUp(13, true);

  Reconciler rec(harness_.transport(), kReconcilerNode, TargetConfig());
  ASSERT_TRUE(rec.RunOnce().ok());
  EXPECT_EQ(rec.stats().replicas_failed, 0u);
  EXPECT_EQ(harness_.node(11).storage().Scan(),
            harness_.node(13).storage().Scan())
      << "stale target replica should converge";
  ExpectAllWellFormed();

  std::vector<std::string> want = Keys();
  want.erase(std::find(want.begin(), want.end(), "r"));
  EXPECT_EQ(ScanKeys(*router), want);
}

}  // namespace
}  // namespace repdir::rep
