// QuorumConfig validation and vote arithmetic; quorum policies; exact and
// Monte-Carlo availability.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baseline/unanimous.h"
#include "rep/availability.h"
#include "rep/quorum.h"
#include "rep/quorum_policy.h"

namespace repdir::rep {
namespace {

TEST(QuorumConfig, UniformBuilder) {
  const auto c = QuorumConfig::Uniform(3, 2, 2);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.TotalVotes(), 3u);
  EXPECT_EQ(c.read_quorum(), 2u);
  EXPECT_EQ(c.write_quorum(), 2u);
  EXPECT_EQ(c.Nodes(), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(c.ToString(), "3-2-2");
  EXPECT_TRUE(c.Validate().ok());
}

TEST(QuorumConfig, ValidationRules) {
  // R + W must exceed V.
  EXPECT_FALSE(QuorumConfig::Uniform(3, 1, 2).Validate().ok());
  EXPECT_TRUE(QuorumConfig::Uniform(3, 2, 2).Validate().ok());
  EXPECT_TRUE(QuorumConfig::Uniform(3, 1, 3).Validate().ok());
  // The paper's examples 4-2-3 and the read-heavy 4-3-2 are both legal.
  EXPECT_TRUE(QuorumConfig::Uniform(4, 2, 3).Validate().ok());
  EXPECT_TRUE(QuorumConfig::Uniform(4, 3, 2).Validate().ok());
  // ...but 4-3-2 fails the strict Gifford file condition 2W > V.
  EXPECT_FALSE(QuorumConfig::Uniform(4, 3, 2).Validate(true).ok());
  EXPECT_TRUE(QuorumConfig::Uniform(4, 2, 3).Validate(true).ok());

  // Degenerate errors.
  EXPECT_FALSE(QuorumConfig({}, 1, 1).Validate().ok());
  EXPECT_FALSE(QuorumConfig::Uniform(3, 0, 3).Validate().ok());
  EXPECT_FALSE(QuorumConfig::Uniform(3, 2, 4).Validate().ok());
  EXPECT_FALSE(
      QuorumConfig({{1, 1}, {1, 1}}, 1, 2).Validate().ok());  // dup node
  EXPECT_FALSE(
      QuorumConfig({{kInvalidNode, 1}}, 1, 1).Validate().ok());
}

TEST(QuorumConfig, WeightedVotes) {
  const QuorumConfig c({{1, 3}, {2, 1}, {3, 1}}, 3, 3);
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.TotalVotes(), 5u);
  EXPECT_EQ(c.VotesOf(1), 3u);
  EXPECT_EQ(c.VotesOf(9), 0u);
  // Node 1 alone is a quorum; nodes 2+3 are not.
  EXPECT_TRUE(c.IsReadQuorum({1}));
  EXPECT_FALSE(c.IsReadQuorum({2, 3}));
  EXPECT_TRUE(c.IsWriteQuorum({1}));
  EXPECT_NE(c.ToString().find("votes:"), std::string::npos);
}

TEST(QuorumConfig, UnanimousHelpers) {
  const auto u = baseline::UnanimousConfig(4);
  EXPECT_TRUE(u.Validate().ok());
  EXPECT_EQ(u.read_quorum(), 1u);
  EXPECT_EQ(u.write_quorum(), 4u);
  const auto r = baseline::ReadAllWriteOneConfig(4);
  EXPECT_TRUE(r.Validate().ok());
  EXPECT_EQ(r.read_quorum(), 4u);
}

TEST(RandomPolicy, CoversAllOrderings) {
  const auto config = QuorumConfig::Uniform(3, 2, 2);
  RandomQuorumPolicy policy(config, 7);
  std::set<std::vector<NodeId>> seen;
  for (int i = 0; i < 200; ++i) {
    auto order = policy.PreferenceOrder(OpClass::kRead);
    ASSERT_EQ(order.size(), 3u);
    seen.insert(order);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 3! permutations appear
}

TEST(StablePolicy, FixedOrder) {
  StableQuorumPolicy policy({3, 1, 2});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(policy.PreferenceOrder(OpClass::kWrite),
              (std::vector<NodeId>{3, 1, 2}));
  }
}

TEST(LocalityPolicy, ReadsLocalWritesRotateRemote) {
  LocalityQuorumPolicy policy({1, 2}, {3, 4});
  // Reads always local-first, remote order stable.
  EXPECT_EQ(policy.PreferenceOrder(OpClass::kRead),
            (std::vector<NodeId>{1, 2, 3, 4}));
  // Writes rotate the remote tail: 3,4 then 4,3 then 3,4 ...
  EXPECT_EQ(policy.PreferenceOrder(OpClass::kWrite),
            (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(policy.PreferenceOrder(OpClass::kWrite),
            (std::vector<NodeId>{1, 2, 4, 3}));
  EXPECT_EQ(policy.PreferenceOrder(OpClass::kWrite),
            (std::vector<NodeId>{1, 2, 3, 4}));
  // Reads unaffected by the rotation counter.
  EXPECT_EQ(policy.PreferenceOrder(OpClass::kRead),
            (std::vector<NodeId>{1, 2, 3, 4}));
}

double Binomial(int n, int k) {
  double r = 1;
  for (int i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

double AtLeast(int n, int k, double p) {
  double sum = 0;
  for (int i = k; i <= n; ++i) {
    sum += Binomial(n, i) * std::pow(p, i) * std::pow(1 - p, n - i);
  }
  return sum;
}

TEST(Availability, ExactMatchesClosedForm) {
  const auto c = QuorumConfig::Uniform(5, 3, 3);
  for (const double p : {0.5, 0.9, 0.99}) {
    const AvailabilityPoint a = ExactAvailability(c, p);
    EXPECT_NEAR(a.read, AtLeast(5, 3, p), 1e-12);
    EXPECT_NEAR(a.write, AtLeast(5, 3, p), 1e-12);
    EXPECT_NEAR(a.modify, AtLeast(5, 3, p), 1e-12);  // same quota
  }
}

TEST(Availability, UnanimousUpdateIsFragile) {
  const double p = 0.9;
  const auto unanimous = baseline::UnanimousConfig(5);
  const auto balanced = QuorumConfig::Uniform(5, 3, 3);
  const AvailabilityPoint u = ExactAvailability(unanimous, p);
  const AvailabilityPoint b = ExactAvailability(balanced, p);
  EXPECT_NEAR(u.write, std::pow(p, 5), 1e-12);  // all 5 must be up
  EXPECT_GT(b.write, u.write);                  // the paper's §2 motivation
  EXPECT_GT(u.read, b.read);                    // and the read-side tradeoff
}

TEST(Availability, ModifyNeedsBothQuorums) {
  // R=1, W=4 on 4 replicas: modify requires max(R,W)=4 up.
  const auto c = baseline::UnanimousConfig(4);
  const AvailabilityPoint a = ExactAvailability(c, 0.8);
  EXPECT_NEAR(a.modify, std::pow(0.8, 4), 1e-12);
  EXPECT_GT(a.read, a.modify);
}

TEST(Availability, HeterogeneousProbabilities) {
  const auto c = QuorumConfig::Uniform(2, 1, 2);
  const AvailabilityPoint a = ExactAvailability(c, {1.0, 0.0});
  EXPECT_NEAR(a.read, 1.0, 1e-12);   // node 1 always up
  EXPECT_NEAR(a.write, 0.0, 1e-12);  // node 2 never up
}

TEST(Availability, MonteCarloAgreesWithExact) {
  const auto c = QuorumConfig::Uniform(5, 2, 4);
  Rng rng(123);
  const AvailabilityPoint exact = ExactAvailability(c, 0.85);
  const AvailabilityPoint sim = SimulatedAvailability(c, 0.85, 200'000, rng);
  EXPECT_NEAR(sim.read, exact.read, 0.005);
  EXPECT_NEAR(sim.write, exact.write, 0.005);
  EXPECT_NEAR(sim.modify, exact.modify, 0.005);
}

TEST(Availability, WeightedVotesShiftAvailability) {
  // A 2-vote replica means quorums can form without majorities of machines.
  const QuorumConfig weighted({{1, 2}, {2, 1}, {3, 1}}, 2, 3);
  const AvailabilityPoint a = ExactAvailability(weighted, 0.9);
  // Read quorum (2 votes): node 1 alone suffices.
  EXPECT_GT(a.read, 0.9 - 1e-12);
  EXPECT_TRUE(weighted.IsReadQuorum({1}));
}

}  // namespace
}  // namespace repdir::rep
