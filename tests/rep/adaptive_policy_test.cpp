// AdaptiveQuorumPolicy ordering: measured-fast nodes lead, quarantined
// nodes close the permutation (reachable as fallback, never dropped),
// probation nodes rank first so the next wave probes them, and the order
// is always a permutation of the configuration.
#include "rep/adaptive_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "rep/quorum.h"

namespace repdir::rep {
namespace {

constexpr net::MethodId kLookupMethod = static_cast<net::MethodId>(kLookup);

class AdaptivePolicyTest : public ::testing::Test {
 protected:
  AdaptivePolicyTest()
      : metrics_(&clock_),
        board_(std::make_shared<net::NodeScoreboard>(&metrics_)),
        config_(QuorumConfig::Uniform(5, 3, 3)),
        policy_(config_, board_, /*seed=*/7) {}

  /// Seeds a stable EWMA by repeating the sample.
  void Measure(NodeId node, double latency_us) {
    for (int i = 0; i < 12; ++i) {
      board_->OnComplete(node, kLookupMethod, latency_us, true);
    }
  }

  void Quarantine(NodeId node) {
    for (std::uint32_t i = 0; i < board_->options().quarantine_after; ++i) {
      board_->OnComplete(node, kLookupMethod, 0.0, false);
    }
  }

  VirtualClock clock_;
  MetricsRegistry metrics_;
  std::shared_ptr<net::NodeScoreboard> board_;
  QuorumConfig config_;
  AdaptiveQuorumPolicy policy_;
};

bool IsPermutationOfConfig(const std::vector<NodeId>& order,
                           const QuorumConfig& config) {
  std::vector<NodeId> a = order;
  std::vector<NodeId> b = config.Nodes();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

TEST_F(AdaptivePolicyTest, OrderIsAlwaysAPermutation) {
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(IsPermutationOfConfig(policy_.PreferenceOrder(OpClass::kRead),
                                      config_));
  }
  Measure(1, 50.0);
  Quarantine(2);
  Measure(3, 9000.0);
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(IsPermutationOfConfig(policy_.PreferenceOrder(OpClass::kRead),
                                      config_));
    EXPECT_TRUE(IsPermutationOfConfig(policy_.PreferenceOrder(OpClass::kWrite),
                                      config_));
  }
}

TEST_F(AdaptivePolicyTest, MeasuredSlowNodeSortsOutOfTheMinimalPrefix) {
  Measure(1, 100.0);
  Measure(2, 100.0);
  Measure(3, 100.0);
  Measure(4, 100.0);
  Measure(5, 10'000.0);  // the straggler
  for (int round = 0; round < 20; ++round) {
    const auto order = policy_.PreferenceOrder(OpClass::kRead);
    ASSERT_EQ(order.size(), 5u);
    // R = 3: the minimal voting prefix must never include the straggler.
    EXPECT_NE(order[0], 5u);
    EXPECT_NE(order[1], 5u);
    EXPECT_NE(order[2], 5u);
  }
}

TEST_F(AdaptivePolicyTest, QuarantinedNodesCloseTheOrder) {
  Quarantine(4);
  Quarantine(5);
  for (int round = 0; round < 20; ++round) {
    const auto order = policy_.PreferenceOrder(OpClass::kRead);
    ASSERT_EQ(order.size(), 5u);
    // Still present (the prefix walk can reach them as fallback), but only
    // after every healthy candidate.
    EXPECT_TRUE((order[3] == 4 && order[4] == 5) ||
                (order[3] == 5 && order[4] == 4));
  }
}

TEST_F(AdaptivePolicyTest, ProbationNodeRanksFirstAndRecoversOnProbe) {
  Measure(1, 100.0);
  Measure(2, 100.0);
  Measure(3, 100.0);
  Measure(4, 100.0);
  Quarantine(5);
  EXPECT_EQ(policy_.PreferenceOrder(OpClass::kRead).back(), 5u);

  // Quarantine expires -> probation: the policy deliberately ranks the
  // node FIRST, so the very next wave probes it instead of starving it.
  clock_.AdvanceBy(board_->options().quarantine_base_us);
  EXPECT_EQ(policy_.PreferenceOrder(OpClass::kRead).front(), 5u);

  // The probe succeeds: the node is healthy again and competes on its
  // measured latency like everyone else - never permanently starved.
  board_->OnComplete(5, kLookupMethod, 100.0, true);
  EXPECT_EQ(board_->HealthOf(5), net::NodeScoreboard::Health::kHealthy);
  const auto order = policy_.PreferenceOrder(OpClass::kRead);
  EXPECT_TRUE(IsPermutationOfConfig(order, config_));
}

TEST_F(AdaptivePolicyTest, TieBandSpreadsLoadAcrossEquivalentNodes) {
  // All nodes unmeasured: every candidate ties at the default latency, so
  // power-of-two-choices should not herd every order onto one fixed head.
  std::set<NodeId> heads;
  for (int round = 0; round < 64; ++round) {
    heads.insert(policy_.PreferenceOrder(OpClass::kRead).front());
  }
  EXPECT_GT(heads.size(), 1u);
}

TEST_F(AdaptivePolicyTest, SameSeedSameMeasurementsSameOrders) {
  Measure(1, 100.0);
  Measure(3, 2000.0);
  AdaptiveQuorumPolicy a(config_, board_, 99);
  AdaptiveQuorumPolicy b(config_, board_, 99);
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(a.PreferenceOrder(OpClass::kRead),
              b.PreferenceOrder(OpClass::kRead));
  }
}

}  // namespace
}  // namespace repdir::rep
