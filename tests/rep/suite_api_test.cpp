// DirectorySuite public API semantics: single-site directory behaviour
// (paper §1) plus version bookkeeping visible at the representatives.
#include <gtest/gtest.h>

#include "invariants.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

class SuiteApi : public ::testing::Test {
 protected:
  SuiteApi()
      : harness_(QuorumConfig::Uniform(3, 2, 2)),
        suite_(harness_.NewSuite(100)) {}

  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
};

TEST_F(SuiteApi, LookupOnEmptyDirectory) {
  const auto r = suite_->Lookup("missing");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
}

TEST_F(SuiteApi, InsertThenLookup) {
  ASSERT_TRUE(suite_->Insert("k", "v1").ok());
  const auto r = suite_->Lookup("k");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
  EXPECT_EQ(r->value, "v1");
}

TEST_F(SuiteApi, InsertDuplicateFails) {
  ASSERT_TRUE(suite_->Insert("k", "v1").ok());
  EXPECT_EQ(suite_->Insert("k", "v2").code(), StatusCode::kAlreadyExists);
  // Value unchanged.
  EXPECT_EQ(suite_->Lookup("k")->value, "v1");
}

TEST_F(SuiteApi, UpdateRequiresExistence) {
  EXPECT_EQ(suite_->Update("k", "v").code(), StatusCode::kNotFound);
  ASSERT_TRUE(suite_->Insert("k", "v1").ok());
  ASSERT_TRUE(suite_->Update("k", "v2").ok());
  EXPECT_EQ(suite_->Lookup("k")->value, "v2");
}

TEST_F(SuiteApi, DeleteRequiresExistence) {
  EXPECT_EQ(suite_->Delete("k").code(), StatusCode::kNotFound);
  ASSERT_TRUE(suite_->Insert("k", "v").ok());
  ASSERT_TRUE(suite_->Delete("k").ok());
  EXPECT_FALSE(suite_->Lookup("k")->found);
  EXPECT_EQ(suite_->Delete("k").code(), StatusCode::kNotFound);
}

TEST_F(SuiteApi, ReinsertAfterDeleteGetsFreshValue) {
  ASSERT_TRUE(suite_->Insert("k", "v1").ok());
  ASSERT_TRUE(suite_->Delete("k").ok());
  ASSERT_TRUE(suite_->Insert("k", "v2").ok());
  const auto r = suite_->Lookup("k");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
  EXPECT_EQ(r->value, "v2");
}

TEST_F(SuiteApi, UpdateBumpsVersionAboveOldOnEveryQuorum) {
  ASSERT_TRUE(suite_->Insert("k", "v1").ok());
  for (int i = 2; i <= 8; ++i) {
    ASSERT_TRUE(suite_->Update("k", "v" + std::to_string(i)).ok());
  }
  std::map<UserKey, Value> model{{"k", "v8"}};
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

TEST_F(SuiteApi, EmptyKeyAndValueAreLegal) {
  ASSERT_TRUE(suite_->Insert("", "empty-key").ok());
  ASSERT_TRUE(suite_->Insert("k", "").ok());
  EXPECT_TRUE(suite_->Lookup("")->found);
  EXPECT_EQ(suite_->Lookup("")->value, "empty-key");
  EXPECT_TRUE(suite_->Lookup("k")->found);
  EXPECT_EQ(suite_->Lookup("k")->value, "");
  ASSERT_TRUE(suite_->Delete("").ok());
  EXPECT_FALSE(suite_->Lookup("")->found);
}

TEST_F(SuiteApi, BinaryKeysAndValues) {
  const std::string key("\x00\x01\xff", 3);
  const std::string value("\xde\xad\x00\xbe\xef", 5);
  ASSERT_TRUE(suite_->Insert(key, value).ok());
  const auto r = suite_->Lookup(key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
  EXPECT_EQ(r->value, value);
}

TEST_F(SuiteApi, DeleteFirstAndLastEntriesUsesSentinels) {
  for (const char* k : {"a", "m", "z"}) ASSERT_TRUE(suite_->Insert(k, k).ok());
  ASSERT_TRUE(suite_->Delete("a").ok());  // real predecessor is LOW
  ASSERT_TRUE(suite_->Delete("z").ok());  // real successor is HIGH
  EXPECT_TRUE(suite_->Lookup("m")->found);
  EXPECT_FALSE(suite_->Lookup("a")->found);
  EXPECT_FALSE(suite_->Lookup("z")->found);
  EXPECT_TRUE(AllRepsWellFormed(harness_));
}

TEST_F(SuiteApi, DeleteLastRemainingEntry) {
  ASSERT_TRUE(suite_->Insert("only", "v").ok());
  ASSERT_TRUE(suite_->Delete("only").ok());
  EXPECT_FALSE(suite_->Lookup("only")->found);
  // Every representative is back to sentinels-only or holds only ghosts.
  EXPECT_TRUE(AllRepsWellFormed(harness_));
  EXPECT_TRUE(AllQuorumsAgree(harness_, {}));
}

TEST_F(SuiteApi, OpCountersTrackOutcomes) {
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  ASSERT_TRUE(suite_->Lookup("a").ok());
  ASSERT_TRUE(suite_->Update("a", "2").ok());
  ASSERT_TRUE(suite_->Delete("a").ok());
  (void)suite_->Delete("a");  // NotFound: not counted as success
  const auto& c = suite_->stats().counters();
  EXPECT_EQ(c.inserts, 1u);
  EXPECT_EQ(c.lookups, 1u);
  EXPECT_EQ(c.updates, 1u);
  EXPECT_EQ(c.deletes, 1u);
}

TEST_F(SuiteApi, SingleReplicaSuiteDegeneratesToLocalDirectory) {
  SuiteHarness h(QuorumConfig::Uniform(1, 1, 1));
  auto suite = h.NewSuite(100);
  ASSERT_TRUE(suite->Insert("x", "1").ok());
  ASSERT_TRUE(suite->Update("x", "2").ok());
  EXPECT_EQ(suite->Lookup("x")->value, "2");
  ASSERT_TRUE(suite->Delete("x").ok());
  EXPECT_FALSE(suite->Lookup("x")->found);
}

TEST_F(SuiteApi, ManySequentialOpsKeepStructure) {
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        suite_->Insert("key" + std::to_string(i), std::to_string(i)).ok());
  }
  for (int i = 0; i < 60; i += 2) {
    ASSERT_TRUE(suite_->Delete("key" + std::to_string(i)).ok());
  }
  std::map<UserKey, Value> model;
  for (int i = 1; i < 60; i += 2) model["key" + std::to_string(i)] =
      std::to_string(i);
  EXPECT_TRUE(AllRepsWellFormed(harness_));
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
}

}  // namespace
}  // namespace repdir::test
