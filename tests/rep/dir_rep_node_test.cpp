// DirRepNode service-level tests: the Figure 6 operations exercised through
// real RPC, including malformed and boundary requests a remote client could
// send.
#include <gtest/gtest.h>

#include "net/inproc_transport.h"
#include "net/rpc_client.h"
#include "rep/dir_rep_node.h"
#include "txn/txn_id.h"

namespace repdir::rep {
namespace {

using storage::RepKey;

class DirRepNodeRpc : public ::testing::Test {
 protected:
  DirRepNodeRpc() : client_(transport_, 100) {
    DirRepNodeOptions options;
    options.participant.blocking_locks = false;
    node_ = std::make_unique<DirRepNode>(1, options);
    transport_.RegisterNode(1, node_->server());
  }

  TxnId NewTxn() { return ids_.Next(); }

  Status Commit(TxnId txn) {
    return client_.Call<net::Empty>(1, kCommit, net::Empty{}, txn).status();
  }

  net::InProcTransport transport_;
  net::RpcClient client_;
  std::unique_ptr<DirRepNode> node_;
  txn::TxnIdFactory ids_{100};
};

TEST_F(DirRepNodeRpc, PingAnswers) {
  EXPECT_TRUE(client_.Call<net::Empty>(1, kPing, net::Empty{}).ok());
}

TEST_F(DirRepNodeRpc, InsertLookupRoundTrip) {
  const TxnId txn = NewTxn();
  ASSERT_TRUE(client_
                  .Call<net::Empty>(1, kInsert,
                                    InsertRequest{RepKey::User("k"), 3, "v"},
                                    txn)
                  .ok());
  const auto reply =
      client_.Call<LookupReply>(1, kLookup, KeyRequest{RepKey::User("k")}, txn);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->present);
  EXPECT_EQ(reply->version, 3u);
  EXPECT_EQ(reply->value, "v");
  ASSERT_TRUE(Commit(txn).ok());
}

TEST_F(DirRepNodeRpc, SentinelInsertIsRejected) {
  const TxnId txn = NewTxn();
  const auto st = client_.Call<net::Empty>(
      1, kInsert, InsertRequest{RepKey::Low(), 1, "x"}, txn);
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(Commit(txn).ok());
}

TEST_F(DirRepNodeRpc, PredecessorOfLowIsRejected) {
  const TxnId txn = NewTxn();
  const auto st = client_.Call<NeighborReply>(1, kPredecessor,
                                              KeyRequest{RepKey::Low()}, txn);
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
  const auto st2 = client_.Call<NeighborReply>(1, kSuccessor,
                                               KeyRequest{RepKey::High()}, txn);
  EXPECT_EQ(st2.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(Commit(txn).ok());
}

TEST_F(DirRepNodeRpc, CoalesceWithMissingBoundFails) {
  const TxnId txn = NewTxn();
  const auto st = client_.Call<CoalesceReply>(
      1, kCoalesce,
      CoalesceRequest{RepKey::User("nope"), RepKey::High(), 5}, txn);
  EXPECT_EQ(st.status().code(), StatusCode::kFailedPrecondition);
  const auto reversed = client_.Call<CoalesceReply>(
      1, kCoalesce, CoalesceRequest{RepKey::High(), RepKey::Low(), 5}, txn);
  EXPECT_EQ(reversed.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(Commit(txn).ok());
}

TEST_F(DirRepNodeRpc, CoalesceReportsErasedKeys) {
  const TxnId txn = NewTxn();
  for (const char* k : {"a", "b", "c"}) {
    ASSERT_TRUE(client_
                    .Call<net::Empty>(1, kInsert,
                                      InsertRequest{RepKey::User(k), 1, "v"},
                                      txn)
                    .ok());
  }
  const auto reply = client_.Call<CoalesceReply>(
      1, kCoalesce, CoalesceRequest{RepKey::Low(), RepKey::High(), 9}, txn);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->erased.size(), 3u);
  EXPECT_EQ(reply->erased[0], RepKey::User("a"));
  EXPECT_EQ(reply->erased[2], RepKey::User("c"));
  ASSERT_TRUE(Commit(txn).ok());
}

TEST_F(DirRepNodeRpc, UnknownMethodIsInvalidArgument) {
  const auto st = client_.Call<net::Empty>(1, 9999, net::Empty{});
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DirRepNodeRpc, MalformedPayloadIsCorruption) {
  net::RpcRequest raw;
  raw.from = 100;
  raw.method = kInsert;
  raw.payload = "\x01garbage-not-an-insert-request";
  net::RpcResponse resp;
  ASSERT_TRUE(transport_.Call(1, raw, resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kCorruption);
}

TEST_F(DirRepNodeRpc, AbortViaRpcUndoesEverything) {
  const TxnId txn = NewTxn();
  ASSERT_TRUE(client_
                  .Call<net::Empty>(1, kInsert,
                                    InsertRequest{RepKey::User("k"), 1, "v"},
                                    txn)
                  .ok());
  ASSERT_TRUE(
      client_.Call<net::Empty>(1, kAbortTxn, net::Empty{}, txn).ok());
  EXPECT_FALSE(node_->storage().Get(RepKey::User("k")).has_value());
}

TEST_F(DirRepNodeRpc, BTreeBackedNodeBehavesIdentically) {
  DirRepNodeOptions options;
  options.participant.blocking_locks = false;
  options.backend = DirRepNodeOptions::Backend::kBTree;
  options.btree_fanout = 3;
  DirRepNode btree_node(2, options);
  transport_.RegisterNode(2, btree_node.server());

  const TxnId txn = NewTxn();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        client_
            .Call<net::Empty>(2, kInsert,
                              InsertRequest{RepKey::User("k" +
                                                         std::to_string(i)),
                                            1, "v"},
                              txn)
            .ok());
  }
  const auto reply = client_.Call<LookupReply>(
      2, kLookup, KeyRequest{RepKey::User("k25")}, txn);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->present);
  ASSERT_TRUE(client_.Call<net::Empty>(2, kCommit, net::Empty{}, txn).ok());
  EXPECT_EQ(btree_node.storage().UserEntryCount(), 50u);
}

}  // namespace
}  // namespace repdir::rep
