// Parallel fan-out over a concurrent transport with injected failures:
// quorum operations must succeed while a minority of members is down, abort
// cleanly (releasing locks, rolling back partial work) when too much of the
// suite fails mid-transaction, and issue exactly the same RPCs as the
// sequential baseline when nothing fails.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lock/deadlock.h"
#include "net/failure_injector.h"
#include "net/threaded_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"

namespace repdir::test {
namespace {

using rep::DirectorySuite;
using rep::DirRepNode;
using rep::DirRepNodeOptions;
using rep::QuorumConfig;
using rep::Replica;

/// Representatives served over ThreadedTransport, calls routed through a
/// FailureInjector; suites may target the injector or, for the sequential
/// baseline, a SequentialAdapter stacked on top of it.
class FanOutDeployment {
 public:
  explicit FanOutDeployment(QuorumConfig config)
      : config_(config), injector_(transport_) {
    DirRepNodeOptions options;
    options.detector = &detector_;
    for (const auto& replica : config_.replicas()) {
      nodes_.push_back(std::make_unique<DirRepNode>(replica.node, options));
      transport_.RegisterNode(replica.node, nodes_.back()->server());
    }
  }

  std::unique_ptr<DirectorySuite> NewSuite(net::Transport& through,
                                           std::uint64_t seed,
                                           bool enable_cache = false) {
    DirectorySuite::Options options;
    options.config = config_;
    options.policy_seed = seed;
    options.enable_version_cache = enable_cache;
    return std::make_unique<DirectorySuite>(through, /*client_node=*/100,
                                            std::move(options));
  }

  net::FailureInjector& injector() { return injector_; }
  net::ThreadedTransport& transport() { return transport_; }

 private:
  QuorumConfig config_;
  lock::DeadlockDetector detector_;
  net::ThreadedTransport transport_;
  net::FailureInjector injector_;
  std::vector<std::unique_ptr<DirRepNode>> nodes_;
};

TEST(ParallelFanOut, MinorityOutageStillReachesQuorum) {
  FanOutDeployment deploy(QuorumConfig::Uniform(5, 3, 3));
  auto suite = deploy.NewSuite(deploy.injector(), 17);

  deploy.injector().BlockNode(4);
  deploy.injector().BlockNode(5);

  ASSERT_TRUE(suite->Insert("k", "v1").ok());
  ASSERT_TRUE(suite->Update("k", "v2").ok());
  const auto read = suite->Lookup("k");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->found);
  EXPECT_EQ(read->value, "v2");
  ASSERT_TRUE(suite->Delete("k").ok());
  const auto gone = suite->Lookup("k");
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone->found);
}

TEST(ParallelFanOut, MajorityOutageIsUnavailableUntilRecovery) {
  FanOutDeployment deploy(QuorumConfig::Uniform(5, 3, 3));
  auto suite = deploy.NewSuite(deploy.injector(), 17);

  deploy.injector().BlockNode(1);
  deploy.injector().BlockNode(2);
  deploy.injector().BlockNode(3);
  EXPECT_EQ(suite->Insert("k", "v").code(), StatusCode::kUnavailable);

  deploy.injector().ClearBlocked();
  ASSERT_TRUE(suite->Insert("k", "v").ok());
  const auto read = suite->Lookup("k");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->found);
}

TEST(ParallelFanOut, MidTransactionFailureRollsBackAndReleasesLocks) {
  FanOutDeployment deploy(QuorumConfig::Uniform(5, 3, 3));
  auto suite = deploy.NewSuite(deploy.injector(), 17);
  ASSERT_TRUE(suite->Insert("acct", "100").ok());

  auto txn = suite->Begin();
  ASSERT_TRUE(txn.Update("acct", "0").ok());
  // 5 voting members: the next operation's quorum collection rolls the
  // injector exactly once per ping (injection decides on the issuing
  // thread, in issue order), so five failures exhaust every candidate and
  // the operation dies with kUnavailable - after which the automatic abort
  // goes through cleanly (the injector is spent) and must undo the update.
  deploy.injector().FailNext(5);
  EXPECT_EQ(txn.Insert("other", "x").code(), StatusCode::kUnavailable);
  EXPECT_FALSE(txn.open());
  EXPECT_EQ(txn.Commit().code(), StatusCode::kFailedPrecondition);

  // Rolled back, and no orphaned locks: reads and writes proceed at once.
  const auto read = suite->Lookup("acct");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "100");
  EXPECT_TRUE(suite->Update("acct", "50").ok());
}

void MixedWorkload(DirectorySuite& suite) {
  for (int i = 0; i < 8; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(suite.Insert(key, "v").ok());
  }
  for (int i = 0; i < 8; i += 2) {
    ASSERT_TRUE(suite.Update("k" + std::to_string(i), "w").ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(suite.Lookup("k" + std::to_string(i)).ok());
  }
  auto cursor = suite.FirstKey();
  while (cursor.ok() && cursor->found) {
    cursor = suite.NextKey(cursor->key);
  }
  ASSERT_TRUE(cursor.ok());
  for (int i = 0; i < 8; i += 3) {
    ASSERT_TRUE(suite.Delete("k" + std::to_string(i)).ok());
  }
}

/// 5 voting members + 1 weak hint node; 2W > V, so the version cache's
/// guarded fast-path writes are armed when the cache is enabled.
QuorumConfig MixedWorkloadConfig() {
  return QuorumConfig({{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}, {6, 0}},
                      /*read_quorum=*/3, /*write_quorum=*/3);
}

void ExpectRpcCountsMatchSequential(bool enable_cache) {
  // Same deployment shape, same policy seed, same workload - one suite
  // fans out over the threaded transport, the other is forced sequential
  // by SequentialAdapter. The parallel path must issue exactly the RPCs
  // the sequential walk does: per-node read and write counts, neighbor
  // fetches, and transport attempts all equal. With the cache enabled the
  // flows change (guarded writes, validated reads) but must stay equally
  // deterministic: the cache is a plain LRU fed only by committed replies.
  const QuorumConfig config = MixedWorkloadConfig();

  FanOutDeployment parallel_deploy(config);
  auto parallel_suite =
      parallel_deploy.NewSuite(parallel_deploy.injector(), 23, enable_cache);
  MixedWorkload(*parallel_suite);

  FanOutDeployment sequential_deploy(config);
  net::SequentialAdapter sequential(sequential_deploy.injector());
  auto sequential_suite =
      sequential_deploy.NewSuite(sequential, 23, enable_cache);
  MixedWorkload(*sequential_suite);

  EXPECT_EQ(parallel_suite->read_rpcs_by_node(),
            sequential_suite->read_rpcs_by_node());
  EXPECT_EQ(parallel_suite->write_rpcs_by_node(),
            sequential_suite->write_rpcs_by_node());
  EXPECT_EQ(parallel_suite->stats().counters().neighbor_fetches,
            sequential_suite->stats().counters().neighbor_fetches);
  EXPECT_EQ(parallel_suite->stats().counters().fast_path_writes,
            sequential_suite->stats().counters().fast_path_writes);
  EXPECT_EQ(parallel_suite->stats().counters().validated_reads,
            sequential_suite->stats().counters().validated_reads);
  EXPECT_EQ(parallel_deploy.transport().TotalAttempts(),
            sequential_deploy.transport().TotalAttempts());
  if (enable_cache) {
    // The cached flow must actually differ from the baseline - otherwise
    // this determinism check is vacuous.
    EXPECT_GT(parallel_suite->stats().counters().cache_hits, 0u);
  }
}

TEST(ParallelFanOut, RpcCountsMatchSequentialBaseline) {
  ExpectRpcCountsMatchSequential(/*enable_cache=*/false);
}

TEST(ParallelFanOut, RpcCountsMatchSequentialBaselineWithVersionCache) {
  ExpectRpcCountsMatchSequential(/*enable_cache=*/true);
}

TEST(ParallelFanOut, CachedAndUncachedRunsConvergeToIdenticalDirectories) {
  // Same workload through a cached and an uncached suite on separate
  // deployments: final directory contents (full scan) must be identical.
  const QuorumConfig config = MixedWorkloadConfig();

  auto scan = [](DirectorySuite& suite) {
    std::vector<std::pair<UserKey, Value>> entries;
    auto cursor = suite.FirstKey();
    while (cursor.ok() && cursor->found) {
      entries.emplace_back(cursor->key, cursor->value);
      cursor = suite.NextKey(cursor->key);
    }
    EXPECT_TRUE(cursor.ok());
    return entries;
  };

  FanOutDeployment plain_deploy(config);
  auto plain = plain_deploy.NewSuite(plain_deploy.injector(), 23, false);
  MixedWorkload(*plain);

  FanOutDeployment cached_deploy(config);
  auto cached = cached_deploy.NewSuite(cached_deploy.injector(), 23, true);
  MixedWorkload(*cached);

  EXPECT_EQ(scan(*plain), scan(*cached));
  EXPECT_GT(cached->stats().counters().fast_path_writes, 0u);
}

}  // namespace
}  // namespace repdir::test
