// Whole-deployment invariant checks used by the property tests.
//
// The actual checking logic lives in src/chaos/invariants.h (shared with
// the chaos campaign CLI and the multi-process cluster driver); this header
// adapts it to gtest AssertionResults over a SuiteHarness.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "chaos/invariants.h"
#include "storage/dir_rep_core.h"
#include "suite_harness.h"

namespace repdir::test {

/// The answer a read quorum `members` would give for `key` by direct state
/// inspection (Fig. 8 rule: highest version wins; presence breaks a tie -
/// ties must not occur and are reported as corruption by the caller below).
struct QuorumAnswer {
  bool present = false;
  Version version = 0;
  Value value;
  bool ambiguous = false;  ///< present/absent tie at the same version.
};

inline QuorumAnswer AnswerOf(SuiteHarness& h, const std::set<NodeId>& members,
                             const UserKey& key) {
  QuorumAnswer best;
  bool first = true;
  const RepKey k = RepKey::User(key);
  for (const NodeId node : members) {
    const storage::DirRepCore core(h.node(node).storage());
    const storage::LookupReply reply = core.Lookup(k);
    if (first || reply.version > best.version) {
      best.present = reply.present;
      best.version = reply.version;
      best.value = reply.value;
      best.ambiguous = false;
      first = false;
    } else if (reply.version == best.version &&
               reply.present != best.present) {
      best.ambiguous = true;
    }
  }
  return best;
}

/// Checks that EVERY possible read quorum agrees with the model about every
/// interesting key. This is the paper's central correctness property: any
/// R-vote subset must return current data. Uses the exact (non-enumerating)
/// checker, so it stays tractable at any suite size.
inline ::testing::AssertionResult AllQuorumsAgree(
    SuiteHarness& h, const std::map<UserKey, Value>& model) {
  const Status st = chaos::CheckQuorumAgreement(h.config(), h.Scans(), model);
  if (!st.ok()) return ::testing::AssertionFailure() << st.ToString();
  return ::testing::AssertionSuccess();
}

/// Structural invariants on every representative.
inline ::testing::AssertionResult AllRepsWellFormed(SuiteHarness& h) {
  for (const auto& replica : h.config().replicas()) {
    const Status st =
        storage::CheckRepInvariants(h.node(replica.node).storage());
    if (!st.ok()) {
      return ::testing::AssertionFailure()
             << "node " << replica.node << ": " << st.ToString() << "\n  "
             << h.Dump(replica.node);
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace repdir::test
