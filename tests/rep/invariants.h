// Whole-deployment invariant checks used by the property tests.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "storage/dir_rep_core.h"
#include "suite_harness.h"

namespace repdir::test {

/// The answer a read quorum `members` would give for `key` by direct state
/// inspection (Fig. 8 rule: highest version wins; presence breaks a tie -
/// ties must not occur and are reported as corruption by the caller below).
struct QuorumAnswer {
  bool present = false;
  Version version = 0;
  Value value;
  bool ambiguous = false;  ///< present/absent tie at the same version.
};

inline QuorumAnswer AnswerOf(SuiteHarness& h, const std::set<NodeId>& members,
                             const UserKey& key) {
  QuorumAnswer best;
  bool first = true;
  const RepKey k = RepKey::User(key);
  for (const NodeId node : members) {
    const storage::DirRepCore core(h.node(node).storage());
    const storage::LookupReply reply = core.Lookup(k);
    if (first || reply.version > best.version) {
      best.present = reply.present;
      best.version = reply.version;
      best.value = reply.value;
      best.ambiguous = false;
      first = false;
    } else if (reply.version == best.version &&
               reply.present != best.present) {
      best.ambiguous = true;
    }
  }
  return best;
}

/// Checks that EVERY possible read quorum agrees with the model about every
/// interesting key (all keys stored on any representative, all model keys,
/// plus probes between them). This is the paper's central correctness
/// property: any R-vote subset must return current data.
inline ::testing::AssertionResult AllQuorumsAgree(
    SuiteHarness& h, const std::map<UserKey, Value>& model) {
  // Interesting keys: everything physically present anywhere (includes
  // ghosts) plus everything the model says exists.
  std::set<UserKey> keys;
  for (const auto& replica : h.config().replicas()) {
    for (const auto& e : h.node(replica.node).storage().Scan()) {
      if (e.key.is_user()) keys.insert(e.key.user());
    }
  }
  for (const auto& [key, value] : model) keys.insert(key);

  // All vote-sufficient subsets of representatives.
  const auto& replicas = h.config().replicas();
  const std::uint32_t n = static_cast<std::uint32_t>(replicas.size());
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::set<NodeId> members;
    Votes votes = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        members.insert(replicas[i].node);
        votes += replicas[i].votes;
      }
    }
    if (votes < h.config().read_quorum()) continue;

    for (const auto& key : keys) {
      const QuorumAnswer answer = AnswerOf(h, members, key);
      const auto it = model.find(key);
      const bool model_present = it != model.end();
      if (answer.ambiguous) {
        return ::testing::AssertionFailure()
               << "quorum mask " << mask << " is ambiguous for key " << key
               << " at version " << answer.version;
      }
      if (answer.present != model_present) {
        return ::testing::AssertionFailure()
               << "quorum mask " << mask << " says key " << key
               << (answer.present ? " present" : " absent") << " but model says "
               << (model_present ? "present" : "absent");
      }
      if (model_present && answer.value != it->second) {
        return ::testing::AssertionFailure()
               << "quorum mask " << mask << " returns stale value for key "
               << key << ": got '" << answer.value << "' want '" << it->second
               << "'";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Structural invariants on every representative.
inline ::testing::AssertionResult AllRepsWellFormed(SuiteHarness& h) {
  for (const auto& replica : h.config().replicas()) {
    const Status st =
        storage::CheckRepInvariants(h.node(replica.node).storage());
    if (!st.ok()) {
      return ::testing::AssertionFailure()
             << "node " << replica.node << ": " << st.ToString() << "\n  "
             << h.Dump(replica.node);
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace repdir::test
