// Analytic model: closed-form values, limits, and agreement with the
// simulation on the statistics the paper reports.
#include <gtest/gtest.h>

#include "rep/analytic_model.h"
#include "suite_harness.h"
#include "wl/adapters.h"
#include "wl/workload.h"

namespace repdir::rep {
namespace {

TEST(AnalyticModel, KnownValuesFor322) {
  // u = 0: every entry written exactly once -> p = W/V = 2/3; ghosts per
  // delete = (V-W)p = 2/3 - the paper's (pre-steady-state) 10000-entry row.
  const auto fresh = PredictDeleteOverheads(QuorumConfig::Uniform(3, 2, 2),
                                            AnalyticInputs{0.0});
  ASSERT_TRUE(fresh.ok());
  EXPECT_NEAR(fresh->present_at_rep, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(fresh->deletions_while_coalescing, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(fresh->entries_in_ranges_coalesced, 1.0, 1e-12);

  // u = 1 (the Figure 15 style workload): p = 0.8.
  const auto steady = PredictDeleteOverheads(QuorumConfig::Uniform(3, 2, 2),
                                             AnalyticInputs{1.0});
  ASSERT_TRUE(steady.ok());
  EXPECT_NEAR(steady->present_at_rep, 0.8, 1e-12);
  EXPECT_NEAR(steady->deletions_while_coalescing, 0.8, 1e-12);
  EXPECT_NEAR(steady->entries_in_ranges_coalesced, 1.2, 1e-12);
  EXPECT_NEAR(steady->insertions_while_coalescing, 0.8, 1e-12);
}

TEST(AnalyticModel, UnanimousWritesHaveNoOverhead) {
  // W = V: every representative always holds every current entry.
  for (const double u : {0.0, 1.0, 5.0}) {
    const auto p = PredictDeleteOverheads(QuorumConfig::Uniform(3, 1, 3),
                                          AnalyticInputs{u});
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(p->present_at_rep, 1.0, 1e-12);
    EXPECT_NEAR(p->deletions_while_coalescing, 0.0, 1e-12);
    EXPECT_NEAR(p->entries_in_ranges_coalesced, 1.0, 1e-12);
    EXPECT_NEAR(p->insertions_while_coalescing, 0.0, 1e-12);
  }
}

TEST(AnalyticModel, MoreUpdatesMeanMorePresence) {
  const auto config = QuorumConfig::Uniform(5, 3, 3);
  double last = 0;
  for (const double u : {0.0, 0.5, 1.0, 2.0, 10.0}) {
    const auto p = PredictDeleteOverheads(config, AnalyticInputs{u});
    ASSERT_TRUE(p.ok());
    EXPECT_GT(p->present_at_rep, last);
    last = p->present_at_rep;
  }
  EXPECT_LT(last, 1.0);
}

TEST(AnalyticModel, RejectsWeightedAndInvalidInputs) {
  EXPECT_FALSE(PredictDeleteOverheads(
                   QuorumConfig({{1, 2}, {2, 1}, {3, 1}}, 2, 3),
                   AnalyticInputs{1.0})
                   .ok());
  EXPECT_FALSE(PredictDeleteOverheads(QuorumConfig::Uniform(3, 2, 2),
                                      AnalyticInputs{-1.0})
                   .ok());
  EXPECT_FALSE(PredictDeleteOverheads(QuorumConfig::Uniform(3, 1, 1),
                                      AnalyticInputs{1.0})
                   .ok());  // invalid quorums
}

// End-to-end: the closed form predicts the simulation within tolerance.
TEST(AnalyticModel, MatchesSimulationFor322) {
  test::SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2));
  auto suite = harness.NewSuite(100, nullptr, 99);
  wl::SuiteClient client(*suite);

  wl::WorkloadOptions options;
  options.target_size = 100;
  options.operations = 20'000;
  options.update_fraction = 0.25;  // churn 0.5 -> deletes 0.25 -> u = 1
  options.lookup_fraction = 0.25;
  wl::SteadyStateWorkload workload(client, options);
  ASSERT_TRUE(workload.Fill().ok());
  suite->stats().Reset();
  ASSERT_TRUE(workload.Run().ok());

  const auto model = PredictDeleteOverheads(harness.config(),
                                            AnalyticInputs{1.0});
  ASSERT_TRUE(model.ok());

  const double sim_deletions =
      suite->stats().deletions_while_coalescing().mean();
  const double sim_entries =
      suite->stats().entries_in_ranges_coalesced().mean();
  EXPECT_NEAR(sim_deletions, model->deletions_while_coalescing, 0.15);
  EXPECT_NEAR(sim_entries, model->entries_in_ranges_coalesced, 0.20);
  // Insertions: model is an upper bound, but not wildly loose.
  const double sim_insertions =
      suite->stats().insertions_while_coalescing().mean();
  EXPECT_LE(sim_insertions, model->insertions_while_coalescing + 0.05);
  EXPECT_GE(sim_insertions, model->insertions_while_coalescing * 0.4);
}

}  // namespace
}  // namespace repdir::rep
