// Read-only transactions skip 2PC phase 1: a suite Lookup on 3-2-2 costs
// exactly R pings + R data reads + R commits (no prepares), while mutating
// operations run the full protocol.
#include <gtest/gtest.h>

#include "suite_harness.h"

namespace repdir::test {
namespace {

class ReadOnly2Pc : public ::testing::Test {
 protected:
  ReadOnly2Pc()
      : harness_(QuorumConfig::Uniform(3, 2, 2)),
        suite_(harness_.NewSuite(100)) {}

  std::uint64_t Attempts() { return harness_.transport().TotalAttempts(); }

  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
};

TEST_F(ReadOnly2Pc, LookupUsesSingleDecisionRound) {
  ASSERT_TRUE(suite_->Insert("k", "v").ok());
  const std::uint64_t before = Attempts();
  ASSERT_TRUE(suite_->Lookup("k").ok());
  // 2 pings + 2 lookups + 2 commits = 6 messages; a prepare round would
  // make it 8.
  EXPECT_EQ(Attempts() - before, 6u);
}

TEST_F(ReadOnly2Pc, FailedPreconditionOpsAbortNotCommit) {
  // Update of a missing key reads, fails cleanly, and aborts - also a
  // single decision round.
  const std::uint64_t before = Attempts();
  EXPECT_EQ(suite_->Update("missing", "v").code(), StatusCode::kNotFound);
  // 2 pings + 2 lookups + 2 aborts = 6.
  EXPECT_EQ(Attempts() - before, 6u);
}

TEST_F(ReadOnly2Pc, MutationsStillRunFullTwoPhase) {
  ASSERT_TRUE(suite_->Insert("a", "v").ok());
  const std::uint64_t before = Attempts();
  ASSERT_TRUE(suite_->Update("a", "w").ok());
  // read quorum: 2 pings + 2 lookups; write quorum: 2 pings + 2 inserts;
  // full 2PC: 2 prepares + 2 commits = 12 total.
  EXPECT_EQ(Attempts() - before, 12u);
}

TEST_F(ReadOnly2Pc, ReadOnlyMultiOpTransaction) {
  ASSERT_TRUE(suite_->Insert("a", "1").ok());
  ASSERT_TRUE(suite_->Insert("b", "2").ok());
  rep::SuiteTxn txn = suite_->Begin();
  EXPECT_TRUE(txn.Lookup("a").ok());
  EXPECT_TRUE(txn.Lookup("b").ok());
  ASSERT_TRUE(txn.Commit().ok());
  // Correctness: locks are released (another writer can proceed).
  ASSERT_TRUE(suite_->Update("a", "3").ok());
  EXPECT_EQ(suite_->Lookup("a")->value, "3");
}

TEST_F(ReadOnly2Pc, WeakWritesCountAsWrites) {
  // A config with a weak node: inserts propagate best-effort writes, which
  // must force the full protocol (data landed at the weak node).
  SuiteHarness h(QuorumConfig({{1, 1}, {2, 1}, {3, 1}, {9, 0}}, 2, 2));
  auto suite = h.NewSuite(100);
  ASSERT_TRUE(suite->Insert("k", "v").ok());
  // The weak node got the data and the 2PC decision: no transaction left
  // dangling there.
  EXPECT_TRUE(h.node(9).storage().Get(RepKey::User("k")).has_value());
  EXPECT_EQ(h.node(9).participant().ActiveCount(), 0u);
}

}  // namespace
}  // namespace repdir::test
