// Hedged single-shot read inquiries (SuiteOptions::enable_hedged_reads):
// on the inline deterministic transport the hedge wave fires exactly when
// the optimistic primaries cannot close the read quota, results match the
// unhedged suite, and same-seed runs stay bit-identical.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "invariants.h"
#include "suite_harness.h"

namespace repdir::test {
namespace {

/// A 3-node R=W=2 deployment with a hedged suite whose quorum order is
/// scripted to {1, 2, 3}: the optimistic read quorum is always the prefix
/// {1, 2} and node 3 is the hedge spare.
class HedgedReadTest : public ::testing::Test {
 protected:
  HedgedReadTest() : harness_(QuorumConfig::Uniform(3, 2, 2)) {
    rep::SuiteOptions options;
    options.enable_hedged_reads = true;
    options.metrics = &metrics_;
    auto policy = std::make_unique<ScriptedPolicy>(
        std::vector<NodeId>{1, 2, 3});
    options.policy = std::move(policy);
    suite_ = harness_.NewSuiteWithOptions(100, std::move(options));
  }

  std::uint64_t Hedges() { return metrics_.counter("rpc.hedges").value(); }

  MetricsRegistry metrics_;
  SuiteHarness harness_;
  std::unique_ptr<DirectorySuite> suite_;
};

TEST_F(HedgedReadTest, NoHedgeOnAHealthyDeployment) {
  ASSERT_TRUE(suite_->Insert("k", "v").ok());
  for (int i = 0; i < 10; ++i) {
    const auto r = suite_->Lookup("k");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found);
    EXPECT_EQ(r->value, "v");
  }
  // Inline transport: every primary reply lands during issuance, the quota
  // closes before the hedge decision, so no backup wave ever launches.
  EXPECT_EQ(Hedges(), 0u);
  EXPECT_EQ(metrics_.counter("rpc.hedge_wins").value(), 0u);
}

TEST_F(HedgedReadTest, HedgeWaveClosesQuorumAroundADownPrimary) {
  ASSERT_TRUE(suite_->Insert("k", "v").ok());
  // Node 2 sits in the optimistic quorum {1, 2}; with it down the
  // primaries muster only 1 of 2 votes and the (inline) hedge wave to the
  // spare node 3 must close the quota in the same attempt.
  harness_.network().SetNodeUp(2, false);
  const auto r = suite_->Lookup("k");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
  EXPECT_EQ(r->value, "v");
  EXPECT_EQ(Hedges(), 1u);
  EXPECT_EQ(metrics_.counter("rpc.hedge_wins").value(), 1u);
}

TEST_F(HedgedReadTest, FallsBackToPingedPathWhenQuorumTrulyGone) {
  ASSERT_TRUE(suite_->Insert("k", "v").ok());
  harness_.network().SetNodeUp(2, false);
  harness_.network().SetNodeUp(3, false);
  // One vote total: the hedged attempt and the pinged fallback both come
  // up short - the op reports unavailability, it does not hang or lie.
  EXPECT_EQ(suite_->Lookup("k").status().code(), StatusCode::kUnavailable);

  harness_.network().SetNodeUp(2, true);
  harness_.network().SetNodeUp(3, true);
  const auto r = suite_->Lookup("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, "v");
}

TEST_F(HedgedReadTest, HedgedResultsMatchUnhedgedSuite) {
  // A second deployment without hedging runs the same operations; every
  // result and the final replica states must agree.
  SuiteHarness plain_harness(QuorumConfig::Uniform(3, 2, 2));
  rep::SuiteOptions plain_options;
  plain_options.policy =
      std::make_unique<ScriptedPolicy>(std::vector<NodeId>{1, 2, 3});
  auto plain = plain_harness.NewSuiteWithOptions(100, std::move(plain_options));

  std::map<UserKey, Value> model;
  for (int i = 0; i < 16; ++i) {
    const std::string key = "k" + std::to_string(i % 5);
    const std::string value = "v" + std::to_string(i);
    const Status a = suite_->Insert(key, value);
    const Status b = plain->Insert(key, value);
    EXPECT_EQ(a.code(), b.code());
    if (a.ok()) model[key] = value;
    const auto ra = suite_->Lookup(key);
    const auto rb = plain->Lookup(key);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->found, rb->found);
    EXPECT_EQ(ra->value, rb->value);
  }
  EXPECT_TRUE(AllQuorumsAgree(harness_, model));
  EXPECT_TRUE(AllQuorumsAgree(plain_harness, model));
}

TEST(HedgedReadDeterminism, SameSeedRunsAreBitIdentical) {
  // Two fresh deployments, same seed, same ops, hedging AND the adaptive
  // policy enabled: per-op results and the total message count must match
  // exactly - on the deterministic transport the latency-aware layer adds
  // no nondeterminism.
  auto run = [](std::vector<std::string>& results) -> std::uint64_t {
    SuiteHarness harness(QuorumConfig::Uniform(3, 2, 2));
    MetricsRegistry metrics(&harness.clock());
    rep::SuiteOptions options;
    options.policy_seed = 1234;
    options.enable_hedged_reads = true;
    options.enable_adaptive_policy = true;
    options.metrics = &metrics;
    auto suite = harness.NewSuiteWithOptions(100, std::move(options));
    for (int i = 0; i < 24; ++i) {
      const std::string key = "k" + std::to_string(i % 7);
      results.push_back(suite->Insert(key, "v" + std::to_string(i)).ToString());
      const auto r = suite->Lookup(key);
      results.push_back(r.ok() ? r->value : r.status().ToString());
    }
    return harness.transport().TotalAttempts();
  };
  std::vector<std::string> first, second;
  const std::uint64_t attempts_first = run(first);
  const std::uint64_t attempts_second = run(second);
  EXPECT_EQ(first, second);
  EXPECT_EQ(attempts_first, attempts_second);
}

}  // namespace
}  // namespace repdir::test
