// TxnParticipant: transactional Figure 6 operations - lock acquisition per
// operation, undo on abort, WAL records, checkpoint gating.
#include <gtest/gtest.h>

#include "storage/map_storage.h"
#include "txn/participant.h"

namespace repdir::txn {
namespace {

using storage::MapStorage;
using storage::MemLogDevice;
using storage::ReadLog;
using storage::WalRecordType;
using storage::WalWriter;

class ParticipantTest : public ::testing::Test {
 protected:
  ParticipantTest()
      : wal_(device_),
        participant_(stg_, /*detector=*/nullptr, &wal_, NonBlocking()) {}

  static ParticipantOptions NonBlocking() {
    ParticipantOptions o;
    o.blocking_locks = false;
    return o;
  }

  MapStorage stg_;
  MemLogDevice device_;
  WalWriter wal_;
  TxnParticipant participant_;
};

TEST_F(ParticipantTest, InsertVisibleBeforeCommitWithinTxn) {
  ASSERT_TRUE(participant_.Insert(1, RepKey::User("a"), 3, "va").ok());
  const auto reply = participant_.Lookup(1, RepKey::User("a"));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->present);
  EXPECT_EQ(reply->version, 3u);
}

TEST_F(ParticipantTest, CommitReleasesLocksAndKeepsEffects) {
  ASSERT_TRUE(participant_.Insert(1, RepKey::User("a"), 1, "va").ok());
  EXPECT_GT(participant_.lock_manager().HeldCount(1), 0u);
  ASSERT_TRUE(participant_.Prepare(1).ok());
  ASSERT_TRUE(participant_.Commit(1).ok());
  EXPECT_EQ(participant_.lock_manager().HeldCount(1), 0u);
  EXPECT_TRUE(stg_.Get(RepKey::User("a")).has_value());
  EXPECT_FALSE(participant_.IsActive(1));
}

TEST_F(ParticipantTest, AbortUndoesInsertAndCoalesceInReverse) {
  // Committed base state: a, b, c.
  for (const char* k : {"a", "b", "c"}) {
    ASSERT_TRUE(participant_.Insert(1, RepKey::User(k), 1, "v").ok());
  }
  ASSERT_TRUE(participant_.Commit(1).ok());
  const auto base = stg_.Scan();

  // Txn 2: insert d, then coalesce (a, c) erasing b and d... d > c so
  // coalesce (a,c) erases only b; then coalesce (c, HIGH) erases d.
  ASSERT_TRUE(participant_.Insert(2, RepKey::User("d"), 2, "vd").ok());
  ASSERT_TRUE(
      participant_.Coalesce(2, RepKey::User("a"), RepKey::User("c"), 5).ok());
  ASSERT_TRUE(
      participant_.Coalesce(2, RepKey::User("c"), RepKey::High(), 6).ok());
  EXPECT_FALSE(stg_.Get(RepKey::User("b")).has_value());
  EXPECT_FALSE(stg_.Get(RepKey::User("d")).has_value());

  ASSERT_TRUE(participant_.Abort(2).ok());
  EXPECT_EQ(stg_.Scan(), base);
  EXPECT_EQ(participant_.lock_manager().HeldCount(2), 0u);
}

TEST_F(ParticipantTest, ConflictingTransactionsAbortInTryMode) {
  ASSERT_TRUE(participant_.Insert(1, RepKey::User("k"), 1, "v").ok());
  // Txn 2 cannot touch the same key while txn 1 holds RepModify.
  EXPECT_EQ(participant_.Insert(2, RepKey::User("k"), 2, "w").code(),
            StatusCode::kAborted);
  // But a disjoint key is fine - per-entry concurrency.
  EXPECT_TRUE(participant_.Insert(3, RepKey::User("z"), 1, "v").ok());
}

TEST_F(ParticipantTest, LookupBlocksConflictingCoalesceRange) {
  ASSERT_TRUE(participant_.Insert(1, RepKey::User("a"), 1, "v").ok());
  ASSERT_TRUE(participant_.Insert(1, RepKey::User("e"), 1, "v").ok());
  ASSERT_TRUE(participant_.Commit(1).ok());

  // Txn 2 reads key "c" (inside the gap); txn 3 may not coalesce across it.
  ASSERT_TRUE(participant_.Lookup(2, RepKey::User("c")).ok());
  EXPECT_EQ(participant_.Coalesce(3, RepKey::User("a"), RepKey::User("e"), 9)
                .status()
                .code(),
            StatusCode::kAborted);
}

TEST_F(ParticipantTest, WalRecordsOpsAndDecisions) {
  ASSERT_TRUE(participant_.Insert(1, RepKey::User("a"), 1, "v").ok());
  ASSERT_TRUE(participant_.Prepare(1).ok());
  ASSERT_TRUE(participant_.Commit(1).ok());

  const auto log = ReadLog(device_);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 3u);
  EXPECT_EQ((*log)[0].type, WalRecordType::kOp);
  EXPECT_EQ((*log)[1].type, WalRecordType::kPrepare);
  EXPECT_EQ((*log)[2].type, WalRecordType::kCommit);
}

TEST_F(ParticipantTest, ReadOnlyTransactionsLeaveNoLogRecords) {
  ASSERT_TRUE(participant_.Lookup(4, RepKey::User("q")).ok());
  ASSERT_TRUE(participant_.Prepare(4).ok());
  ASSERT_TRUE(participant_.Commit(4).ok());
  const auto log = ReadLog(device_);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->empty());
}

TEST_F(ParticipantTest, PrepareUnknownTxnFails) {
  EXPECT_EQ(participant_.Prepare(99).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ParticipantTest, CommitUnknownTxnIsIdempotentOk) {
  EXPECT_TRUE(participant_.Commit(99).ok());
  EXPECT_TRUE(participant_.Abort(98).ok());
}

TEST_F(ParticipantTest, CheckpointRequiresQuiescence) {
  ASSERT_TRUE(participant_.Insert(1, RepKey::User("a"), 1, "v").ok());
  EXPECT_EQ(participant_.WriteCheckpoint().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(participant_.Commit(1).ok());
  EXPECT_TRUE(participant_.WriteCheckpoint().ok());

  const auto log = ReadLog(device_);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 1u);
  EXPECT_EQ((*log)[0].type, WalRecordType::kCheckpoint);
}

TEST_F(ParticipantTest, PredecessorSuccessorLockRanges) {
  ASSERT_TRUE(participant_.Insert(1, RepKey::User("b"), 1, "v").ok());
  ASSERT_TRUE(participant_.Insert(1, RepKey::User("f"), 1, "v").ok());
  ASSERT_TRUE(participant_.Commit(1).ok());

  // Txn 2's Predecessor("d") locks RepLookup(b, d).
  const auto pred = participant_.Predecessor(2, RepKey::User("d"));
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->key, RepKey::User("b"));
  // Inserting "c" (inside the locked range) must conflict...
  EXPECT_EQ(participant_.Insert(3, RepKey::User("c"), 1, "v").code(),
            StatusCode::kAborted);
  // ...but "e" (outside [b, d]) is fine.
  EXPECT_TRUE(participant_.Insert(3, RepKey::User("e"), 1, "v").ok());
}

TEST(ParticipantNoWal, WorksWithoutDurability) {
  MapStorage stg;
  ParticipantOptions options;
  options.blocking_locks = false;
  TxnParticipant p(stg, nullptr, nullptr, options);
  ASSERT_TRUE(p.Insert(1, RepKey::User("a"), 1, "v").ok());
  ASSERT_TRUE(p.Prepare(1).ok());
  ASSERT_TRUE(p.Commit(1).ok());
  EXPECT_TRUE(stg.Get(RepKey::User("a")).has_value());
  EXPECT_EQ(p.WriteCheckpoint().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace repdir::txn
