// Two-phase commit: happy path, prepare failure -> global abort, phase-2
// unreachability -> commit still stands with in-doubt resolution at the
// participant.
#include <gtest/gtest.h>

#include "net/failure_injector.h"
#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/messages.h"
#include "txn/coordinator.h"
#include "txn/txn_id.h"

namespace repdir::txn {
namespace {

using rep::DirRepNode;
using rep::DirRepNodeOptions;

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest() {
    DirRepNodeOptions options;
    options.participant.blocking_locks = false;
    options.enable_wal = true;
    for (NodeId id : {1u, 2u, 3u}) {
      nodes_.push_back(std::make_unique<DirRepNode>(id, options));
      transport_.RegisterNode(id, nodes_.back()->server());
    }
  }

  Status InsertAt(NodeId node, TxnId txn, const std::string& key) {
    net::RpcClient client(transport_, 100);
    rep::InsertRequest req{storage::RepKey::User(key), 1, "v"};
    return client.Call<net::Empty>(node, rep::kInsert, req, txn).status();
  }

  net::InProcTransport transport_;
  std::vector<std::unique_ptr<DirRepNode>> nodes_;
};

constexpr TxnControlMethods kMethods{rep::kPrepare, rep::kCommit,
                                     rep::kAbortTxn};

TEST_F(CoordinatorTest, CommitAppliesEverywhere) {
  const TxnId txn = MakeTxnId(100, 1);
  ASSERT_TRUE(InsertAt(1, txn, "k").ok());
  ASSERT_TRUE(InsertAt(2, txn, "k").ok());

  net::RpcClient client(transport_, 100);
  TwoPhaseCommitter committer(client, kMethods);
  ASSERT_TRUE(committer.Commit(txn, {1, 2}).ok());

  EXPECT_TRUE(nodes_[0]->storage().Get(storage::RepKey::User("k")).has_value());
  EXPECT_TRUE(nodes_[1]->storage().Get(storage::RepKey::User("k")).has_value());
  EXPECT_FALSE(nodes_[0]->participant().IsActive(txn));
}

TEST_F(CoordinatorTest, AbortRollsBackEverywhere) {
  const TxnId txn = MakeTxnId(100, 2);
  ASSERT_TRUE(InsertAt(1, txn, "k").ok());
  ASSERT_TRUE(InsertAt(2, txn, "k").ok());

  net::RpcClient client(transport_, 100);
  TwoPhaseCommitter committer(client, kMethods);
  committer.Abort(txn, {1, 2});

  EXPECT_FALSE(
      nodes_[0]->storage().Get(storage::RepKey::User("k")).has_value());
  EXPECT_FALSE(
      nodes_[1]->storage().Get(storage::RepKey::User("k")).has_value());
}

TEST_F(CoordinatorTest, PrepareFailureAbortsGlobally) {
  const TxnId txn = MakeTxnId(100, 3);
  ASSERT_TRUE(InsertAt(1, txn, "k").ok());
  ASSERT_TRUE(InsertAt(2, txn, "k").ok());

  // Node 2 becomes unreachable before prepare.
  net::FailureInjector injector(transport_);
  injector.BlockNode(2);
  net::RpcClient client(injector, 100);
  TwoPhaseCommitter committer(client, kMethods);

  EXPECT_EQ(committer.Commit(txn, {1, 2}).code(), StatusCode::kAborted);
  // Node 1 (reachable) rolled back.
  EXPECT_FALSE(
      nodes_[0]->storage().Get(storage::RepKey::User("k")).has_value());
}

TEST_F(CoordinatorTest, Phase2FailureStillCommitsAndResolvesViaRecovery) {
  const TxnId txn = MakeTxnId(100, 4);
  ASSERT_TRUE(InsertAt(1, txn, "k").ok());
  ASSERT_TRUE(InsertAt(2, txn, "k").ok());

  // Both prepare; then node 2 crashes before receiving COMMIT. The
  // coordinator's commit succeeds (presumed commit after phase 1); node 2
  // recovers in doubt and learns the outcome.
  net::FailureInjector injector(transport_);
  net::RpcClient client(injector, 100);
  TwoPhaseCommitter committer(client, kMethods);

  // Let both prepares through, then block node 2 (phase 2 commit lost).
  // Prepare order is the set order {1, 2}; commits follow. FailNext-style
  // precision: block node 2 after its prepare by counting calls is fragile,
  // so instead: run phase 1 manually, crash node 2, then commit.
  ASSERT_TRUE(
      client.Call<net::Empty>(1, rep::kPrepare, net::Empty{}, txn).ok());
  ASSERT_TRUE(
      client.Call<net::Empty>(2, rep::kPrepare, net::Empty{}, txn).ok());
  nodes_[1]->Crash();
  injector.BlockNode(2);

  // Phase 2 from the committer: node 2 unreachable, commit stands.
  EXPECT_TRUE(committer.Commit(txn, {1}).ok());
  ASSERT_TRUE(
      client.Call<net::Empty>(1, rep::kCommit, net::Empty{}, txn).ok());
  EXPECT_TRUE(
      nodes_[0]->storage().Get(storage::RepKey::User("k")).has_value());

  // Node 2 recovers: txn is in doubt; coordinator resolves to commit.
  const auto outcome = nodes_[1]->Recover();
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->in_doubt.contains(txn));
  ASSERT_TRUE(nodes_[1]->ResolveInDoubt(txn, /*commit=*/true).ok());
  EXPECT_TRUE(
      nodes_[1]->storage().Get(storage::RepKey::User("k")).has_value());
}

TEST(TxnIdTest, EncodesCoordinatorAndSequence) {
  const TxnId txn = MakeTxnId(7, 42);
  EXPECT_EQ(CoordinatorOf(txn), 7u);
  EXPECT_EQ(SequenceOf(txn), 42u);

  TxnIdFactory factory(9);
  const TxnId a = factory.Next();
  const TxnId b = factory.Next();
  EXPECT_NE(a, b);
  EXPECT_EQ(CoordinatorOf(a), 9u);
  EXPECT_EQ(SequenceOf(a) + 1, SequenceOf(b));
}

}  // namespace
}  // namespace repdir::txn
