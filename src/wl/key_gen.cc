#include "wl/key_gen.h"

#include <cmath>

namespace repdir::wl {

namespace {

double Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianKeys::ZipfianKeys(std::uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfianKeys::NextRank(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double raw = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
  const auto rank = static_cast<std::uint64_t>(raw);
  return rank >= n_ ? n_ - 1 : rank;
}

UserKey ZipfianKeys::Next(Rng& rng) { return NumericKey(NextRank(rng)); }

}  // namespace repdir::wl
