// DirectoryClient: the uniform face every directory implementation shows to
// workload drivers and benchmarks - the replicated suite, the
// file-serialized baseline, or anything else with Lookup/Insert/Update/
// Delete semantics.
#pragma once

#include <optional>

#include "common/status.h"
#include "common/types.h"

namespace repdir::wl {

class DirectoryClient {
 public:
  virtual ~DirectoryClient() = default;

  virtual Result<std::optional<Value>> Lookup(const UserKey& key) = 0;
  virtual Status Insert(const UserKey& key, const Value& value) = 0;
  virtual Status Update(const UserKey& key, const Value& value) = 0;
  virtual Status Delete(const UserKey& key) = 0;
};

}  // namespace repdir::wl
