// Key generators for workloads.
//
// Keys are fixed-width zero-padded decimal strings so that lexicographic
// RepKey order equals numeric order, which keeps range/locality workloads
// intuitive (e.g. the Figure 16 experiment splits the key space in half).
#pragma once

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "common/types.h"

namespace repdir::wl {

/// Formats a numeric key as a fixed-width decimal string ("k0000000042").
inline UserKey NumericKey(std::uint64_t n, int width = 12) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%0*llu", width,
                static_cast<unsigned long long>(n));
  return buf;
}

class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  virtual UserKey Next(Rng& rng) = 0;
};

/// Uniform over [lo, hi) - the paper's §4 setting.
class UniformKeys final : public KeyGenerator {
 public:
  UniformKeys(std::uint64_t lo, std::uint64_t hi) : lo_(lo), hi_(hi) {}

  UserKey Next(Rng& rng) override {
    return NumericKey(rng.Range(lo_, hi_ - 1));
  }

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
};

/// Zipfian over [0, n) with parameter `theta` (hot-spot workloads; used by
/// the contention benchmarks). Implements the standard Gray et al.
/// approximation.
class ZipfianKeys final : public KeyGenerator {
 public:
  ZipfianKeys(std::uint64_t n, double theta = 0.99);

  UserKey Next(Rng& rng) override;

  /// The raw rank (0 = hottest) - exposed for distribution tests.
  std::uint64_t NextRank(Rng& rng);

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

}  // namespace repdir::wl
