#include "wl/workload.h"

namespace repdir::wl {

UserKey SteadyStateWorkload::FreshKey() {
  for (;;) {
    UserKey key = NumericKey(rng_.Range(0, options_.key_space - 1));
    if (!live_index_.contains(key)) return key;
  }
}

const UserKey& SteadyStateWorkload::RandomLiveKey() {
  return live_[rng_.Index(live_.size())];
}

Status SteadyStateWorkload::Fill() {
  while (live_.size() < options_.target_size) {
    REPDIR_RETURN_IF_ERROR(DoInsert());
  }
  return Status::Ok();
}

Status SteadyStateWorkload::DoInsert() {
  const UserKey key = FreshKey();
  const Value value = "v" + std::to_string(value_counter_++);
  const Status st = dir_->Insert(key, value);
  ++report_.inserts;
  if (!st.ok()) {
    ++report_.failures;
    return st.code() == StatusCode::kUnavailable ? Status::Ok() : st;
  }
  live_index_[key] = live_.size();
  live_.push_back(key);
  if (options_.verify_against_model) model_[key] = value;
  return Status::Ok();
}

Status SteadyStateWorkload::DoDelete() {
  if (live_.empty()) return DoInsert();
  const UserKey key = RandomLiveKey();
  const Status st = dir_->Delete(key);
  ++report_.deletes;
  if (!st.ok()) {
    ++report_.failures;
    return st.code() == StatusCode::kUnavailable ? Status::Ok() : st;
  }
  // O(1) removal from the live vector: swap with the back.
  const std::size_t idx = live_index_[key];
  live_index_[live_.back()] = idx;
  live_[idx] = live_.back();
  live_.pop_back();
  live_index_.erase(key);
  if (options_.verify_against_model) model_.erase(key);
  return Status::Ok();
}

Status SteadyStateWorkload::DoUpdate() {
  if (live_.empty()) return DoInsert();
  const UserKey key = RandomLiveKey();
  const Value value = "v" + std::to_string(value_counter_++);
  const Status st = dir_->Update(key, value);
  ++report_.updates;
  if (!st.ok()) {
    ++report_.failures;
    return st.code() == StatusCode::kUnavailable ? Status::Ok() : st;
  }
  if (options_.verify_against_model) model_[key] = value;
  return Status::Ok();
}

Status SteadyStateWorkload::DoLookup() {
  // Mostly hit lookups, occasionally a miss probe.
  const bool probe_miss = live_.empty() || rng_.Chance(0.1);
  const UserKey key = probe_miss ? FreshKey() : RandomLiveKey();
  const auto result = dir_->Lookup(key);
  ++report_.lookups;
  if (!result.ok()) {
    ++report_.failures;
    return result.status().code() == StatusCode::kUnavailable
               ? Status::Ok()
               : result.status();
  }
  if (options_.verify_against_model) {
    const auto it = model_.find(key);
    const bool model_found = it != model_.end();
    const bool dir_found = result->has_value();
    if (model_found != dir_found ||
        (model_found && it->second != **result)) {
      ++report_.mismatches;
      return Status::Internal("lookup mismatch for key " + key);
    }
  }
  return Status::Ok();
}

Status SteadyStateWorkload::RunOps(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const double roll = rng_.NextDouble();
    Status st;
    if (roll < options_.lookup_fraction) {
      st = DoLookup();
    } else if (roll < options_.lookup_fraction + options_.update_fraction) {
      st = DoUpdate();
    } else if (live_.size() <= options_.target_size) {
      st = DoInsert();
    } else {
      st = DoDelete();
    }
    REPDIR_RETURN_IF_ERROR(st);
  }
  return Status::Ok();
}

}  // namespace repdir::wl
