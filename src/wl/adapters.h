// DirectoryClient adapters for the concrete directory implementations.
#pragma once

#include "baseline/file_directory.h"
#include "baseline/primary_copy.h"
#include "rep/dir_suite.h"
#include "wl/directory_client.h"

namespace repdir::wl {

class SuiteClient final : public DirectoryClient {
 public:
  explicit SuiteClient(rep::DirectorySuite& suite) : suite_(&suite) {}

  Result<std::optional<Value>> Lookup(const UserKey& key) override {
    REPDIR_ASSIGN_OR_RETURN(const auto r, suite_->Lookup(key));
    if (!r.found) return std::optional<Value>{};
    return std::optional<Value>{r.value};
  }
  Status Insert(const UserKey& key, const Value& value) override {
    return suite_->Insert(key, value);
  }
  Status Update(const UserKey& key, const Value& value) override {
    return suite_->Update(key, value);
  }
  Status Delete(const UserKey& key) override { return suite_->Delete(key); }

 private:
  rep::DirectorySuite* suite_;
};

class FileDirectoryClient final : public DirectoryClient {
 public:
  explicit FileDirectoryClient(baseline::FileDirectory& dir) : dir_(&dir) {}

  Result<std::optional<Value>> Lookup(const UserKey& key) override {
    REPDIR_ASSIGN_OR_RETURN(const auto r, dir_->Lookup(key));
    if (!r.found) return std::optional<Value>{};
    return std::optional<Value>{r.value};
  }
  Status Insert(const UserKey& key, const Value& value) override {
    return dir_->Insert(key, value);
  }
  Status Update(const UserKey& key, const Value& value) override {
    return dir_->Update(key, value);
  }
  Status Delete(const UserKey& key) override { return dir_->Delete(key); }

 private:
  baseline::FileDirectory* dir_;
};

}  // namespace repdir::wl
