// SteadyStateWorkload: the §4 simulation protocol.
//
// "Figure 14 shows the average results of simulations using directory sizes
//  of approximately one hundred entries ... The duration of each simulation
//  was ten thousand operations, and the members of quorums and the keys to
//  insert, update, or delete were selected randomly from a uniform
//  distribution."
//
// The driver fills the directory to the target size and then issues a
// random operation mix while holding the size in a tight band around the
// target: half the operations are churn (insert when at/below target,
// delete when above - so inserts and deletes alternate at steady state),
// the rest split between updates and lookups of uniformly-chosen existing
// keys. Keys are drawn uniformly from a large space. An optional local
// model cross-checks every lookup (used by correctness tests; benches turn
// it off for speed, though it is cheap).
#pragma once

#include <map>
#include <vector>

#include "common/rng.h"
#include "wl/directory_client.h"
#include "wl/key_gen.h"

namespace repdir::wl {

struct WorkloadOptions {
  std::size_t target_size = 100;
  std::uint64_t operations = 10'000;
  double update_fraction = 0.25;  ///< Of all operations.
  double lookup_fraction = 0.25;  ///< Of all operations. Rest is churn.
  std::uint64_t seed = 1;
  std::uint64_t key_space = 1'000'000'000ull;
  bool verify_against_model = false;
};

struct WorkloadReport {
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t updates = 0;
  std::uint64_t lookups = 0;
  std::uint64_t failures = 0;      ///< Ops that returned an error.
  std::uint64_t mismatches = 0;    ///< Lookups disagreeing with the model.
};

class SteadyStateWorkload {
 public:
  SteadyStateWorkload(DirectoryClient& dir, WorkloadOptions options)
      : dir_(&dir), options_(options), rng_(options.seed) {}

  /// Inserts distinct uniform keys until the directory holds target_size
  /// entries.
  Status Fill();

  /// Issues options_.operations operations. Returns the first hard error
  /// (model mismatch or unexpected status); quorum unavailability counts as
  /// a failure but does not stop the run.
  Status Run() { return RunOps(options_.operations); }

  /// Issues `n` operations (chunked runs: callers may change deployment
  /// conditions - e.g. node availability - between chunks).
  Status RunOps(std::uint64_t n);

  const WorkloadReport& report() const { return report_; }

  /// Keys currently live according to the driver's model.
  std::size_t live_size() const { return live_.size(); }

  /// The authoritative model (populated when verify_against_model is on).
  const std::map<UserKey, Value>& model() const { return model_; }

  /// Currently live keys (always maintained).
  const std::vector<UserKey>& live_keys() const { return live_; }

 private:
  UserKey FreshKey();
  const UserKey& RandomLiveKey();
  Status DoInsert();
  Status DoDelete();
  Status DoUpdate();
  Status DoLookup();

  DirectoryClient* dir_;
  WorkloadOptions options_;
  Rng rng_;
  WorkloadReport report_;

  // The driver's model of the directory: keys in a vector for O(1) uniform
  // choice, plus the authoritative map when verification is on.
  std::vector<UserKey> live_;
  std::map<UserKey, std::size_t> live_index_;
  std::map<UserKey, Value> model_;
  std::uint64_t value_counter_ = 0;
};

}  // namespace repdir::wl
