// Cluster-control RPCs of the multi-process chaos driver.
//
// The chaos_node binary registers these alongside the regular directory
// service so the chaos_cluster driver can inspect a live node's durable
// state, learn its in-doubt transactions after a SIGKILL restart, and feed
// it coordinator decisions. Method ids live above the data (1..) and txn
// control (100..) ranges.
#pragma once

#include <vector>

#include "common/serde.h"
#include "net/message.h"
#include "storage/stored_entry.h"

namespace repdir::chaos {

enum ClusterMethod : net::MethodId {
  kDumpState = 200,   ///< Empty -> DumpStateReply (full storage scan).
  kListInDoubt = 201, ///< Empty -> InDoubtReply (from the last recovery).
  kResolve = 202,     ///< ResolveRequest -> Empty (ResolveInDoubt).
};

struct DumpStateReply {
  std::vector<storage::StoredEntry> scan;

  void Encode(ByteWriter& w) const {
    w.PutVarint(scan.size());
    for (const auto& e : scan) e.Encode(w);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    scan.clear();
    scan.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      storage::StoredEntry e;
      REPDIR_RETURN_IF_ERROR(e.Decode(r));
      scan.push_back(std::move(e));
    }
    return Status::Ok();
  }
};

struct InDoubtReply {
  std::vector<TxnId> txns;

  void Encode(ByteWriter& w) const {
    w.PutVarint(txns.size());
    for (const TxnId t : txns) w.PutU64(t);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    txns.clear();
    txns.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      TxnId t = 0;
      REPDIR_RETURN_IF_ERROR(r.GetU64(t));
      txns.push_back(t);
    }
    return Status::Ok();
  }
};

struct ResolveRequest {
  TxnId txn = 0;
  bool commit = false;

  void Encode(ByteWriter& w) const {
    w.PutU64(txn);
    w.PutU8(commit ? 1 : 0);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetU64(txn));
    std::uint8_t c = 0;
    REPDIR_RETURN_IF_ERROR(r.GetU8(c));
    commit = c != 0;
    return Status::Ok();
  }
};

}  // namespace repdir::chaos
