#include "chaos/campaign.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "chaos/deployment.h"
#include "common/rng.h"
#include "rep/reconciler.h"
#include "rep/shard_map.h"
#include "rep/shard_manager.h"
#include "rep/sharded_dir.h"

namespace repdir::chaos {

namespace {

constexpr NodeId kClient = Deployment::kClientNode;

/// The node id the one-shot bootstrap shard manager identifies as.
constexpr NodeId kManager = 90;

/// Reconciler client node ids start here (one per replica set, so their
/// transaction ids never collide with each other or with the suites).
constexpr NodeId kReconcilerBase = 101;

/// FNV-1a, so a scenario name perturbs the seed identically across runs
/// (std::hash makes no such promise).
std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

UserKey KeyName(std::uint32_t index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "k%03u", index);
  return buf;
}

Value ValueName(std::uint64_t seed, std::uint32_t salt) {
  return "v" + std::to_string(seed % 997) + "." + std::to_string(salt);
}

bool IsMember(const rep::QuorumConfig& config, NodeId node) {
  for (const auto& r : config.replicas()) {
    if (r.node == node) return true;
  }
  return false;
}

/// The vote threshold below which no read or write quorum can form.
Votes QuorumFloor(const rep::QuorumConfig& config) {
  return std::max(config.read_quorum(), config.write_quorum());
}

/// Node-id stride between shards' replica sets: shard s's replicas live on
/// nodes s*stride+1 .. (a round number keeps ids readable in schedules).
std::uint32_t ShardStride(const ScenarioSpec& spec) {
  const std::size_t n = spec.topology.votes.size();
  return static_cast<std::uint32_t>(((n / 10) + 1) * 10);
}

/// One quorum config per shard, every shard the same topology on its own
/// node ids. shards <= 1 yields exactly {topology.Config()}.
std::vector<rep::QuorumConfig> ShardConfigs(const ScenarioSpec& spec) {
  const std::uint32_t stride = ShardStride(spec);
  const std::uint32_t shards = std::max<std::uint32_t>(1, spec.shards);
  std::vector<rep::QuorumConfig> configs;
  configs.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::vector<rep::Replica> replicas;
    replicas.reserve(spec.topology.votes.size());
    for (std::size_t i = 0; i < spec.topology.votes.size(); ++i) {
      replicas.push_back({static_cast<NodeId>(s * stride + i + 1),
                          spec.topology.votes[i]});
    }
    configs.emplace_back(std::move(replicas), spec.topology.read_quorum,
                         spec.topology.write_quorum);
  }
  return configs;
}

/// The scenario's shard map: the key space cut evenly by key index, shard
/// s+1 starting at KeyName(s*key_space/shards).
rep::ShardMap ShardedScenarioMap(const ScenarioSpec& spec,
                                 const std::vector<rep::QuorumConfig>& configs) {
  rep::ShardMap map;
  map.version = 1;
  for (std::size_t s = 0; s < configs.size(); ++s) {
    rep::ShardEntry entry;
    entry.shard = static_cast<rep::ShardId>(s + 1);
    entry.low = s == 0
                    ? UserKey()
                    : KeyName(static_cast<std::uint32_t>(
                          s * spec.key_space / configs.size()));
    entry.config = configs[s];
    map.entries.push_back(std::move(entry));
  }
  return map;
}

}  // namespace

rep::QuorumConfig TopologySpec::Config() const {
  std::vector<rep::Replica> replicas;
  replicas.reserve(votes.size());
  for (std::size_t i = 0; i < votes.size(); ++i) {
    replicas.push_back({static_cast<NodeId>(i + 1), votes[i]});
  }
  return rep::QuorumConfig(std::move(replicas), read_quorum, write_quorum);
}

Schedule GenerateSchedule(const ScenarioSpec& spec, std::uint64_t seed) {
  Rng rng(seed ^ HashName(spec.name));
  const std::vector<rep::QuorumConfig> configs = ShardConfigs(spec);

  // Generator's view of deployment state, to keep schedules interesting:
  // never crash below quorum viability (per shard - every shard is an
  // independent suite), recover/heal only what is actually down/cut. The
  // executor re-checks and skips no-ops anyway (shrinking deletes arbitrary
  // events, so replay must tolerate any subsequence).
  std::set<NodeId> down;
  std::set<std::pair<NodeId, NodeId>> cuts;
  std::map<NodeId, std::size_t> shard_of;
  std::vector<Votes> up_votes;
  std::vector<NodeId> reps;
  for (std::size_t s = 0; s < configs.size(); ++s) {
    up_votes.push_back(configs[s].TotalVotes());
    for (const NodeId n : configs[s].Nodes()) {
      shard_of[n] = s;
      reps.push_back(n);
    }
  }
  const Votes floor = QuorumFloor(configs[0]);

  Schedule schedule;
  schedule.reserve(spec.steps);

  for (std::uint32_t step = 0; step < spec.steps; ++step) {
    ChaosEvent e;
    double roll = rng.NextDouble();
    const auto take = [&roll](double p) {
      if (roll < p) return true;
      roll -= p;
      return false;
    };

    if (take(spec.p_crash)) {
      std::vector<NodeId> candidates;
      for (const NodeId r : reps) {
        const std::size_t s = shard_of[r];
        if (!down.contains(r) &&
            up_votes[s] - configs[s].VotesOf(r) >= floor) {
          candidates.push_back(r);
        }
      }
      if (!candidates.empty()) {
        e.kind = ChaosEvent::Kind::kCrash;
        e.a = rng.Pick(candidates);
        if (rng.Chance(spec.torn_fraction)) {
          e.torn = true;
          e.torn_keep = static_cast<std::uint32_t>(rng.Below(48));
        }
        down.insert(e.a);
        up_votes[shard_of[e.a]] -= configs[shard_of[e.a]].VotesOf(e.a);
        schedule.push_back(e);
        continue;
      }
    } else if (take(spec.p_recover)) {
      if (!down.empty()) {
        std::vector<NodeId> candidates(down.begin(), down.end());
        e.kind = ChaosEvent::Kind::kRecover;
        e.a = rng.Pick(candidates);
        down.erase(e.a);
        up_votes[shard_of[e.a]] += configs[shard_of[e.a]].VotesOf(e.a);
        schedule.push_back(e);
        continue;
      }
    } else if (take(spec.p_partition)) {
      e.kind = ChaosEvent::Kind::kPartition;
      e.a = kClient;
      e.b = rng.Pick(reps);
      cuts.insert({e.a, e.b});
      cuts.insert({e.b, e.a});
      schedule.push_back(e);
      continue;
    } else if (take(spec.p_one_way)) {
      e.kind = ChaosEvent::Kind::kPartitionOneWay;
      const NodeId r = rng.Pick(reps);
      // Both orientations matter: client->rep kills the request, rep->
      // client lets the server execute but loses the reply.
      if (rng.Chance(0.5)) {
        e.a = kClient;
        e.b = r;
      } else {
        e.a = r;
        e.b = kClient;
      }
      cuts.insert({e.a, e.b});
      schedule.push_back(e);
      continue;
    } else if (take(spec.p_heal)) {
      if (!cuts.empty()) {
        std::vector<std::pair<NodeId, NodeId>> candidates(cuts.begin(),
                                                          cuts.end());
        const auto cut = rng.Pick(candidates);
        e.kind = ChaosEvent::Kind::kHeal;
        e.a = cut.first;
        e.b = cut.second;
        cuts.erase({e.a, e.b});
        cuts.erase({e.b, e.a});
        schedule.push_back(e);
        continue;
      }
    } else if (take(spec.p_heal_all)) {
      if (!cuts.empty()) {
        e.kind = ChaosEvent::Kind::kHealAll;
        cuts.clear();
        schedule.push_back(e);
        continue;
      }
    } else if (take(spec.p_set_link)) {
      e.kind = ChaosEvent::Kind::kSetLink;
      const NodeId r = rng.Pick(reps);
      if (rng.Chance(0.5)) {
        e.a = kClient;
        e.b = r;
      } else {
        e.a = r;
        e.b = kClient;
      }
      e.link.drop_probability = static_cast<double>(rng.Below(4)) * 0.1;
      e.link.duplicate_probability = static_cast<double>(rng.Below(3)) * 0.1;
      schedule.push_back(e);
      continue;
    } else if (take(spec.p_checkpoint)) {
      std::vector<NodeId> candidates;
      for (const NodeId r : reps) {
        if (!down.contains(r)) candidates.push_back(r);
      }
      if (!candidates.empty()) {
        e.kind = ChaosEvent::Kind::kCheckpoint;
        e.a = rng.Pick(candidates);
        schedule.push_back(e);
        continue;
      }
    }

    // Default: a directory operation.
    e.kind = ChaosEvent::Kind::kOp;
    const double op_roll = rng.NextDouble();
    if (op_roll < 0.30) {
      e.op = ChaosEvent::OpKind::kInsert;
    } else if (op_roll < 0.50) {
      e.op = ChaosEvent::OpKind::kUpdate;
    } else if (op_roll < 0.65) {
      e.op = ChaosEvent::OpKind::kDelete;
    } else if (op_roll < 0.90) {
      e.op = ChaosEvent::OpKind::kLookup;
    } else {
      e.op = ChaosEvent::OpKind::kNextKey;
    }
    e.key_index = static_cast<std::uint32_t>(rng.Below(spec.key_space));
    e.value_salt = step;
    schedule.push_back(e);
  }
  return schedule;
}

namespace {

/// Mutable state of one schedule replay.
struct Run {
  Run(const ScenarioSpec& spec, std::uint64_t seed)
      : config(spec.topology.Config()),
        deployment(config, WalNodeOptions()),
        metrics(spec.adaptive
                    ? std::make_unique<MetricsRegistry>(&deployment.clock())
                    : nullptr),
        suite(MakeSuite(deployment, spec, metrics.get(), seed)),
        seed(seed) {
    if (spec.slow_node != 0) {
      // Persistent straggler: both legs of the client<->node link carry the
      // extra virtual latency (the reconciler client included).
      sim::LinkSpec slow;
      slow.base_latency = spec.slow_latency_us;
      for (const NodeId client : {kClient, kReconcilerBase}) {
        deployment.network().SetLink(client, spec.slow_node, slow);
        deployment.network().SetLink(spec.slow_node, client, slow);
      }
    }
    if (spec.reconcile_every > 0) {
      rep::Reconciler::Options options;
      options.decision_hook = [this](TxnId txn, bool committed) {
        decisions[txn] = committed;
      };
      reconciler = std::make_unique<rep::Reconciler>(
          deployment.transport(), kReconcilerBase, config,
          std::move(options));
    }
  }

  static rep::DirRepNodeOptions WalNodeOptions() {
    rep::DirRepNodeOptions options = Deployment::DefaultNodeOptions();
    options.enable_wal = true;
    return options;
  }

  static std::unique_ptr<rep::DirectorySuite> MakeSuite(
      Deployment& deployment, const ScenarioSpec& spec,
      MetricsRegistry* metrics, std::uint64_t seed) {
    rep::SuiteOptions options;
    options.policy_seed = seed;
    options.enable_version_cache = spec.enable_cache;
    options.enable_adaptive_policy = spec.adaptive;
    options.enable_hedged_reads = spec.adaptive;
    options.metrics = metrics;
    return deployment.NewSuiteWithOptions(kClient, std::move(options));
  }

  rep::QuorumConfig config;
  Deployment deployment;
  /// Private registry on the deployment's virtual clock (adaptive runs
  /// only): scoreboard latency measurements replay deterministically.
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<rep::DirectorySuite> suite;
  /// Anti-entropy driver (spec.reconcile_every > 0 only); its repair
  /// transactions report into `decisions` like every other transaction.
  std::unique_ptr<rep::Reconciler> reconciler;
  std::uint64_t seed;

  /// Coordinator-side outcome of every finished transaction, by id. The
  /// executor is the coordinator's memory: recovery resolves in-doubt
  /// participants from this map (presumed abort for unknown ids).
  std::map<TxnId, bool> decisions;
  std::set<NodeId> down;
  RunOutcome out;

  bool Decided(TxnId txn) const {
    const auto it = decisions.find(txn);
    return it != decisions.end() && it->second;
  }
};

void Fail(RunOutcome& out, std::size_t step, const ChaosEvent& e,
          const std::string& msg) {
  out.verdict = Status::Corruption("event " + std::to_string(step) +
                                   " [" + e.ToString() + "]: " + msg);
}

/// Model cross-check + apply for one COMMITTED operation. Shared by the
/// single-suite and sharded executors (the model does not care which client
/// ran the op, only that it committed).
void ApplyCommittedOp(RunOutcome& out, std::size_t step, const ChaosEvent& e,
                      const UserKey& key, const Value& value,
                      const rep::DirectorySuite::LookupResult& looked,
                      const rep::DirectorySuite::NextKeyResult& next) {
  Model& model = out.committed;
  ++out.ops_committed;
  switch (e.op) {
    case ChaosEvent::OpKind::kInsert:
      if (model.contains(key)) {
        Fail(out, step, e,
             "insert committed but the model already holds \"" + key +
                 "\" - a read quorum missed the current entry");
        return;
      }
      model[key] = value;
      break;
    case ChaosEvent::OpKind::kUpdate:
      if (!model.contains(key)) {
        Fail(out, step, e,
             "update committed but \"" + key + "\" is deleted - a read "
             "quorum saw a ghost");
        return;
      }
      model[key] = value;
      break;
    case ChaosEvent::OpKind::kDelete:
      if (!model.contains(key)) {
        Fail(out, step, e,
             "delete committed but \"" + key + "\" is deleted - a read "
             "quorum saw a ghost");
        return;
      }
      model.erase(key);
      break;
    case ChaosEvent::OpKind::kLookup: {
      const auto it = model.find(key);
      if (looked.found != (it != model.end()) ||
          (looked.found && looked.value != it->second)) {
        Fail(out, step, e,
             "lookup of \"" + key + "\" returned " +
                 (looked.found ? "'" + looked.value + "'"
                               : std::string("absent")) +
                 " but the model has " +
                 (it != model.end() ? "'" + it->second + "'"
                                    : std::string("absent")));
        return;
      }
      break;
    }
    case ChaosEvent::OpKind::kNextKey: {
      const auto it = model.upper_bound(key);
      const bool want_found = it != model.end();
      if (next.found != want_found ||
          (next.found && (next.key != it->first ||
                          next.value != it->second))) {
        Fail(out, step, e,
             "nextkey after \"" + key + "\" returned " +
                 (next.found ? "\"" + next.key + "\""
                             : std::string("none")) +
                 " but the model expects " +
                 (want_found ? "\"" + it->first + "\""
                             : std::string("none")));
        return;
      }
      break;
    }
  }
}

/// Classification of one FAILED operation (the model is untouched). Reads
/// never observe uncommitted state (strict 2PL holds locks until the
/// decision), so the "correct rejection" codes must agree with the model
/// exactly.
void ClassifyFailedOp(RunOutcome& out, std::size_t step, const ChaosEvent& e,
                      const UserKey& key, const Status& st) {
  Model& model = out.committed;
  switch (st.code()) {
    case StatusCode::kAlreadyExists:
      if (e.op != ChaosEvent::OpKind::kInsert || model.contains(key)) {
        ++out.ops_rejected;
        return;
      }
      Fail(out, step, e,
           "insert rejected as existing but the model says \"" + key +
               "\" is absent - a stale entry won a read quorum");
      return;
    case StatusCode::kNotFound:
      if (model.contains(key)) {
        Fail(out, step, e,
             "operation says \"" + key + "\" is absent but the model holds "
             "it - a stale gap won a read quorum");
        return;
      }
      ++out.ops_rejected;
      return;
    case StatusCode::kUnavailable:
      ++out.ops_unavailable;
      return;
    case StatusCode::kAborted:
      ++out.ops_aborted;
      return;
    default:
      Fail(out, step, e, "unexpected operation status: " + st.ToString());
      return;
  }
}

void ExecuteOp(Run& run, std::size_t step, const ChaosEvent& e) {
  const UserKey key = KeyName(e.key_index);
  const Value value = ValueName(run.seed, e.value_salt);
  ++run.out.ops_attempted;

  rep::SuiteTxn txn = run.suite->Begin();
  Status st = Status::Ok();
  rep::DirectorySuite::LookupResult looked;
  rep::DirectorySuite::NextKeyResult next;
  switch (e.op) {
    case ChaosEvent::OpKind::kInsert: st = txn.Insert(key, value); break;
    case ChaosEvent::OpKind::kUpdate: st = txn.Update(key, value); break;
    case ChaosEvent::OpKind::kDelete: st = txn.Delete(key); break;
    case ChaosEvent::OpKind::kLookup: {
      auto r = txn.Lookup(key);
      st = r.status();
      if (r.ok()) looked = *r;
      break;
    }
    case ChaosEvent::OpKind::kNextKey: {
      auto r = txn.NextKey(key);
      st = r.status();
      if (r.ok()) next = *r;
      break;
    }
  }

  if (st.ok()) {
    const Status commit = txn.Commit();
    run.decisions[txn.id()] = commit.ok();
    if (!commit.ok()) {
      if (commit.code() != StatusCode::kAborted &&
          commit.code() != StatusCode::kUnavailable) {
        Fail(run.out, step, e,
             "unexpected commit status: " + commit.ToString());
        return;
      }
      ++run.out.ops_aborted;
      return;
    }
    ApplyCommittedOp(run.out, step, e, key, value, looked, next);
    return;
  }

  run.decisions[txn.id()] = false;
  txn.Abort();
  ClassifyFailedOp(run.out, step, e, key, st);
}

bool Batchable(const ChaosEvent& e) {
  return e.kind == ChaosEvent::Kind::kOp &&
         (e.op == ChaosEvent::OpKind::kInsert ||
          e.op == ChaosEvent::OpKind::kUpdate ||
          e.op == ChaosEvent::OpKind::kLookup);
}

/// Runs a group of consecutive batchable ops as ONE transaction through
/// SuiteTxn::ExecuteBatch, then advances the model op by op in submission
/// order (batch semantics: later ops observe earlier effects). The model
/// cross-checks are the same as ExecuteOp's; a transaction-level failure
/// (quorum loss, abort) must leave the model untouched for every op.
std::vector<rep::DirectorySuite::BatchOp> BuildBatchOps(
    const std::vector<std::pair<std::size_t, ChaosEvent>>& group,
    std::uint64_t seed) {
  using BatchOp = rep::DirectorySuite::BatchOp;
  std::vector<BatchOp> ops;
  ops.reserve(group.size());
  for (const auto& [step, e] : group) {
    BatchOp op;
    op.key = KeyName(e.key_index);
    switch (e.op) {
      case ChaosEvent::OpKind::kInsert:
        op.kind = BatchOp::Kind::kInsert;
        op.value = ValueName(seed, e.value_salt);
        break;
      case ChaosEvent::OpKind::kUpdate:
        op.kind = BatchOp::Kind::kUpdate;
        op.value = ValueName(seed, e.value_salt);
        break;
      default:
        op.kind = BatchOp::Kind::kLookup;
        break;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Classification of one FAILED batch transaction (all-or-nothing, so every
/// op in the group gets the transaction's fate).
void ClassifyBatchFailure(
    RunOutcome& out,
    const std::vector<std::pair<std::size_t, ChaosEvent>>& group,
    const Status& st) {
  switch (st.code()) {
    case StatusCode::kUnavailable:
      out.ops_unavailable += group.size();
      break;
    case StatusCode::kAborted:
      out.ops_aborted += group.size();
      break;
    default:
      Fail(out, group.front().first, group.front().second,
           "unexpected batch status: " + st.ToString());
      break;
  }
}

/// Model cross-check + apply for one COMMITTED batch, op by op in
/// submission order (batch semantics: later ops observe earlier effects).
void ApplyBatchResults(
    RunOutcome& out, std::uint64_t seed,
    const std::vector<std::pair<std::size_t, ChaosEvent>>& group,
    const std::vector<rep::DirectorySuite::BatchOpResult>& results) {
  Model& model = out.committed;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const auto& [step, e] = group[i];
    const UserKey key = KeyName(e.key_index);
    const Value value = ValueName(seed, e.value_salt);
    const auto& r = results[i];
    switch (e.op) {
      case ChaosEvent::OpKind::kInsert:
        if (r.status.ok()) {
          if (model.contains(key)) {
            Fail(out, step, e,
                 "batched insert committed but the model already holds \"" +
                     key + "\" - a read quorum missed the current entry");
            return;
          }
          model[key] = value;
          ++out.ops_committed;
        } else if (r.status.code() == StatusCode::kAlreadyExists) {
          if (!model.contains(key)) {
            Fail(out, step, e,
                 "batched insert rejected as existing but the model says \"" +
                     key + "\" is absent - a stale entry won a read quorum");
            return;
          }
          ++out.ops_rejected;
        } else {
          Fail(out, step, e,
               "unexpected batched insert status: " + r.status.ToString());
          return;
        }
        break;
      case ChaosEvent::OpKind::kUpdate:
        if (r.status.ok()) {
          if (!model.contains(key)) {
            Fail(out, step, e,
                 "batched update committed but \"" + key +
                     "\" is deleted - a read quorum saw a ghost");
            return;
          }
          model[key] = value;
          ++out.ops_committed;
        } else if (r.status.code() == StatusCode::kNotFound) {
          if (model.contains(key)) {
            Fail(out, step, e,
                 "batched update says \"" + key +
                     "\" is absent but the model holds it - a stale gap won "
                     "a read quorum");
            return;
          }
          ++out.ops_rejected;
        } else {
          Fail(out, step, e,
               "unexpected batched update status: " + r.status.ToString());
          return;
        }
        break;
      default: {  // kLookup
        if (!r.status.ok()) {
          Fail(out, step, e,
               "unexpected batched lookup status: " + r.status.ToString());
          return;
        }
        const auto it = model.find(key);
        if (r.lookup.found != (it != model.end()) ||
            (r.lookup.found && r.lookup.value != it->second)) {
          Fail(out, step, e,
               "batched lookup of \"" + key + "\" returned " +
                   (r.lookup.found ? "'" + r.lookup.value + "'"
                                   : std::string("absent")) +
                   " but the model has " +
                   (it != model.end() ? "'" + it->second + "'"
                                      : std::string("absent")));
          return;
        }
        ++out.ops_committed;
        break;
      }
    }
  }
}

/// Runs a group of consecutive batchable ops as ONE transaction through
/// SuiteTxn::ExecuteBatch.
void ExecuteBatchGroup(Run& run,
                       std::vector<std::pair<std::size_t, ChaosEvent>>& group) {
  if (group.empty()) return;
  run.out.ops_attempted += group.size();
  const auto ops = BuildBatchOps(group, run.seed);

  rep::SuiteTxn txn = run.suite->Begin();
  const auto results = txn.ExecuteBatch(ops);
  if (!results.ok()) {
    run.decisions[txn.id()] = false;
    txn.Abort();
    ClassifyBatchFailure(run.out, group, results.status());
    group.clear();
    return;
  }

  const Status commit = txn.Commit();
  run.decisions[txn.id()] = commit.ok();
  if (!commit.ok()) {
    if (commit.code() != StatusCode::kAborted &&
        commit.code() != StatusCode::kUnavailable) {
      Fail(run.out, group.front().first, group.front().second,
           "unexpected batch commit status: " + commit.ToString());
      group.clear();
      return;
    }
    run.out.ops_aborted += group.size();
    group.clear();
    return;
  }

  ApplyBatchResults(run.out, run.seed, group, *results);
  group.clear();
}

/// Restarts one node: WAL replay plus in-doubt resolution against the
/// coordinator's decision map (presumed abort when unknown).
Status RecoverNodeImpl(rep::DirRepNode& n,
                       const std::map<TxnId, bool>& decisions) {
  REPDIR_ASSIGN_OR_RETURN(const auto outcome, n.Recover());
  for (const TxnId txn : outcome.in_doubt) {
    const auto it = decisions.find(txn);
    const bool committed = it != decisions.end() && it->second;
    REPDIR_RETURN_IF_ERROR(n.ResolveInDoubt(txn, committed));
  }
  return Status::Ok();
}

Status RecoverNode(Run& run, NodeId node) {
  return RecoverNodeImpl(run.deployment.node(node), run.decisions);
}

// --- The sharded executor (spec.shards > 1) ---------------------------------
//
// Same schedule, same model, same cross-checks - but the deployment is
// `shards` disjoint replica sets behind one ShardedDirectory router, so
// every op additionally exercises routing, epoch fencing, and (for batches
// straddling a fence) cross-shard 2PC under the schedule's faults.

/// Mutable state of one sharded schedule replay. Mirrors `Run`, but owns
/// the transport directly: Deployment assumes a single quorum config.
struct ShardedRun {
  ShardedRun(const ScenarioSpec& spec, std::uint64_t seed)
      : configs(ShardConfigs(spec)),
        network(99),
        transport(nullptr, &network),
        seed(seed) {
    for (const auto& config : configs) {
      for (const auto& replica : config.replicas()) {
        auto node = std::make_unique<rep::DirRepNode>(replica.node,
                                                      Run::WalNodeOptions());
        transport.RegisterNode(replica.node, node->server());
        nodes.emplace(replica.node, std::move(node));
      }
    }
    if (Status st = authority.Install(ShardedScenarioMap(spec, configs));
        !st.ok()) {
      out.verdict = Status::Corruption("shard map install failed: " +
                                       st.ToString());
      return;
    }
    // Stamp every representative with its range and the map epoch (the
    // fence that makes kWrongShard rerouting testable at all).
    rep::ShardManager boot(transport, kManager, authority);
    if (Status st = boot.ReconfigureAll(); !st.ok()) {
      out.verdict = Status::Corruption("shard bootstrap failed: " +
                                       st.ToString());
      return;
    }
    rep::ShardedDirectory::Options options;
    options.policy_seed = seed;
    options.enable_version_cache = spec.enable_cache;
    options.decision_hook = [this](TxnId txn, bool committed) {
      decisions[txn] = committed;
    };
    router = std::make_unique<rep::ShardedDirectory>(transport, kClient,
                                                     authority, options);
    if (spec.split_during_run) {
      // The midpoint split's target: one more replica set of the same
      // topology on its own node ids, booted now so the schedule replays
      // deterministically. The fence cuts shard 1's range in half.
      const std::uint32_t stride = ShardStride(spec);
      std::vector<rep::Replica> replicas;
      replicas.reserve(spec.topology.votes.size());
      for (std::size_t i = 0; i < spec.topology.votes.size(); ++i) {
        replicas.push_back(
            {static_cast<NodeId>(configs.size() * stride + i + 1),
             spec.topology.votes[i]});
      }
      split_target_config =
          rep::QuorumConfig(std::move(replicas), spec.topology.read_quorum,
                            spec.topology.write_quorum);
      split_target_shard = static_cast<rep::ShardId>(configs.size() + 1);
      split_fence = KeyName(static_cast<std::uint32_t>(
          spec.key_space / (2 * configs.size())));
      for (const auto& replica : split_target_config.replicas()) {
        auto node = std::make_unique<rep::DirRepNode>(replica.node,
                                                      Run::WalNodeOptions());
        transport.RegisterNode(replica.node, node->server());
        nodes.emplace(replica.node, std::move(node));
      }
    }
    if (spec.reconcile_every > 0) {
      for (std::size_t idx = 0; idx < configs.size(); ++idx) {
        rep::Reconciler::Options roptions;
        roptions.decision_hook = [this](TxnId txn, bool committed) {
          decisions[txn] = committed;
        };
        reconcilers.push_back(std::make_unique<rep::Reconciler>(
            transport, static_cast<NodeId>(kReconcilerBase + idx),
            configs[idx], std::move(roptions)));
      }
    }
  }

  rep::DirRepNode& node(NodeId id) { return *nodes.at(id); }

  std::vector<rep::QuorumConfig> configs;
  sim::NetworkModel network;
  net::InProcTransport transport;
  std::map<NodeId, std::unique_ptr<rep::DirRepNode>> nodes;
  rep::ShardMapAuthority authority;
  std::unique_ptr<rep::ShardedDirectory> router;
  /// One anti-entropy driver per replica set (spec.reconcile_every > 0);
  /// a mid-run split appends one for the new shard after it completes.
  std::vector<std::unique_ptr<rep::Reconciler>> reconcilers;
  /// Midpoint-split parameters (spec.split_during_run only).
  rep::QuorumConfig split_target_config;
  rep::ShardId split_target_shard = 0;
  UserKey split_fence;
  std::uint64_t seed;

  /// Filled by the router's decision hook - it is the coordinator for
  /// every transaction, single-shard and cross-shard alike.
  std::map<TxnId, bool> decisions;
  std::set<NodeId> down;
  RunOutcome out;
};

void ExecuteRouterOp(ShardedRun& run, std::size_t step, const ChaosEvent& e) {
  const UserKey key = KeyName(e.key_index);
  const Value value = ValueName(run.seed, e.value_salt);
  ++run.out.ops_attempted;

  Status st = Status::Ok();
  rep::DirectorySuite::LookupResult looked;
  rep::DirectorySuite::NextKeyResult next;
  switch (e.op) {
    case ChaosEvent::OpKind::kInsert:
      st = run.router->Insert(key, value);
      break;
    case ChaosEvent::OpKind::kUpdate:
      st = run.router->Update(key, value);
      break;
    case ChaosEvent::OpKind::kDelete:
      st = run.router->Delete(key);
      break;
    case ChaosEvent::OpKind::kLookup: {
      auto r = run.router->Lookup(key);
      st = r.status();
      if (r.ok()) looked = *r;
      break;
    }
    case ChaosEvent::OpKind::kNextKey: {
      auto r = run.router->NextKey(key);
      st = r.status();
      if (r.ok()) next = *r;
      break;
    }
  }

  if (st.ok()) {
    ApplyCommittedOp(run.out, step, e, key, value, looked, next);
    return;
  }
  ClassifyFailedOp(run.out, step, e, key, st);
}

/// One batch through the router: single-shard groups take the suite fast
/// path, fence-straddling groups run as one cross-shard 2PC.
void ExecuteRouterBatchGroup(
    ShardedRun& run, std::vector<std::pair<std::size_t, ChaosEvent>>& group) {
  if (group.empty()) return;
  run.out.ops_attempted += group.size();
  const auto ops = BuildBatchOps(group, run.seed);
  const auto result = run.router->ExecuteBatch(ops);
  if (!result.status.ok()) {
    ClassifyBatchFailure(run.out, group, result.status);
    group.clear();
    return;
  }
  ApplyBatchResults(run.out, run.seed, group, result.ops);
  group.clear();
}

/// The model restricted to [low, high) - one shard's slice of the truth.
Model SliceModel(const Model& model, const UserKey& low, bool has_high,
                 const UserKey& high) {
  Model out;
  for (const auto& [key, value] : model) {
    if (key < low) continue;
    if (has_high && !(key < high)) continue;
    out[key] = value;
  }
  return out;
}

/// The schedule-midpoint split (spec.split_during_run): pause an online
/// split of shard 1 right after its copy step - the moving range now lives
/// on BOTH replica sets while the map still routes it to the source - then
/// cut the source replica set with a partition, run anti-entropy over the
/// half-migrated deployment, heal, and let a successor manager resume the
/// flip and retire. The reconciler must neither re-spread the moving range
/// nor disturb what the resumed retire expects.
void MidRunSplit(ShardedRun& run, const ScenarioSpec& spec) {
  const auto fail = [&run](const std::string& msg) {
    run.out.verdict = Status::Corruption("mid-run split: " + msg);
  };

  // The manager's configure and copy waves need every replica of the
  // source and target reachable: stabilize first. The schedule's own
  // faults resume once the split is rolling again.
  run.network.HealAll();
  run.network.ResetLinks();
  for (const NodeId id : std::set<NodeId>(run.down)) {
    run.network.SetNodeUp(id, true);
    if (const Status st = RecoverNodeImpl(run.node(id), run.decisions);
        !st.ok()) {
      fail("pre-split recovery of node " + std::to_string(id) + " failed: " +
           st.ToString());
      return;
    }
    ++run.out.recoveries;
  }
  run.down.clear();

  rep::MemShardJournal journal;
  rep::ShardManager::Options crash;
  crash.journal = &journal;
  crash.fail_after_step = 4;  // copy done; flip and retire still pending
  rep::ShardManager paused(run.transport, kManager, run.authority, crash);
  const Status split = paused.Split(1, run.split_fence,
                                    run.split_target_shard,
                                    run.split_target_config);
  if (split.code() != StatusCode::kAborted) {
    fail("expected the injected manager crash, got: " + split.ToString());
    return;
  }

  // Partition straight through the source replica set while the migration
  // hangs, and reconcile everything that is reachable.
  const auto& source = run.configs.front().replicas();
  run.network.Partition(source[0].node, source[1].node);
  for (const auto& rec : run.reconcilers) (void)rec->RunOnce();

  // Heal, then crash + recover every node before the successor takes over:
  // repair transactions cut off by the partition may have left prepared
  // locks behind, and presumed-abort recovery is what clears them (exactly
  // as the final convergence barrier does). The successor's retire would
  // otherwise block on an abandoned range lock.
  run.network.HealAll();
  for (const auto& [id, node] : run.nodes) {
    node->Crash();
    if (const Status st = RecoverNodeImpl(*node, run.decisions); !st.ok()) {
      fail("post-partition recovery of node " + std::to_string(id) +
           " failed: " + st.ToString());
      return;
    }
  }
  rep::ShardManager::Options resume;
  resume.journal = &journal;
  if (const Status st =
          rep::ShardManager(run.transport, kManager, run.authority, resume)
              .Resume();
      !st.ok()) {
    fail("resume failed: " + st.ToString());
    return;
  }
  if (spec.reconcile_every > 0) {
    // The new shard's replica set joins the reconcile rotation.
    rep::Reconciler::Options roptions;
    roptions.decision_hook = [&run](TxnId txn, bool committed) {
      run.decisions[txn] = committed;
    };
    run.reconcilers.push_back(std::make_unique<rep::Reconciler>(
        run.transport,
        static_cast<NodeId>(kReconcilerBase + run.configs.size()),
        run.split_target_config, std::move(roptions)));
  }
}

RunOutcome RunShardedSchedule(const ScenarioSpec& spec,
                              const Schedule& schedule, std::uint64_t seed) {
  ShardedRun run(spec, seed);
  if (!run.out.verdict.ok()) return std::move(run.out);

  std::vector<std::pair<std::size_t, ChaosEvent>> group;
  const std::size_t batch = std::max<std::uint32_t>(1, spec.batch_size);
  bool split_done = false;

  for (std::size_t i = 0; i < schedule.size() && run.out.verdict.ok(); ++i) {
    const ChaosEvent& e = schedule[i];
    if (spec.split_during_run && !split_done && i >= schedule.size() / 2) {
      split_done = true;
      ExecuteRouterBatchGroup(run, group);
      if (!run.out.verdict.ok()) break;
      MidRunSplit(run, spec);
      if (!run.out.verdict.ok()) break;
    }
    if (spec.reconcile_every > 0 && i > 0 && i % spec.reconcile_every == 0) {
      ExecuteRouterBatchGroup(run, group);
      if (!run.out.verdict.ok()) break;
      for (const auto& rec : run.reconcilers) (void)rec->RunOnce();
    }
    if (batch > 1 && Batchable(e)) {
      group.emplace_back(i, e);
      if (group.size() >= batch) ExecuteRouterBatchGroup(run, group);
      continue;
    }
    ExecuteRouterBatchGroup(run, group);
    if (!run.out.verdict.ok()) break;
    switch (e.kind) {
      case ChaosEvent::Kind::kOp:
        ExecuteRouterOp(run, i, e);
        break;
      case ChaosEvent::Kind::kCrash: {
        if (!run.nodes.contains(e.a) || run.down.contains(e.a)) break;
        if (e.torn) {
          run.node(e.a).CrashTorn(e.torn_keep);
        } else {
          run.node(e.a).Crash();
        }
        run.network.SetNodeUp(e.a, false);
        run.down.insert(e.a);
        ++run.out.crashes;
        break;
      }
      case ChaosEvent::Kind::kRecover: {
        if (!run.nodes.contains(e.a) || !run.down.contains(e.a)) break;
        run.network.SetNodeUp(e.a, true);
        run.down.erase(e.a);
        if (const Status st = RecoverNodeImpl(run.node(e.a), run.decisions);
            !st.ok()) {
          Fail(run.out, i, e, "recovery failed: " + st.ToString());
        }
        ++run.out.recoveries;
        break;
      }
      case ChaosEvent::Kind::kPartition:
        run.network.Partition(e.a, e.b);
        break;
      case ChaosEvent::Kind::kPartitionOneWay:
        run.network.PartitionOneWay(e.a, e.b);
        break;
      case ChaosEvent::Kind::kHeal:
        run.network.Heal(e.a, e.b);
        break;
      case ChaosEvent::Kind::kHealAll:
        run.network.HealAll();
        break;
      case ChaosEvent::Kind::kSetLink:
        run.network.SetLink(e.a, e.b, e.link);
        break;
      case ChaosEvent::Kind::kCheckpoint: {
        if (!run.nodes.contains(e.a) || run.down.contains(e.a)) break;
        const Status st = run.node(e.a).participant().WriteCheckpoint();
        if (st.ok()) {
          ++run.out.checkpoints;
        } else if (st.code() != StatusCode::kFailedPrecondition) {
          Fail(run.out, i, e, "checkpoint failed: " + st.ToString());
        }
        break;
      }
    }
  }
  if (run.out.verdict.ok()) ExecuteRouterBatchGroup(run, group);
  if (!run.out.verdict.ok()) return std::move(run.out);

  // Final convergence barrier, as in the single-suite executor (the shard
  // bounds survive a simulated crash, so recovered nodes keep fencing).
  // Lossy link overrides reset too: the stitched scan below runs over the
  // network, and it must observe state, not luck.
  run.network.HealAll();
  run.network.ResetLinks();
  for (const auto& [id, node] : run.nodes) run.network.SetNodeUp(id, true);
  for (const auto& [id, node] : run.nodes) {
    node->Crash();
    if (const Status st = RecoverNodeImpl(*node, run.decisions); !st.ok()) {
      run.out.verdict = Status::Corruption(
          "final recovery of node " + std::to_string(id) + " failed: " +
          st.ToString());
      return std::move(run.out);
    }
  }

  // Post-barrier anti-entropy: with every node back, a full pass must
  // converge the stragglers and collect ghost debt without perturbing the
  // committed state the checks below verdict.
  for (const auto& rec : run.reconcilers) (void)rec->RunOnce();

  // Verdict, shard by shard: each replica set must satisfy EVERY invariant
  // against the model slice of its range - quorum agreement included.
  const auto map = run.authority.Get();
  for (std::size_t idx = 0; idx < map->entries.size(); ++idx) {
    const rep::ShardEntry& entry = map->entries[idx];
    UserKey high;
    const bool has_high = map->HighBound(idx, &high);
    ScanMap scans;
    for (const auto& replica : entry.config.replicas()) {
      scans[replica.node] = run.node(replica.node).storage().Scan();
    }
    const Model slice =
        SliceModel(run.out.committed, entry.low, has_high, high);
    if (Status st = CheckAll(entry.config, scans, slice); !st.ok()) {
      run.out.verdict = Status::Corruption(
          "shard " + std::to_string(entry.shard) + ": " + st.ToString());
      return std::move(run.out);
    }
  }

  // And the router's own view: a stitched full scan must read back the
  // whole model, boundary keys and all.
  const auto scan = run.router->Scan();
  if (!scan.ok()) {
    run.out.verdict = Status::Corruption("final stitched scan failed: " +
                                         scan.status().ToString());
    return std::move(run.out);
  }
  auto it = run.out.committed.begin();
  for (const auto& entry : *scan) {
    if (it == run.out.committed.end() || entry.key != it->first ||
        entry.value != it->second) {
      run.out.verdict = Status::Corruption(
          "stitched scan diverged from the model at \"" + entry.key + "\"");
      return std::move(run.out);
    }
    ++it;
  }
  if (it != run.out.committed.end()) {
    run.out.verdict = Status::Corruption(
        "stitched scan is missing \"" + it->first + "\" onward");
  }
  return std::move(run.out);
}

}  // namespace

RunOutcome RunSchedule(const ScenarioSpec& spec, const Schedule& schedule,
                       std::uint64_t seed) {
  if (spec.shards > 1 || spec.split_during_run) {
    return RunShardedSchedule(spec, schedule, seed);
  }
  Run run(spec, seed);

  // Batched execution: consecutive batchable ops accumulate here and flush
  // as one transaction when the group fills, a non-batchable event arrives
  // (order must hold), or the schedule ends.
  std::vector<std::pair<std::size_t, ChaosEvent>> group;
  const std::size_t batch = std::max<std::uint32_t>(1, spec.batch_size);

  for (std::size_t i = 0; i < schedule.size() && run.out.verdict.ok(); ++i) {
    const ChaosEvent& e = schedule[i];
    if (run.reconciler && i > 0 && i % spec.reconcile_every == 0) {
      // Anti-entropy pass between schedule windows: repairs ride ordinary
      // transactions, so whatever faults are in flight, the committed-ops
      // model must stay intact (failed pairs are just counted).
      ExecuteBatchGroup(run, group);
      if (!run.out.verdict.ok()) break;
      (void)run.reconciler->RunOnce();
    }
    if (batch > 1 && Batchable(e)) {
      group.emplace_back(i, e);
      if (group.size() >= batch) ExecuteBatchGroup(run, group);
      continue;
    }
    ExecuteBatchGroup(run, group);
    if (!run.out.verdict.ok()) break;
    switch (e.kind) {
      case ChaosEvent::Kind::kOp:
        ExecuteOp(run, i, e);
        break;
      case ChaosEvent::Kind::kCrash: {
        if (!IsMember(run.config, e.a) || run.down.contains(e.a)) break;
        if (e.torn) {
          run.deployment.node(e.a).CrashTorn(e.torn_keep);
        } else {
          run.deployment.node(e.a).Crash();
        }
        run.deployment.network().SetNodeUp(e.a, false);
        run.down.insert(e.a);
        ++run.out.crashes;
        break;
      }
      case ChaosEvent::Kind::kRecover: {
        if (!IsMember(run.config, e.a) || !run.down.contains(e.a)) break;
        run.deployment.network().SetNodeUp(e.a, true);
        run.down.erase(e.a);
        if (const Status st = RecoverNode(run, e.a); !st.ok()) {
          Fail(run.out, i, e, "recovery failed: " + st.ToString());
        }
        ++run.out.recoveries;
        break;
      }
      case ChaosEvent::Kind::kPartition:
        run.deployment.network().Partition(e.a, e.b);
        break;
      case ChaosEvent::Kind::kPartitionOneWay:
        run.deployment.network().PartitionOneWay(e.a, e.b);
        break;
      case ChaosEvent::Kind::kHeal:
        run.deployment.network().Heal(e.a, e.b);
        break;
      case ChaosEvent::Kind::kHealAll:
        run.deployment.network().HealAll();
        break;
      case ChaosEvent::Kind::kSetLink:
        run.deployment.network().SetLink(e.a, e.b, e.link);
        break;
      case ChaosEvent::Kind::kCheckpoint: {
        if (!IsMember(run.config, e.a) || run.down.contains(e.a)) break;
        const Status st =
            run.deployment.node(e.a).participant().WriteCheckpoint();
        if (st.ok()) {
          ++run.out.checkpoints;
        } else if (st.code() != StatusCode::kFailedPrecondition) {
          // Busy (undecided transactions parked on the node) is expected;
          // anything else is a durability bug.
          Fail(run.out, i, e, "checkpoint failed: " + st.ToString());
        }
        break;
      }
    }
  }
  if (run.out.verdict.ok()) ExecuteBatchGroup(run, group);
  if (!run.out.verdict.ok()) return std::move(run.out);

  // Final convergence barrier: heal the network, then crash + recover +
  // resolve EVERY node. Dropped ABORT waves leave applied-but-undecided
  // mutations parked in storage under their locks; the restart wipes them
  // (the WAL replays committed work only) and the decision map settles
  // every in-doubt participant, so the scans below contain exactly the
  // committed history.
  run.deployment.network().HealAll();
  for (const auto& replica : run.config.replicas()) {
    run.deployment.network().SetNodeUp(replica.node, true);
  }
  for (const auto& replica : run.config.replicas()) {
    run.deployment.node(replica.node).Crash();
    if (const Status st = RecoverNode(run, replica.node); !st.ok()) {
      run.out.verdict =
          Status::Corruption("final recovery of node " +
                             std::to_string(replica.node) + " failed: " +
                             st.ToString());
      return std::move(run.out);
    }
  }

  // Post-barrier anti-entropy: a full pass over the healed deployment must
  // converge every straggler without perturbing committed state.
  if (run.reconciler) (void)run.reconciler->RunOnce();

  run.out.verdict =
      CheckAll(run.config, run.deployment.Scans(), run.out.committed);
  return std::move(run.out);
}

Schedule ShrinkSchedule(
    const Schedule& failing,
    const std::function<bool(const Schedule&)>& still_fails) {
  Schedule best = failing;
  std::size_t chunks = 2;
  while (best.size() >= 2) {
    const std::size_t chunk_len = (best.size() + chunks - 1) / chunks;
    bool reduced = false;
    for (std::size_t start = 0; start < best.size(); start += chunk_len) {
      Schedule candidate;
      candidate.reserve(best.size());
      for (std::size_t i = 0; i < best.size(); ++i) {
        if (i < start || i >= start + chunk_len) candidate.push_back(best[i]);
      }
      if (candidate.size() == best.size() || candidate.empty()) continue;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        chunks = std::max<std::size_t>(2, chunks - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk_len <= 1) break;  // already at single-event granularity
      chunks = std::min(chunks * 2, best.size());
    }
  }
  return best;
}

bool CampaignReport::AllPassed() const {
  for (const auto& s : scenarios) {
    if (s.seeds_failed != 0) return false;
  }
  return true;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string CampaignReport::ToJson() const {
  std::ostringstream out;
  out << "{\"all_passed\":" << (AllPassed() ? "true" : "false")
      << ",\"scenarios\":[";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioReport& s = scenarios[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << JsonEscape(s.scenario) << "\""
        << ",\"topology\":\"" << JsonEscape(s.topology) << "\""
        << ",\"seeds_run\":" << s.seeds_run
        << ",\"seeds_failed\":" << s.seeds_failed
        << ",\"ops_attempted\":" << s.ops_attempted
        << ",\"ops_committed\":" << s.ops_committed
        << ",\"ops_rejected\":" << s.ops_rejected
        << ",\"ops_unavailable\":" << s.ops_unavailable
        << ",\"ops_aborted\":" << s.ops_aborted
        << ",\"crashes\":" << s.crashes
        << ",\"recoveries\":" << s.recoveries
        << ",\"checkpoints\":" << s.checkpoints
        << ",\"failures\":[";
    for (std::size_t j = 0; j < s.failures.size(); ++j) {
      const SeedReport& f = s.failures[j];
      if (j > 0) out << ',';
      out << "{\"seed\":" << f.seed << ",\"verdict\":\""
          << JsonEscape(f.verdict) << "\",\"schedule\":\""
          << JsonEscape(ScheduleToString(f.shrunk)) << "\"}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

CampaignReport RunCampaign(const std::vector<ScenarioSpec>& scenarios,
                           const CampaignOptions& options) {
  CampaignReport report;
  for (const ScenarioSpec& spec : scenarios) {
    ScenarioReport sr;
    sr.scenario = spec.name;
    sr.topology = spec.topology.Config().ToString();
    for (std::uint32_t s = 0; s < options.seeds_per_scenario; ++s) {
      const std::uint64_t seed = options.seed_base + s;
      const Schedule schedule = GenerateSchedule(spec, seed);
      RunOutcome outcome = RunSchedule(spec, schedule, seed);
      ++sr.seeds_run;
      sr.ops_attempted += outcome.ops_attempted;
      sr.ops_committed += outcome.ops_committed;
      sr.ops_rejected += outcome.ops_rejected;
      sr.ops_unavailable += outcome.ops_unavailable;
      sr.ops_aborted += outcome.ops_aborted;
      sr.crashes += outcome.crashes;
      sr.recoveries += outcome.recoveries;
      sr.checkpoints += outcome.checkpoints;
      if (!outcome.ok()) {
        ++sr.seeds_failed;
        SeedReport failure;
        failure.seed = seed;
        failure.verdict = outcome.verdict.ToString();
        failure.shrunk = schedule;
        if (options.shrink_failures) {
          failure.shrunk = ShrinkSchedule(
              schedule, [&spec, seed](const Schedule& candidate) {
                return !RunSchedule(spec, candidate, seed).ok();
              });
        }
        sr.failures.push_back(std::move(failure));
        if (options.progress) {
          options.progress(spec.name + " seed " + std::to_string(seed) +
                           " FAILED: " + outcome.verdict.ToString());
        }
      }
    }
    if (options.progress) {
      options.progress(spec.name + " [" + sr.topology + "]: " +
                       std::to_string(sr.seeds_run - sr.seeds_failed) + "/" +
                       std::to_string(sr.seeds_run) + " seeds passed, " +
                       std::to_string(sr.ops_committed) + " ops committed, " +
                       std::to_string(sr.crashes) + " crashes");
    }
    report.scenarios.push_back(std::move(sr));
  }
  return report;
}

std::vector<ScenarioSpec> BuiltinScenarios() {
  std::vector<ScenarioSpec> scenarios;

  {
    ScenarioSpec s;
    s.name = "uniform-3-2-2";
    s.topology = {{1, 1, 1}, 2, 2};
    scenarios.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "weighted-5-4-4";
    s.topology = {{2, 1, 1, 1, 2}, 4, 4};
    scenarios.push_back(std::move(s));
  }
  {
    // One weak (zero-vote) replica plus the client-side version cache:
    // guarded writes, validated reads, and weak best-effort propagation
    // all under fire.
    ScenarioSpec s;
    s.name = "cached-weak-5-2-3";
    s.topology = {{1, 1, 1, 1, 0}, 2, 3};
    s.enable_cache = true;
    scenarios.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "uniform-7-4-4";
    s.topology = {{1, 1, 1, 1, 1, 1, 1}, 4, 4};
    s.steps = 300;
    scenarios.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "weighted-9-7-7";
    s.topology = {{3, 2, 2, 1, 1, 1, 1, 1, 1}, 7, 7};
    s.steps = 300;
    scenarios.push_back(std::move(s));
  }
  {
    // Hot-path batching under fire: groups of 8 ops share one transaction
    // (and one group-committed flush). Crashes mid-group must never widen
    // the durability window of a committed batch - the model advances op
    // by op and CheckAll compares it against the recovered scans.
    ScenarioSpec s;
    s.name = "batched-3-2-2";
    s.topology = {{1, 1, 1}, 2, 2};
    s.batch_size = 8;
    scenarios.push_back(std::move(s));
  }
  {
    // Batching composed with the version cache and a weak replica: staged
    // cache puts from batch waves plus weak best-effort propagation.
    ScenarioSpec s;
    s.name = "batched-cached-weak-5-2-3";
    s.topology = {{1, 1, 1, 1, 0}, 2, 3};
    s.enable_cache = true;
    s.batch_size = 6;
    s.steps = 300;
    scenarios.push_back(std::move(s));
  }
  {
    // Two shards of three replicas each behind one router: every op routes,
    // batches straddle the fence (cross-shard 2PC under fire), and the
    // final checks hold each replica set to its slice of the model plus a
    // stitched full scan.
    ScenarioSpec s;
    s.name = "sharded-2x3-2-2";
    s.topology = {{1, 1, 1}, 2, 2};
    s.shards = 2;
    s.batch_size = 4;
    scenarios.push_back(std::move(s));
  }
  {
    // Anti-entropy under fire: a reconciler pass sweeps the replica set
    // after every 40-event window and after the final barrier. Repairs
    // ride ordinary transactions, so the committed-ops model and every
    // invariant must hold whatever faults each pass races.
    ScenarioSpec s;
    s.name = "reconcile-3-2-2";
    s.topology = {{1, 1, 1}, 2, 2};
    s.reconcile_every = 40;
    scenarios.push_back(std::move(s));
  }
  {
    // A weak (zero-vote) replica shedding ghost debt through periodic
    // reconciliation while crashes and partitions fly.
    ScenarioSpec s;
    s.name = "reconcile-weak-4-2-2";
    s.topology = {{1, 1, 1, 0}, 2, 2};
    s.reconcile_every = 30;
    scenarios.push_back(std::move(s));
  }
  {
    // Online split paused right after its copy step, a partition cut
    // through the source replica set, reconciler passes over the
    // half-migrated deployment, then resume: the moving range must never
    // be duplicated, dropped, or re-spread.
    ScenarioSpec s;
    s.name = "split-reconcile-2x3-2-2";
    s.topology = {{1, 1, 1}, 2, 2};
    s.shards = 2;
    s.reconcile_every = 50;
    s.split_during_run = true;
    scenarios.push_back(std::move(s));
  }
  {
    // Latency-aware planning around a persistent straggler: node 2's links
    // carry heavy virtual latency, the adaptive policy steers quorums away
    // from it and hedged reads fire around it, while crashes and
    // partitions keep reshuffling which R-vote sets are even reachable.
    // The invariants are the point: ANY quorum the planner picks - steered,
    // hedged, or fallback - must agree with the committed-ops model.
    ScenarioSpec s;
    s.name = "slow-node-3-2-2";
    s.topology = {{1, 1, 1}, 2, 2};
    s.adaptive = true;
    s.slow_node = 2;
    s.slow_latency_us = 5'000;
    scenarios.push_back(std::move(s));
  }
  {
    // A rapidly flapping membership under the adaptive policy: crash and
    // recovery probabilities are cranked so nodes cycle through failure
    // streaks, quarantine, probation probes, and recovery. A quarantined
    // node must re-earn traffic (never be starved into unavailability)
    // and every quorum the planner assembles must stay correct.
    ScenarioSpec s;
    s.name = "flapping-node-3-2-2";
    s.topology = {{1, 1, 1}, 2, 2};
    s.adaptive = true;
    s.p_crash = 0.08;
    s.p_recover = 0.20;
    scenarios.push_back(std::move(s));
  }
  {
    // The paper's upper end; exercises the exact (non-enumerating) quorum
    // agreement checker.
    ScenarioSpec s;
    s.name = "uniform-31-16-16";
    s.topology = {std::vector<Votes>(31, 1), 16, 16};
    s.steps = 120;
    s.key_space = 16;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

Result<ScenarioSpec> FindScenario(const std::string& name) {
  std::string known;
  for (auto& s : BuiltinScenarios()) {
    if (s.name == name) return std::move(s);
    known += (known.empty() ? "" : ", ") + s.name;
  }
  return Status::InvalidArgument("unknown scenario '" + name +
                                 "'; known: " + known);
}

}  // namespace repdir::chaos
