#include "chaos/campaign.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "chaos/deployment.h"
#include "common/rng.h"

namespace repdir::chaos {

namespace {

constexpr NodeId kClient = Deployment::kClientNode;

/// FNV-1a, so a scenario name perturbs the seed identically across runs
/// (std::hash makes no such promise).
std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

UserKey KeyName(std::uint32_t index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "k%03u", index);
  return buf;
}

Value ValueName(std::uint64_t seed, std::uint32_t salt) {
  return "v" + std::to_string(seed % 997) + "." + std::to_string(salt);
}

bool IsMember(const rep::QuorumConfig& config, NodeId node) {
  for (const auto& r : config.replicas()) {
    if (r.node == node) return true;
  }
  return false;
}

/// The vote threshold below which no read or write quorum can form.
Votes QuorumFloor(const rep::QuorumConfig& config) {
  return std::max(config.read_quorum(), config.write_quorum());
}

}  // namespace

rep::QuorumConfig TopologySpec::Config() const {
  std::vector<rep::Replica> replicas;
  replicas.reserve(votes.size());
  for (std::size_t i = 0; i < votes.size(); ++i) {
    replicas.push_back({static_cast<NodeId>(i + 1), votes[i]});
  }
  return rep::QuorumConfig(std::move(replicas), read_quorum, write_quorum);
}

Schedule GenerateSchedule(const ScenarioSpec& spec, std::uint64_t seed) {
  Rng rng(seed ^ HashName(spec.name));
  const rep::QuorumConfig config = spec.topology.Config();

  // Generator's view of deployment state, to keep schedules interesting:
  // never crash below quorum viability, recover/heal only what is actually
  // down/cut. The executor re-checks and skips no-ops anyway (shrinking
  // deletes arbitrary events, so replay must tolerate any subsequence).
  std::set<NodeId> down;
  std::set<std::pair<NodeId, NodeId>> cuts;
  Votes up_votes = config.TotalVotes();

  const std::vector<NodeId> reps = config.Nodes();
  Schedule schedule;
  schedule.reserve(spec.steps);

  for (std::uint32_t step = 0; step < spec.steps; ++step) {
    ChaosEvent e;
    double roll = rng.NextDouble();
    const auto take = [&roll](double p) {
      if (roll < p) return true;
      roll -= p;
      return false;
    };

    if (take(spec.p_crash)) {
      std::vector<NodeId> candidates;
      for (const NodeId r : reps) {
        if (!down.contains(r) &&
            up_votes - config.VotesOf(r) >= QuorumFloor(config)) {
          candidates.push_back(r);
        }
      }
      if (!candidates.empty()) {
        e.kind = ChaosEvent::Kind::kCrash;
        e.a = rng.Pick(candidates);
        if (rng.Chance(spec.torn_fraction)) {
          e.torn = true;
          e.torn_keep = static_cast<std::uint32_t>(rng.Below(48));
        }
        down.insert(e.a);
        up_votes -= config.VotesOf(e.a);
        schedule.push_back(e);
        continue;
      }
    } else if (take(spec.p_recover)) {
      if (!down.empty()) {
        std::vector<NodeId> candidates(down.begin(), down.end());
        e.kind = ChaosEvent::Kind::kRecover;
        e.a = rng.Pick(candidates);
        down.erase(e.a);
        up_votes += config.VotesOf(e.a);
        schedule.push_back(e);
        continue;
      }
    } else if (take(spec.p_partition)) {
      e.kind = ChaosEvent::Kind::kPartition;
      e.a = kClient;
      e.b = rng.Pick(reps);
      cuts.insert({e.a, e.b});
      cuts.insert({e.b, e.a});
      schedule.push_back(e);
      continue;
    } else if (take(spec.p_one_way)) {
      e.kind = ChaosEvent::Kind::kPartitionOneWay;
      const NodeId r = rng.Pick(reps);
      // Both orientations matter: client->rep kills the request, rep->
      // client lets the server execute but loses the reply.
      if (rng.Chance(0.5)) {
        e.a = kClient;
        e.b = r;
      } else {
        e.a = r;
        e.b = kClient;
      }
      cuts.insert({e.a, e.b});
      schedule.push_back(e);
      continue;
    } else if (take(spec.p_heal)) {
      if (!cuts.empty()) {
        std::vector<std::pair<NodeId, NodeId>> candidates(cuts.begin(),
                                                          cuts.end());
        const auto cut = rng.Pick(candidates);
        e.kind = ChaosEvent::Kind::kHeal;
        e.a = cut.first;
        e.b = cut.second;
        cuts.erase({e.a, e.b});
        cuts.erase({e.b, e.a});
        schedule.push_back(e);
        continue;
      }
    } else if (take(spec.p_heal_all)) {
      if (!cuts.empty()) {
        e.kind = ChaosEvent::Kind::kHealAll;
        cuts.clear();
        schedule.push_back(e);
        continue;
      }
    } else if (take(spec.p_set_link)) {
      e.kind = ChaosEvent::Kind::kSetLink;
      const NodeId r = rng.Pick(reps);
      if (rng.Chance(0.5)) {
        e.a = kClient;
        e.b = r;
      } else {
        e.a = r;
        e.b = kClient;
      }
      e.link.drop_probability = static_cast<double>(rng.Below(4)) * 0.1;
      e.link.duplicate_probability = static_cast<double>(rng.Below(3)) * 0.1;
      schedule.push_back(e);
      continue;
    } else if (take(spec.p_checkpoint)) {
      std::vector<NodeId> candidates;
      for (const NodeId r : reps) {
        if (!down.contains(r)) candidates.push_back(r);
      }
      if (!candidates.empty()) {
        e.kind = ChaosEvent::Kind::kCheckpoint;
        e.a = rng.Pick(candidates);
        schedule.push_back(e);
        continue;
      }
    }

    // Default: a directory operation.
    e.kind = ChaosEvent::Kind::kOp;
    const double op_roll = rng.NextDouble();
    if (op_roll < 0.30) {
      e.op = ChaosEvent::OpKind::kInsert;
    } else if (op_roll < 0.50) {
      e.op = ChaosEvent::OpKind::kUpdate;
    } else if (op_roll < 0.65) {
      e.op = ChaosEvent::OpKind::kDelete;
    } else if (op_roll < 0.90) {
      e.op = ChaosEvent::OpKind::kLookup;
    } else {
      e.op = ChaosEvent::OpKind::kNextKey;
    }
    e.key_index = static_cast<std::uint32_t>(rng.Below(spec.key_space));
    e.value_salt = step;
    schedule.push_back(e);
  }
  return schedule;
}

namespace {

/// Mutable state of one schedule replay.
struct Run {
  Run(const ScenarioSpec& spec, std::uint64_t seed)
      : config(spec.topology.Config()),
        deployment(config, WalNodeOptions()),
        suite(deployment.NewSuite(kClient, nullptr, seed,
                                  spec.enable_cache)),
        seed(seed) {}

  static rep::DirRepNodeOptions WalNodeOptions() {
    rep::DirRepNodeOptions options = Deployment::DefaultNodeOptions();
    options.enable_wal = true;
    return options;
  }

  rep::QuorumConfig config;
  Deployment deployment;
  std::unique_ptr<rep::DirectorySuite> suite;
  std::uint64_t seed;

  /// Coordinator-side outcome of every finished transaction, by id. The
  /// executor is the coordinator's memory: recovery resolves in-doubt
  /// participants from this map (presumed abort for unknown ids).
  std::map<TxnId, bool> decisions;
  std::set<NodeId> down;
  RunOutcome out;

  bool Decided(TxnId txn) const {
    const auto it = decisions.find(txn);
    return it != decisions.end() && it->second;
  }
};

void Fail(Run& run, std::size_t step, const ChaosEvent& e,
          const std::string& msg) {
  run.out.verdict = Status::Corruption("event " + std::to_string(step) +
                                       " [" + e.ToString() + "]: " + msg);
}

void ExecuteOp(Run& run, std::size_t step, const ChaosEvent& e) {
  Model& model = run.out.committed;
  const UserKey key = KeyName(e.key_index);
  const Value value = ValueName(run.seed, e.value_salt);
  ++run.out.ops_attempted;

  rep::SuiteTxn txn = run.suite->Begin();
  Status st = Status::Ok();
  rep::DirectorySuite::LookupResult looked;
  rep::DirectorySuite::NextKeyResult next;
  switch (e.op) {
    case ChaosEvent::OpKind::kInsert: st = txn.Insert(key, value); break;
    case ChaosEvent::OpKind::kUpdate: st = txn.Update(key, value); break;
    case ChaosEvent::OpKind::kDelete: st = txn.Delete(key); break;
    case ChaosEvent::OpKind::kLookup: {
      auto r = txn.Lookup(key);
      st = r.status();
      if (r.ok()) looked = *r;
      break;
    }
    case ChaosEvent::OpKind::kNextKey: {
      auto r = txn.NextKey(key);
      st = r.status();
      if (r.ok()) next = *r;
      break;
    }
  }

  if (st.ok()) {
    const Status commit = txn.Commit();
    run.decisions[txn.id()] = commit.ok();
    if (!commit.ok()) {
      if (commit.code() != StatusCode::kAborted &&
          commit.code() != StatusCode::kUnavailable) {
        Fail(run, step, e, "unexpected commit status: " + commit.ToString());
        return;
      }
      ++run.out.ops_aborted;
      return;
    }
    ++run.out.ops_committed;

    // The operation committed: cross-check against the model, then apply.
    switch (e.op) {
      case ChaosEvent::OpKind::kInsert:
        if (model.contains(key)) {
          Fail(run, step, e,
               "insert committed but the model already holds \"" + key +
                   "\" - a read quorum missed the current entry");
          return;
        }
        model[key] = value;
        break;
      case ChaosEvent::OpKind::kUpdate:
        if (!model.contains(key)) {
          Fail(run, step, e,
               "update committed but \"" + key + "\" is deleted - a read "
               "quorum saw a ghost");
          return;
        }
        model[key] = value;
        break;
      case ChaosEvent::OpKind::kDelete:
        if (!model.contains(key)) {
          Fail(run, step, e,
               "delete committed but \"" + key + "\" is deleted - a read "
               "quorum saw a ghost");
          return;
        }
        model.erase(key);
        break;
      case ChaosEvent::OpKind::kLookup: {
        const auto it = model.find(key);
        if (looked.found != (it != model.end()) ||
            (looked.found && looked.value != it->second)) {
          Fail(run, step, e,
               "lookup of \"" + key + "\" returned " +
                   (looked.found ? "'" + looked.value + "'"
                                 : std::string("absent")) +
                   " but the model has " +
                   (it != model.end() ? "'" + it->second + "'"
                                      : std::string("absent")));
          return;
        }
        break;
      }
      case ChaosEvent::OpKind::kNextKey: {
        const auto it = model.upper_bound(key);
        const bool want_found = it != model.end();
        if (next.found != want_found ||
            (next.found && (next.key != it->first ||
                            next.value != it->second))) {
          Fail(run, step, e,
               "nextkey after \"" + key + "\" returned " +
                   (next.found ? "\"" + next.key + "\""
                               : std::string("none")) +
                   " but the model expects " +
                   (want_found ? "\"" + it->first + "\""
                               : std::string("none")));
          return;
        }
        break;
      }
    }
    return;
  }

  // Operation failed: roll back and classify. Reads never observe
  // uncommitted state (strict 2PL holds locks until the decision), so the
  // "correct rejection" codes must agree with the model exactly.
  run.decisions[txn.id()] = false;
  txn.Abort();
  switch (st.code()) {
    case StatusCode::kAlreadyExists:
      if (e.op != ChaosEvent::OpKind::kInsert || model.contains(key)) {
        ++run.out.ops_rejected;
        return;
      }
      Fail(run, step, e,
           "insert rejected as existing but the model says \"" + key +
               "\" is absent - a stale entry won a read quorum");
      return;
    case StatusCode::kNotFound:
      if (model.contains(key)) {
        Fail(run, step, e,
             "operation says \"" + key + "\" is absent but the model holds "
             "it - a stale gap won a read quorum");
        return;
      }
      ++run.out.ops_rejected;
      return;
    case StatusCode::kUnavailable:
      ++run.out.ops_unavailable;
      return;
    case StatusCode::kAborted:
      ++run.out.ops_aborted;
      return;
    default:
      Fail(run, step, e, "unexpected operation status: " + st.ToString());
      return;
  }
}

bool Batchable(const ChaosEvent& e) {
  return e.kind == ChaosEvent::Kind::kOp &&
         (e.op == ChaosEvent::OpKind::kInsert ||
          e.op == ChaosEvent::OpKind::kUpdate ||
          e.op == ChaosEvent::OpKind::kLookup);
}

/// Runs a group of consecutive batchable ops as ONE transaction through
/// SuiteTxn::ExecuteBatch, then advances the model op by op in submission
/// order (batch semantics: later ops observe earlier effects). The model
/// cross-checks are the same as ExecuteOp's; a transaction-level failure
/// (quorum loss, abort) must leave the model untouched for every op.
void ExecuteBatchGroup(Run& run,
                       std::vector<std::pair<std::size_t, ChaosEvent>>& group) {
  if (group.empty()) return;
  Model& model = run.out.committed;
  run.out.ops_attempted += group.size();

  using BatchOp = rep::DirectorySuite::BatchOp;
  std::vector<BatchOp> ops;
  ops.reserve(group.size());
  for (const auto& [step, e] : group) {
    BatchOp op;
    op.key = KeyName(e.key_index);
    switch (e.op) {
      case ChaosEvent::OpKind::kInsert:
        op.kind = BatchOp::Kind::kInsert;
        op.value = ValueName(run.seed, e.value_salt);
        break;
      case ChaosEvent::OpKind::kUpdate:
        op.kind = BatchOp::Kind::kUpdate;
        op.value = ValueName(run.seed, e.value_salt);
        break;
      default:
        op.kind = BatchOp::Kind::kLookup;
        break;
    }
    ops.push_back(std::move(op));
  }

  rep::SuiteTxn txn = run.suite->Begin();
  const auto results = txn.ExecuteBatch(ops);
  if (!results.ok()) {
    run.decisions[txn.id()] = false;
    txn.Abort();
    switch (results.status().code()) {
      case StatusCode::kUnavailable:
        run.out.ops_unavailable += group.size();
        break;
      case StatusCode::kAborted:
        run.out.ops_aborted += group.size();
        break;
      default:
        Fail(run, group.front().first, group.front().second,
             "unexpected batch status: " + results.status().ToString());
        break;
    }
    group.clear();
    return;
  }

  const Status commit = txn.Commit();
  run.decisions[txn.id()] = commit.ok();
  if (!commit.ok()) {
    if (commit.code() != StatusCode::kAborted &&
        commit.code() != StatusCode::kUnavailable) {
      Fail(run, group.front().first, group.front().second,
           "unexpected batch commit status: " + commit.ToString());
      group.clear();
      return;
    }
    run.out.ops_aborted += group.size();
    group.clear();
    return;
  }

  for (std::size_t i = 0; i < group.size(); ++i) {
    const auto& [step, e] = group[i];
    const UserKey key = KeyName(e.key_index);
    const Value value = ValueName(run.seed, e.value_salt);
    const auto& r = (*results)[i];
    switch (e.op) {
      case ChaosEvent::OpKind::kInsert:
        if (r.status.ok()) {
          if (model.contains(key)) {
            Fail(run, step, e,
                 "batched insert committed but the model already holds \"" +
                     key + "\" - a read quorum missed the current entry");
            return;
          }
          model[key] = value;
          ++run.out.ops_committed;
        } else if (r.status.code() == StatusCode::kAlreadyExists) {
          if (!model.contains(key)) {
            Fail(run, step, e,
                 "batched insert rejected as existing but the model says \"" +
                     key + "\" is absent - a stale entry won a read quorum");
            return;
          }
          ++run.out.ops_rejected;
        } else {
          Fail(run, step, e,
               "unexpected batched insert status: " + r.status.ToString());
          return;
        }
        break;
      case ChaosEvent::OpKind::kUpdate:
        if (r.status.ok()) {
          if (!model.contains(key)) {
            Fail(run, step, e,
                 "batched update committed but \"" + key +
                     "\" is deleted - a read quorum saw a ghost");
            return;
          }
          model[key] = value;
          ++run.out.ops_committed;
        } else if (r.status.code() == StatusCode::kNotFound) {
          if (model.contains(key)) {
            Fail(run, step, e,
                 "batched update says \"" + key +
                     "\" is absent but the model holds it - a stale gap won "
                     "a read quorum");
            return;
          }
          ++run.out.ops_rejected;
        } else {
          Fail(run, step, e,
               "unexpected batched update status: " + r.status.ToString());
          return;
        }
        break;
      default: {  // kLookup
        if (!r.status.ok()) {
          Fail(run, step, e,
               "unexpected batched lookup status: " + r.status.ToString());
          return;
        }
        const auto it = model.find(key);
        if (r.lookup.found != (it != model.end()) ||
            (r.lookup.found && r.lookup.value != it->second)) {
          Fail(run, step, e,
               "batched lookup of \"" + key + "\" returned " +
                   (r.lookup.found ? "'" + r.lookup.value + "'"
                                   : std::string("absent")) +
                   " but the model has " +
                   (it != model.end() ? "'" + it->second + "'"
                                      : std::string("absent")));
          return;
        }
        ++run.out.ops_committed;
        break;
      }
    }
  }
  group.clear();
}

/// Restarts one node: WAL replay plus in-doubt resolution against the
/// coordinator's decision map (presumed abort when unknown).
Status RecoverNode(Run& run, NodeId node) {
  auto& n = run.deployment.node(node);
  REPDIR_ASSIGN_OR_RETURN(const auto outcome, n.Recover());
  for (const TxnId txn : outcome.in_doubt) {
    REPDIR_RETURN_IF_ERROR(n.ResolveInDoubt(txn, run.Decided(txn)));
  }
  return Status::Ok();
}

}  // namespace

RunOutcome RunSchedule(const ScenarioSpec& spec, const Schedule& schedule,
                       std::uint64_t seed) {
  Run run(spec, seed);

  // Batched execution: consecutive batchable ops accumulate here and flush
  // as one transaction when the group fills, a non-batchable event arrives
  // (order must hold), or the schedule ends.
  std::vector<std::pair<std::size_t, ChaosEvent>> group;
  const std::size_t batch = std::max<std::uint32_t>(1, spec.batch_size);

  for (std::size_t i = 0; i < schedule.size() && run.out.verdict.ok(); ++i) {
    const ChaosEvent& e = schedule[i];
    if (batch > 1 && Batchable(e)) {
      group.emplace_back(i, e);
      if (group.size() >= batch) ExecuteBatchGroup(run, group);
      continue;
    }
    ExecuteBatchGroup(run, group);
    if (!run.out.verdict.ok()) break;
    switch (e.kind) {
      case ChaosEvent::Kind::kOp:
        ExecuteOp(run, i, e);
        break;
      case ChaosEvent::Kind::kCrash: {
        if (!IsMember(run.config, e.a) || run.down.contains(e.a)) break;
        if (e.torn) {
          run.deployment.node(e.a).CrashTorn(e.torn_keep);
        } else {
          run.deployment.node(e.a).Crash();
        }
        run.deployment.network().SetNodeUp(e.a, false);
        run.down.insert(e.a);
        ++run.out.crashes;
        break;
      }
      case ChaosEvent::Kind::kRecover: {
        if (!IsMember(run.config, e.a) || !run.down.contains(e.a)) break;
        run.deployment.network().SetNodeUp(e.a, true);
        run.down.erase(e.a);
        if (const Status st = RecoverNode(run, e.a); !st.ok()) {
          Fail(run, i, e, "recovery failed: " + st.ToString());
        }
        ++run.out.recoveries;
        break;
      }
      case ChaosEvent::Kind::kPartition:
        run.deployment.network().Partition(e.a, e.b);
        break;
      case ChaosEvent::Kind::kPartitionOneWay:
        run.deployment.network().PartitionOneWay(e.a, e.b);
        break;
      case ChaosEvent::Kind::kHeal:
        run.deployment.network().Heal(e.a, e.b);
        break;
      case ChaosEvent::Kind::kHealAll:
        run.deployment.network().HealAll();
        break;
      case ChaosEvent::Kind::kSetLink:
        run.deployment.network().SetLink(e.a, e.b, e.link);
        break;
      case ChaosEvent::Kind::kCheckpoint: {
        if (!IsMember(run.config, e.a) || run.down.contains(e.a)) break;
        const Status st =
            run.deployment.node(e.a).participant().WriteCheckpoint();
        if (st.ok()) {
          ++run.out.checkpoints;
        } else if (st.code() != StatusCode::kFailedPrecondition) {
          // Busy (undecided transactions parked on the node) is expected;
          // anything else is a durability bug.
          Fail(run, i, e, "checkpoint failed: " + st.ToString());
        }
        break;
      }
    }
  }
  if (run.out.verdict.ok()) ExecuteBatchGroup(run, group);
  if (!run.out.verdict.ok()) return std::move(run.out);

  // Final convergence barrier: heal the network, then crash + recover +
  // resolve EVERY node. Dropped ABORT waves leave applied-but-undecided
  // mutations parked in storage under their locks; the restart wipes them
  // (the WAL replays committed work only) and the decision map settles
  // every in-doubt participant, so the scans below contain exactly the
  // committed history.
  run.deployment.network().HealAll();
  for (const auto& replica : run.config.replicas()) {
    run.deployment.network().SetNodeUp(replica.node, true);
  }
  for (const auto& replica : run.config.replicas()) {
    run.deployment.node(replica.node).Crash();
    if (const Status st = RecoverNode(run, replica.node); !st.ok()) {
      run.out.verdict =
          Status::Corruption("final recovery of node " +
                             std::to_string(replica.node) + " failed: " +
                             st.ToString());
      return std::move(run.out);
    }
  }

  run.out.verdict =
      CheckAll(run.config, run.deployment.Scans(), run.out.committed);
  return std::move(run.out);
}

Schedule ShrinkSchedule(
    const Schedule& failing,
    const std::function<bool(const Schedule&)>& still_fails) {
  Schedule best = failing;
  std::size_t chunks = 2;
  while (best.size() >= 2) {
    const std::size_t chunk_len = (best.size() + chunks - 1) / chunks;
    bool reduced = false;
    for (std::size_t start = 0; start < best.size(); start += chunk_len) {
      Schedule candidate;
      candidate.reserve(best.size());
      for (std::size_t i = 0; i < best.size(); ++i) {
        if (i < start || i >= start + chunk_len) candidate.push_back(best[i]);
      }
      if (candidate.size() == best.size() || candidate.empty()) continue;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        chunks = std::max<std::size_t>(2, chunks - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk_len <= 1) break;  // already at single-event granularity
      chunks = std::min(chunks * 2, best.size());
    }
  }
  return best;
}

bool CampaignReport::AllPassed() const {
  for (const auto& s : scenarios) {
    if (s.seeds_failed != 0) return false;
  }
  return true;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string CampaignReport::ToJson() const {
  std::ostringstream out;
  out << "{\"all_passed\":" << (AllPassed() ? "true" : "false")
      << ",\"scenarios\":[";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioReport& s = scenarios[i];
    if (i > 0) out << ',';
    out << "{\"name\":\"" << JsonEscape(s.scenario) << "\""
        << ",\"topology\":\"" << JsonEscape(s.topology) << "\""
        << ",\"seeds_run\":" << s.seeds_run
        << ",\"seeds_failed\":" << s.seeds_failed
        << ",\"ops_attempted\":" << s.ops_attempted
        << ",\"ops_committed\":" << s.ops_committed
        << ",\"ops_rejected\":" << s.ops_rejected
        << ",\"ops_unavailable\":" << s.ops_unavailable
        << ",\"ops_aborted\":" << s.ops_aborted
        << ",\"crashes\":" << s.crashes
        << ",\"recoveries\":" << s.recoveries
        << ",\"checkpoints\":" << s.checkpoints
        << ",\"failures\":[";
    for (std::size_t j = 0; j < s.failures.size(); ++j) {
      const SeedReport& f = s.failures[j];
      if (j > 0) out << ',';
      out << "{\"seed\":" << f.seed << ",\"verdict\":\""
          << JsonEscape(f.verdict) << "\",\"schedule\":\""
          << JsonEscape(ScheduleToString(f.shrunk)) << "\"}";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

CampaignReport RunCampaign(const std::vector<ScenarioSpec>& scenarios,
                           const CampaignOptions& options) {
  CampaignReport report;
  for (const ScenarioSpec& spec : scenarios) {
    ScenarioReport sr;
    sr.scenario = spec.name;
    sr.topology = spec.topology.Config().ToString();
    for (std::uint32_t s = 0; s < options.seeds_per_scenario; ++s) {
      const std::uint64_t seed = options.seed_base + s;
      const Schedule schedule = GenerateSchedule(spec, seed);
      RunOutcome outcome = RunSchedule(spec, schedule, seed);
      ++sr.seeds_run;
      sr.ops_attempted += outcome.ops_attempted;
      sr.ops_committed += outcome.ops_committed;
      sr.ops_rejected += outcome.ops_rejected;
      sr.ops_unavailable += outcome.ops_unavailable;
      sr.ops_aborted += outcome.ops_aborted;
      sr.crashes += outcome.crashes;
      sr.recoveries += outcome.recoveries;
      sr.checkpoints += outcome.checkpoints;
      if (!outcome.ok()) {
        ++sr.seeds_failed;
        SeedReport failure;
        failure.seed = seed;
        failure.verdict = outcome.verdict.ToString();
        failure.shrunk = schedule;
        if (options.shrink_failures) {
          failure.shrunk = ShrinkSchedule(
              schedule, [&spec, seed](const Schedule& candidate) {
                return !RunSchedule(spec, candidate, seed).ok();
              });
        }
        sr.failures.push_back(std::move(failure));
        if (options.progress) {
          options.progress(spec.name + " seed " + std::to_string(seed) +
                           " FAILED: " + outcome.verdict.ToString());
        }
      }
    }
    if (options.progress) {
      options.progress(spec.name + " [" + sr.topology + "]: " +
                       std::to_string(sr.seeds_run - sr.seeds_failed) + "/" +
                       std::to_string(sr.seeds_run) + " seeds passed, " +
                       std::to_string(sr.ops_committed) + " ops committed, " +
                       std::to_string(sr.crashes) + " crashes");
    }
    report.scenarios.push_back(std::move(sr));
  }
  return report;
}

std::vector<ScenarioSpec> BuiltinScenarios() {
  std::vector<ScenarioSpec> scenarios;

  {
    ScenarioSpec s;
    s.name = "uniform-3-2-2";
    s.topology = {{1, 1, 1}, 2, 2};
    scenarios.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "weighted-5-4-4";
    s.topology = {{2, 1, 1, 1, 2}, 4, 4};
    scenarios.push_back(std::move(s));
  }
  {
    // One weak (zero-vote) replica plus the client-side version cache:
    // guarded writes, validated reads, and weak best-effort propagation
    // all under fire.
    ScenarioSpec s;
    s.name = "cached-weak-5-2-3";
    s.topology = {{1, 1, 1, 1, 0}, 2, 3};
    s.enable_cache = true;
    scenarios.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "uniform-7-4-4";
    s.topology = {{1, 1, 1, 1, 1, 1, 1}, 4, 4};
    s.steps = 300;
    scenarios.push_back(std::move(s));
  }
  {
    ScenarioSpec s;
    s.name = "weighted-9-7-7";
    s.topology = {{3, 2, 2, 1, 1, 1, 1, 1, 1}, 7, 7};
    s.steps = 300;
    scenarios.push_back(std::move(s));
  }
  {
    // Hot-path batching under fire: groups of 8 ops share one transaction
    // (and one group-committed flush). Crashes mid-group must never widen
    // the durability window of a committed batch - the model advances op
    // by op and CheckAll compares it against the recovered scans.
    ScenarioSpec s;
    s.name = "batched-3-2-2";
    s.topology = {{1, 1, 1}, 2, 2};
    s.batch_size = 8;
    scenarios.push_back(std::move(s));
  }
  {
    // Batching composed with the version cache and a weak replica: staged
    // cache puts from batch waves plus weak best-effort propagation.
    ScenarioSpec s;
    s.name = "batched-cached-weak-5-2-3";
    s.topology = {{1, 1, 1, 1, 0}, 2, 3};
    s.enable_cache = true;
    s.batch_size = 6;
    s.steps = 300;
    scenarios.push_back(std::move(s));
  }
  {
    // The paper's upper end; exercises the exact (non-enumerating) quorum
    // agreement checker.
    ScenarioSpec s;
    s.name = "uniform-31-16-16";
    s.topology = {std::vector<Votes>(31, 1), 16, 16};
    s.steps = 120;
    s.key_space = 16;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

Result<ScenarioSpec> FindScenario(const std::string& name) {
  std::string known;
  for (auto& s : BuiltinScenarios()) {
    if (s.name == name) return std::move(s);
    known += (known.empty() ? "" : ", ") + s.name;
  }
  return Status::InvalidArgument("unknown scenario '" + name +
                                 "'; known: " + known);
}

}  // namespace repdir::chaos
