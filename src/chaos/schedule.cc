#include "chaos/schedule.h"

#include <sstream>

namespace repdir::chaos {

namespace {

const char* OpName(ChaosEvent::OpKind op) {
  switch (op) {
    case ChaosEvent::OpKind::kInsert: return "insert";
    case ChaosEvent::OpKind::kUpdate: return "update";
    case ChaosEvent::OpKind::kDelete: return "delete";
    case ChaosEvent::OpKind::kLookup: return "lookup";
    case ChaosEvent::OpKind::kNextKey: return "next";
  }
  return "?";
}

Result<ChaosEvent::OpKind> ParseOp(const std::string& word) {
  if (word == "insert") return ChaosEvent::OpKind::kInsert;
  if (word == "update") return ChaosEvent::OpKind::kUpdate;
  if (word == "delete") return ChaosEvent::OpKind::kDelete;
  if (word == "lookup") return ChaosEvent::OpKind::kLookup;
  if (word == "next") return ChaosEvent::OpKind::kNextKey;
  return Status::InvalidArgument("unknown op '" + word + "'");
}

/// Drop/dup probabilities travel as integer percent so the text form stays
/// exact under round-trips.
std::uint32_t ToPct(double p) {
  return static_cast<std::uint32_t>(p * 100.0 + 0.5);
}

}  // namespace

std::string ChaosEvent::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kOp:
      out << "op " << OpName(op) << ' ' << key_index << ' ' << value_salt;
      break;
    case Kind::kCrash:
      out << "crash " << a;
      if (torn) out << " torn " << torn_keep;
      break;
    case Kind::kRecover: out << "recover " << a; break;
    case Kind::kPartition: out << "cut " << a << ' ' << b; break;
    case Kind::kPartitionOneWay: out << "cut1 " << a << ' ' << b; break;
    case Kind::kHeal: out << "heal " << a << ' ' << b; break;
    case Kind::kHealAll: out << "healall"; break;
    case Kind::kSetLink:
      out << "link " << a << ' ' << b << ' ' << link.base_latency << ' '
          << link.jitter << ' ' << ToPct(link.drop_probability) << ' '
          << ToPct(link.duplicate_probability);
      break;
    case Kind::kCheckpoint: out << "ckpt " << a; break;
  }
  return out.str();
}

Result<ChaosEvent> ChaosEvent::Parse(const std::string& line) {
  std::istringstream in(line);
  std::string word;
  if (!(in >> word)) return Status::InvalidArgument("empty event");

  ChaosEvent e;
  const auto want = [&](auto& field) -> Status {
    if (!(in >> field)) {
      return Status::InvalidArgument("truncated event: '" + line + "'");
    }
    return Status::Ok();
  };

  if (word == "op") {
    e.kind = Kind::kOp;
    std::string opword;
    REPDIR_RETURN_IF_ERROR(want(opword));
    REPDIR_ASSIGN_OR_RETURN(e.op, ParseOp(opword));
    REPDIR_RETURN_IF_ERROR(want(e.key_index));
    REPDIR_RETURN_IF_ERROR(want(e.value_salt));
  } else if (word == "crash") {
    e.kind = Kind::kCrash;
    REPDIR_RETURN_IF_ERROR(want(e.a));
    std::string torn_word;
    if (in >> torn_word) {
      if (torn_word != "torn") {
        return Status::InvalidArgument("bad crash suffix: '" + line + "'");
      }
      e.torn = true;
      REPDIR_RETURN_IF_ERROR(want(e.torn_keep));
    }
  } else if (word == "recover") {
    e.kind = Kind::kRecover;
    REPDIR_RETURN_IF_ERROR(want(e.a));
  } else if (word == "cut") {
    e.kind = Kind::kPartition;
    REPDIR_RETURN_IF_ERROR(want(e.a));
    REPDIR_RETURN_IF_ERROR(want(e.b));
  } else if (word == "cut1") {
    e.kind = Kind::kPartitionOneWay;
    REPDIR_RETURN_IF_ERROR(want(e.a));
    REPDIR_RETURN_IF_ERROR(want(e.b));
  } else if (word == "heal") {
    e.kind = Kind::kHeal;
    REPDIR_RETURN_IF_ERROR(want(e.a));
    REPDIR_RETURN_IF_ERROR(want(e.b));
  } else if (word == "healall") {
    e.kind = Kind::kHealAll;
  } else if (word == "link") {
    e.kind = Kind::kSetLink;
    std::uint32_t drop_pct = 0;
    std::uint32_t dup_pct = 0;
    REPDIR_RETURN_IF_ERROR(want(e.a));
    REPDIR_RETURN_IF_ERROR(want(e.b));
    REPDIR_RETURN_IF_ERROR(want(e.link.base_latency));
    REPDIR_RETURN_IF_ERROR(want(e.link.jitter));
    REPDIR_RETURN_IF_ERROR(want(drop_pct));
    REPDIR_RETURN_IF_ERROR(want(dup_pct));
    e.link.drop_probability = drop_pct / 100.0;
    e.link.duplicate_probability = dup_pct / 100.0;
  } else if (word == "ckpt") {
    e.kind = Kind::kCheckpoint;
    REPDIR_RETURN_IF_ERROR(want(e.a));
  } else {
    return Status::InvalidArgument("unknown event '" + word + "'");
  }
  return e;
}

std::string ScheduleToString(const Schedule& schedule) {
  std::string out;
  for (const auto& e : schedule) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

Result<Schedule> ParseSchedule(const std::string& text) {
  Schedule schedule;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    REPDIR_ASSIGN_OR_RETURN(ChaosEvent e, ChaosEvent::Parse(line));
    schedule.push_back(std::move(e));
  }
  return schedule;
}

}  // namespace repdir::chaos
