#include "chaos/invariants.h"

#include <algorithm>
#include <set>

namespace repdir::chaos {

using rep::QuorumConfig;
using storage::RepKey;
using storage::StoredEntry;

namespace {

std::string Describe(const EffectiveState& s) {
  if (!s.present) return "absent@v" + std::to_string(s.version);
  return "'" + s.value + "'@v" + std::to_string(s.version);
}

/// All user keys appearing in any scan, plus all model keys. Keys neither
/// stored anywhere nor in the model answer "absent" from every replica and
/// cannot disagree, so this set is exhaustive for quorum agreement.
std::set<UserKey> InterestingKeys(const ScanMap& scans, const Model& model) {
  std::set<UserKey> keys;
  for (const auto& [node, scan] : scans) {
    for (const auto& e : scan) {
      if (e.key.is_user()) keys.insert(e.key.user());
    }
  }
  for (const auto& [key, value] : model) keys.insert(key);
  return keys;
}

struct ReplicaView {
  NodeId node = kInvalidNode;
  Votes votes = 0;
  EffectiveState state;
};

/// Effective states of `key` on every configured replica, in config order.
Result<std::vector<ReplicaView>> ViewsOf(const QuorumConfig& config,
                                         const ScanMap& scans,
                                         const UserKey& key) {
  std::vector<ReplicaView> views;
  views.reserve(config.replicas().size());
  for (const auto& replica : config.replicas()) {
    const auto it = scans.find(replica.node);
    if (it == scans.end()) {
      return Status::InvalidArgument("no scan for configured node " +
                                     std::to_string(replica.node));
    }
    views.push_back(
        {replica.node, replica.votes, EffectiveStateOf(it->second, key)});
  }
  return views;
}

/// Whether this replica state, winning a read quorum, would contradict the
/// model for this key.
bool Contradicts(const EffectiveState& s, bool model_present,
                 const Value& model_value) {
  if (s.present != model_present) return true;
  return s.present && s.value != model_value;
}

Status CheckKeyAgreement(const QuorumConfig& config, const UserKey& key,
                         const std::vector<ReplicaView>& views,
                         const Model& model) {
  const auto it = model.find(key);
  const bool model_present = it != model.end();
  const Value model_value = model_present ? it->second : Value{};

  // Case 1 - a stale answer can win: take the contradicting replica with
  // the highest version v*. Every replica strictly below v* can join its
  // quorum without outvoting it (contradicting replicas AT v* can too).
  // If that coalition reaches R votes, some legal read quorum answers
  // wrongly; if not, every read quorum contains a correct replica at
  // version >= v*, and the highest version wins (Fig. 8). Weak replicas
  // contribute 0 votes but may sit in any quorum - adding them never
  // helps the coalition, so votes stay the decision criterion.
  bool any_bad = false;
  Version bad_max = kLowestVersion;
  for (const auto& v : views) {
    if (Contradicts(v.state, model_present, model_value)) {
      any_bad = true;
      bad_max = std::max(bad_max, v.state.version);
    }
  }
  if (any_bad) {
    Votes coalition = 0;
    std::string members;
    for (const auto& v : views) {
      const bool bad = Contradicts(v.state, model_present, model_value);
      if (v.state.version < bad_max || (bad && v.state.version == bad_max)) {
        coalition += v.votes;
        members += (members.empty() ? "" : ",") + std::to_string(v.node);
      }
    }
    if (coalition >= config.read_quorum()) {
      return Status::Corruption(
          "quorum agreement violated for key \"" + key + "\": replicas {" +
          members + "} muster " + std::to_string(coalition) +
          " votes >= R=" + std::to_string(config.read_quorum()) +
          " yet their winning answer (v" + std::to_string(bad_max) +
          ") contradicts the model (" +
          (model_present ? "'" + model_value + "'" : std::string("absent")) +
          ")");
    }
  }

  // Case 2 - ambiguity: two replicas at the same effective version that
  // disagree on (presence, value). A read quorum whose maximum version is
  // that version has no single winner; it exists iff the replicas at or
  // below that version muster R votes.
  for (std::size_t i = 0; i < views.size(); ++i) {
    for (std::size_t j = i + 1; j < views.size(); ++j) {
      const EffectiveState& a = views[i].state;
      const EffectiveState& b = views[j].state;
      if (a.version != b.version) continue;
      if (a.present == b.present && (!a.present || a.value == b.value)) {
        continue;
      }
      Votes below = 0;
      for (const auto& v : views) {
        if (v.state.version <= a.version) below += v.votes;
      }
      if (below >= config.read_quorum()) {
        return Status::Corruption(
            "ambiguous quorum for key \"" + key + "\": nodes " +
            std::to_string(views[i].node) + " (" + Describe(a) + ") and " +
            std::to_string(views[j].node) + " (" + Describe(b) +
            ") tie at version " + std::to_string(a.version) +
            " inside a reachable read quorum");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

EffectiveState EffectiveStateOf(const Scan& scan, const UserKey& key) {
  const RepKey k = RepKey::User(key);
  EffectiveState out;
  // The scan is key-ordered: the entry at k wins; otherwise the greatest
  // entry below k owns the gap that covers k.
  const StoredEntry* floor = nullptr;
  for (const auto& e : scan) {
    if (e.key == k) {
      out.present = true;
      out.version = e.version;
      out.value = e.value;
      return out;
    }
    if (e.key < k && (floor == nullptr || floor->key < e.key)) floor = &e;
  }
  out.present = false;
  out.version = floor != nullptr ? floor->gap_after : kLowestVersion;
  return out;
}

Status CheckScanWellFormed(const Scan& scan) {
  if (scan.size() < 2) {
    return Status::Corruption("scan has " + std::to_string(scan.size()) +
                              " entries; sentinels missing");
  }
  if (!scan.front().key.is_low()) {
    return Status::Corruption("scan does not start at LOW");
  }
  if (!scan.back().key.is_high()) {
    return Status::Corruption("scan does not end at HIGH");
  }
  for (std::size_t i = 1; i + 1 < scan.size(); ++i) {
    if (!scan[i].key.is_user()) {
      return Status::Corruption("interior entry " + std::to_string(i) +
                                " is a sentinel");
    }
  }
  for (std::size_t i = 1; i < scan.size(); ++i) {
    if (!(scan[i - 1].key < scan[i].key)) {
      return Status::Corruption("keys not strictly increasing at index " +
                                std::to_string(i) + ": " +
                                scan[i - 1].key.ToString() + " then " +
                                scan[i].key.ToString());
    }
  }
  return Status::Ok();
}

Status CheckAllWellFormed(const ScanMap& scans) {
  for (const auto& [node, scan] : scans) {
    const Status st = CheckScanWellFormed(scan);
    if (!st.ok()) {
      return Status::Corruption("node " + std::to_string(node) + ": " +
                                st.message());
    }
  }
  return Status::Ok();
}

Status CheckVersionCoherence(const ScanMap& scans) {
  // Per user key: effective version -> (who, state). Entry states and
  // gap-derived absent states share one version space per key; committed
  // history gives each version exactly one meaning.
  std::set<UserKey> keys;
  for (const auto& [node, scan] : scans) {
    for (const auto& e : scan) {
      if (e.key.is_user()) keys.insert(e.key.user());
    }
  }
  for (const auto& key : keys) {
    std::map<Version, std::pair<NodeId, EffectiveState>> seen;
    for (const auto& [node, scan] : scans) {
      const EffectiveState s = EffectiveStateOf(scan, key);
      const auto [it, inserted] = seen.try_emplace(s.version, node, s);
      if (inserted) continue;
      const EffectiveState& prior = it->second.second;
      if (prior.present != s.present ||
          (s.present && prior.value != s.value)) {
        return Status::Corruption(
            "version incoherence for key \"" + key + "\" at version " +
            std::to_string(s.version) + ": node " +
            std::to_string(it->second.first) + " has " + Describe(prior) +
            " but node " + std::to_string(node) + " has " + Describe(s));
      }
    }
  }
  return Status::Ok();
}

Status CheckQuorumAgreement(const QuorumConfig& config, const ScanMap& scans,
                            const Model& model) {
  for (const auto& key : InterestingKeys(scans, model)) {
    REPDIR_ASSIGN_OR_RETURN(const auto views, ViewsOf(config, scans, key));
    REPDIR_RETURN_IF_ERROR(CheckKeyAgreement(config, key, views, model));
  }
  return Status::Ok();
}

Status CheckQuorumAgreementExhaustive(const QuorumConfig& config,
                                      const ScanMap& scans,
                                      const Model& model) {
  const auto& replicas = config.replicas();
  const std::size_t n = replicas.size();
  if (n > 16) {
    return Status::InvalidArgument(
        "exhaustive check is exponential; use CheckQuorumAgreement");
  }
  for (const auto& key : InterestingKeys(scans, model)) {
    REPDIR_ASSIGN_OR_RETURN(const auto views, ViewsOf(config, scans, key));
    const auto it = model.find(key);
    const bool model_present = it != model.end();
    for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
      Votes votes = 0;
      bool first = true;
      bool ambiguous = false;
      EffectiveState best;
      for (std::size_t i = 0; i < n; ++i) {
        if (!(mask & (1u << i))) continue;
        votes += replicas[i].votes;
        const EffectiveState& s = views[i].state;
        if (first || s.version > best.version) {
          best = s;
          ambiguous = false;
          first = false;
        } else if (s.version == best.version &&
                   (s.present != best.present ||
                    (s.present && s.value != best.value))) {
          ambiguous = true;
        }
      }
      if (votes < config.read_quorum()) continue;
      if (ambiguous) {
        return Status::Corruption("quorum mask " + std::to_string(mask) +
                                  " ambiguous for key \"" + key + "\"");
      }
      if (best.present != model_present ||
          (best.present && best.value != it->second)) {
        return Status::Corruption(
            "quorum mask " + std::to_string(mask) + " answers " +
            Describe(best) + " for key \"" + key + "\" but model says " +
            (model_present ? "'" + it->second + "'" : std::string("absent")));
      }
    }
  }
  return Status::Ok();
}

Status CheckAll(const QuorumConfig& config, const ScanMap& scans,
                const Model& model) {
  REPDIR_RETURN_IF_ERROR(CheckAllWellFormed(scans));
  REPDIR_RETURN_IF_ERROR(CheckVersionCoherence(scans));
  return CheckQuorumAgreement(config, scans, model);
}

}  // namespace repdir::chaos
