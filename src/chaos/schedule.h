// Chaos schedules: explicit, replayable sequences of fault and workload
// events for a simulated deployment.
//
// A schedule is data, not code: the campaign generator derives one
// deterministically from (scenario, seed), the executor replays it
// mechanically, the shrinker deletes events from it, and the text form
// round-trips so a failing schedule printed by the campaign CLI can be
// replayed verbatim with --replay.
//
// Text form: one event per line.
//   op <insert|update|delete|lookup|next> <key_index> <value_salt>
//   crash <node>               crash, losing the unflushed WAL tail
//   crash <node> torn <bytes>  ...with <bytes> of the tail torn onto disk
//   recover <node>             restart, replay WAL, resolve in-doubt
//   cut <a> <b>                symmetric partition between a and b
//   cut1 <from> <to>           one-way partition (from -> to drops only)
//   heal <a> <b>               heal both directions between a and b
//   healall                    heal every partition
//   link <from> <to> <latency_us> <jitter_us> <drop_pct> <dup_pct>
//   ckpt <node>                write a WAL checkpoint on the node
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/network_model.h"

namespace repdir::chaos {

struct ChaosEvent {
  enum class Kind : std::uint8_t {
    kOp,
    kCrash,
    kRecover,
    kPartition,
    kPartitionOneWay,
    kHeal,
    kHealAll,
    kSetLink,
    kCheckpoint,
  };
  enum class OpKind : std::uint8_t {
    kInsert,
    kUpdate,
    kDelete,
    kLookup,
    kNextKey,
  };

  Kind kind = Kind::kOp;

  // kOp: which directory operation against which key. The key is an index
  // into the scenario's key space; the value written is derived from
  // value_salt, so replays produce byte-identical directories.
  OpKind op = OpKind::kLookup;
  std::uint32_t key_index = 0;
  std::uint32_t value_salt = 0;

  // kCrash/kRecover/kCheckpoint: a. kPartition/kHeal/kSetLink: a and b.
  NodeId a = 0;
  NodeId b = 0;

  // kCrash: torn-tail variant.
  bool torn = false;
  std::uint32_t torn_keep = 0;

  // kSetLink: drop/duplicate/latency override for the a -> b direction.
  sim::LinkSpec link;

  std::string ToString() const;
  static Result<ChaosEvent> Parse(const std::string& line);
};

using Schedule = std::vector<ChaosEvent>;

/// One event per line, blank line terminated.
std::string ScheduleToString(const Schedule& schedule);

/// Inverse of ScheduleToString; skips blank lines and '#' comments.
Result<Schedule> ParseSchedule(const std::string& text);

}  // namespace repdir::chaos
