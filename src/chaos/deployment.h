// A complete in-process directory-suite deployment on the deterministic
// transport: N representatives, the network fault model, and suite-client
// factories. This is the substrate both the gtest harnesses (see
// tests/rep/suite_harness.h) and the chaos campaign executor run on.
#pragma once

#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "chaos/invariants.h"
#include "net/inproc_transport.h"
#include "rep/dir_rep_node.h"
#include "rep/dir_suite.h"
#include "sim/network_model.h"

namespace repdir::chaos {

class Deployment {
 public:
  /// The node id campaign clients identify as on the transport (distinct
  /// from every representative id; topologies use ids 1..n).
  static constexpr NodeId kClientNode = 100;

  explicit Deployment(rep::QuorumConfig config,
                      rep::DirRepNodeOptions node_options =
                          DefaultNodeOptions(),
                      std::uint64_t network_seed = 99)
      : config_(std::move(config)),
        network_(network_seed),
        transport_(&clock_, &network_) {
    for (const auto& replica : config_.replicas()) {
      nodes_.push_back(
          std::make_unique<rep::DirRepNode>(replica.node, node_options));
      transport_.RegisterNode(replica.node, nodes_.back()->server());
    }
  }

  /// Representatives in the deterministic simulator run one transaction at
  /// a time, so conflicts indicate bugs: use non-blocking locks to fail
  /// fast instead of deadlocking the single thread.
  static rep::DirRepNodeOptions DefaultNodeOptions() {
    rep::DirRepNodeOptions options;
    options.participant.blocking_locks = false;
    return options;
  }

  /// A suite client with an explicit policy (pass nullptr for the default
  /// seeded random policy). The version cache defaults OFF so deterministic
  /// scenario tests keep their exact message flows; cache-specific runs
  /// opt in via `enable_cache`.
  std::unique_ptr<rep::DirectorySuite> NewSuite(
      NodeId client_node, std::unique_ptr<rep::QuorumPolicy> policy = nullptr,
      std::uint64_t seed = 42, bool enable_cache = false) {
    rep::SuiteOptions options;
    options.config = config_;
    options.policy = std::move(policy);
    options.policy_seed = seed;
    options.enable_version_cache = enable_cache;
    return NewSuiteWithOptions(client_node, std::move(options));
  }

  /// A suite client with fully caller-controlled options (the config is
  /// overwritten with the deployment's).
  std::unique_ptr<rep::DirectorySuite> NewSuiteWithOptions(
      NodeId client_node, rep::SuiteOptions options) {
    options.config = config_;
    return std::make_unique<rep::DirectorySuite>(transport_, client_node,
                                                 std::move(options));
  }

  rep::DirRepNode& node(NodeId id) {
    for (auto& n : nodes_) {
      if (n->id() == id) return *n;
    }
    std::abort();
  }

  const rep::QuorumConfig& config() const { return config_; }
  sim::NetworkModel& network() { return network_; }
  net::InProcTransport& transport() { return transport_; }

  /// The deployment's virtual clock, advanced by the transport's modeled
  /// link latency. Latency-aware runs hand a MetricsRegistry on this clock
  /// to their suite so scoreboard measurements are deterministic.
  VirtualClock& clock() { return clock_; }

  /// Storage snapshots of every representative, for the invariant checks.
  ScanMap Scans() const {
    ScanMap scans;
    for (const auto& n : nodes_) scans[n->id()] = n->storage().Scan();
    return scans;
  }

  /// All user entries of a representative as a dump string, for scenario
  /// assertions and failure reports.
  std::string Dump(NodeId id) { return storage::DumpRep(node(id).storage()); }

 private:
  rep::QuorumConfig config_;
  VirtualClock clock_;  ///< Declared before transport_ (handed to its ctor).
  sim::NetworkModel network_;
  net::InProcTransport transport_;
  std::vector<std::unique_ptr<rep::DirRepNode>> nodes_;
};

}  // namespace repdir::chaos
