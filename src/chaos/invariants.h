// Whole-deployment invariant checks over replica scans.
//
// The checks take raw `RepStorage::Scan()` snapshots keyed by node, so the
// same library verifies an in-process simulated deployment (scans taken
// directly) and a multi-process cluster (scans shipped over RPC by the
// chaos cluster driver). Everything is Status-based and gtest-free; the
// gtest wrappers in tests/rep/invariants.h adapt these for EXPECT_TRUE.
//
// Checked properties:
//   * Structural soundness: sentinels bound every scan, keys strictly
//     increase, interior keys are user keys (mirrors
//     storage::CheckRepInvariants, but works on a detached scan).
//   * Version coherence: per-key version numbers name committed states, so
//     two replicas holding the same key at the same effective version must
//     agree exactly on presence and value (ghosts and stale gaps included).
//   * Quorum agreement: EVERY possible read quorum must answer every
//     interesting key with the committed model state (the paper's central
//     correctness property - Fig. 8: highest version wins). Verified with
//     an exact O(replicas) per-key criterion, so 31-replica suites are
//     checked completely without enumerating 2^31 vote sets; the brute
//     force enumeration is retained for cross-validation on small suites.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rep/quorum.h"
#include "storage/stored_entry.h"

namespace repdir::chaos {

/// One replica's full scan, sentinels included, in key order.
using Scan = std::vector<storage::StoredEntry>;

/// Scans of a whole deployment, keyed by node id.
using ScanMap = std::map<NodeId, Scan>;

/// The committed directory contents (the oracle the run maintains).
using Model = std::map<UserKey, Value>;

/// What one replica would answer for a key by direct state inspection:
/// the entry itself when stored, otherwise the covering gap's version with
/// present=false (Fig. 8's per-replica reply).
struct EffectiveState {
  bool present = false;
  Version version = kLowestVersion;
  Value value;
};

/// Computes the effective state of `key` from a well-formed scan.
EffectiveState EffectiveStateOf(const Scan& scan, const UserKey& key);

/// Structural soundness of one replica scan.
Status CheckScanWellFormed(const Scan& scan);

/// CheckScanWellFormed over every replica.
Status CheckAllWellFormed(const ScanMap& scans);

/// Same key + same effective version must mean the same committed state on
/// every pair of replicas (presence and value both).
Status CheckVersionCoherence(const ScanMap& scans);

/// Every read quorum of `config` agrees with `model` on every interesting
/// key (keys stored on any replica plus all model keys). Exact: linear in
/// replicas per key, no quorum enumeration.
Status CheckQuorumAgreement(const rep::QuorumConfig& config,
                            const ScanMap& scans, const Model& model);

/// Brute-force cross-validation of CheckQuorumAgreement: enumerates every
/// vote-sufficient replica subset. Only callable for <= 16 replicas.
Status CheckQuorumAgreementExhaustive(const rep::QuorumConfig& config,
                                      const ScanMap& scans,
                                      const Model& model);

/// All of the above, first failure wins.
Status CheckAll(const rep::QuorumConfig& config, const ScanMap& scans,
                const Model& model);

}  // namespace repdir::chaos
