// Chaos campaigns: seeded generation, deterministic execution, shrinking,
// and batch sweeps of fault schedules against in-process deployments.
//
// A scenario fixes the shape of a run (topology, cache setting, event mix);
// (scenario, seed) deterministically generates a Schedule; RunSchedule
// replays any schedule - generated or hand-written - against a fresh
// deployment while maintaining a committed-ops model, and verdicts the run
// with the chaos/invariants.h checks after a final convergence barrier
// (heal everything, crash + recover + resolve every node). A failing seed
// is shrunk with ddmin to a minimal schedule that still fails, which the
// campaign CLI prints in replayable text form.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/schedule.h"
#include "rep/quorum.h"

namespace repdir::chaos {

/// A parameterized topology: replica i+1 holds votes[i] (0 = weak).
struct TopologySpec {
  std::vector<Votes> votes;
  Votes read_quorum = 0;
  Votes write_quorum = 0;

  /// Replicas on nodes 1..n.
  rep::QuorumConfig Config() const;
};

struct ScenarioSpec {
  std::string name;
  TopologySpec topology;
  bool enable_cache = false;
  std::uint32_t steps = 400;
  std::uint32_t key_space = 24;

  /// >1: the deployment is range-partitioned into this many shards, each a
  /// full replica set of `topology` on its own node ids (shard s+1 on
  /// s*stride+1..), fronted by one ShardedDirectory router. The keyspace is
  /// fenced at KeyName(s*key_space/shards); ops and batches route (and
  /// cross-shard batches two-phase-commit) through the router, crash
  /// viability is per shard, and the final checks verify each shard's
  /// replica set against the model slice of its range PLUS a stitched full
  /// scan against the whole model.
  std::uint32_t shards = 1;

  /// >1: the executor groups up to this many consecutive batchable ops
  /// (insert/update/lookup) into one SuiteTxn::ExecuteBatch - one read
  /// wave, one write wave, one 2PC, one group-committed flush for the
  /// whole group. Deletes, scans, and fault events flush the group first,
  /// so event order is preserved. The committed-ops model still advances
  /// op by op; a transaction-level failure must leave it untouched.
  std::uint32_t batch_size = 1;

  /// >0: an anti-entropy pass (rep::Reconciler::RunOnce over every replica
  /// set) runs after each window of this many schedule events, and once
  /// more after the final convergence barrier. Repairs ride ordinary
  /// transactions, so a pass racing the schedule's faults must never
  /// disturb the committed-ops model - that is exactly what the run
  /// verdicts.
  std::uint32_t reconcile_every = 0;

  /// Enables the latency-aware layer in the run's suite client: the
  /// AdaptiveQuorumPolicy over a node scoreboard plus hedged single-shot
  /// read inquiries. The suite gets a private MetricsRegistry on the
  /// deployment's virtual clock, so scoreboard measurements (and thus the
  /// preference orders) replay deterministically. The invariants don't
  /// change: ANY R-vote quorum the planner picks must stay correct.
  bool adaptive = false;

  /// >0: links between the clients and this representative carry
  /// `slow_latency_us` one-way virtual latency from the start of the run -
  /// a persistent straggler the adaptive planner should learn to avoid
  /// (and hedge around) without ever violating an invariant.
  NodeId slow_node = 0;
  DurationMicros slow_latency_us = 0;

  /// Sharded runs only: at the schedule midpoint the executor starts an
  /// online split of shard 1 and crashes the manager right after the copy
  /// step (both replica sets hold the moving range, the map still routes
  /// it to the source), injects a partition, runs a reconciler pass over
  /// the half-migrated deployment, heals, and resumes the split with a
  /// successor manager. The final checks then hold all three shards to
  /// the model.
  bool split_during_run = false;

  // Per-step fault mix; the remainder (roughly 3/4) is directory
  // operations. The generator respects quorum viability: it never crashes
  // a node if the surviving voters could not muster max(R, W) votes.
  double p_crash = 0.03;
  double p_recover = 0.06;
  double p_partition = 0.04;
  double p_one_way = 0.03;
  double p_heal = 0.06;
  double p_heal_all = 0.01;
  double p_set_link = 0.03;
  double p_checkpoint = 0.02;
  double torn_fraction = 0.3;  ///< Fraction of crashes with a torn tail.
};

/// Deterministic: same (spec, seed) always yields the same schedule.
Schedule GenerateSchedule(const ScenarioSpec& spec, std::uint64_t seed);

struct RunOutcome {
  /// OK, or the first model/invariant violation (message names the event).
  Status verdict = Status::Ok();
  /// Committed-ops model at the end of the run.
  Model committed;

  std::uint64_t ops_attempted = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t ops_rejected = 0;  ///< Correct kAlreadyExists / kNotFound.
  std::uint64_t ops_unavailable = 0;
  std::uint64_t ops_aborted = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t checkpoints = 0;

  bool ok() const { return verdict.ok(); }
};

/// Replays `schedule` against a fresh deployment of `spec`'s topology.
/// `seed` seeds the suite's quorum policy and value derivation - replaying
/// the same (spec, schedule, seed) is bit-deterministic.
RunOutcome RunSchedule(const ScenarioSpec& spec, const Schedule& schedule,
                       std::uint64_t seed);

/// ddmin: greedily deletes event chunks while `still_fails` holds,
/// returning a (locally) minimal failing schedule.
Schedule ShrinkSchedule(const Schedule& failing,
                        const std::function<bool(const Schedule&)>& still_fails);

struct SeedReport {
  std::uint64_t seed = 0;
  std::string verdict;  ///< Violation text.
  Schedule shrunk;      ///< Minimal failing schedule (empty if no shrink).
};

struct ScenarioReport {
  std::string scenario;
  std::string topology;
  std::uint32_t seeds_run = 0;
  std::uint32_t seeds_failed = 0;
  std::uint64_t ops_attempted = 0;
  std::uint64_t ops_committed = 0;
  std::uint64_t ops_rejected = 0;
  std::uint64_t ops_unavailable = 0;
  std::uint64_t ops_aborted = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t checkpoints = 0;
  std::vector<SeedReport> failures;
};

struct CampaignReport {
  std::vector<ScenarioReport> scenarios;
  bool AllPassed() const;
  std::string ToJson() const;
};

struct CampaignOptions {
  std::uint64_t seed_base = 1;
  std::uint32_t seeds_per_scenario = 50;
  bool shrink_failures = true;
  /// Progress callback (one line per finished seed batch); may be null.
  std::function<void(const std::string&)> progress;
};

CampaignReport RunCampaign(const std::vector<ScenarioSpec>& scenarios,
                           const CampaignOptions& options);

/// The stock scenario set the campaign CLI and tests sweep: topologies from
/// 3 to 31 replicas, uniform and weighted votes, a weak replica, and a
/// version-cache-enabled run.
std::vector<ScenarioSpec> BuiltinScenarios();

/// Builtin scenario by name; InvalidArgument lists the known names.
Result<ScenarioSpec> FindScenario(const std::string& name);

}  // namespace repdir::chaos
