#include "storage/range_digest.h"

#include <algorithm>
#include <cassert>

namespace repdir::storage {

namespace {

/// FNV-1a 64-bit, mixed field-by-field. Lengths are mixed alongside string
/// bytes so ("ab","c") and ("a","bc") cannot collide structurally.
class Mixer {
 public:
  void MixU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void MixBytes(const std::string& s) {
    MixU64(s.size());
    for (const char c : s) MixByte(static_cast<std::uint8_t>(c));
  }
  void MixKey(const RepKey& k) {
    MixByte(static_cast<std::uint8_t>(k.kind()));
    MixBytes(k.is_user() ? k.user() : std::string());
  }
  std::uint64_t value() const { return h_; }

 private:
  void MixByte(std::uint8_t b) {
    h_ ^= b;
    h_ *= 1099511628211ULL;
  }
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Mixes one entry of segment (low, high] into `m`: key, version, value,
/// and the trailing gap version unless the entry sits exactly at `high`
/// (that gap belongs to the next segment).
void MixEntry(Mixer& m, const StoredEntry& e, const RepKey& high) {
  m.MixKey(e.key);
  m.MixU64(e.version);
  m.MixBytes(e.value);
  if (e.key != high) m.MixU64(e.gap_after);
}

/// User entries with low < key <= high, in key order.
std::vector<StoredEntry> EntriesIn(const RepStorage& stg, const RepKey& low,
                                   const RepKey& high) {
  std::vector<StoredEntry> out;
  StoredEntry cur = stg.StrictSuccessor(low);
  while (!cur.key.is_high() && cur.key <= high) {
    out.push_back(cur);
    cur = stg.StrictSuccessor(cur.key);
  }
  return out;
}

}  // namespace

RangeDigest DigestOf(const RepStorage& stg, const RepKey& low,
                     const RepKey& high) {
  assert(low < high);
  RangeDigest d;
  d.low = low;
  d.high = high;
  Mixer m;
  m.MixU64(stg.Floor(low).gap_after);
  StoredEntry cur = stg.StrictSuccessor(low);
  while (!cur.key.is_high() && cur.key <= high) {
    MixEntry(m, cur, high);
    ++d.count;
    cur = stg.StrictSuccessor(cur.key);
  }
  d.hash = m.value();
  return d;
}

std::vector<RangeDigest> SplitDigest(const RepStorage& stg, const RepKey& low,
                                     const RepKey& high,
                                     std::uint32_t fanout) {
  assert(low < high);
  assert(fanout >= 1);
  const std::vector<StoredEntry> entries = EntriesIn(stg, low, high);
  const std::size_t n = entries.size();
  std::vector<RangeDigest> children;
  if (n < 2 || fanout < 2) {
    children.push_back(DigestOf(stg, low, high));
    return children;
  }
  const std::size_t chunk = (n + fanout - 1) / fanout;
  RepKey child_low = low;
  Version child_low_gap = stg.Floor(low).gap_after;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    RangeDigest d;
    d.low = child_low;
    // The last chunk stretches to the parent bound so the trailing gap
    // region past the final entry stays covered.
    d.high = end == n ? high : entries[end - 1].key;
    Mixer m;
    m.MixU64(child_low_gap);
    for (std::size_t i = begin; i < end; ++i) {
      MixEntry(m, entries[i], d.high);
      ++d.count;
    }
    d.hash = m.value();
    children.push_back(std::move(d));
    child_low = entries[end - 1].key;
    child_low_gap = entries[end - 1].gap_after;
  }
  return children;
}

SegmentState CollectSegment(const RepStorage& stg, const RepKey& low,
                            const RepKey& high) {
  assert(low < high);
  SegmentState s;
  s.low_gap = stg.Floor(low).gap_after;
  if (low.is_user()) {
    s.low_entry = stg.Get(low);
  }
  s.entries = EntriesIn(stg, low, high);
  return s;
}

}  // namespace repdir::storage
