#include "storage/btree_storage.h"

#include <algorithm>
#include <cassert>

namespace repdir::storage {

namespace {
struct Row {
  Version version;
  Value value;
  Version gap_after;
};
}  // namespace

struct BTreeStorage::Node {
  explicit Node(bool is_leaf) : leaf(is_leaf) {}
  virtual ~Node() = default;
  bool leaf;
};

struct BTreeStorage::Leaf final : Node {
  Leaf() : Node(true) {}
  std::vector<RepKey> keys;
  std::vector<Row> rows;
  Leaf* prev = nullptr;
  Leaf* next = nullptr;
};

struct BTreeStorage::Internal final : Node {
  Internal() : Node(false) {}
  std::vector<RepKey> seps;  // size == children.size() - 1
  std::vector<std::unique_ptr<Node>> children;
};

namespace {

inline BTreeStorage::Leaf* LeafOf(BTreeStorage::Node* n) {
  assert(n->leaf);
  return static_cast<BTreeStorage::Leaf*>(n);
}
inline const BTreeStorage::Leaf* LeafOf(const BTreeStorage::Node* n) {
  assert(n->leaf);
  return static_cast<const BTreeStorage::Leaf*>(n);
}
inline BTreeStorage::Internal* InternalOf(BTreeStorage::Node* n) {
  assert(!n->leaf);
  return static_cast<BTreeStorage::Internal*>(n);
}
inline const BTreeStorage::Internal* InternalOf(const BTreeStorage::Node* n) {
  assert(!n->leaf);
  return static_cast<const BTreeStorage::Internal*>(n);
}

/// Index of the child subtree that covers key `k`.
inline std::size_t ChildIndex(const BTreeStorage::Internal* node,
                              const RepKey& k) {
  const auto it =
      std::upper_bound(node->seps.begin(), node->seps.end(), k);
  return static_cast<std::size_t>(it - node->seps.begin());
}

inline StoredEntry MakeEntry(const RepKey& k, const Row& r) {
  return StoredEntry{k, r.version, r.value, r.gap_after};
}

struct SplitResult {
  RepKey sep;
  std::unique_ptr<BTreeStorage::Node> right;
};

}  // namespace

BTreeStorage::BTreeStorage(int max_keys)
    : max_keys_(std::max(max_keys, 3)), min_keys_(max_keys_ / 2) {
  Clear();
}

BTreeStorage::~BTreeStorage() = default;

void BTreeStorage::Clear() {
  auto leaf = std::make_unique<Leaf>();
  leaf->keys = {RepKey::Low(), RepKey::High()};
  leaf->rows = {Row{kLowestVersion, {}, kLowestVersion},
                Row{kLowestVersion, {}, kLowestVersion}};
  root_ = std::move(leaf);
  size_ = 2;
}

BTreeStorage::Leaf* BTreeStorage::FindLeaf(const RepKey& k) const {
  Node* n = root_.get();
  while (!n->leaf) {
    Internal* in = InternalOf(n);
    n = in->children[ChildIndex(in, k)].get();
  }
  return LeafOf(n);
}

std::optional<StoredEntry> BTreeStorage::Get(const RepKey& k) const {
  const Leaf* leaf = FindLeaf(k);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), k);
  if (it == leaf->keys.end() || *it != k) return std::nullopt;
  const auto idx = static_cast<std::size_t>(it - leaf->keys.begin());
  return MakeEntry(*it, leaf->rows[idx]);
}

StoredEntry BTreeStorage::Floor(const RepKey& k) const {
  const Leaf* leaf = FindLeaf(k);
  auto it = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), k);
  if (it == leaf->keys.begin()) {
    leaf = leaf->prev;
    assert(leaf != nullptr && "Floor below LOW");
    return MakeEntry(leaf->keys.back(), leaf->rows.back());
  }
  const auto idx = static_cast<std::size_t>(it - leaf->keys.begin()) - 1;
  return MakeEntry(leaf->keys[idx], leaf->rows[idx]);
}

StoredEntry BTreeStorage::StrictPredecessor(const RepKey& k) const {
  const Leaf* leaf = FindLeaf(k);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), k);
  if (it == leaf->keys.begin()) {
    leaf = leaf->prev;
    assert(leaf != nullptr && "StrictPredecessor of LOW");
    return MakeEntry(leaf->keys.back(), leaf->rows.back());
  }
  const auto idx = static_cast<std::size_t>(it - leaf->keys.begin()) - 1;
  return MakeEntry(leaf->keys[idx], leaf->rows[idx]);
}

StoredEntry BTreeStorage::StrictSuccessor(const RepKey& k) const {
  const Leaf* leaf = FindLeaf(k);
  auto it = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), k);
  if (it == leaf->keys.end()) {
    leaf = leaf->next;
    assert(leaf != nullptr && "StrictSuccessor of HIGH");
    return MakeEntry(leaf->keys.front(), leaf->rows.front());
  }
  const auto idx = static_cast<std::size_t>(it - leaf->keys.begin());
  return MakeEntry(leaf->keys[idx], leaf->rows[idx]);
}

namespace {

/// Recursive insert; returns a split to be absorbed by the parent when the
/// node overflowed.
std::optional<SplitResult> InsertRec(BTreeStorage::Node* n,
                                     const StoredEntry& e, int max_keys,
                                     bool& inserted_new) {
  if (n->leaf) {
    auto* leaf = LeafOf(n);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), e.key);
    const auto idx = static_cast<std::size_t>(it - leaf->keys.begin());
    if (it != leaf->keys.end() && *it == e.key) {
      leaf->rows[idx] = Row{e.version, e.value, e.gap_after};
      inserted_new = false;
      return std::nullopt;
    }
    inserted_new = true;
    leaf->keys.insert(it, e.key);
    leaf->rows.insert(leaf->rows.begin() + static_cast<std::ptrdiff_t>(idx),
                      Row{e.version, e.value, e.gap_after});
    if (leaf->keys.size() <= static_cast<std::size_t>(max_keys)) {
      return std::nullopt;
    }
    // Split: right half moves to a new leaf.
    const std::size_t half = leaf->keys.size() / 2;
    auto right = std::make_unique<BTreeStorage::Leaf>();
    right->keys.assign(leaf->keys.begin() + static_cast<std::ptrdiff_t>(half),
                       leaf->keys.end());
    right->rows.assign(leaf->rows.begin() + static_cast<std::ptrdiff_t>(half),
                       leaf->rows.end());
    leaf->keys.resize(half);
    leaf->rows.resize(half);
    right->next = leaf->next;
    right->prev = leaf;
    if (leaf->next != nullptr) leaf->next->prev = right.get();
    leaf->next = right.get();
    SplitResult split{right->keys.front(), std::move(right)};
    return split;
  }

  auto* in = InternalOf(n);
  const std::size_t idx = ChildIndex(in, e.key);
  auto child_split = InsertRec(in->children[idx].get(), e, max_keys,
                               inserted_new);
  if (!child_split) return std::nullopt;

  in->seps.insert(in->seps.begin() + static_cast<std::ptrdiff_t>(idx),
                  child_split->sep);
  in->children.insert(
      in->children.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
      std::move(child_split->right));
  if (in->seps.size() <= static_cast<std::size_t>(max_keys)) {
    return std::nullopt;
  }
  // Split internal node: middle separator moves up.
  const std::size_t mid = in->seps.size() / 2;
  auto right = std::make_unique<BTreeStorage::Internal>();
  SplitResult split;
  split.sep = in->seps[mid];
  right->seps.assign(in->seps.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
                     in->seps.end());
  for (std::size_t i = mid + 1; i < in->children.size(); ++i) {
    right->children.push_back(std::move(in->children[i]));
  }
  in->seps.resize(mid);
  in->children.resize(mid + 1);
  split.right = std::move(right);
  return split;
}

}  // namespace

void BTreeStorage::Put(const StoredEntry& e) {
  bool inserted_new = false;
  auto split = InsertRec(root_.get(), e, max_keys_, inserted_new);
  if (split) {
    auto new_root = std::make_unique<Internal>();
    new_root->seps.push_back(split->sep);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  if (inserted_new) ++size_;
}

namespace {

bool Underfull(const BTreeStorage::Node* n, int min_keys) {
  if (n->leaf) {
    return LeafOf(n)->keys.size() < static_cast<std::size_t>(min_keys);
  }
  return InternalOf(n)->seps.size() < static_cast<std::size_t>(min_keys);
}

bool HasSpare(const BTreeStorage::Node* n, int min_keys) {
  if (n->leaf) {
    return LeafOf(n)->keys.size() > static_cast<std::size_t>(min_keys);
  }
  return InternalOf(n)->seps.size() > static_cast<std::size_t>(min_keys);
}

/// Merges children[i+1] into children[i] of `parent`.
void MergeChildren(BTreeStorage::Internal* parent, std::size_t i) {
  BTreeStorage::Node* left = parent->children[i].get();
  BTreeStorage::Node* right = parent->children[i + 1].get();
  if (left->leaf) {
    auto* l = LeafOf(left);
    auto* r = LeafOf(right);
    l->keys.insert(l->keys.end(), r->keys.begin(), r->keys.end());
    l->rows.insert(l->rows.end(), r->rows.begin(), r->rows.end());
    l->next = r->next;
    if (r->next != nullptr) r->next->prev = l;
  } else {
    auto* l = InternalOf(left);
    auto* r = InternalOf(right);
    l->seps.push_back(parent->seps[i]);
    l->seps.insert(l->seps.end(), r->seps.begin(), r->seps.end());
    for (auto& c : r->children) l->children.push_back(std::move(c));
  }
  parent->seps.erase(parent->seps.begin() + static_cast<std::ptrdiff_t>(i));
  parent->children.erase(parent->children.begin() +
                         static_cast<std::ptrdiff_t>(i) + 1);
}

/// Fixes an underfull children[idx] by borrowing from a sibling or merging.
void Rebalance(BTreeStorage::Internal* parent, std::size_t idx,
               int min_keys) {
  BTreeStorage::Node* child = parent->children[idx].get();

  if (idx > 0 && HasSpare(parent->children[idx - 1].get(), min_keys)) {
    BTreeStorage::Node* left = parent->children[idx - 1].get();
    if (child->leaf) {
      auto* c = LeafOf(child);
      auto* l = LeafOf(left);
      c->keys.insert(c->keys.begin(), l->keys.back());
      c->rows.insert(c->rows.begin(), l->rows.back());
      l->keys.pop_back();
      l->rows.pop_back();
      parent->seps[idx - 1] = c->keys.front();
    } else {
      auto* c = InternalOf(child);
      auto* l = InternalOf(left);
      c->seps.insert(c->seps.begin(), parent->seps[idx - 1]);
      parent->seps[idx - 1] = l->seps.back();
      l->seps.pop_back();
      c->children.insert(c->children.begin(), std::move(l->children.back()));
      l->children.pop_back();
    }
    return;
  }

  if (idx + 1 < parent->children.size() &&
      HasSpare(parent->children[idx + 1].get(), min_keys)) {
    BTreeStorage::Node* right = parent->children[idx + 1].get();
    if (child->leaf) {
      auto* c = LeafOf(child);
      auto* r = LeafOf(right);
      c->keys.push_back(r->keys.front());
      c->rows.push_back(r->rows.front());
      r->keys.erase(r->keys.begin());
      r->rows.erase(r->rows.begin());
      parent->seps[idx] = r->keys.front();
    } else {
      auto* c = InternalOf(child);
      auto* r = InternalOf(right);
      c->seps.push_back(parent->seps[idx]);
      parent->seps[idx] = r->seps.front();
      r->seps.erase(r->seps.begin());
      c->children.push_back(std::move(r->children.front()));
      r->children.erase(r->children.begin());
    }
    return;
  }

  // No sibling can lend: merge with a neighbor.
  if (idx > 0) {
    MergeChildren(parent, idx - 1);
  } else {
    MergeChildren(parent, idx);
  }
}

void EraseRec(BTreeStorage::Node* n, const RepKey& k, int min_keys) {
  if (n->leaf) {
    auto* leaf = LeafOf(n);
    const auto it =
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), k);
    assert(it != leaf->keys.end() && *it == k && "Erase of absent key");
    const auto idx = static_cast<std::size_t>(it - leaf->keys.begin());
    leaf->keys.erase(it);
    leaf->rows.erase(leaf->rows.begin() + static_cast<std::ptrdiff_t>(idx));
    return;
  }
  auto* in = InternalOf(n);
  const std::size_t idx = ChildIndex(in, k);
  EraseRec(in->children[idx].get(), k, min_keys);
  if (Underfull(in->children[idx].get(), min_keys)) {
    Rebalance(in, idx, min_keys);
  }
}

}  // namespace

void BTreeStorage::Erase(const RepKey& k) {
  assert(k.is_user() && "cannot erase a sentinel");
  EraseRec(root_.get(), k, min_keys_);
  if (!root_->leaf) {
    auto* in = InternalOf(root_.get());
    if (in->children.size() == 1) {
      root_ = std::move(in->children.front());
    }
  }
  --size_;
}

void BTreeStorage::SetGapAfter(const RepKey& k, Version v) {
  Leaf* leaf = FindLeaf(k);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), k);
  assert(it != leaf->keys.end() && *it == k && "SetGapAfter of absent key");
  leaf->rows[static_cast<std::size_t>(it - leaf->keys.begin())].gap_after = v;
}

std::vector<StoredEntry> BTreeStorage::Scan() const {
  std::vector<StoredEntry> out;
  out.reserve(size_);
  const Node* n = root_.get();
  while (!n->leaf) n = InternalOf(n)->children.front().get();
  for (const Leaf* leaf = LeafOf(n); leaf != nullptr; leaf = leaf->next) {
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      out.push_back(MakeEntry(leaf->keys[i], leaf->rows[i]));
    }
  }
  return out;
}

std::size_t BTreeStorage::UserEntryCount() const { return size_ - 2; }

int BTreeStorage::Height() const {
  int h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = InternalOf(n)->children.front().get();
    ++h;
  }
  return h;
}

namespace {

struct CheckResult {
  bool ok;
  int depth;
};

CheckResult CheckRec(const BTreeStorage::Node* n, const RepKey* lo,
                     const RepKey* hi, bool is_root, int min_keys,
                     int max_keys, const BTreeStorage::Leaf*& expected_leaf) {
  if (n->leaf) {
    const auto* leaf = LeafOf(n);
    if (leaf != expected_leaf) return {false, 1};  // leaf chain broken
    expected_leaf = leaf->next;
    if (leaf->keys.size() != leaf->rows.size()) return {false, 1};
    if (!is_root && (leaf->keys.size() < static_cast<std::size_t>(min_keys) ||
                     leaf->keys.size() > static_cast<std::size_t>(max_keys))) {
      return {false, 1};
    }
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      if (i > 0 && !(leaf->keys[i - 1] < leaf->keys[i])) return {false, 1};
      if (lo != nullptr && leaf->keys[i] < *lo) return {false, 1};
      if (hi != nullptr && !(leaf->keys[i] < *hi)) return {false, 1};
    }
    return {true, 1};
  }

  const auto* in = InternalOf(n);
  if (in->children.size() != in->seps.size() + 1) return {false, 1};
  if (!is_root && (in->seps.size() < static_cast<std::size_t>(min_keys) ||
                   in->seps.size() > static_cast<std::size_t>(max_keys))) {
    return {false, 1};
  }
  for (std::size_t i = 1; i < in->seps.size(); ++i) {
    if (!(in->seps[i - 1] < in->seps[i])) return {false, 1};
  }
  int depth = -1;
  for (std::size_t i = 0; i < in->children.size(); ++i) {
    const RepKey* child_lo = (i == 0) ? lo : &in->seps[i - 1];
    const RepKey* child_hi = (i == in->seps.size()) ? hi : &in->seps[i];
    const CheckResult r =
        CheckRec(in->children[i].get(), child_lo, child_hi, false, min_keys,
                 max_keys, expected_leaf);
    if (!r.ok) return {false, 1};
    if (depth == -1) depth = r.depth;
    if (r.depth != depth) return {false, 1};  // non-uniform depth
  }
  return {true, depth + 1};
}

}  // namespace

bool BTreeStorage::CheckStructure() const {
  const Node* n = root_.get();
  while (!n->leaf) n = InternalOf(n)->children.front().get();
  const Leaf* expected = LeafOf(n);
  if (expected->prev != nullptr) return false;
  const CheckResult r = CheckRec(root_.get(), nullptr, nullptr, true,
                                 min_keys_, max_keys_, expected);
  if (!r.ok) return false;
  if (expected != nullptr) return false;  // chain longer than the tree
  // Sentinels present and total size consistent.
  const auto scan = Scan();
  if (scan.size() != size_) return false;
  if (scan.empty() || !scan.front().key.is_low() || !scan.back().key.is_high()) {
    return false;
  }
  return true;
}

}  // namespace repdir::storage
