#include "storage/log_device.h"

namespace repdir::storage {

FileLogDevice::~FileLogDevice() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileLogDevice::EnsureOpen() {
  if (file_ != nullptr) return Status::Ok();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Unavailable("cannot open log file " + path_);
  }
  return Status::Ok();
}

Status FileLogDevice::Append(std::string_view bytes) {
  REPDIR_RETURN_IF_ERROR(EnsureOpen());
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::Unavailable("short write to log file " + path_);
  }
  return Status::Ok();
}

Status FileLogDevice::Flush() {
  if (file_ == nullptr) return Status::Ok();
  if (std::fflush(file_) != 0) {
    return Status::Unavailable("fflush failed on " + path_);
  }
  return Status::Ok();
}

Result<std::string> FileLogDevice::ReadDurable() const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return std::string{};  // no log yet
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

Status FileLogDevice::Truncate() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot truncate log file " + path_);
  }
  std::fclose(f);
  return Status::Ok();
}

Status FileLogDevice::Rewrite(std::string_view bytes) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open temp log file " + tmp);
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    std::remove(tmp.c_str());
    return Status::Unavailable("short write to temp log file " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Unavailable("cannot rename temp log over " + path_);
  }
  return Status::Ok();
}

}  // namespace repdir::storage
