#include "storage/crash_point.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>

namespace repdir::storage {

CrashPoints& CrashPoints::Instance() {
  static CrashPoints instance;
  return instance;
}

void CrashPoints::Arm(const std::string& point,
                      std::uint64_t hits_until_fire) {
  std::lock_guard<std::mutex> lk(mu_);
  if (hits_until_fire == 0) hits_until_fire = 1;
  if (!pending_.contains(point)) {
    armed_.fetch_add(1, std::memory_order_relaxed);
  }
  pending_[point] = hits_until_fire;
}

void CrashPoints::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lk(mu_);
  if (pending_.erase(point) > 0) {
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void CrashPoints::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  armed_.store(0, std::memory_order_relaxed);
  pending_.clear();
  hits_.clear();
  handler_ = nullptr;
}

void CrashPoints::SetHandler(Handler handler) {
  std::lock_guard<std::mutex> lk(mu_);
  handler_ = std::move(handler);
}

void CrashPoints::ArmFromEnv() {
  const char* env = std::getenv("REPDIR_CRASH_POINT");
  if (env == nullptr || *env == '\0') return;
  std::string spec(env);
  std::uint64_t count = 1;
  if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
    count = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
    spec.resize(colon);
  }
  Arm(spec, count);
}

void CrashPoints::Hit(const char* point) {
  Handler fire;
  std::string name(point);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++hits_[name];
    const auto it = pending_.find(name);
    if (it == pending_.end()) return;
    if (--it->second > 0) return;
    pending_.erase(it);
    armed_.fetch_sub(1, std::memory_order_relaxed);
    fire = handler_ ? handler_ : Handler(&CrashPoints::KillProcess);
  }
  // Outside the lock: the handler may re-enter (or never return).
  fire(name);
}

std::uint64_t CrashPoints::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

void CrashPoints::KillProcess(const std::string& point) {
  // stderr is line-buffered and the message is diagnostic only; the data
  // files deliberately keep whatever durability Flush() gave them - a
  // SIGKILL loses unflushed stdio buffers exactly like a real `kill -9`.
  std::fprintf(stderr, "crash point fired: %s\n", point.c_str());
  std::raise(SIGKILL);
  std::abort();  // unreachable (SIGKILL cannot be handled)
}

}  // namespace repdir::storage
