// LogDevice: the append-only durable medium under the write-ahead log.
//
// MemLogDevice simulates a disk with an explicit flush boundary: bytes
// appended but not flushed are lost on Crash(), and CrashTorn() additionally
// keeps only a prefix of the unflushed tail (a torn write). FileLogDevice
// is a thin real-file backend for the examples.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "common/status.h"

namespace repdir::storage {

class LogDevice {
 public:
  virtual ~LogDevice() = default;

  /// Buffers bytes at the end of the log (not yet durable).
  virtual Status Append(std::string_view bytes) = 0;

  /// Makes all appended bytes durable.
  virtual Status Flush() = 0;

  /// Returns the durable contents (what would survive a crash right now,
  /// i.e. excluding unflushed bytes).
  virtual Result<std::string> ReadDurable() const = 0;

  /// Discards the entire log (after a checkpoint has superseded it).
  virtual Status Truncate() = 0;

  /// Atomically replaces the durable contents with `bytes` - afterwards a
  /// crash sees either the old log or the new one, never a prefix of the
  /// new one. Checkpointing relies on this: truncate-then-append would
  /// leave an empty (data-losing) log in its crash window.
  virtual Status Rewrite(std::string_view bytes) = 0;
};

class MemLogDevice final : public LogDevice {
 public:
  Status Append(std::string_view bytes) override {
    pending_.append(bytes);
    return Status::Ok();
  }

  Status Flush() override {
    durable_ += pending_;
    pending_.clear();
    ++flush_count_;
    return Status::Ok();
  }

  Result<std::string> ReadDurable() const override { return durable_; }

  Status Truncate() override {
    durable_.clear();
    pending_.clear();
    return Status::Ok();
  }

  Status Rewrite(std::string_view bytes) override {
    durable_.assign(bytes);
    pending_.clear();
    return Status::Ok();
  }

  /// Simulated power failure: unflushed bytes vanish.
  void Crash() { pending_.clear(); }

  /// Simulated torn write: only the first `keep_bytes` of the unflushed
  /// tail reach the medium before the crash.
  void CrashTorn(std::size_t keep_bytes) {
    durable_ += pending_.substr(0, keep_bytes);
    pending_.clear();
  }

  std::size_t durable_size() const { return durable_.size(); }
  std::size_t pending_size() const { return pending_.size(); }
  std::uint64_t flush_count() const { return flush_count_; }

 private:
  std::string durable_;
  std::string pending_;
  std::uint64_t flush_count_ = 0;
};

/// Real-file log for the examples and the multi-process chaos cluster
/// (append mode; ReadDurable re-reads the file). Durability boundary is the
/// process: Flush() pushes bytes into the OS page cache, so they survive a
/// SIGKILL of the process; unflushed bytes sit in the stdio buffer and die
/// with it - exactly the Crash() semantics MemLogDevice simulates.
class FileLogDevice final : public LogDevice {
 public:
  explicit FileLogDevice(std::string path) : path_(std::move(path)) {}
  ~FileLogDevice() override;

  Status Append(std::string_view bytes) override;
  Status Flush() override;
  Result<std::string> ReadDurable() const override;
  Status Truncate() override;

  /// Write-temp-then-rename: atomic on POSIX filesystems.
  Status Rewrite(std::string_view bytes) override;

 private:
  Status EnsureOpen();

  std::string path_;
  std::FILE* file_ = nullptr;
};

}  // namespace repdir::storage
