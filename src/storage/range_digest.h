// Range hash summaries of a representative's (key, version) state - the
// anti-entropy building block ("Directory Reconciliation", Mitzenmacher &
// Morgan: exchange cheap digests, recurse only into ranges that differ).
//
// The keyspace is carved into half-open *segments* (low, high]: a segment
// owns the gap leaving `low` (its version), every stored user entry with
// low < key <= high (key, version, value), and each such entry's trailing
// gap version except the entry at `high` itself - whose gap belongs to the
// next segment. Two replicas whose segment states are identical produce
// identical hashes; anchors (`low`/`high`) need not be stored locally, the
// gap version covering the point just above `low` stands in.
//
// These helpers are pure functions over RepStorage; synchronization is the
// caller's job (TxnParticipant computes digests under its storage mutex).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/rep_storage.h"

namespace repdir::storage {

/// Digest of one segment (low, high].
struct RangeDigest {
  RepKey low;
  RepKey high;
  std::uint64_t hash = 0;
  std::uint64_t count = 0;  ///< User entries with low < key <= high.

  void Encode(ByteWriter& w) const {
    low.Encode(w);
    high.Encode(w);
    w.PutU64(hash);
    w.PutU64(count);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(low.Decode(r));
    REPDIR_RETURN_IF_ERROR(high.Decode(r));
    REPDIR_RETURN_IF_ERROR(r.GetU64(hash));
    return r.GetU64(count);
  }
  bool operator==(const RangeDigest&) const = default;
};

/// Full segment state, shipped when a mismatched segment is small enough to
/// repair directly: the gap version at the point just above `low`, the
/// entry stored exactly at `low` (anchor materialization on the target
/// needs its version/value), and every user entry in (low, high] with its
/// trailing gap version.
struct SegmentState {
  Version low_gap = kLowestVersion;
  std::optional<StoredEntry> low_entry;
  std::vector<StoredEntry> entries;
};

/// Hash and entry count of segment (low, high]. Requires low < high.
RangeDigest DigestOf(const RepStorage& stg, const RepKey& low,
                     const RepKey& high);

/// Splits (low, high] into at most `fanout` child segments of roughly equal
/// entry count, cutting at stored entry keys (so every child's bounds are
/// keys the source holds), and digests each. A segment with fewer than two
/// entries comes back as a single child. Requires low < high, fanout >= 1.
std::vector<RangeDigest> SplitDigest(const RepStorage& stg, const RepKey& low,
                                     const RepKey& high, std::uint32_t fanout);

/// Collects the full state of segment (low, high]. Requires low < high.
SegmentState CollectSegment(const RepStorage& stg, const RepKey& low,
                            const RepKey& high);

}  // namespace repdir::storage
