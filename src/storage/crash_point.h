// Named crash points compiled into the WAL and recovery code paths.
//
// A crash point marks an instant where a process death is interesting:
// between the two halves of a log append (torn frame), before a flush
// (unflushed tail lost), after a durable PREPARE but before the decision
// (in-doubt on recovery), in the middle of a checkpoint rewrite. Production
// code calls REPDIR_CRASH_POINT("name"); the macro is a single relaxed
// atomic load while nothing is armed, so the instrumentation is free in
// normal runs.
//
// Two consumers:
//   * In-process tests arm a point with a custom handler (e.g. flush the
//     partial frame then mark the device crashed) to reproduce torn-tail /
//     mid-flush / mid-checkpoint states deterministically.
//   * The multi-process chaos cluster arms a point via the
//     REPDIR_CRASH_POINT environment variable ("name:count"); the default
//     handler raise(SIGKILL)s the process, so the node dies exactly as a
//     `kill -9` would - unflushed stdio buffers and all - at a precise
//     protocol instant (the txlib crash() testing idiom).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

namespace repdir::storage {

class CrashPoints {
 public:
  /// Invoked when an armed point fires; receives the point name.
  using Handler = std::function<void(const std::string& point)>;

  /// Process-wide instance (crash points are inherently per-process).
  static CrashPoints& Instance();

  /// Fires `point` on its `hits_until_fire`-th upcoming hit (1 = next).
  void Arm(const std::string& point, std::uint64_t hits_until_fire = 1);
  void Disarm(const std::string& point);

  /// Disarms everything and restores the default handler.
  void Reset();

  /// Replaces the fire handler (tests). Null restores the default, which
  /// raises SIGKILL so the process dies mid-protocol like a `kill -9`.
  void SetHandler(Handler handler);

  /// Arms from the REPDIR_CRASH_POINT environment variable, format
  /// "name" or "name:count". Used by the chaos cluster node binary.
  void ArmFromEnv();

  /// True while any point is armed (fast path for the macro).
  bool armed() const { return armed_.load(std::memory_order_relaxed) > 0; }

  /// Called by instrumented code (via the macro) - counts down the armed
  /// point and runs the handler when it reaches zero.
  void Hit(const char* point);

  /// Total observed hits of `point` since the last Reset, counted only
  /// while any point is armed (diagnostics for tests).
  std::uint64_t HitCount(const std::string& point) const;

 private:
  CrashPoints() = default;

  static void KillProcess(const std::string& point);

  mutable std::mutex mu_;
  std::atomic<std::uint64_t> armed_{0};
  std::map<std::string, std::uint64_t> pending_;  ///< point -> hits left.
  std::map<std::string, std::uint64_t> hits_;
  Handler handler_;
};

}  // namespace repdir::storage

/// Zero-cost when nothing is armed; never reorders around the protected
/// operations (the armed check is advisory, the handler runs under a lock).
#define REPDIR_CRASH_POINT(name)                                   \
  do {                                                             \
    if (::repdir::storage::CrashPoints::Instance().armed()) {      \
      ::repdir::storage::CrashPoints::Instance().Hit(name);        \
    }                                                              \
  } while (0)
