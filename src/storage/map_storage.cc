#include "storage/map_storage.h"

#include <cassert>

namespace repdir::storage {

std::optional<StoredEntry> MapStorage::Get(const RepKey& k) const {
  const auto it = rows_.find(k);
  if (it == rows_.end()) return std::nullopt;
  return ToEntry(*it);
}

StoredEntry MapStorage::Floor(const RepKey& k) const {
  auto it = rows_.upper_bound(k);
  assert(it != rows_.begin() && "Floor below LOW");
  --it;
  return ToEntry(*it);
}

StoredEntry MapStorage::StrictPredecessor(const RepKey& k) const {
  auto it = rows_.lower_bound(k);
  assert(it != rows_.begin() && "StrictPredecessor of LOW");
  --it;
  return ToEntry(*it);
}

StoredEntry MapStorage::StrictSuccessor(const RepKey& k) const {
  auto it = rows_.upper_bound(k);
  assert(it != rows_.end() && "StrictSuccessor of HIGH");
  return ToEntry(*it);
}

void MapStorage::Put(const StoredEntry& e) {
  rows_[e.key] = Row{e.version, e.value, e.gap_after};
}

void MapStorage::Erase(const RepKey& k) {
  assert(k.is_user() && "cannot erase a sentinel");
  const auto erased = rows_.erase(k);
  assert(erased == 1 && "Erase of absent key");
  (void)erased;
}

void MapStorage::SetGapAfter(const RepKey& k, Version v) {
  const auto it = rows_.find(k);
  assert(it != rows_.end() && "SetGapAfter of absent key");
  it->second.gap_after = v;
}

std::vector<StoredEntry> MapStorage::Scan() const {
  std::vector<StoredEntry> out;
  out.reserve(rows_.size());
  for (const auto& kv : rows_) out.push_back(ToEntry(kv));
  return out;
}

std::size_t MapStorage::UserEntryCount() const {
  return rows_.size() - 2;  // minus LOW and HIGH
}

void MapStorage::Clear() {
  rows_.clear();
  rows_[RepKey::Low()] = Row{kLowestVersion, {}, kLowestVersion};
  rows_[RepKey::High()] = Row{kLowestVersion, {}, kLowestVersion};
}

}  // namespace repdir::storage
