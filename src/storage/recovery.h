// Crash recovery for a directory representative.
//
// Rebuilds representative state from its write-ahead log: restore the last
// checkpoint snapshot, then redo the operations of every transaction whose
// commit record is in the log, in original log order. Transactions that
// prepared but have no decision record are reported as in-doubt (presumed
// abort: their effects are NOT applied); the two-phase-commit coordinator
// resolves them via ResolveInDoubt.
#pragma once

#include <set>
#include <vector>

#include "storage/dir_rep_core.h"
#include "storage/wal.h"

namespace repdir::storage {

struct RecoveryOutcome {
  std::set<TxnId> in_doubt;          ///< Prepared, no decision logged.
  std::size_t ops_replayed = 0;      ///< Redo records applied.
  bool restored_checkpoint = false;  ///< A checkpoint snapshot was found.
};

/// Clears `stg` and rebuilds it from `log`.
Result<RecoveryOutcome> RecoverRepresentative(RepStorage& stg,
                                              const std::vector<WalRecord>& log);

/// Resolves one in-doubt transaction after recovery: if `commit`, replays
/// its logged operations onto `stg`; either way appends the decision record
/// through `writer` so a later recovery sees it.
Status ResolveInDoubt(RepStorage& stg, const std::vector<WalRecord>& log,
                      TxnId txn, bool commit, WalWriter& writer);

}  // namespace repdir::storage
