#include "storage/dir_rep_core.h"

#include <sstream>

namespace repdir::storage {

LookupReply DirRepCore::Lookup(const RepKey& k) const {
  if (const auto entry = stg_->Get(k)) {
    return LookupReply{true, entry->version, entry->value};
  }
  // Absent: report the version of the gap containing k, which is the
  // gap_after of the greatest entry below k.
  const StoredEntry floor = stg_->Floor(k);
  return LookupReply{false, floor.gap_after, {}};
}

Result<NeighborReply> DirRepCore::Predecessor(const RepKey& k) const {
  if (k.is_low()) {
    return Status::InvalidArgument("Predecessor of LOW");
  }
  const StoredEntry pred = stg_->StrictPredecessor(k);
  // No stored entry lies in (pred, k), so the gap bounded below by pred is
  // exactly the gap between k and its predecessor.
  return NeighborReply{pred.key, pred.version, pred.value, pred.gap_after};
}

Result<NeighborReply> DirRepCore::Successor(const RepKey& k) const {
  if (k.is_high()) {
    return Status::InvalidArgument("Successor of HIGH");
  }
  const StoredEntry succ = stg_->StrictSuccessor(k);
  // The gap between k and succ is bounded below by the greatest entry <= k.
  const StoredEntry floor = stg_->Floor(k);
  return NeighborReply{succ.key, succ.version, succ.value, floor.gap_after};
}

Result<InsertEffect> DirRepCore::Insert(const RepKey& k, Version v,
                                        const Value& value) {
  if (!k.is_user()) {
    return Status::InvalidArgument("Insert of sentinel key");
  }
  InsertEffect effect;
  if (auto existing = stg_->Get(k)) {
    effect.replaced = *existing;
    // Overwrite in place; the gap partition is unchanged.
    stg_->Put(StoredEntry{k, v, value, existing->gap_after});
    return effect;
  }
  // Splitting a gap: both halves inherit the old gap's version, so no gap
  // version changes on insert (this is what makes Insert pay no penalty for
  // per-key version numbers - §1).
  const StoredEntry floor = stg_->Floor(k);
  stg_->Put(StoredEntry{k, v, value, floor.gap_after});
  return effect;
}

Result<InsertEffect> DirRepCore::GuardedInsert(const RepKey& k, Version v,
                                               const Value& value,
                                               Version expected_version) {
  if (!k.is_user()) {
    return Status::InvalidArgument("Insert of sentinel key");
  }
  const LookupReply current = Lookup(k);
  if (current.version > expected_version) {
    return Status::VersionMismatch(
        "guarded insert of " + k.ToString() + ": local version " +
        std::to_string(current.version) + " exceeds expected " +
        std::to_string(expected_version));
  }
  return Insert(k, v, value);
}

Result<CoalesceEffect> DirRepCore::Coalesce(const RepKey& l, const RepKey& h,
                                            Version gap_version) {
  if (!(l < h)) {
    return Status::InvalidArgument("Coalesce requires l < h: " + l.ToString() +
                                   " .. " + h.ToString());
  }
  const auto low_entry = stg_->Get(l);
  if (!low_entry) {
    return Status::FailedPrecondition("Coalesce: no entry for lower bound " +
                                      l.ToString());
  }
  if (!stg_->Get(h)) {
    return Status::FailedPrecondition("Coalesce: no entry for upper bound " +
                                      h.ToString());
  }

  CoalesceEffect effect;
  effect.previous_gap_version = low_entry->gap_after;
  for (StoredEntry next = stg_->StrictSuccessor(l); next.key < h;
       next = stg_->StrictSuccessor(l)) {
    effect.erased.push_back(next);
    stg_->Erase(next.key);
  }
  stg_->SetGapAfter(l, gap_version);
  return effect;
}

void DirRepCore::UndoInsert(const RepKey& k, const InsertEffect& effect) {
  if (effect.replaced.has_value()) {
    stg_->Put(*effect.replaced);
  } else {
    stg_->Erase(k);
  }
}

void DirRepCore::UndoCoalesce(const RepKey& l, const CoalesceEffect& effect) {
  for (const auto& e : effect.erased) stg_->Put(e);
  stg_->SetGapAfter(l, effect.previous_gap_version);
}

Status CheckRepInvariants(const RepStorage& stg) {
  const auto entries = stg.Scan();
  if (entries.size() < 2) {
    return Status::Corruption("representative has fewer than two entries");
  }
  if (!entries.front().key.is_low()) {
    return Status::Corruption("first entry is not LOW");
  }
  if (!entries.back().key.is_high()) {
    return Status::Corruption("last entry is not HIGH");
  }
  for (std::size_t i = 1; i + 1 < entries.size(); ++i) {
    if (!entries[i].key.is_user()) {
      return Status::Corruption("interior sentinel at index " +
                                std::to_string(i));
    }
  }
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (!(entries[i - 1].key < entries[i].key)) {
      return Status::Corruption("keys not strictly increasing at index " +
                                std::to_string(i));
    }
  }
  if (stg.UserEntryCount() != entries.size() - 2) {
    return Status::Corruption("UserEntryCount inconsistent with Scan");
  }
  return Status::Ok();
}

std::string DumpRep(const RepStorage& stg) {
  std::ostringstream os;
  const auto entries = stg.Scan();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    os << e.key.ToString();
    if (e.key.is_user()) os << "v" << e.version;
    if (i + 1 < entries.size()) os << " |g" << e.gap_after << "| ";
  }
  return os.str();
}

}  // namespace repdir::storage
