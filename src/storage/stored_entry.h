// StoredEntry: one row of a directory representative.
//
// Gap representation (paper §5): "Version numbers for gaps could be stored
// in fields in their bounding entries." Each entry carries `gap_after`, the
// version of the open gap (this.key, successor.key). LOW's gap_after covers
// the leftmost gap; HIGH's gap_after is unused (kept 0).
#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/rep_key.h"

namespace repdir::storage {

struct StoredEntry {
  RepKey key;
  Version version = kLowestVersion;  ///< Version of the entry itself.
  Value value;
  Version gap_after = kLowestVersion;  ///< Version of the gap after `key`.

  void Encode(ByteWriter& w) const {
    key.Encode(w);
    w.PutU64(version);
    w.PutString(value);
    w.PutU64(gap_after);
  }

  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(key.Decode(r));
    REPDIR_RETURN_IF_ERROR(r.GetU64(version));
    REPDIR_RETURN_IF_ERROR(r.GetString(value));
    return r.GetU64(gap_after);
  }

  bool operator==(const StoredEntry& other) const = default;
};

}  // namespace repdir::storage
