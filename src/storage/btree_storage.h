// BTreeStorage: B+-tree RepStorage backend.
//
// The paper (§5) envisions directories represented as B-trees with gap
// version numbers stored in the bounding entries; this backend realizes
// that. Values live in leaves; leaves are doubly linked for neighbor
// queries and scans; internal nodes hold separator keys. Fanout is a
// constructor parameter so tests can force deep trees with heavy
// split/borrow/merge traffic.
#pragma once

#include <memory>

#include "storage/rep_storage.h"

namespace repdir::storage {

class BTreeStorage final : public RepStorage {
 public:
  /// `max_keys` = maximum keys per node (>= 3). Nodes split above it and
  /// rebalance below max_keys/2.
  explicit BTreeStorage(int max_keys = 16);
  ~BTreeStorage() override;

  BTreeStorage(const BTreeStorage&) = delete;
  BTreeStorage& operator=(const BTreeStorage&) = delete;

  std::optional<StoredEntry> Get(const RepKey& k) const override;
  StoredEntry Floor(const RepKey& k) const override;
  StoredEntry StrictPredecessor(const RepKey& k) const override;
  StoredEntry StrictSuccessor(const RepKey& k) const override;
  void Put(const StoredEntry& e) override;
  void Erase(const RepKey& k) override;
  void SetGapAfter(const RepKey& k, Version v) override;
  std::vector<StoredEntry> Scan() const override;
  std::size_t UserEntryCount() const override;
  void Clear() override;

  /// Structural self-check (sorted keys, separator correctness, node fill,
  /// uniform depth, leaf-chain consistency). Used by property tests.
  bool CheckStructure() const;

  /// Height of the tree (1 = root is a leaf). For structural tests.
  int Height() const;

  // Node types are declared here (not in the private section) so that the
  // implementation file's free helper functions can name them; their
  // definitions stay inside btree_storage.cc.
  struct Node;
  struct Leaf;
  struct Internal;

 private:
  Leaf* FindLeaf(const RepKey& k) const;

  int max_keys_;
  int min_keys_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;  // total entries incl. sentinels
};

}  // namespace repdir::storage
