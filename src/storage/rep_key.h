// RepKey: the key domain of a directory representative.
//
// Every representative contains two distinguished keys, LOW and HIGH
// (paper §3.1): LOW sorts before every user key and HIGH after, so every
// user key has a real predecessor and real successor and the leftmost /
// rightmost gaps are always bounded. User code can never store a sentinel.
#pragma once

#include <cassert>
#include <compare>
#include <ostream>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"

namespace repdir::storage {

class RepKey {
 public:
  enum class Kind : std::uint8_t { kLow = 0, kUser = 1, kHigh = 2 };

  /// Default-constructed key is LOW (needed for containers/serialization).
  RepKey() = default;

  static RepKey Low() { return RepKey(Kind::kLow, {}); }
  static RepKey High() { return RepKey(Kind::kHigh, {}); }
  static RepKey User(UserKey key) {
    return RepKey(Kind::kUser, std::move(key));
  }

  Kind kind() const { return kind_; }
  bool is_low() const { return kind_ == Kind::kLow; }
  bool is_high() const { return kind_ == Kind::kHigh; }
  bool is_user() const { return kind_ == Kind::kUser; }
  bool is_sentinel() const { return !is_user(); }

  /// The user key bytes; only valid for user keys.
  const UserKey& user() const {
    assert(is_user());
    return key_;
  }

  /// Total order: LOW < (user keys, lexicographic) < HIGH.
  std::strong_ordering operator<=>(const RepKey& other) const {
    if (kind_ != other.kind_) return kind_ <=> other.kind_;
    if (kind_ == Kind::kUser) return key_.compare(other.key_) <=> 0;
    return std::strong_ordering::equal;
  }
  bool operator==(const RepKey& other) const {
    return kind_ == other.kind_ && key_ == other.key_;
  }

  void Encode(ByteWriter& w) const {
    w.PutU8(static_cast<std::uint8_t>(kind_));
    w.PutString(key_);
  }

  Status Decode(ByteReader& r) {
    std::uint8_t kind8 = 0;
    REPDIR_RETURN_IF_ERROR(r.GetU8(kind8));
    if (kind8 > static_cast<std::uint8_t>(Kind::kHigh)) {
      return Status::Corruption("bad RepKey kind");
    }
    kind_ = static_cast<Kind>(kind8);
    REPDIR_RETURN_IF_ERROR(r.GetString(key_));
    if (is_sentinel() && !key_.empty()) {
      return Status::Corruption("sentinel RepKey with payload");
    }
    return Status::Ok();
  }

  /// "LOW", "HIGH", or the quoted user key - for logs and test output.
  std::string ToString() const {
    switch (kind_) {
      case Kind::kLow: return "LOW";
      case Kind::kHigh: return "HIGH";
      case Kind::kUser: return '"' + key_ + '"';
    }
    return "?";
  }

 private:
  RepKey(Kind kind, UserKey key) : kind_(kind), key_(std::move(key)) {}

  Kind kind_ = Kind::kLow;
  UserKey key_;
};

inline std::ostream& operator<<(std::ostream& os, const RepKey& k) {
  return os << k.ToString();
}

}  // namespace repdir::storage
