#include "storage/recovery.h"

#include "storage/crash_point.h"

namespace repdir::storage {

namespace {

/// Applies one redo op. The log replays a formerly successful execution, so
/// application errors indicate log corruption rather than user error.
Status RedoOp(DirRepCore& core, const WalOp& op) {
  switch (op.kind) {
    case WalOp::Kind::kInsert: {
      const auto effect = core.Insert(op.key, op.version, op.value);
      if (!effect.ok()) {
        return Status::Corruption("redo Insert failed: " +
                                  effect.status().ToString());
      }
      return Status::Ok();
    }
    case WalOp::Kind::kCoalesce: {
      const auto effect = core.Coalesce(op.key, op.upper, op.version);
      if (!effect.ok()) {
        return Status::Corruption("redo Coalesce failed: " +
                                  effect.status().ToString());
      }
      return Status::Ok();
    }
  }
  return Status::Corruption("unknown WalOp kind");
}

}  // namespace

Result<RecoveryOutcome> RecoverRepresentative(
    RepStorage& stg, const std::vector<WalRecord>& log) {
  RecoveryOutcome outcome;

  // Locate the most recent checkpoint; everything before it is superseded.
  std::size_t start = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log[i].type == WalRecordType::kCheckpoint) start = i;
  }

  stg.Clear();
  if (start < log.size() && log[start].type == WalRecordType::kCheckpoint) {
    REPDIR_ASSIGN_OR_RETURN(const auto snapshot,
                            DecodeSnapshot(log[start].body));
    for (const auto& e : snapshot) stg.Put(e);
    REPDIR_RETURN_IF_ERROR(CheckRepInvariants(stg));
    outcome.restored_checkpoint = true;
    ++start;
  }

  // Pass 1: classify transactions.
  std::set<TxnId> committed;
  std::set<TxnId> aborted;
  std::set<TxnId> prepared;
  for (std::size_t i = start; i < log.size(); ++i) {
    switch (log[i].type) {
      case WalRecordType::kCommit: committed.insert(log[i].txn); break;
      case WalRecordType::kAbort: aborted.insert(log[i].txn); break;
      case WalRecordType::kPrepare: prepared.insert(log[i].txn); break;
      default: break;
    }
  }

  // Pass 2: redo committed transactions' operations in log order.
  DirRepCore core(stg);
  for (std::size_t i = start; i < log.size(); ++i) {
    if (log[i].type != WalRecordType::kOp) continue;
    if (!committed.contains(log[i].txn)) continue;
    WalOp op;
    REPDIR_RETURN_IF_ERROR(DecodeFromString<WalOp>(log[i].body, op));
    REPDIR_RETURN_IF_ERROR(RedoOp(core, op));
    ++outcome.ops_replayed;
  }

  for (const TxnId txn : prepared) {
    if (!committed.contains(txn) && !aborted.contains(txn)) {
      outcome.in_doubt.insert(txn);
    }
  }
  return outcome;
}

Status ResolveInDoubt(RepStorage& stg, const std::vector<WalRecord>& log,
                      TxnId txn, bool commit, WalWriter& writer) {
  if (commit) {
    DirRepCore core(stg);
    for (const auto& rec : log) {
      if (rec.type != WalRecordType::kOp || rec.txn != txn) continue;
      WalOp op;
      REPDIR_RETURN_IF_ERROR(DecodeFromString<WalOp>(rec.body, op));
      REPDIR_RETURN_IF_ERROR(RedoOp(core, op));
    }
  }
  // A death here re-surfaces the transaction as in-doubt on the next
  // recovery: resolution is idempotent and must be repeatable.
  REPDIR_CRASH_POINT("recovery.before_resolve_decision");
  return writer.AppendDecision(
      commit ? WalRecordType::kCommit : WalRecordType::kAbort, txn);
}

}  // namespace repdir::storage
