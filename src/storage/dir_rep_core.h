// DirRepCore: the directory-representative operations of Figure 6, built on
// a RepStorage backend.
//
//   DirRepLookup(x)       -> present? + entry version | gap version
//   DirRepPredecessor(x)  -> nearest stored entry below x + bounding gap
//   DirRepSuccessor(x)    -> nearest stored entry above x + bounding gap
//   DirRepInsert(x,v,z)   -> create/overwrite entry (splits a gap; both
//                            halves keep the gap's old version)
//   DirRepCoalesce(l,h,v) -> delete all entries strictly inside (l,h) and
//                            give the resulting single gap version v
//
// Mutating operations return the information the transaction layer needs to
// undo them, and Coalesce additionally reports what it erased so the suite
// can compute the paper's §4 statistics.
//
// Synchronization is NOT this class's job: the lock manager (src/lock) and
// transaction participant (src/txn) wrap it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/rep_storage.h"

namespace repdir::storage {

/// Reply to DirRepLookup. When `present`, `version` is the entry's version
/// and `value` its value; otherwise `version` is the version of the gap
/// containing the key and `value` is empty.
struct LookupReply {
  bool present = false;
  Version version = kLowestVersion;
  Value value;

  void Encode(ByteWriter& w) const {
    w.PutBool(present);
    w.PutU64(version);
    w.PutString(value);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetBool(present));
    REPDIR_RETURN_IF_ERROR(r.GetU64(version));
    return r.GetString(value);
  }
  bool operator==(const LookupReply&) const = default;
};

/// Reply to DirRepPredecessor / DirRepSuccessor: the neighboring stored
/// entry (possibly a sentinel), its entry version and value, and the version
/// of the gap between the query key and that neighbor.
struct NeighborReply {
  RepKey key;
  Version entry_version = kLowestVersion;
  Value value;
  Version gap_version = kLowestVersion;

  void Encode(ByteWriter& w) const {
    key.Encode(w);
    w.PutU64(entry_version);
    w.PutString(value);
    w.PutU64(gap_version);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(key.Decode(r));
    REPDIR_RETURN_IF_ERROR(r.GetU64(entry_version));
    REPDIR_RETURN_IF_ERROR(r.GetString(value));
    return r.GetU64(gap_version);
  }
  bool operator==(const NeighborReply&) const = default;
};

/// What a Coalesce physically did - enough to undo it and to account for
/// the paper's coalescing statistics.
struct CoalesceEffect {
  std::vector<StoredEntry> erased;  ///< Entries removed, in key order.
  Version previous_gap_version = kLowestVersion;  ///< Old gap_after of l.

  /// Whether `k` was among the erased entries.
  bool Erased(const RepKey& k) const {
    for (const auto& e : erased) {
      if (e.key == k) return true;
    }
    return false;
  }
};

/// Effect of an Insert - the overwritten entry if there was one.
struct InsertEffect {
  std::optional<StoredEntry> replaced;  ///< nullopt: key was newly created.
};

class DirRepCore {
 public:
  explicit DirRepCore(RepStorage& stg) : stg_(&stg) {}

  /// DirRepLookup(x). `k` may be a sentinel (sentinels are always present
  /// with version 0) - RealPredecessor's termination relies on this.
  LookupReply Lookup(const RepKey& k) const;

  /// DirRepPredecessor(x); requires k > LOW.
  Result<NeighborReply> Predecessor(const RepKey& k) const;

  /// DirRepSuccessor(x); requires k < HIGH.
  Result<NeighborReply> Successor(const RepKey& k) const;

  /// DirRepInsert(x, v, z); requires a user key (sentinels are immutable).
  Result<InsertEffect> Insert(const RepKey& k, Version v, const Value& value);

  /// DirRepInsert guarded by an expected version (the optimistic
  /// single-round write path): applies Insert(k, v, value) only if this
  /// representative's current version for k - its entry version when
  /// present, otherwise the version of the gap containing k - does not
  /// exceed `expected_version`. A local version at or below the expectation
  /// is stale or current data the new version may overwrite; a greater one
  /// means a conflicting suite operation committed since the expectation
  /// was formed, and the write is refused with kVersionMismatch.
  Result<InsertEffect> GuardedInsert(const RepKey& k, Version v,
                                     const Value& value,
                                     Version expected_version);

  /// DirRepCoalesce(l, h, v); requires l < h and stored entries at both l
  /// and h (paper: "An error is indicated if entries do not exist for keys
  /// l and h").
  Result<CoalesceEffect> Coalesce(const RepKey& l, const RepKey& h,
                                  Version gap_version);

  /// Applies the inverse of a recorded Insert.
  void UndoInsert(const RepKey& k, const InsertEffect& effect);

  /// Applies the inverse of a recorded Coalesce.
  void UndoCoalesce(const RepKey& l, const CoalesceEffect& effect);

  const RepStorage& storage() const { return *stg_; }
  RepStorage& storage() { return *stg_; }

 private:
  RepStorage* stg_;
};

/// Structural invariants of a representative: sentinels present at the ends,
/// keys strictly increasing, interior keys are user keys.
Status CheckRepInvariants(const RepStorage& stg);

/// Human-readable dump: "LOW |g0| "a"v1 |g0| "c"v1 |g2| HIGH".
std::string DumpRep(const RepStorage& stg);

}  // namespace repdir::storage
