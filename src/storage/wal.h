// Write-ahead log for a directory representative.
//
// Record framing: [u32 length][u32 crc32c(payload)][payload]. A reader
// stops at the first frame that is truncated or fails its checksum - such a
// frame is the torn tail of the last crash and is treated as end-of-log.
//
// Logging discipline (redo logging with presumed abort):
//   * each mutating operation appends a kOp record (buffered),
//   * PREPARE appends kPrepare and flushes (the participant's promise),
//   * COMMIT / ABORT append their record and flush,
//   * kCheckpoint carries a full snapshot and is only taken when quiescent.
// Recovery = last checkpoint snapshot + redo of committed transactions'
// ops in log order. Prepared-but-undecided transactions surface as
// "in doubt" and are resolved by the coordinator (see recovery.h).
#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/serde.h"
#include "storage/log_device.h"
#include "storage/stored_entry.h"

namespace repdir::storage {

enum class WalRecordType : std::uint8_t {
  kOp = 1,
  kPrepare = 2,
  kCommit = 3,
  kAbort = 4,
  kCheckpoint = 5,
};

/// A redo-able representative mutation.
struct WalOp {
  enum class Kind : std::uint8_t { kInsert = 1, kCoalesce = 2 };

  Kind kind = Kind::kInsert;
  RepKey key;          ///< Insert: the key. Coalesce: lower bound l.
  RepKey upper;        ///< Coalesce: upper bound h. Unused for Insert.
  Version version = kLowestVersion;  ///< Entry version / new gap version.
  Value value;         ///< Insert only.

  static WalOp Insert(RepKey k, Version v, Value val) {
    WalOp op;
    op.kind = Kind::kInsert;
    op.key = std::move(k);
    op.version = v;
    op.value = std::move(val);
    return op;
  }

  static WalOp Coalesce(RepKey l, RepKey h, Version gap) {
    WalOp op;
    op.kind = Kind::kCoalesce;
    op.key = std::move(l);
    op.upper = std::move(h);
    op.version = gap;
    return op;
  }

  void Encode(ByteWriter& w) const;
  Status Decode(ByteReader& r);
  bool operator==(const WalOp&) const = default;
};

struct WalRecord {
  WalRecordType type = WalRecordType::kOp;
  TxnId txn = kInvalidTxn;
  std::string body;  ///< Encoded WalOp (kOp) or snapshot (kCheckpoint).

  void Encode(ByteWriter& w) const;
  Status Decode(ByteReader& r);
};

/// Appends framed records to a LogDevice. `metrics` receives the
/// "wal.appends" / "wal.flushes" / "wal.checkpoints" counters plus
/// "wal.append_bytes" / "wal.checkpoint_bytes"; null means the default
/// registry.
class WalWriter {
 public:
  explicit WalWriter(LogDevice& device, MetricsRegistry* metrics = nullptr)
      : device_(&device),
        metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Default()),
        appends_(&metrics_->counter("wal.appends")),
        flushes_(&metrics_->counter("wal.flushes")),
        checkpoints_(&metrics_->counter("wal.checkpoints")),
        append_bytes_(&metrics_->counter("wal.append_bytes")),
        checkpoint_bytes_(&metrics_->counter("wal.checkpoint_bytes")) {}

  /// Buffers one framed record (durable only after Flush()).
  Status Append(const WalRecord& record);

  Status Flush();

  /// Convenience: op record for `txn`.
  Status AppendOp(TxnId txn, const WalOp& op);

  /// Appends and flushes a decision record.
  Status AppendDecision(WalRecordType type, TxnId txn);

  /// Writes a checkpoint containing the full state, flushes, and truncates
  /// everything before it by rewriting the log. Caller must be quiescent.
  Status WriteCheckpoint(const std::vector<StoredEntry>& snapshot);

 private:
  LogDevice* device_;
  MetricsRegistry* metrics_;
  Counter* appends_;
  Counter* flushes_;
  Counter* checkpoints_;
  Counter* append_bytes_;
  Counter* checkpoint_bytes_;
};

/// Parses framed records from raw log bytes. A torn or corrupt tail frame
/// ends the log silently; corruption *before* the end is impossible to
/// distinguish from a tear and is likewise treated as the end. If
/// `valid_bytes` is non-null it receives the length of the parseable
/// prefix - recovery must truncate the device to it before appending again,
/// or every later record hides behind the old tear and is lost at the
/// *next* recovery.
Result<std::vector<WalRecord>> ParseLog(std::string_view bytes,
                                        std::size_t* valid_bytes = nullptr);

/// Parses the durable contents of a log device.
Result<std::vector<WalRecord>> ReadLog(const LogDevice& device);

/// Encodes / decodes a checkpoint body (a full snapshot in key order).
std::string EncodeSnapshot(const std::vector<StoredEntry>& snapshot);
Result<std::vector<StoredEntry>> DecodeSnapshot(const std::string& body);

}  // namespace repdir::storage
