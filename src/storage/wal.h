// Write-ahead log for a directory representative.
//
// Record framing: [u32 length][u32 crc32c(payload)][payload]. A reader
// stops at the first frame that is truncated or fails its checksum - such a
// frame is the torn tail of the last crash and is treated as end-of-log.
//
// Logging discipline (redo logging with presumed abort):
//   * each mutating operation appends a kOp record (buffered),
//   * PREPARE appends kPrepare and flushes (the participant's promise),
//   * COMMIT / ABORT append their record and flush,
//   * kCheckpoint carries a full snapshot and is only taken when quiescent.
// Recovery = last checkpoint snapshot + redo of committed transactions'
// ops in log order. Prepared-but-undecided transactions surface as
// "in doubt" and are resolved by the coordinator (see recovery.h).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/bytes.h"
#include "common/metrics.h"
#include "common/serde.h"
#include "storage/log_device.h"
#include "storage/stored_entry.h"

namespace repdir::storage {

enum class WalRecordType : std::uint8_t {
  kOp = 1,
  kPrepare = 2,
  kCommit = 3,
  kAbort = 4,
  kCheckpoint = 5,
};

/// A redo-able representative mutation.
struct WalOp {
  enum class Kind : std::uint8_t { kInsert = 1, kCoalesce = 2 };

  Kind kind = Kind::kInsert;
  RepKey key;          ///< Insert: the key. Coalesce: lower bound l.
  RepKey upper;        ///< Coalesce: upper bound h. Unused for Insert.
  Version version = kLowestVersion;  ///< Entry version / new gap version.
  Value value;         ///< Insert only.

  static WalOp Insert(RepKey k, Version v, Value val) {
    WalOp op;
    op.kind = Kind::kInsert;
    op.key = std::move(k);
    op.version = v;
    op.value = std::move(val);
    return op;
  }

  static WalOp Coalesce(RepKey l, RepKey h, Version gap) {
    WalOp op;
    op.kind = Kind::kCoalesce;
    op.key = std::move(l);
    op.upper = std::move(h);
    op.version = gap;
    return op;
  }

  void Encode(ByteWriter& w) const;
  Status Decode(ByteReader& r);
  bool operator==(const WalOp&) const = default;
};

struct WalRecord {
  WalRecordType type = WalRecordType::kOp;
  TxnId txn = kInvalidTxn;
  std::string body;  ///< Encoded WalOp (kOp) or snapshot (kCheckpoint).

  void Encode(ByteWriter& w) const;
  Status Decode(ByteReader& r);
};

/// Group-commit tuning for WalWriter::SyncTo. Flush coalescing itself is
/// always on: a committer whose decision record is already covered by an
/// in-flight flush waits for that flush instead of issuing its own. The
/// window adds the classic group-commit gamble on top - the flush leader
/// briefly holds the flush open so concurrent committers can append their
/// decision records and share the same device flush.
struct GroupCommitConfig {
  /// Bounded coalescing window in microseconds. 0 = flush immediately
  /// (followers still piggyback on whatever flush is in flight). The wait
  /// is bounded: the leader proceeds after `window_us` even if no other
  /// committer showed up.
  DurationMicros window_us = 0;

  /// Test hook replacing the leader's timed wait (called with no locks
  /// held); deterministic tests inject a no-op or a rendezvous here.
  std::function<void()> window_hook;
};

/// Appends framed records to a LogDevice. `metrics` receives the
/// "wal.appends" / "wal.flushes" / "wal.checkpoints" counters plus
/// "wal.append_bytes" / "wal.checkpoint_bytes" and the group-commit pair
/// "wal.group_commit.batches" / "wal.group_commit.ops_per_flush"; null
/// means the default registry.
///
/// Thread safety: all methods may be called concurrently. Physical device
/// access is serialized by an internal mutex; the group-commit coordinator
/// (SyncTo) runs the actual device flush outside the append path's critical
/// section so concurrently committing participants share one flush.
class WalWriter {
 public:
  explicit WalWriter(LogDevice& device, MetricsRegistry* metrics = nullptr,
                     GroupCommitConfig group_commit = {})
      : device_(&device),
        metrics_(metrics != nullptr ? metrics : &MetricsRegistry::Default()),
        gc_(std::move(group_commit)),
        appends_(&metrics_->counter("wal.appends")),
        flushes_(&metrics_->counter("wal.flushes")),
        checkpoints_(&metrics_->counter("wal.checkpoints")),
        append_bytes_(&metrics_->counter("wal.append_bytes")),
        checkpoint_bytes_(&metrics_->counter("wal.checkpoint_bytes")),
        gc_batches_(&metrics_->counter("wal.group_commit.batches")),
        gc_ops_per_flush_(
            &metrics_->distribution("wal.group_commit.ops_per_flush")) {}

  /// Buffers one framed record (durable only after a covering flush).
  Status Append(const WalRecord& record);

  /// Makes everything appended so far durable (== SyncTo(appended_seq())).
  Status Flush();

  /// Makes every record with sequence number <= `seq` durable. Returns
  /// immediately when a previous flush already covered `seq`; joins an
  /// in-flight flush that will cover it; otherwise becomes the flush leader
  /// for every waiter present (group commit).
  Status SyncTo(std::uint64_t seq);

  /// Convenience: op record for `txn`.
  Status AppendOp(TxnId txn, const WalOp& op);

  /// Appends a decision record WITHOUT flushing; returns its sequence
  /// number for a later SyncDecision. Lets a participant append under its
  /// own mutex and sync outside it, which is what makes flushes shareable.
  Result<std::uint64_t> AppendDecisionRecord(WalRecordType type, TxnId txn);

  /// Forces the decision at `seq` durable, firing the decision-specific
  /// crash points ("wal.{before,after}_{prepare,commit}_flush") around the
  /// covering flush.
  Status SyncDecision(std::uint64_t seq, WalRecordType type);

  /// Appends and flushes a decision record (AppendDecisionRecord +
  /// SyncDecision); the single-threaded convenience used by recovery.
  Status AppendDecision(WalRecordType type, TxnId txn);

  /// Writes a checkpoint containing the full state, flushes, and truncates
  /// everything before it by rewriting the log. Caller must be quiescent.
  Status WriteCheckpoint(const std::vector<StoredEntry>& snapshot);

  std::uint64_t appended_seq() const {
    std::lock_guard<std::mutex> lk(mu_);
    return appended_seq_;
  }
  std::uint64_t flushed_seq() const {
    std::lock_guard<std::mutex> lk(mu_);
    return flushed_seq_;
  }

 private:
  /// Frames and appends `record`; on success stores its sequence number
  /// into `seq_out` (may be null).
  Status AppendInternal(const WalRecord& record, std::uint64_t* seq_out);

  LogDevice* device_;
  MetricsRegistry* metrics_;
  GroupCommitConfig gc_;
  Counter* appends_;
  Counter* flushes_;
  Counter* checkpoints_;
  Counter* append_bytes_;
  Counter* checkpoint_bytes_;
  Counter* gc_batches_;
  DistributionStat* gc_ops_per_flush_;

  /// Serializes physical device access (Append/Flush/Rewrite). Acquired
  /// before mu_ when both are needed.
  mutable std::mutex dev_mu_;

  /// Guards the sequence counters and group-commit coordination state.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t appended_seq_ = 0;  ///< Records appended to the device.
  std::uint64_t flushed_seq_ = 0;   ///< Records covered by a flush.
  bool flush_in_progress_ = false;
  std::uint64_t pending_syncs_ = 0;  ///< SyncTo calls awaiting a flush.
};

/// Parses framed records from raw log bytes. A torn or corrupt tail frame
/// ends the log silently; corruption *before* the end is impossible to
/// distinguish from a tear and is likewise treated as the end. If
/// `valid_bytes` is non-null it receives the length of the parseable
/// prefix - recovery must truncate the device to it before appending again,
/// or every later record hides behind the old tear and is lost at the
/// *next* recovery.
Result<std::vector<WalRecord>> ParseLog(std::string_view bytes,
                                        std::size_t* valid_bytes = nullptr);

/// Parses the durable contents of a log device.
Result<std::vector<WalRecord>> ReadLog(const LogDevice& device);

/// Encodes / decodes a checkpoint body (a full snapshot in key order).
std::string EncodeSnapshot(const std::vector<StoredEntry>& snapshot);
Result<std::vector<StoredEntry>> DecodeSnapshot(const std::string& body);

}  // namespace repdir::storage
