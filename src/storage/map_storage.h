// MapStorage: the reference RepStorage backend on std::map. Simple and
// obviously correct; the B-tree backend is fuzz-tested against it.
#pragma once

#include <map>

#include "storage/rep_storage.h"

namespace repdir::storage {

class MapStorage final : public RepStorage {
 public:
  MapStorage() { Clear(); }

  std::optional<StoredEntry> Get(const RepKey& k) const override;
  StoredEntry Floor(const RepKey& k) const override;
  StoredEntry StrictPredecessor(const RepKey& k) const override;
  StoredEntry StrictSuccessor(const RepKey& k) const override;
  void Put(const StoredEntry& e) override;
  void Erase(const RepKey& k) override;
  void SetGapAfter(const RepKey& k, Version v) override;
  std::vector<StoredEntry> Scan() const override;
  std::size_t UserEntryCount() const override;
  void Clear() override;

 private:
  struct Row {
    Version version;
    Value value;
    Version gap_after;
  };

  static StoredEntry ToEntry(const std::pair<const RepKey, Row>& kv) {
    return StoredEntry{kv.first, kv.second.version, kv.second.value,
                       kv.second.gap_after};
  }

  std::map<RepKey, Row> rows_;
};

}  // namespace repdir::storage
