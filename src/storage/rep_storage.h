// RepStorage: the ordered-map primitive a directory representative is built
// on. Two interchangeable backends implement it (MapStorage, BTreeStorage);
// the directory semantics (lookup / predecessor / successor / insert /
// coalesce, Fig. 6) live above in DirRepCore so both backends share one
// correctness-critical implementation.
//
// Invariants every implementation maintains:
//   * LOW and HIGH sentinel entries are always present.
//   * Keys are unique and iterated in RepKey order.
//   * Erase/Put of sentinels is a caller bug (asserted).
#pragma once

#include <optional>
#include <vector>

#include "storage/stored_entry.h"

namespace repdir::storage {

class RepStorage {
 public:
  virtual ~RepStorage() = default;

  /// The entry stored at exactly `k`, if any.
  virtual std::optional<StoredEntry> Get(const RepKey& k) const = 0;

  /// Greatest entry with key <= k. Exists for every k >= LOW.
  virtual StoredEntry Floor(const RepKey& k) const = 0;

  /// Greatest entry with key < k. Exists for every k > LOW.
  virtual StoredEntry StrictPredecessor(const RepKey& k) const = 0;

  /// Least entry with key > k. Exists for every k < HIGH.
  virtual StoredEntry StrictSuccessor(const RepKey& k) const = 0;

  /// Inserts or fully overwrites the entry at e.key (including gap_after).
  virtual void Put(const StoredEntry& e) = 0;

  /// Removes the entry at `k` (which must exist and must not be a sentinel).
  virtual void Erase(const RepKey& k) = 0;

  /// Rewrites only the gap version of the entry at `k` (which must exist).
  virtual void SetGapAfter(const RepKey& k, Version v) = 0;

  /// All entries (sentinels included) in key order. For checkpointing,
  /// recovery, and invariant checking.
  virtual std::vector<StoredEntry> Scan() const = 0;

  /// Number of user entries (sentinels excluded).
  virtual std::size_t UserEntryCount() const = 0;

  /// Resets to the empty directory: LOW and HIGH with gap version 0.
  virtual void Clear() = 0;
};

}  // namespace repdir::storage
