#include "storage/wal.h"

#include "storage/crash_point.h"

namespace repdir::storage {

void WalOp::Encode(ByteWriter& w) const {
  w.PutU8(static_cast<std::uint8_t>(kind));
  key.Encode(w);
  upper.Encode(w);
  w.PutU64(version);
  w.PutString(value);
}

Status WalOp::Decode(ByteReader& r) {
  std::uint8_t kind8 = 0;
  REPDIR_RETURN_IF_ERROR(r.GetU8(kind8));
  if (kind8 != static_cast<std::uint8_t>(Kind::kInsert) &&
      kind8 != static_cast<std::uint8_t>(Kind::kCoalesce)) {
    return Status::Corruption("bad WalOp kind");
  }
  kind = static_cast<Kind>(kind8);
  REPDIR_RETURN_IF_ERROR(key.Decode(r));
  REPDIR_RETURN_IF_ERROR(upper.Decode(r));
  REPDIR_RETURN_IF_ERROR(r.GetU64(version));
  return r.GetString(value);
}

void WalRecord::Encode(ByteWriter& w) const {
  w.PutU8(static_cast<std::uint8_t>(type));
  w.PutU64(txn);
  w.PutString(body);
}

Status WalRecord::Decode(ByteReader& r) {
  std::uint8_t type8 = 0;
  REPDIR_RETURN_IF_ERROR(r.GetU8(type8));
  if (type8 < static_cast<std::uint8_t>(WalRecordType::kOp) ||
      type8 > static_cast<std::uint8_t>(WalRecordType::kCheckpoint)) {
    return Status::Corruption("bad WalRecord type");
  }
  type = static_cast<WalRecordType>(type8);
  REPDIR_RETURN_IF_ERROR(r.GetU64(txn));
  return r.GetString(body);
}

Status WalWriter::Append(const WalRecord& record) {
  ByteWriter payload;
  record.Encode(payload);

  ByteWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(payload.size()));
  frame.PutU32(Crc32c(payload.data().data(), payload.size()));
  frame.PutRaw(payload.data().data(), payload.size());

  const auto bytes = frame.Take();
  appends_->Increment();
  append_bytes_->Increment(bytes.size());
  const std::string_view view(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());
  if (CrashPoints::Instance().armed()) {
    // Append the frame in two halves so "wal.mid_append" can die with a
    // torn frame on the medium (handlers decide what reaches durability).
    const std::size_t half = view.size() / 2;
    REPDIR_RETURN_IF_ERROR(device_->Append(view.substr(0, half)));
    REPDIR_CRASH_POINT("wal.mid_append");
    return device_->Append(view.substr(half));
  }
  return device_->Append(view);
}

Status WalWriter::Flush() {
  // A death here loses every byte appended since the previous flush.
  REPDIR_CRASH_POINT("wal.before_flush");
  flushes_->Increment();
  REPDIR_RETURN_IF_ERROR(device_->Flush());
  REPDIR_CRASH_POINT("wal.after_flush");
  return Status::Ok();
}

Status WalWriter::AppendOp(TxnId txn, const WalOp& op) {
  WalRecord rec;
  rec.type = WalRecordType::kOp;
  rec.txn = txn;
  ByteWriter body;
  op.Encode(body);
  rec.body = body.TakeString();
  return Append(rec);
}

Status WalWriter::AppendDecision(WalRecordType type, TxnId txn) {
  WalRecord rec;
  rec.type = type;
  rec.txn = txn;
  REPDIR_RETURN_IF_ERROR(Append(rec));
  switch (type) {
    case WalRecordType::kPrepare:
      REPDIR_CRASH_POINT("wal.before_prepare_flush");
      break;
    case WalRecordType::kCommit:
      REPDIR_CRASH_POINT("wal.before_commit_flush");
      break;
    default:
      break;
  }
  REPDIR_RETURN_IF_ERROR(Flush());
  switch (type) {
    case WalRecordType::kPrepare:
      // The participant's promise is durable but no decision is - a death
      // here surfaces the transaction as in-doubt on recovery.
      REPDIR_CRASH_POINT("wal.after_prepare_flush");
      break;
    case WalRecordType::kCommit:
      REPDIR_CRASH_POINT("wal.after_commit_flush");
      break;
    default:
      break;
  }
  return Status::Ok();
}

Status WalWriter::WriteCheckpoint(const std::vector<StoredEntry>& snapshot) {
  // The checkpoint supersedes all prior history. The swap must be atomic:
  // truncate-then-append would leave an empty log - total data loss - if
  // the process died between the two, so the whole new log (exactly one
  // checkpoint record) is installed with a single Rewrite.
  WalRecord rec;
  rec.type = WalRecordType::kCheckpoint;
  rec.body = EncodeSnapshot(snapshot);
  checkpoints_->Increment();
  checkpoint_bytes_->Increment(rec.body.size());

  ByteWriter payload;
  rec.Encode(payload);
  ByteWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(payload.size()));
  frame.PutU32(Crc32c(payload.data().data(), payload.size()));
  frame.PutRaw(payload.data().data(), payload.size());
  const auto bytes = frame.Take();
  appends_->Increment();
  append_bytes_->Increment(bytes.size());

  REPDIR_CRASH_POINT("wal.mid_checkpoint");
  REPDIR_RETURN_IF_ERROR(device_->Rewrite(
      std::string_view(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size())));
  flushes_->Increment();
  REPDIR_CRASH_POINT("wal.after_checkpoint");
  return Status::Ok();
}

Result<std::vector<WalRecord>> ParseLog(std::string_view bytes,
                                        std::size_t* valid_bytes) {
  std::vector<WalRecord> records;
  std::size_t valid = 0;
  ByteReader r(bytes);
  while (!r.AtEnd()) {
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    if (!r.GetU32(length).ok() || !r.GetU32(crc).ok()) break;  // torn tail
    if (r.remaining() < length) break;                         // torn tail
    const char* payload = bytes.data() + (bytes.size() - r.remaining());
    if (Crc32c(payload, length) != crc) {
      break;  // corrupt tail frame: end of usable log
    }
    ByteReader payload_view(payload, length);
    WalRecord rec;
    if (!rec.Decode(payload_view).ok() || !payload_view.AtEnd()) break;
    records.push_back(std::move(rec));
    REPDIR_RETURN_IF_ERROR(r.Skip(length));
    valid = bytes.size() - r.remaining();
  }
  if (valid_bytes != nullptr) *valid_bytes = valid;
  return records;
}

Result<std::vector<WalRecord>> ReadLog(const LogDevice& device) {
  REPDIR_ASSIGN_OR_RETURN(const std::string bytes, device.ReadDurable());
  return ParseLog(bytes);
}

std::string EncodeSnapshot(const std::vector<StoredEntry>& snapshot) {
  ByteWriter w;
  w.PutVarint(snapshot.size());
  for (const auto& e : snapshot) e.Encode(w);
  return w.TakeString();
}

Result<std::vector<StoredEntry>> DecodeSnapshot(const std::string& body) {
  ByteReader r(body);
  std::uint64_t count = 0;
  REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
  std::vector<StoredEntry> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    StoredEntry e;
    REPDIR_RETURN_IF_ERROR(e.Decode(r));
    out.push_back(std::move(e));
  }
  REPDIR_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

}  // namespace repdir::storage
