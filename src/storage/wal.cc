#include "storage/wal.h"

#include <chrono>

#include "storage/crash_point.h"

namespace repdir::storage {

void WalOp::Encode(ByteWriter& w) const {
  w.PutU8(static_cast<std::uint8_t>(kind));
  key.Encode(w);
  upper.Encode(w);
  w.PutU64(version);
  w.PutString(value);
}

Status WalOp::Decode(ByteReader& r) {
  std::uint8_t kind8 = 0;
  REPDIR_RETURN_IF_ERROR(r.GetU8(kind8));
  if (kind8 != static_cast<std::uint8_t>(Kind::kInsert) &&
      kind8 != static_cast<std::uint8_t>(Kind::kCoalesce)) {
    return Status::Corruption("bad WalOp kind");
  }
  kind = static_cast<Kind>(kind8);
  REPDIR_RETURN_IF_ERROR(key.Decode(r));
  REPDIR_RETURN_IF_ERROR(upper.Decode(r));
  REPDIR_RETURN_IF_ERROR(r.GetU64(version));
  return r.GetString(value);
}

void WalRecord::Encode(ByteWriter& w) const {
  w.PutU8(static_cast<std::uint8_t>(type));
  w.PutU64(txn);
  w.PutString(body);
}

Status WalRecord::Decode(ByteReader& r) {
  std::uint8_t type8 = 0;
  REPDIR_RETURN_IF_ERROR(r.GetU8(type8));
  if (type8 < static_cast<std::uint8_t>(WalRecordType::kOp) ||
      type8 > static_cast<std::uint8_t>(WalRecordType::kCheckpoint)) {
    return Status::Corruption("bad WalRecord type");
  }
  type = static_cast<WalRecordType>(type8);
  REPDIR_RETURN_IF_ERROR(r.GetU64(txn));
  return r.GetString(body);
}

Status WalWriter::AppendInternal(const WalRecord& record,
                                 std::uint64_t* seq_out) {
  ByteWriter payload;
  record.Encode(payload);

  ByteWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(payload.size()));
  frame.PutU32(Crc32c(payload.data().data(), payload.size()));
  frame.PutRaw(payload.data().data(), payload.size());

  const auto bytes = frame.Take();
  appends_->Increment();
  append_bytes_->Increment(bytes.size());
  const std::string_view view(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());
  std::lock_guard<std::mutex> dev(dev_mu_);
  Status st;
  if (CrashPoints::Instance().armed()) {
    // Append the frame in two halves so "wal.mid_append" can die with a
    // torn frame on the medium (handlers decide what reaches durability).
    const std::size_t half = view.size() / 2;
    st = device_->Append(view.substr(0, half));
    if (st.ok()) {
      REPDIR_CRASH_POINT("wal.mid_append");
      st = device_->Append(view.substr(half));
    }
  } else {
    st = device_->Append(view);
  }
  if (st.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++appended_seq_;
    if (seq_out != nullptr) *seq_out = appended_seq_;
  }
  return st;
}

Status WalWriter::Append(const WalRecord& record) {
  return AppendInternal(record, nullptr);
}

Status WalWriter::Flush() {
  // The explicit flush is unconditional: even with nothing newly appended
  // it pushes the device (and walks the before/after crash points) exactly
  // as it always did. Only the piggybacking SyncTo path may skip a flush
  // that another committer's already covered.
  std::unique_lock<std::mutex> lk(mu_);
  while (flush_in_progress_) cv_.wait(lk);
  flush_in_progress_ = true;
  const std::uint64_t flush_to = appended_seq_;
  const std::uint64_t covered = pending_syncs_ + 1;
  pending_syncs_ = 0;
  lk.unlock();
  REPDIR_CRASH_POINT("wal.before_flush");
  flushes_->Increment();
  Status st;
  {
    std::lock_guard<std::mutex> dev(dev_mu_);
    st = device_->Flush();
  }
  if (st.ok()) REPDIR_CRASH_POINT("wal.after_flush");
  lk.lock();
  flush_in_progress_ = false;
  if (st.ok()) {
    if (flush_to > flushed_seq_) flushed_seq_ = flush_to;
    gc_batches_->Increment();
    gc_ops_per_flush_->Record(static_cast<double>(covered));
  }
  cv_.notify_all();
  return st;
}

Status WalWriter::SyncTo(std::uint64_t seq) {
  std::unique_lock<std::mutex> lk(mu_);
  if (flushed_seq_ >= seq) return Status::Ok();
  ++pending_syncs_;
  for (;;) {
    if (flushed_seq_ >= seq) return Status::Ok();
    if (flush_in_progress_) {
      // Follower: an in-flight flush will cover this record (its leader
      // snapshots appended_seq_, which includes it) - share that flush.
      cv_.wait(lk);
      continue;
    }
    // Leader: flush on behalf of every waiter registered so far.
    flush_in_progress_ = true;
    if (gc_.window_us > 0) {
      // Bounded group-commit window: hold the flush open briefly so
      // concurrent committers can append their decisions and join. The
      // timeout bounds the wait - the flush proceeds regardless.
      if (gc_.window_hook) {
        lk.unlock();
        gc_.window_hook();
        lk.lock();
      } else {
        cv_.wait_for(lk, std::chrono::microseconds(gc_.window_us));
      }
    }
    const std::uint64_t flush_to = appended_seq_;
    const std::uint64_t covered = pending_syncs_;
    pending_syncs_ = 0;
    lk.unlock();
    // A death here loses every byte appended since the previous flush.
    REPDIR_CRASH_POINT("wal.before_flush");
    flushes_->Increment();
    Status st;
    {
      std::lock_guard<std::mutex> dev(dev_mu_);
      st = device_->Flush();
    }
    if (st.ok()) REPDIR_CRASH_POINT("wal.after_flush");
    lk.lock();
    flush_in_progress_ = false;
    if (st.ok()) {
      if (flush_to > flushed_seq_) flushed_seq_ = flush_to;
      gc_batches_->Increment();
      gc_ops_per_flush_->Record(static_cast<double>(covered));
    }
    cv_.notify_all();
    if (!st.ok()) return st;
  }
}

Status WalWriter::AppendOp(TxnId txn, const WalOp& op) {
  WalRecord rec;
  rec.type = WalRecordType::kOp;
  rec.txn = txn;
  ByteWriter body;
  op.Encode(body);
  rec.body = body.TakeString();
  return Append(rec);
}

Result<std::uint64_t> WalWriter::AppendDecisionRecord(WalRecordType type,
                                                      TxnId txn) {
  WalRecord rec;
  rec.type = type;
  rec.txn = txn;
  std::uint64_t seq = 0;
  REPDIR_RETURN_IF_ERROR(AppendInternal(rec, &seq));
  return seq;
}

Status WalWriter::SyncDecision(std::uint64_t seq, WalRecordType type) {
  switch (type) {
    case WalRecordType::kPrepare:
      REPDIR_CRASH_POINT("wal.before_prepare_flush");
      break;
    case WalRecordType::kCommit:
      REPDIR_CRASH_POINT("wal.before_commit_flush");
      break;
    default:
      break;
  }
  REPDIR_RETURN_IF_ERROR(SyncTo(seq));
  switch (type) {
    case WalRecordType::kPrepare:
      // The participant's promise is durable but no decision is - a death
      // here surfaces the transaction as in-doubt on recovery.
      REPDIR_CRASH_POINT("wal.after_prepare_flush");
      break;
    case WalRecordType::kCommit:
      REPDIR_CRASH_POINT("wal.after_commit_flush");
      break;
    default:
      break;
  }
  return Status::Ok();
}

Status WalWriter::AppendDecision(WalRecordType type, TxnId txn) {
  REPDIR_ASSIGN_OR_RETURN(const std::uint64_t seq,
                          AppendDecisionRecord(type, txn));
  return SyncDecision(seq, type);
}

Status WalWriter::WriteCheckpoint(const std::vector<StoredEntry>& snapshot) {
  // The checkpoint supersedes all prior history. The swap must be atomic:
  // truncate-then-append would leave an empty log - total data loss - if
  // the process died between the two, so the whole new log (exactly one
  // checkpoint record) is installed with a single Rewrite.
  WalRecord rec;
  rec.type = WalRecordType::kCheckpoint;
  rec.body = EncodeSnapshot(snapshot);
  checkpoints_->Increment();
  checkpoint_bytes_->Increment(rec.body.size());

  ByteWriter payload;
  rec.Encode(payload);
  ByteWriter frame;
  frame.PutU32(static_cast<std::uint32_t>(payload.size()));
  frame.PutU32(Crc32c(payload.data().data(), payload.size()));
  frame.PutRaw(payload.data().data(), payload.size());
  const auto bytes = frame.Take();
  appends_->Increment();
  append_bytes_->Increment(bytes.size());

  std::lock_guard<std::mutex> dev(dev_mu_);
  REPDIR_CRASH_POINT("wal.mid_checkpoint");
  REPDIR_RETURN_IF_ERROR(device_->Rewrite(
      std::string_view(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size())));
  flushes_->Increment();
  {
    // The rewrite installed a fully durable log: one record, flushed.
    std::lock_guard<std::mutex> lk(mu_);
    ++appended_seq_;
    flushed_seq_ = appended_seq_;
  }
  REPDIR_CRASH_POINT("wal.after_checkpoint");
  return Status::Ok();
}

Result<std::vector<WalRecord>> ParseLog(std::string_view bytes,
                                        std::size_t* valid_bytes) {
  std::vector<WalRecord> records;
  std::size_t valid = 0;
  ByteReader r(bytes);
  while (!r.AtEnd()) {
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    if (!r.GetU32(length).ok() || !r.GetU32(crc).ok()) break;  // torn tail
    if (r.remaining() < length) break;                         // torn tail
    const char* payload = bytes.data() + (bytes.size() - r.remaining());
    if (Crc32c(payload, length) != crc) {
      break;  // corrupt tail frame: end of usable log
    }
    ByteReader payload_view(payload, length);
    WalRecord rec;
    if (!rec.Decode(payload_view).ok() || !payload_view.AtEnd()) break;
    records.push_back(std::move(rec));
    REPDIR_RETURN_IF_ERROR(r.Skip(length));
    valid = bytes.size() - r.remaining();
  }
  if (valid_bytes != nullptr) *valid_bytes = valid;
  return records;
}

Result<std::vector<WalRecord>> ReadLog(const LogDevice& device) {
  REPDIR_ASSIGN_OR_RETURN(const std::string bytes, device.ReadDurable());
  return ParseLog(bytes);
}

std::string EncodeSnapshot(const std::vector<StoredEntry>& snapshot) {
  ByteWriter w;
  w.PutVarint(snapshot.size());
  for (const auto& e : snapshot) e.Encode(w);
  return w.TakeString();
}

Result<std::vector<StoredEntry>> DecodeSnapshot(const std::string& body) {
  ByteReader r(body);
  std::uint64_t count = 0;
  REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
  std::vector<StoredEntry> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    StoredEntry e;
    REPDIR_RETURN_IF_ERROR(e.Decode(r));
    out.push_back(std::move(e));
  }
  REPDIR_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

}  // namespace repdir::storage
