// Network fault and latency model for the in-process transports.
//
// Decides, per message, whether delivery succeeds and how long it takes:
//   * per-node up/down state (crashed nodes receive nothing),
//   * partitions between nodes - symmetric or one-way (an asymmetric cut
//     drops A->B traffic while B->A still delivers, the classic half-open
//     link that quorum intersection must survive),
//   * per-message drop probability,
//   * latency = base + uniform jitter, with an optional per-link override
//     (used by the Figure 16 locality experiment to make some
//     representatives "local" and others "remote").
#pragma once

#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace repdir::sim {

struct LinkSpec {
  DurationMicros base_latency = 0;   ///< Minimum one-way latency.
  DurationMicros jitter = 0;         ///< Uniform extra in [0, jitter].
  double drop_probability = 0.0;     ///< Per-message loss.
  double duplicate_probability = 0.0;  ///< Per-message duplication (the
                                       ///< transport delivers it twice;
                                       ///< handlers must be idempotent).
};

class NetworkModel {
 public:
  explicit NetworkModel(std::uint64_t seed = 1) : rng_(seed) {}

  /// Default behaviour for links without an override.
  void SetDefaultLink(LinkSpec spec) { default_link_ = spec; }

  /// Overrides the (from, to) link; direction-specific.
  void SetLink(NodeId from, NodeId to, LinkSpec spec) {
    links_[{from, to}] = spec;
  }

  void SetNodeUp(NodeId node, bool up) {
    if (up) {
      down_.erase(node);
    } else {
      down_.insert(node);
    }
  }
  bool IsNodeUp(NodeId node) const { return !down_.contains(node); }

  /// Cuts all traffic between `a` and `b` (both directions).
  void Partition(NodeId a, NodeId b) {
    cuts_.insert({a, b});
    cuts_.insert({b, a});
  }

  /// Cuts only `from` -> `to` traffic; the reverse direction still
  /// delivers. Requests die on an A->B cut; on a B->A cut the request is
  /// delivered (and executed!) but the reply is lost.
  void PartitionOneWay(NodeId from, NodeId to) { cuts_.insert({from, to}); }

  /// Restores both directions between `a` and `b`.
  void Heal(NodeId a, NodeId b) {
    cuts_.erase({a, b});
    cuts_.erase({b, a});
  }
  void HealOneWay(NodeId from, NodeId to) { cuts_.erase({from, to}); }
  void HealAll() { cuts_.clear(); }

  /// Drops every per-link override, restoring the default link everywhere.
  /// Cuts and node up/down state are untouched (see HealAll / SetNodeUp).
  void ResetLinks() { links_.clear(); }

  bool IsCut(NodeId from, NodeId to) const {
    return cuts_.contains({from, to});
  }

  /// Returns the one-way delivery delay, or kUnavailable if the message is
  /// lost (destination down, link partitioned, or randomly dropped).
  Result<DurationMicros> DeliveryDelay(NodeId from, NodeId to) {
    if (down_.contains(to)) {
      return Status::Unavailable("destination node down");
    }
    if (down_.contains(from)) {
      return Status::Unavailable("source node down");
    }
    if (cuts_.contains({from, to})) {
      return Status::Unavailable("link partitioned");
    }
    const LinkSpec& spec = SpecFor(from, to);
    if (spec.drop_probability > 0.0 && rng_.Chance(spec.drop_probability)) {
      return Status::Unavailable("message dropped");
    }
    DurationMicros d = spec.base_latency;
    if (spec.jitter > 0) d += rng_.Range(0, spec.jitter);
    return d;
  }

  /// Rolls whether the (from, to) request should be delivered twice.
  bool ShouldDuplicate(NodeId from, NodeId to) {
    const LinkSpec& spec = SpecFor(from, to);
    return spec.duplicate_probability > 0.0 &&
           rng_.Chance(spec.duplicate_probability);
  }

  /// Latency spec lookup without rolling the dice (for diagnostics).
  const LinkSpec& SpecFor(NodeId from, NodeId to) const {
    const auto it = links_.find({from, to});
    return it == links_.end() ? default_link_ : it->second;
  }

 private:
  Rng rng_;
  LinkSpec default_link_;
  std::map<std::pair<NodeId, NodeId>, LinkSpec> links_;
  std::set<NodeId> down_;
  std::set<std::pair<NodeId, NodeId>> cuts_;  ///< Directed (from, to) cuts.
};

}  // namespace repdir::sim
