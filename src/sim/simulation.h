// Simulation: virtual clock + event queue, with the run loop that advances
// time to each event. Deterministic given a seed (all randomness flows
// through an explicitly seeded Rng owned by the caller).
#pragma once

#include <cassert>
#include <limits>

#include "common/clock.h"
#include "sim/event_queue.h"

namespace repdir::sim {

class Simulation {
 public:
  Clock& clock() { return clock_; }
  const Clock& clock() const { return clock_; }
  TimeMicros Now() const { return clock_.Now(); }

  /// Schedules an action `delay` after the current virtual time.
  void After(DurationMicros delay, EventQueue::Action action) {
    queue_.ScheduleAt(Now() + delay, std::move(action));
  }

  /// Schedules at an absolute virtual time (must not be in the past).
  void At(TimeMicros when, EventQueue::Action action) {
    assert(when >= Now());
    queue_.ScheduleAt(when, std::move(action));
  }

  /// Runs events until the queue drains or virtual time would pass
  /// `deadline`. Returns the number of events executed.
  std::uint64_t RunUntil(
      TimeMicros deadline = std::numeric_limits<TimeMicros>::max()) {
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.NextTime() <= deadline) {
      clock_.AdvanceTo(queue_.NextTime());
      queue_.RunOne();
      ++executed;
    }
    if (deadline != std::numeric_limits<TimeMicros>::max()) {
      clock_.AdvanceTo(deadline);  // time passes even when idle
    }
    return executed;
  }

  /// Runs exactly one event if any is pending. Returns false when idle.
  bool Step() {
    if (queue_.empty()) return false;
    clock_.AdvanceTo(queue_.NextTime());
    queue_.RunOne();
    return true;
  }

  bool Idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  VirtualClock clock_;
  EventQueue queue_;
};

}  // namespace repdir::sim
