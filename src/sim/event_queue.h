// Discrete-event queue: the heart of the deterministic simulator.
//
// Events are (time, sequence, closure) triples ordered by time with FIFO
// tie-breaking, so a run is a pure function of the seed and the schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace repdir::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute virtual time `when`. Events at equal
  /// times run in scheduling order.
  void ScheduleAt(TimeMicros when, Action action) {
    heap_.push(Event{when, next_seq_++, std::move(action)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event. Undefined when empty.
  TimeMicros NextTime() const { return heap_.top().when; }

  /// Pops and runs the earliest event; returns its timestamp.
  TimeMicros RunOne() {
    // Move the action out before popping: the action may schedule new events.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    ev.action();
    return ev.when;
  }

 private:
  struct Event {
    TimeMicros when;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace repdir::sim
