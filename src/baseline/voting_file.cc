#include "baseline/voting_file.h"

#include <cassert>

#include "net/retry.h"

namespace repdir::baseline {

namespace {

constexpr txn::TxnControlMethods kFileTxnMethods{kFilePrepare, kFileCommit,
                                                 kFileAbort};

/// The whole file is modeled as the single "key" LOW for locking purposes.
lock::KeyRange WholeFile() {
  return lock::KeyRange::Point(storage::RepKey::Low());
}

}  // namespace

FileRepNode::FileRepNode(NodeId id, lock::DeadlockDetector* detector,
                         bool blocking_locks)
    : id_(id), blocking_locks_(blocking_locks), server_(id),
      locks_(detector) {
  RegisterHandlers();
}

Version FileRepNode::version() const {
  std::lock_guard<std::mutex> guard(mu_);
  return version_;
}

std::string FileRepNode::content() const {
  std::lock_guard<std::mutex> guard(mu_);
  return content_;
}

Status FileRepNode::AcquireLock(TxnId txn, lock::LockMode mode) {
  if (blocking_locks_) return locks_.Acquire(txn, mode, WholeFile());
  return locks_.TryAcquire(txn, mode, WholeFile());
}

void FileRepNode::RegisterHandlers() {
  using net::Empty;
  using net::RpcRequest;

  server_.RegisterTyped<Empty, Empty>(
      kFilePing,
      [](const RpcRequest&, const Empty&, Empty&) { return Status::Ok(); });

  server_.RegisterTyped<FileReadRequest, FileReadReply>(
      kFileRead,
      [this](const RpcRequest& env, const FileReadRequest& req,
             FileReadReply& out) {
        REPDIR_RETURN_IF_ERROR(AcquireLock(
            env.txn, req.for_update ? lock::LockMode::kModify
                                    : lock::LockMode::kLookup));
        std::lock_guard<std::mutex> guard(mu_);
        txns_[env.txn];  // participant state (so 2PC reaches us)
        out.version = version_;
        out.content = content_;
        return Status::Ok();
      });

  server_.RegisterTyped<FileWriteRequest, Empty>(
      kFileWrite,
      [this](const RpcRequest& env, const FileWriteRequest& req, Empty&) {
        REPDIR_RETURN_IF_ERROR(AcquireLock(env.txn, lock::LockMode::kModify));
        std::lock_guard<std::mutex> guard(mu_);
        TxnUndo& undo = txns_[env.txn];
        if (!undo.has_write) {
          undo.has_write = true;
          undo.old_version = version_;
          undo.old_content = content_;
        }
        version_ = req.version;
        content_ = req.content;
        return Status::Ok();
      });

  server_.RegisterTyped<Empty, Empty>(
      kFilePrepare, [this](const RpcRequest& env, const Empty&, Empty&) {
        std::lock_guard<std::mutex> guard(mu_);
        return txns_.contains(env.txn)
                   ? Status::Ok()
                   : Status::FailedPrecondition("prepare of unknown txn");
      });

  server_.RegisterTyped<Empty, Empty>(
      kFileCommit, [this](const RpcRequest& env, const Empty&, Empty&) {
        {
          std::lock_guard<std::mutex> guard(mu_);
          txns_.erase(env.txn);
        }
        locks_.ReleaseAll(env.txn);
        return Status::Ok();
      });

  server_.RegisterTyped<Empty, Empty>(
      kFileAbort, [this](const RpcRequest& env, const Empty&, Empty&) {
        {
          std::lock_guard<std::mutex> guard(mu_);
          const auto it = txns_.find(env.txn);
          if (it != txns_.end()) {
            if (it->second.has_write) {
              version_ = it->second.old_version;
              content_ = it->second.old_content;
            }
            txns_.erase(it);
          }
        }
        locks_.ReleaseAll(env.txn);
        return Status::Ok();
      });
}

VotingFile::VotingFile(net::Transport& transport, NodeId client_node,
                       Options options)
    : client_(transport, client_node),
      options_(std::move(options)),
      txn_ids_(client_node),
      committer_(client_, kFileTxnMethods) {
  assert(options_.config.Validate(/*require_write_intersection=*/true).ok() &&
         "voting files require W > V/2 (writes do not read first)");
  if (options_.policy != nullptr) {
    policy_ = std::move(options_.policy);
  } else {
    policy_ = std::make_unique<rep::RandomQuorumPolicy>(options_.config,
                                                        options_.policy_seed);
  }
}

Result<std::vector<NodeId>> VotingFile::CollectQuorum(OpClass klass) {
  const Votes quota = klass == OpClass::kRead ? options_.config.read_quorum()
                                              : options_.config.write_quorum();
  std::vector<NodeId> members;
  Votes votes = 0;
  for (const NodeId node : policy_->PreferenceOrder(klass)) {
    const Status st =
        client_.Call<net::Empty>(node, kFilePing, net::Empty{}).status();
    if (!st.ok()) continue;
    members.push_back(node);
    votes += options_.config.VotesOf(node);
    if (votes >= quota) return members;
  }
  return Status::Unavailable("file quorum unavailable");
}

Result<FileReadReply> VotingFile::QuorumRead(OpCtx& ctx, bool for_update) {
  REPDIR_ASSIGN_OR_RETURN(const auto quorum, CollectQuorum(OpClass::kRead));
  FileReadReply best;
  bool first = true;
  for (const NodeId node : quorum) {
    ctx.participants.insert(node);
    REPDIR_ASSIGN_OR_RETURN(
        const FileReadReply reply,
        client_.Call<FileReadReply>(node, kFileRead,
                                    FileReadRequest{for_update}, ctx.txn));
    if (first || reply.version > best.version) {
      best = reply;
      first = false;
    }
  }
  return best;
}

Status VotingFile::QuorumWrite(OpCtx& ctx, Version version,
                               const std::string& content) {
  REPDIR_ASSIGN_OR_RETURN(const auto quorum, CollectQuorum(OpClass::kWrite));
  for (const NodeId node : quorum) {
    ctx.participants.insert(node);
    REPDIR_RETURN_IF_ERROR(
        client_
            .Call<net::Empty>(node, kFileWrite,
                              FileWriteRequest{version, content}, ctx.txn)
            .status());
  }
  return Status::Ok();
}

Result<std::string> VotingFile::Read() {
  std::string out;
  const Status st = RunTxn([&](OpCtx& ctx) -> Status {
    REPDIR_ASSIGN_OR_RETURN(const FileReadReply reply,
                            QuorumRead(ctx, /*for_update=*/false));
    out = reply.content;
    return Status::Ok();
  });
  REPDIR_RETURN_IF_ERROR(st);
  return out;
}

Status VotingFile::Write(const std::string& content) {
  return RunTxn([&](OpCtx& ctx) -> Status {
    REPDIR_ASSIGN_OR_RETURN(const FileReadReply current,
                            QuorumRead(ctx, /*for_update=*/true));
    return QuorumWrite(ctx, current.version + 1, content);
  });
}

}  // namespace repdir::baseline
