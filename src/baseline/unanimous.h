// Unanimous-update configuration helper (paper §2).
//
// Unanimous update - "any update operation must be done on all replicas,
// but reads may be directed to any replica" - is exactly the degenerate
// quorum configuration R = 1, W = V over the directory suite. These
// helpers build such configs so benchmarks can compare availability and
// delete overhead against balanced quorums without duplicating machinery.
#pragma once

#include "rep/quorum.h"

namespace repdir::baseline {

/// n one-vote replicas, read-one / write-all.
inline rep::QuorumConfig UnanimousConfig(std::uint32_t replicas,
                                         NodeId first_node = 1) {
  return rep::QuorumConfig::Uniform(replicas, /*read_quorum=*/1,
                                    /*write_quorum=*/replicas, first_node);
}

/// n one-vote replicas, read-all / write-one (the opposite extreme; useful
/// in availability sweeps).
inline rep::QuorumConfig ReadAllWriteOneConfig(std::uint32_t replicas,
                                               NodeId first_node = 1) {
  return rep::QuorumConfig::Uniform(replicas, /*read_quorum=*/replicas,
                                    /*write_quorum=*/1, first_node);
}

}  // namespace repdir::baseline
