// Primary/secondary-copy replication baseline (paper §2).
//
// All updates go to the primary copy, which relays them to secondaries.
// Inquiries may be served by any copy - but a secondary answers from
// whatever it has received so far, so a read can miss recent updates.
// This model quantifies that semantic deficiency: relays sit in a queue
// until FlushRelays() (simulating propagation delay), and reads report
// whether they were stale with respect to the primary.
//
// Modeled in-process (no RPC): the interesting property is semantic, not
// mechanical, and the unanimous-update baseline already exercises the wire.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace repdir::baseline {

class PrimaryCopyDirectory {
 public:
  /// `replicas` includes the primary (index 0).
  explicit PrimaryCopyDirectory(std::size_t replicas);

  Status Insert(const UserKey& key, const Value& value);
  Status Update(const UserKey& key, const Value& value);
  Status Delete(const UserKey& key);

  struct ReadResult {
    bool found = false;
    Value value;
    bool stale = false;  ///< Differs from the primary's current answer.
  };

  /// Reads from the given replica (0 = primary, always fresh).
  Result<ReadResult> Lookup(std::size_t replica, const UserKey& key);

  /// Delivers `n` queued relay operations to the secondaries (all if n==0).
  void FlushRelays(std::size_t n = 0);

  std::size_t pending_relays() const { return relay_queue_.size(); }
  std::size_t replica_count() const { return replicas_.size(); }

  /// Reads observed to be stale so far (for the baseline report).
  std::uint64_t stale_reads() const { return stale_reads_; }

 private:
  struct RelayOp {
    bool is_delete = false;
    UserKey key;
    Value value;
  };

  void ApplyToPrimaryAndQueue(RelayOp op);

  std::vector<std::map<UserKey, Value>> replicas_;
  std::deque<RelayOp> relay_queue_;
  std::uint64_t stale_reads_ = 0;
};

}  // namespace repdir::baseline
