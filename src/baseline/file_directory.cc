#include "baseline/file_directory.h"

namespace repdir::baseline {

std::string FileDirectory::EncodeImage(
    const std::map<UserKey, Value>& entries) {
  ByteWriter w;
  w.PutVarint(entries.size());
  for (const auto& [key, value] : entries) {
    w.PutString(key);
    w.PutString(value);
  }
  return w.TakeString();
}

Result<std::map<UserKey, Value>> FileDirectory::DecodeImage(
    const std::string& bytes) {
  if (bytes.empty()) return std::map<UserKey, Value>{};  // fresh file
  ByteReader r(bytes);
  std::uint64_t count = 0;
  REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
  std::map<UserKey, Value> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    UserKey key;
    Value value;
    REPDIR_RETURN_IF_ERROR(r.GetString(key));
    REPDIR_RETURN_IF_ERROR(r.GetString(value));
    entries.emplace(std::move(key), std::move(value));
  }
  REPDIR_RETURN_IF_ERROR(r.ExpectEnd());
  return entries;
}

Result<FileDirectory::LookupResult> FileDirectory::Lookup(const UserKey& key) {
  REPDIR_ASSIGN_OR_RETURN(const std::string image, file_.Read());
  REPDIR_ASSIGN_OR_RETURN(const auto entries, DecodeImage(image));
  LookupResult out;
  const auto it = entries.find(key);
  if (it != entries.end()) {
    out.found = true;
    out.value = it->second;
  }
  return out;
}

Status FileDirectory::Insert(const UserKey& key, const Value& value) {
  return file_.Modify([&](std::string& image) -> Status {
    REPDIR_ASSIGN_OR_RETURN(auto entries, DecodeImage(image));
    if (entries.contains(key)) {
      return Status::AlreadyExists("entry exists for key " + key);
    }
    entries.emplace(key, value);
    image = EncodeImage(entries);
    return Status::Ok();
  });
}

Status FileDirectory::Update(const UserKey& key, const Value& value) {
  return file_.Modify([&](std::string& image) -> Status {
    REPDIR_ASSIGN_OR_RETURN(auto entries, DecodeImage(image));
    const auto it = entries.find(key);
    if (it == entries.end()) {
      return Status::NotFound("no entry for key " + key);
    }
    it->second = value;
    image = EncodeImage(entries);
    return Status::Ok();
  });
}

Status FileDirectory::Delete(const UserKey& key) {
  return file_.Modify([&](std::string& image) -> Status {
    REPDIR_ASSIGN_OR_RETURN(auto entries, DecodeImage(image));
    if (entries.erase(key) == 0) {
      return Status::NotFound("no entry for key " + key);
    }
    image = EncodeImage(entries);
    return Status::Ok();
  });
}

}  // namespace repdir::baseline
