// Gifford's weighted voting for files (the algorithm the paper builds on),
// used as the comparison baseline.
//
// A file representative stores one byte-string and ONE version number; a
// read collects a read quorum and returns the highest-versioned copy; a
// write reads the current version and writes version+1 to a write quorum.
// Because there is a single version number per representative, any two
// modifications conflict: a directory stored through this abstraction
// serializes ALL of its updates (the paper's §2 motivation, measured by
// bench_concurrency).
//
// The implementation mirrors the directory suite's machinery: RPC service
// per replica, whole-object range locks under strict 2PL, undo on abort,
// two-phase commit.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "lock/range_lock_manager.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "rep/quorum_policy.h"
#include "txn/coordinator.h"
#include "txn/txn_id.h"

namespace repdir::baseline {

using rep::OpClass;
using rep::QuorumConfig;
using rep::QuorumPolicy;

/// Method id space of the file service (disjoint from DirRepMethod).
enum FileRepMethod : net::MethodId {
  kFilePing = 200,
  kFileRead = 201,
  kFileWrite = 202,
  kFilePrepare = 210,
  kFileCommit = 211,
  kFileAbort = 212,
};

/// Read request; `for_update` makes the read take the whole-file write lock
/// immediately (read-modify-write transactions would otherwise deadlock on
/// the classic lock upgrade when run concurrently).
struct FileReadRequest {
  bool for_update = false;

  void Encode(ByteWriter& w) const { w.PutBool(for_update); }
  Status Decode(ByteReader& r) { return r.GetBool(for_update); }
};

struct FileReadReply {
  Version version = kLowestVersion;
  std::string content;

  void Encode(ByteWriter& w) const {
    w.PutU64(version);
    w.PutString(content);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetU64(version));
    return r.GetString(content);
  }
};

struct FileWriteRequest {
  Version version = kLowestVersion;
  std::string content;

  void Encode(ByteWriter& w) const {
    w.PutU64(version);
    w.PutString(content);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetU64(version));
    return r.GetString(content);
  }
};

/// One file representative: content + single version, whole-object locking,
/// transactional via the same 2PC control verbs as the directory service.
class FileRepNode {
 public:
  explicit FileRepNode(NodeId id, lock::DeadlockDetector* detector = nullptr,
                       bool blocking_locks = true);

  NodeId id() const { return id_; }
  net::RpcServer& server() { return server_; }

  Version version() const;
  std::string content() const;

 private:
  struct TxnUndo {
    bool has_write = false;
    Version old_version = kLowestVersion;
    std::string old_content;
  };

  Status AcquireLock(TxnId txn, lock::LockMode mode);
  void RegisterHandlers();

  NodeId id_;
  bool blocking_locks_;
  net::RpcServer server_;
  lock::RangeLockManager locks_;
  mutable std::mutex mu_;
  Version version_ = kLowestVersion;
  std::string content_;
  std::map<TxnId, TxnUndo> txns_;
};

/// Client-side replicated file suite.
class VotingFile {
 public:
  struct Options {
    QuorumConfig config;
    std::unique_ptr<QuorumPolicy> policy;  ///< default: random(policy_seed)
    std::uint64_t policy_seed = 42;
  };

  VotingFile(net::Transport& transport, NodeId client_node, Options options);

  /// Highest-versioned copy from a read quorum.
  Result<std::string> Read();

  /// Replaces the contents (read current version, write version+1).
  Status Write(const std::string& content);

  /// Atomic read-modify-write: `fn` receives the current content and edits
  /// it in place; a non-OK return aborts without writing.
  template <typename Fn>
  Status Modify(Fn&& fn);

 private:
  struct OpCtx {
    TxnId txn;
    std::set<NodeId> participants;
  };

  Result<std::vector<NodeId>> CollectQuorum(OpClass klass);
  Result<FileReadReply> QuorumRead(OpCtx& ctx, bool for_update);
  Status QuorumWrite(OpCtx& ctx, Version version, const std::string& content);

  template <typename Fn>
  Status RunTxn(Fn&& body);

  net::RpcClient client_;
  Options options_;
  std::unique_ptr<QuorumPolicy> policy_;
  txn::TxnIdFactory txn_ids_;
  txn::TwoPhaseCommitter committer_;
};

template <typename Fn>
Status VotingFile::RunTxn(Fn&& body) {
  OpCtx ctx{txn_ids_.Next(), {}};
  const Status st = body(ctx);
  if (!st.ok()) {
    committer_.Abort(ctx.txn, ctx.participants);
    return st;
  }
  return committer_.Commit(ctx.txn, ctx.participants);
}

template <typename Fn>
Status VotingFile::Modify(Fn&& fn) {
  return RunTxn([&](OpCtx& ctx) -> Status {
    REPDIR_ASSIGN_OR_RETURN(FileReadReply current,
                            QuorumRead(ctx, /*for_update=*/true));
    REPDIR_RETURN_IF_ERROR(fn(current.content));
    return QuorumWrite(ctx, current.version + 1, current.content);
  });
}

}  // namespace repdir::baseline
