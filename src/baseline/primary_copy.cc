#include "baseline/primary_copy.h"

namespace repdir::baseline {

PrimaryCopyDirectory::PrimaryCopyDirectory(std::size_t replicas)
    : replicas_(replicas == 0 ? 1 : replicas) {}

void PrimaryCopyDirectory::ApplyToPrimaryAndQueue(RelayOp op) {
  auto& primary = replicas_.front();
  if (op.is_delete) {
    primary.erase(op.key);
  } else {
    primary[op.key] = op.value;
  }
  if (replicas_.size() > 1) relay_queue_.push_back(std::move(op));
}

Status PrimaryCopyDirectory::Insert(const UserKey& key, const Value& value) {
  if (replicas_.front().contains(key)) {
    return Status::AlreadyExists("entry exists for key " + key);
  }
  ApplyToPrimaryAndQueue(RelayOp{false, key, value});
  return Status::Ok();
}

Status PrimaryCopyDirectory::Update(const UserKey& key, const Value& value) {
  if (!replicas_.front().contains(key)) {
    return Status::NotFound("no entry for key " + key);
  }
  ApplyToPrimaryAndQueue(RelayOp{false, key, value});
  return Status::Ok();
}

Status PrimaryCopyDirectory::Delete(const UserKey& key) {
  if (!replicas_.front().contains(key)) {
    return Status::NotFound("no entry for key " + key);
  }
  ApplyToPrimaryAndQueue(RelayOp{true, key, {}});
  return Status::Ok();
}

Result<PrimaryCopyDirectory::ReadResult> PrimaryCopyDirectory::Lookup(
    std::size_t replica, const UserKey& key) {
  if (replica >= replicas_.size()) {
    return Status::InvalidArgument("no such replica");
  }
  ReadResult out;
  const auto& copy = replicas_[replica];
  const auto it = copy.find(key);
  if (it != copy.end()) {
    out.found = true;
    out.value = it->second;
  }
  // Staleness check against the primary's current answer.
  const auto& primary = replicas_.front();
  const auto pit = primary.find(key);
  const bool primary_found = pit != primary.end();
  out.stale = (out.found != primary_found) ||
              (out.found && out.value != pit->second);
  if (out.stale) ++stale_reads_;
  return out;
}

void PrimaryCopyDirectory::FlushRelays(std::size_t n) {
  std::size_t remaining = (n == 0) ? relay_queue_.size() : n;
  while (remaining-- > 0 && !relay_queue_.empty()) {
    const RelayOp op = std::move(relay_queue_.front());
    relay_queue_.pop_front();
    for (std::size_t i = 1; i < replicas_.size(); ++i) {
      if (op.is_delete) {
        replicas_[i].erase(op.key);
      } else {
        replicas_[i][op.key] = op.value;
      }
    }
  }
}

}  // namespace repdir::baseline
