// FileDirectory: a directory stored as a single replicated file (the
// strawman the paper's §2 rejects).
//
// The whole (key -> value) map is serialized into one VotingFile. Every
// lookup ships the entire directory; every modification is a whole-file
// read-modify-write, so concurrent modifications - even of different
// entries - conflict on the file's single version number and serialize.
// bench_concurrency quantifies this against the directory suite.
#pragma once

#include <map>

#include "baseline/voting_file.h"

namespace repdir::baseline {

class FileDirectory {
 public:
  FileDirectory(net::Transport& transport, NodeId client_node,
                VotingFile::Options options)
      : file_(transport, client_node, std::move(options)) {}

  struct LookupResult {
    bool found = false;
    Value value;
  };

  Result<LookupResult> Lookup(const UserKey& key);
  Status Insert(const UserKey& key, const Value& value);
  Status Update(const UserKey& key, const Value& value);
  Status Delete(const UserKey& key);

  /// Decodes a serialized directory image (exposed for tests).
  static Result<std::map<UserKey, Value>> DecodeImage(
      const std::string& bytes);
  static std::string EncodeImage(const std::map<UserKey, Value>& entries);

 private:
  VotingFile file_;
};

}  // namespace repdir::baseline
