#include "rep/dir_rep_node.h"

namespace repdir::rep {

DirRepNode::DirRepNode(NodeId id, DirRepNodeOptions options)
    : id_(id), options_(options), server_(id) {
  storage_ = MakeBackend();
  if (options_.enable_wal) {
    if (options_.wal_path.empty()) {
      auto mem = std::make_unique<storage::MemLogDevice>();
      mem_log_ = mem.get();
      log_device_ = std::move(mem);
    } else {
      log_device_ =
          std::make_unique<storage::FileLogDevice>(options_.wal_path);
    }
    wal_ = std::make_unique<storage::WalWriter>(
        *log_device_, options_.participant.metrics, options_.group_commit);
  }
  participant_ = std::make_unique<txn::TxnParticipant>(
      *storage_, options_.detector, wal_.get(), options_.participant);
  RegisterHandlers();
}

std::unique_ptr<storage::RepStorage> DirRepNode::MakeBackend() const {
  if (options_.backend == DirRepNodeOptions::Backend::kBTree) {
    return std::make_unique<storage::BTreeStorage>(options_.btree_fanout);
  }
  return std::make_unique<storage::MapStorage>();
}

void DirRepNode::Crash() {
  if (mem_log_ != nullptr) mem_log_->Crash();
  storage_->Clear();
  // The participant's transaction table and lock table are volatile: a
  // fresh participant models the post-crash process.
  participant_ = std::make_unique<txn::TxnParticipant>(
      *storage_, options_.detector, wal_.get(), options_.participant);
}

void DirRepNode::CrashTorn(std::size_t keep_bytes) {
  if (mem_log_ != nullptr) mem_log_->CrashTorn(keep_bytes);
  storage_->Clear();
  participant_ = std::make_unique<txn::TxnParticipant>(
      *storage_, options_.detector, wal_.get(), options_.participant);
}

Result<storage::RecoveryOutcome> DirRepNode::Recover() {
  if (log_device_ == nullptr) {
    return Status::FailedPrecondition("recovery requires a WAL");
  }
  REPDIR_ASSIGN_OR_RETURN(const std::string bytes,
                          log_device_->ReadDurable());
  std::size_t valid_bytes = 0;
  REPDIR_ASSIGN_OR_RETURN(const auto log,
                          storage::ParseLog(bytes, &valid_bytes));
  if (valid_bytes < bytes.size()) {
    // The log ends in the torn tail of the previous crash. Cut it off
    // atomically before the writer appends again: records appended behind
    // a tear parse as garbage, so the *next* recovery would silently
    // discard them - committed transactions included.
    REPDIR_RETURN_IF_ERROR(log_device_->Rewrite(
        std::string_view(bytes).substr(0, valid_bytes)));
  }
  return storage::RecoverRepresentative(*storage_, log);
}

Status DirRepNode::ResolveInDoubt(TxnId txn, bool commit) {
  if (log_device_ == nullptr || wal_ == nullptr) {
    return Status::FailedPrecondition("recovery requires a WAL");
  }
  REPDIR_ASSIGN_OR_RETURN(const auto log, storage::ReadLog(*log_device_));
  return storage::ResolveInDoubt(*storage_, log, txn, commit, *wal_);
}

void DirRepNode::RegisterHandlers() {
  using net::Empty;
  using net::RpcRequest;

  server_.RegisterTyped<Empty, Empty>(
      kPing, [](const RpcRequest&, const Empty&, Empty&) {
        return Status::Ok();
      });

  server_.RegisterTyped<KeyRequest, LookupReply>(
      kLookup,
      [this](const RpcRequest& env, const KeyRequest& req, LookupReply& out) {
        REPDIR_ASSIGN_OR_RETURN(out, participant_->Lookup(env.txn, req.key));
        return Status::Ok();
      });

  server_.RegisterTyped<KeyRequest, NeighborReply>(
      kPredecessor,
      [this](const RpcRequest& env, const KeyRequest& req, NeighborReply& out) {
        REPDIR_ASSIGN_OR_RETURN(out,
                                participant_->Predecessor(env.txn, req.key));
        return Status::Ok();
      });

  server_.RegisterTyped<KeyRequest, NeighborReply>(
      kSuccessor,
      [this](const RpcRequest& env, const KeyRequest& req, NeighborReply& out) {
        REPDIR_ASSIGN_OR_RETURN(out, participant_->Successor(env.txn, req.key));
        return Status::Ok();
      });

  server_.RegisterTyped<NeighborBatchRequest, NeighborBatchReply>(
      kPredecessorBatch,
      [this](const RpcRequest& env, const NeighborBatchRequest& req,
             NeighborBatchReply& out) {
        REPDIR_ASSIGN_OR_RETURN(
            out.steps,
            participant_->PredecessorBatch(env.txn, req.key, req.count));
        return Status::Ok();
      });

  server_.RegisterTyped<NeighborBatchRequest, NeighborBatchReply>(
      kSuccessorBatch,
      [this](const RpcRequest& env, const NeighborBatchRequest& req,
             NeighborBatchReply& out) {
        REPDIR_ASSIGN_OR_RETURN(
            out.steps,
            participant_->SuccessorBatch(env.txn, req.key, req.count));
        return Status::Ok();
      });

  server_.RegisterTyped<InsertRequest, Empty>(
      kInsert,
      [this](const RpcRequest& env, const InsertRequest& req, Empty&) {
        return participant_->Insert(env.txn, req.key, req.version, req.value);
      });

  server_.RegisterTyped<GuardedInsertRequest, Empty>(
      kGuardedInsert,
      [this](const RpcRequest& env, const GuardedInsertRequest& req, Empty&) {
        return participant_->GuardedInsert(env.txn, req.key, req.version,
                                           req.value, req.expected_version);
      });

  server_.RegisterTyped<ValidatedLookupRequest, ValidatedLookupReply>(
      kLookupValidated,
      [this](const RpcRequest& env, const ValidatedLookupRequest& req,
             ValidatedLookupReply& out) {
        REPDIR_ASSIGN_OR_RETURN(out.data, participant_->Lookup(env.txn, req.key));
        // Presence must match alongside the version: per-key version spaces
        // make a present/absent tie at one version impossible on committed
        // data, but the hint is client-supplied - never let a malformed one
        // turn into a wrong "unchanged".
        if (req.has_hint && out.data.version == req.hint_version &&
            out.data.present == req.hint_present) {
          out.unchanged = true;
          out.data.value.clear();
        }
        return Status::Ok();
      });

  server_.RegisterTyped<LookupBatchRequest, LookupBatchReply>(
      kLookupBatch,
      [this](const RpcRequest& env, const LookupBatchRequest& req,
             LookupBatchReply& out) {
        out.replies.reserve(req.keys.size());
        for (const auto& key : req.keys) {
          REPDIR_ASSIGN_OR_RETURN(LookupReply reply,
                                  participant_->Lookup(env.txn, key));
          out.replies.push_back(std::move(reply));
        }
        return Status::Ok();
      });

  server_.RegisterTyped<InsertBatchRequest, Empty>(
      kInsertBatch,
      [this](const RpcRequest& env, const InsertBatchRequest& req, Empty&) {
        for (const auto& ins : req.inserts) {
          REPDIR_RETURN_IF_ERROR(
              participant_->Insert(env.txn, ins.key, ins.version, ins.value));
        }
        return Status::Ok();
      });

  server_.RegisterTyped<CoalesceRequest, CoalesceReply>(
      kCoalesce,
      [this](const RpcRequest& env, const CoalesceRequest& req,
             CoalesceReply& out) {
        REPDIR_ASSIGN_OR_RETURN(
            const storage::CoalesceEffect effect,
            participant_->Coalesce(env.txn, req.low, req.high,
                                   req.gap_version));
        out.erased.reserve(effect.erased.size());
        for (const auto& e : effect.erased) out.erased.push_back(e.key);
        return Status::Ok();
      });

  server_.RegisterTyped<Empty, Empty>(
      kPrepare, [this](const RpcRequest& env, const Empty&, Empty&) {
        return participant_->Prepare(env.txn);
      });

  server_.RegisterTyped<Empty, Empty>(
      kCommit, [this](const RpcRequest& env, const Empty&, Empty&) {
        return participant_->Commit(env.txn);
      });

  server_.RegisterTyped<Empty, Empty>(
      kAbortTxn, [this](const RpcRequest& env, const Empty&, Empty&) {
        return participant_->Abort(env.txn);
      });
}

}  // namespace repdir::rep
