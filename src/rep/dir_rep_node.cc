#include "rep/dir_rep_node.h"

namespace repdir::rep {

DirRepNode::DirRepNode(NodeId id, DirRepNodeOptions options)
    : id_(id), options_(options), server_(id) {
  storage_ = MakeBackend();
  if (options_.enable_wal) {
    if (options_.wal_path.empty()) {
      auto mem = std::make_unique<storage::MemLogDevice>();
      mem_log_ = mem.get();
      log_device_ = std::move(mem);
    } else {
      log_device_ =
          std::make_unique<storage::FileLogDevice>(options_.wal_path);
    }
    wal_ = std::make_unique<storage::WalWriter>(
        *log_device_, options_.participant.metrics, options_.group_commit);
  }
  participant_ = std::make_unique<txn::TxnParticipant>(
      *storage_, options_.detector, wal_.get(), options_.participant);
  RegisterHandlers();
}

std::unique_ptr<storage::RepStorage> DirRepNode::MakeBackend() const {
  if (options_.backend == DirRepNodeOptions::Backend::kBTree) {
    return std::make_unique<storage::BTreeStorage>(options_.btree_fanout);
  }
  return std::make_unique<storage::MapStorage>();
}

void DirRepNode::Crash() {
  if (mem_log_ != nullptr) mem_log_->Crash();
  storage_->Clear();
  // The participant's transaction table and lock table are volatile: a
  // fresh participant models the post-crash process.
  participant_ = std::make_unique<txn::TxnParticipant>(
      *storage_, options_.detector, wal_.get(), options_.participant);
}

void DirRepNode::CrashTorn(std::size_t keep_bytes) {
  if (mem_log_ != nullptr) mem_log_->CrashTorn(keep_bytes);
  storage_->Clear();
  participant_ = std::make_unique<txn::TxnParticipant>(
      *storage_, options_.detector, wal_.get(), options_.participant);
}

Result<storage::RecoveryOutcome> DirRepNode::Recover() {
  if (log_device_ == nullptr) {
    return Status::FailedPrecondition("recovery requires a WAL");
  }
  REPDIR_ASSIGN_OR_RETURN(const std::string bytes,
                          log_device_->ReadDurable());
  std::size_t valid_bytes = 0;
  REPDIR_ASSIGN_OR_RETURN(const auto log,
                          storage::ParseLog(bytes, &valid_bytes));
  if (valid_bytes < bytes.size()) {
    // The log ends in the torn tail of the previous crash. Cut it off
    // atomically before the writer appends again: records appended behind
    // a tear parse as garbage, so the *next* recovery would silently
    // discard them - committed transactions included.
    REPDIR_RETURN_IF_ERROR(log_device_->Rewrite(
        std::string_view(bytes).substr(0, valid_bytes)));
  }
  // Recovery writes storage behind the participant's back; cached digests
  // (a reconciler may probe a node the instant it is back) must not
  // describe pre-crash state.
  Result<storage::RecoveryOutcome> out =
      storage::RecoverRepresentative(*storage_, log);
  participant_->ClearDigestCache();
  return out;
}

DirRepNode::ShardBounds DirRepNode::shard_bounds() const {
  std::lock_guard<std::mutex> lk(shard_mu_);
  return shard_;
}

void DirRepNode::SetShardBounds(ShardBounds bounds) {
  std::lock_guard<std::mutex> lk(shard_mu_);
  shard_ = std::move(bounds);
}

Status DirRepNode::CheckEpoch(const net::RpcRequest& env) const {
  std::lock_guard<std::mutex> lk(shard_mu_);
  if (!shard_.enforced || env.shard_epoch == 0) return Status::Ok();
  if (env.shard_epoch < shard_.epoch) {
    return Status::WrongShard("request epoch " +
                              std::to_string(env.shard_epoch) +
                              " < node epoch " + std::to_string(shard_.epoch));
  }
  return Status::Ok();
}

Status DirRepNode::CheckOwned(const storage::RepKey& key) const {
  std::lock_guard<std::mutex> lk(shard_mu_);
  if (!shard_.enforced || !key.is_user()) return Status::Ok();
  const UserKey& u = key.user();
  if (u < shard_.low || (shard_.has_high && u >= shard_.high)) {
    return Status::WrongShard("key " + u + " outside shard range [" +
                              shard_.low + ", " +
                              (shard_.has_high ? shard_.high : "+inf") + ")");
  }
  return Status::Ok();
}

Status DirRepNode::ResolveInDoubt(TxnId txn, bool commit) {
  if (log_device_ == nullptr || wal_ == nullptr) {
    return Status::FailedPrecondition("recovery requires a WAL");
  }
  REPDIR_ASSIGN_OR_RETURN(const auto log, storage::ReadLog(*log_device_));
  const Status st = storage::ResolveInDoubt(*storage_, log, txn, commit, *wal_);
  participant_->ClearDigestCache();  // resolution wrote storage directly
  return st;
}

void DirRepNode::RegisterHandlers() {
  using net::Empty;
  using net::RpcRequest;

  server_.RegisterTyped<Empty, Empty>(
      kPing, [](const RpcRequest&, const Empty&, Empty&) {
        return Status::Ok();
      });

  server_.RegisterTyped<KeyRequest, LookupReply>(
      kLookup,
      [this](const RpcRequest& env, const KeyRequest& req, LookupReply& out) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_ASSIGN_OR_RETURN(out, participant_->Lookup(env.txn, req.key));
        return Status::Ok();
      });

  server_.RegisterTyped<KeyRequest, NeighborReply>(
      kPredecessor,
      [this](const RpcRequest& env, const KeyRequest& req, NeighborReply& out) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_ASSIGN_OR_RETURN(out,
                                participant_->Predecessor(env.txn, req.key));
        return Status::Ok();
      });

  server_.RegisterTyped<KeyRequest, NeighborReply>(
      kSuccessor,
      [this](const RpcRequest& env, const KeyRequest& req, NeighborReply& out) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_ASSIGN_OR_RETURN(out, participant_->Successor(env.txn, req.key));
        return Status::Ok();
      });

  server_.RegisterTyped<NeighborBatchRequest, NeighborBatchReply>(
      kPredecessorBatch,
      [this](const RpcRequest& env, const NeighborBatchRequest& req,
             NeighborBatchReply& out) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_ASSIGN_OR_RETURN(
            out.steps,
            participant_->PredecessorBatch(env.txn, req.key, req.count));
        return Status::Ok();
      });

  server_.RegisterTyped<NeighborBatchRequest, NeighborBatchReply>(
      kSuccessorBatch,
      [this](const RpcRequest& env, const NeighborBatchRequest& req,
             NeighborBatchReply& out) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_ASSIGN_OR_RETURN(
            out.steps,
            participant_->SuccessorBatch(env.txn, req.key, req.count));
        return Status::Ok();
      });

  server_.RegisterTyped<InsertRequest, Empty>(
      kInsert,
      [this](const RpcRequest& env, const InsertRequest& req, Empty&) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_RETURN_IF_ERROR(CheckOwned(req.key));
        return participant_->Insert(env.txn, req.key, req.version, req.value);
      });

  server_.RegisterTyped<GuardedInsertRequest, Empty>(
      kGuardedInsert,
      [this](const RpcRequest& env, const GuardedInsertRequest& req, Empty&) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_RETURN_IF_ERROR(CheckOwned(req.key));
        return participant_->GuardedInsert(env.txn, req.key, req.version,
                                           req.value, req.expected_version);
      });

  server_.RegisterTyped<ValidatedLookupRequest, ValidatedLookupReply>(
      kLookupValidated,
      [this](const RpcRequest& env, const ValidatedLookupRequest& req,
             ValidatedLookupReply& out) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_ASSIGN_OR_RETURN(out.data, participant_->Lookup(env.txn, req.key));
        // Presence must match alongside the version: per-key version spaces
        // make a present/absent tie at one version impossible on committed
        // data, but the hint is client-supplied - never let a malformed one
        // turn into a wrong "unchanged".
        if (req.has_hint && out.data.version == req.hint_version &&
            out.data.present == req.hint_present) {
          out.unchanged = true;
          out.data.value.clear();
        }
        return Status::Ok();
      });

  server_.RegisterTyped<LookupBatchRequest, LookupBatchReply>(
      kLookupBatch,
      [this](const RpcRequest& env, const LookupBatchRequest& req,
             LookupBatchReply& out) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        out.replies.reserve(req.keys.size());
        for (const auto& key : req.keys) {
          REPDIR_ASSIGN_OR_RETURN(LookupReply reply,
                                  participant_->Lookup(env.txn, key));
          out.replies.push_back(std::move(reply));
        }
        return Status::Ok();
      });

  server_.RegisterTyped<InsertBatchRequest, Empty>(
      kInsertBatch,
      [this](const RpcRequest& env, const InsertBatchRequest& req, Empty&) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        for (const auto& ins : req.inserts) {
          REPDIR_RETURN_IF_ERROR(CheckOwned(ins.key));
          REPDIR_RETURN_IF_ERROR(
              participant_->Insert(env.txn, ins.key, ins.version, ins.value));
        }
        return Status::Ok();
      });

  server_.RegisterTyped<RangeDigestRequest, RangeDigestReply>(
      kRangeDigest,
      [this](const RpcRequest& env, const RangeDigestRequest& req,
             RangeDigestReply& out) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_ASSIGN_OR_RETURN(
            out.parts, participant_->DigestRange(req.low, req.high,
                                                 req.fanout));
        return Status::Ok();
      });

  server_.RegisterTyped<RangeDigestSpansRequest, RangeDigestReply>(
      kRangeDigestSpans,
      [this](const RpcRequest& env, const RangeDigestSpansRequest& req,
             RangeDigestReply& out) {
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        std::vector<std::pair<storage::RepKey, storage::RepKey>> spans;
        spans.reserve(req.spans.size());
        for (const auto& s : req.spans) spans.emplace_back(s.low, s.high);
        REPDIR_ASSIGN_OR_RETURN(out.parts, participant_->DigestSpans(spans));
        return Status::Ok();
      });

  server_.RegisterTyped<FetchRangeRequest, FetchRangeReply>(
      kFetchRange,
      [this](const RpcRequest& env, const FetchRangeRequest& req,
             FetchRangeReply& out) {
        // Bounds are deliberately not checked (like kCoalesce): the
        // reconciler may fetch across a not-yet-retired migrating tail,
        // and repairs themselves re-check ownership per installed key.
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_ASSIGN_OR_RETURN(
            storage::SegmentState seg,
            participant_->FetchRange(env.txn, req.low, req.high));
        out.low_gap = seg.low_gap;
        out.has_low_entry = seg.low_entry.has_value();
        if (seg.low_entry.has_value()) out.low_entry = *seg.low_entry;
        out.entries = std::move(seg.entries);
        return Status::Ok();
      });

  server_.RegisterTyped<CoalesceRequest, CoalesceReply>(
      kCoalesce,
      [this](const RpcRequest& env, const CoalesceRequest& req,
             CoalesceReply& out) {
        // Bounds are deliberately not checked: a coalesce endpoint may be a
        // not-yet-retired entry just outside a freshly narrowed shard, and
        // each shard's own LOW/HIGH sentinels already fence the range a
        // coalesce can reach. The epoch fence still applies.
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        REPDIR_ASSIGN_OR_RETURN(
            const storage::CoalesceEffect effect,
            participant_->Coalesce(env.txn, req.low, req.high,
                                   req.gap_version));
        out.erased.reserve(effect.erased.size());
        for (const auto& e : effect.erased) out.erased.push_back(e.key);
        return Status::Ok();
      });

  server_.RegisterTyped<Empty, Empty>(
      kPrepare, [this](const RpcRequest& env, const Empty&, Empty&) {
        // Fencing prepare (not just the writes) closes the window where a
        // stale-map write executed just before the node's epoch advanced:
        // the decision round arrives after, sees the new epoch, aborts.
        REPDIR_RETURN_IF_ERROR(CheckEpoch(env));
        return participant_->Prepare(env.txn);
      });

  server_.RegisterTyped<Empty, Empty>(
      kCommit, [this](const RpcRequest& env, const Empty&, Empty&) {
        return participant_->Commit(env.txn);
      });

  server_.RegisterTyped<Empty, Empty>(
      kAbortTxn, [this](const RpcRequest& env, const Empty&, Empty&) {
        return participant_->Abort(env.txn);
      });

  server_.RegisterTyped<ShardConfigRequest, Empty>(
      kConfigureShard,
      [this](const RpcRequest&, const ShardConfigRequest& req, Empty&) {
        ShardBounds bounds;
        bounds.enforced = true;
        bounds.low = req.low;
        bounds.has_high = req.has_high;
        bounds.high = req.high;
        bounds.epoch = req.epoch;
        SetShardBounds(std::move(bounds));
        return Status::Ok();
      });

  server_.RegisterTyped<Empty, ShardInfoReply>(
      kShardInfo,
      [this](const RpcRequest&, const Empty&, ShardInfoReply& out) {
        const ShardBounds bounds = shard_bounds();
        out.enforced = bounds.enforced;
        out.low = bounds.low;
        out.has_high = bounds.has_high;
        out.high = bounds.high;
        out.epoch = bounds.epoch;
        return Status::Ok();
      });

  server_.RegisterTyped<RetireRangeRequest, CoalesceReply>(
      kRetireRange,
      [this](const RpcRequest& env, const RetireRangeRequest& req,
             CoalesceReply& out) {
        // Coalesce [local pred of low, HIGH] with the pred's existing gap
        // version: every entry >= low is erased, and the version of the
        // retained tail gap is exactly what it already was, so reads of the
        // keys this shard keeps cannot tell retirement happened. RepKey
        // ordering makes User("") sort above LOW, so low = "" retires the
        // whole user keyspace with no special case.
        REPDIR_ASSIGN_OR_RETURN(
            const storage::NeighborReply pred,
            participant_->Predecessor(env.txn, RepKey::User(req.low)));
        REPDIR_ASSIGN_OR_RETURN(
            const storage::CoalesceEffect effect,
            participant_->Coalesce(env.txn, pred.key, RepKey::High(),
                                   pred.gap_version));
        out.erased.reserve(effect.erased.size());
        for (const auto& e : effect.erased) out.erased.push_back(e.key);
        return Status::Ok();
      });
}

}  // namespace repdir::rep
