#include "rep/sharded_dir.h"

#include <cassert>
#include <set>
#include <utility>

namespace repdir::rep {

namespace {

constexpr txn::TxnControlMethods kTxnMethods{kPrepare, kCommit, kAbortTxn};

StatusCode CodeOf(const Status& st) { return st.code(); }

template <typename T>
StatusCode CodeOf(const Result<T>& r) {
  return r.ok() ? StatusCode::kOk : r.status().code();
}

StatusCode CodeOf(const DirectorySuite::BatchResult& r) {
  return r.status.code();
}

}  // namespace

ShardedDirectory::ShardedDirectory(net::Transport& transport,
                                   NodeId client_node,
                                   ShardMapAuthority& authority,
                                   Options options)
    : transport_(&transport),
      client_node_(client_node),
      authority_(&authority),
      options_(std::move(options)),
      txn_ids_(client_node),
      ctl_(transport, client_node, options_.metrics),
      committer_(ctl_, kTxnMethods, options_.rpc_retry) {
  MetricsRegistry& metrics = ctl_.metrics();
  reroutes_ = &metrics.counter("router.reroutes");
  refreshes_ = &metrics.counter("router.map_refreshes");
  cross_shard_ = &metrics.counter("router.txn.cross_shard");
  mirrored_ = &metrics.counter("router.writes.mirrored");
  clamped_ = &metrics.counter("router.scan.clamped");
  auto map = authority_->Get();
  assert(map != nullptr && "ShardMapAuthority has no installed map");
  AdoptMap(std::move(map));
}

DirectorySuite& ShardedDirectory::SuiteFor(ShardId shard) {
  auto it = suites_.find(shard);
  assert(it != suites_.end() && "no suite for shard");
  return *it->second;
}

DirectorySuite* ShardedDirectory::shard_suite(ShardId shard) {
  auto it = suites_.find(shard);
  return it == suites_.end() ? nullptr : it->second.get();
}

std::vector<ShardId> ShardedDirectory::shard_ids() const {
  std::vector<ShardId> ids;
  ids.reserve(map_->entries.size());
  for (const auto& e : map_->entries) ids.push_back(e.shard);
  return ids;
}

void ShardedDirectory::RefreshMap() {
  refreshes_->Increment();
  auto map = authority_->Get();
  if (map != nullptr) AdoptMap(std::move(map));
}

void ShardedDirectory::AdoptMap(std::shared_ptr<const ShardMap> map) {
  // Build any missing suites. A shard id's replica set is immutable for the
  // life of the shard (splits create NEW shard ids), so an existing suite
  // is always current.
  const auto ensure = [&](ShardId shard, const QuorumConfig& config) {
    if (suites_.find(shard) != suites_.end()) return;
    SuiteOptions o;
    o.config = config;
    o.policy_seed = options_.policy_seed + shard;
    o.rpc_retry = options_.rpc_retry;
    o.neighbor_batch = options_.neighbor_batch;
    o.enable_version_cache = options_.enable_version_cache;
    o.metrics = options_.metrics;
    o.trace = options_.trace;
    o.metric_scope = "shard" + std::to_string(shard);
    o.txn_ids = &txn_ids_;
    o.decision_hook = options_.decision_hook;
    suites_.emplace(shard, std::make_unique<DirectorySuite>(
                               *transport_, client_node_, std::move(o)));
  };
  for (const auto& e : map->entries) ensure(e.shard, e.config);
  for (const auto& s : map->staging) ensure(s.shard, s.config);

  // Drop suites of shards that left the map (merged away and retired).
  for (auto it = suites_.begin(); it != suites_.end();) {
    if (map->Find(it->first) == nullptr &&
        map->FindStaging(it->first) == nullptr) {
      it = suites_.erase(it);
    } else {
      ++it;
    }
  }

  // Stamp the new epoch into every client LAST: a suite must exist for
  // every shard the fence could bounce us toward.
  for (auto& [shard, suite] : suites_) suite->set_shard_epoch(map->version);
  ctl_.set_shard_epoch(map->version);
  map_ = std::move(map);
}

template <typename Fn>
auto ShardedDirectory::WithReroute(Fn&& fn) -> decltype(fn()) {
  auto out = fn();
  for (int i = 0;
       i < options_.max_reroutes && CodeOf(out) == StatusCode::kWrongShard;
       ++i) {
    reroutes_->Increment();
    RefreshMap();
    out = fn();
  }
  return out;
}

bool ShardedDirectory::InMigrationRange(const ShardEntry& owner,
                                        const UserKey& key) {
  if (!owner.migrating) return false;
  if (key < owner.migrate_low) return false;
  return !owner.migrate_has_high || key < owner.migrate_high;
}

void ShardedDirectory::NotifyDecision(TxnId txn, bool committed) {
  if (options_.decision_hook) options_.decision_hook(txn, committed);
}

// --- Single-shot operations ---

Result<ShardedDirectory::LookupResult> ShardedDirectory::Lookup(
    const UserKey& key) {
  return WithReroute([&]() -> Result<LookupResult> {
    return SuiteFor(map_->OwnerOf(key).shard).Lookup(key);
  });
}

Status ShardedDirectory::Insert(const UserKey& key, const Value& value) {
  return WithReroute([&] { return RoutedWrite(key, WriteKind::kInsert, value); });
}

Status ShardedDirectory::Update(const UserKey& key, const Value& value) {
  return WithReroute([&] { return RoutedWrite(key, WriteKind::kUpdate, value); });
}

Status ShardedDirectory::Delete(const UserKey& key) {
  return WithReroute([&] { return RoutedWrite(key, WriteKind::kDelete, {}); });
}

Status ShardedDirectory::MirrorWrite(SuiteTxn& target, WriteKind kind,
                                     const UserKey& key, const Value& value) {
  if (kind == WriteKind::kDelete) {
    // The handoff copy may never have shipped this key.
    const Status st = target.Delete(key);
    return st.code() == StatusCode::kNotFound ? Status::Ok() : st;
  }
  // Upsert: the copy loop may already have landed the key on the target
  // (then this write must supersede it) or not yet (then it must create
  // it - the copier's insert-if-absent will keep this newer value).
  const auto current = target.Lookup(key);
  if (!current.ok()) return current.status();
  return current->found ? target.Update(key, value)
                        : target.Insert(key, value);
}

Status ShardedDirectory::RoutedWrite(const UserKey& key, WriteKind kind,
                                     const Value& value) {
  const ShardEntry& owner = map_->OwnerOf(key);
  DirectorySuite& source = SuiteFor(owner.shard);
  if (!InMigrationRange(owner, key)) {
    switch (kind) {
      case WriteKind::kInsert: return source.Insert(key, value);
      case WriteKind::kUpdate: return source.Update(key, value);
      case WriteKind::kDelete: return source.Delete(key);
    }
  }

  // Mid-migration dual-write: one transaction spanning the source (still
  // authoritative for reads) and the migration target, one 2PC. The source
  // op supplies the user-visible semantics (kAlreadyExists/kNotFound
  // checks); the target mirror keeps the handoff copy from losing it.
  mirrored_->Increment();
  cross_shard_->Increment();
  const TxnId id = txn_ids_.Next();
  SuiteTxn source_txn = source.BeginAt(id);
  SuiteTxn target_txn = SuiteFor(owner.migrate_to).BeginAt(id);
  Status st = Status::Ok();
  switch (kind) {
    case WriteKind::kInsert: st = source_txn.Insert(key, value); break;
    case WriteKind::kUpdate: st = source_txn.Update(key, value); break;
    case WriteKind::kDelete: st = source_txn.Delete(key); break;
  }
  if (st.ok()) st = MirrorWrite(target_txn, kind, key, value);
  if (!st.ok()) {
    source_txn.Abort();
    target_txn.Abort();
    NotifyDecision(id, false);
    return st;
  }
  const DirectorySuite::Handoff hs = source_txn.Detach();
  const DirectorySuite::Handoff ht = target_txn.Detach();
  std::set<NodeId> participants = hs.participants;
  participants.insert(ht.participants.begin(), ht.participants.end());
  const Status commit = committer_.Commit(id, participants);
  NotifyDecision(id, commit.ok());
  return commit;
}

// --- Ordered iteration ---

Result<ShardedDirectory::NextKeyResult> ShardedDirectory::StitchedNext(
    const UserKey& key, bool first_key) {
  const ShardMap& map = *map_;
  for (std::size_t idx = first_key ? 0 : map.OwnerIndex(key);
       idx < map.entries.size(); ++idx) {
    const ShardEntry& entry = map.entries[idx];
    DirectorySuite& suite = SuiteFor(entry.shard);
    UserKey high;
    const bool bounded = map.HighBound(idx, &high);
    // For shards after the owner every key exceeds `key` (their ranges
    // start above it), so the same NextKey(key) probe finds their smallest
    // entry.
    auto step = first_key ? suite.FirstKey() : suite.NextKey(key);
    for (;;) {
      if (!step.ok()) return step.status();
      if (!step->found) break;
      if (step->key < entry.low) {
        // Stale leftover below the shard's range; skip past it.
        clamped_->Increment();
        step = suite.NextKey(step->key);
        continue;
      }
      if (bounded && step->key >= high) {
        // A migrated-away tail this shard has not retired yet; the owner
        // of that range answers authoritatively in a later iteration.
        clamped_->Increment();
        break;
      }
      return *step;
    }
  }
  return NextKeyResult{};
}

Result<ShardedDirectory::NextKeyResult> ShardedDirectory::NextKey(
    const UserKey& key) {
  return WithReroute([&] { return StitchedNext(key, /*first_key=*/false); });
}

Result<ShardedDirectory::NextKeyResult> ShardedDirectory::FirstKey() {
  return WithReroute([&] { return StitchedNext({}, /*first_key=*/true); });
}

Result<std::vector<ShardedDirectory::ScanEntry>> ShardedDirectory::Scan() {
  std::vector<ScanEntry> out;
  auto step = FirstKey();
  while (step.ok() && step->found) {
    out.push_back({step->key, step->value});
    step = NextKey(step->key);
  }
  REPDIR_RETURN_IF_ERROR(step.status());
  return out;
}

// --- Batches ---

ShardedDirectory::BatchResult ShardedDirectory::ExecuteBatch(
    const std::vector<BatchOp>& ops) {
  return WithReroute([&]() -> BatchResult {
    const ShardMap& map = *map_;

    // Group op indices by owning shard, in range order; remember which ops
    // need a migration mirror.
    std::map<std::size_t, std::vector<std::size_t>> groups;  // entry idx ->
    std::vector<std::size_t> mirrored;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const std::size_t idx = map.OwnerIndex(ops[i].key);
      groups[idx].push_back(i);
      if (ops[i].kind != BatchOp::Kind::kLookup &&
          InMigrationRange(map.entries[idx], ops[i].key)) {
        mirrored.push_back(i);
      }
    }

    BatchResult out;
    if (ops.empty()) {
      out.status = Status::Ok();
      return out;
    }
    if (groups.size() == 1 && mirrored.empty()) {
      // Single-shard batch: the suite's own two-wave path, unchanged.
      return SuiteFor(map.entries[groups.begin()->first].shard)
          .ExecuteBatch(ops);
    }

    // Cross-shard: one transaction id, one SuiteTxn per touched shard, one
    // decision.
    cross_shard_->Increment();
    out.ops.resize(ops.size());
    const TxnId id = txn_ids_.Next();
    std::map<ShardId, SuiteTxn> txns;
    const auto txn_for = [&](ShardId shard) -> SuiteTxn& {
      auto it = txns.find(shard);
      if (it == txns.end()) {
        it = txns.emplace(shard, SuiteFor(shard).BeginAt(id)).first;
      }
      return it->second;
    };
    const auto abort_all = [&](const Status& why) {
      for (auto& [shard, txn] : txns) txn.Abort();
      NotifyDecision(id, false);
      out.status = why;
      return out;
    };

    for (const auto& [entry_idx, indices] : groups) {
      const ShardId shard = map.entries[entry_idx].shard;
      std::vector<BatchOp> sub;
      sub.reserve(indices.size());
      for (const std::size_t i : indices) sub.push_back(ops[i]);
      auto sub_results = txn_for(shard).ExecuteBatch(sub);
      if (!sub_results.ok()) return abort_all(sub_results.status());
      for (std::size_t j = 0; j < indices.size(); ++j) {
        out.ops[indices[j]] = std::move((*sub_results)[j]);
      }
    }

    for (const std::size_t i : mirrored) {
      if (!out.ops[i].status.ok()) continue;  // clean check failure: no-op
      mirrored_->Increment();
      const ShardEntry& owner = map.entries[map.OwnerIndex(ops[i].key)];
      const WriteKind kind = ops[i].kind == BatchOp::Kind::kInsert
                                 ? WriteKind::kInsert
                                 : WriteKind::kUpdate;
      const Status st =
          MirrorWrite(txn_for(owner.migrate_to), kind, ops[i].key,
                      ops[i].value);
      if (!st.ok()) return abort_all(st);
    }

    std::set<NodeId> participants;
    bool wrote = false;
    for (auto& [shard, txn] : txns) {
      const DirectorySuite::Handoff handoff = txn.Detach();
      participants.insert(handoff.participants.begin(),
                          handoff.participants.end());
      wrote = wrote || handoff.wrote;
    }
    Status commit = Status::Ok();
    if (!participants.empty()) {
      commit = wrote ? committer_.Commit(id, participants)
                     : committer_.CommitReadOnly(id, participants);
    }
    NotifyDecision(id, commit.ok());
    out.status = commit;
    return out;
  });
}

}  // namespace repdir::rep
