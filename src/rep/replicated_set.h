// ReplicatedSet: the §1 remark made concrete - "Trivial modifications of
// this algorithm may be used to implement sets or similar abstractions."
//
// A replicated set of byte strings over a DirectorySuite: elements are keys
// with empty values; Add is idempotent (insert-if-absent), Remove is
// idempotent (delete-if-present), and the ordered scan comes from the
// suite's real-successor search.
#pragma once

#include <vector>

#include "rep/dir_suite.h"

namespace repdir::rep {

class ReplicatedSet {
 public:
  explicit ReplicatedSet(DirectorySuite& suite) : suite_(&suite) {}

  /// Adds the element; returns true if it was newly added.
  Result<bool> Add(const UserKey& element) {
    const Status st = suite_->Insert(element, {});
    if (st.ok()) return true;
    if (st.code() == StatusCode::kAlreadyExists) return false;
    return st;
  }

  Result<bool> Contains(const UserKey& element) {
    REPDIR_ASSIGN_OR_RETURN(const auto r, suite_->Lookup(element));
    return r.found;
  }

  /// Removes the element; returns true if it was present.
  Result<bool> Remove(const UserKey& element) {
    const Status st = suite_->Delete(element);
    if (st.ok()) return true;
    if (st.code() == StatusCode::kNotFound) return false;
    return st;
  }

  /// All elements in order (ordered scan via real successors; each step is
  /// its own read transaction, so the scan is weakly consistent under
  /// concurrent writers, like an ordinary cursor).
  Result<std::vector<UserKey>> Elements() {
    std::vector<UserKey> out;
    REPDIR_ASSIGN_OR_RETURN(auto next, suite_->FirstKey());
    while (next.found) {
      out.push_back(next.key);
      REPDIR_ASSIGN_OR_RETURN(next, suite_->NextKey(next.key));
    }
    return out;
  }

 private:
  DirectorySuite* suite_;
};

}  // namespace repdir::rep
