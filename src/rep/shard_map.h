// Range partitioning of the directory keyspace: the shard map.
//
// A sharded deployment runs several independent directory suites - each a
// complete Daniels/Spector replicated directory with its own replica set
// and quorum configuration - and assigns each a contiguous range of user
// keys. The ShardMap is the versioned routing table:
//
//   * `entries` is sorted by range start; entry i owns user keys in
//     [entries[i].low, entries[i+1].low), the last entry unbounded above.
//     entries[0].low is always "" (the smallest user key), so every key has
//     exactly one owner.
//   * A shard undergoing an online split or merge carries a `migrating`
//     marker: writes landing in [migrate_low, migrate_high) must ALSO be
//     applied to shard `migrate_to` (the router's dual-write), so the copy
//     loop can never lose a racing update.
//   * `staging` lists shards that are configured and reachable but do not
//     own a range yet - the target of an in-flight split before the flip.
//
// The map version doubles as the shard EPOCH: every router stamps it into
// its RPC envelopes (net::RpcRequest::shard_epoch) and representatives
// configured with a newer epoch answer kWrongShard, fencing clients that
// still route by a retired map (see rep/dir_rep_node.h).
//
// ShardMapAuthority is the installation point: a thread-safe versioned
// store with a single rule - versions only ever increase. In a real system
// it would live in a metadata service; here it is process-local state the
// shard manager mutates and routers poll.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "rep/quorum.h"

namespace repdir::rep {

using ShardId = std::uint32_t;

/// One range-owning shard.
struct ShardEntry {
  ShardId shard = 0;
  UserKey low;          ///< Inclusive range start ("" for the first entry).
  QuorumConfig config;  ///< The shard's replica set / vote assignment.

  /// Online migration marker: while set, writes in
  /// [migrate_low, migrate_high) - `migrate_has_high` false meaning
  /// unbounded above - dual-write to shard `migrate_to`.
  bool migrating = false;
  UserKey migrate_low;
  bool migrate_has_high = false;
  UserKey migrate_high;
  ShardId migrate_to = 0;
};

/// A shard that exists (replicas configured) but owns no range yet: the
/// target of an in-flight split, holding the range it WILL own.
struct StagingShard {
  ShardId shard = 0;
  QuorumConfig config;
  UserKey low;  ///< Planned range (informational; routing ignores it).
  bool has_high = false;
  UserKey high;
};

struct ShardMap {
  std::uint64_t version = 0;  ///< Monotone; also the fence epoch.
  std::vector<ShardEntry> entries;
  std::vector<StagingShard> staging;

  /// Index of the entry owning `key` (entries must be valid; see
  /// Validate()).
  std::size_t OwnerIndex(const UserKey& key) const;
  const ShardEntry& OwnerOf(const UserKey& key) const {
    return entries[OwnerIndex(key)];
  }

  /// The exclusive upper bound of entry `idx`; false = unbounded above.
  bool HighBound(std::size_t idx, UserKey* high) const {
    if (idx + 1 >= entries.size()) return false;
    if (high != nullptr) *high = entries[idx + 1].low;
    return true;
  }

  const ShardEntry* Find(ShardId shard) const;
  const StagingShard* FindStaging(ShardId shard) const;

  /// Structural soundness: at least one entry, entries[0].low == "",
  /// strictly increasing range starts, shard ids unique across entries and
  /// staging, every per-shard quorum config valid, and every migration
  /// target resolvable.
  Status Validate() const;

  /// "v3: shard1=[,m) shard2=[m,) staging{shard3}" - for logs and tests.
  std::string ToString() const;
};

/// The versioned installation point routers poll and the shard manager
/// writes. Install enforces strictly increasing versions, so a stale
/// manager resume can never roll the routing table backwards.
class ShardMapAuthority {
 public:
  ShardMapAuthority() = default;

  /// The current map; null until the first Install. The snapshot is
  /// immutable - readers may hold it across any number of installs.
  std::shared_ptr<const ShardMap> Get() const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_;
  }

  std::uint64_t version() const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_ == nullptr ? 0 : map_->version;
  }

  /// Installs `map` iff it validates and its version exceeds the current
  /// one (kVersionMismatch otherwise - the caller lost an install race or
  /// is replaying an already-applied step).
  Status Install(ShardMap map);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ShardMap> map_;
};

/// Single-suite convenience: a one-entry map over the whole keyspace.
ShardMap SingleShardMap(ShardId shard, QuorumConfig config,
                        std::uint64_t version = 1);

}  // namespace repdir::rep
