// Availability analysis for quorum configurations.
//
// Given independent per-replica up-probabilities, computes the probability
// that a read / write / read-modify-write quorum can be collected. Exact
// computation enumerates replica up/down outcomes (fine for the paper-scale
// suites of <= ~20 replicas); a Monte-Carlo estimator cross-checks it and
// scales further. Used by bench_availability to reproduce the paper's
// motivation that quorum tuning trades read availability against write
// availability, with unanimous update (W = V) as the degenerate worst case
// for updates.
#pragma once

#include "common/rng.h"
#include "rep/quorum.h"

namespace repdir::rep {

struct AvailabilityPoint {
  double read = 0.0;    ///< P(read quorum collectable).
  double write = 0.0;   ///< P(write quorum collectable).
  double modify = 0.0;  ///< P(both collectable) - inserts/updates/deletes
                        ///< need a read and a write quorum.
};

/// Exact availability by enumeration over the 2^n up/down outcomes.
/// `p_up` is each replica's independent probability of being reachable.
AvailabilityPoint ExactAvailability(const QuorumConfig& config, double p_up);

/// Per-replica probabilities variant (heterogeneous nodes).
AvailabilityPoint ExactAvailability(const QuorumConfig& config,
                                    const std::vector<double>& p_up);

/// Monte-Carlo estimate with `trials` samples.
AvailabilityPoint SimulatedAvailability(const QuorumConfig& config,
                                        double p_up, std::uint64_t trials,
                                        Rng& rng);

}  // namespace repdir::rep
