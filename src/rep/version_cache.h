// VersionCache: a client-side cache of the per-key version numbers (and
// values) a directory suite learns from quorum replies.
//
// The paper's per-entry/per-gap version numbers make every datum
// self-validating - exactly the property Gifford-style weak representatives
// exploit. The suite uses this cache two ways:
//   * fast-path writes - a cached version lets DirSuiteInsert/Update skip
//     the read-quorum round and issue a guarded DirRepInsert whose
//     expected-version precondition detects staleness at the replicas;
//   * validated reads - a cached (presence, version) rides along with the
//     lookup inquiry so replicas can answer "unchanged" without re-shipping
//     the value.
//
// Entries describe either a present entry (entry version + value) or an
// absent key (the version of the gap containing it, plus the gap's bounds
// when the suite learned them from a real-neighbor search). Because a
// coalesce re-versions an entire key range at once, invalidation must be
// range-capable: InvalidateRange removes every cached key inside the
// coalesced [low, high] AND every cached gap whose recorded bounds overlap
// it - a cached gap version that survived a coalesce could otherwise let an
// absent key read as present-era data.
//
// The cache only ever holds committed data: the suite stages updates in its
// per-operation context and applies them here at commit time. It is a plain
// deterministic LRU (no clocks, no randomness) so deterministic transports
// stay bit-identical run to run. Not thread-safe - like DirectorySuite
// itself, one instance per client.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <optional>

#include "common/types.h"
#include "storage/rep_key.h"

namespace repdir::rep {

using storage::RepKey;

class VersionCache {
 public:
  struct Entry {
    bool present = false;            ///< Entry (true) vs. gap (false).
    Version version = kLowestVersion;
    Value value;                     ///< Empty for gaps.
    /// Bounds of the containing gap, when known (absent keys learned from a
    /// real-neighbor search). Low()/High() mean "unknown": treated as not
    /// overlapping any coalesced range, so unknown-bounds gaps are only
    /// removed by key containment.
    bool has_gap_bounds = false;
    RepKey gap_low = RepKey::Low();
    RepKey gap_high = RepKey::High();
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;  ///< Cached keys removed (not calls).
    std::uint64_t evictions = 0;
  };

  explicit VersionCache(std::size_t capacity);

  /// The cached state of `key`, refreshing its LRU position; counts a hit
  /// or a miss.
  std::optional<Entry> Lookup(const RepKey& key);

  /// Inserts or replaces; evicts the least-recently-used entry at capacity.
  void Put(const RepKey& key, Entry entry);

  /// Removes one key, if cached. Returns whether anything was removed.
  bool Invalidate(const RepKey& key);

  /// Removes every cached key in [low, high] plus every cached gap whose
  /// recorded bounds overlap the open interval (low, high) - the coalesce
  /// invalidation rule. Returns the number of entries removed.
  std::size_t InvalidateRange(const RepKey& low, const RepKey& high);

  void Clear();

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Node {
    Entry entry;
    std::list<RepKey>::iterator lru;  ///< Position in lru_ (front = newest).
  };

  void EraseIt(std::map<RepKey, Node>::iterator it);

  std::size_t capacity_;
  std::map<RepKey, Node> map_;
  std::list<RepKey> lru_;  ///< Most-recently-used first.
  Stats stats_;
};

}  // namespace repdir::rep
