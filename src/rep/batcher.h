// AutoBatcher: transparent batching for concurrent callers.
//
// A DirectorySuite is a single client - one transaction at a time - so N
// application threads normally need N suites and pay N independent quorum
// round-trips. The AutoBatcher inverts that: threads Submit() individual
// operations, a dispatcher thread coalesces whatever has accumulated
// (bounded by max_batch and max_wait) into one DirectorySuite::ExecuteBatch
// call - one read wave, one write wave, one 2PC for the whole group - and
// each submitter gets its own per-op result back.
//
// Ops from different submitters share a transaction; a transaction-level
// failure (quorum loss, deadlock abort) fails every op in the group, and
// callers retry individually as they would any aborted operation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rep/dir_suite.h"

namespace repdir::rep {

class AutoBatcher {
 public:
  struct Options {
    /// Largest group dispatched as one batch.
    std::size_t max_batch = 32;
    /// How long the dispatcher waits for more ops once it has at least one
    /// (microseconds). 0 = dispatch whatever is queued immediately.
    DurationMicros max_wait_us = 200;
  };

  /// The suite must outlive the batcher and becomes batcher-owned while it
  /// exists: the dispatcher thread is the suite's single client.
  explicit AutoBatcher(DirectorySuite& suite);
  AutoBatcher(DirectorySuite& suite, Options options);
  ~AutoBatcher();

  AutoBatcher(const AutoBatcher&) = delete;
  AutoBatcher& operator=(const AutoBatcher&) = delete;

  /// Submits one operation and blocks until its group's batch finishes.
  /// A transaction-level failure surfaces in `status`; otherwise the per-op
  /// result is exactly what ExecuteBatch reported for this op.
  DirectorySuite::BatchOpResult Submit(DirectorySuite::BatchOp op);

  // Convenience wrappers.
  Result<DirectorySuite::LookupResult> Lookup(const UserKey& key);
  Status Insert(const UserKey& key, const Value& value);
  Status Update(const UserKey& key, const Value& value);

  /// Batches executed so far (tests: coalescing proof).
  std::uint64_t batches_dispatched() const;
  /// Operations submitted so far.
  std::uint64_t ops_submitted() const;

 private:
  struct Pending {
    DirectorySuite::BatchOp op;
    DirectorySuite::BatchOpResult result;
    bool done = false;
    std::mutex mu;
    std::condition_variable cv;
  };

  void Run();

  DirectorySuite* suite_;
  Options options_;

  mutable std::mutex mu_;  ///< queue_, stats, stopping_.
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Pending>> queue_;
  bool stopping_ = false;
  std::uint64_t batches_ = 0;
  std::uint64_t submitted_ = 0;
  std::thread dispatcher_;
};

}  // namespace repdir::rep
