// AutoBatcher: transparent batching for concurrent callers.
//
// A DirectorySuite is a single client - one transaction at a time - so N
// application threads normally need N suites and pay N independent quorum
// round-trips. The AutoBatcher inverts that: threads Submit() individual
// operations, a dispatcher thread coalesces whatever has accumulated
// (bounded by max_batch and max_wait) into one DirectorySuite::ExecuteBatch
// call - one read wave, one write wave, one 2PC for the whole group - and
// each submitter gets its own per-op result back.
//
// Ops from different submitters share a transaction; a transaction-level
// failure (quorum loss, deadlock abort) fails every op in the group, and
// callers retry individually as they would any aborted operation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rep/dir_suite.h"

namespace repdir::rep {

class AutoBatcher {
 public:
  struct Options {
    /// Largest group dispatched as one batch.
    std::size_t max_batch = 32;
    /// How long the dispatcher waits for more ops once it has at least one
    /// (microseconds). 0 = dispatch whatever is queued immediately.
    DurationMicros max_wait_us = 200;
  };

  /// The suite must outlive the batcher and becomes batcher-owned while it
  /// exists: the dispatcher thread is the suite's single client.
  explicit AutoBatcher(DirectorySuite& suite);
  AutoBatcher(DirectorySuite& suite, Options options);

  /// Destruction flushes: every operation Submit() has already accepted is
  /// executed and its submitter unblocked with a real result before the
  /// dispatcher exits. A Submit racing the destructor either makes it into
  /// the queue (and is flushed) or is refused with kUnavailable - it never
  /// hangs and never reports success for work that was dropped.
  ~AutoBatcher();

  AutoBatcher(const AutoBatcher&) = delete;
  AutoBatcher& operator=(const AutoBatcher&) = delete;

  /// Submits one operation and blocks until its group's batch finishes.
  /// A transaction-level failure surfaces in `status`; otherwise the per-op
  /// result is exactly what ExecuteBatch reported for this op.
  DirectorySuite::BatchOpResult Submit(DirectorySuite::BatchOp op);

  // Convenience wrappers.
  Result<DirectorySuite::LookupResult> Lookup(const UserKey& key);
  Status Insert(const UserKey& key, const Value& value);
  Status Update(const UserKey& key, const Value& value);

  /// Blocks until every operation accepted so far has executed and its
  /// submitter has been handed a result - queue empty AND no group in
  /// flight. Ops submitted while draining may or may not be covered; the
  /// batcher keeps running. Useful as a barrier before reading through a
  /// different client or before tearing down dependent state.
  void Drain();

  /// Batches executed so far (tests: coalescing proof).
  std::uint64_t batches_dispatched() const;
  /// Operations submitted so far.
  std::uint64_t ops_submitted() const;

 private:
  struct Pending {
    DirectorySuite::BatchOp op;
    DirectorySuite::BatchOpResult result;
    bool done = false;
    std::mutex mu;
    std::condition_variable cv;
  };

  void Run();

  DirectorySuite* suite_;
  Options options_;

  mutable std::mutex mu_;  ///< queue_, stats, stopping_, in_flight_.
  std::condition_variable cv_;
  std::condition_variable drained_cv_;  ///< Signalled when all work is done.
  std::vector<std::shared_ptr<Pending>> queue_;
  std::size_t in_flight_ = 0;  ///< Ops taken off the queue, not yet done.
  bool stopping_ = false;
  std::uint64_t batches_ = 0;
  std::uint64_t submitted_ = 0;
  std::thread dispatcher_;
};

}  // namespace repdir::rep
