// Wire messages of the directory-representative RPC service, and the
// service's method identifiers.
#pragma once

#include "common/serde.h"
#include "net/message.h"
#include "storage/dir_rep_core.h"

namespace repdir::rep {

using storage::LookupReply;
using storage::NeighborReply;
using storage::RepKey;

/// Method id space of DirRepService. Transaction control shares the service
/// (participants are reached through the same server).
enum DirRepMethod : net::MethodId {
  kPing = 1,
  kLookup = 2,
  kPredecessor = 3,
  kSuccessor = 4,
  kInsert = 5,
  kCoalesce = 6,
  kPredecessorBatch = 7,
  kSuccessorBatch = 8,
  kPrepare = 100,
  kCommit = 101,
  kAbortTxn = 102,
};

struct KeyRequest {
  RepKey key;

  void Encode(ByteWriter& w) const { key.Encode(w); }
  Status Decode(ByteReader& r) { return key.Decode(r); }
};

struct InsertRequest {
  RepKey key;
  Version version = kLowestVersion;
  Value value;

  void Encode(ByteWriter& w) const {
    key.Encode(w);
    w.PutU64(version);
    w.PutString(value);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(key.Decode(r));
    REPDIR_RETURN_IF_ERROR(r.GetU64(version));
    return r.GetString(value);
  }
};

struct CoalesceRequest {
  RepKey low;
  RepKey high;
  Version gap_version = kLowestVersion;

  void Encode(ByteWriter& w) const {
    low.Encode(w);
    high.Encode(w);
    w.PutU64(gap_version);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(low.Decode(r));
    REPDIR_RETURN_IF_ERROR(high.Decode(r));
    return r.GetU64(gap_version);
  }
};

/// Batched neighbor search (paper §4: "if each member of a read quorum
/// sends the results of three successive DirRepPredecessor and
/// DirRepSuccessor operations in a single message, the real predecessor and
/// real successor will often be located using one remote procedure call").
struct NeighborBatchRequest {
  RepKey key;
  std::uint32_t count = 3;

  void Encode(ByteWriter& w) const {
    key.Encode(w);
    w.PutU32(count);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(key.Decode(r));
    return r.GetU32(count);
  }
};

/// Successive neighbors walking away from the request key: strictly
/// decreasing (predecessor batch) or increasing (successor batch), ending
/// early at a sentinel.
struct NeighborBatchReply {
  std::vector<NeighborReply> steps;

  void Encode(ByteWriter& w) const {
    w.PutVarint(steps.size());
    for (const auto& s : steps) s.Encode(w);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    steps.clear();
    steps.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      NeighborReply s;
      REPDIR_RETURN_IF_ERROR(s.Decode(r));
      steps.push_back(std::move(s));
    }
    return Status::Ok();
  }
};

/// Coalesce reports which entries it physically erased; the suite uses this
/// for the paper's §4 statistics (entries in ranges coalesced, deletions
/// while coalescing).
struct CoalesceReply {
  std::vector<RepKey> erased;

  void Encode(ByteWriter& w) const {
    w.PutVarint(erased.size());
    for (const auto& k : erased) k.Encode(w);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    erased.clear();
    erased.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      RepKey k;
      REPDIR_RETURN_IF_ERROR(k.Decode(r));
      erased.push_back(std::move(k));
    }
    return Status::Ok();
  }
};

}  // namespace repdir::rep
