// Wire messages of the directory-representative RPC service, and the
// service's method identifiers.
#pragma once

#include "common/serde.h"
#include "net/message.h"
#include "storage/dir_rep_core.h"
#include "storage/range_digest.h"

namespace repdir::rep {

using storage::LookupReply;
using storage::NeighborReply;
using storage::RepKey;

/// Method id space of DirRepService. Transaction control shares the service
/// (participants are reached through the same server).
enum DirRepMethod : net::MethodId {
  kPing = 1,
  kLookup = 2,
  kPredecessor = 3,
  kSuccessor = 4,
  kInsert = 5,
  kCoalesce = 6,
  kPredecessorBatch = 7,
  kSuccessorBatch = 8,
  kGuardedInsert = 9,
  kLookupValidated = 10,
  kLookupBatch = 11,
  kInsertBatch = 12,
  // Anti-entropy reconciliation (rep/reconciler.h). Digests are lock-free
  // consistency hints; kFetchRange runs under the caller's transaction with
  // read locks, so repairs act only on state that holds until the decision.
  kRangeDigest = 13,
  kRangeDigestSpans = 14,
  kFetchRange = 15,
  kPrepare = 100,
  kCommit = 101,
  kAbortTxn = 102,
  // Shard administration (router / shard manager only; not part of the
  // paper's directory protocol). The 200.. block is reserved for deployment
  // sidecars that share the server (chaos/cluster_messages.h).
  kConfigureShard = 300,
  kRetireRange = 301,
  kShardInfo = 302,
};

struct KeyRequest {
  RepKey key;

  void Encode(ByteWriter& w) const { key.Encode(w); }
  Status Decode(ByteReader& r) { return key.Decode(r); }
};

struct InsertRequest {
  RepKey key;
  Version version = kLowestVersion;
  Value value;

  void Encode(ByteWriter& w) const {
    key.Encode(w);
    w.PutU64(version);
    w.PutString(value);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(key.Decode(r));
    REPDIR_RETURN_IF_ERROR(r.GetU64(version));
    return r.GetString(value);
  }
};

/// Guarded DirRepInsert (the single-round optimistic write path): the
/// representative applies (key, version, value) only if its current version
/// for `key` - entry version when present, containing-gap version otherwise
/// - does not exceed `expected_version`; a greater local version answers
/// kVersionMismatch and applies nothing.
struct GuardedInsertRequest {
  RepKey key;
  Version version = kLowestVersion;
  Value value;
  Version expected_version = kLowestVersion;

  void Encode(ByteWriter& w) const {
    key.Encode(w);
    w.PutU64(version);
    w.PutString(value);
    w.PutU64(expected_version);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(key.Decode(r));
    REPDIR_RETURN_IF_ERROR(r.GetU64(version));
    REPDIR_RETURN_IF_ERROR(r.GetString(value));
    return r.GetU64(expected_version);
  }
};

/// DirRepLookup carrying the client's cached (presence, version) for the
/// key. A representative whose local state matches the hint answers
/// `unchanged` - version only, no value bytes - letting hot-key read
/// quorums validate a cache instead of re-shipping the value.
struct ValidatedLookupRequest {
  RepKey key;
  bool has_hint = false;
  bool hint_present = false;
  Version hint_version = kLowestVersion;

  void Encode(ByteWriter& w) const {
    key.Encode(w);
    w.PutBool(has_hint);
    w.PutBool(hint_present);
    w.PutU64(hint_version);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(key.Decode(r));
    REPDIR_RETURN_IF_ERROR(r.GetBool(has_hint));
    REPDIR_RETURN_IF_ERROR(r.GetBool(hint_present));
    return r.GetU64(hint_version);
  }
};

/// Reply to a validated lookup. When `unchanged`, `data` repeats the hint's
/// presence and version with an empty value (the client already holds it);
/// otherwise `data` is a full LookupReply.
struct ValidatedLookupReply {
  bool unchanged = false;
  LookupReply data;

  void Encode(ByteWriter& w) const {
    w.PutBool(unchanged);
    data.Encode(w);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetBool(unchanged));
    return data.Decode(r);
  }
};

struct CoalesceRequest {
  RepKey low;
  RepKey high;
  Version gap_version = kLowestVersion;

  void Encode(ByteWriter& w) const {
    low.Encode(w);
    high.Encode(w);
    w.PutU64(gap_version);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(low.Decode(r));
    REPDIR_RETURN_IF_ERROR(high.Decode(r));
    return r.GetU64(gap_version);
  }
};

/// Batched neighbor search (paper §4: "if each member of a read quorum
/// sends the results of three successive DirRepPredecessor and
/// DirRepSuccessor operations in a single message, the real predecessor and
/// real successor will often be located using one remote procedure call").
struct NeighborBatchRequest {
  RepKey key;
  std::uint32_t count = 3;

  void Encode(ByteWriter& w) const {
    key.Encode(w);
    w.PutU32(count);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(key.Decode(r));
    return r.GetU32(count);
  }
};

/// Successive neighbors walking away from the request key: strictly
/// decreasing (predecessor batch) or increasing (successor batch), ending
/// early at a sentinel.
struct NeighborBatchReply {
  std::vector<NeighborReply> steps;

  void Encode(ByteWriter& w) const {
    w.PutVarint(steps.size());
    for (const auto& s : steps) s.Encode(w);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    steps.clear();
    steps.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      NeighborReply s;
      REPDIR_RETURN_IF_ERROR(s.Decode(r));
      steps.push_back(std::move(s));
    }
    return Status::Ok();
  }
};

/// Batched DirRepLookup: one RPC inquires about many keys at once. The hot
/// path groups a whole client batch's read round into a single envelope per
/// quorum member; each key takes its read lock exactly as a separate
/// DirRepLookup would, so locking and recovery semantics are unchanged.
struct LookupBatchRequest {
  std::vector<RepKey> keys;

  void Encode(ByteWriter& w) const {
    w.PutVarint(keys.size());
    for (const auto& k : keys) k.Encode(w);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    keys.clear();
    keys.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      RepKey k;
      REPDIR_RETURN_IF_ERROR(k.Decode(r));
      keys.push_back(std::move(k));
    }
    return Status::Ok();
  }
};

/// Replies in request-key order, one per key.
struct LookupBatchReply {
  std::vector<LookupReply> replies;

  void Encode(ByteWriter& w) const {
    w.PutVarint(replies.size());
    for (const auto& reply : replies) reply.Encode(w);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    replies.clear();
    replies.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      LookupReply reply;
      REPDIR_RETURN_IF_ERROR(reply.Decode(r));
      replies.push_back(std::move(reply));
    }
    return Status::Ok();
  }
};

/// Batched DirRepInsert: the batch's write round ships every dirty key's
/// final (key, version, value) in one envelope per write-quorum member. All
/// inserts apply under one transaction; any failure fails the whole RPC
/// (the coordinator aborts, undoing the prefix that did apply).
struct InsertBatchRequest {
  std::vector<InsertRequest> inserts;

  void Encode(ByteWriter& w) const {
    w.PutVarint(inserts.size());
    for (const auto& ins : inserts) ins.Encode(w);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    inserts.clear();
    inserts.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      InsertRequest ins;
      REPDIR_RETURN_IF_ERROR(ins.Decode(r));
      inserts.push_back(std::move(ins));
    }
    return Status::Ok();
  }
};

/// Coalesce reports which entries it physically erased; the suite uses this
/// for the paper's §4 statistics (entries in ranges coalesced, deletions
/// while coalescing).
struct CoalesceReply {
  std::vector<RepKey> erased;

  void Encode(ByteWriter& w) const {
    w.PutVarint(erased.size());
    for (const auto& k : erased) k.Encode(w);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    erased.clear();
    erased.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      RepKey k;
      REPDIR_RETURN_IF_ERROR(k.Decode(r));
      erased.push_back(std::move(k));
    }
    return Status::Ok();
  }
};

/// Anti-entropy: asks a representative to digest segment (low, high] of its
/// local state, split into at most `fanout` child segments cut at its own
/// entry keys. The reconciler compares the children against the lagging
/// replica's digests of the same spans and recurses only into mismatches.
struct RangeDigestRequest {
  RepKey low;
  RepKey high;
  std::uint32_t fanout = 8;

  void Encode(ByteWriter& w) const {
    low.Encode(w);
    high.Encode(w);
    w.PutU32(fanout);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(low.Decode(r));
    REPDIR_RETURN_IF_ERROR(high.Decode(r));
    return r.GetU32(fanout);
  }
};

/// Child-segment digests, covering the requested range end to end.
struct RangeDigestReply {
  std::vector<storage::RangeDigest> parts;

  void Encode(ByteWriter& w) const {
    w.PutVarint(parts.size());
    for (const auto& p : parts) p.Encode(w);
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    parts.clear();
    parts.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      storage::RangeDigest p;
      REPDIR_RETURN_IF_ERROR(p.Decode(r));
      parts.push_back(std::move(p));
    }
    return Status::Ok();
  }
};

/// Anti-entropy: digests of explicitly-bounded segments (the spans a source
/// replica's SplitDigest produced), answered in request order with a
/// RangeDigestReply. Lets the reconciler compare both replicas over
/// identical boundaries even though their stored keys differ.
struct RangeDigestSpansRequest {
  struct Span {
    RepKey low;
    RepKey high;
  };
  std::vector<Span> spans;

  void Encode(ByteWriter& w) const {
    w.PutVarint(spans.size());
    for (const auto& s : spans) {
      s.low.Encode(w);
      s.high.Encode(w);
    }
  }
  Status Decode(ByteReader& r) {
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    spans.clear();
    spans.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Span s;
      REPDIR_RETURN_IF_ERROR(s.low.Decode(r));
      REPDIR_RETURN_IF_ERROR(s.high.Decode(r));
      spans.push_back(std::move(s));
    }
    return Status::Ok();
  }
};

/// Anti-entropy: full state of segment (low, high] under the caller's
/// transaction (read-locked until the 2PC decision - see
/// TxnParticipant::FetchRange). The repair leg of reconciliation fetches
/// the same segment from the source and the target and derives the minimal
/// set of guarded inserts and coalesces client-side.
struct FetchRangeRequest {
  RepKey low;
  RepKey high;

  void Encode(ByteWriter& w) const {
    low.Encode(w);
    high.Encode(w);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(low.Decode(r));
    return high.Decode(r);
  }
};

/// See storage::SegmentState for the field semantics.
struct FetchRangeReply {
  Version low_gap = kLowestVersion;
  bool has_low_entry = false;
  storage::StoredEntry low_entry;
  std::vector<storage::StoredEntry> entries;

  void Encode(ByteWriter& w) const {
    w.PutU64(low_gap);
    w.PutBool(has_low_entry);
    low_entry.Encode(w);
    w.PutVarint(entries.size());
    for (const auto& e : entries) e.Encode(w);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetU64(low_gap));
    REPDIR_RETURN_IF_ERROR(r.GetBool(has_low_entry));
    REPDIR_RETURN_IF_ERROR(low_entry.Decode(r));
    std::uint64_t count = 0;
    REPDIR_RETURN_IF_ERROR(r.GetVarint(count));
    entries.clear();
    entries.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      storage::StoredEntry e;
      REPDIR_RETURN_IF_ERROR(e.Decode(r));
      entries.push_back(std::move(e));
    }
    return Status::Ok();
  }
};

/// Shard administration: sets the range of user keys this representative
/// owns ([low, high), `has_high` false = unbounded above) and the shard-map
/// version ("epoch") as of which that assignment holds. Representatives
/// answer kWrongShard to requests stamped with an older epoch, fencing
/// clients that still route by a retired map.
struct ShardConfigRequest {
  UserKey low;
  bool has_high = false;
  UserKey high;
  std::uint64_t epoch = 0;

  void Encode(ByteWriter& w) const {
    w.PutString(low);
    w.PutBool(has_high);
    w.PutString(high);
    w.PutU64(epoch);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetString(low));
    REPDIR_RETURN_IF_ERROR(r.GetBool(has_high));
    REPDIR_RETURN_IF_ERROR(r.GetString(high));
    return r.GetU64(epoch);
  }
};

/// Reply to kShardInfo: the representative's current shard assignment.
struct ShardInfoReply {
  bool enforced = false;
  UserKey low;
  bool has_high = false;
  UserKey high;
  std::uint64_t epoch = 0;

  void Encode(ByteWriter& w) const {
    w.PutBool(enforced);
    w.PutString(low);
    w.PutBool(has_high);
    w.PutString(high);
    w.PutU64(epoch);
  }
  Status Decode(ByteReader& r) {
    REPDIR_RETURN_IF_ERROR(r.GetBool(enforced));
    REPDIR_RETURN_IF_ERROR(r.GetString(low));
    REPDIR_RETURN_IF_ERROR(r.GetBool(has_high));
    REPDIR_RETURN_IF_ERROR(r.GetString(high));
    return r.GetU64(epoch);
  }
};

/// Erases every user entry with key >= `low` from the representative,
/// transactionally (WAL-logged, lock-protected, undone on abort). The
/// handler coalesces [local predecessor of low, HIGH] with the
/// predecessor's existing gap version, so the surviving keyspace keeps its
/// versions bit-identical - retiring a migrated range never perturbs reads
/// of the range the shard still owns.
struct RetireRangeRequest {
  UserKey low;

  void Encode(ByteWriter& w) const { w.PutString(low); }
  Status Decode(ByteReader& r) { return r.GetString(low); }
};

}  // namespace repdir::rep
