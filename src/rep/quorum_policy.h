// Quorum selection policies.
//
// A policy answers "in what order should the suite try representatives for
// this operation class?" The suite walks the order, skipping
// representatives that do not respond, until the vote quota (R or W) is
// met. This cleanly folds failure handling into selection:
//   * RandomQuorumPolicy   - fresh uniform order per call; this is the
//                            paper's §4 simulation setting ("members of
//                            quorums ... selected randomly from a uniform
//                            distribution").
//   * StableQuorumPolicy   - a fixed preference order, so quorum membership
//                            changes only on failures; the §5 discussion
//                            predicts this makes coalescing nearly free
//                            (bench_stable_quorums is the ablation).
//   * LocalityQuorumPolicy - reads go to "local" representatives; the one
//                            extra non-local write rotates across the
//                            remote representatives (the Figure 16 setup).
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "rep/quorum.h"

namespace repdir::rep {

enum class OpClass : std::uint8_t { kRead = 0, kWrite = 1 };

class QuorumPolicy {
 public:
  virtual ~QuorumPolicy() = default;

  /// Order in which to try representatives for an operation of class `op`.
  /// Must be a permutation of the suite's nodes.
  virtual std::vector<NodeId> PreferenceOrder(OpClass op) = 0;
};

class RandomQuorumPolicy final : public QuorumPolicy {
 public:
  RandomQuorumPolicy(const QuorumConfig& config, std::uint64_t seed)
      : nodes_(config.Nodes()), rng_(seed) {}

  std::vector<NodeId> PreferenceOrder(OpClass) override {
    std::vector<NodeId> order = nodes_;
    rng_.Shuffle(order);
    return order;
  }

 private:
  std::vector<NodeId> nodes_;
  Rng rng_;
};

class StableQuorumPolicy final : public QuorumPolicy {
 public:
  /// Prefers nodes in the order they appear in the config.
  explicit StableQuorumPolicy(const QuorumConfig& config)
      : order_(config.Nodes()) {}

  /// Prefers nodes in an explicit order (e.g. "closest first").
  explicit StableQuorumPolicy(std::vector<NodeId> order)
      : order_(std::move(order)) {}

  std::vector<NodeId> PreferenceOrder(OpClass) override { return order_; }

 private:
  std::vector<NodeId> order_;
};

class LocalityQuorumPolicy final : public QuorumPolicy {
 public:
  /// `local` representatives are preferred for everything; for writes the
  /// remaining quota spills onto `remote` representatives round-robin, so
  /// the non-local write load spreads evenly (Figure 16).
  LocalityQuorumPolicy(std::vector<NodeId> local, std::vector<NodeId> remote)
      : local_(std::move(local)), remote_(std::move(remote)) {}

  std::vector<NodeId> PreferenceOrder(OpClass op) override {
    std::vector<NodeId> order = local_;
    std::vector<NodeId> remote = remote_;
    if (op == OpClass::kWrite && !remote.empty()) {
      // Rotate which remote representative takes the spill-over write.
      std::rotate(remote.begin(),
                  remote.begin() + static_cast<std::ptrdiff_t>(
                                       next_remote_ % remote.size()),
                  remote.end());
      ++next_remote_;
    }
    order.insert(order.end(), remote.begin(), remote.end());
    return order;
  }

 private:
  std::vector<NodeId> local_;
  std::vector<NodeId> remote_;
  std::size_t next_remote_ = 0;
};

}  // namespace repdir::rep
